(** Nestable monotonic-clock spans.

    Each domain keeps its own span stack (domain-local storage), so spans
    opened inside [Util.Parallel] workers nest within that worker and can
    never corrupt the calling domain's stack. A span's [parent] is the
    span enclosing it {e in the same domain}; worker-domain spans are
    roots of their own domain.

    Spans are emitted to the global {!Sink} when they close (children
    therefore appear before their parents in the event stream), and cost
    two clock reads plus a list cell when nobody is listening. *)

val with_ :
  ?attrs:(string * Sink.value) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span. The span closes (and is
    emitted) whether [f] returns or raises. *)

val timed :
  ?attrs:(string * Sink.value) list -> name:string -> (unit -> 'a) ->
  'a * float
(** Like {!with_}, additionally returning the span's duration in
    monotonic seconds — for callers that feed an existing [seconds]
    record field. *)

val current : unit -> string option
(** The innermost open span of the calling domain, if any. *)
