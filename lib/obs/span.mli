(** Nestable monotonic-clock spans.

    Each domain keeps its own span stack (domain-local storage), so spans
    opened inside [Util.Parallel] workers nest within that worker and can
    never corrupt the calling domain's stack. A span's [parent] is the
    span enclosing it {e in the same domain}, falling back to the
    {!with_context}-inherited parent when the local stack is empty — how
    a shard span opened on a pool domain still parents to the phase span
    that submitted it.

    Spans are emitted to the global {!Sink} when they close (children
    therefore appear before their parents in the event stream), and cost
    two clock reads plus a list cell when nobody is listening. *)

val with_ :
  ?attrs:(string * Sink.value) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span. The span closes (and is
    emitted) whether [f] returns or raises. *)

val timed :
  ?attrs:(string * Sink.value) list -> name:string -> (unit -> 'a) ->
  'a * float
(** Like {!with_}, additionally returning the span's duration in
    monotonic seconds — for callers that feed an existing [seconds]
    record field. *)

val current : unit -> string option
(** The innermost open span of the calling domain, or the inherited
    context when none is open locally. *)

val with_context : string option -> (unit -> 'a) -> 'a
(** [with_context parent f] runs [f] with [parent] as the fallback
    parent for spans whose enclosing stack is empty — the bridge that
    carries span parentage across [Util.Parallel] task submission.
    Capture [current ()] in the submitting domain, wrap the task body in
    the worker. Restores the previous context when [f] returns or
    raises; a span already open in the worker still wins. *)
