(** Typed process-wide metrics: counters, gauges and histograms.

    Instruments live in a global registry keyed by name — asking for the
    same name twice returns the same instrument, so library code can
    declare its counters at module level and entry points can flush the
    lot with {!emit_all}. Counters update with a single [Atomic] add and
    are safe (and exact) under concurrent increments from
    [Util.Parallel] worker domains; histograms take a per-instrument
    mutex, which is fine at their intended per-phase / per-run cadence. *)

type counter
type gauge
type histogram

val counter : ?unit:string -> string -> counter
(** [unit] (e.g. ["ns"], ["bytes"]) is declared by the first registrant
    and lands in the snapshot's [unit] attr; later registrations of the
    same name ignore it. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?unit:string -> string -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Monotonic high-water update (compare-and-swap loop). *)

val gauge_value : gauge -> float

val histogram : ?unit:string -> string -> histogram
val observe : histogram -> int -> unit
(** Record one non-negative integer observation (typically nanoseconds). *)

val histogram_count : histogram -> int

val histogram_percentile : histogram -> float -> int
(** Bucketed estimate of the [q]-th quantile ([q] in [\[0, 1\]]): the
    upper bound of the power-of-two bucket holding the q-th observation,
    clamped to the observed maximum — the same estimate the snapshot's
    [p50]/[p95]/[p99] attrs report. 0 for an empty histogram. *)

(** One registered instrument, flattened for emission. *)
type snapshot = {
  metric : string;
  kind : string;     (** ["counter"], ["gauge"] or ["histogram"] *)
  value : float;     (** count / level / observation count *)
  attrs : (string * Sink.value) list;
      (** histograms: [count], [sum], [min], [max], [mean], [p50], [p95],
          [p99] (bucketed estimates for the percentiles); every kind adds
          [unit] when the instrument declared one *)
}

val snapshot : unit -> snapshot list
(** Every registered instrument, sorted by name. *)

val emit_all : Sink.t -> unit
(** One [Metric] event per instrument, in {!snapshot} order. *)

val reset : unit -> unit
(** Drop every registered instrument — for tests. Existing handles keep
    working but are no longer reachable from {!snapshot}. *)
