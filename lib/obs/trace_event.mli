(** Chrome trace-event JSON sink.

    Renders the span/counter stream in the
    {{:https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU}
    trace-event format} that [chrome://tracing] and Perfetto load
    directly: spans become complete ([ph:"X"]) duration events — one
    track ([tid]) per mining domain — and metrics become counter
    ([ph:"C"]) events. Timestamps are microseconds relative to the
    earliest span start.

    Behind [scifinder --trace-out trace.json]; usually installed
    alongside the JSONL sink with {!Sink.tee}. *)

val sink : string -> Sink.t
(** [sink path] buffers every event and writes the complete trace JSON
    to [path] when the sink is closed (the wrapper object and the
    timestamp origin need the whole stream). Nothing is written if the
    sink is never closed. *)

val render : Sink.event list -> string
(** Render an event list as a complete trace document — one event object
    per line inside ["traceEvents"]. Exposed for tests and for
    {!sink}. Counter events are pinned to the end of the span timeline
    (metrics flush once, at end of run). *)
