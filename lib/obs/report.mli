(** Offline run reports from telemetry JSONL.

    [scifinder report RUN.jsonl] digests the stream written by
    [--metrics] into a phase tree (total vs self time), the per-family
    candidate funnel, cache hit/stale rates and the slowest workload
    shards.

    The reader assumes hostile input: lines that are truncated, contain
    numbers JSON cannot express (NaN, infinities), or carry an unknown
    ["type"] are counted into {!run.skipped} (and the process-wide
    [json.skipped] counter) and otherwise ignored — {!load_lines} never
    raises. *)

type span = {
  sname : string;
  sparent : string option;
  sdur_ns : float;
  sattrs : (string * Json.t) list;
}

type metric = {
  mname : string;
  mkind : string;
  mvalue : float;
  mattrs : (string * Json.t) list;
}

type run = {
  spans : span list;    (** in stream order *)
  metrics : metric list;
  skipped : int;        (** non-blank lines rejected by the reader *)
  total : int;          (** non-blank lines seen *)
}

val load_lines : string list -> run
(** Parse one event per line, skip-and-count everything else. Total
    function: no input makes it raise. *)

val load_file : string -> run
(** {!load_lines} over a file's lines. Raises [Sys_error] only if the
    file cannot be opened — unreadable {e content} is handled by
    skip-and-count. *)

val render : ?top:int -> ?format:[ `Text | `Md ] -> run -> string
(** The report. [top] bounds the slowest-shards table (default 5);
    [`Md] renders GitHub-flavoured markdown tables instead of aligned
    text. *)
