/* Monotonic clock for the telemetry subsystem.

   CLOCK_MONOTONIC is immune to NTP steps and settimeofday, which is the
   whole point: span durations and the Table 8 timing analogues must not
   jump when the wall clock does. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value scifinder_obs_monotonic_ns(value unit)
{
    struct timespec ts;
#ifdef CLOCK_MONOTONIC
    clock_gettime(CLOCK_MONOTONIC, &ts);
#else
    clock_gettime(CLOCK_REALTIME, &ts);
#endif
    (void)unit;
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL
                           + (int64_t)ts.tv_nsec);
}
