(* Monotonic time, via a single C stub over clock_gettime(CLOCK_MONOTONIC). *)

external now_ns : unit -> int64 = "scifinder_obs_monotonic_ns"

let now_s () = Int64.to_float (now_ns ()) /. 1e9

let ns_since t0 = Int64.sub (now_ns ()) t0

let time f =
  let t0 = now_ns () in
  let result = f () in
  (result, Int64.to_float (ns_since t0) /. 1e9)
