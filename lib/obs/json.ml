(* A tiny recursive-descent JSON reader used to validate the telemetry
   output (golden tests, the CI bench smoke check). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n
          && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do advance () done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l; value
    end else fail ("bad literal, wanted " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "dangling escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           if !pos + 4 >= n then fail "short \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_string b ("\\u" ^ hex)
            | None -> fail "bad \\u escape");
           pos := !pos + 5
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do advance () done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance (); skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws (); expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance (); skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec to_string_hum = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | Arr l -> "[" ^ String.concat ", " (List.map to_string_hum l) ^ "]"
  | Obj l ->
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> k ^ ": " ^ to_string_hum v) l)
    ^ "}"
