(* Telemetry events and pluggable sinks. See the interface for the
   contract; the one subtlety here is domain safety: shard spans close on
   worker domains, so [emit] implementations serialise with a mutex and
   the global sink lives in an [Atomic]. *)

type value =
  | I of int
  | F of float
  | S of string
  | B of bool

type event =
  | Span of {
      name : string;
      parent : string option;
      domain : int;
      start_ns : int64;
      dur_ns : int64;
      attrs : (string * value) list;
    }
  | Metric of {
      name : string;
      kind : string;
      value : float;
      attrs : (string * value) list;
    }

type t = {
  emit : event -> unit;
  flush : unit -> unit;
  close : unit -> unit;
  null : bool;
}

let make ?(flush = fun () -> ()) ?(close = fun () -> ()) ~emit () =
  { emit; flush; close; null = false }

let null = { emit = ignore; flush = ignore; close = ignore; null = true }

let emit t ev = t.emit ev
let flush t = t.flush ()
let close t = t.close ()
let is_null t = t.null

(* Fan one event stream out to two sinks (--metrics plus --trace-out).
   Null composes away so [enabled] stays accurate. *)
let tee a b =
  if a.null then b
  else if b.null then a
  else
    { emit = (fun ev -> a.emit ev; b.emit ev);
      flush = (fun () -> a.flush (); b.flush ());
      close = (fun () -> a.close (); b.close ());
      null = false }

(* ---- JSON encoding ---- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Floats must stay valid JSON: no "inf"/"nan" literals, and always a
   digit after the decimal point. *)
let buf_add_json_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string b "null"
  else
    Buffer.add_string b (Printf.sprintf "%.17g" f)

let buf_add_value b = function
  | I n -> Buffer.add_string b (string_of_int n)
  | F f -> buf_add_json_float b f
  | S s -> buf_add_json_string b s
  | B v -> Buffer.add_string b (if v then "true" else "false")

let buf_add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char b ',';
       buf_add_json_string b k;
       Buffer.add_char b ':';
       buf_add_value b v)
    attrs;
  Buffer.add_char b '}'

let json_of_event ev =
  let b = Buffer.create 160 in
  (match ev with
   | Span { name; parent; domain; start_ns; dur_ns; attrs } ->
     Buffer.add_string b "{\"type\":\"span\",\"name\":";
     buf_add_json_string b name;
     Buffer.add_string b ",\"parent\":";
     (match parent with
      | Some p -> buf_add_json_string b p
      | None -> Buffer.add_string b "null");
     Buffer.add_string b (Printf.sprintf ",\"domain\":%d" domain);
     Buffer.add_string b (Printf.sprintf ",\"start_ns\":%Ld" start_ns);
     Buffer.add_string b (Printf.sprintf ",\"dur_ns\":%Ld" dur_ns);
     Buffer.add_string b ",\"attrs\":";
     buf_add_attrs b attrs
   | Metric { name; kind; value; attrs } ->
     Buffer.add_string b "{\"type\":\"metric\",\"name\":";
     buf_add_json_string b name;
     Buffer.add_string b ",\"kind\":";
     buf_add_json_string b kind;
     Buffer.add_string b ",\"value\":";
     buf_add_json_float b value;
     Buffer.add_string b ",\"attrs\":";
     buf_add_attrs b attrs);
  Buffer.add_char b '}';
  Buffer.contents b

(* ---- The shipped sinks ---- *)

let pretty_of_event ev =
  let attrs_str attrs =
    if attrs = [] then ""
    else
      " {"
      ^ String.concat ", "
          (List.map
             (fun (k, v) ->
                k ^ "="
                ^ (match v with
                   | I n -> string_of_int n
                   | F f -> Printf.sprintf "%g" f
                   | S s -> s
                   | B v -> string_of_bool v))
             attrs)
      ^ "}"
  in
  match ev with
  | Span { name; parent; domain; dur_ns; attrs; _ } ->
    Printf.sprintf "[obs] span %-24s %10.3f ms  d%d%s%s" name
      (Int64.to_float dur_ns /. 1e6) domain
      (match parent with Some p -> " <- " ^ p | None -> "")
      (attrs_str attrs)
  | Metric { name; kind; value; attrs } ->
    Printf.sprintf "[obs] %-6s %-28s %14.1f%s" kind name value
      (attrs_str attrs)

let stderr_pretty () =
  let lock = Mutex.create () in
  make
    ~emit:(fun ev ->
        Mutex.protect lock (fun () ->
            output_string stderr (pretty_of_event ev ^ "\n");
            Stdlib.flush stderr))
    ()

let jsonl_channel oc =
  let lock = Mutex.create () in
  { emit =
      (fun ev ->
         let line = json_of_event ev ^ "\n" in
         Mutex.protect lock (fun () ->
             output_string oc line;
             Stdlib.flush oc));
    flush = (fun () -> Mutex.protect lock (fun () -> Stdlib.flush oc));
    close = (fun () -> Mutex.protect lock (fun () -> close_out oc));
    null = false }

let jsonl path = jsonl_channel (open_out path)

let memory () =
  let lock = Mutex.create () in
  let events = ref [] in
  let sink =
    make ~emit:(fun ev -> Mutex.protect lock (fun () -> events := ev :: !events)) ()
  in
  (sink, fun () -> Mutex.protect lock (fun () -> List.rev !events))

(* ---- The process-global sink ---- *)

let global_sink = Atomic.make null

let set_global s = Atomic.set global_sink s
let global () = Atomic.get global_sink
let enabled () = not (Atomic.get global_sink).null
let emit_global ev = (Atomic.get global_sink).emit ev
