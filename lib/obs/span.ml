(* Nestable spans over the monotonic clock. The open-span stack is
   domain-local (DLS), so worker domains nest independently of the
   caller; events flow to the global sink at close. *)

let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* The inherited context: a parent adopted from *another* domain. A
   fresh worker domain starts with an empty stack, so a span it opens
   used to be a root even when, logically, it ran inside the caller's
   phase span (the "parent":null shard spans). [Util.Parallel] callers
   capture [current ()] at submission and re-establish it on the worker
   with [with_context]; the cell only matters while the local stack is
   empty — a locally enclosing span always wins. *)
let inherited_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () =
  match !(Domain.DLS.get stack_key) with
  | [] -> !(Domain.DLS.get inherited_key)
  | name :: _ -> Some name

let with_context parent f =
  let cell = Domain.DLS.get inherited_key in
  let saved = !cell in
  cell := parent;
  Fun.protect ~finally:(fun () -> cell := saved) f

let close ~name ~parent ~attrs ~start_ns ~dur_ns stack =
  (* Defensive pop: tolerate a callee that unbalanced the stack rather
     than corrupting every enclosing span. *)
  (match !stack with
   | top :: rest when String.equal top name -> stack := rest
   | other ->
     let rec drop = function
       | top :: rest when not (String.equal top name) -> drop rest
       | _ :: rest -> rest
       | [] -> []
     in
     stack := drop other);
  Sink.emit_global
    (Sink.Span
       { name; parent;
         domain = (Domain.self () :> int);
         start_ns; dur_ns; attrs })

let timed ?(attrs = []) ~name f =
  let stack = Domain.DLS.get stack_key in
  let parent =
    match !stack with
    | [] -> !(Domain.DLS.get inherited_key)
    | p :: _ -> Some p
  in
  stack := name :: !stack;
  let start_ns = Clock.now_ns () in
  match f () with
  | v ->
    let dur_ns = Clock.ns_since start_ns in
    close ~name ~parent ~attrs ~start_ns ~dur_ns stack;
    (v, Int64.to_float dur_ns /. 1e9)
  | exception e ->
    close ~name ~parent ~attrs ~start_ns ~dur_ns:(Clock.ns_since start_ns)
      stack;
    raise e

let with_ ?attrs ~name f = fst (timed ?attrs ~name f)
