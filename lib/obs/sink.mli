(** Telemetry events and pluggable sinks.

    Every span close and every metrics flush produces an {!event}; a sink
    decides what to do with it. Three sinks ship with the library: {!null}
    (drop everything — the default, so instrumented code costs almost
    nothing when nobody is listening), {!stderr_pretty} (human-readable
    lines on stderr), and {!jsonl} (one schema-stable JSON object per
    line, the machine-readable format behind [scifinder --metrics] and
    the bench harness).

    Sinks must be safe to call from several domains at once: the JSONL
    sink serialises writes with a mutex, and the global sink cell is an
    [Atomic]. *)

(** Attribute values attached to events. *)
type value =
  | I of int
  | F of float
  | S of string
  | B of bool

type event =
  | Span of {
      name : string;
      parent : string option;  (** enclosing span in the same domain *)
      domain : int;            (** domain id the span ran on *)
      start_ns : int64;        (** monotonic start timestamp *)
      dur_ns : int64;
      attrs : (string * value) list;
    }
  | Metric of {
      name : string;
      kind : string;           (** ["counter"], ["gauge"] or ["histogram"] *)
      value : float;
      attrs : (string * value) list;
    }

type t

val make :
  ?flush:(unit -> unit) -> ?close:(unit -> unit) ->
  emit:(event -> unit) -> unit -> t
(** A custom sink. [emit] must tolerate concurrent callers. *)

val null : t
(** Drops every event. [is_null null = true]. *)

val stderr_pretty : unit -> t
(** Pretty-prints one line per event on stderr. *)

val jsonl : string -> t
(** [jsonl path] truncates/creates [path] and writes one JSON object per
    event per line (see {!json_of_event} for the schema). Writes are
    mutex-serialised and flushed per line, so shard spans emitted from
    worker domains interleave whole-line-atomically. *)

val memory : unit -> t * (unit -> event list)
(** An in-memory recording sink and its (emission-ordered) reader — for
    tests. *)

val tee : t -> t -> t
(** [tee a b] forwards every event (and flush/close) to both sinks, in
    order. {!null} is an identity: [tee null s] is [s]. *)

val json_of_event : event -> string
(** The JSONL schema, one object per event with fixed key order:
    [{"type":"span","name":..,"parent":..,"domain":..,"start_ns":..,
      "dur_ns":..,"attrs":{..}}] and
    [{"type":"metric","name":..,"kind":..,"value":..,"attrs":{..}}]. *)

val buf_add_json_string : Buffer.t -> string -> unit
(** JSON string escaping as {!json_of_event} does it — shared with the
    other JSON writers in the tree ([Trace_event], the bench harness). *)

val buf_add_json_float : Buffer.t -> float -> unit
(** Always valid JSON: NaN/infinities become [null], integral floats
    keep a trailing digit. *)

val emit : t -> event -> unit
val flush : t -> unit
val close : t -> unit
val is_null : t -> bool

(** {1 The process-global sink}

    Instrumented library code emits to the global sink; entry points
    install a real sink ([--metrics]) or leave the default {!null}. *)

val set_global : t -> unit
val global : unit -> t
val enabled : unit -> bool
(** [true] when the global sink is not {!null} — the gate for
    instrumentation that is too expensive to run unobserved (e.g.
    per-assertion evaluation timing in [Assertions.Monitor]). *)

val emit_global : event -> unit
