(** A minimal JSON reader — just enough to validate and inspect the
    telemetry JSONL stream and [BENCH_pipeline.json] without pulling a
    JSON dependency into the toolchain. Accepts standard JSON (RFC 8259)
    minus the exotic corners we never emit (surrogate-pair escapes are
    passed through verbatim). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing garbage is an error. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing fields or non-objects. *)

val to_string_hum : t -> string
(** Debug rendering (not guaranteed round-trippable). *)
