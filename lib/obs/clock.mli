(** Monotonic time. All telemetry timing goes through this module: unlike
    [Unix.gettimeofday], the monotonic clock never steps backwards under
    NTP adjustment, so span durations and the pipeline's [seconds] fields
    are always non-negative and meaningful. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. The origin is unspecified (boot
    time on Linux); only differences are meaningful. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

val ns_since : int64 -> int64
(** [ns_since t0] is [now_ns () - t0]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed monotonic
    seconds — the drop-in replacement for the wall-clock timing helper
    that used to live in [Pipeline]. *)
