(* The global metrics registry. Counters are single Atomic adds so the
   mining hot paths can bump them from worker domains without a lock;
   histograms serialise on a per-instrument mutex (they are observed at
   per-phase / per-run cadence, not per record). *)

type counter = { cname : string; cunit : string option; n : int Atomic.t }

type gauge = { gname : string; gunit : string option; level : float Atomic.t }

(* Power-of-two bucket histogram: observation v lands in bucket
   floor(log2 v) (bucket 0 holds 0 and 1). 63 buckets cover the int
   range; percentile estimates report the bucket's upper bound. *)
type histogram = {
  hname : string;
  hunit : string option;
  lock : Mutex.t;
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable hmin : int;
  mutable hmax : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 97
let registry_lock = Mutex.create ()

let find_or_register name build cast describe =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i ->
        (match cast i with
         | Some x -> x
         | None ->
           invalid_arg
             (Printf.sprintf "Obs.Metrics: %s already registered as a %s"
                name (describe i)))
      | None ->
        let x, i = build () in
        Hashtbl.add registry name i;
        x)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* The unit is fixed by whoever registers the instrument first — it is
   part of the declaration, like the kind, not per-call state. *)
let counter ?unit name =
  find_or_register name
    (fun () ->
       let c = { cname = name; cunit = unit; n = Atomic.make 0 } in
       (c, Counter c))
    (function Counter c -> Some c | _ -> None)
    kind_name

let incr c = Atomic.incr c.n
let add c k = ignore (Atomic.fetch_and_add c.n k)
let counter_value c = Atomic.get c.n

let gauge ?unit name =
  find_or_register name
    (fun () ->
       let g = { gname = name; gunit = unit; level = Atomic.make 0.0 } in
       (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)
    kind_name

let set g v = Atomic.set g.level v

let rec set_max g v =
  let cur = Atomic.get g.level in
  if v > cur && not (Atomic.compare_and_set g.level cur v) then set_max g v

let gauge_value g = Atomic.get g.level

let histogram ?unit name =
  find_or_register name
    (fun () ->
       let h = { hname = name; hunit = unit; lock = Mutex.create ();
                 buckets = Array.make 63 0;
                 count = 0; sum = 0; hmin = max_int; hmax = min_int } in
       (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)
    kind_name

let bucket_of v =
  if v <= 1 then 0
  else
    let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
    go 0 v

let observe h v =
  let v = max 0 v in
  Mutex.protect h.lock (fun () ->
      h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
      h.count <- h.count + 1;
      h.sum <- h.sum + v;
      if v < h.hmin then h.hmin <- v;
      if v > h.hmax then h.hmax <- v)

let histogram_count h = Mutex.protect h.lock (fun () -> h.count)

(* Upper bound of the bucket holding the q-th observation. *)
let percentile_estimate h q =
  if h.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let seen = ref 0 and b = ref 0 in
    while !seen < rank && !b < Array.length h.buckets do
      seen := !seen + h.buckets.(!b);
      if !seen < rank then Stdlib.incr b
    done;
    min h.hmax (if !b = 0 then 1 else (1 lsl (!b + 1)) - 1)
  end

let histogram_percentile h q =
  Mutex.protect h.lock (fun () -> percentile_estimate h q)

type snapshot = {
  metric : string;
  kind : string;
  value : float;
  attrs : (string * Sink.value) list;
}

let unit_attr = function
  | None -> []
  | Some u -> [ ("unit", Sink.S u) ]

let snapshot_of = function
  | Counter c ->
    { metric = c.cname; kind = "counter";
      value = float_of_int (Atomic.get c.n); attrs = unit_attr c.cunit }
  | Gauge g ->
    { metric = g.gname; kind = "gauge"; value = Atomic.get g.level;
      attrs = unit_attr g.gunit }
  | Histogram h ->
    Mutex.protect h.lock (fun () ->
        let mean =
          if h.count = 0 then 0.0
          else float_of_int h.sum /. float_of_int h.count
        in
        { metric = h.hname; kind = "histogram";
          value = float_of_int h.count;
          attrs =
            [ ("count", Sink.I h.count);
              ("sum", Sink.I h.sum);
              ("min", Sink.I (if h.count = 0 then 0 else h.hmin));
              ("max", Sink.I (if h.count = 0 then 0 else h.hmax));
              ("mean", Sink.F mean);
              ("p50", Sink.I (percentile_estimate h 0.50));
              ("p95", Sink.I (percentile_estimate h 0.95));
              ("p99", Sink.I (percentile_estimate h 0.99)) ]
            @ unit_attr h.hunit })

let snapshot () =
  let all =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun _ i acc -> i :: acc) registry [])
  in
  List.sort (fun a b -> compare a.metric b.metric) (List.map snapshot_of all)

let emit_all sink =
  List.iter
    (fun s ->
       Sink.emit sink
         (Sink.Metric
            { name = s.metric; kind = s.kind; value = s.value;
              attrs = s.attrs }))
    (snapshot ())

let reset () = Mutex.protect registry_lock (fun () -> Hashtbl.reset registry)
