(* Offline digestion of a telemetry JSONL stream ([scifinder --metrics
   RUN.jsonl]) into a human-readable run report. The reader is built for
   hostile input: a telemetry file can be truncated mid-line by a
   crashed run, hand-edited, or simply not be telemetry at all —
   anything that does not parse as a known event is counted and
   skipped, never raised on. *)

let c_skipped = Metrics.counter "json.skipped"

type span = {
  sname : string;
  sparent : string option;
  sdur_ns : float;
  sattrs : (string * Json.t) list;
}

type metric = {
  mname : string;
  mkind : string;
  mvalue : float;
  mattrs : (string * Json.t) list;
}

type run = {
  spans : span list;
  metrics : metric list;
  skipped : int;  (* lines that were not a well-formed known event *)
  total : int;    (* non-blank lines seen *)
}

let str_member k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let num_member k j =
  match Json.member k j with Some (Json.Num f) -> Some f | _ -> None

let attrs_member j =
  match Json.member "attrs" j with Some (Json.Obj kvs) -> kvs | _ -> []

(* A line is accepted only if the fields the report depends on are
   present and well-typed; everything else is skip-and-count. NaN and
   huge numerics never make it here — the JSON grammar has no literal
   for them, so such lines fail to parse. *)
let classify j =
  match str_member "type" j with
  | Some "span" ->
    (match (str_member "name" j, num_member "dur_ns" j) with
     | Some sname, Some sdur_ns ->
       let sparent =
         match Json.member "parent" j with
         | Some (Json.Str p) -> Some p
         | _ -> None
       in
       Some (Either.Left { sname; sparent; sdur_ns; sattrs = attrs_member j })
     | _ -> None)
  | Some "metric" ->
    (match (str_member "name" j, str_member "kind" j, num_member "value" j)
     with
     | Some mname, Some mkind, Some mvalue ->
       Some (Either.Right { mname; mkind; mvalue; mattrs = attrs_member j })
     | _ -> None)
  | _ -> None

let load_lines lines =
  let spans = ref [] and metrics = ref [] in
  let skipped = ref 0 and total = ref 0 in
  List.iter
    (fun line ->
       let line = String.trim line in
       if line <> "" then begin
         incr total;
         match Json.parse line with
         | Error _ -> incr skipped
         | Ok j ->
           (match classify j with
            | Some (Either.Left s) -> spans := s :: !spans
            | Some (Either.Right m) -> metrics := m :: !metrics
            | None -> incr skipped)
       end)
    lines;
  Metrics.add c_skipped !skipped;
  { spans = List.rev !spans; metrics = List.rev !metrics;
    skipped = !skipped; total = !total }

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let lines = ref [] in
       (try
          while true do lines := input_line ic :: !lines done
        with End_of_file -> ());
       load_lines (List.rev !lines))

(* ---- Aggregation ---- *)

type node = {
  mutable total : float;           (* summed dur_ns over all instances *)
  mutable count : int;
  mutable parents : (string * int) list;  (* parent name -> occurrences *)
}

let bump_parent n p =
  let seen = List.assoc_opt p n.parents |> Option.value ~default:0 in
  n.parents <- (p, seen + 1) :: List.remove_assoc p n.parents

(* Collapse spans to one node per name; each node hangs under its most
   common parent (span names form a static tree in practice — the mode
   only matters for adversarial input). *)
let span_nodes spans =
  let nodes : (string, node) Hashtbl.t = Hashtbl.create 32 in
  let node name =
    match Hashtbl.find_opt nodes name with
    | Some n -> n
    | None ->
      let n = { total = 0.0; count = 0; parents = [] } in
      Hashtbl.add nodes name n;
      n
  in
  List.iter
    (fun s ->
       let n = node s.sname in
       n.total <- n.total +. s.sdur_ns;
       n.count <- n.count + 1;
       match s.sparent with Some p -> bump_parent n p | None -> ())
    spans;
  nodes

let mode_parent n =
  match List.sort (fun (_, a) (_, b) -> compare b a) n.parents with
  | (p, occ) :: _ when occ * 2 > n.count -> Some p
  | _ -> None

let metric_value run name =
  List.find_opt (fun m -> String.equal m.mname name) run.metrics
  |> Option.map (fun m -> m.mvalue)

let counter run name = metric_value run name |> Option.value ~default:0.0

(* Families present in the run, from the daikon.candidates.<fam>.born
   gauges the pipeline publishes. *)
let funnel_families run =
  List.filter_map
    (fun m ->
       let prefix = "daikon.candidates." and suffix = ".born" in
       let pl = String.length prefix and sl = String.length suffix in
       let l = String.length m.mname in
       if l > pl + sl
          && String.sub m.mname 0 pl = prefix
          && String.sub m.mname (l - sl) sl = suffix
       then Some (String.sub m.mname pl (l - pl - sl))
       else None)
    run.metrics
  |> List.sort_uniq compare

let fmt_ms ns = Printf.sprintf "%.1f" (ns /. 1e6)

let pct num den = if den <= 0.0 then 0.0 else 100.0 *. num /. den

(* ---- Rendering ---- *)

let render ?(top = 5) ?(format = `Text) run =
  let md = format = `Md in
  let b = Buffer.create 2048 in
  let heading s =
    if md then Buffer.add_string b (Printf.sprintf "\n## %s\n\n" s)
    else Buffer.add_string b (Printf.sprintf "\n%s\n" s)
  in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  if md then line "# Flight report" else line "flight report";
  line "%s"
    (Printf.sprintf "events: %d spans, %d metrics; skipped lines: %d of %d"
       (List.length run.spans) (List.length run.metrics) run.skipped
       run.total);

  (* Span tree: total vs self time per span name. *)
  let nodes = span_nodes run.spans in
  if Hashtbl.length nodes > 0 then begin
    heading (if md then "Phases" else "phases (total ms / self ms / count):");
    if md then begin
      line "| phase | total ms | self ms | count |";
      line "|---|---:|---:|---:|"
    end;
    let names = Hashtbl.fold (fun k _ acc -> k :: acc) nodes [] in
    let children name =
      List.filter
        (fun c -> mode_parent (Hashtbl.find nodes c) = Some name)
        names
      |> List.sort (fun a b ->
          compare (Hashtbl.find nodes b).total (Hashtbl.find nodes a).total)
    in
    let self name =
      let n = Hashtbl.find nodes name in
      let kids = List.fold_left
          (fun acc c -> acc +. (Hashtbl.find nodes c).total) 0.0
          (children name)
      in
      Float.max 0.0 (n.total -. kids)
    in
    let roots =
      List.filter
        (fun name ->
           match mode_parent (Hashtbl.find nodes name) with
           | None -> true
           | Some p -> not (Hashtbl.mem nodes p))
        names
      |> List.sort (fun a b ->
          compare (Hashtbl.find nodes b).total (Hashtbl.find nodes a).total)
    in
    let rec walk depth visited name =
      if not (List.mem name visited) then begin
        let n = Hashtbl.find nodes name in
        if md then
          line "| %s%s | %s | %s | %d |"
            (String.concat "" (List.init depth (fun _ -> "&nbsp;&nbsp;")))
            name (fmt_ms n.total) (fmt_ms (self name)) n.count
        else
          line "  %s%-*s %10s %10s  x%d"
            (String.make (2 * depth) ' ')
            (max 1 (26 - (2 * depth)))
            name (fmt_ms n.total) (fmt_ms (self name)) n.count;
        List.iter (walk (depth + 1) (name :: visited)) (children name)
      end
    in
    List.iter (walk 0 []) roots
  end;

  (* Candidate funnel per invariant family. *)
  let fams = funnel_families run in
  if fams <> [] then begin
    heading
      (if md then "Candidate funnel" else "candidate funnel (born -> live):");
    if md then begin
      line "| family | born | dead | live | survival |";
      line "|---|---:|---:|---:|---:|"
    end;
    List.iter
      (fun fam ->
         let v suffix =
           counter run (Printf.sprintf "daikon.candidates.%s.%s" fam suffix)
         in
         let born = v "born" and dead = v "dead" and live = v "live" in
         if md then
           line "| %s | %.0f | %.0f | %.0f | %.1f%% |" fam born dead live
             (pct live born)
         else
           line "  %-10s born %7.0f  dead %7.0f  live %7.0f  (%.1f%% survive)"
             fam born dead live (pct live born))
      fams
  end;

  (* Cache behaviour. *)
  let hit = counter run "mine.cache.hit"
  and miss = counter run "mine.cache.miss"
  and stale = counter run "mine.cache.stale"
  and shit = counter run "mine.cache.summary_hit"
  and smiss = counter run "mine.cache.summary_miss" in
  if hit +. miss +. stale +. shit +. smiss > 0.0 then begin
    heading (if md then "Cache" else "cache:");
    line
      (if md then "- shard: %.0f hit / %.0f miss / %.0f stale (%.1f%% hit)"
       else "  shard   %.0f hit / %.0f miss / %.0f stale (%.1f%% hit)")
      hit miss stale
      (pct hit (hit +. miss +. stale));
    line
      (if md then "- summary: %.0f hit / %.0f miss (%.1f%% hit)"
       else "  summary %.0f hit / %.0f miss (%.1f%% hit)")
      shit smiss
      (pct shit (shit +. smiss))
  end;

  (* Slowest shards, by workload attr. *)
  let shards =
    List.filter (fun s -> String.equal s.sname "mine.shard") run.spans
    |> List.sort (fun a b -> compare b.sdur_ns a.sdur_ns)
  in
  if shards <> [] then begin
    heading
      (Printf.sprintf
         (if md then "Slowest shards (top %d)" else "slowest shards (top %d):")
         top);
    if md then begin
      line "| workload | ms |";
      line "|---|---:|"
    end;
    List.iteri
      (fun i s ->
         if i < top then begin
           let w =
             match List.assoc_opt "workload" s.sattrs with
             | Some (Json.Str w) -> w
             | _ -> "?"
           in
           if md then line "| %s | %s |" w (fmt_ms s.sdur_ns)
           else line "  %-24s %10s" w (fmt_ms s.sdur_ns)
         end)
      shards
  end;

  (* Reader health from the run being reported on, if it recorded any. *)
  let recorded_skips = counter run "json.skipped" in
  if recorded_skips > 0.0 then
    line "%sjson.skipped (in run): %.0f" (if md then "\n" else "\n  ")
      recorded_skips;
  Buffer.contents b
