(* Chrome trace-event JSON rendering. The sink buffers the event stream
   and renders the whole trace on close: trace files need a global
   timestamp origin (so the viewer opens near t=0) and a closing
   wrapper, neither of which can be streamed line-by-line the way the
   JSONL sink does. One event object per line keeps the output
   greppable and lets the CI validator parse it strictly. *)

let add_value b = function
  | Sink.I n -> Buffer.add_string b (string_of_int n)
  | Sink.F f -> Sink.buf_add_json_float b f
  | Sink.S s -> Sink.buf_add_json_string b s
  | Sink.B v -> Buffer.add_string b (if v then "true" else "false")

let render events =
  (* Normalise timestamps to the earliest span start so [ts] is small
     and non-negative; metrics (flushed once at end of run) sit at the
     end of the timeline. *)
  let t0 = ref Int64.max_int and t_end = ref 0L in
  let domains = Hashtbl.create 8 in
  List.iter
    (function
      | Sink.Span { domain; start_ns; dur_ns; _ } ->
        if start_ns < !t0 then t0 := start_ns;
        let e = Int64.add start_ns dur_ns in
        if e > !t_end then t_end := e;
        Hashtbl.replace domains domain ()
      | Sink.Metric _ -> ())
    events;
  let t0 = if !t0 = Int64.max_int then 0L else !t0 in
  let us ns = Int64.to_float (Int64.sub ns t0) /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let line add =
    if !first then first := false else Buffer.add_string b ",\n";
    add ()
  in
  (* Metadata events so Perfetto labels the process and one track per
     mining domain. *)
  line (fun () ->
      Buffer.add_string b
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0.0,\"pid\":1,\
         \"tid\":0,\"args\":{\"name\":\"scifinder\"}}");
  let tids =
    List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) domains [])
  in
  List.iter
    (fun d ->
       line (fun () ->
           Buffer.add_string b
             (Printf.sprintf
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.0,\
                 \"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
                d d)))
    tids;
  List.iter
    (function
      | Sink.Span { name; parent; domain; start_ns; dur_ns; attrs } ->
        line (fun () ->
            Buffer.add_string b "{\"name\":";
            Sink.buf_add_json_string b name;
            Buffer.add_string b ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":";
            Buffer.add_string b (Printf.sprintf "%.3f" (us start_ns));
            Buffer.add_string b ",\"dur\":";
            Buffer.add_string b
              (Printf.sprintf "%.3f" (Int64.to_float dur_ns /. 1e3));
            Buffer.add_string b
              (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"args\":{\"parent\":"
                 domain);
            (match parent with
             | Some p -> Sink.buf_add_json_string b p
             | None -> Buffer.add_string b "null");
            List.iter
              (fun (k, v) ->
                 Buffer.add_char b ',';
                 Sink.buf_add_json_string b k;
                 Buffer.add_char b ':';
                 add_value b v)
              attrs;
            Buffer.add_string b "}}")
      | Sink.Metric { name; kind; value; attrs = _ } ->
        line (fun () ->
            Buffer.add_string b "{\"name\":";
            Sink.buf_add_json_string b name;
            Buffer.add_string b ",\"cat\":";
            Sink.buf_add_json_string b kind;
            Buffer.add_string b ",\"ph\":\"C\",\"ts\":";
            Buffer.add_string b (Printf.sprintf "%.3f" (us !t_end));
            Buffer.add_string b ",\"pid\":1,\"tid\":0,\"args\":{\"value\":";
            Sink.buf_add_json_float b value;
            Buffer.add_string b "}}"))
    events;
  Buffer.add_string b "\n],\n\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let sink path =
  let lock = Mutex.create () in
  let events = ref [] in
  Sink.make
    ~emit:(fun ev -> Mutex.protect lock (fun () -> events := ev :: !events))
    ~close:(fun () ->
        Mutex.protect lock (fun () ->
            let evs = List.rev !events in
            events := [];
            let oc = open_out path in
            output_string oc (render evs);
            close_out oc))
    ()
