(* The 17-program trace corpus of §5.1, in the cumulative order of the
   Figure 3 x-axis: vmlinux, basicmath, parser, mesa, ammp, mcf, instru,
   gzip, crafty, bzip, quake, twolf, vpr, then the "misc" bundle
   (pi, bitcount, fft, helloworld) — plus a process-local registry for
   workloads synthesised at run time (the coverage-guided fuzzer). *)

exception Duplicate_workload of string

let all : Rt.t list =
  [ W_vmlinux.workload;
    W_basicmath.workload;
    W_parser.workload;
    W_mesa.workload;
    W_ammp.workload;
    W_mcf.workload;
    W_instru.workload;
    W_gzip.workload;
    W_crafty.workload;
    W_bzip.workload;
    W_quake.workload;
    W_twolf.workload;
    W_vpr.workload;
    W_pi.workload;
    W_bitcount.workload;
    W_fft.workload;
    W_hello.workload;
  ]

(* Generated workloads registered by Fuzz.Corpus (and tests). Kept as an
   immutable list behind a ref: registration happens before any parallel
   mining starts, after which worker domains only read it. *)
let extra : Rt.t list ref = ref []

let registered () = List.rev !extra

let mem_name name l = List.exists (fun w -> String.equal w.Rt.name name) l

(* Workloads are addressed by name everywhere downstream (shard cache
   files, Figure 3 groups, --workload flags), so a colliding registration
   would silently shadow a program; reject it loudly instead. *)
let register (w : Rt.t) =
  if mem_name w.Rt.name all || mem_name w.Rt.name !extra then
    raise (Duplicate_workload w.Rt.name);
  extra := w :: !extra

let reset_registered () = extra := []

let by_name name =
  match List.find_opt (fun w -> String.equal w.Rt.name name) all with
  | Some _ as found -> found
  | None -> List.find_opt (fun w -> String.equal w.Rt.name name) !extra

let names = List.map (fun w -> w.Rt.name) all

(* The aggregation used on the Figure 3 x-axis: the last four programs are
   grouped as "misc". *)
let figure3_groups =
  [ [ "vmlinux" ]; [ "basicmath" ]; [ "parser" ]; [ "mesa" ]; [ "ammp" ];
    [ "mcf" ]; [ "instru" ]; [ "gzip" ]; [ "crafty" ]; [ "bzip" ];
    [ "quake" ]; [ "twolf" ]; [ "vpr" ];
    [ "pi"; "bitcount"; "fft"; "helloworld" ] ]

let figure3_labels =
  [ "vmlinux"; "basicmath"; "parser"; "mesa"; "ammp"; "mcf"; "instru";
    "gzip"; "crafty"; "bzip"; "quake"; "twolf"; "vpr"; "misc" ]
