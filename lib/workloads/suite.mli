(** The 17-program trace corpus of §5.1, in the cumulative order of the
    Figure 3 x-axis: vmlinux, basicmath, parser, mesa, ammp, mcf, instru,
    gzip, crafty, bzip, quake, twolf, vpr, then the "misc" bundle (pi,
    bitcount, fft, helloworld). Together the programs cover every
    instruction of the basic set plus the exception machinery.

    Run-time-generated workloads (the coverage-guided fuzzer's corpus)
    join the suite through {!register}; {!by_name} — the lookup every
    pipeline stage uses — sees both populations. *)

exception Duplicate_workload of string
(** A registration collided with a built-in or already-registered
    workload name. Names key the snapshot cache and the Figure 3 groups,
    so a collision would silently shadow a program. *)

val all : Rt.t list
(** The built-in 17-program corpus (registered workloads not included). *)

val register : Rt.t -> unit
(** Make a generated workload addressable by name ({!by_name}), and so
    minable by [Pipeline.mine]. Not safe to call concurrently with
    parallel mining; register the corpus first, then mine.
    @raise Duplicate_workload on a name collision. *)

val registered : unit -> Rt.t list
(** Registered workloads, in registration order. *)

val reset_registered : unit -> unit
(** Drop every registered workload — for tests. *)

val by_name : string -> Rt.t option
(** Built-ins first, then the registry. *)

val names : string list

val figure3_groups : string list list
(** The x-axis aggregation: the last four programs group as "misc". *)

val figure3_labels : string list
