(* Compact binary primitives for the on-disk snapshot codecs.

   Integers are LEB128 varints; signed values are zigzag-folded first so
   small negative numbers stay short. Strings are length-prefixed. A
   reader is a cursor over an immutable byte string; running off the end
   raises [Truncated] rather than returning garbage, which is how a
   partially written (torn) snapshot is detected.

   [atomic_write] is the durability half: the bytes land in a temp file
   in the destination directory and are renamed into place, so a reader
   can never observe a half-written file and a crashed writer leaves at
   worst an orphaned temp file. *)

exception Truncated

(* ---- writing ---- *)

type writer = Buffer.t

let writer () = Buffer.create 4096

let contents = Buffer.contents

(* Unsigned LEB128. Values must be non-negative. *)
let write_uint b v =
  if v < 0 then invalid_arg "Binio.write_uint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

(* Zigzag: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... *)
let write_int b v =
  write_uint b (if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1)

let write_bool b v = write_uint b (if v then 1 else 0)

let write_string b s =
  write_uint b (String.length s);
  Buffer.add_string b s

(* Raw bytes, no length prefix (magic numbers, pre-framed blocks). *)
let write_raw = Buffer.add_string

(* ---- reading ---- *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let eof r = r.pos >= String.length r.data

let read_byte r =
  if r.pos >= String.length r.data then raise Truncated;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

(* Number of value bits in a non-negative OCaml int: 62 on 64-bit
   platforms. A varint whose bits reach the sign bit or beyond would
   silently wrap negative (or drop bits) if accepted, so it is rejected
   as hostile input instead. *)
let uint_value_bits = Sys.int_size - 1

let read_uint r =
  let rec go shift acc =
    let c = read_byte r in
    if c land 0x80 = 0 then begin
      (* Final byte. Two hostile shapes to reject: a zero final byte
         after a continuation (non-canonical padding, e.g. 0x80 0x00 as
         an overlong encoding of 0 — the writer never emits it, and
         accepting it would let one value have many encodings), and bits
         that land on or past the sign bit. *)
      if shift > 0 && c = 0 then raise Truncated;
      if shift > uint_value_bits - 7 && c lsr (uint_value_bits - shift) <> 0
      then raise Truncated;
      acc lor (c lsl shift)
    end
    else begin
      (* A continuation here would put the next byte entirely past the
         value bits; no canonical encoding continues this far. *)
      if shift + 7 >= uint_value_bits then raise Truncated;
      go (shift + 7) (acc lor ((c land 0x7F) lsl shift))
    end
  in
  go 0 0

let read_int r =
  let v = read_uint r in
  if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

let read_bool r =
  match read_uint r with
  | 0 -> false
  | 1 -> true
  | _ -> raise Truncated

let read_string_exact r n =
  (* [r.pos + n] can wrap negative for a hostile length near [max_int]
     and slip past the bounds check into [String.sub]'s
     [Invalid_argument]; comparing against the remaining byte count
     cannot overflow because [pos <= length]. *)
  if n < 0 || n > String.length r.data - r.pos then raise Truncated;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_string r = read_string_exact r (read_uint r)

(* ---- atomic file replacement ---- *)

(* Flushing the directory makes the rename itself durable. Some
   filesystems refuse fsync on a directory fd; losing that flush only
   weakens crash durability, never correctness, so the refusal is
   tolerated. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let atomic_write path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".snap" ".tmp" in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
        if not !ok then (try Sys.remove tmp with Sys_error _ -> ()))
    (fun () ->
       let oc = open_out_bin tmp in
       Fun.protect ~finally:(fun () -> close_out oc)
         (fun () ->
            output_string oc data;
            (* fsync the bytes before the rename publishes the name: a
               rename can survive a crash that the unflushed data does
               not, leaving a durably named but empty/torn "atomic"
               file. *)
            flush oc;
            Unix.fsync (Unix.descr_of_out_channel oc));
       Sys.rename tmp path;
       fsync_dir dir;
       ok := true)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
