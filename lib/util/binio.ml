(* Compact binary primitives for the on-disk snapshot codecs.

   Integers are LEB128 varints; signed values are zigzag-folded first so
   small negative numbers stay short. Strings are length-prefixed. A
   reader is a cursor over an immutable byte string; running off the end
   raises [Truncated] rather than returning garbage, which is how a
   partially written (torn) snapshot is detected.

   [atomic_write] is the durability half: the bytes land in a temp file
   in the destination directory and are renamed into place, so a reader
   can never observe a half-written file and a crashed writer leaves at
   worst an orphaned temp file. *)

exception Truncated

(* ---- writing ---- *)

type writer = Buffer.t

let writer () = Buffer.create 4096

let contents = Buffer.contents

(* Unsigned LEB128. Values must be non-negative. *)
let write_uint b v =
  if v < 0 then invalid_arg "Binio.write_uint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

(* Zigzag: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... *)
let write_int b v =
  write_uint b (if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1)

let write_bool b v = write_uint b (if v then 1 else 0)

let write_string b s =
  write_uint b (String.length s);
  Buffer.add_string b s

(* Raw bytes, no length prefix (magic numbers, pre-framed blocks). *)
let write_raw = Buffer.add_string

(* ---- reading ---- *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let eof r = r.pos >= String.length r.data

let read_byte r =
  if r.pos >= String.length r.data then raise Truncated;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_uint r =
  let rec go shift acc =
    if shift > 62 then raise Truncated;
    let c = read_byte r in
    let acc = acc lor ((c land 0x7F) lsl shift) in
    if c land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_int r =
  let v = read_uint r in
  if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

let read_bool r =
  match read_uint r with
  | 0 -> false
  | 1 -> true
  | _ -> raise Truncated

let read_string_exact r n =
  if n < 0 || r.pos + n > String.length r.data then raise Truncated;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_string r = read_string_exact r (read_uint r)

(* ---- atomic file replacement ---- *)

let atomic_write path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".snap" ".tmp" in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
        if not !ok then (try Sys.remove tmp with Sys_error _ -> ()))
    (fun () ->
       let oc = open_out_bin tmp in
       Fun.protect ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc data);
       Sys.rename tmp path;
       ok := true)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
