(** Small statistics helpers shared by the ML library and the benches. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** Linear-interpolation percentile, [p] in [\[0, 100\]].
    @raise Invalid_argument on the empty array or any NaN element. *)

val median : float array -> float
(** [percentile xs 50.0], with the same exceptions. *)

val mean_int : int array -> float

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when either side is constant.
    @raise Invalid_argument on length mismatch. *)
