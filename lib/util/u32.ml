(* 32-bit word arithmetic on native ints.

   Values of type [t] are ints in [0, 2^32). OCaml's native int is 63-bit,
   so every 32-bit value is representable. *)

type t = int

let mask = 0xFFFF_FFFF
let of_int x = x land mask
let to_int x = x

let zero = 0
let one = 1
let max_value = mask

(* Sign interpretation of a 32-bit word as an OCaml int. *)
let signed x = if x land 0x8000_0000 <> 0 then x - 0x1_0000_0000 else x

let is_negative x = x land 0x8000_0000 <> 0

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let neg a = (-a) land mask

(* The native product of two 32-bit values can exceed 63 bits, but OCaml
   int overflow wraps modulo 2^63 and 2^32 divides 2^63, so the low 32
   bits survive intact — no Int64 round-trip needed on this hot path. *)
let mul a b = (a * b) land mask

(* Signed division truncating toward zero, as OR1k l.div specifies.
   Division by zero is reported by [None]. *)
let div_signed a b =
  if b = 0 then None else Some (of_int (signed a / signed b))

let div_unsigned a b = if b = 0 then None else Some (a / b)

let rem_unsigned a b = if b = 0 then None else Some (a mod b)

let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = lnot a land mask

let shift_left a n = if n >= 32 then 0 else (a lsl (n land 31)) land mask
let shift_right_logical a n = if n >= 32 then 0 else a lsr (n land 31)

let shift_right_arith a n =
  if n >= 32 then if is_negative a then mask else 0
  else signed a asr (n land 31) land mask

let rotate_right a n =
  let n = n land 31 in
  if n = 0 then a else ((a lsr n) lor (a lsl (32 - n))) land mask

(* Sign/zero extension of sub-word quantities to 32 bits. *)
let sext8 x = let x = x land 0xFF in if x land 0x80 <> 0 then (x lor 0xFFFF_FF00) land mask else x
let zext8 x = x land 0xFF
let sext16 x = let x = x land 0xFFFF in if x land 0x8000 <> 0 then (x lor 0xFFFF_0000) land mask else x
let zext16 x = x land 0xFFFF

(* Sign extension of an n-bit field (used for 26-bit branch displacements). *)
let sext ~bits x =
  let x = x land ((1 lsl bits) - 1) in
  if x land (1 lsl (bits - 1)) <> 0 then (x - (1 lsl bits)) land mask else x

(* Unsigned comparisons: values are non-negative ints, so the native order
   is already the unsigned order. *)
let ult a b = a < b
let ule a b = a <= b
let ugt a b = a > b
let uge a b = a >= b

let slt a b = signed a < signed b
let sle a b = signed a <= signed b
let sgt a b = signed a > signed b
let sge a b = signed a >= signed b

(* Carry out of a 32-bit addition a + b + cin. *)
let carry_add a b cin = a + b + cin > mask

(* Signed overflow of a + b + cin. *)
let overflow_add a b cin =
  let r = (a + b + cin) land mask in
  is_negative a = is_negative b && is_negative r <> is_negative a

(* Signed overflow of a - b. *)
let overflow_sub a b =
  let r = (a - b) land mask in
  is_negative a <> is_negative b && is_negative r <> is_negative a

let to_hex x = Printf.sprintf "0x%08X" x
let pp fmt x = Format.fprintf fmt "%s" (to_hex x)
