(* Workload names key on-disk artifacts (snapshot-cache shards, trace
   lake segments), and registered or fuzz-generated names are
   unconstrained strings: '/' walks out of the cache directory, ".."
   climbs it, NUL truncates the path. Percent-encoding everything
   outside a conservative safe set keeps typical names ("basicmath",
   "fuzz-0017") readable byte-for-byte while making every name a single
   path component.

   The encoding is injective ('%' itself is escaped), so distinct
   workload names can never collide on one cache file. *)

let safe c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

let encode name =
  let n = String.length name in
  let plain = ref true in
  for i = 0 to n - 1 do
    if not (safe name.[i]) then plain := false
  done;
  if !plain && n > 0 then name
  else begin
    let b = Buffer.create (n + 8) in
    String.iter
      (fun c ->
         if safe c then Buffer.add_char b c
         else Printf.ksprintf (Buffer.add_string b) "%%%02X" (Char.code c))
      name;
    Buffer.contents b
  end

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | _ -> None

let decode enc =
  let n = String.length enc in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents b)
    else if enc.[i] <> '%' then begin
      Buffer.add_char b enc.[i];
      go (i + 1)
    end
    else if i + 2 >= n then None
    else
      match (hex_val enc.[i + 1], hex_val enc.[i + 2]) with
      | Some hi, Some lo ->
        Buffer.add_char b (Char.chr ((hi lsl 4) lor lo));
        go (i + 3)
      | _ -> None
  in
  go 0
