(** Bounded fork-join parallelism on OCaml 5 domains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map :
  ?wrap:((unit -> 'b) -> 'b) -> jobs:int -> ('a -> 'b) -> 'a array ->
  'b array
(** [map ~jobs f tasks] applies [f] to every task on a pool of at most
    [jobs] domains (clamped to [\[1, Array.length tasks\]]) and returns
    the results in task order. [f] must not share mutable state across
    tasks. With [jobs <= 1] this is [Array.map]. If any task raises, one
    of the raised exceptions is re-raised after all workers finish.

    [wrap] (default: plain application) is applied around every task
    invocation, on the domain the task runs on — the hook for callers
    to install per-task domain-local context (e.g.
    [Obs.Span.with_context], so spans opened inside tasks parent to
    the span that submitted them). It runs on the [jobs <= 1] path
    too, so instrumentation does not change shape with the pool
    size. *)
