(* Bounded fork-join parallelism on OCaml 5 domains.

   [map] fans an array of independent tasks over a fixed pool of domains:
   each worker repeatedly claims the next unclaimed index with an atomic
   counter, so tasks are balanced without any per-task spawn cost, and
   each result lands in the slot of its task — callers see a plain
   [Array.map], whatever the interleaving was. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?(wrap = fun th -> th ()) ~jobs f tasks =
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map (fun t -> wrap (fun () -> f t)) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match wrap (fun () -> f tasks.(i)) with
           | r -> results.(i) <- Some (Ok r)
           | exception e -> results.(i) <- Some (Error e));
          go ()
        end
      in
      go ()
    in
    (* The calling domain is one of the workers. *)
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end
