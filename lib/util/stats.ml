(* Small statistics helpers shared by the ML library and the benches. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: NaN input")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

(* Mean of an int array, as float. *)
let mean_int xs = mean (Array.map float_of_int xs)

(* Pearson correlation of two equal-length arrays. *)
let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
    for i = 0 to n - 1 do
      let a = xs.(i) -. mx and b = ys.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b)
    done;
    if !dx = 0.0 || !dy = 0.0 then 0.0 else !num /. sqrt (!dx *. !dy)
  end
