(** Compact binary primitives for on-disk snapshot codecs: LEB128
    varints (zigzag-folded when signed), length-prefixed strings, and
    atomic whole-file replacement (temp file + rename, so a torn write
    is never observable at the destination path). *)

exception Truncated
(** Raised by the read side on any input the writer could not have
    produced: ending mid-value, a varint that is overlong / zero-padded /
    overflows a non-negative OCaml int, or a length prefix larger than
    the remaining bytes. Readers never raise [Invalid_argument] and never
    return a silently wrapped value — hostile bytes and torn snapshots
    both surface as [Truncated]. *)

type writer

val writer : unit -> writer
val contents : writer -> string

val write_uint : writer -> int -> unit
(** @raise Invalid_argument on negative values. *)

val write_int : writer -> int -> unit
val write_bool : writer -> bool -> unit
val write_string : writer -> string -> unit

val write_raw : writer -> string -> unit
(** Raw bytes with no length prefix (magic numbers, pre-framed blocks). *)

type reader

val reader : string -> reader
val eof : reader -> bool

val read_uint : reader -> int
(** Accepts only the canonical LEB128 encoding of each value in
    [0, max_int]: at most 9 bytes, no trailing zero continuation, final
    byte below the sign bit. @raise Truncated otherwise. *)

val read_int : reader -> int
val read_bool : reader -> bool
val read_string : reader -> string

val read_string_exact : reader -> int -> string
(** [read_string_exact r n] consumes exactly [n] raw bytes. *)

val atomic_write : string -> string -> unit
(** [atomic_write path data] writes [data] to a temp file in [path]'s
    directory, fsyncs it, renames it over [path], then fsyncs the
    directory. Concurrent writers race benignly (last rename wins with
    each file complete). Crash safety: after an OS crash, [path] holds
    either its previous contents or [data] in full — the data is on
    stable storage before the rename can become visible, and the rename
    itself is flushed — and at worst an orphaned temp file remains. On
    filesystems that refuse directory fsync the rename's durability is
    whatever the platform provides; atomicity is unaffected. *)

val read_file : string -> string
(** The whole (binary) file as a string. @raise Sys_error. *)
