(** Compact binary primitives for on-disk snapshot codecs: LEB128
    varints (zigzag-folded when signed), length-prefixed strings, and
    atomic whole-file replacement (temp file + rename, so a torn write
    is never observable at the destination path). *)

exception Truncated
(** Raised by the read side when the input ends mid-value — the
    signature of a corrupt or partially written snapshot. *)

type writer

val writer : unit -> writer
val contents : writer -> string

val write_uint : writer -> int -> unit
(** @raise Invalid_argument on negative values. *)

val write_int : writer -> int -> unit
val write_bool : writer -> bool -> unit
val write_string : writer -> string -> unit

val write_raw : writer -> string -> unit
(** Raw bytes with no length prefix (magic numbers, pre-framed blocks). *)

type reader

val reader : string -> reader
val eof : reader -> bool

val read_uint : reader -> int
val read_int : reader -> int
val read_bool : reader -> bool
val read_string : reader -> string

val read_string_exact : reader -> int -> string
(** [read_string_exact r n] consumes exactly [n] raw bytes. *)

val atomic_write : string -> string -> unit
(** [atomic_write path data] writes [data] to a temp file in [path]'s
    directory and renames it over [path]. Concurrent writers race
    benignly (last rename wins with each file complete); a crash leaves
    at worst an orphaned temp file. *)

val read_file : string -> string
(** The whole (binary) file as a string. @raise Sys_error. *)
