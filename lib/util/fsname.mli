(** Injective percent-encoding of arbitrary workload names into single
    filesystem path components, for the on-disk artifacts they key
    (snapshot-cache shards, trace-lake segments). A hostile name —
    ["../../etc/passwd"], a name with ['/'] or NUL — encodes to a plain
    component that cannot escape its directory; typical alphanumeric
    names pass through unchanged. *)

val encode : string -> string
(** Every byte outside [[A-Za-z0-9_-]] (including ['%'], ['.'] and
    ['/']) becomes [%XX]. [encode] is injective, so distinct names never
    share a file. *)

val decode : string -> string option
(** Inverse of {!encode} (also accepts lowercase hex). [None] on a
    malformed escape. *)
