(* Seeded semantic-mutant generation over the Cpu.Fault hook space.

   Mutant [i] of stream [seed] is a pure function of (seed, i): one Prng
   stream per mutant draws the operator family's parameters, and every
   fault hook closes over those drawn integers only — no internal state —
   so capturing the same (mutant, trigger) pair twice is byte-identical
   and campaign results are deterministic per seed.

   Kinds round-robin over the index so a campaign of n mutants exercises
   every §5.5 class about n/8 times; everything else (target opcode, bit
   position, skew direction, affected vector, ...) comes from the rng. *)

open Isa
module F = Cpu.Fault
module P = Util.Prng

type kind =
  | Wrong_result
  | Skipped_writeback
  | Flag
  | Privilege
  | Control_flow
  | Exception_entry
  | Memory_address
  | Memory_data

let kind_name = function
  | Wrong_result -> "wrong-result"
  | Skipped_writeback -> "skipped-writeback"
  | Flag -> "flag"
  | Privilege -> "privilege"
  | Control_flow -> "control-flow"
  | Exception_entry -> "exception-entry"
  | Memory_address -> "memory-address"
  | Memory_data -> "memory-data"

let category_of_kind = function
  | Wrong_result -> Registry.Cr
  | Skipped_writeback -> Registry.Ie
  | Flag -> Registry.Cf
  | Privilege -> Registry.Ru
  | Control_flow -> Registry.Cf
  | Exception_entry -> Registry.Xr
  | Memory_address -> Registry.Ma
  | Memory_data -> Registry.Ma

type t = {
  id : string;
  kind : kind;
  category : Registry.category;
  synopsis : string;
  fault : Cpu.Fault.t;
}

let kinds =
  [| Wrong_result; Skipped_writeback; Flag; Privilege;
     Control_flow; Exception_entry; Memory_address; Memory_data |]

let none = F.none
let pick rng arr = arr.(P.int rng (Array.length arr))

(* ---- CR: corrupt an ALU/extend result bit ---- *)

let alu_targets = [| Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor; Insn.Mul |]

let wrong_result rng name =
  let bit = P.int rng 32 in
  let mask = 1 lsl bit in
  let targeted = P.bool rng in
  let op = pick rng alu_targets in
  let applies insn =
    match insn with
    | Insn.Alu (o, _, _, _) -> (not targeted) || o = op
    | _ -> not targeted
  in
  let synopsis =
    if targeted then
      Printf.sprintf "l.%s result bit %d flips" (Insn.alu_op_name op) bit
    else Printf.sprintf "every ALU result bit %d flips" bit
  in
  (synopsis,
   { none with
     F.name;
     on_alu = (fun insn r -> if applies insn then Util.U32.logxor r mask else r) })

(* ---- IE: a decoded instruction silently does nothing ---- *)

let writeback_victims : (string * (Insn.t -> bool)) array =
  [| ("l.sub", (function Insn.Alu (Insn.Sub, _, _, _) -> true | _ -> false));
     ("l.xor", (function Insn.Alu (Insn.Xor, _, _, _) -> true | _ -> false));
     ("l.and", (function Insn.Alu (Insn.And, _, _, _) -> true | _ -> false));
     ("l.or", (function Insn.Alu (Insn.Or, _, _, _) -> true | _ -> false));
     ("l.extbs", (function Insn.Ext (Insn.Extbs, _, _) -> true | _ -> false));
     ("l.exthz", (function Insn.Ext (Insn.Exthz, _, _) -> true | _ -> false));
     ("l.lbz", (function Insn.Load (Insn.Lbz, _, _, _) -> true | _ -> false));
     ("l.srli", (function Insn.Shifti (Insn.Srli, _, _, _) -> true | _ -> false))
  |]

let skipped_writeback rng name =
  let victim, applies = pick rng writeback_victims in
  (Printf.sprintf "%s decodes as l.nop (writeback skipped)" victim,
   { none with
     F.name;
     on_decode = (fun insn -> if applies insn then Insn.Nop 0 else insn) })

(* ---- CF: a set-flag comparison inverts ---- *)

let sf_targets =
  [| Insn.Sfeq; Insn.Sfne; Insn.Sfgtu; Insn.Sfgeu; Insn.Sfltu; Insn.Sfleu;
     Insn.Sfgts; Insn.Sfges; Insn.Sflts; Insn.Sfles |]

let flag rng name =
  let op = pick rng sf_targets in
  let conditional = P.bool rng in
  let parity = P.int rng 2 in
  let synopsis =
    if conditional then
      Printf.sprintf "l.%s inverts when rA bit 0 = %d" (Insn.sf_op_name op)
        parity
    else Printf.sprintf "l.%s always inverts" (Insn.sf_op_name op)
  in
  (synopsis,
   { none with
     F.name;
     on_compare =
       (fun o ~a ~b:_ r ->
          if o = op && ((not conditional) || a land 1 = parity) then not r
          else r) })

(* ---- RU: privilege/SR corruption ---- *)

let privilege rng name =
  match P.int rng 4 with
  | 0 ->
    ("l.rfe grants supervisor mode",
     { none with
       F.name;
       on_rfe_sr = (fun sr -> sr lor (1 lsl Spr.Sr_bits.sm)) })
  | 1 ->
    ("exception entry drops supervisor mode",
     { none with
       F.name;
       on_exception_sr = (fun _ sr -> sr land lnot (1 lsl Spr.Sr_bits.sm)) })
  | 2 ->
    let sprs =
      [| ("ESR0", Workloads.Rt.spr_esr); ("EPCR0", Workloads.Rt.spr_epcr);
         ("EEAR0", Workloads.Rt.spr_eear) |]
    in
    let spr_name, spr = pick rng sprs in
    (Printf.sprintf "l.mtspr to %s silently dropped" spr_name,
     { none with F.name; mtspr_is_nop = (fun ~spr_addr -> spr_addr = spr) })
  | _ ->
    ("l.rfe drops IEE",
     { none with
       F.name;
       on_rfe_sr = (fun sr -> sr land lnot (1 lsl Spr.Sr_bits.iee)) })

(* ---- CF: control-transfer target skew ---- *)

let deltas = [| 4; -4; 8 |]

let vector_targets =
  [| Spr.Vector.Syscall; Spr.Vector.Trap; Spr.Vector.Range;
     Spr.Vector.Illegal; Spr.Vector.Alignment |]

let control_flow rng name =
  match P.int rng 3 with
  | 0 ->
    let delta = pick rng deltas in
    (Printf.sprintf "link register skewed by %d" delta,
     { none with
       F.name;
       on_writeback =
         (fun insn ~reg ~pc:_ v ->
            match insn with
            | (Insn.Jump_link _ | Insn.Jump_link_reg _) when reg = 9 ->
              Util.U32.add v delta
            | _ -> v) })
  | 1 ->
    let delta = pick rng deltas in
    (Printf.sprintf "l.rfe return PC skewed by %d" delta,
     { none with F.name; on_rfe_pc = (fun pc -> Util.U32.add pc delta) })
  | _ ->
    let kind = pick rng vector_targets in
    (Printf.sprintf "%s vector entry skewed by 8" (Spr.Vector.name kind),
     { none with
       F.name;
       on_exception_vector =
         (fun ctx v -> if ctx.F.kind = kind then Util.U32.add v 8 else v) })

(* ---- XR: exception-entry corruption ---- *)

let exception_entry rng name =
  match P.int rng 3 with
  | 0 ->
    let kind = pick rng vector_targets in
    let delta = if P.bool rng then 4 else -4 in
    (Printf.sprintf "EPCR on %s skewed by %d" (Spr.Vector.name kind) delta,
     { none with
       F.name;
       on_exception_epcr =
         (fun ctx e -> if ctx.F.kind = kind then Util.U32.add e delta else e) })
  | 1 ->
    let kind =
      pick rng [| Spr.Vector.Syscall; Spr.Vector.Trap; Spr.Vector.Range |]
    in
    (Printf.sprintf "%s exception suppressed" (Spr.Vector.name kind),
     { none with
       F.name;
       suppress_exception = (fun ctx ~prev:_ -> ctx.F.kind = kind) })
  | _ ->
    ("DSX not set for delay-slot exceptions",
     { none with
       F.name;
       on_exception_sr =
         (fun ctx sr ->
            if ctx.F.in_delay_slot then
              sr land lnot (1 lsl Spr.Sr_bits.dsx)
            else sr) })

(* ---- MA: effective-address corruption ---- *)

let memory_address rng name =
  let scope = P.int rng 3 in      (* 0 loads, 1 stores, 2 both *)
  let applies insn =
    match insn with
    | Insn.Load _ -> scope <> 1
    | Insn.Store _ -> scope <> 0
    | _ -> false
  in
  let scope_name =
    match scope with 0 -> "load" | 1 -> "store" | _ -> "load/store"
  in
  if P.int rng 4 = 0 then
    (Printf.sprintf "%s effective address off by one" scope_name,
     { none with
       F.name;
       on_eff_addr =
         (fun insn a -> if applies insn then Util.U32.add a 1 else a) })
  else begin
    let mask = pick rng [| 4; 8; 16; 32 |] in
    (Printf.sprintf "%s effective address bit %d flips" scope_name
       (if mask = 4 then 2 else if mask = 8 then 3
        else if mask = 16 then 4 else 5),
     { none with
       F.name;
       on_eff_addr =
         (fun insn a -> if applies insn then Util.U32.logxor a mask else a) })
  end

(* ---- MA: load/store data corruption ---- *)

let memory_data rng name =
  let bit = P.int rng 32 in
  let mask = 1 lsl bit in
  if P.bool rng then
    (Printf.sprintf "loaded value bit %d flips" bit,
     { none with
       F.name;
       on_load = (fun _ ~addr:_ ~raw:_ v -> Util.U32.logxor v mask) })
  else
    (Printf.sprintf "stored value bit %d flips" bit,
     { none with
       F.name;
       on_store = (fun _ ~addr:_ ~exec_pc:_ v -> Util.U32.logxor v mask) })

(* ---- the stream ---- *)

let mutant ~seed ~index =
  let rng = P.create ((seed * 1_000_003) + (index * 97) + 0x5C1F) in
  let kind = kinds.(index mod Array.length kinds) in
  let id = Printf.sprintf "m%d" index in
  let synopsis, fault =
    match kind with
    | Wrong_result -> wrong_result rng id
    | Skipped_writeback -> skipped_writeback rng id
    | Flag -> flag rng id
    | Privilege -> privilege rng id
    | Control_flow -> control_flow rng id
    | Exception_entry -> exception_entry rng id
    | Memory_address -> memory_address rng id
    | Memory_data -> memory_data rng id
  in
  { id; kind; category = category_of_kind kind; synopsis; fault }

let generate ~seed ~count = List.init count (fun index -> mutant ~seed ~index)
