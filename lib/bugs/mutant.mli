(** Seeded semantic-mutant generation: the LASHED-style scale-up of the
    hand-reproduced Table 1 errata. Each mutant is a small perturbation
    of the ISA semantics drawn from the same {!Cpu.Fault.t} hook space
    the reproduced bugs use — wrong ALU results, skipped writebacks,
    flipped set-flag comparisons, privilege-bit corruption, control-flow
    and exception-entry skew, and memory address/data corruption — and is
    classified into the §5.5 CF/XR/MA/IE/CR/RU taxonomy so campaign
    results aggregate per class.

    Generation is a pure function of (seed, index): every fault hook is a
    stateless closure of its drawn parameters, so capturing the same
    (mutant, trigger) pair twice yields byte-identical traces and the
    whole campaign is deterministic per seed. *)

(** The mutation operator families and the class each perturbs. *)
type kind =
  | Wrong_result        (** CR: ALU/extend result bit corruption *)
  | Skipped_writeback   (** IE: a decoded instruction silently nops *)
  | Flag                (** CF: a set-flag comparison inverts *)
  | Privilege           (** RU: SR privilege bits corrupt, mtspr drops *)
  | Control_flow        (** CF: link/rfe-target/vector address skew *)
  | Exception_entry     (** XR: EPCR skew, suppressed or mangled entry *)
  | Memory_address      (** MA: effective-address corruption *)
  | Memory_data         (** MA: load/store data corruption *)

val kind_name : kind -> string

type t = {
  id : string;                   (** ["m<index>"] within a campaign *)
  kind : kind;
  category : Registry.category;  (** the §5.5 class of [kind] *)
  synopsis : string;             (** the drawn parameters, human-readable *)
  fault : Cpu.Fault.t;
}

val category_of_kind : kind -> Registry.category

val generate : seed:int -> count:int -> t list
(** The first [count] mutants of stream [seed]. Deterministic; mutant
    [i] depends only on [(seed, i)], so prefixes agree across different
    counts. *)
