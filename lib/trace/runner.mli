(** The trace runner: executes a program on a {!Cpu.Machine.t} and emits
    one {!Record.t} per retired instruction, fusing each control-flow
    instruction with the instruction in its delay slot (§3.1.5). A
    delay-slot instruction that raises an exception additionally gets a
    record of its own, so "l.sys in a delay slot" (bug b1) is observable
    at the l.sys program point. *)

type config = {
  mask_config : Record.mask_config;
  max_steps : int;
}

val default_config : config

type outcome = [ `Halted of Cpu.Machine.halt_reason | `Max_steps ]

val run_fold :
  ?config:config -> init:'a -> f:('a -> Record.t -> 'a) -> Cpu.Machine.t ->
  'a * outcome
(** Drive a prepared machine, folding every fused record through [f] as
    it is produced — the primitive the other entry points wrap. The
    trace is never materialised and no per-record state is copied (the
    pre-state snapshot double-buffers across delay slots). The record
    passed to [f] is freshly allocated and owned by the consumer. *)

val run :
  ?config:config -> observer:(Record.t -> unit) -> Cpu.Machine.t -> outcome
(** [run_fold] with a [unit] accumulator: streams fused records to
    [observer]. *)

val capture :
  ?config:config -> ?fault:Cpu.Fault.t -> ?tick_period:int ->
  entry:int -> (int * int) list -> Record.t list * outcome
(** Run a fresh machine over an assembled image and return the stored
    records (for the small trigger traces). *)

val stream :
  ?config:config -> ?fault:Cpu.Fault.t -> ?tick_period:int ->
  entry:int -> observer:(Record.t -> unit) -> (int * int) list -> outcome
(** Streaming variant for the large mining corpus: records are never
    materialised. *)

val stream_to_segment :
  ?config:config -> ?fault:Cpu.Fault.t -> ?tick_period:int ->
  entry:int -> writer:Segment.writer -> ?tee:(Record.t -> unit) ->
  (int * int) list -> outcome
(** {!stream} with the segment writer as observer: each fused record is
    appended to [writer] the moment it is built (and also passed to
    [tee], default a no-op), so recording a trace lake materialises
    nothing beyond the writer's one buffered block. The caller closes
    [writer]. *)
