(** The on-disk trace lake: append-only segment files of fused trace
    records — the durable analogue of the paper's 26 GB trace corpus.

    A segment is a sequence of self-contained framed blocks
    ([SCIFSEG] magic, version, MD5 payload digest, length, columnar
    delta-encoded payload). Blocks are independent, so appending to a
    segment — or concatenating whole segment files — yields a valid
    segment; readers stream one block at a time, so both sides are
    out-of-core. Decoding is round-trip exact: a replayed stream is
    record-for-record bit-identical to the live {!Runner.run_fold}
    stream that produced it. *)

exception Corrupt_segment of string
(** A torn tail (crash mid-append), bit damage (digest mismatch), a
    foreign or future-versioned file, or any hostile bytes. Reading a
    segment never raises [Invalid_argument] and never yields garbage
    records. *)

val version : int

(** {1 Writing} *)

type writer

val create : ?records_per_block:int -> workload:string -> string -> writer
(** [create ~workload path] opens [path] for append (creating it if
    missing) and buffers up to [records_per_block] (default 1024,
    sized so a block's decoded working set stays cache-resident)
    records per block — the only materialization on the write side. *)

val add : writer -> Record.t -> unit
(** Append one record, flushing a full block to disk. Usable directly as
    a {!Runner.stream} observer. *)

val close : writer -> unit
(** Flush the partial block (an empty trace still writes one empty
    block, so the file self-describes its workload) and fsync: once
    [close] returns every appended block is on stable storage.
    Idempotent. *)

val written : writer -> int
(** Records appended so far, including the buffered partial block (all
    of them are on disk once {!close} returns). *)

val with_writer :
  ?records_per_block:int -> workload:string -> string ->
  (writer -> 'a) -> 'a
(** [create] / [close] bracket. *)

(** {1 Reading} *)

type info = {
  records : int;
  blocks : int;
  bytes : int;  (** on-disk size *)
  workloads : string list;  (** distinct, in first-appearance order *)
}

val fold :
  ?on_workload:(string -> unit) ->
  init:'a -> f:('a -> Record.t -> 'a) -> string -> 'a * info
(** Stream every record of the segment at [path] through [f], one block
    in memory at a time. [on_workload] fires per block, before that
    block's records — a miner hangs {!Daikon.Engine.set_workload} here
    so death attribution matches a live run. An empty or damaged file
    raises {!Corrupt_segment}. *)

val iter : ?on_workload:(string -> unit) -> f:(Record.t -> unit) -> string -> info

val block_digests : string -> string list
(** The 16-byte MD5 digest of every block, in file order, read from the
    frame headers alone — payloads are seeked over, not decoded or
    verified, so fingerprinting a multi-GB segment for a cache key costs
    one seek per block. The framing checks match {!fold}'s: a torn tail,
    foreign magic or future version raises {!Corrupt_segment} (payload
    bit-rot does not — that is {!fold}'s job when the data is actually
    read). *)

(** {1 Lake layout}

    A lake directory holds one append-only segment per workload, named
    by the {!Util.Fsname}-encoded workload name — hostile names cannot
    escape the directory. *)

val segment_path : dir:string -> workload:string -> string

val lake_segments : string -> string list
(** The lake's segment files, sorted by filename — the canonical
    (deterministic) mining order. [[]] if [dir] does not exist. *)
