(** The on-disk trace lake: append-only segment files of fused trace
    records — the durable analogue of the paper's 26 GB trace corpus.

    A segment is a sequence of self-contained framed blocks
    ([SCIFSEG] magic, version, MD5 payload digest, length, columnar
    delta-encoded payload). Blocks are independent, so appending to a
    segment — or concatenating whole segment files — yields a valid
    segment; readers stream one block at a time, so both sides are
    out-of-core. Decoding is round-trip exact: a replayed stream is
    record-for-record bit-identical to the live {!Runner.run_fold}
    stream that produced it. *)

exception Corrupt_segment of string
(** A torn tail (crash mid-append), bit damage (digest mismatch), a
    foreign or future-versioned file, or any hostile bytes. Reading a
    segment never raises [Invalid_argument] and never yields garbage
    records. *)

val version : int

(** {1 Writing} *)

type writer

val create : ?records_per_block:int -> workload:string -> string -> writer
(** [create ~workload path] opens [path] for append (creating it if
    missing) and buffers up to [records_per_block] (default 1024,
    sized so a block's decoded working set stays cache-resident)
    records per block — the only materialization on the write side. *)

val add : writer -> Record.t -> unit
(** Append one record, flushing a full block to disk. Usable directly as
    a {!Runner.stream} observer. *)

val close : writer -> unit
(** Flush the partial block (an empty trace still writes one empty
    block, so the file self-describes its workload) and fsync: once
    [close] returns every appended block is on stable storage.
    Idempotent. *)

val written : writer -> int
(** Records appended so far, including the buffered partial block (all
    of them are on disk once {!close} returns). *)

val with_writer :
  ?records_per_block:int -> workload:string -> string ->
  (writer -> 'a) -> 'a
(** [create] / [close] bracket. *)

(** {1 Reading} *)

type info = {
  records : int;
  blocks : int;
  bytes : int;  (** on-disk size *)
  workloads : string list;  (** distinct, in first-appearance order *)
}

type scratch
(** Reusable decode buffers for one consumer (one domain). Decoding
    with a scratch recycles the per-record value rows across blocks —
    the dominant allocation of a multi-GB replay — at a price: the
    records handed to the fold callback alias the scratch rows and are
    invalidated by the next block. Opt in only where the consumer
    provably does not retain records ({!Daikon.Engine.observe} copies
    the values it keeps). Never share one scratch across domains. *)

val scratch : unit -> scratch

val fold :
  ?on_workload:(string -> unit) ->
  ?read_ahead:bool ->
  ?scratch:scratch ->
  init:'a -> f:('a -> Record.t -> 'a) -> string -> 'a * info
(** Stream every record of the segment at [path] through [f], one block
    in memory at a time. [on_workload] fires per block, before that
    block's records — a miner hangs {!Daikon.Engine.set_workload} here
    so death attribution matches a live run. An empty or damaged file
    raises {!Corrupt_segment}. [read_ahead] (default false) reads the
    next frame off disk on a helper domain while the current block
    decodes; [scratch] recycles decode buffers (see {!scratch} for the
    aliasing contract). Neither changes the records seen, their order,
    or the error surface. *)

val fold_range :
  ?on_workload:(string -> unit) ->
  ?read_ahead:bool ->
  ?scratch:scratch ->
  ?first_block:int ->
  ?last_block:int ->
  init:'a -> f:('a -> Record.t -> 'a) -> string -> 'a * info
(** {!fold} restricted to the half-open block range
    [\[first_block, last_block)] (defaults: the whole file). Pre-range
    frames are seeked over with framing checks only; decoding and
    digest verification start at [first_block]. Blocks are
    self-contained — deltas reset at block boundaries — so folding
    [\[0, k)] then [\[k, n)] sees exactly the records of one whole-file
    fold, in order: the foundation for sharding a replay. A range past
    the end of the file is empty (zero blocks), not an error, and an
    empty range on an empty file does not raise — only {!fold} insists
    on at least one block. Raises [Invalid_argument] on a negative or
    inverted range. *)

val iter : ?on_workload:(string -> unit) -> f:(Record.t -> unit) -> string -> info

val block_digests : string -> string list
(** The 16-byte MD5 digest of every block, in file order, read from the
    frame headers alone — payloads are seeked over, not decoded or
    verified, so fingerprinting a multi-GB segment for a cache key costs
    one seek per block. The framing checks match {!fold}'s: a torn tail,
    foreign magic or future version raises {!Corrupt_segment} (payload
    bit-rot does not — that is {!fold}'s job when the data is actually
    read). *)

val block_sizes : string -> int list
(** The on-disk size (header + payload) of every block, in file order,
    from the same header-only scan as {!block_digests} — the input a
    shard planner needs to balance a replay by bytes. Same error
    surface as {!block_digests}. *)

(** {1 Lake layout}

    A lake directory holds one append-only segment per workload, named
    by the {!Util.Fsname}-encoded workload name — hostile names cannot
    escape the directory. *)

val segment_path : dir:string -> workload:string -> string

val lake_segments : string -> string list
(** The lake's segment files, sorted by filename — the canonical
    (deterministic) mining order. [[]] if [dir] does not exist. *)

(** {1 Sharding a replay}

    A parallel replay splits the lake into contiguous block ranges
    ("spans") balanced by on-disk size. Each span folds independently
    (blocks are self-contained); merging the per-span results back in
    span order reproduces the sequential fold exactly. *)

type span = {
  sp_path : string;
  sp_first : int;  (** first block, inclusive *)
  sp_last : int;  (** last block, exclusive *)
  sp_bytes : int;  (** on-disk bytes of the range *)
}

val shard_spans : jobs:int -> string list -> span list
(** Plan a [jobs]-way replay of [paths] (typically {!lake_segments}
    output, whose order the plan preserves). Every block of every
    segment lands in exactly one span; spans never cross a segment
    boundary; a segment larger than its proportional byte share is
    split at block boundaries so one big segment cannot serialize the
    replay. The plan reads only frame headers (one seek per block) and
    depends only on them — deterministic across runs, hosts, and the
    worker count actually used to execute it. An empty or torn segment
    raises {!Corrupt_segment}, as the replay itself would. *)
