(* Trace runner: executes a program on a [Cpu.Machine.t] and produces one
   [Record.t] per retired instruction, fusing each control-flow instruction
   with the instruction in its delay slot as §3.1.5 prescribes. When the
   delay-slot instruction itself raises an exception, a record for it is
   emitted as well, so that e.g. "l.sys in a delay slot" (bug b1) is
   observable at the l.sys program point. *)

module M = Cpu.Machine
module Sr = Isa.Spr.Sr_bits

type config = {
  mask_config : Record.mask_config;
  max_steps : int;
}

let default_config = {
  mask_config = Record.default_config;
  max_steps = 400_000;
}

type outcome = [ `Halted of M.halt_reason | `Max_steps ]

(* Snapshot the dual variables of the machine into [dst] at offset [off].
   PC/NPC/NNPC are filled by the caller. *)
let snapshot_duals machine dst off =
  let set d v = dst.(off + Var.dual_index d) <- v in
  for i = 0 to 31 do set (Var.Gpr i) machine.M.gpr.(i) done;
  let sr = machine.M.sr in
  set Var.Sr_full sr;
  set Var.Sf (Sr.get sr Sr.f);
  set Var.Sm (Sr.get sr Sr.sm);
  set Var.Cy (Sr.get sr Sr.cy);
  set Var.Ov (Sr.get sr Sr.ov);
  set Var.Dsx (Sr.get sr Sr.dsx);
  set Var.Tee (Sr.get sr Sr.tee);
  set Var.Iee (Sr.get sr Sr.iee);
  set Var.Epcr machine.M.epcr;
  set Var.Esr machine.M.esr;
  set Var.Eear machine.M.eear;
  set Var.Machi machine.M.machi;
  set Var.Maclo machine.M.maclo

let set_pc_triplet dst off addr =
  dst.(off + Var.dual_index Var.Pc) <- addr land 0xFFFF_FFFF;
  dst.(off + Var.dual_index Var.Npc) <- (addr + 4) land 0xFFFF_FFFF;
  dst.(off + Var.dual_index Var.Nnpc) <- (addr + 8) land 0xFFFF_FFFF

(* Build the full record for an event. [pre] is the dual snapshot taken
   before the (first) instruction; the machine currently holds the post
   state. [head_ev] provides address and instruction variables; [exn_ev]
   is the event whose exception outcome applies (the delay-slot event for
   fused records). *)
let build_record ~machine ~mask_table ~config ~pre ~head_ev ~exn_ev =
  let values = Array.make Var.total 0 in
  Array.blit pre 0 values 0 Var.dual_count;
  snapshot_duals machine values Var.dual_count;
  set_pc_triplet values 0 head_ev.M.ev_addr;
  set_pc_triplet values Var.dual_count exn_ev.M.ev_next_pc;
  let insn = head_ev.M.ev_insn in
  let point =
    if head_ev.M.ev_illegal then "illegal" else Isa.Insn.mnemonic insn
  in
  let mask = Record.mask_for mask_table config point insn in
  let seti v x = values.(Var.insn_id v) <- x in
  seti Var.Ir head_ev.M.ev_ir;
  seti Var.Mem_at_pc head_ev.M.ev_mem_at_pc;
  (match Isa.Insn.immediate insn with
   | Some im -> seti Var.Im im
   | None -> ());
  (match Isa.Insn.dest_reg insn with
   | Some rd -> seti Var.Regd rd
   | None -> ());
  let ra, rb = Isa.Insn.src_regs insn in
  (match ra with Some r -> seti Var.Rega r | None -> ());
  (match rb with Some r -> seti Var.Regb r | None -> ());
  seti Var.Opa head_ev.M.ev_opa;
  seti Var.Opb head_ev.M.ev_opb;
  seti Var.Dest head_ev.M.ev_dest;
  seti Var.Ea head_ev.M.ev_ea;
  seti Var.Membus head_ev.M.ev_membus;
  seti Var.Spr_orig head_ev.M.ev_spr_orig;
  seti Var.Spr_post head_ev.M.ev_spr_post;
  seti Var.Opcode (head_ev.M.ev_ir lsr 26);
  (match insn with
   | Isa.Insn.Load (_, _, _, off) | Isa.Insn.Store (_, off, _, _) ->
     seti Var.Ea_ref (Util.U32.add head_ev.M.ev_opa (Util.U32.sext16 off))
   | _ -> ());
  (* Extension-correctness observations for sign-extending loads. *)
  (match insn with
   | Isa.Insn.Load (Isa.Insn.Lbs, _, _, _) ->
     seti Var.Ext_sign ((head_ev.M.ev_membus lsr 7) land 1);
     seti Var.Ext_hi (head_ev.M.ev_dest lsr 8)
   | Isa.Insn.Load (Isa.Insn.Lhs, _, _, _) ->
     seti Var.Ext_sign ((head_ev.M.ev_membus lsr 15) land 1);
     seti Var.Ext_hi (head_ev.M.ev_dest lsr 16)
   | _ -> ());
  (* Exception-derived variables, from the event that (possibly) raised. *)
  let post_dsx = values.(Var.dual_count + Var.dual_index Var.Dsx) in
  (match exn_ev.M.ev_exn with
   | Some _ ->
     seti Var.Exn 1;
     seti Var.Vec exn_ev.M.ev_next_pc;
     seti Var.Epcr_d
       (Util.U32.sub machine.M.epcr head_ev.M.ev_addr);
     let expected_dsx = if exn_ev.M.ev_in_delay_slot then 1 else 0 in
     seti Var.Dsx_ok (if post_dsx = expected_dsx then 1 else 0)
   | None ->
     seti Var.Exn 0;
     seti Var.Vec 0;
     seti Var.Epcr_d 0;
     seti Var.Dsx_ok 1);
  (* Compare-direction products at set-flag points (§3.1.4). *)
  (match insn with
   | Isa.Insn.Setflag _ | Isa.Insn.Setflagi _ ->
     let a = head_ev.M.ev_opa and b = head_ev.M.ev_opb in
     let du = Util.U32.signed (Util.U32.sub a b) in
     let ds = Util.U32.signed a - Util.U32.signed b in
     let sf = values.(Var.dual_count + Var.dual_index Var.Sf) in
     let sign = 1 - (2 * sf) in
     seti Var.Cmpdiff_u du;
     seti Var.Cmpdiff_s ds;
     seti Var.Prod_u (du * sign);
     seti Var.Prod_s (ds * sign);
     seti Var.Cmpz (if du = 0 then 1 else 0)
   | _ -> ());
  (* Zero out inapplicable instruction variables for hygiene. *)
  Array.iteri (fun id applicable -> if not applicable then values.(id) <- 0) mask;
  { Record.point; values; mask }

(* Per-machine telemetry, folded into the global metrics once per run:
   a dozen atomic adds per traced program, nothing per instruction. *)
let c_retired = Obs.Metrics.counter "cpu.retired"
let c_exn_suppressed = Obs.Metrics.counter "cpu.exn_suppressed"
let c_truncated = Obs.Metrics.counter "cpu.truncated_runs"
let g_mem_high = Obs.Metrics.gauge "cpu.mem_high_water"
let c_dc_hit = Obs.Metrics.counter "cpu.decode_cache.hit"
let c_dc_miss = Obs.Metrics.counter "cpu.decode_cache.miss"
let c_dc_invalidate = Obs.Metrics.counter "cpu.decode_cache.invalidate"

let exn_counters =
  lazy
    (List.map
       (fun k -> Obs.Metrics.counter ("cpu.exn." ^ Isa.Spr.Vector.name k))
       Isa.Spr.Vector.all)

let fold_machine_telemetry machine =
  let tel = machine.M.tel in
  Obs.Metrics.add c_retired machine.M.retired;
  Obs.Metrics.add c_exn_suppressed tel.M.exn_suppressed;
  Obs.Metrics.add c_truncated tel.M.truncated;
  if tel.M.mem_high_water >= 0 then
    Obs.Metrics.set_max g_mem_high (float_of_int tel.M.mem_high_water);
  List.iteri
    (fun i c -> Obs.Metrics.add c tel.M.exn_entered.(i))
    (Lazy.force exn_counters);
  let dc_hits, dc_misses, dc_invalidates = M.decode_cache_stats machine in
  Obs.Metrics.add c_dc_hit dc_hits;
  Obs.Metrics.add c_dc_miss dc_misses;
  Obs.Metrics.add c_dc_invalidate dc_invalidates

(* Execute [machine] until halt, folding every fused record through [f].
   This is the primitive every other entry point wraps: the trace is
   never materialised, and the consumer (typically [Daikon.Engine.observe]
   or an accumulating fold) sees each record the moment it is built.

   Pre-state snapshots use a double buffer instead of a per-branch
   [Array.copy]: at most one branch is pending at any time, so when a
   branch's pre-state must survive its delay slot, its buffer is handed
   to [pending] and the next snapshot goes to the other buffer. (The
   delay-slot's own exceptional record needs no copy at all: the PC
   triplet of the pre-state is overwritten by [build_record], so the
   current buffer can be passed as is.) *)
let run_fold ?(config = default_config) ~init ~f machine : _ * outcome =
  let mask_table = Record.create_mask_table () in
  let mask_config = config.mask_config in
  let buf_a = Array.make Var.dual_count 0 in
  let buf_b = Array.make Var.dual_count 0 in
  let cur = ref buf_a in
  let pending : (int array * M.event) option ref = ref None in
  let acc = ref init in
  let emit ~pre ~head_ev ~exn_ev =
    acc := f !acc (build_record ~machine ~mask_table ~config:mask_config
                     ~pre ~head_ev ~exn_ev)
  in
  let rec loop steps =
    if steps >= config.max_steps then begin
      (* Flush a dangling branch so no observation is lost, and record
         the truncation: a budget abort is an outcome, not a quiet end
         of trace (generated workloads rely on seeing it). *)
      (match !pending with
       | Some (pre_b, ev_b) -> emit ~pre:pre_b ~head_ev:ev_b ~exn_ev:ev_b
       | None -> ());
      machine.M.tel.M.truncated <- machine.M.tel.M.truncated + 1;
      `Max_steps
    end else begin
      snapshot_duals machine !cur 0;
      match M.step machine with
      | M.Halt reason ->
        (match !pending with
         | Some (pre_b, ev_b) -> emit ~pre:pre_b ~head_ev:ev_b ~exn_ev:ev_b
         | None -> ());
        `Halted reason
      | M.Retired ev ->
        (match !pending with
         | Some (pre_b, ev_b) ->
           (* [ev] executed in the delay slot of [ev_b]: fuse. *)
           pending := None;
           emit ~pre:pre_b ~head_ev:ev_b ~exn_ev:ev;
           (* An exceptional delay-slot instruction also gets its own
              record so its program point observes the exception. *)
           if ev.M.ev_exn <> None || ev.M.ev_exn_suppressed then
             emit ~pre:!cur ~head_ev:ev ~exn_ev:ev;
           loop (steps + 1)
         | None ->
           if Isa.Insn.has_delay_slot ev.M.ev_insn && ev.M.ev_exn = None then begin
             pending := Some (!cur, ev);
             cur := (if !cur == buf_a then buf_b else buf_a);
             loop (steps + 1)
           end else begin
             emit ~pre:!cur ~head_ev:ev ~exn_ev:ev;
             loop (steps + 1)
           end)
    end
  in
  let outcome = loop 0 in
  fold_machine_telemetry machine;
  (!acc, outcome)

(* Execute [machine] until halt, feeding fused records to [observer]. *)
let run ?config ~observer machine : outcome =
  snd (run_fold ?config ~init:() ~f:(fun () r -> observer r) machine)

(* Convenience: run a fresh machine over an assembled program and return
   the captured records (used for trigger traces, which are small). *)
let capture ?(config = default_config) ?(fault = Cpu.Fault.none)
    ?(tick_period = 0) ~entry image =
  let machine = M.create ~fault ~tick_period () in
  M.load_image machine image;
  M.set_pc machine entry;
  let records = ref [] in
  let outcome = run ~config ~observer:(fun r -> records := r :: !records) machine in
  (List.rev !records, outcome)

(* Streaming variant: the observer sees each record; only the outcome is
   returned. Used for the (large) invariant-mining corpus so traces are
   never materialised. *)
let stream ?(config = default_config) ?(fault = Cpu.Fault.none)
    ?(tick_period = 0) ~entry ~observer image =
  let machine = M.create ~fault ~tick_period () in
  M.load_image machine image;
  M.set_pc machine entry;
  run ~config ~observer machine

(* Segment-writer observer: every fused record goes straight from the
   fold into the open segment writer (and optionally to [tee], so a
   miner can consume the trace while it is being recorded) — no
   materialization on the write side either. *)
let stream_to_segment ?config ?fault ?tick_period ~entry ~writer
    ?(tee = fun (_ : Record.t) -> ()) image =
  stream ?config ?fault ?tick_period ~entry
    ~observer:(fun r ->
        Segment.add writer r;
        tee r)
    image
