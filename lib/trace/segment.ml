(* The on-disk trace lake: compact columnar segments of fused trace
   records, the durable analogue of the paper's 26 GB trace corpus.

   A segment file is a sequence of self-contained blocks, each framed
   for append-only writing and torn-tail detection:

     "SCIFSEG"             7-byte magic
     version               1 byte
     digest                16-byte MD5 of the payload
     payload length        4-byte big-endian
     payload               [length] bytes, Binio-encoded

   The fixed-width frame means the reader touches one block at a time
   through a channel — out-of-core by construction — and any torn tail
   (a crash mid-append) or bit damage surfaces as [Corrupt_segment], in
   the style of the SCIFSNAP snapshot codec.

   The payload is columnar: the block's records are transposed so each
   of the [Var.total] variables becomes one contiguous varint stream.
   Post-state dual columns are delta-encoded against the same record's
   pre-state (most instructions change almost nothing, so the deltas are
   overwhelmingly zero); every other column is delta-encoded against the
   previous record in the block (program counters advance by 4, loop
   registers step by small strides). Program points are interned per
   block with their applicability masks, so each record costs one small
   point index plus its value deltas.

   Blocks are independent — deltas reset at block boundaries — so
   concatenating segment files (or appending to one) is itself a valid
   segment, which is how a lake replicates a corpus without
   re-simulation. *)

exception Corrupt_segment of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt_segment s)) fmt

let magic = "SCIFSEG"
let version = 1
let header_len = 7 + 1 + 16 + 4
let default_records_per_block = 1024

let c_records_written = Obs.Metrics.counter "lake.records_written"
let c_bytes_written = Obs.Metrics.counter "lake.bytes_written"
let c_records_read = Obs.Metrics.counter "lake.records_read"
let c_blocks_read = Obs.Metrics.counter "lake.blocks_read"

(* ---- applicability masks, packed 8 bits per byte ---- *)

let mask_bytes = (Var.total + 7) / 8

let write_mask b (m : bool array) =
  let packed = Bytes.make mask_bytes '\000' in
  Array.iteri
    (fun i bit ->
       if bit then
         Bytes.set packed (i lsr 3)
           (Char.chr
              (Char.code (Bytes.get packed (i lsr 3)) lor (1 lsl (i land 7)))))
    m;
  Util.Binio.write_raw b (Bytes.unsafe_to_string packed)

let read_mask r =
  let packed = Util.Binio.read_string_exact r mask_bytes in
  Array.init Var.total
    (fun i -> Char.code packed.[i lsr 3] land (1 lsl (i land 7)) <> 0)

(* ---- block encoding ---- *)

let post_dual c = c >= Var.dual_count && c < 2 * Var.dual_count

(* Per-column stream tags. Only a handful of the machine's variables
   actually move inside any one block, so the common case — a column
   whose deltas are all zero, or one pinned at a single value — costs
   one tag byte to encode and (at most) a fill to decode, instead of a
   varint per record. This is what makes replaying a segment faster
   than re-simulating it. *)
let tag_zero = 0 (* every delta is zero: untouched (or post == pre) *)
let tag_const = 1 (* every record holds the same value, written once *)
let tag_deltas = 2 (* the general varint delta stream *)

let encode_payload ~workload (buf : Record.t array) n =
  let b = Util.Binio.writer () in
  Util.Binio.write_string b workload;
  Util.Binio.write_uint b n;
  (* Intern the block's program points: name + mask once, then one
     index per record. *)
  let by_name = Hashtbl.create 64 in
  let interned = ref [] in
  let npoints = ref 0 in
  let idx = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    let r = buf.(i) in
    match Hashtbl.find_opt by_name r.Record.point with
    | Some j -> idx.(i) <- j
    | None ->
      Hashtbl.add by_name r.Record.point !npoints;
      interned := r :: !interned;
      idx.(i) <- !npoints;
      incr npoints
  done;
  Util.Binio.write_uint b !npoints;
  List.iter
    (fun (r : Record.t) ->
       Util.Binio.write_string b r.point;
       write_mask b r.mask)
    (List.rev !interned);
  for i = 0 to n - 1 do
    Util.Binio.write_uint b idx.(i)
  done;
  (* One tagged stream per column (nothing at all for an empty block). *)
  if n > 0 then
    for c = 0 to Var.total - 1 do
      let first = buf.(0).Record.values.(c) in
      let all_zero = ref true and const = ref true in
      if post_dual c then
        for i = 0 to n - 1 do
          let v = buf.(i).Record.values in
          if v.(c) <> v.(c - Var.dual_count) then all_zero := false;
          if v.(c) <> first then const := false
        done
      else begin
        let prev = ref 0 in
        for i = 0 to n - 1 do
          let x = buf.(i).Record.values.(c) in
          if x <> !prev then all_zero := false;
          if x <> first then const := false;
          prev := x
        done
      end;
      if !all_zero then Util.Binio.write_uint b tag_zero
      else if !const then begin
        Util.Binio.write_uint b tag_const;
        Util.Binio.write_int b first
      end
      else begin
        Util.Binio.write_uint b tag_deltas;
        if post_dual c then
          for i = 0 to n - 1 do
            let v = buf.(i).Record.values in
            Util.Binio.write_int b (v.(c) - v.(c - Var.dual_count))
          done
        else begin
          let prev = ref 0 in
          for i = 0 to n - 1 do
            let x = buf.(i).Record.values.(c) in
            Util.Binio.write_int b (x - !prev);
            prev := x
          done
        end
      end
    done;
  Util.Binio.contents b

let output_block oc ~workload buf n =
  let payload = encode_payload ~workload buf n in
  let len = String.length payload in
  let hdr = Bytes.create header_len in
  Bytes.blit_string magic 0 hdr 0 7;
  Bytes.set hdr 7 (Char.chr version);
  Bytes.blit_string (Digest.string payload) 0 hdr 8 16;
  Bytes.set_int32_be hdr 24 (Int32.of_int len);
  output_bytes oc hdr;
  output_string oc payload;
  Obs.Metrics.add c_records_written n;
  Obs.Metrics.add c_bytes_written (header_len + len)

(* ---- writer ---- *)

type writer = {
  oc : out_channel;
  w_workload : string;
  block_cap : int;
  buf : Record.t array;
  mutable fill : int;
  mutable blocks : int;
  mutable written : int;
  mutable closed : bool;
}

let dummy_record = { Record.point = ""; values = [||]; mask = [||] }

let create ?(records_per_block = default_records_per_block) ~workload path =
  if records_per_block <= 0 then
    invalid_arg "Segment.create: records_per_block must be positive";
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      path
  in
  {
    oc;
    w_workload = workload;
    block_cap = records_per_block;
    (* The buffer holds references, not copies: [Runner.run_fold]
       allocates every record fresh and hands ownership to the consumer,
       so keeping them until the block flushes is safe. *)
    buf = Array.make records_per_block dummy_record;
    fill = 0;
    blocks = 0;
    written = 0;
    closed = false;
  }

let flush_block w =
  if w.fill > 0 || w.blocks = 0 then begin
    output_block w.oc ~workload:w.w_workload w.buf w.fill;
    Array.fill w.buf 0 w.block_cap dummy_record;
    w.blocks <- w.blocks + 1;
    w.written <- w.written + w.fill;
    w.fill <- 0
  end

let add w r =
  if w.closed then invalid_arg "Segment.add: writer is closed";
  w.buf.(w.fill) <- r;
  w.fill <- w.fill + 1;
  if w.fill = w.block_cap then flush_block w

let written w = w.written + w.fill

(* Close flushes the partial block (an empty trace still gets one empty
   block, so the file self-describes its workload) and fsyncs: once
   [close] returns, every appended block is on stable storage. *)
let close w =
  if not w.closed then begin
    w.closed <- true;
    Fun.protect
      ~finally:(fun () -> close_out w.oc)
      (fun () ->
         flush_block w;
         flush w.oc;
         try Unix.fsync (Unix.descr_of_out_channel w.oc)
         with Unix.Unix_error _ -> ())
  end

let with_writer ?records_per_block ~workload path f =
  let w = create ?records_per_block ~workload path in
  Fun.protect ~finally:(fun () -> close w) (fun () -> f w)

(* ---- reading ---- *)

(* Frame-header fields from the first byte plus the remaining
   [header_len - 1] bytes: every framing check except the payload
   digest, shared by the streaming reader and the header-only scans. *)
let parse_frame_rest c0 rest =
  if c0 <> magic.[0] || Bytes.sub_string rest 0 6 <> String.sub magic 1 6
  then corrupt "bad segment magic";
  let v = Char.code (Bytes.get rest 6) in
  if v < 1 || v > version then corrupt "unsupported segment version %d" v;
  let digest = Bytes.sub_string rest 7 16 in
  let len = Int32.to_int (Bytes.get_int32_be rest 23) in
  if len < 0 then corrupt "negative block length";
  (digest, len)

(* One framed block from the channel: [None] at a clean end of file,
   [Corrupt_segment] on a torn one. The first byte is read separately so
   EOF exactly on a block boundary is distinguishable from a tail that
   dies mid-header. Pure I/O plus framing — the digest is NOT verified
   here, so a read-ahead domain can pull frames off disk while the
   consuming domain checks and decodes them. *)
let input_frame ic =
  match input_char ic with
  | exception End_of_file -> None
  | c0 ->
    let rest = Bytes.create (header_len - 1) in
    (try really_input ic rest 0 (header_len - 1)
     with End_of_file -> corrupt "torn block header");
    let digest, len = parse_frame_rest c0 rest in
    let payload =
      try really_input_string ic len
      with End_of_file -> corrupt "torn block payload"
    in
    Some (digest, payload)

let verify_frame (digest, payload) =
  if not (String.equal (Digest.string payload) digest) then
    corrupt "block digest mismatch";
  payload

(* Reusable decode buffers. A fresh decode allocates one [Var.total]
   int row per record per block; across a multi-GB replay that is the
   dominant allocation. A [scratch] lets one consumer (one domain)
   recycle the rows block after block — safe only because the records
   handed to the fold callback alias the scratch rows and are
   invalidated by the next block, so scratch decoding is opt-in and
   reserved for consumers that provably do not retain records (the
   mining engine copies values at observation). *)
type scratch = {
  mutable srows : int array array;  (* recycled value rows *)
  mutable sidx : int array;  (* recycled point-index column *)
}

let scratch () = { srows = [||]; sidx = [||] }

(* Decode a verified payload into a batch of records. Lengths are
   bounded by the payload size before any allocation, so a hostile
   count cannot balloon memory past the block it arrived in. *)
let decode_payload ?scratch payload =
  try
    let r = Util.Binio.reader payload in
    let workload = Util.Binio.read_string r in
    let n = Util.Binio.read_uint r in
    if n > String.length payload then corrupt "record count exceeds block";
    let npoints = Util.Binio.read_uint r in
    if npoints > n then corrupt "point table larger than record count";
    let pnames = Array.make (max npoints 1) "" in
    let pmasks = Array.make (max npoints 1) [||] in
    for j = 0 to npoints - 1 do
      pnames.(j) <- Util.Binio.read_string r;
      pmasks.(j) <- read_mask r
    done;
    let idx =
      match scratch with
      | None -> Array.make (max n 1) 0
      | Some s ->
        if Array.length s.sidx < n then s.sidx <- Array.make (max n 16) 0;
        s.sidx
    in
    for i = 0 to n - 1 do
      let j = Util.Binio.read_uint r in
      if j >= npoints then corrupt "point index out of range";
      idx.(i) <- j
    done;
    (* With a scratch, rows carry the previous block's values, so the
       zero-skip shortcuts below must write explicitly ([dirty]); a
       fresh [Array.make] row arrives zeroed and can skip them. *)
    let dirty = scratch <> None in
    let values =
      match scratch with
      | None -> Array.init n (fun _ -> Array.make Var.total 0)
      | Some s ->
        if Array.length s.srows < n then begin
          let old = s.srows in
          s.srows <-
            Array.init (max n 16) (fun i ->
                if i < Array.length old then old.(i)
                else Array.make Var.total 0)
        end;
        s.srows
    in
    if n > 0 then
      for c = 0 to Var.total - 1 do
        match Util.Binio.read_uint r with
        | t when t = tag_zero ->
          (* Untouched column: a fresh row already holds it; a post
             column mirrors its (already decoded) pre. *)
          if post_dual c then
            for i = 0 to n - 1 do
              let v = values.(i) in
              v.(c) <- v.(c - Var.dual_count)
            done
          else if dirty then
            for i = 0 to n - 1 do
              values.(i).(c) <- 0
            done
        | t when t = tag_const ->
          let x = Util.Binio.read_int r in
          if x <> 0 || dirty then
            for i = 0 to n - 1 do
              values.(i).(c) <- x
            done
        | t when t = tag_deltas ->
          if post_dual c then
            for i = 0 to n - 1 do
              let v = values.(i) in
              v.(c) <- v.(c - Var.dual_count) + Util.Binio.read_int r
            done
          else begin
            let prev = ref 0 in
            for i = 0 to n - 1 do
              let x = !prev + Util.Binio.read_int r in
              values.(i).(c) <- x;
              prev := x
            done
          end
        | t -> corrupt "unknown column tag %d" t
      done;
    if not (Util.Binio.eof r) then corrupt "trailing bytes in block";
    let records =
      Array.init n (fun i ->
          {
            Record.point = pnames.(idx.(i));
            values = values.(i);
            mask = pmasks.(idx.(i));
          })
    in
    (workload, records)
  with Util.Binio.Truncated -> corrupt "truncated block"

type info = {
  records : int;
  blocks : int;
  bytes : int;
  workloads : string list;  (* distinct, in first-appearance order *)
}

(* Double-buffered read-ahead: a reader domain pulls frames off disk
   ([input_frame] — pure I/O) into a bounded two-slot queue while the
   consuming domain digest-checks and decodes the previous one, so the
   fold is never stalled on the disk and never more than two undecoded
   frames sit in memory. Reader-side exceptions (a torn tail) are
   carried across and re-raised at the consumer's next take, preserving
   the sequential error surface. *)
let read_frames_prefetched ic ~budget consume =
  let m = Mutex.create () in
  let nonempty = Condition.create () in
  let nonfull = Condition.create () in
  let q : (string * string) Queue.t = Queue.create () in
  let cap = 2 in
  let state = ref `Running in
  let abort = ref false in
  let producer () =
    let push fr =
      Mutex.lock m;
      while Queue.length q >= cap && not !abort do
        Condition.wait nonfull m
      done;
      let keep = not !abort in
      if keep then begin
        Queue.push fr q;
        Condition.signal nonempty
      end;
      Mutex.unlock m;
      keep
    in
    let rec go n =
      if n > 0 then
        match input_frame ic with
        | None -> ()
        | Some fr -> if push fr then go (n - 1)
    in
    let final = try go budget; `Eof with e -> `Err e in
    Mutex.lock m;
    (match !state with `Running -> state := final | _ -> ());
    Condition.signal nonempty;
    Mutex.unlock m
  in
  let dom = Domain.spawn producer in
  Fun.protect
    ~finally:(fun () ->
        Mutex.lock m;
        abort := true;
        Condition.broadcast nonfull;
        Mutex.unlock m;
        Domain.join dom)
    (fun () ->
       let processed = ref 0 in
       let finished = ref false in
       while (not !finished) && !processed < budget do
         Mutex.lock m;
         while
           Queue.is_empty q
           && match !state with `Running -> true | _ -> false
         do
           Condition.wait nonempty m
         done;
         let item = if Queue.is_empty q then None else Some (Queue.pop q) in
         let st = !state in
         if item <> None then Condition.signal nonfull;
         Mutex.unlock m;
         match item with
         | Some fr ->
           consume fr;
           incr processed
         | None ->
           (match st with
            | `Err e -> raise e
            | `Eof | `Running -> finished := true)
       done)

(* Stream the half-open block range [first_block, last_block) of the
   segment at [path] through [f]. Pre-range frames are seeked over with
   framing checks only (like {!block_digests}); decoding — and digest
   verification — starts at [first_block]. Blocks are self-contained
   (deltas reset at block boundaries), so a range fold decodes exactly
   what a whole-file fold decodes for those blocks, which is what makes
   block-granular sharding of a replay exact. *)
let fold_range ?(on_workload = fun (_ : string) -> ()) ?(read_ahead = false)
    ?scratch ?(first_block = 0) ?(last_block = max_int) ~init ~f path =
  if first_block < 0 || last_block < first_block then
    invalid_arg "Segment.fold_range: invalid block range";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
       let size = in_channel_length ic in
       (* Seek past the frames before the range; a file with fewer
          blocks than [first_block] yields an empty range, not an
          error — shard planners size ranges from the same headers. *)
       let skipped = ref 0 in
       (try
          while !skipped < first_block do
            match input_char ic with
            | exception End_of_file -> raise Exit
            | c0 ->
              let rest = Bytes.create (header_len - 1) in
              (try really_input ic rest 0 (header_len - 1)
               with End_of_file -> corrupt "torn block header");
              let _digest, len = parse_frame_rest c0 rest in
              if pos_in ic + len > size then corrupt "torn block payload";
              seek_in ic (pos_in ic + len);
              incr skipped
          done
        with Exit -> ());
       let acc = ref init in
       let records = ref 0 in
       let blocks = ref 0 in
       let bytes = ref 0 in
       let workloads = ref [] in
       let consume (_, payload as frame) =
         let payload_len = String.length payload in
         ignore (verify_frame frame : string);
         let workload, batch = decode_payload ?scratch payload in
         if not (List.mem workload !workloads) then
           workloads := workload :: !workloads;
         on_workload workload;
         Array.iter (fun r -> acc := f !acc r) batch;
         records := !records + Array.length batch;
         blocks := !blocks + 1;
         bytes := !bytes + header_len + payload_len;
         Obs.Metrics.incr c_blocks_read;
         Obs.Metrics.add c_records_read (Array.length batch)
       in
       let budget = last_block - first_block in
       if !skipped = first_block && budget > 0 then
         if read_ahead then read_frames_prefetched ic ~budget consume
         else begin
           let continue = ref true in
           while !continue && !blocks < budget do
             match input_frame ic with
             | None -> continue := false
             | Some frame -> consume frame
           done
         end;
       ( !acc,
         {
           records = !records;
           blocks = !blocks;
           bytes = !bytes;
           workloads = List.rev !workloads;
         } ))

let fold ?on_workload ?read_ahead ?scratch ~init ~f path =
  let acc, info = fold_range ?on_workload ?read_ahead ?scratch ~init ~f path in
  if info.blocks = 0 then corrupt "empty segment file";
  (acc, info)

let iter ?on_workload ~f path =
  snd (fold ?on_workload ~init:() ~f:(fun () r -> f r) path)

(* Header-only scan: per-block (digest, on-disk size), one seek per
   block — payloads are skipped, not read or verified. The framing
   checks mirror [input_frame]'s, so a torn tail still surfaces as
   [Corrupt_segment] instead of keying a cache entry or a shard plan. *)
let scan_frames path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
       let size = in_channel_length ic in
       let rec loop acc =
         match input_char ic with
         | exception End_of_file -> List.rev acc
         | c0 ->
           let rest = Bytes.create (header_len - 1) in
           (try really_input ic rest 0 (header_len - 1)
            with End_of_file -> corrupt "torn block header");
           let digest, len = parse_frame_rest c0 rest in
           if pos_in ic + len > size then corrupt "torn block payload";
           seek_in ic (pos_in ic + len);
           loop ((digest, header_len + len) :: acc)
       in
       let frames = loop [] in
       if frames = [] then corrupt "empty segment file";
       frames)

let block_digests path = List.map fst (scan_frames path)
let block_sizes path = List.map snd (scan_frames path)

(* ---- lake layout: one append-only segment file per workload ---- *)

let segment_path ~dir ~workload =
  Filename.concat dir (Util.Fsname.encode workload ^ ".seg")

let lake_segments dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    let segs =
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".seg")
      |> List.map (Filename.concat dir)
    in
    List.sort String.compare segs

(* ---- sharding a replay ---- *)

type span = {
  sp_path : string;
  sp_first : int;  (* first block, inclusive *)
  sp_last : int;  (* last block, exclusive *)
  sp_bytes : int;  (* on-disk bytes of the range *)
}

(* Cut [sizes] (per-block on-disk bytes) into [k] contiguous ranges
   balanced by cumulative bytes: close a piece once it has reached its
   proportional share of the total, as long as enough blocks remain to
   give every later piece at least one. Deterministic in the sizes
   alone. *)
let cut_ranges sizes k =
  let n = Array.length sizes in
  let k = max 1 (min k n) in
  let total = max 1 (Array.fold_left ( + ) 0 sizes) in
  let ranges = ref [] in
  let start = ref 0 in
  let piece = ref 1 in
  let cum = ref 0 in
  for i = 0 to n - 1 do
    cum := !cum + sizes.(i);
    let blocks_left = n - (i + 1) in
    let pieces_left = k - !piece in
    if
      !piece < k
      && ((!cum * k >= !piece * total && blocks_left >= pieces_left)
          || blocks_left = pieces_left)
    then begin
      ranges := (!start, i + 1) :: !ranges;
      start := i + 1;
      incr piece
    end
  done;
  ranges := (!start, n) :: !ranges;
  List.rev !ranges

(* Plan a [jobs]-way replay of [paths] (typically {!lake_segments}
   output): every block of every segment lands in exactly one span,
   spans never cross a segment boundary, and a segment bigger than its
   proportional share is split at block boundaries so one huge segment
   cannot serialize the whole replay. The plan depends only on the
   on-disk frame headers, so it is deterministic across runs and
   hosts. *)
let shard_spans ~jobs paths =
  let jobs = max 1 jobs in
  let sized =
    List.map (fun p -> (p, Array.of_list (block_sizes p))) paths
  in
  let total =
    List.fold_left (fun a (_, s) -> a + Array.fold_left ( + ) 0 s) 0 sized
  in
  let target = max 1 (total / jobs) in
  List.concat_map
    (fun (p, sizes) ->
       let seg_bytes = Array.fold_left ( + ) 0 sizes in
       let k =
         if jobs <= 1 then 1 else (seg_bytes + target - 1) / target
       in
       List.map
         (fun (first, last) ->
            let b = ref 0 in
            for i = first to last - 1 do
              b := !b + sizes.(i)
            done;
            { sp_path = p; sp_first = first; sp_last = last; sp_bytes = !b })
         (cut_ranges sizes k))
    sized
