(* Evaluation drivers for §5.4 (Tables 6/7), §5.6 (unknown-bug detection
   and the random-split repeat) and Table 9 (hardware overhead). *)

module Expr = Invariant.Expr

(* ---- Table 6/7: coverage of prior-work properties ---- *)

let property_coverage (identification : Sci.Identify.summary)
    (inference : Pipeline.inference) =
  let identified =
    List.map
      (fun (r : Sci.Identify.report) -> (r.bug.Bugs.Registry.id, r.true_sci))
      identification.reports
  in
  Properties.Catalog.evaluate ~identified ~inferred:inference.Pipeline.surviving

(* ---- §5.6: detection of held-out bugs ---- *)

type holdout_report = {
  bug : Bugs.Registry.t;
  by_identified : bool;
  by_inferred : bool;
  detected : bool;
}

(* An assertion battery "detects" a held-out bug when it fires on the
   buggy run of the bug's trigger but stays silent on the clean run of
   the same trigger (a battery that cries wolf detects nothing). This is
   the interpretive reference; the compiled variant below must agree
   (pinned by the mutbench gate). *)
let battery_detects battery (bug : Bugs.Registry.t) =
  let buggy = Sci.Identify.capture_trigger ~fault:bug.fault bug.trigger in
  let clean = Sci.Identify.capture_trigger bug.trigger in
  let fired_buggy = Assertions.Monitor.fired_assertions battery buggy in
  if fired_buggy = [] then false
  else begin
    let fired_clean = Assertions.Monitor.fired_assertions battery clean in
    let clean_names =
      List.map (fun (a : Assertions.Ovl.t) -> a.name) fired_clean
    in
    List.exists
      (fun (a : Assertions.Ovl.t) -> not (List.mem a.name clean_names))
      fired_buggy
  end

(* Same verdict through the compiled monitor: mask the clean run's
   fired-assertion set, then short-circuit on the first surviving firing
   in the buggy run. *)
let compiled_detects compiled (bug : Bugs.Registry.t) =
  let buggy = Sci.Identify.capture_trigger ~fault:bug.fault bug.trigger in
  let clean = Sci.Identify.capture_trigger bug.trigger in
  let clean_fired = Assertions.Compile.fired_set compiled clean in
  Assertions.Compile.detects ~ignore:clean_fired compiled buggy

let holdout ~identified_sci ~inferred_sci held_out_bugs =
  let compile invs =
    Assertions.Compile.compile (Assertions.Ovl.of_invariants invs)
  in
  let battery_ident = compile identified_sci in
  let battery_infer = compile inferred_sci in
  List.map
    (fun bug ->
       let by_identified = compiled_detects battery_ident bug in
       let by_inferred = compiled_detects battery_infer bug in
       { bug; by_identified; by_inferred;
         detected = by_identified || by_inferred })
    held_out_bugs

(* ---- §5.6: random re-split to avoid selection bias ----

   Pool = the 28 ISA-visible bugs (17 + 14 minus the 3 microarchitectural
   ones); 14 are drawn for identification + inference, the remaining 14
   are the test set. *)

type split_result = {
  training_ids : string list;
  test_ids : string list;
  reports : holdout_report list;
  detected_count : int;
}

let random_split ?(seed = 42) ~invariants () =
  let pool =
    List.filter
      (fun (b : Bugs.Registry.t) -> b.isa_visible)
      (Bugs.Table1.all @ Bugs.Amd_errata.all)
  in
  let arr = Array.of_list pool in
  let rng = Util.Prng.create seed in
  Util.Prng.shuffle rng arr;
  let training = Array.to_list (Array.sub arr 0 14) in
  let test = Array.to_list (Array.sub arr 14 (Array.length arr - 14)) in
  let identification = Pipeline.identify ~invariants training in
  let inference =
    Pipeline.infer ~all_invariants:invariants identification.summary
  in
  let reports =
    holdout
      ~identified_sci:identification.summary.unique_sci
      ~inferred_sci:inference.surviving
      test
  in
  { training_ids = List.map (fun (b : Bugs.Registry.t) -> b.id) training;
    test_ids = List.map (fun (b : Bugs.Registry.t) -> b.id) test;
    reports;
    detected_count =
      List.length (List.filter (fun r -> r.detected) reports) }

(* ---- Table 9: hardware overhead ---- *)

type overhead_report = {
  initial_assertions : int;   (* one per identified SCI shape class *)
  initial : Assertions.Cost.overhead;
  final_assertions : int;     (* identified + inferred shape classes *)
  final : Assertions.Cost.overhead;
}

let hardware_overhead ~identified_sci ~inferred_sci =
  let initial_reps = Shape.representatives identified_sci in
  let final_reps = Shape.representatives (identified_sci @ inferred_sci) in
  let battery_of reps = Assertions.Ovl.of_invariants reps in
  let initial_battery = battery_of initial_reps in
  let final_battery = battery_of final_reps in
  { initial_assertions = List.length initial_battery;
    initial = Assertions.Cost.battery_overhead initial_battery;
    final_assertions = List.length final_battery;
    final = Assertions.Cost.battery_overhead final_battery }
