(* The four-phase SCIFinder pipeline (Figure 1):

     1. invariant generation  (workload tracing + the Daikon engine)
     2. errata classification (encoded as data in [Bugs])
     3. SCI identification    (buggy-vs-clean violation differencing)
     4. SCI inference         (elastic-net logistic regression)

   plus the evaluation drivers behind every table and figure of §5. *)

module Expr = Invariant.Expr

(* All pipeline timing runs on the monotonic clock (NTP steps used to be
   able to make the wall-clock deltas here negative). *)
let time = Obs.Clock.time

(* Phase telemetry. Counters aggregate across calls; the per-engine
   candidate-family numbers are gauges set at extraction time. *)
let c_mine_records = Obs.Metrics.counter "mine.records"
let c_mine_fresh = Obs.Metrics.counter "mine.invariants_fresh"
let c_mine_deleted = Obs.Metrics.counter "mine.invariants_deleted"
let c_merges = Obs.Metrics.counter "mine.merges"
let c_merge_ns = Obs.Metrics.counter "mine.merge_ns"
let c_cache_hit = Obs.Metrics.counter "mine.cache.hit"
let c_cache_miss = Obs.Metrics.counter "mine.cache.miss"
let c_cache_stale = Obs.Metrics.counter "mine.cache.stale"

(* Segment files recorded but unstat-able afterwards: the lake byte
   totals skip them, and this counter is the only trace of the skip. *)
let c_lake_stat_errors = Obs.Metrics.counter "lake.stat_errors"
let c_summary_hit = Obs.Metrics.counter "mine.cache.summary_hit"
let c_summary_miss = Obs.Metrics.counter "mine.cache.summary_miss"

let publish_engine_stats engine =
  List.iter
    (fun (fs : Daikon.Engine.family_stats) ->
       let set suffix v =
         Obs.Metrics.set
           (Obs.Metrics.gauge
              (Printf.sprintf "daikon.candidates.%s.%s" fs.family suffix))
           (float_of_int v)
       in
       set "born" fs.born;
       set "live" fs.live;
       set "dead" (fs.born - fs.live))
    (Daikon.Engine.candidate_stats engine)

(* ---- Snapshot cache (warm-restart mining) ----

   Two levels, both living under the caller-supplied cache directory:

     <dir>/<workload>.snap        one Daikon engine shard per workload
     <dir>/mine-<key16>.summary   the full corpus-level mining result

   Every entry embeds a cache key — a digest over the codec version, the
   config fingerprint and everything that determines the traced
   observations (program image, entry point, tick period) — so a stale
   entry is positively detected and re-mined rather than silently
   trusted. Writes are atomic (temp + rename), so a crashed run can
   never leave a torn entry behind. *)

module Cache = struct
  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end

  (* The shard key pins down the exact byte stream the tracer would
     produce plus how the engine would digest it: codec version, config
     fingerprint, and the workload's name, entry, tick period and full
     program image. A provenance-mining run additionally folds in a
     marker, so it never silently adopts a provenance-free snapshot
     (whose death records would be missing) and vice versa. *)
  let shard_key ~provenance config (w : Workloads.Rt.t) =
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf "scifinder-shard/%d\n" Daikon.Engine.codec_version);
    if provenance then Buffer.add_string b "provenance\n";
    Buffer.add_string b (Daikon.Config.canonical_string config);
    Buffer.add_string b
      (Printf.sprintf "\n%s entry=%d tick=%d\n" w.name w.entry w.tick_period);
    List.iter
      (fun (addr, word) -> Buffer.add_string b (Printf.sprintf "%x:%x;" addr word))
      w.image;
    Digest.to_hex (Digest.string (Buffer.contents b))

  (* Registered and fuzz-generated workload names are arbitrary strings;
     percent-encoding pins each one to a single component of [dir] (a
     name with '/' or '..' used to escape the cache directory
     entirely). *)
  let shard_path dir name =
    Filename.concat dir (Util.Fsname.encode name ^ ".snap")

  (* None means miss or stale — either way the caller re-traces and
     overwrites. Distinguishing the two only matters for telemetry. *)
  let load_shard ~config ~provenance dir (w : Workloads.Rt.t) =
    let path = shard_path dir w.name in
    if not (Sys.file_exists path) then begin
      Obs.Metrics.incr c_cache_miss;
      None
    end
    else
      match
        Daikon.Engine.load ~key:(shard_key ~provenance config w) ~config path
      with
      | engine ->
        Obs.Metrics.incr c_cache_hit;
        Some engine
      | exception Daikon.Engine.Stale_snapshot _
      | exception Daikon.Engine.Corrupt_snapshot _ ->
        Obs.Metrics.incr c_cache_stale;
        None
      | exception Sys_error _ ->
        Obs.Metrics.incr c_cache_miss;
        None

  let save_shard ~config ~provenance dir (w : Workloads.Rt.t) engine =
    mkdir_p dir;
    Daikon.Engine.save ~key:(shard_key ~provenance config w) engine
      (shard_path dir w.name)
end

(* ---- Phase 1: invariant generation (§3.1, Figure 3, Table 8) ---- *)

type figure3_row = {
  group_label : string;
  unmodified : int;
  fresh : int;
  deleted : int;
  total : int;
}

(* The flight-recorder readout of a provenance-enabled mining run: the
   raw death trail, the eviction-proof per-family summary, and a
   last-narrowed witness for every surviving invariant the engine can
   attribute. *)
type provenance_report = {
  deaths : Daikon.Engine.death list;
  deaths_dropped : int;
  death_families : (string * int * Daikon.Engine.death option) list;
  witnesses : (Expr.t * Daikon.Engine.witness) list;
}

type mining = {
  invariants : Expr.t list;         (* the raw invariant set *)
  figure3 : figure3_row list;
  record_count : int;
  trace_bytes : int;                (* §5.1's "26GB of trace data" analogue *)
  mnemonic_coverage : string list;  (* instructions never observed (want []) *)
  prov : provenance_report option;  (* Some iff mined with ~provenance:true *)
  seconds : float;
}

let canon_set invs =
  let s = Hashtbl.create 65536 in
  List.iter (fun i -> Hashtbl.replace s (Expr.canonical i) ()) invs;
  s

(* Workload references are resolved once, up front: first against the
   caller-supplied pool, then against the suite (built-ins plus anything
   the fuzzer registered). Everything downstream works on [Rt.t]. *)
let resolve ~workloads name =
  match
    List.find_opt (fun w -> String.equal w.Workloads.Rt.name name) workloads
  with
  | Some w -> Some w
  | None -> Workloads.Suite.by_name name

let resolve_exn ~workloads name =
  match resolve ~workloads name with
  | Some w -> w
  | None -> invalid_arg ("Pipeline.mine: unknown workload " ^ name)

let trace_workload_into engine (w : Workloads.Rt.t) =
  (* Name the workload for death attribution (no-op without provenance). *)
  Daikon.Engine.set_workload engine w.Workloads.Rt.name;
  (* One span per workload shard, whichever domain it traces on. *)
  Obs.Span.with_ ~name:"mine.shard"
    ~attrs:[ ("workload", Obs.Sink.S w.Workloads.Rt.name) ]
    (fun () ->
       ignore
         (Trace.Runner.stream ~tick_period:w.Workloads.Rt.tick_period
            ~entry:w.Workloads.Rt.entry
            ~observer:(Daikon.Engine.observe engine)
            w.Workloads.Rt.image))

(* One workload shard: a cache hit deserialises the engine and skips
   tracing entirely; a miss (or stale/corrupt entry) traces and then
   persists the shard BEFORE the caller merges it — [merge_into] adopts
   shard state by reference, so saving after the merge would snapshot a
   consumed engine. *)
let mine_shard ~config ~provenance ~cache_dir (w : Workloads.Rt.t) =
  match cache_dir with
  | None ->
    let shard = Daikon.Engine.create ~config ~provenance () in
    trace_workload_into shard w;
    shard
  | Some dir ->
    (match Cache.load_shard ~config ~provenance dir w with
     | Some shard -> shard
     | None ->
       let shard = Daikon.Engine.create ~config ~provenance () in
       trace_workload_into shard w;
       Cache.save_shard ~config ~provenance dir w shard;
       shard)

(* Trace every named workload into a private shard engine on a bounded
   pool of domains. Shards come back in corpus order, so the caller's
   merge order — and therefore every extracted invariant set — is
   deterministic regardless of how the domains interleaved or which
   shards came from the cache. *)
let mine_shards ~config ~provenance ~jobs ~cache_dir ws =
  (* Capture the submitting span (pipeline.mine) here and re-install it
     around each task, so shard spans parent correctly even when they
     close on a pool domain whose own span stack is empty. *)
  let parent = Obs.Span.current () in
  Util.Parallel.map
    ~wrap:(fun th -> Obs.Span.with_context parent th)
    ~jobs (mine_shard ~config ~provenance ~cache_dir) ws

(* ---- Corpus-level summary cache ----

   A warm [mine] over an unchanged corpus should not pay for merging and
   re-extracting invariants either, so the full mining result (Figure 3
   rows, coverage, and the invariant set in the {!Invariant.Io} text
   grammar) is persisted alongside the shards. The key folds in every
   shard key in corpus order plus the group structure and labels, so any
   change to config, codec, images, grouping or labelling misses. *)

let summary_magic = "SCIFSUMM"

let summary_key ~config ~groups ~labels =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "scifinder-summary/%d\n" Daikon.Engine.codec_version);
  List.iter2
    (fun group label ->
       Buffer.add_string b ("[" ^ label ^ "]");
       List.iter
         (fun w ->
            Buffer.add_string b
              (Cache.shard_key ~provenance:false config w ^ ";"))
         group)
    groups labels;
  Digest.to_hex (Digest.string (Buffer.contents b))

let summary_path dir key =
  Filename.concat dir (Printf.sprintf "mine-%s.summary" (String.sub key 0 16))

let encode_summary ~key (m : mining) =
  let p = Util.Binio.writer () in
  Util.Binio.write_uint p (List.length m.figure3);
  List.iter
    (fun r ->
       Util.Binio.write_string p r.group_label;
       Util.Binio.write_uint p r.unmodified;
       Util.Binio.write_uint p r.fresh;
       Util.Binio.write_uint p r.deleted;
       Util.Binio.write_uint p r.total)
    m.figure3;
  Util.Binio.write_uint p m.record_count;
  Util.Binio.write_uint p (List.length m.mnemonic_coverage);
  List.iter (Util.Binio.write_string p) m.mnemonic_coverage;
  Util.Binio.write_string p
    (String.concat "\n" (List.map Expr.to_string m.invariants));
  let payload = Util.Binio.contents p in
  let h = Util.Binio.writer () in
  Util.Binio.write_raw h summary_magic;
  Util.Binio.write_string h key;
  Util.Binio.write_raw h (Digest.string payload);
  Util.Binio.write_string h payload;
  Util.Binio.contents h

(* Reads exactly [n] values in order (the polymorphic list builders in
   the stdlib leave evaluation order unspecified, which matters when [f]
   advances a cursor). *)
let read_seq n f =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
  go n []

(* None on any mismatch or damage: a summary is pure acceleration, so
   the only wrong answer is trusting a bad one. *)
let decode_summary ~key data =
  match
    let r = Util.Binio.reader data in
    if Util.Binio.read_string_exact r (String.length summary_magic)
       <> summary_magic
    then None
    else if not (String.equal (Util.Binio.read_string r) key) then None
    else begin
      let digest = Util.Binio.read_string_exact r 16 in
      let payload = Util.Binio.read_string r in
      if Digest.string payload <> digest then None
      else begin
        let p = Util.Binio.reader payload in
        let figure3 =
          read_seq (Util.Binio.read_uint p) (fun () ->
              let group_label = Util.Binio.read_string p in
              let unmodified = Util.Binio.read_uint p in
              let fresh = Util.Binio.read_uint p in
              let deleted = Util.Binio.read_uint p in
              let total = Util.Binio.read_uint p in
              { group_label; unmodified; fresh; deleted; total })
        in
        let record_count = Util.Binio.read_uint p in
        let mnemonic_coverage =
          read_seq (Util.Binio.read_uint p) (fun () -> Util.Binio.read_string p)
        in
        let invariants = Invariant.Io.of_string (Util.Binio.read_string p) in
        Some
          { invariants; figure3; record_count;
            trace_bytes = record_count * Trace.Var.total * 8;
            mnemonic_coverage; prov = None; seconds = 0.0 }
      end
    end
  with
  | m -> m
  | exception Util.Binio.Truncated -> None
  | exception Invariant.Io.Parse_error _ -> None

let load_summary dir ~key =
  let path = summary_path dir key in
  if not (Sys.file_exists path) then None
  else
    match Util.Binio.read_file path with
    | data -> decode_summary ~key data
    | exception Sys_error _ -> None

let save_summary dir ~key m =
  Cache.mkdir_p dir;
  Util.Binio.atomic_write (summary_path dir key) (encode_summary ~key m)

let missing_mnemonics engine =
  let seen = Hashtbl.create 97 in
  List.iter (fun p -> Hashtbl.replace seen p ()) (Daikon.Engine.points engine);
  List.filter (fun m -> not (Hashtbl.mem seen m)) Isa.Insn.all_mnemonics

(* The flight-recorder readout, when mining ran with provenance. *)
let prov_report ~provenance engine invariants =
  if not provenance then None
  else
    Some
      { deaths = Daikon.Engine.deaths engine;
        deaths_dropped = Daikon.Engine.deaths_dropped engine;
        death_families = Daikon.Engine.death_families engine;
        witnesses =
          List.filter_map
            (fun i ->
               Option.map (fun w -> (i, w))
                 (Daikon.Engine.narrow_witness engine i))
            invariants }

(* One Figure 3 row: diff the engine's current invariant set against the
   previous snapshot (threaded through [previous]). *)
let fig3_row ~previous ~label engine =
  let current = canon_set (Daikon.Engine.invariants engine) in
  let fresh = ref 0 and unmodified = ref 0 in
  Hashtbl.iter
    (fun k () ->
       if Hashtbl.mem !previous k then incr unmodified else incr fresh)
    current;
  let deleted = ref 0 in
  Hashtbl.iter
    (fun k () -> if not (Hashtbl.mem current k) then incr deleted)
    !previous;
  previous := current;
  { group_label = label;
    unmodified = !unmodified;
    fresh = !fresh;
    deleted = !deleted;
    total = Hashtbl.length current }

(* A timed shard merge, feeding the merge-cost counters. *)
let absorb_shard engine shard =
  let m0 = Obs.Clock.now_ns () in
  Daikon.Engine.merge_into engine shard;
  Obs.Metrics.add c_merge_ns (Int64.to_int (Obs.Clock.ns_since m0));
  Obs.Metrics.incr c_merges

(* Replay one lake segment into an engine, block by block, under the
   same span the live [mine_lake] fold always used. Scratch decode and
   read-ahead are safe here: the engine copies the values it keeps at
   observation, so nothing aliases the recycled rows past the fold. *)
let replay_segment_into engine path =
  let (), info =
    Obs.Span.with_ ~name:"lake.replay"
      ~attrs:[ ("segment", Obs.Sink.S (Filename.basename path)) ]
      (fun () ->
         Trace.Segment.fold
           ~on_workload:(Daikon.Engine.set_workload engine)
           ~read_ahead:true
           ~scratch:(Trace.Segment.scratch ())
           ~init:()
           ~f:(fun () r -> Daikon.Engine.observe engine r)
           path)
  in
  info

(* Replay one shard-plan span into a fresh engine on the calling
   domain. The per-span engines later merge in span order, so the
   workload attribution [set_workload] writes here matches what a
   sequential fold of the same blocks would have written. *)
let replay_span_into engine (sp : Trace.Segment.span) =
  let (), info =
    Obs.Span.with_ ~name:"lake.replay"
      ~attrs:
        [ ("segment", Obs.Sink.S (Filename.basename sp.Trace.Segment.sp_path));
          ("first_block", Obs.Sink.I sp.Trace.Segment.sp_first);
          ("last_block", Obs.Sink.I sp.Trace.Segment.sp_last) ]
      (fun () ->
         Trace.Segment.fold_range
           ~on_workload:(Daikon.Engine.set_workload engine)
           ~read_ahead:true
           ~scratch:(Trace.Segment.scratch ())
           ~first_block:sp.Trace.Segment.sp_first
           ~last_block:sp.Trace.Segment.sp_last
           ~init:()
           ~f:(fun () r -> Daikon.Engine.observe engine r)
           sp.Trace.Segment.sp_path)
  in
  info

(* ---- Lake-level warm cache ----

   The analogue of the corpus summary for [mine_lake]: the cache key is
   a digest over the codec version, the config fingerprint and every
   segment's per-block MD5 digests (readable from the frame headers
   without decoding a single payload), so touching any byte of the lake
   — appending a block, replacing a segment — misses positively. A hit
   restores the full mining result from [lake-<key>.summary]; the final
   engine is persisted alongside as [lake-<key>.snap] so a serve session
   mining the same lake adopts it whole (bit-identical snapshot bytes —
   the codec is canonical). *)

module Lake_cache = struct
  let lake_magic = "SCIFLAKE"

  let key ~config ~provenance segments =
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf "scifinder-lake/%d\n" Daikon.Engine.codec_version);
    if provenance then Buffer.add_string b "provenance\n";
    Buffer.add_string b (Daikon.Config.canonical_string config);
    Buffer.add_char b '\n';
    List.iter
      (fun path ->
         Buffer.add_string b (Filename.basename path);
         Buffer.add_char b ':';
         List.iter (Buffer.add_string b) (Trace.Segment.block_digests path);
         Buffer.add_char b ';')
      segments;
    Digest.to_hex (Digest.string (Buffer.contents b))

  let snap_path dir key =
    Filename.concat dir (Printf.sprintf "lake-%s.snap" (String.sub key 0 16))

  let sum_path dir key =
    Filename.concat dir
      (Printf.sprintf "lake-%s.summary" (String.sub key 0 16))

  (* Same frame discipline as the corpus summary, plus the real on-disk
     trace_bytes (a lake summary must restore it exactly, not estimate). *)
  let encode_summary ~key (m : mining) =
    let p = Util.Binio.writer () in
    Util.Binio.write_uint p (List.length m.figure3);
    List.iter
      (fun r ->
         Util.Binio.write_string p r.group_label;
         Util.Binio.write_uint p r.unmodified;
         Util.Binio.write_uint p r.fresh;
         Util.Binio.write_uint p r.deleted;
         Util.Binio.write_uint p r.total)
      m.figure3;
    Util.Binio.write_uint p m.record_count;
    Util.Binio.write_uint p m.trace_bytes;
    Util.Binio.write_uint p (List.length m.mnemonic_coverage);
    List.iter (Util.Binio.write_string p) m.mnemonic_coverage;
    Util.Binio.write_string p
      (String.concat "\n" (List.map Expr.to_string m.invariants));
    let payload = Util.Binio.contents p in
    let h = Util.Binio.writer () in
    Util.Binio.write_raw h lake_magic;
    Util.Binio.write_string h key;
    Util.Binio.write_raw h (Digest.string payload);
    Util.Binio.write_string h payload;
    Util.Binio.contents h

  let decode_summary ~key data =
    match
      let r = Util.Binio.reader data in
      if Util.Binio.read_string_exact r (String.length lake_magic)
         <> lake_magic
      then None
      else if not (String.equal (Util.Binio.read_string r) key) then None
      else begin
        let digest = Util.Binio.read_string_exact r 16 in
        let payload = Util.Binio.read_string r in
        if Digest.string payload <> digest then None
        else begin
          let p = Util.Binio.reader payload in
          let figure3 =
            read_seq (Util.Binio.read_uint p) (fun () ->
                let group_label = Util.Binio.read_string p in
                let unmodified = Util.Binio.read_uint p in
                let fresh = Util.Binio.read_uint p in
                let deleted = Util.Binio.read_uint p in
                let total = Util.Binio.read_uint p in
                { group_label; unmodified; fresh; deleted; total })
          in
          let record_count = Util.Binio.read_uint p in
          let trace_bytes = Util.Binio.read_uint p in
          let mnemonic_coverage =
            read_seq (Util.Binio.read_uint p) (fun () ->
                Util.Binio.read_string p)
          in
          let invariants =
            Invariant.Io.of_string (Util.Binio.read_string p)
          in
          Some
            { invariants; figure3; record_count; trace_bytes;
              mnemonic_coverage; prov = None; seconds = 0.0 }
        end
      end
    with
    | m -> m
    | exception Util.Binio.Truncated -> None
    | exception Invariant.Io.Parse_error _ -> None

  let load_summary dir ~key =
    let path = sum_path dir key in
    if not (Sys.file_exists path) then None
    else
      match Util.Binio.read_file path with
      | data -> decode_summary ~key data
      | exception Sys_error _ -> None

  let save dir ~key engine m =
    Cache.mkdir_p dir;
    Daikon.Engine.save ~key engine (snap_path dir key);
    Util.Binio.atomic_write (sum_path dir key) (encode_summary ~key m)

  let load_engine ~config dir ~key =
    let path = snap_path dir key in
    if not (Sys.file_exists path) then None
    else
      match Daikon.Engine.load ~key ~config path with
      | engine -> Some engine
      | exception Daikon.Engine.Stale_snapshot _
      | exception Daikon.Engine.Corrupt_snapshot _
      | exception Sys_error _ ->
        None
end

(* ---- Sessions: the incremental entry points the batch paths ride on.

   A session owns one engine plus the Figure 3 diff state and remembers
   every source it absorbed (workloads for re-streaming, lake dirs for
   re-folding) so imported invariants can later be checked against its
   corpus. [scifinder serve] holds one per client; [mine_cold] below is
   now a thin wrapper: create a session, feed it the corpus groups. *)

module Session = struct
  type source =
    | Src_workload of Workloads.Rt.t
    | Src_lake of string

  type t = {
    config : Daikon.Config.t;
    provenance : bool;
    jobs : int;
    cache_dir : string option;
    mutable engine : Daikon.Engine.t;
    mutable previous : (string, unit) Hashtbl.t;
    mutable sources : source list;  (* newest first *)
  }

  let create ?(config = Daikon.Config.default) ?(jobs = 1)
      ?(provenance = false) ?cache_dir () =
    { config; provenance; jobs; cache_dir;
      engine = Daikon.Engine.create ~config ~provenance ();
      previous = Hashtbl.create 1;
      sources = [] }

  let record_count t = Daikon.Engine.record_count t.engine
  let invariants t = Daikon.Engine.invariants t.engine

  let workloads t =
    List.filter_map
      (function Src_workload w -> Some w | Src_lake _ -> None)
      (List.rev t.sources)

  let source_count t = List.length t.sources

  (* Shard-or-stream plan, exactly the batch rule: [jobs <= 1] with no
     cache streams straight into the session engine (the paper's
     sequential setup, byte-identical to a live run); anything else
     mines per-workload shards and merges them in order. *)
  let shard_plan t ws =
    if t.jobs <= 1 && t.cache_dir = None then None
    else
      Some
        (mine_shards ~config:t.config ~provenance:t.provenance ~jobs:t.jobs
           ~cache_dir:t.cache_dir (Array.of_list ws))

  let absorb_list t shards idx ws =
    List.iter
      (fun w ->
         (match shards with
          | Some shards -> absorb_shard t.engine shards.(!idx)
          | None -> trace_workload_into t.engine w);
         incr idx;
         t.sources <- Src_workload w :: t.sources)
      ws

  let snapshot_row t ~label =
    let previous = ref t.previous in
    let row = fig3_row ~previous ~label t.engine in
    t.previous <- !previous;
    Obs.Metrics.add c_mine_fresh row.fresh;
    Obs.Metrics.add c_mine_deleted row.deleted;
    row

  let mine_groups t ~labels groups =
    let before = record_count t in
    let shards = shard_plan t (List.concat groups) in
    let idx = ref 0 in
    let rows = ref [] in
    List.iter2
      (fun group label ->
         absorb_list t shards idx group;
         rows := snapshot_row t ~label :: !rows)
      groups labels;
    Obs.Metrics.add c_mine_records (record_count t - before);
    List.rev !rows

  type outcome = {
    o_rows : figure3_row list;  (* [] when the caller skipped the diff *)
    o_records : int;            (* records this call added *)
  }

  let default_label ws =
    String.concat "+" (List.map (fun w -> w.Workloads.Rt.name) ws)

  let mine t ?label ?(row = true) ws =
    let before = record_count t in
    if row then
      let label = match label with Some l -> l | None -> default_label ws in
      let rows = mine_groups t ~labels:[ label ] [ ws ] in
      { o_rows = rows; o_records = record_count t - before }
    else begin
      (* No Figure 3 snapshot: absorb without extracting, leaving
         [previous] alone so the next snapshotted call diffs against the
         last row the caller actually asked for. *)
      let shards = shard_plan t ws in
      absorb_list t shards (ref 0) ws;
      Obs.Metrics.add c_mine_records (record_count t - before);
      { o_rows = []; o_records = record_count t - before }
    end

  let mine_lake t dir =
    let segments = Trace.Segment.lake_segments dir in
    if segments = [] then
      invalid_arg ("Pipeline.Session.mine_lake: no segments under " ^ dir);
    let before = record_count t in
    let fresh = before = 0 && t.sources = [] in
    let key =
      match t.cache_dir with
      | Some _ when not t.provenance ->
        Some (Lake_cache.key ~config:t.config ~provenance:t.provenance
                segments)
      | _ -> None
    in
    (* Warm path: a fresh session adopts the cached lake engine whole —
       snapshot bytes are canonical, so this is bit-identical to folding
       every segment again. A session that already holds state folds
       live (merging would perturb the sequential byte identity). *)
    let warm =
      match (fresh, t.cache_dir, key) with
      | true, Some cdir, Some key ->
        (match
           ( Lake_cache.load_engine ~config:t.config cdir ~key,
             Lake_cache.load_summary cdir ~key )
         with
         | Some engine, Some m ->
           Obs.Metrics.incr c_summary_hit;
           t.engine <- engine;
           t.previous <- canon_set m.invariants;
           Some m
         | _ ->
           Obs.Metrics.incr c_summary_miss;
           None)
      | _ -> None
    in
    match warm with
    | Some m ->
      t.sources <- Src_lake dir :: t.sources;
      m
    | None ->
      let disk_bytes = ref 0 in
      let rows =
        (* Parallel cold path: shard the lake into byte-balanced block
           spans, fold each span into its own engine on the domain pool,
           then merge in span order — [merge_into] is an exact join and
           blocks are self-contained, so the merged engine is
           byte-identical (canonical SCIFSNAP) to the sequential fold.
           Provenance replays stay sequential: the death ring is an
           eviction-lossy trace whose merge order is part of its
           meaning. *)
        if t.jobs > 1 && not t.provenance then begin
          let spans = Trace.Segment.shard_spans ~jobs:t.jobs segments in
          let parent = Obs.Span.current () in
          let shards =
            Util.Parallel.map
              ~wrap:(fun th -> Obs.Span.with_context parent th)
              ~jobs:t.jobs
              (fun sp ->
                 let shard =
                   Daikon.Engine.create ~config:t.config ~provenance:false ()
                 in
                 let info = replay_span_into shard sp in
                 (sp, shard, info))
              (Array.of_list spans)
          in
          let rows = ref [] in
          (* One Figure 3 row per segment, as the sequential fold
             produces: merge spans in order, snapshotting when the next
             span (or the end) leaves the current segment. The label is
             the segment's distinct workloads in first-appearance
             order — span infos concatenate to exactly that. *)
          let seg_workloads = ref [] in
          Array.iteri
            (fun i (sp, shard, (info : Trace.Segment.info)) ->
               absorb_shard t.engine shard;
               disk_bytes := !disk_bytes + info.Trace.Segment.bytes;
               List.iter
                 (fun w ->
                    if not (List.mem w !seg_workloads) then
                      seg_workloads := w :: !seg_workloads)
                 info.Trace.Segment.workloads;
               let seg_end =
                 i + 1 = Array.length shards
                 ||
                 let next, _, _ = shards.(i + 1) in
                 not
                   (String.equal next.Trace.Segment.sp_path
                      sp.Trace.Segment.sp_path)
               in
               if seg_end then begin
                 let label =
                   String.concat "+" (List.rev !seg_workloads)
                 in
                 rows := snapshot_row t ~label :: !rows;
                 seg_workloads := []
               end)
            shards;
          List.rev !rows
        end
        else
          List.map
            (fun path ->
               let info = replay_segment_into t.engine path in
               disk_bytes := !disk_bytes + info.Trace.Segment.bytes;
               let label = String.concat "+" info.Trace.Segment.workloads in
               snapshot_row t ~label)
            segments
      in
      t.sources <- Src_lake dir :: t.sources;
      let records = record_count t - before in
      Obs.Metrics.add c_mine_records records;
      let invariants = invariants t in
      let m =
        { invariants;
          figure3 = rows;
          record_count = records;
          trace_bytes = !disk_bytes;  (* real on-disk bytes *)
          mnemonic_coverage = missing_mnemonics t.engine;
          prov = prov_report ~provenance:t.provenance t.engine invariants;
          seconds = 0.0 }
      in
      (match (fresh, t.cache_dir, key) with
       | true, Some cdir, Some key ->
         (* The cached summary never carries provenance ([key] is None on
            a provenance run, so this branch is unreachable then). *)
         Lake_cache.save cdir ~key t.engine { m with prov = None }
       | _ -> ());
      m

  type check_status = Supported | Violated | Vacuous

  let check_status_name = function
    | Supported -> "supported"
    | Violated -> "violated"
    | Vacuous -> "vacuous"

  (* Validate imported invariants against everything this session has
     absorbed, re-streaming workloads and re-folding lake segments (the
     engine keeps no trace). One pass over the corpus: each record is
     dispatched to the candidates of its program point only. *)
  let check t invs =
    Obs.Span.with_ ~name:"session.check"
      ~attrs:[ ("invariants", Obs.Sink.I (List.length invs)) ]
      (fun () ->
         let arr = Array.of_list invs in
         let n = Array.length arr in
         let seen = Array.make (max n 1) false in
         let violated = Array.make (max n 1) false in
         let by_point = Hashtbl.create 97 in
         Array.iteri
           (fun i (inv : Expr.t) ->
              let prev =
                Option.value ~default:[]
                  (Hashtbl.find_opt by_point inv.point)
              in
              Hashtbl.replace by_point inv.point (i :: prev))
           arr;
         let observe (r : Trace.Record.t) =
           match Hashtbl.find_opt by_point r.Trace.Record.point with
           | None -> ()
           | Some idxs ->
             List.iter
               (fun i ->
                  seen.(i) <- true;
                  if (not violated.(i)) && Expr.violated_here arr.(i) r then
                    violated.(i) <- true)
               idxs
         in
         List.iter
           (function
             | Src_workload (w : Workloads.Rt.t) ->
               ignore
                 (Trace.Runner.stream ~tick_period:w.tick_period
                    ~entry:w.entry ~observer:observe w.image)
             | Src_lake dir ->
               List.iter
                 (fun path ->
                    ignore
                      (Trace.Segment.fold ~init:()
                         ~f:(fun () r -> observe r) path))
                 (Trace.Segment.lake_segments dir))
           (List.rev t.sources);
         Array.to_list
           (Array.mapi
              (fun i inv ->
                 ( inv,
                   if not seen.(i) then Vacuous
                   else if violated.(i) then Violated
                   else Supported ))
              arr))

  let encode t = Daikon.Engine.encode t.engine

  let engine_digest t = Digest.to_hex (Digest.string (encode t))

  let save t path = Daikon.Engine.save t.engine path
end

(* The cold path, now expressed over a session: trace (or load cached
   shards), merge in corpus order, and snapshot the Figure 3 series
   group by group. *)
let mine_cold ~config ~provenance ~groups ~labels ~jobs ~cache_dir () =
    let s = Session.create ~config ~jobs ~provenance ?cache_dir () in
    let rows = Session.mine_groups s ~labels groups in
    let engine = s.Session.engine in
    let invariants = Daikon.Engine.invariants engine in
    let record_count = Daikon.Engine.record_count engine in
    publish_engine_stats engine;
    let prov = prov_report ~provenance engine invariants in
    { invariants;
      figure3 = rows;
      record_count;
      trace_bytes = record_count * Trace.Var.total * 8;
      mnemonic_coverage = missing_mnemonics engine;
      prov;
      seconds = 0.0 }

let mine ?(config = Daikon.Config.default)
    ?(workloads = Workloads.Suite.all)
    ?(groups = Workloads.Suite.figure3_groups)
    ?(labels = Workloads.Suite.figure3_labels)
    ?(jobs = Util.Parallel.default_jobs ())
    ?(provenance = false)
    ?cache_dir
    () =
  let groups = List.map (List.map (resolve_exn ~workloads)) groups in
  let body () =
    match cache_dir with
    (* The summary cache stores no provenance, so a provenance run only
       uses the shard-level cache (whose key carries the marker). *)
    | None ->
      mine_cold ~config ~provenance ~groups ~labels ~jobs ~cache_dir:None ()
    | Some _ when provenance ->
      mine_cold ~config ~provenance ~groups ~labels ~jobs ~cache_dir ()
    | Some dir ->
      let key = summary_key ~config ~groups ~labels in
      (match load_summary dir ~key with
       | Some m ->
         Obs.Metrics.incr c_summary_hit;
         m
       | None ->
         Obs.Metrics.incr c_summary_miss;
         let m =
           mine_cold ~config ~provenance ~groups ~labels ~jobs ~cache_dir ()
         in
         save_summary dir ~key m;
         m)
  in
  let r, seconds =
    Obs.Span.timed ~name:"pipeline.mine"
      ~attrs:[ ("jobs", Obs.Sink.I jobs) ] body
  in
  { r with seconds }

let mine_invariants ?(config = Daikon.Config.default)
    ?(jobs = Util.Parallel.default_jobs ()) ?(provenance = false) ?cache_dir
    ?names () =
  let names = match names with None -> Workloads.Suite.names | Some l -> l in
  let ws = List.map (resolve_exn ~workloads:[]) names in
  Obs.Span.with_ ~name:"pipeline.mine"
    ~attrs:[ ("jobs", Obs.Sink.I jobs) ]
    (fun () ->
       let engine = Daikon.Engine.create ~config ~provenance () in
       if jobs <= 1 && cache_dir = None then
         List.iter (trace_workload_into engine) ws
       else
         Array.iter (absorb_shard engine)
           (mine_shards ~config ~provenance ~jobs ~cache_dir
              (Array.of_list ws));
       Obs.Metrics.add c_mine_records (Daikon.Engine.record_count engine);
       publish_engine_stats engine;
       Daikon.Engine.invariants engine)

(* ---- The trace lake: durable on-disk segments (ROADMAP item 2) ----

   [record_lake] streams workload traces straight into append-only
   SCIFSEG files (one per workload, named safely via [Util.Fsname]);
   [mine_lake] folds every segment of a lake directory through one
   engine, block by block — out-of-core on both sides, and bit-identical
   to mining the same workload sequence live. *)

type lake_stats = {
  lake_segments : int;
  lake_records : int;
  lake_bytes : int;
  lake_seconds : float;
}

let record_lake ?(workloads = []) ?names ?(jobs = 1) ~dir () =
  let names = match names with None -> Workloads.Suite.names | Some l -> l in
  let ws = List.map (resolve_exn ~workloads) names in
  (* Each workload appends to its own segment file, so recording
     parallelizes across workloads — except when a name repeats: two
     writers appending the same file would interleave half-built
     blocks, so duplicates fall back to the sequential path, where
     appends compose. *)
  let jobs =
    if List.length (List.sort_uniq String.compare names) = List.length names
    then jobs
    else 1
  in
  let r, lake_seconds =
    Obs.Span.timed ~name:"lake.record"
      ~attrs:
        [ ("segments", Obs.Sink.I (List.length ws));
          ("jobs", Obs.Sink.I jobs) ]
      (fun () ->
         Cache.mkdir_p dir;
         let parent = Obs.Span.current () in
         let per_workload =
           Util.Parallel.map
             ~wrap:(fun th -> Obs.Span.with_context parent th)
             ~jobs
             (fun (w : Workloads.Rt.t) ->
                let path = Trace.Segment.segment_path ~dir ~workload:w.name in
                let records =
                  Trace.Segment.with_writer ~workload:w.name path (fun sw ->
                      ignore
                        (Trace.Runner.stream_to_segment
                           ~tick_period:w.tick_period ~entry:w.entry
                           ~writer:sw w.image);
                      Trace.Segment.written sw)
                in
                let bytes =
                  try (Unix.stat path).Unix.st_size
                  with Unix.Unix_error _ ->
                    (* A segment we just wrote but cannot stat back is
                       worth surfacing: count the skip instead of
                       silently folding a zero into the total. *)
                    Obs.Metrics.incr c_lake_stat_errors;
                    0
                in
                (records, bytes))
             (Array.of_list ws)
         in
         let records = Array.fold_left (fun a (r, _) -> a + r) 0 per_workload in
         let bytes = Array.fold_left (fun a (_, b) -> a + b) 0 per_workload in
         { lake_segments = List.length ws;
           lake_records = records;
           lake_bytes = bytes;
           lake_seconds = 0.0 })
  in
  { r with lake_seconds }

let mine_lake ?(config = Daikon.Config.default) ?(provenance = false)
    ?(jobs = 1) ?cache_dir dir =
  let segments = Trace.Segment.lake_segments dir in
  if segments = [] then
    invalid_arg ("Pipeline.mine_lake: no segments under " ^ dir);
  let body () =
    let s = Session.create ~config ~provenance ~jobs ?cache_dir () in
    let m = Session.mine_lake s dir in
    publish_engine_stats s.Session.engine;
    m
  in
  let r, seconds =
    Obs.Span.timed ~name:"pipeline.mine"
      ~attrs:[ ("source", Obs.Sink.S "lake"); ("jobs", Obs.Sink.I jobs) ]
      body
  in
  { r with seconds }

(* ---- §3.2: optimisation (Table 2) ---- *)

type optimization = {
  result : Invopt.Pipeline.result;
  opt_seconds : float;
}

let optimize invariants =
  let result, opt_seconds =
    Obs.Span.timed ~name:"pipeline.optimize"
      ~attrs:[ ("invariants_in", Obs.Sink.I (List.length invariants)) ]
      (fun () -> Invopt.Pipeline.optimize invariants)
  in
  Obs.Metrics.set
    (Obs.Metrics.gauge "optimize.invariants_out")
    (float_of_int (List.length result.Invopt.Pipeline.optimized));
  { result; opt_seconds }

(* ---- Phase 3: identification (Table 3) ---- *)

type identification = {
  summary : Sci.Identify.summary;
  ident_seconds : float;
}

let identify ~invariants bug_list =
  let summary, ident_seconds =
    Obs.Span.timed ~name:"pipeline.identify"
      ~attrs:[ ("bugs", Obs.Sink.I (List.length bug_list)) ]
      (fun () -> Sci.Identify.run_all ~invariants bug_list)
  in
  Obs.Metrics.set
    (Obs.Metrics.gauge "identify.unique_sci")
    (float_of_int (List.length summary.Sci.Identify.unique_sci));
  Obs.Metrics.set
    (Obs.Metrics.gauge "identify.unique_fp")
    (float_of_int (List.length summary.Sci.Identify.unique_fp));
  { summary; ident_seconds }

(* ---- Phase 4: inference (§3.4, §5.3; Tables 4 and 5, Figure 4) ---- *)

type inference = {
  space : Invariant.Feature.space;
  model : Ml.Logreg.model;
  chosen_lambda : float;
  cv_accuracy : float;
  test_accuracy : float;
  labeled_sci : int;
  labeled_non_sci : int;
  selected_features : (string * float) list; (* Table 4 *)
  recommended : Expr.t list;
  inferred_fp : Expr.t list;
  surviving : Expr.t list;
  property_count : int;                      (* Table 5's rightmost column *)
  pca_points : (float array * int) list;     (* (PC1/PC2, 1 = SC) *)
  pca_separation : float;
  infer_seconds : float;
}

let infer ?(seed = 20170408) ?(alpha = 0.5) ~all_invariants
    (summary : Sci.Identify.summary) =
  let body () =
  let space = Invariant.Feature.build_space all_invariants in
  let sci = summary.Sci.Identify.unique_sci in
  let non_sci_all = summary.Sci.Identify.unique_fp in
  (* Balance the classes as the paper's near-even 54/48 labels were. *)
  let rng = Util.Prng.create seed in
  let non_arr = Array.of_list non_sci_all in
  Util.Prng.shuffle rng non_arr;
  let n_non = min (Array.length non_arr) (List.length sci) in
  let non_sci = Array.to_list (Array.sub non_arr 0 (max 1 n_non)) in
  (* y = 1 for non-security-critical (the paper models pi = P(non-SC)). *)
  let labeled =
    List.map (fun i -> (i, 0.0)) sci @ List.map (fun i -> (i, 1.0)) non_sci
  in
  let labeled = Array.of_list labeled in
  Util.Prng.shuffle rng labeled;
  let n = Array.length labeled in
  let n_train = max 2 (n * 7 / 10) in
  let to_xy arr =
    let x = Ml.Matrix.of_rows
        (Array.to_list (Array.map (fun (i, _) -> Invariant.Feature.vector space i) arr))
    and y = Array.map snd arr in
    (x, y)
  in
  let train = Array.sub labeled 0 n_train in
  let test = Array.sub labeled n_train (n - n_train) in
  let x_train, y_train = to_xy train in
  let x_test, y_test = to_xy test in
  (* alpha = 0.5, 3-fold CV to choose lambda (§5.3). glmnet practice: take
     the sparsest lambda whose CV accuracy is within one standard error of
     the best (the lambda.1se rule), which is what gives the paper its 24
     non-zero coefficients out of 158. *)
  let _best_lambda, best_acc, table =
    Ml.Logreg.cross_validate ~alpha ~folds:3 ~seed x_train y_train
  in
  let chosen_lambda, cv_accuracy =
    List.fold_left
      (fun (bl, ba) (l, a) ->
         if a >= best_acc -. 0.01 && l > bl then (l, a) else (bl, ba))
      (0.0, 0.0) table
  in
  let model = Ml.Logreg.fit ~alpha ~lambda:chosen_lambda x_train y_train in
  let test_accuracy =
    if Array.length test = 0 then 1.0 else Ml.Logreg.accuracy model x_test y_test
  in
  (* Refit on all labeled data for deployment, as glmnet users do. *)
  let x_all, y_all = to_xy labeled in
  let model = Ml.Logreg.fit ~alpha ~lambda:chosen_lambda x_all y_all in
  let selected_features =
    List.map
      (fun (j, beta) -> (Invariant.Feature.feature_name space j, beta))
      (Ml.Logreg.nonzero_features model)
  in
  (* Predict the unlabeled remainder: p < 0.5 means security critical. *)
  let labeled_keys = Hashtbl.create 1024 in
  Array.iter
    (fun (i, _) -> Hashtbl.replace labeled_keys (Expr.canonical i) ())
    labeled;
  List.iter
    (fun i -> Hashtbl.replace labeled_keys (Expr.canonical i) ())
    non_sci_all;
  let unlabeled =
    List.filter
      (fun i -> not (Hashtbl.mem labeled_keys (Expr.canonical i)))
      all_invariants
  in
  let recommended =
    List.filter
      (fun i ->
         Ml.Logreg.predict_proba model (Invariant.Feature.vector space i) < 0.5)
      unlabeled
  in
  (* Expert validation of the recommendations (§5.7's manual pass). *)
  let surviving, inferred_fp = Oracle.validate recommended in
  let property_count = Shape.class_count surviving in
  (* Figure 4: PCA over the labeled invariants on the selected features
     (the paper used its 24 non-zero-coefficient features; we take the 24
     largest coefficients by magnitude when more survive). *)
  let selected_idx =
    selected_features
    |> List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a))
    |> List.filteri (fun i _ -> i < 24)
    |> List.map
      (fun (name, _) ->
         match Hashtbl.find_opt space.Invariant.Feature.index name with
         | Some j -> j
         | None -> assert false)
  in
  let pca_points, pca_separation =
    if selected_idx = [] || Array.length labeled < 4 then ([], 0.0)
    else begin
      let reduce row = Array.of_list (List.map (fun j -> row.(j)) selected_idx) in
      let rows =
        Array.to_list
          (Array.map
             (fun (i, _) -> reduce (Invariant.Feature.vector space i))
             labeled)
      in
      let x = Ml.Matrix.of_rows rows in
      let pca = Ml.Pca.fit ~k:2 x in
      let points =
        List.mapi
          (fun idx row ->
             let _, y = labeled.(idx) in
             (Ml.Pca.project pca row, if y = 0.0 then 1 else 0))
          rows
      in
      let sep =
        Ml.Pca.separation (List.map fst points) (List.map snd points)
      in
      (points, sep)
    end
  in
  Obs.Metrics.set
    (Obs.Metrics.gauge "infer.recommended")
    (float_of_int (List.length recommended));
  Obs.Metrics.set
    (Obs.Metrics.gauge "infer.surviving")
    (float_of_int (List.length surviving));
  { space; model; chosen_lambda; cv_accuracy; test_accuracy;
    labeled_sci = List.length sci;
    labeled_non_sci = List.length non_sci;
    selected_features;
    recommended; inferred_fp; surviving; property_count;
    pca_points; pca_separation;
    infer_seconds = 0.0 }
  in
  let r, infer_seconds =
    Obs.Span.timed ~name:"pipeline.infer"
      ~attrs:[ ("invariants", Obs.Sink.I (List.length all_invariants)) ]
      body
  in
  { r with infer_seconds }

(* ---- The mutant-at-scale campaign (LASHED-style evaluation) ----

   The 17 reproduced Table 1 bugs are the ground truth the pipeline is
   built on; the campaign asks how the same SCI battery fares against
   hundreds of *generated* semantic mutants it has never seen, driven by
   fuzz-generated trigger programs (PR 4's generator). Detection follows
   the §5.6 discipline: an assertion that already fires on the clean run
   of a trigger detects nothing, so each mutant must fire an assertion
   outside its trigger's clean-run set. The compiled monitor's
   short-circuit scan gives detection latency (in retired instructions)
   for free. *)

type mutant_outcome = {
  mutant : Bugs.Mutant.t;
  trigger : string;    (* the detecting trigger, or the last one tried *)
  detected : bool;
  latency : int;       (* first-firing record index; -1 when undetected *)
  assertion : string option;  (* the detecting assertion's battery name *)
}

type campaign_class = {
  class_name : string;
  class_total : int;
  class_detected : int;
  class_mean_latency : float;   (* over detected mutants; nan when none *)
  class_fp_rate : float;
      (* fraction of the class's primary triggers whose clean run fires *)
}

type campaign = {
  camp_seed : int;
  mutant_total : int;
  detected_total : int;
  trigger_count : int;
  fp_trigger_count : int;  (* triggers whose clean run fires the battery *)
  outcomes : mutant_outcome list;
  classes : campaign_class list;
  fingerprint : string;    (* digest of the outcome list: determinism key *)
  camp_seconds : float;
}

let campaign ?(seed = 42) ?(mutants = 200) ?(triggers = 48) ?(tries = 3)
    ~sci () =
  let body () =
    let battery = Assertions.Ovl.of_invariants sci in
    let compiled = Assertions.Compile.compile battery in
    (* Shared trigger pool: each clean trace and its fired-assertion mask
       are captured once and reused across every mutant. *)
    let pool =
      Array.init triggers (fun index ->
          let w = Fuzz.Gen.candidate ~seed ~index in
          let clean = Sci.Identify.capture_trigger w in
          let fired = Assertions.Compile.fired_set compiled clean in
          (w, fired, Array.exists Fun.id fired))
    in
    let fp_trigger_count =
      Array.fold_left (fun n (_, _, fp) -> if fp then n + 1 else n) 0 pool
    in
    let outcomes =
      List.mapi
        (fun i (m : Bugs.Mutant.t) ->
           let rec attempt j =
             let w, clean_fired, _ = pool.((i + (j * 17)) mod triggers) in
             if j >= tries then
               { mutant = m; trigger = w.Workloads.Rt.name;
                 detected = false; latency = -1; assertion = None }
             else begin
               let buggy =
                 Sci.Identify.capture_trigger ~fault:m.Bugs.Mutant.fault w
               in
               match
                 Assertions.Compile.first_firing ~ignore:clean_fired
                   compiled buggy
               with
               | Some f ->
                 { mutant = m; trigger = w.Workloads.Rt.name;
                   detected = true; latency = f.Assertions.Monitor.step;
                   assertion =
                     Some f.Assertions.Monitor.assertion.Assertions.Ovl.name }
               | None -> attempt (j + 1)
             end
           in
           attempt 0)
        (Bugs.Mutant.generate ~seed ~count:mutants)
    in
    let classes =
      List.map
        (fun cat ->
           let mine =
             List.filter
               (fun o -> o.mutant.Bugs.Mutant.category = cat)
               outcomes
           in
           let det = List.filter (fun o -> o.detected) mine in
           let mean_latency =
             match det with
             | [] -> Float.nan
             | _ ->
               float_of_int
                 (List.fold_left (fun s o -> s + o.latency) 0 det)
               /. float_of_int (List.length det)
           in
           let fp =
             (* primary trigger of mutant i is pool.(i mod triggers) *)
             List.fold_left (fun n o ->
                 let i = int_of_string
                     (String.sub o.mutant.Bugs.Mutant.id 1
                        (String.length o.mutant.Bugs.Mutant.id - 1)) in
                 let _, _, clean_fp = pool.(i mod triggers) in
                 if clean_fp then n + 1 else n)
               0 mine
           in
           { class_name = Bugs.Registry.category_name cat;
             class_total = List.length mine;
             class_detected = List.length det;
             class_mean_latency = mean_latency;
             class_fp_rate =
               (if mine = [] then 0.0
                else float_of_int fp /. float_of_int (List.length mine)) })
        [ Bugs.Registry.Cf; Bugs.Registry.Xr; Bugs.Registry.Ma;
          Bugs.Registry.Ie; Bugs.Registry.Cr; Bugs.Registry.Ru ]
    in
    let fingerprint =
      outcomes
      |> List.map (fun o ->
             Printf.sprintf "%s:%s:%s:%b:%d" o.mutant.Bugs.Mutant.id
               (Bugs.Registry.category_name o.mutant.Bugs.Mutant.category)
               o.trigger o.detected o.latency)
      |> String.concat "\n"
      |> Digest.string |> Digest.to_hex
    in
    { camp_seed = seed;
      mutant_total = mutants;
      detected_total =
        List.length (List.filter (fun o -> o.detected) outcomes);
      trigger_count = triggers;
      fp_trigger_count;
      outcomes; classes; fingerprint;
      camp_seconds = 0.0 }
  in
  let r, camp_seconds =
    Obs.Span.timed ~name:"pipeline.campaign"
      ~attrs:[ ("mutants", Obs.Sink.I mutants);
               ("triggers", Obs.Sink.I triggers) ]
      body
  in
  Obs.Metrics.set
    (Obs.Metrics.gauge "campaign.mutants") (float_of_int r.mutant_total);
  Obs.Metrics.set
    (Obs.Metrics.gauge "campaign.detected") (float_of_int r.detected_total);
  Obs.Metrics.set
    (Obs.Metrics.gauge "campaign.fp_triggers")
    (float_of_int r.fp_trigger_count);
  { r with camp_seconds }
