(** The four-phase SCIFinder pipeline (the paper's Figure 1):
    invariant generation, errata classification (data in [Bugs]),
    SCI identification, and SCI inference — plus the measurements behind
    the evaluation tables. *)

val time : (unit -> 'a) -> 'a * float
(** [Obs.Clock.time]: elapsed {e monotonic} seconds alongside the result.
    (Timing used to be [Unix.gettimeofday] deltas, which an NTP step could
    make negative.) *)

(** {1 Phase 1: invariant generation (§3.1, Figure 3)} *)

type figure3_row = {
  group_label : string;
  unmodified : int;  (** invariants shared with the previous snapshot *)
  fresh : int;       (** newly justified *)
  deleted : int;     (** falsified by the new trace *)
  total : int;
}

(** Flight-recorder readout of a provenance-enabled run (see
    {!Daikon.Engine.deaths}): the death trail, the eviction-proof
    per-family summary, and the last-narrowed witness of every surviving
    invariant the engine can attribute. *)
type provenance_report = {
  deaths : Daikon.Engine.death list;
  deaths_dropped : int;
  death_families : (string * int * Daikon.Engine.death option) list;
  witnesses : (Invariant.Expr.t * Daikon.Engine.witness) list;
}

type mining = {
  invariants : Invariant.Expr.t list;  (** the raw invariant set *)
  figure3 : figure3_row list;
  record_count : int;
  trace_bytes : int;                   (** the "26 GB of trace data" analogue *)
  mnemonic_coverage : string list;     (** instructions never observed; want [] *)
  prov : provenance_report option;     (** [Some] iff mined with provenance *)
  seconds : float;
}

val mine :
  ?config:Daikon.Config.t ->
  ?workloads:Workloads.Rt.t list ->
  ?groups:string list list ->
  ?labels:string list ->
  ?jobs:int ->
  ?provenance:bool ->
  ?cache_dir:string ->
  unit -> mining
(** Trace the corpus cumulatively (default: the 17 programs in Figure 3
    order), snapshotting the invariant set after each group.

    [groups] names are resolved first against [workloads], then against
    the suite — built-ins plus anything {!Workloads.Suite.register}ed,
    e.g. a fuzz corpus; unknown names raise [Invalid_argument].

    [jobs] (default {!Util.Parallel.default_jobs}) bounds the pool of
    domains tracing workload shards in parallel; each shard feeds a
    private {!Daikon.Engine.t} and the shards are merged in fixed corpus
    order, so the invariant set and every Figure 3 snapshot are identical
    for any [jobs >= 1].

    [cache_dir] enables incremental mining: each workload's engine shard
    is persisted there as [<workload>.snap] (see {!Daikon.Engine.save}),
    keyed by a digest of the codec version, the {!Daikon.Config}
    fingerprint, and the workload's program image, entry point and tick
    period — a hit skips tracing entirely and goes straight to the merge;
    a stale, corrupt or truncated entry is rejected and re-mined. The
    full result (Figure 3 rows, coverage, invariant set) is additionally
    cached as [mine-<key>.summary], so a fully warm run also skips
    merging and extraction. Cached and uncached runs produce
    bit-identical results; all writes are atomic (temp file + rename).

    [provenance] (default false) turns on the flight recorder: the
    result carries a {!provenance_report} and shard snapshots embed the
    death records (codec v2). The shard cache key folds in a provenance
    marker — provenance and provenance-free runs never adopt each
    other's shards — and the summary-level cache is bypassed, since a
    summary stores no provenance. The mined invariant set is identical
    either way. *)

val mine_invariants :
  ?config:Daikon.Config.t ->
  ?jobs:int ->
  ?provenance:bool ->
  ?cache_dir:string ->
  ?names:string list ->
  unit -> Invariant.Expr.t list
(** Just the mined invariant set of the named workloads (default: the
    whole corpus; registered workloads resolve too), sharded over [jobs]
    domains like {!mine} but without the Figure 3 bookkeeping.
    [cache_dir] caches per-workload shards exactly as in {!mine} (no
    summary-level entry). *)

(** {1 The on-disk trace lake (ROADMAP item 2)}

    Durable append-only {!Trace.Segment} files — the analogue of the
    paper's 26 GB trace corpus. Recording streams each fused record to
    disk as it is built; mining folds segments back block by block.
    Neither side materialises a trace, so the lake can grow to hundreds
    of times the in-memory corpus. *)

type lake_stats = {
  lake_segments : int;
  lake_records : int;
  lake_bytes : int;   (** on-disk size of the segments written to *)
  lake_seconds : float;
}

val record_lake :
  ?workloads:Workloads.Rt.t list ->
  ?names:string list ->
  ?jobs:int ->
  dir:string -> unit -> lake_stats
(** Trace every named workload (default: the whole suite; names resolve
    against [workloads] first, then the suite) and append its records to
    [dir]'s segment for that workload, creating directory and segments
    as needed. Append-only: recording the same workload again extends
    its segment, which is how a fuzz run accumulates a multi-100×
    corpus. [jobs] (default 1) records workloads in parallel on a
    domain pool — each workload owns its segment file, so writers never
    share a file; a name list with duplicates falls back to sequential
    recording (appends to one file must not interleave). A recorded
    segment that cannot be stat-ed back is skipped from [lake_bytes]
    and counted in the [lake.stat_errors] metric. *)

val mine_lake :
  ?config:Daikon.Config.t -> ?provenance:bool -> ?jobs:int ->
  ?cache_dir:string -> string -> mining
(** Mine a lake directory out-of-core: fold every segment (in sorted
    filename order — deterministic) through a single engine, one block
    in memory at a time. The result is bit-identical to mining the same
    workload sequence live with [jobs = 1]; [figure3] carries one row
    per segment file and [trace_bytes] is the real on-disk size.

    [jobs] (default 1) shards the replay: the lake is cut into
    byte-balanced block spans ({!Trace.Segment.shard_spans}), each span
    folds into its own engine on a domain pool with scratch decode and
    block read-ahead, and the span engines merge back in span order —
    an exact join, so the result (rows, invariants, and the canonical
    SCIFSNAP engine bytes) is byte-identical for every [jobs >= 1]. A
    provenance replay always runs sequentially ([jobs] is ignored): the
    death ring is an eviction-lossy trace whose order is part of its
    meaning.

    [cache_dir] enables a lake-level warm cache: the key digests the
    codec version, the config fingerprint and every segment's per-block
    MD5 digests (read from the frame headers without decoding payloads),
    so appending a block or touching any segment re-mines. A warm hit
    restores the full result from [lake-<key>.summary] and adopts the
    engine persisted in [lake-<key>.snap] — bit-identical to the cold
    fold, including the engine snapshot bytes. A provenance run bypasses
    the lake cache (summaries store no provenance).
    @raise Invalid_argument if [dir] holds no segments.
    @raise Trace.Segment.Corrupt_segment on a torn or damaged segment. *)

(** {1 Sessions: incremental mining (the substrate of [scifinder serve])}

    A session owns one {!Daikon.Engine.t} plus the Figure 3 diff state
    and remembers every source it absorbed, so workloads can be mined
    incrementally, imported invariants checked against the accumulated
    corpus, and the engine snapshotted at any point. The batch entry
    points above are thin wrappers over a fresh session. *)

module Session : sig
  type t

  val create :
    ?config:Daikon.Config.t ->
    ?jobs:int ->
    ?provenance:bool ->
    ?cache_dir:string ->
    unit -> t
  (** A fresh session. [jobs] (default 1) and [cache_dir] follow the
      {!mine} rules: [jobs <= 1] with no cache streams every workload
      sequentially through the session engine — the paper's setup, and
      the byte-identity reference — while anything else mines
      per-workload shards (hitting the shard cache) and merges them in
      submission order. [jobs] also shards {!mine_lake} replays across
      the same pool (see {!val-mine_lake}). *)

  type outcome = {
    o_rows : figure3_row list;  (** [[]] when the caller skipped the diff *)
    o_records : int;            (** records this call added *)
  }

  val mine : t -> ?label:string -> ?row:bool -> Workloads.Rt.t list -> outcome
  (** Absorb the workloads into the session engine. [row] (default true)
      snapshots one {!figure3_row} diffed against the previous
      snapshotted call; [row:false] skips invariant extraction entirely
      (cheap absorption) and leaves the diff baseline untouched. *)

  val mine_groups : t -> labels:string list -> Workloads.Rt.t list list ->
    figure3_row list
  (** The cumulative-corpus form of {!mine}: absorb each group and
      snapshot a row after it, exactly as the batch {!val-mine} does. *)

  val mine_lake : t -> string -> mining
  (** Fold a lake directory into the session (see {!val-mine_lake}).
      On a fresh session with a [cache_dir], a warm hit adopts the
      cached engine whole; a cold fold on a fresh session populates the
      cache. With [jobs > 1] (and no provenance) the cold fold runs the
      sharded parallel replay and merges the span engines into the
      session engine — byte-identical to the sequential fold, on fresh
      and non-fresh sessions alike, and the cache key ignores [jobs]
      entirely (a lake mined at any [jobs] warms every other).
      [record_count]/[trace_bytes] in the result count this call only;
      [invariants] is the full session set afterwards. *)

  type check_status = Supported | Violated | Vacuous

  val check_status_name : check_status -> string
  (** ["supported"] / ["violated"] / ["vacuous"]. *)

  val check : t -> Invariant.Expr.t list -> (Invariant.Expr.t * check_status) list
  (** Validate imported invariants against everything this session has
      absorbed, re-streaming its workloads and re-folding its lake
      segments in one pass. [Vacuous]: the invariant's program point
      never appeared in the corpus. *)

  val invariants : t -> Invariant.Expr.t list
  val record_count : t -> int
  val workloads : t -> Workloads.Rt.t list
  (** Absorbed workloads, oldest first (lake sources not included). *)

  val source_count : t -> int
  (** Mined sources (workloads + lake directories) so far. *)

  val encode : t -> string
  (** The engine's canonical snapshot bytes ({!Daikon.Engine.encode}) —
      equal sessions produce equal bytes. *)

  val engine_digest : t -> string
  (** MD5 hex of {!encode}: the serve-vs-batch identity fingerprint. *)

  val save : t -> string -> unit
  (** Persist the engine snapshot atomically ({!Daikon.Engine.save}). *)
end

(** {1 §3.2 optimisation (Table 2)} *)

type optimization = {
  result : Invopt.Pipeline.result;
  opt_seconds : float;
}

val optimize : Invariant.Expr.t list -> optimization

(** {1 Phase 3: identification (Table 3)} *)

type identification = {
  summary : Sci.Identify.summary;
  ident_seconds : float;
}

val identify :
  invariants:Invariant.Expr.t list -> Bugs.Registry.t list -> identification

(** {1 Phase 4: inference (§3.4, §5.3; Tables 4-5, Figure 4)} *)

type inference = {
  space : Invariant.Feature.space;
  model : Ml.Logreg.model;
  chosen_lambda : float;        (** lambda.1se-style choice from 3-fold CV *)
  cv_accuracy : float;
  test_accuracy : float;        (** on the held-out 30 % (paper: 90 %) *)
  labeled_sci : int;
  labeled_non_sci : int;
  selected_features : (string * float) list;
      (** Table 4: negative weights are SCI-associated *)
  recommended : Invariant.Expr.t list;
      (** unlabeled invariants the model flags as security critical *)
  inferred_fp : Invariant.Expr.t list;
      (** rejected by the expert-validation oracle *)
  surviving : Invariant.Expr.t list;
  property_count : int;         (** Table 5's shape-class count *)
  pca_points : (float array * int) list;
      (** Figure 4: (PC1/PC2 projection, 1 = security critical) *)
  pca_separation : float;
  infer_seconds : float;
}

val infer :
  ?seed:int -> ?alpha:float ->
  all_invariants:Invariant.Expr.t list ->
  Sci.Identify.summary -> inference
(** [alpha] defaults to the paper's 0.5; class balance, the 70/30 split
    and CV folds all derive from [seed]. *)

(** {1 The mutant-at-scale campaign (§5.5 taxonomy, LASHED-style scale)} *)

type mutant_outcome = {
  mutant : Bugs.Mutant.t;
  trigger : string;  (** the detecting trigger, or the last one tried *)
  detected : bool;
  latency : int;     (** first-firing record index; [-1] when undetected *)
  assertion : string option;
      (** the battery name of the first-firing assertion — the evidence
          trail [scifinder campaign --evidence] prints *)
}

type campaign_class = {
  class_name : string;          (** "CF" .. "RU" *)
  class_total : int;
  class_detected : int;
  class_mean_latency : float;   (** over detected mutants; [nan] if none *)
  class_fp_rate : float;
      (** fraction of the class's primary triggers whose clean run already
          fires the battery *)
}

type campaign = {
  camp_seed : int;
  mutant_total : int;
  detected_total : int;
  trigger_count : int;
  fp_trigger_count : int;
  outcomes : mutant_outcome list;
  classes : campaign_class list;
  fingerprint : string;
      (** digest of the outcome list: equal fingerprints across runs is
          the determinism gate *)
  camp_seconds : float;
}

val campaign :
  ?seed:int -> ?mutants:int -> ?triggers:int -> ?tries:int ->
  sci:Invariant.Expr.t list -> unit -> campaign
(** Compile the SCI battery once, capture a pool of [triggers]
    fuzz-generated clean traces and their fired-assertion masks once,
    then give each of [mutants] generated faults up to [tries] triggers
    to fire an assertion outside the trigger's clean-run set (the §5.6
    discounting discipline). Deterministic per [seed]. *)
