(** Evaluation drivers for §5.4 (Tables 6/7), §5.6 (unknown-bug detection
    and the random-split repeat) and Table 9 (hardware overhead). *)

val property_coverage :
  Sci.Identify.summary -> Pipeline.inference -> Properties.Catalog.coverage list

type holdout_report = {
  bug : Bugs.Registry.t;
  by_identified : bool;
  by_inferred : bool;
  detected : bool;
}

val battery_detects : Assertions.Ovl.t list -> Bugs.Registry.t -> bool
(** Fires on the buggy run of the bug's trigger while staying silent on
    the clean run of the same trigger (a battery that cries wolf detects
    nothing). Interpretive reference path. *)

val compiled_detects : Assertions.Compile.t -> Bugs.Registry.t -> bool
(** The same verdict through the compiled monitor: the clean run's
    fired-assertion mask discounts, then the buggy run short-circuits on
    the first surviving firing. Must agree with {!battery_detects} on
    the same battery (pinned by the mutbench gate). *)

val holdout :
  identified_sci:Invariant.Expr.t list ->
  inferred_sci:Invariant.Expr.t list ->
  Bugs.Registry.t list -> holdout_report list
(** §5.6: each held-out bug against the identification-derived and the
    inference-derived assertion batteries. *)

type split_result = {
  training_ids : string list;
  test_ids : string list;
  reports : holdout_report list;
  detected_count : int;
}

val random_split :
  ?seed:int -> invariants:Invariant.Expr.t list -> unit -> split_result
(** §5.6's selection-bias check: 14 of the 28 ISA-visible bugs drawn for
    identification + inference, the other 14 tested. *)

type overhead_report = {
  initial_assertions : int;  (** one per identified SCI shape class *)
  initial : Assertions.Cost.overhead;
  final_assertions : int;    (** identified + inferred classes *)
  final : Assertions.Cost.overhead;
}

val hardware_overhead :
  identified_sci:Invariant.Expr.t list ->
  inferred_sci:Invariant.Expr.t list -> overhead_report
(** Table 9. *)
