(* Invariant checking over traces: the core of SCI identification. The
   invariant set is indexed by program point so each record is only
   evaluated against the invariants of its own instruction. *)

module Expr = Invariant.Expr

(* Each entry carries its canonical key, computed once when the index is
   built: [violations] used to recompute [Expr.canonical] (a Printf-heavy
   string build) for every (record, invariant) evaluation on the hot
   path. *)
type entry = { inv : Expr.t; key : string }

type index = {
  by_point : (string, entry array) Hashtbl.t;
  total : int;
}

let index invariants =
  let tmp = Hashtbl.create 97 in
  List.iter
    (fun (inv : Expr.t) ->
       let existing = Option.value ~default:[] (Hashtbl.find_opt tmp inv.Expr.point) in
       Hashtbl.replace tmp inv.Expr.point
         ({ inv; key = Expr.canonical inv } :: existing))
    invariants;
  let by_point = Hashtbl.create 97 in
  Hashtbl.iter
    (fun point entries -> Hashtbl.replace by_point point (Array.of_list entries))
    tmp;
  { by_point; total = List.length invariants }

(* Aggregate evaluation telemetry, updated once per [violations] call
   (per bug-trigger pass), never per record. *)
let c_records = Obs.Metrics.counter "checker.records"
let c_violations = Obs.Metrics.counter "checker.violations"
let h_eval_ns = Obs.Metrics.histogram ~unit:"ns" "checker.eval_ns"

(* All distinct invariants violated anywhere in [records]. *)
let violations idx records =
  let t0 = Obs.Clock.now_ns () in
  let violated = Hashtbl.create 64 in
  let nrecords = ref 0 in
  List.iter
    (fun (record : Trace.Record.t) ->
       incr nrecords;
       match Hashtbl.find_opt idx.by_point record.Trace.Record.point with
       | None -> ()
       | Some entries ->
         Array.iter
           (fun e ->
              (* the point matched at dispatch, so skip the guard *)
              if not (Hashtbl.mem violated e.key)
              && Expr.violated_here e.inv record then
                Hashtbl.replace violated e.key e.inv)
           entries)
    records;
  let result =
    Hashtbl.fold (fun _ inv acc -> inv :: acc) violated []
    |> List.sort Expr.compare
  in
  Obs.Metrics.add c_records !nrecords;
  Obs.Metrics.add c_violations (List.length result);
  Obs.Metrics.observe h_eval_ns (Int64.to_int (Obs.Clock.ns_since t0));
  result

(* First record index at which [inv] is violated, for diagnostics. *)
let first_violation inv records =
  let rec go i = function
    | [] -> None
    | r :: rest -> if Expr.violated inv r then Some i else go (i + 1) rest
  in
  go 0 records
