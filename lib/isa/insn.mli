(** The OR1k ORBIS32 basic instruction set.

    This is the instruction population the paper evaluates on: the OR1200
    implements the basic set (no floating point or custom extensions) and
    the trace corpus must cover all of it (§3.1.1). *)

type reg = int
(** A register index, [0 .. 31]. r0 is hardwired to zero; r9 is the link
    register. *)

type alu_op =
  | Add | Addc | Sub | And | Or | Xor
  | Mul | Mulu | Div | Divu
  | Sll | Srl | Sra | Ror

type alui_op = Addi | Addic | Andi | Ori | Xori | Muli

type shifti_op = Slli | Srli | Srai | Rori

type ext_op = Extbs | Extbz | Exths | Exthz | Extws | Extwz

type sf_op =
  | Sfeq | Sfne
  | Sfgtu | Sfgeu | Sfltu | Sfleu
  | Sfgts | Sfges | Sflts | Sfles

type load_op = Lwz | Lws | Lbz | Lbs | Lhz | Lhs

type store_op = Sw | Sb | Sh

type mac_op = Mac | Msb

type t =
  | Alu of alu_op * reg * reg * reg          (** rD <- rA op rB *)
  | Alui of alui_op * reg * reg * int        (** rD <- rA op imm16 *)
  | Shifti of shifti_op * reg * reg * int    (** rD <- rA shift l6 *)
  | Ext of ext_op * reg * reg                (** rD <- extend rA *)
  | Setflag of sf_op * reg * reg             (** SR\[F\] <- rA cmp rB *)
  | Setflagi of sf_op * reg * int            (** SR\[F\] <- rA cmp imm16 *)
  | Load of load_op * reg * reg * int        (** rD <- mem\[rA + simm16\] *)
  | Store of store_op * int * reg * reg      (** mem\[rA + simm16\] <- rB *)
  | Jump of int                              (** l.j disp26 *)
  | Jump_link of int                         (** l.jal disp26 *)
  | Jump_reg of reg                          (** l.jr rB *)
  | Jump_link_reg of reg                     (** l.jalr rB *)
  | Branch_flag of int                       (** l.bf disp26 *)
  | Branch_noflag of int                     (** l.bnf disp26 *)
  | Movhi of reg * int                       (** rD <- imm16 << 16 *)
  | Mfspr of reg * reg * int                 (** rD <- spr\[rA | imm16\] *)
  | Mtspr of reg * reg * int                 (** spr\[rA | imm16\] <- rB *)
  | Macc of mac_op * reg * reg               (** MACHI:MACLO +/-= rA * rB *)
  | Maci of reg * int                        (** MACHI:MACLO += rA * simm16 *)
  | Macrc of reg                             (** rD <- MACLO; MAC <- 0 *)
  | Sys of int                               (** system call *)
  | Trap of int                              (** trap *)
  | Rfe                                      (** return from exception *)
  | Nop of int                               (** l.nop 1 exits simulation *)

val alu_op_name : alu_op -> string
val alui_op_name : alui_op -> string
val shifti_op_name : shifti_op -> string
val ext_op_name : ext_op -> string
val sf_op_name : sf_op -> string
val load_op_name : load_op -> string
val store_op_name : store_op -> string
val mac_op_name : mac_op -> string

val mnemonic : t -> string
(** The program-point name: the paper's invariants have the form
    [risingEdge(l.xxx) -> EXPR], keyed by this string ("l.add", ...). *)

val form : t -> string
(** The instruction-format family ("alu", "alui", "load", "branch",
    ...): the opcode-form axis of the fuzzer's coverage map. *)

val has_delay_slot : t -> bool
(** Is this a control-flow instruction with a branch delay slot? *)

val dest_reg : t -> reg option
(** The GPR written by the instruction, if any; l.jal/l.jalr write r9. *)

val src_regs : t -> reg option * reg option
(** The (rA, rB) register operands read, if any. *)

val immediate : t -> int option
(** The immediate field, sign-interpreted where the semantics
    sign-extend it (so [Alui (Addi, _, _, 0xFFFF)] reports [-1]). *)

val pp : Format.formatter -> t -> unit
(** Assembly syntax: ["l.add r3,r1,r2"]. *)

val to_string : t -> string

val all_mnemonics : string list
(** Every mnemonic of the implemented set; used by the corpus-coverage
    checks (the traces must exercise all of them, §3.1.1). *)
