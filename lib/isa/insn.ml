(* OR1k ORBIS32 basic instruction set.

   This is the instruction population the paper's evaluation targets: the
   OR1200 implements the basic set (no floating point or custom extensions),
   and the paper's execution traces "cover all 56 instructions" including
   system calls, bit rotations, word extensions, and exceptions (§3.1.1,
   §5.1). We implement that set plus the immediate set-flag forms. *)

type reg = int (* 0 .. 31 *)

type alu_op =
  | Add | Addc | Sub | And | Or | Xor
  | Mul | Mulu | Div | Divu
  | Sll | Srl | Sra | Ror

type alui_op = Addi | Addic | Andi | Ori | Xori | Muli

type shifti_op = Slli | Srli | Srai | Rori

type ext_op = Extbs | Extbz | Exths | Exthz | Extws | Extwz

type sf_op =
  | Sfeq | Sfne
  | Sfgtu | Sfgeu | Sfltu | Sfleu
  | Sfgts | Sfges | Sflts | Sfles

type load_op = Lwz | Lws | Lbz | Lbs | Lhz | Lhs

type store_op = Sw | Sb | Sh

type mac_op = Mac | Msb

type t =
  | Alu of alu_op * reg * reg * reg          (* rD <- rA op rB *)
  | Alui of alui_op * reg * reg * int        (* rD <- rA op imm16 *)
  | Shifti of shifti_op * reg * reg * int    (* rD <- rA shift l6 *)
  | Ext of ext_op * reg * reg                (* rD <- extend rA *)
  | Setflag of sf_op * reg * reg             (* SR[F] <- rA cmp rB *)
  | Setflagi of sf_op * reg * int            (* SR[F] <- rA cmp imm16 *)
  | Load of load_op * reg * reg * int        (* rD <- mem[rA + simm16] *)
  | Store of store_op * int * reg * reg      (* mem[rA + simm16] <- rB *)
  | Jump of int                              (* l.j disp26 *)
  | Jump_link of int                         (* l.jal disp26 *)
  | Jump_reg of reg                          (* l.jr rB *)
  | Jump_link_reg of reg                     (* l.jalr rB *)
  | Branch_flag of int                       (* l.bf disp26 *)
  | Branch_noflag of int                     (* l.bnf disp26 *)
  | Movhi of reg * int                       (* rD <- imm16 << 16 *)
  | Mfspr of reg * reg * int                 (* rD <- spr[rA | imm16] *)
  | Mtspr of reg * reg * int                 (* spr[rA | imm16] <- rB *)
  | Macc of mac_op * reg * reg                (* MACHI:MACLO +/-= rA * rB *)
  | Maci of reg * int                        (* MACHI:MACLO += rA * simm16 *)
  | Macrc of reg                             (* rD <- MACLO; MAC <- 0 *)
  | Sys of int                               (* system call *)
  | Trap of int                              (* trap *)
  | Rfe                                      (* return from exception *)
  | Nop of int

let alu_op_name = function
  | Add -> "add" | Addc -> "addc" | Sub -> "sub" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Mul -> "mul" | Mulu -> "mulu"
  | Div -> "div" | Divu -> "divu" | Sll -> "sll" | Srl -> "srl"
  | Sra -> "sra" | Ror -> "ror"

let alui_op_name = function
  | Addi -> "addi" | Addic -> "addic" | Andi -> "andi"
  | Ori -> "ori" | Xori -> "xori" | Muli -> "muli"

let shifti_op_name = function
  | Slli -> "slli" | Srli -> "srli" | Srai -> "srai" | Rori -> "rori"

let ext_op_name = function
  | Extbs -> "extbs" | Extbz -> "extbz" | Exths -> "exths"
  | Exthz -> "exthz" | Extws -> "extws" | Extwz -> "extwz"

let sf_op_name = function
  | Sfeq -> "sfeq" | Sfne -> "sfne"
  | Sfgtu -> "sfgtu" | Sfgeu -> "sfgeu" | Sfltu -> "sfltu" | Sfleu -> "sfleu"
  | Sfgts -> "sfgts" | Sfges -> "sfges" | Sflts -> "sflts" | Sfles -> "sfles"

let load_op_name = function
  | Lwz -> "lwz" | Lws -> "lws" | Lbz -> "lbz"
  | Lbs -> "lbs" | Lhz -> "lhz" | Lhs -> "lhs"

let store_op_name = function Sw -> "sw" | Sb -> "sb" | Sh -> "sh"

let mac_op_name = function Mac -> "mac" | Msb -> "msb"

(* The program-point name used throughout the tool chain: the paper's
   invariants are of the form risingEdge(l.xxx) -> EXPR, keyed by mnemonic.

   Every branch returns a literal rather than concatenating "l." with the
   op name: the tracer calls this once per retired instruction, and the
   mining engine's last-point cache compares the result with
   [String.equal], whose physical-equality fast path only fires when the
   same point yields the same (shared, pre-allocated) string. *)
let mnemonic = function
  | Alu (op, _, _, _) ->
    (match op with
     | Add -> "l.add" | Addc -> "l.addc" | Sub -> "l.sub" | And -> "l.and"
     | Or -> "l.or" | Xor -> "l.xor" | Mul -> "l.mul" | Mulu -> "l.mulu"
     | Div -> "l.div" | Divu -> "l.divu" | Sll -> "l.sll" | Srl -> "l.srl"
     | Sra -> "l.sra" | Ror -> "l.ror")
  | Alui (op, _, _, _) ->
    (match op with
     | Addi -> "l.addi" | Addic -> "l.addic" | Andi -> "l.andi"
     | Ori -> "l.ori" | Xori -> "l.xori" | Muli -> "l.muli")
  | Shifti (op, _, _, _) ->
    (match op with
     | Slli -> "l.slli" | Srli -> "l.srli" | Srai -> "l.srai"
     | Rori -> "l.rori")
  | Ext (op, _, _) ->
    (match op with
     | Extbs -> "l.extbs" | Extbz -> "l.extbz" | Exths -> "l.exths"
     | Exthz -> "l.exthz" | Extws -> "l.extws" | Extwz -> "l.extwz")
  | Setflag (op, _, _) ->
    (match op with
     | Sfeq -> "l.sfeq" | Sfne -> "l.sfne"
     | Sfgtu -> "l.sfgtu" | Sfgeu -> "l.sfgeu"
     | Sfltu -> "l.sfltu" | Sfleu -> "l.sfleu"
     | Sfgts -> "l.sfgts" | Sfges -> "l.sfges"
     | Sflts -> "l.sflts" | Sfles -> "l.sfles")
  | Setflagi (op, _, _) ->
    (match op with
     | Sfeq -> "l.sfeqi" | Sfne -> "l.sfnei"
     | Sfgtu -> "l.sfgtui" | Sfgeu -> "l.sfgeui"
     | Sfltu -> "l.sfltui" | Sfleu -> "l.sfleui"
     | Sfgts -> "l.sfgtsi" | Sfges -> "l.sfgesi"
     | Sflts -> "l.sfltsi" | Sfles -> "l.sflesi")
  | Load (op, _, _, _) ->
    (match op with
     | Lwz -> "l.lwz" | Lws -> "l.lws" | Lbz -> "l.lbz"
     | Lbs -> "l.lbs" | Lhz -> "l.lhz" | Lhs -> "l.lhs")
  | Store (op, _, _, _) ->
    (match op with Sw -> "l.sw" | Sb -> "l.sb" | Sh -> "l.sh")
  | Jump _ -> "l.j"
  | Jump_link _ -> "l.jal"
  | Jump_reg _ -> "l.jr"
  | Jump_link_reg _ -> "l.jalr"
  | Branch_flag _ -> "l.bf"
  | Branch_noflag _ -> "l.bnf"
  | Movhi _ -> "l.movhi"
  | Mfspr _ -> "l.mfspr"
  | Mtspr _ -> "l.mtspr"
  | Macc (op, _, _) ->
    (match op with Mac -> "l.mac" | Msb -> "l.msb")
  | Maci _ -> "l.maci"
  | Macrc _ -> "l.macrc"
  | Sys _ -> "l.sys"
  | Trap _ -> "l.trap"
  | Rfe -> "l.rfe"
  | Nop _ -> "l.nop"

(* The instruction-format family of a mnemonic: the "opcode form" axis
   of the fuzzer's coverage map (register-ALU and immediate-ALU forms
   count separately because they stress different decoder paths). *)
let form = function
  | Alu _ -> "alu"
  | Alui _ -> "alui"
  | Shifti _ -> "shifti"
  | Ext _ -> "ext"
  | Setflag _ -> "setflag"
  | Setflagi _ -> "setflagi"
  | Load _ -> "load"
  | Store _ -> "store"
  | Jump _ | Jump_link _ | Branch_flag _ | Branch_noflag _ -> "branch"
  | Jump_reg _ | Jump_link_reg _ -> "branch_reg"
  | Movhi _ -> "movhi"
  | Mfspr _ | Mtspr _ -> "spr"
  | Macc _ | Maci _ | Macrc _ -> "mac"
  | Sys _ | Trap _ -> "system"
  | Rfe -> "rfe"
  | Nop _ -> "nop"

(* Is this a control-flow instruction with a branch delay slot? *)
let has_delay_slot = function
  | Jump _ | Jump_link _ | Jump_reg _ | Jump_link_reg _
  | Branch_flag _ | Branch_noflag _ -> true
  | Alu _ | Alui _ | Shifti _ | Ext _ | Setflag _ | Setflagi _
  | Load _ | Store _ | Movhi _ | Mfspr _ | Mtspr _
  | Macc _ | Maci _ | Macrc _ | Sys _ | Trap _ | Rfe | Nop _ -> false

(* Destination register written by the instruction, if any. *)
let dest_reg = function
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Shifti (_, rd, _, _)
  | Ext (_, rd, _) | Load (_, rd, _, _) | Movhi (rd, _)
  | Mfspr (rd, _, _) | Macrc rd -> Some rd
  | Jump_link _ | Jump_link_reg _ -> Some 9 (* link register r9 *)
  | Setflag _ | Setflagi _ | Store _ | Jump _ | Jump_reg _
  | Branch_flag _ | Branch_noflag _ | Mtspr _ | Macc _ | Maci _
  | Sys _ | Trap _ | Rfe | Nop _ -> None

(* Source registers read by the instruction, as (rA, rB) options. *)
let src_regs = function
  | Alu (_, _, ra, rb) | Setflag (_, ra, rb) | Mtspr (ra, rb, _)
  | Macc (_, ra, rb) -> (Some ra, Some rb)
  | Alui (_, _, ra, _) | Shifti (_, _, ra, _) | Ext (_, _, ra)
  | Setflagi (_, ra, _) | Load (_, _, ra, _) | Mfspr (_, ra, _)
  | Maci (ra, _) -> (Some ra, None)
  | Store (_, _, ra, rb) -> (Some ra, Some rb)
  | Jump_reg rb | Jump_link_reg rb -> (None, Some rb)
  | Jump _ | Jump_link _ | Branch_flag _ | Branch_noflag _ | Movhi _
  | Macrc _ | Sys _ | Trap _ | Rfe | Nop _ -> (None, None)

(* Immediate field of the instruction, if any (sign-interpreted where the
   semantics sign-extend it). *)
let immediate = function
  | Alui (op, _, _, imm) ->
    (match op with
     | Addi | Addic | Muli -> Some (Util.U32.signed (Util.U32.sext16 imm))
     | Andi | Ori | Xori -> Some (imm land 0xFFFF))
  | Shifti (_, _, _, l6) -> Some (l6 land 0x3F)
  | Setflagi (_, _, imm) -> Some (Util.U32.signed (Util.U32.sext16 imm))
  | Load (_, _, _, off) | Store (_, off, _, _) ->
    Some (Util.U32.signed (Util.U32.sext16 off))
  | Jump d | Jump_link d | Branch_flag d | Branch_noflag d ->
    Some (Util.U32.signed (Util.U32.sext ~bits:26 d))
  | Movhi (_, imm) | Mfspr (_, _, imm) | Mtspr (_, _, imm)
  | Sys imm | Trap imm | Nop imm -> Some (imm land 0xFFFF)
  | Maci (_, imm) -> Some (Util.U32.signed (Util.U32.sext16 imm))
  | Alu _ | Ext _ | Setflag _ | Jump_reg _ | Jump_link_reg _
  | Macc _ | Macrc _ | Rfe -> None

let pp fmt t =
  let f = Format.fprintf in
  match t with
  | Alu (op, rd, ra, rb) -> f fmt "l.%s r%d,r%d,r%d" (alu_op_name op) rd ra rb
  | Alui (op, rd, ra, i) -> f fmt "l.%s r%d,r%d,%d" (alui_op_name op) rd ra i
  | Shifti (op, rd, ra, i) -> f fmt "l.%s r%d,r%d,%d" (shifti_op_name op) rd ra i
  | Ext (op, rd, ra) -> f fmt "l.%s r%d,r%d" (ext_op_name op) rd ra
  | Setflag (op, ra, rb) -> f fmt "l.%s r%d,r%d" (sf_op_name op) ra rb
  | Setflagi (op, ra, i) -> f fmt "l.%si r%d,%d" (sf_op_name op) ra i
  | Load (op, rd, ra, off) -> f fmt "l.%s r%d,%d(r%d)" (load_op_name op) rd off ra
  | Store (op, off, ra, rb) -> f fmt "l.%s %d(r%d),r%d" (store_op_name op) off ra rb
  | Jump d -> f fmt "l.j %d" d
  | Jump_link d -> f fmt "l.jal %d" d
  | Jump_reg rb -> f fmt "l.jr r%d" rb
  | Jump_link_reg rb -> f fmt "l.jalr r%d" rb
  | Branch_flag d -> f fmt "l.bf %d" d
  | Branch_noflag d -> f fmt "l.bnf %d" d
  | Movhi (rd, i) -> f fmt "l.movhi r%d,0x%04X" rd i
  | Mfspr (rd, ra, i) -> f fmt "l.mfspr r%d,r%d,0x%04X" rd ra i
  | Mtspr (ra, rb, i) -> f fmt "l.mtspr r%d,r%d,0x%04X" ra rb i
  | Macc (op, ra, rb) -> f fmt "l.%s r%d,r%d" (mac_op_name op) ra rb
  | Maci (ra, i) -> f fmt "l.maci r%d,%d" ra i
  | Macrc rd -> f fmt "l.macrc r%d" rd
  | Sys k -> f fmt "l.sys %d" k
  | Trap k -> f fmt "l.trap %d" k
  | Rfe -> f fmt "l.rfe"
  | Nop k -> f fmt "l.nop %d" k

let to_string t = Format.asprintf "%a" pp t

(* Every mnemonic of the implemented instruction set, used by coverage
   checks (the trace corpus must exercise all of them, §3.1.1). *)
let all_mnemonics =
  let alu = List.map (fun op -> "l." ^ alu_op_name op)
      [ Add; Addc; Sub; And; Or; Xor; Mul; Mulu; Div; Divu; Sll; Srl; Sra; Ror ]
  and alui = List.map (fun op -> "l." ^ alui_op_name op)
      [ Addi; Addic; Andi; Ori; Xori; Muli ]
  and shifti = List.map (fun op -> "l." ^ shifti_op_name op)
      [ Slli; Srli; Srai; Rori ]
  and ext = List.map (fun op -> "l." ^ ext_op_name op)
      [ Extbs; Extbz; Exths; Exthz; Extws; Extwz ]
  and sf =
    List.concat_map (fun op -> [ "l." ^ sf_op_name op; "l." ^ sf_op_name op ^ "i" ])
      [ Sfeq; Sfne; Sfgtu; Sfgeu; Sfltu; Sfleu; Sfgts; Sfges; Sflts; Sfles ]
  and load = List.map (fun op -> "l." ^ load_op_name op) [ Lwz; Lws; Lbz; Lbs; Lhz; Lhs ]
  and store = List.map (fun op -> "l." ^ store_op_name op) [ Sw; Sb; Sh ]
  and rest =
    [ "l.j"; "l.jal"; "l.jr"; "l.jalr"; "l.bf"; "l.bnf"; "l.movhi";
      "l.mfspr"; "l.mtspr"; "l.mac"; "l.msb"; "l.maci"; "l.macrc";
      "l.sys"; "l.trap"; "l.rfe"; "l.nop" ]
  in
  alu @ alui @ shifti @ ext @ sf @ load @ store @ rest
