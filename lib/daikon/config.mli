(** Tuning knobs of the invariant detector. The paper configures Daikon
    "with a confidence limit of 0.99" (§5.1); each template's confidence
    requirement translates into a minimum number of supporting samples. *)

type t = {
  min_samples : int;        (** floor for any invariant of a point *)
  order_min : int;          (** <, <=, >, >= *)
  ne_min : int;             (** <> holds by chance easily: highest bar *)
  oneof_min : int;          (** In {...} value sets *)
  max_oneof : int;          (** maximum cardinality of a value set *)
  mod_min : int;            (** mod-alignment and bound invariants *)
  scale_nonzero_min : int;  (** non-zero samples behind Y = X * k *)
  max_diff : int;           (** largest |c| in "Y - X = c" *)
}

val default : t
(** The conservative, paper-faithful setting. *)

val canonical_string : t -> string
(** Every knob in a fixed order — the preimage of {!fingerprint}. *)

val fingerprint : t -> string
(** Hex digest of {!canonical_string}. Part of every snapshot cache key:
    two configurations fingerprint equal iff they are equal. *)

val relaxed : t
(** Permissive thresholds for unit tests over tiny hand-built traces. *)
