(* Tuning knobs of the invariant detector.

   The paper configures Daikon "with a confidence limit of 0.99, reducing
   the risk of generating false-positive invariants that hold by chance"
   (§5.1). For each template the confidence requirement translates into a
   minimum number of supporting samples before the invariant is reported;
   the defaults below correspond to the conservative setting. *)

type t = {
  (* Minimum observations of a program point before any invariant over it
     is justified. *)
  min_samples : int;
  (* Minimum samples for an ordering invariant (<, <=, >, >=). *)
  order_min : int;
  (* Minimum samples for a disequality: <> holds by chance very easily, so
     its confidence bar is the highest. *)
  ne_min : int;
  (* Minimum samples for OneOf (set inclusion) invariants. *)
  oneof_min : int;
  (* Maximum cardinality of an In {...} set. *)
  max_oneof : int;
  (* Minimum samples for mod-alignment and bound invariants. *)
  mod_min : int;
  (* Minimum non-zero samples supporting a scaling invariant Y = X * k. *)
  scale_nonzero_min : int;
  (* Largest |constant| admitted in "Y - X = imm" difference invariants. *)
  max_diff : int;
}

let default = {
  min_samples = 5;
  order_min = 8;
  ne_min = 20;
  oneof_min = 8;
  max_oneof = 3;
  mod_min = 8;
  scale_nonzero_min = 3;
  max_diff = 65536;
}

(* Canonical rendering of every knob, digested into the cache key of the
   snapshot layer: any change to any threshold must invalidate every
   cached shard, because candidate state (e.g. the distinct-value cap)
   depends on it. Field order is fixed; extending [t] extends the
   rendering and thereby the fingerprint. *)
let canonical_string c =
  Printf.sprintf
    "min_samples=%d;order_min=%d;ne_min=%d;oneof_min=%d;max_oneof=%d;\
     mod_min=%d;scale_nonzero_min=%d;max_diff=%d"
    c.min_samples c.order_min c.ne_min c.oneof_min c.max_oneof
    c.mod_min c.scale_nonzero_min c.max_diff

let fingerprint c = Digest.to_hex (Digest.string (canonical_string c))

(* A permissive configuration used in tests to exercise templates with
   tiny hand-built traces. *)
let relaxed = {
  min_samples = 2;
  order_min = 2;
  ne_min = 4;
  oneof_min = 2;
  max_oneof = 3;
  mod_min = 2;
  scale_nonzero_min = 1;
  max_diff = 65536;
}
