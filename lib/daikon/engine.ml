(* The dynamic invariant detector (the paper's modified Daikon, §3.1.2).

   The engine is incremental: records stream in via [observe]; candidate
   invariants are tracked per program point and falsified on the fly, in
   the style of Daikon's inference engine. [invariants] extracts the
   currently justified set at any time, which is how the Figure 3
   program-by-program convergence series is produced. *)

module Var = Trace.Var
module Expr = Invariant.Expr

(* Template-policy bits controlling which invariants a variable pair may
   yield, by comparability kind (Daikon's comparability analysis). *)
let p_order = 1
let p_eq = 2
let p_ne = 4
let p_diff = 8
let p_scale = 16

let pair_policy ki kj =
  let open Var in
  match ki, kj with
  | Data, Data -> p_order lor p_eq lor p_ne lor p_diff lor p_scale
  | Addr, Addr -> p_order lor p_eq lor p_diff
  | Addr, Data | Data, Addr -> p_eq lor p_diff lor p_scale
  | Flag, Flag -> p_eq lor p_ne
  | Srword, Srword -> p_eq
  | Regidx, Regidx -> p_eq lor p_order
  | Imm, Data | Data, Imm -> p_eq lor p_diff lor p_scale
  | (Addr | Data | Srword | Flag | Regidx | Imm | Diff), _ -> 0

(* Per-variable value statistics. *)
type vstat = {
  mutable vmin : int;
  mutable vmax : int;
  (* Distinct values, sorted ascending in values.(0 .. ndistinct-1); the
     array's capacity is the configured max_oneof. *)
  mutable values : int array;
  mutable ndistinct : int; (* -1 once more than max_oneof distinct seen *)
  mutable mod4 : int;      (* residue, or -1 once falsified *)
  mutable mod2 : int;
}

(* Relation bits observed for a pair. *)
let r_lt = 1
let r_eq = 2
let r_gt = 4

(* Boxed view of one pair tracker — the shape the codec, merge and
   extraction work with. The hot path does not use it: a point tracks
   thousands of pairs and a record update walks all of them, so pair
   state is stored packed (struct-of-arrays, below) and this record is
   only materialised on the cold paths via [pair_view]/[pair_store]. *)
type ptracker = {
  pi : int;                 (* var id, pi < pj *)
  pj : int;
  policy : int;
  mutable rel : int;
  mutable diff : int;       (* signed (vj - vi) *)
  mutable diff_live : bool;
  mutable scale_ij : int;   (* bitmask over scale_candidates: vj = vi * k *)
  mutable scale_ji : int;   (* vi = vj * k *)
  mutable scale_nonzero : int;
}

(* Packed pair layout.

   [pmeta.(k)] holds the constant part: pi lsl 12 | pj lsl 5 | policy
   (var ids fit 7 bits, the policy 5). [pflags] holds the mutable hot
   part, one byte per pair: the three relation bits plus [f_diff]
   (= diff_live) and [f_scale] (= the scaling guard: policy allows
   scaling and at least one mask is still alive). [pdiff.(k)] and
   [pscale.(k)] (scale_nonzero lsl 12 | scale_ij lsl 6 | scale_ji) are
   read only while the corresponding flag bit is set.

   The point of the exercise: once a pair has settled — constant-diff
   falsified, scale masks dead, which happens within a handful of
   records for almost every pair — an observation touches 8 bytes of
   meta + 1 byte of flags instead of a whole boxed tracker, and the
   flags array for a point fits in L1. Mining throughput is bound by
   this loop's memory traffic (see DESIGN.md "hot path"). *)
let f_rel = 7
let f_diff = 8
let f_scale = 16

let meta_make pi pj policy = (pi lsl 12) lor (pj lsl 5) lor policy
let meta_pi m = m lsr 12
let meta_pj m = (m lsr 5) land 0x7f
let meta_policy m = m land 0x1f
let scale_pack ~nonzero ~ij ~ji = (nonzero lsl 12) lor (ij lsl 6) lor ji

type point_state = {
  pname : string;
  vars : int array;           (* applicable var ids *)
  stats : vstat option array; (* length Var.total; Some for applicable *)
  (* Dense view of [stats] aligned with [vars]: the observe loop walks
     this instead of unwrapping an option per variable per record. The
     vstat objects are shared with [stats]; mutation through either view
     is visible through both. *)
  dstats : vstat array;
  (* Packed pair trackers, canonical order fixed at birth — the order
     snapshots and merges see. *)
  npairs : int;
  pmeta : int array;
  pflags : Bytes.t;
  pdiff : int array;
  pscale : int array;
  mutable n : int;
}

(* ---- Candidate-lifecycle provenance (the flight recorder) ----

   Off by default and paid for only when on: [observe] dispatches once
   per record on [t.prov], and the disabled path is the unchanged hot
   loop below. When enabled, falsifications land in a bounded ring of
   [death] records and narrowing events update a last-witness table, so
   [scifinder mine --explain] can name the workload and record that
   killed (or last constrained) a candidate.

   The ring can evict under pressure, so two side tables are immune to
   eviction: the first death per family and the per-family death
   counts — the guarantee that at least one evidence trail per family
   always survives, whatever the capacity. *)

type death = {
  d_point : string;
  d_family : string;   (* oneof | mod | relation | diff | scale *)
  d_desc : string;     (* the candidate, e.g. "diff(pre_PC, post_PC)" *)
  d_workload : string; (* killing workload ("" before set_workload) *)
  d_record : int;      (* engine-global record ordinal at death *)
  d_tick : int;        (* record ordinal within the killing workload *)
}

type witness = {
  w_workload : string;
  w_record : int;
  w_tick : int;
}

type prov = {
  cap : int;
  ring : death option array;  (* circular; None = never-written slot *)
  mutable head : int;         (* next write position *)
  mutable rlen : int;
  mutable dropped : int;      (* deaths evicted or rejected (cap = 0) *)
  first_death : (string, death) Hashtbl.t;  (* family -> earliest *)
  death_counts : (string, int) Hashtbl.t;
  (* candidate key -> last narrowing observation; keys are
     "point|family|id" / "point|family|i|j" (i < j). *)
  witnesses : (string, witness) Hashtbl.t;
  births : (string, witness) Hashtbl.t;     (* point -> first record *)
  mutable cur_workload : string;
  mutable wrecords : int;     (* records seen in the current workload *)
}

let default_prov_capacity = 4096

let make_prov capacity =
  let cap = max 0 capacity in
  { cap; ring = Array.make (max 1 cap) None; head = 0; rlen = 0;
    dropped = 0; first_death = Hashtbl.create 7;
    death_counts = Hashtbl.create 7; witnesses = Hashtbl.create 997;
    births = Hashtbl.create 31; cur_workload = ""; wrecords = 0 }

let ring_push p d =
  if p.cap = 0 then p.dropped <- p.dropped + 1
  else begin
    if p.rlen = p.cap then p.dropped <- p.dropped + 1
    else p.rlen <- p.rlen + 1;
    p.ring.(p.head) <- Some d;
    p.head <- (p.head + 1) mod p.cap
  end

let ring_contents p =
  (* Oldest first. *)
  List.init p.rlen (fun i ->
      Option.get p.ring.((p.head - p.rlen + i + p.cap) mod p.cap))

(* Program points are interned: [index] maps a point name to its slot in
   the dense [tab] array (insertion order), so the per-record work never
   rebuilds or re-sorts anything. [last] caches the most recently
   observed point: traces are bursty (loops retire the same point many
   times in a row), and the common case skips even the hash lookup.
   [sorted] caches the canonical (name-sorted) view used by extraction
   and snapshots; it is invalidated only when a new point is interned. *)
type t = {
  config : Config.t;
  index : (string, int) Hashtbl.t;
  mutable tab : point_state array;
  mutable ntab : int;
  mutable last : point_state option;
  mutable sorted : point_state list option;
  mutable nrecords : int;
  mutable prov : prov option;
}

let create ?(config = Config.default) ?(provenance = false)
    ?(prov_capacity = default_prov_capacity) () =
  { config; index = Hashtbl.create 97; tab = [||]; ntab = 0;
    last = None; sorted = None; nrecords = 0;
    prov = if provenance then Some (make_prov prov_capacity) else None }

let provenance_enabled t = t.prov <> None

let set_workload t name =
  match t.prov with
  | None -> ()
  | Some p ->
    p.cur_workload <- name;
    p.wrecords <- 0

let record_count t = t.nrecords
let point_count t = t.ntab

let add_point t st =
  if t.ntab = Array.length t.tab then begin
    let tab = Array.make (max 16 (2 * t.ntab)) st in
    Array.blit t.tab 0 tab 0 t.ntab;
    t.tab <- tab
  end;
  t.tab.(t.ntab) <- st;
  Hashtbl.add t.index st.pname t.ntab;
  t.ntab <- t.ntab + 1;
  t.sorted <- None

(* Every consumer of the point table goes through this sorted view:
   interning order is insertion order, Hashtbl iteration order depends
   on the hash seed (OCAMLRUNPARAM=R), and the determinism guarantee
   ("bit-identical for every jobs >= 1") must depend on neither. The
   view is cached; only a new-point insertion invalidates it. *)
let sorted_points t =
  match t.sorted with
  | Some pts -> pts
  | None ->
    let pts = ref [] in
    for i = t.ntab - 1 downto 0 do pts := t.tab.(i) :: !pts done;
    let pts =
      List.sort (fun a b -> String.compare a.pname b.pname) !pts
    in
    t.sorted <- Some pts;
    pts

let points t = List.map (fun st -> st.pname) (sorted_points t)

(* Scale factors for Y = X * k: small word/index scalings plus the
   half-word and sign-replication factors used by l.movhi and the
   sign-extending loads. *)
let scale_candidates = [| 2; 4; 8; 0x10000; 0xFFFF; 0xFF_FFFF |]
let full_scale_mask = 0x3F

(* Cold-path accessors between the packed layout and the boxed view.
   [pair_store] recomputes the derived flag bits, so any view mutation
   written back through it leaves the hot-path invariants intact:
   f_diff = diff_live, f_scale = (policy allows scaling && a mask is
   still alive). *)
let pair_view st k : ptracker =
  let m = st.pmeta.(k) in
  let fl = Char.code (Bytes.get st.pflags k) in
  let s = st.pscale.(k) in
  { pi = meta_pi m; pj = meta_pj m; policy = meta_policy m;
    rel = fl land f_rel;
    diff = st.pdiff.(k);
    diff_live = fl land f_diff <> 0;
    scale_ij = (s lsr 6) land full_scale_mask;
    scale_ji = s land full_scale_mask;
    scale_nonzero = s lsr 12 }

let pair_store st k (p : ptracker) =
  st.pmeta.(k) <- meta_make p.pi p.pj p.policy;
  st.pdiff.(k) <- p.diff;
  st.pscale.(k) <-
    scale_pack ~nonzero:p.scale_nonzero ~ij:p.scale_ij ~ji:p.scale_ji;
  let fl =
    p.rel
    lor (if p.diff_live then f_diff else 0)
    lor (if p.policy land p_scale <> 0
         && (p.scale_ij <> 0 || p.scale_ji <> 0) then f_scale else 0)
  in
  Bytes.set st.pflags k (Char.chr fl)

let pack_point name vars stats dstats (pairs : ptracker array) n =
  let npairs = Array.length pairs in
  let st =
    { pname = name; vars; stats; dstats; npairs;
      pmeta = Array.make npairs 0;
      pflags = Bytes.make npairs '\000';
      pdiff = Array.make npairs 0;
      pscale = Array.make npairs 0;
      n }
  in
  Array.iteri (fun k p -> pair_store st k p) pairs;
  st

let new_point config name (mask : bool array) values =
  let cap = max 1 config.Config.max_oneof in
  let vars =
    Var.all_ids
    |> List.filter (fun id -> mask.(id))
    |> Array.of_list
  in
  let stats = Array.make Var.total None in
  Array.iter
    (fun id ->
       let v = values.(id) in
       let dv = Array.make cap 0 in
       dv.(0) <- v;
       stats.(id) <- Some {
         vmin = v; vmax = v;
         values = dv; ndistinct = 1;
         mod4 = (if Var.id_kind id = Var.Addr then v land 3 else -1);
         mod2 = (if Var.id_kind id = Var.Addr then v land 1 else -1);
       })
    vars;
  let pairs = ref [] in
  let nv = Array.length vars in
  for a = 0 to nv - 1 do
    for b = a + 1 to nv - 1 do
      let i = vars.(a) and j = vars.(b) in
      let policy = pair_policy (Var.id_kind i) (Var.id_kind j) in
      if policy <> 0 then
        pairs := { pi = i; pj = j; policy;
                   rel = 0; diff = 0; diff_live = false;
                   scale_ij = full_scale_mask; scale_ji = full_scale_mask;
                   scale_nonzero = 0 }
                 :: !pairs
    done
  done;
  pack_point name vars stats
    (Array.map (fun id -> Option.get stats.(id)) vars)
    (Array.of_list !pairs) 0

let update_vstat st v =
  if v < st.vmin then st.vmin <- v;
  if v > st.vmax then st.vmax <- v;
  if st.ndistinct >= 0 then begin
    (* Sorted insert into the distinct-value prefix; the set holds at most
       max_oneof elements, so a linear scan is the fast path. *)
    let n = st.ndistinct in
    let pos = ref 0 in
    while !pos < n && st.values.(!pos) < v do incr pos done;
    if !pos >= n || st.values.(!pos) <> v then begin
      if n >= Array.length st.values then begin
        st.values <- [||];
        st.ndistinct <- -1
      end else begin
        for k = n downto !pos + 1 do st.values.(k) <- st.values.(k - 1) done;
        st.values.(!pos) <- v;
        st.ndistinct <- n + 1
      end
    end
  end;
  if st.mod4 >= 0 && v land 3 <> st.mod4 then st.mod4 <- -1;
  if st.mod2 >= 0 && v land 1 <> st.mod2 then st.mod2 <- -1

(* Filter a scale mask against one observation: keep bit b iff
   x * scale_candidates.(b) = y in 32-bit arithmetic. Tail-recursive on
   purpose — this runs per surviving scale pair per record, and the
   closure-plus-ref version allocated twice per call. *)
let filter_scale mask x y =
  let rec go m bit =
    if bit >= Array.length scale_candidates then m
    else begin
      let m =
        if m land (1 lsl bit) <> 0
        && Util.U32.mul x (Array.unsafe_get scale_candidates bit) <> y
        then m land lnot (1 lsl bit)
        else m
      in
      go m (bit + 1)
    end
  in
  go mask 0

(* The full pair update on the packed layout — constant difference and
   scaling included. The hot loop in [observe] only drops in here while
   one of those candidate families is still alive ([f_diff]/[f_scale]
   set) or on a point's first record (which arms the diff candidate).
   [fl] is the current flag byte, [b] the relation bit this observation
   contributes. *)
let update_pair_slow st k fl b vi vj first =
  let fl = ref (fl lor b) in
  if first then begin
    if meta_policy st.pmeta.(k) land p_diff <> 0 then begin
      st.pdiff.(k) <- Util.U32.signed (Util.U32.sub vj vi);
      fl := !fl lor f_diff
    end
  end
  else if !fl land f_diff <> 0
       && st.pdiff.(k) <> Util.U32.signed (Util.U32.sub vj vi) then
    fl := !fl land lnot f_diff;
  (* The all-zero observation is a scale no-op by construction: the
     nonzero counter's guard is false and 0 * k = 0 keeps every
     surviving mask bit — so skip it. (Permanently-zero pairs are
     exactly the ones whose masks never die.) *)
  if !fl land f_scale <> 0 && (vi <> 0 || vj <> 0) then begin
    let s = st.pscale.(k) in
    let nz = (s lsr 12) + 1 in
    let ij = filter_scale ((s lsr 6) land full_scale_mask) vi vj in
    let ji = filter_scale (s land full_scale_mask) vj vi in
    st.pscale.(k) <- scale_pack ~nonzero:nz ~ij ~ji;
    if ij = 0 && ji = 0 then fl := !fl land lnot f_scale
  end;
  Bytes.unsafe_set st.pflags k (Char.unsafe_chr !fl)

let intern t (record : Trace.Record.t) =
  let st =
    match Hashtbl.find_opt t.index record.point with
    | Some slot -> t.tab.(slot)
    | None ->
      let st = new_point t.config record.point record.mask record.values in
      add_point t st;
      st
  in
  t.last <- Some st;
  st

let observe_fast t (record : Trace.Record.t) =
  t.nrecords <- t.nrecords + 1;
  let values = record.values in
  let st =
    match t.last with
    | Some st when String.equal st.pname record.point -> st
    | _ -> intern t record
  in
  let first = st.n = 0 in
  st.n <- st.n + 1;
  if not first then begin
    (* On the first record the stats were initialised from these values. *)
    let vars = st.vars and dstats = st.dstats in
    for k = 0 to Array.length vars - 1 do
      update_vstat dstats.(k) values.(vars.(k))
    done
  end;
  let pmeta = st.pmeta and pflags = st.pflags in
  if first then
    for k = 0 to st.npairs - 1 do
      let m = Array.unsafe_get pmeta k in
      let vi = Array.unsafe_get values (m lsr 12)
      and vj = Array.unsafe_get values ((m lsr 5) land 0x7f) in
      let b = if vi < vj then r_lt else if vi = vj then r_eq else r_gt in
      update_pair_slow st k
        (Char.code (Bytes.unsafe_get pflags k)) b vi vj true
    done
  else
    (* The mining hot loop: ~thousands of pairs per record. A settled
       pair (diff falsified, scale masks dead) touches one meta word and
       one flag byte; the branchy full update only runs while a diff or
       scale candidate is still alive. Indices unpacked from [pmeta]
       are always < Var.total = Array.length values. *)
    for k = 0 to st.npairs - 1 do
      let m = Array.unsafe_get pmeta k in
      let vi = Array.unsafe_get values (m lsr 12)
      and vj = Array.unsafe_get values ((m lsr 5) land 0x7f) in
      let b = if vi < vj then r_lt else if vi = vj then r_eq else r_gt in
      let fl = Char.code (Bytes.unsafe_get pflags k) in
      if fl land (f_diff lor f_scale) = 0 then begin
        if fl land b = 0 then
          Bytes.unsafe_set pflags k (Char.unsafe_chr (fl lor b))
      end else update_pair_slow st k fl b vi vj false
    done

(* ---- Provenance bookkeeping helpers ---- *)

let prov_key1 point family id = Printf.sprintf "%s|%s|%d" point family id

let prov_key2 point family i j =
  let i, j = if i <= j then (i, j) else (j, i) in
  Printf.sprintf "%s|%s|%d|%d" point family i j

let desc1 family id = Printf.sprintf "%s(%s)" family (Var.id_name id)

let desc2 family i j =
  Printf.sprintf "%s(%s, %s)" family (Var.id_name i) (Var.id_name j)

let desc_mod id m = Printf.sprintf "mod(%s mod %d)" (Var.id_name id) m

let record_death t p ~point ~family ~desc =
  let d =
    { d_point = point; d_family = family; d_desc = desc;
      d_workload = p.cur_workload; d_record = t.nrecords;
      d_tick = p.wrecords }
  in
  ring_push p d;
  if not (Hashtbl.mem p.first_death family) then
    Hashtbl.replace p.first_death family d;
  Hashtbl.replace p.death_counts family
    (1 + Option.value ~default:0 (Hashtbl.find_opt p.death_counts family))

let record_narrow p ~record key =
  Hashtbl.replace p.witnesses key
    { w_workload = p.cur_workload; w_record = record; w_tick = p.wrecords }

(* The provenance observe path. Same state transitions as [observe_fast]
   — both funnel every live-candidate update through [update_pair_slow]
   and [update_vstat], so engine state stays bit-identical whichever
   path ran — plus pre/post diffing of each candidate to detect
   narrowing and falsification as it happens. Only engines created with
   [~provenance:true] ever enter here. *)
let observe_prov t p (record : Trace.Record.t) =
  t.nrecords <- t.nrecords + 1;
  p.wrecords <- p.wrecords + 1;
  let values = record.values in
  let st =
    match t.last with
    | Some st when String.equal st.pname record.point -> st
    | _ -> intern t record
  in
  let first = st.n = 0 in
  st.n <- st.n + 1;
  let point = st.pname in
  if first then
    Hashtbl.replace p.births point
      { w_workload = p.cur_workload; w_record = t.nrecords;
        w_tick = p.wrecords }
  else begin
    let vars = st.vars and dstats = st.dstats in
    for k = 0 to Array.length vars - 1 do
      let vs = dstats.(k) in
      let id = vars.(k) in
      let nd0 = vs.ndistinct and m40 = vs.mod4 and m20 = vs.mod2 in
      let mn0 = vs.vmin and mx0 = vs.vmax in
      update_vstat vs values.(id);
      if vs.ndistinct <> nd0 then begin
        if vs.ndistinct < 0 then
          record_death t p ~point ~family:"oneof" ~desc:(desc1 "oneof" id)
        else record_narrow p ~record:t.nrecords (prov_key1 point "oneof" id)
      end;
      if vs.vmin <> mn0 || vs.vmax <> mx0 then
        record_narrow p ~record:t.nrecords (prov_key1 point "interval" id);
      if vs.mod4 <> m40 then
        record_death t p ~point ~family:"mod" ~desc:(desc_mod id 4);
      if vs.mod2 <> m20 then
        record_death t p ~point ~family:"mod" ~desc:(desc_mod id 2)
    done
  end;
  let pmeta = st.pmeta and pflags = st.pflags in
  let scale_mask_bits = (full_scale_mask lsl 6) lor full_scale_mask in
  for k = 0 to st.npairs - 1 do
    let m = Array.unsafe_get pmeta k in
    let pi = m lsr 12 and pj = (m lsr 5) land 0x7f in
    let vi = Array.unsafe_get values pi
    and vj = Array.unsafe_get values pj in
    let b = if vi < vj then r_lt else if vi = vj then r_eq else r_gt in
    let fl = Char.code (Bytes.unsafe_get pflags k) in
    if first then update_pair_slow st k fl b vi vj true
    else begin
      let s0 = st.pscale.(k) in
      update_pair_slow st k fl b vi vj false;
      let fl' = Char.code (Bytes.unsafe_get pflags k) in
      if fl' land f_rel <> fl land f_rel then begin
        if fl' land f_rel = f_rel then
          record_death t p ~point ~family:"relation"
            ~desc:(desc2 "relation" pi pj)
        else
          record_narrow p ~record:t.nrecords
            (prov_key2 point "relation" pi pj)
      end;
      if fl land f_diff <> 0 && fl' land f_diff = 0 then
        record_death t p ~point ~family:"diff" ~desc:(desc2 "diff" pi pj);
      if fl land f_scale <> 0 then begin
        if fl' land f_scale = 0 then
          record_death t p ~point ~family:"scale"
            ~desc:(desc2 "scale" pi pj)
        else if (st.pscale.(k) lxor s0) land scale_mask_bits <> 0 then
          record_narrow p ~record:t.nrecords (prov_key2 point "scale" pi pj)
      end
    end
  done

let observe t record =
  match t.prov with
  | None -> observe_fast t record
  | Some p -> observe_prov t p record

(* The pre-optimization observe shape, kept as the differential-testing
   reference: one string-keyed hash lookup per record, an option unwrap
   per variable, and the full pair update for every pair — no settled
   fast path. Produces bit-identical engine state to [observe]; the
   QCheck suite holds the two paths equal, and [minebench] reports the
   throughput gap. *)
let observe_baseline t (record : Trace.Record.t) =
  t.nrecords <- t.nrecords + 1;
  let values = record.values in
  let st =
    match Hashtbl.find_opt t.index record.point with
    | Some slot -> t.tab.(slot)
    | None ->
      let st = new_point t.config record.point record.mask values in
      add_point t st;
      st
  in
  let first = st.n = 0 in
  st.n <- st.n + 1;
  if first then
    (* The stats were initialised from this record's values. *)
    ()
  else
    Array.iter
      (fun id ->
         match st.stats.(id) with
         | Some vs -> update_vstat vs values.(id)
         | None -> ())
      st.vars;
  for k = 0 to st.npairs - 1 do
    let m = st.pmeta.(k) in
    let vi = values.(meta_pi m) and vj = values.(meta_pj m) in
    let b = if vi < vj then r_lt else if vi = vj then r_eq else r_gt in
    update_pair_slow st k (Char.code (Bytes.get st.pflags k)) b vi vj first
  done

(* ---- Merging ----

   [merge_into dst src] joins two engine states point-by-point so that
   merging the engines of two trace shards is observationally equivalent
   to streaming both shards through one engine sequentially (the property
   the sharded miner in [Pipeline.mine ~jobs] relies on). Both engines
   must share a configuration; [src]'s state is consumed (point states of
   [src] not present in [dst] are adopted by reference). *)

let merge_vstat dst src =
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax;
  if dst.ndistinct < 0 || src.ndistinct < 0 then begin
    dst.values <- [||];
    dst.ndistinct <- -1
  end else begin
    (* Union of two sorted distinct sets, dying past the shared cap —
       exactly where a sequential run over the concatenated streams would
       have given up. *)
    let cap = Array.length dst.values in
    let out = Array.make cap 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 and dead = ref false in
    let push v =
      if !k >= cap then dead := true
      else begin out.(!k) <- v; incr k end
    in
    while not !dead && (!i < dst.ndistinct || !j < src.ndistinct) do
      if !j >= src.ndistinct then begin
        push dst.values.(!i); incr i
      end else if !i >= dst.ndistinct then begin
        push src.values.(!j); incr j
      end else begin
        let a = dst.values.(!i) and b = src.values.(!j) in
        push (if a <= b then a else b);
        if a <= b then incr i;
        if b <= a then incr j
      end
    done;
    if !dead then begin
      dst.values <- [||];
      dst.ndistinct <- -1
    end else begin
      dst.values <- out;
      dst.ndistinct <- !k
    end
  end;
  if dst.mod4 < 0 || src.mod4 < 0 || dst.mod4 <> src.mod4 then dst.mod4 <- -1;
  if dst.mod2 < 0 || src.mod2 < 0 || dst.mod2 <> src.mod2 then dst.mod2 <- -1

let merge_pair dst src =
  dst.rel <- dst.rel lor src.rel;
  (* A live diff means every observation of that shard agreed on it; the
     join survives only when both shards agree on the same constant. *)
  if not (dst.diff_live && src.diff_live && dst.diff = src.diff) then
    dst.diff_live <- false;
  dst.scale_ij <- dst.scale_ij land src.scale_ij;
  dst.scale_ji <- dst.scale_ji land src.scale_ji;
  (* The non-zero support counts can only diverge from a sequential run
     once every scale mask is dead, at which point no scaling invariant
     is extractable anyway. *)
  dst.scale_nonzero <- dst.scale_nonzero + src.scale_nonzero

(* [t] is the engine owning [dst]; when it records provenance, a
   candidate falsified by the join itself (the shards disagreed) gets a
   death record labelled with the merge pseudo-workload [merge_into]
   installed. *)
let merge_point t dst src =
  if not (Array.length dst.vars = Array.length src.vars
          && Array.for_all2 ( = ) dst.vars src.vars
          && dst.npairs = src.npairs) then
    invalid_arg
      (Printf.sprintf "Daikon.Engine.merge: point %s has incompatible shapes"
         dst.pname);
  dst.n <- dst.n + src.n;
  let point = dst.pname in
  Array.iter
    (fun id ->
       match dst.stats.(id), src.stats.(id) with
       | Some d, Some s ->
         (match t.prov with
          | None -> merge_vstat d s
          | Some p ->
            let nd0 = d.ndistinct and m40 = d.mod4 and m20 = d.mod2 in
            merge_vstat d s;
            if nd0 >= 0 && d.ndistinct < 0 then
              record_death t p ~point ~family:"oneof"
                ~desc:(desc1 "oneof" id);
            if m40 >= 0 && d.mod4 < 0 then
              record_death t p ~point ~family:"mod" ~desc:(desc_mod id 4);
            if m20 >= 0 && d.mod2 < 0 then
              record_death t p ~point ~family:"mod" ~desc:(desc_mod id 2))
       | _ -> invalid_arg "Daikon.Engine.merge: mismatched variable stats")
    dst.vars;
  for k = 0 to dst.npairs - 1 do
    let p = pair_view dst k and q = pair_view src k in
    if p.pi <> q.pi || p.pj <> q.pj then
      invalid_arg "Daikon.Engine.merge: mismatched pair trackers";
    let rel0 = p.rel and dlive0 = p.diff_live in
    let salive0 = p.scale_ij <> 0 || p.scale_ji <> 0 in
    merge_pair p q;
    pair_store dst k p;
    (match t.prov with
     | None -> ()
     | Some pr ->
       if p.rel <> rel0 && p.rel = f_rel then
         record_death t pr ~point ~family:"relation"
           ~desc:(desc2 "relation" p.pi p.pj);
       if dlive0 && not p.diff_live then
         record_death t pr ~point ~family:"diff"
           ~desc:(desc2 "diff" p.pi p.pj);
       if salive0 && p.scale_ij = 0 && p.scale_ji = 0
          && p.policy land p_scale <> 0 then
         record_death t pr ~point ~family:"scale"
           ~desc:(desc2 "scale" p.pi p.pj))
  done

(* Join two provenance states: src's ring entries precede any deaths the
   point merge below will add; per-key tables keep dst's entry (corpus
   order makes "first" deterministic) and sum the counts. *)
let merge_prov dp sp =
  dp.cur_workload <-
    (if sp.cur_workload = "" then "(merge)" else "merge:" ^ sp.cur_workload);
  dp.wrecords <- 0;
  dp.dropped <- dp.dropped + sp.dropped;
  List.iter (ring_push dp) (ring_contents sp);
  Hashtbl.iter
    (fun fam d ->
       if not (Hashtbl.mem dp.first_death fam) then
         Hashtbl.replace dp.first_death fam d)
    sp.first_death;
  Hashtbl.iter
    (fun fam n ->
       Hashtbl.replace dp.death_counts fam
         (n + Option.value ~default:0 (Hashtbl.find_opt dp.death_counts fam)))
    sp.death_counts;
  Hashtbl.iter
    (fun k w ->
       if not (Hashtbl.mem dp.witnesses k) then
         Hashtbl.replace dp.witnesses k w)
    sp.witnesses;
  Hashtbl.iter
    (fun pt w ->
       if not (Hashtbl.mem dp.births pt) then Hashtbl.replace dp.births pt w)
    sp.births

let merge_into dst src =
  if dst == src then invalid_arg "Daikon.Engine.merge_into: same engine";
  if dst.config <> src.config then
    invalid_arg "Daikon.Engine.merge_into: configurations differ";
  dst.nrecords <- dst.nrecords + src.nrecords;
  (match dst.prov, src.prov with
   | Some dp, Some sp -> merge_prov dp sp
   | _ -> ());
  (* Walk src in interning (insertion) order — deterministic regardless
     of hash seed, unlike the Hashtbl.iter this replaces. *)
  for i = 0 to src.ntab - 1 do
    let sp = src.tab.(i) in
    match Hashtbl.find_opt dst.index sp.pname with
    | Some slot -> merge_point dst dst.tab.(slot) sp
    | None -> add_point dst sp
  done

let merge a b = merge_into a b; a

(* ---- Provenance readout ---- *)

let deaths t = match t.prov with None -> [] | Some p -> ring_contents p

let deaths_dropped t =
  match t.prov with None -> 0 | Some p -> p.dropped

let death_families t =
  match t.prov with
  | None -> []
  | Some p ->
    Hashtbl.fold
      (fun fam n acc -> (fam, n, Hashtbl.find_opt p.first_death fam) :: acc)
      p.death_counts []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* Which tracked candidate an extracted invariant came from. Must follow
   the extraction shapes in [extract_point]: constants and value sets
   come from the oneof stats, Ge/Le bounds from the interval, Minus
   pairs from the constant-diff tracker, Mul pairs from the scale
   masks, and plain V-to-V comparisons from the relation bits. *)
let candidate_key (inv : Expr.t) =
  let point = inv.Expr.point in
  match inv.Expr.body with
  | Expr.In (Expr.V id, _) -> Some (prov_key1 point "oneof" id)
  | Expr.Cmp (_, Expr.Mod (id, _), _) -> Some (prov_key1 point "mod" id)
  | Expr.Cmp (Expr.Eq, Expr.V id, Expr.Imm _) ->
    Some (prov_key1 point "oneof" id)
  | Expr.Cmp ((Expr.Ge | Expr.Le), Expr.V id, Expr.Imm _) ->
    Some (prov_key1 point "interval" id)
  | Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Minus, a, b), Expr.Imm _) ->
    Some (prov_key2 point "diff" a b)
  | Expr.Cmp (Expr.Eq, Expr.V a, Expr.Mul (b, _)) ->
    Some (prov_key2 point "scale" a b)
  | Expr.Cmp (_, Expr.V a, Expr.V b) -> Some (prov_key2 point "relation" a b)
  | _ -> None

let narrow_witness t inv =
  match t.prov with
  | None -> None
  | Some p ->
    let direct =
      match candidate_key inv with
      | Some key -> Hashtbl.find_opt p.witnesses key
      | None -> None
    in
    (match direct with
     | Some _ as w -> w
     (* A candidate that never narrowed after birth is witnessed by the
        record that instantiated it. *)
     | None -> Hashtbl.find_opt p.births inv.Expr.point)

(* ---- Candidate accounting (telemetry) ----

   Birth/death counts per invariant family, computed by scanning the
   tracker state at extraction cadence — the observe/merge hot paths pay
   nothing for this. "Born" counts every candidate ever instantiated for
   a tracked variable or pair; "live" counts the candidates still
   justified by everything observed so far. *)

type family_stats = {
  family : string;
  born : int;
  live : int;
}

let candidate_stats t =
  let oneof_born = ref 0 and oneof_live = ref 0 in
  let interval_born = ref 0 in
  let mod_born = ref 0 and mod_live = ref 0 in
  let rel_born = ref 0 and rel_live = ref 0 in
  let diff_born = ref 0 and diff_live = ref 0 in
  let scale_born = ref 0 and scale_live = ref 0 in
  for i = 0 to t.ntab - 1 do
    let st = t.tab.(i) in
    Array.iter
      (fun id ->
         match st.stats.(id) with
         | None -> ()
         | Some vs ->
           Stdlib.incr oneof_born;
           if vs.ndistinct >= 0 then Stdlib.incr oneof_live;
           Stdlib.incr interval_born;
           if Var.id_kind id = Var.Addr then begin
             mod_born := !mod_born + 2;
             if vs.mod4 >= 0 then Stdlib.incr mod_live;
             if vs.mod2 >= 0 then Stdlib.incr mod_live
           end)
      st.vars;
    for k = 0 to st.npairs - 1 do
      let p = pair_view st k in
      if p.policy land (p_order lor p_eq lor p_ne) <> 0 then begin
        Stdlib.incr rel_born;
        (* All three relation bits observed = no ordering constraint
           is left to extract. *)
        if p.rel <> r_lt lor r_eq lor r_gt then Stdlib.incr rel_live
      end;
      if p.policy land p_diff <> 0 then begin
        Stdlib.incr diff_born;
        if p.diff_live then Stdlib.incr diff_live
      end;
      if p.policy land p_scale <> 0 then begin
        Stdlib.incr scale_born;
        if p.scale_ij <> 0 || p.scale_ji <> 0 then
          Stdlib.incr scale_live
      end
    done
  done;
  [ { family = "oneof"; born = !oneof_born; live = !oneof_live };
    (* min/max intervals only widen; a tracked interval never dies. *)
    { family = "interval"; born = !interval_born; live = !interval_born };
    { family = "mod"; born = !mod_born; live = !mod_live };
    { family = "relation"; born = !rel_born; live = !rel_live };
    { family = "diff"; born = !diff_born; live = !diff_live };
    { family = "scale"; born = !scale_born; live = !scale_live } ]

(* ---- Extraction ---- *)

let is_constant st = st.ndistinct = 1

let constant_value st =
  if st.ndistinct <> 1 then invalid_arg "constant_value";
  st.values.(0)

let extract_point config st acc =
  let cfg = config in
  let add inv acc = inv :: acc in
  if st.n < cfg.Config.min_samples then acc
  else begin
    let acc = ref acc in
    let point = st.pname in
    (* Daikon-style equality-set suppression: among constant variables that
       share a value, only one leader per orig()/post side participates in
       pair invariants; the rest are fully described by their constancy.
       (orig and post variables live in separate equality sets, as in
       Daikon; the cross-side redundancy that survives here is what the
       §3.2 constant-propagation and equivalence-removal passes exist to
       clean up.) *)
    let leaders = Hashtbl.create 32 in
    Array.iter
      (fun id ->
         match st.stats.(id) with
         | Some vs when is_constant vs ->
           let key = (constant_value vs, Var.is_orig id) in
           if not (Hashtbl.mem leaders key) then Hashtbl.replace leaders key id
         | Some _ | None -> ())
      st.vars;
    let is_pair_leader id =
      match st.stats.(id) with
      | Some vs when is_constant vs ->
        Hashtbl.find_opt leaders (constant_value vs, Var.is_orig id) = Some id
      | Some _ -> true
      | None -> false
    in
    (* Unary invariants. *)
    Array.iter
      (fun id ->
         match st.stats.(id) with
         | None -> ()
         | Some vs ->
           if is_constant vs then
             acc := add { Expr.point; body = Expr.Cmp (Expr.Eq, Expr.V id, Expr.Imm (constant_value vs)) } !acc
           else begin
             if vs.ndistinct > 1 && st.n >= cfg.oneof_min then
               acc := add { Expr.point;
                            body = Expr.In (Expr.V id,
                                            Array.to_list
                                              (Array.sub vs.values 0 vs.ndistinct)) } !acc;
             if st.n >= cfg.mod_min then begin
               if vs.mod4 >= 0 then
                 acc := add { Expr.point;
                              body = Expr.Cmp (Expr.Eq, Expr.Mod (id, 4), Expr.Imm vs.mod4) } !acc
               else if vs.mod2 >= 0 then
                 acc := add { Expr.point;
                              body = Expr.Cmp (Expr.Eq, Expr.Mod (id, 2), Expr.Imm vs.mod2) } !acc
             end;
             (* Signed bounds for derived difference variables. *)
             if Var.id_kind id = Var.Diff && st.n >= cfg.mod_min then begin
               let lower =
                 if vs.vmin >= 1 then Some 1
                 else if vs.vmin >= 0 then Some 0
                 else if vs.vmin >= -1 then Some (-1)
                 else None
               and upper =
                 if vs.vmax <= -1 then Some (-1)
                 else if vs.vmax <= 0 then Some 0
                 else if vs.vmax <= 1 then Some 1
                 else None
               in
               (match lower with
                | Some b ->
                  acc := add { Expr.point;
                               body = Expr.Cmp (Expr.Ge, Expr.V id, Expr.Imm b) } !acc
                | None -> ());
               (match upper with
                | Some b ->
                  acc := add { Expr.point;
                               body = Expr.Cmp (Expr.Le, Expr.V id, Expr.Imm b) } !acc
                | None -> ())
             end
           end)
      st.vars;
    (* Pairwise invariants. *)
    for pk = 0 to st.npairs - 1 do
      let p = pair_view st pk in
         let si = st.stats.(p.pi) and sj = st.stats.(p.pj) in
         match si, sj with
         | Some si, Some sj ->
           let both_const = is_constant si && is_constant sj in
           if not both_const
           && is_pair_leader p.pi && is_pair_leader p.pj then begin
             let n = st.n in
             (* Ordering / equality / disequality. *)
             let emit_cmp op =
               acc := add { Expr.point;
                            body = Expr.Cmp (op, Expr.V p.pi, Expr.V p.pj) } !acc
             in
             (match p.rel with
              | 2 when p.policy land p_eq <> 0 && n >= cfg.min_samples ->
                emit_cmp Expr.Eq
              | 1 when p.policy land p_order <> 0 && n >= cfg.order_min ->
                emit_cmp Expr.Lt
              | 3 when p.policy land p_order <> 0 && n >= cfg.order_min ->
                emit_cmp Expr.Le
              | 4 when p.policy land p_order <> 0 && n >= cfg.order_min ->
                emit_cmp Expr.Gt
              | 6 when p.policy land p_order <> 0 && n >= cfg.order_min ->
                emit_cmp Expr.Ge
              | 5 when p.policy land p_ne <> 0 && n >= cfg.ne_min ->
                emit_cmp Expr.Ne
              | _ -> ());
             (* Constant difference, skipping the d = 0 case (that is Eq). *)
             if p.diff_live && p.diff <> 0 && abs p.diff <= cfg.max_diff
             && p.policy land p_diff <> 0 && n >= cfg.min_samples then
               acc := add { Expr.point;
                            body = Expr.Cmp (Expr.Eq,
                                             Expr.Bin (Expr.Minus, p.pj, p.pi),
                                             Expr.Imm p.diff) } !acc;
             (* Scaling Y = X * k (pick the smallest surviving k). *)
             if p.policy land p_scale <> 0
             && p.scale_nonzero >= cfg.scale_nonzero_min
             && n >= cfg.min_samples then begin
               let pick mask =
                 let rec go bit =
                   if bit >= Array.length scale_candidates then None
                   else if mask land (1 lsl bit) <> 0 then Some scale_candidates.(bit)
                   else go (bit + 1)
                 in
                 go 0
               in
               (match pick p.scale_ij with
                | Some k ->
                  acc := add { Expr.point;
                               body = Expr.Cmp (Expr.Eq, Expr.V p.pj,
                                                Expr.Mul (p.pi, k)) } !acc
                | None ->
                  (match pick p.scale_ji with
                   | Some k ->
                     acc := add { Expr.point;
                                  body = Expr.Cmp (Expr.Eq, Expr.V p.pi,
                                                   Expr.Mul (p.pj, k)) } !acc
                   | None -> ()))
             end
           end
         | _ -> ()
    done;
    !acc
  end

(* The currently justified invariant set. Deterministic order: sorted by
   canonical form, with program points visited in canonical order so the
   survivor of a canonical tie never depends on hash-seed iteration.
   Each canonical key is computed once — [Expr.compare] re-renders both
   sides on every call, which made the old [sort_uniq] the hot spot of
   every Figure 3 snapshot. *)
let invariants t =
  let raw =
    List.fold_left
      (fun acc st -> extract_point t.config st acc)
      [] (sorted_points t)
  in
  let keyed = List.map (fun i -> (Expr.canonical i, i)) raw in
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) keyed
  in
  let rec dedup = function
    | (ka, a) :: ((kb, _) :: _ as rest) ->
      if String.equal ka kb then dedup rest else a :: dedup rest
    | [ (_, a) ] -> [ a ]
    | [] -> []
  in
  dedup sorted

(* ---- Persistent snapshots ----

   Full engine state round-trips through a compact, versioned binary
   codec: header (magic, codec version, caller key, payload digest),
   then the payload — configuration, record count, and every program
   point's candidate state in canonical (sorted) point order, so the
   bytes are identical no matter what hash seed built the table.

   The [key] is an opaque caller-chosen string (the pipeline digests the
   workload image and trace setup into it); a snapshot whose key,
   configuration or codec version does not match what the loader expects
   is reported [Stale_snapshot], and any torn, truncated or bit-flipped
   file fails the payload digest and is reported [Corrupt_snapshot] —
   both are recoverable by re-mining. Writes go through
   [Util.Binio.atomic_write], so a crashed or racing writer can never
   publish a half-written snapshot. *)

exception Corrupt_snapshot of string
exception Stale_snapshot of string

(* Version 2 appends the flight-recorder (provenance) section to the
   payload. Engines without provenance still encode as version 1, byte
   for byte the format every earlier release wrote — so enabling the
   feature never perturbs existing caches, and a provenance-free run
   produces bit-identical snapshots to one built before the feature
   existed. [decode] accepts both. *)
let codec_version = 2
let snapshot_magic = "SCIFSNAP"

let encode_vstat w vs =
  Util.Binio.write_int w vs.vmin;
  Util.Binio.write_int w vs.vmax;
  Util.Binio.write_int w vs.ndistinct;
  if vs.ndistinct > 0 then
    for k = 0 to vs.ndistinct - 1 do
      Util.Binio.write_int w vs.values.(k)
    done;
  Util.Binio.write_int w vs.mod4;
  Util.Binio.write_int w vs.mod2

let decode_vstat cap r =
  let vmin = Util.Binio.read_int r in
  let vmax = Util.Binio.read_int r in
  let ndistinct = Util.Binio.read_int r in
  if ndistinct < -1 || ndistinct > cap then
    raise (Corrupt_snapshot "distinct-value count out of range");
  let values =
    if ndistinct < 0 then [||]
    else begin
      let values = Array.make cap 0 in
      for k = 0 to ndistinct - 1 do
        values.(k) <- Util.Binio.read_int r
      done;
      values
    end
  in
  let mod4 = Util.Binio.read_int r in
  let mod2 = Util.Binio.read_int r in
  { vmin; vmax; values; ndistinct; mod4; mod2 }

let encode_pair w p =
  Util.Binio.write_uint w p.pi;
  Util.Binio.write_uint w p.pj;
  Util.Binio.write_uint w p.rel;
  Util.Binio.write_int w p.diff;
  Util.Binio.write_bool w p.diff_live;
  Util.Binio.write_uint w p.scale_ij;
  Util.Binio.write_uint w p.scale_ji;
  (* Once every scale mask is dead the support count is frozen wherever
     the kill happened — a stream-order artifact that extraction never
     reads (both masks gate it) and that a shard merge cannot reproduce
     (the count is the one pair field [merge_pair] sums approximately).
     Canonicalize it to 0 so snapshot bytes are a function of exactly
     the mergeable state: jobs=N replay == jobs=1, byte for byte. *)
  Util.Binio.write_uint w
    (if p.scale_ij = 0 && p.scale_ji = 0 then 0 else p.scale_nonzero)

let decode_pair r =
  let pi = Util.Binio.read_uint r in
  let pj = Util.Binio.read_uint r in
  if pi >= Var.total || pj >= Var.total || pi >= pj then
    raise (Corrupt_snapshot "bad pair variable ids");
  let policy = pair_policy (Var.id_kind pi) (Var.id_kind pj) in
  let rel = Util.Binio.read_uint r in
  let diff = Util.Binio.read_int r in
  let diff_live = Util.Binio.read_bool r in
  let scale_ij = Util.Binio.read_uint r in
  let scale_ji = Util.Binio.read_uint r in
  let scale_nonzero = Util.Binio.read_uint r in
  { pi; pj; policy; rel; diff; diff_live; scale_ij; scale_ji;
    scale_nonzero }

let encode_point w st =
  Util.Binio.write_string w st.pname;
  Util.Binio.write_uint w (Array.length st.vars);
  Array.iter
    (fun id ->
       Util.Binio.write_uint w id;
       match st.stats.(id) with
       | Some vs -> encode_vstat w vs
       | None -> raise (Invalid_argument "Engine.save: var without stats"))
    st.vars;
  Util.Binio.write_uint w st.npairs;
  for k = 0 to st.npairs - 1 do encode_pair w (pair_view st k) done;
  Util.Binio.write_uint w st.n

let decode_point config r =
  let pname = Util.Binio.read_string r in
  let nvars = Util.Binio.read_uint r in
  if nvars > Var.total then raise (Corrupt_snapshot "too many variables");
  let cap = max 1 config.Config.max_oneof in
  let stats = Array.make Var.total None in
  let vars =
    Array.init nvars
      (fun _ ->
         let id = Util.Binio.read_uint r in
         if id >= Var.total then
           raise (Corrupt_snapshot "variable id out of range");
         stats.(id) <- Some (decode_vstat cap r);
         id)
  in
  let npairs = Util.Binio.read_uint r in
  if npairs > Var.total * Var.total then
    raise (Corrupt_snapshot "too many pairs");
  let pairs = Array.init npairs (fun _ -> decode_pair r) in
  let n = Util.Binio.read_uint r in
  pack_point pname vars stats
    (Array.map (fun id -> Option.get stats.(id)) vars)
    pairs n

let encode_config w (c : Config.t) =
  Util.Binio.write_uint w c.min_samples;
  Util.Binio.write_uint w c.order_min;
  Util.Binio.write_uint w c.ne_min;
  Util.Binio.write_uint w c.oneof_min;
  Util.Binio.write_uint w c.max_oneof;
  Util.Binio.write_uint w c.mod_min;
  Util.Binio.write_uint w c.scale_nonzero_min;
  Util.Binio.write_uint w c.max_diff

let decode_config r : Config.t =
  let min_samples = Util.Binio.read_uint r in
  let order_min = Util.Binio.read_uint r in
  let ne_min = Util.Binio.read_uint r in
  let oneof_min = Util.Binio.read_uint r in
  let max_oneof = Util.Binio.read_uint r in
  let mod_min = Util.Binio.read_uint r in
  let scale_nonzero_min = Util.Binio.read_uint r in
  let max_diff = Util.Binio.read_uint r in
  { min_samples; order_min; ne_min; oneof_min; max_oneof; mod_min;
    scale_nonzero_min; max_diff }

let encode_death w d =
  Util.Binio.write_string w d.d_point;
  Util.Binio.write_string w d.d_family;
  Util.Binio.write_string w d.d_desc;
  Util.Binio.write_string w d.d_workload;
  Util.Binio.write_uint w d.d_record;
  Util.Binio.write_uint w d.d_tick

let decode_death r =
  let d_point = Util.Binio.read_string r in
  let d_family = Util.Binio.read_string r in
  let d_desc = Util.Binio.read_string r in
  let d_workload = Util.Binio.read_string r in
  let d_record = Util.Binio.read_uint r in
  let d_tick = Util.Binio.read_uint r in
  { d_point; d_family; d_desc; d_workload; d_record; d_tick }

let encode_witness w wt =
  Util.Binio.write_string w wt.w_workload;
  Util.Binio.write_uint w wt.w_record;
  Util.Binio.write_uint w wt.w_tick

let decode_witness r =
  let w_workload = Util.Binio.read_string r in
  let w_record = Util.Binio.read_uint r in
  let w_tick = Util.Binio.read_uint r in
  { w_workload; w_record; w_tick }

(* Tables are dumped key-sorted so provenance snapshots stay canonical
   (identical state -> identical bytes) like the rest of the payload. *)
let encode_prov w p =
  Util.Binio.write_string w p.cur_workload;
  Util.Binio.write_uint w p.cap;
  Util.Binio.write_uint w p.dropped;
  let ds = ring_contents p in
  Util.Binio.write_uint w (List.length ds);
  List.iter (encode_death w) ds;
  let dump tbl enc =
    let kvs =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Util.Binio.write_uint w (List.length kvs);
    List.iter (fun (k, v) -> Util.Binio.write_string w k; enc v) kvs
  in
  dump p.first_death (encode_death w);
  dump p.death_counts (Util.Binio.write_uint w);
  dump p.witnesses (encode_witness w);
  dump p.births (encode_witness w)

let decode_prov r =
  let cur_workload = Util.Binio.read_string r in
  let cap = Util.Binio.read_uint r in
  let dropped = Util.Binio.read_uint r in
  let p = make_prov cap in
  p.cur_workload <- cur_workload;
  let nring = Util.Binio.read_uint r in
  if nring > max 1 p.cap then
    raise (Corrupt_snapshot "death ring larger than its capacity");
  for _ = 1 to nring do ring_push p (decode_death r) done;
  p.dropped <- dropped;
  let load dec set =
    let n = Util.Binio.read_uint r in
    for _ = 1 to n do
      let k = Util.Binio.read_string r in
      set k (dec r)
    done
  in
  load decode_death (Hashtbl.replace p.first_death);
  load Util.Binio.read_uint (Hashtbl.replace p.death_counts);
  load decode_witness (Hashtbl.replace p.witnesses);
  load decode_witness (Hashtbl.replace p.births);
  p

let encode ?(key = "") t =
  let payload = Util.Binio.writer () in
  encode_config payload t.config;
  Util.Binio.write_uint payload t.nrecords;
  let pts = sorted_points t in
  Util.Binio.write_uint payload (List.length pts);
  List.iter (encode_point payload) pts;
  let version =
    match t.prov with
    | None -> 1
    | Some p -> encode_prov payload p; codec_version
  in
  let payload = Util.Binio.contents payload in
  let header = Util.Binio.writer () in
  Util.Binio.write_raw header snapshot_magic;
  Util.Binio.write_uint header version;
  Util.Binio.write_string header key;
  Util.Binio.write_string header (Digest.string payload);
  Util.Binio.write_uint header (String.length payload);
  Util.Binio.contents header ^ payload

let save ?key t path =
  Util.Binio.atomic_write path (encode ?key t)

let decode ?(key = "") ?config data =
  let mlen = String.length snapshot_magic in
  if String.length data < mlen
  || not (String.equal (String.sub data 0 mlen) snapshot_magic) then
    raise (Corrupt_snapshot "bad magic");
  match
    let r = Util.Binio.reader (String.sub data mlen (String.length data - mlen)) in
    let version = Util.Binio.read_uint r in
    if version < 1 || version > codec_version then
      raise (Stale_snapshot
               (Printf.sprintf "codec version %d, want 1..%d"
                  version codec_version));
    (* Keys compare as plain strings with "" the default: loading a
       keyed snapshot without presenting its key is itself stale — the
       caller clearly is not validating what produced the state. *)
    if not (String.equal (Util.Binio.read_string r) key) then
      raise (Stale_snapshot "cache key mismatch");
    let digest = Util.Binio.read_string r in
    let plen = Util.Binio.read_uint r in
    let payload = Util.Binio.read_string_exact r plen in
    if not (Util.Binio.eof r) then
      raise (Corrupt_snapshot "trailing bytes");
    if not (String.equal (Digest.string payload) digest) then
      raise (Corrupt_snapshot "payload digest mismatch");
    let p = Util.Binio.reader payload in
    let stored_config = decode_config p in
    (match config with
     | Some c when c <> stored_config ->
       raise (Stale_snapshot "configuration fingerprint mismatch")
     | Some _ | None -> ());
    let nrecords = Util.Binio.read_uint p in
    let npoints = Util.Binio.read_uint p in
    let t =
      { config = stored_config; index = Hashtbl.create (max 17 npoints);
        tab = [||]; ntab = 0; last = None; sorted = None; nrecords;
        prov = None }
    in
    for _ = 1 to npoints do
      let st = decode_point stored_config p in
      if Hashtbl.mem t.index st.pname then
        raise (Corrupt_snapshot ("duplicate point " ^ st.pname));
      add_point t st
    done;
    if version >= 2 then t.prov <- Some (decode_prov p);
    if not (Util.Binio.eof p) then
      raise (Corrupt_snapshot "trailing payload bytes");
    t
  with
  | t -> t
  | exception Util.Binio.Truncated ->
    raise (Corrupt_snapshot "truncated snapshot")

let load ?key ?config path = decode ?key ?config (Util.Binio.read_file path)
