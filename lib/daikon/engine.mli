(** The dynamic invariant detector (the paper's modified Daikon, §3.1.2).

    The engine is incremental: records stream in through {!observe} and
    candidate invariants are falsified on the fly; {!invariants} extracts
    the currently justified set at any time — which is how the Figure 3
    program-by-program convergence series is produced.

    Templates: equality to a constant, small value sets (OneOf), pairwise
    relations ([=], [<>], [<], [<=], [>], [>=]) between comparable
    variables, constant differences (Y - X = c), constant scalings
    (Y = X * k), power-of-two alignment (X mod 4 = r), and signed bounds
    on the derived difference variables. Daikon-style equality-set leaders
    suppress redundant pairs over same-valued constants. *)

type t

val create :
  ?config:Config.t -> ?provenance:bool -> ?prov_capacity:int -> unit -> t
(** [provenance] (default [false]) turns on the flight recorder: every
    candidate falsification is recorded as a {!death} (bounded ring of
    [prov_capacity] entries, default 4096) and narrowing observations
    update per-candidate {!witness}es. Off, the engine behaves — and
    snapshots — exactly as before; the only cost is one branch per
    {!observe}. *)

val observe : t -> Trace.Record.t -> unit
(** Feed one instruction-boundary record. Program points are interned
    (integer slots, last-point cache) and fully falsified candidate
    pairs are skipped, so the per-record cost tracks the live candidate
    set, not everything ever instantiated. *)

val observe_baseline : t -> Trace.Record.t -> unit
(** The pre-interning reference path: a string-keyed hash lookup per
    record and a full scan of every candidate pair, dead or alive.
    Produces bit-identical engine state to {!observe} (and the two may
    be mixed freely on one engine); kept for differential testing and
    as the [minebench] baseline. *)

val invariants : t -> Invariant.Expr.t list
(** The currently justified set, deduplicated and in canonical order. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] joins [src]'s state into [dst], point by point:
    min/max intervals join, distinct-value sets union (dying past the
    configured cap), relation bits or together, constant differences
    survive only when both sides agree, and scale masks intersect — so
    that merging the engines of two trace shards yields the same
    {!invariants} as streaming both shards through one engine
    sequentially. [src] is consumed: its point states may be adopted by
    reference and must not be observed into afterwards.
    @raise Invalid_argument if the configurations differ or a shared
    program point has incompatible variable sets. *)

val merge : t -> t -> t
(** [merge a b] is [merge_into a b; a]. Consumes both arguments. *)

(** Candidate birth/death accounting for one invariant family — the
    telemetry behind the Figure 3 convergence story. Computed by scanning
    the tracker state on demand; the observe/merge hot paths pay nothing.
    [born - live] candidates have been falsified. *)
type family_stats = {
  family : string;  (** [oneof], [interval], [mod], [relation], [diff], [scale] *)
  born : int;       (** candidates ever instantiated *)
  live : int;       (** still justified by every observation so far *)
}

val candidate_stats : t -> family_stats list

(** {1 Candidate-lifecycle provenance (the flight recorder)}

    Available when the engine was created with [~provenance:true];
    every reader below degrades to the empty answer otherwise. *)

(** One falsification: which candidate died, and what killed it. *)
type death = {
  d_point : string;
  d_family : string;   (** [oneof], [mod], [relation], [diff] or [scale] *)
  d_desc : string;     (** the candidate, over variable names *)
  d_workload : string; (** workload being traced ([""] before
                           {!set_workload}; ["merge:..."] when the
                           shard join itself falsified it) *)
  d_record : int;      (** engine-global record ordinal at death *)
  d_tick : int;        (** record ordinal within that workload *)
}

(** The observation that last constrained a surviving candidate. *)
type witness = {
  w_workload : string;
  w_record : int;
  w_tick : int;
}

val provenance_enabled : t -> bool

val set_workload : t -> string -> unit
(** Name the workload about to be observed, so subsequent deaths and
    witnesses carry it. Resets the per-workload record ordinal. No-op
    without provenance. *)

val deaths : t -> death list
(** Ring contents, oldest first. The ring is bounded: under pressure the
    oldest entries are evicted (see {!deaths_dropped}); the per-family
    summary below is immune to eviction. *)

val deaths_dropped : t -> int

val death_families : t -> (string * int * death option) list
(** Per family: total falsifications and the {e first} death — tracked
    outside the ring, so at least one full evidence trail per family
    always survives whatever the ring capacity. Sorted by family. *)

val narrow_witness : t -> Invariant.Expr.t -> witness option
(** The observation that last narrowed the candidate behind an extracted
    invariant (falling back to the birth record of its program point
    when it never narrowed after birth). [None] without provenance or
    for invariant shapes the engine does not track. *)

val record_count : t -> int

val point_count : t -> int

val points : t -> string list
(** Observed program points, in canonical (sorted) order — stable under
    randomized hash seeds ([OCAMLRUNPARAM=R]). *)

(** {1 Persistent snapshots}

    Full engine state — every invariant family's candidate state,
    program points, and the configuration — round-trips through a
    compact, versioned binary codec to an observationally identical
    engine: same {!invariants}, {!candidate_stats}, {!record_count},
    and the same behaviour under further {!observe}/{!merge_into}.
    Snapshot bytes are canonical (points sorted), so identical state
    encodes to identical bytes regardless of hash seed. *)

exception Corrupt_snapshot of string
(** The file is torn, truncated, or fails its payload digest. *)

exception Stale_snapshot of string
(** The file is well-formed but keyed by another codec version, cache
    key, or configuration — re-mine rather than trust it. *)

val codec_version : int
(** The newest version {!decode} accepts (older ones stay readable).
    Engines without provenance encode as version 1 — byte-identical to
    what pre-provenance releases wrote — so enabling the flight
    recorder never invalidates or perturbs existing caches; engines
    with provenance append it as a version-2 payload section. *)

val save : ?key:string -> t -> string -> unit
(** Write atomically (temp file + rename): a crashed or concurrent run
    can never leave a torn snapshot at the destination path. [key] is
    an opaque caller cache key validated by {!load} (e.g. a digest of
    whatever produced the observations). *)

val load : ?key:string -> ?config:Config.t -> string -> t
(** @raise Corrupt_snapshot on damaged input.
    @raise Stale_snapshot when codec version, [key] or [config] does
    not match the snapshot. Keys compare as plain strings (default
    [""]), so loading a keyed snapshot without presenting its key is
    stale.
    @raise Sys_error when unreadable. *)

val encode : ?key:string -> t -> string
(** The raw snapshot bytes {!save} writes. *)

val decode : ?key:string -> ?config:Config.t -> string -> t
(** Inverse of {!encode}; raises like {!load}. *)

val scale_candidates : int array
(** The Y = X * k factors tried: word/index scalings plus the half-word
    and sign-replication factors. *)

val pair_policy : Trace.Var.kind -> Trace.Var.kind -> int
(** Template-permission bits for a variable-pair kind combination
    (Daikon's comparability analysis); 0 means the pair is never
    tracked. *)
