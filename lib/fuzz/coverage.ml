(* Coverage points folded out of the Trace.Record stream. Everything is
   derived from record fields the miner already observes, so coverage
   costs one decode plus a few array reads per record and needs no new
   instrumentation in the machine. *)

module Var = Trace.Var
module Record = Trace.Record

type point =
  | Form of string
  | Op of string
  | Flag of string * bool
  | Edge of string * bool
  | Exn of string * string
  | Exn_delay of string

let compare_point (a : point) (b : point) = Stdlib.compare a b

let describe = function
  | Form f -> "form " ^ f
  | Op p -> "op " ^ p
  | Flag (p, v) -> Printf.sprintf "flag %s -> %d" p (if v then 1 else 0)
  | Edge (p, taken) ->
    Printf.sprintf "edge %s %s" p (if taken then "taken" else "fallthrough")
  | Exn (vec, p) -> Printf.sprintf "exn %s @ %s" vec p
  | Exn_delay vec -> Printf.sprintf "exn %s in delay slot" vec

module Pset = Set.Make (struct
    type t = point
    let compare = compare_point
  end)

(* Vector address (what Var.Vec records) -> vector name. *)
let vector_name addr =
  match
    List.find_opt
      (fun k -> Isa.Spr.Vector.address k = addr)
      Isa.Spr.Vector.all
  with
  | Some k -> Isa.Spr.Vector.name k
  | None -> Printf.sprintf "vector_%x" addr

let is_delay_slot_point = function
  | "l.j" | "l.jal" | "l.jr" | "l.jalr" | "l.bf" | "l.bnf" -> true
  | _ -> false

let is_setflag_point p =
  String.length p > 4 && String.sub p 0 4 = "l.sf"

let of_record (r : Record.t) =
  let get id = Record.get r id in
  let point = r.Record.point in
  let form =
    match Isa.Code.decode (get (Var.insn_id Var.Ir)) with
    | Some insn -> Isa.Insn.form insn
    | None -> "illegal"
  in
  let acc = [ Form form; Op point ] in
  let acc =
    if is_setflag_point point then
      Flag (point, get (Var.post_id Var.Sf) = 1) :: acc
    else acc
  in
  let acc =
    if is_delay_slot_point point then begin
      (* Fused records carry the post-delay-slot PC: the branch target
         when taken, the sequential address (branch + 8) otherwise. *)
      let origin = get (Var.orig_id Var.Pc) in
      let landed = get (Var.post_id Var.Pc) in
      Edge (point, landed <> (origin + 8) land 0xFFFF_FFFF) :: acc
    end
    else acc
  in
  if get (Var.insn_id Var.Exn) = 1 then begin
    let vec = vector_name (get (Var.insn_id Var.Vec)) in
    let acc = Exn (vec, point) :: acc in
    if get (Var.post_id Var.Dsx) = 1 then Exn_delay vec :: acc else acc
  end
  else acc

type t = { mutable set : Pset.t }

let create () = { set = Pset.empty }

let observe t r =
  List.iter (fun p -> t.set <- Pset.add p t.set) (of_record r)

let points t = t.set

let of_workload ?max_steps (w : Workloads.Rt.t) =
  let config =
    match max_steps with
    | None -> Trace.Runner.default_config
    | Some max_steps -> { Trace.Runner.default_config with max_steps }
  in
  let acc = create () in
  let outcome =
    Trace.Runner.stream ~config ~tick_period:w.Workloads.Rt.tick_period
      ~entry:w.Workloads.Rt.entry ~observer:(observe acc)
      w.Workloads.Rt.image
  in
  (points acc, outcome)

let of_workloads ?max_steps ws =
  List.fold_left
    (fun acc w -> Pset.union acc (fst (of_workload ?max_steps w)))
    Pset.empty ws

(* Deterministic per-class counts plus, against a baseline, the sorted
   list of newly reached points. *)
let table ?baseline set =
  let count pred = Pset.cardinal (Pset.filter pred set) in
  let b = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "coverage: %d points\n" (Pset.cardinal set);
  bpf "  forms       %4d\n" (count (function Form _ -> true | _ -> false));
  bpf "  ops         %4d\n" (count (function Op _ -> true | _ -> false));
  bpf "  flags       %4d\n" (count (function Flag _ -> true | _ -> false));
  bpf "  edges       %4d\n" (count (function Edge _ -> true | _ -> false));
  bpf "  exceptions  %4d (%d from delay slots)\n"
    (count (function Exn _ -> true | _ -> false))
    (count (function Exn_delay _ -> true | _ -> false));
  (match baseline with
   | None -> ()
   | Some base ->
     let fresh = Pset.diff set base in
     bpf "  new vs baseline: %d\n" (Pset.cardinal fresh);
     Pset.iter (fun p -> bpf "    + %s\n" (describe p)) fresh);
  Buffer.contents b
