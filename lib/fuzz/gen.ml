(* Weighted-template program generator. Every candidate is built from the
   same Rt scaffolding as the hand-written corpus (vector table, generic
   handlers, l.nop 1 exit) so the only variable is the main code body.
   All randomness flows from one Util.Prng stream seeded by (seed, index),
   which makes candidates pure values: same pair, same image. *)

module P = Util.Prng
module B = Isa.Asm.Build
module Rt = Workloads.Rt

let reserved_regs = [ 0; 1; 2; 9; 11; 26; 27 ]

(* Allocatable registers: everything outside the runtime convention. *)
let pool = [| 3; 4; 5; 6; 7; 8; 10; 12; 13; 14; 15; 16; 17; 18; 19; 20;
              21; 22; 23; 24; 25 |]

let reg rng = pool.(P.int rng (Array.length pool))

let rec reg_not rng avoid =
  let r = reg rng in
  if List.mem r avoid then reg_not rng avoid else r

(* --- instruction pickers ------------------------------------------- *)

let alu3_ops =
  [| B.add; B.addc; B.sub; B.and_; B.or_; B.xor; B.mul; B.mulu; B.div;
     B.divu; B.sll; B.srl; B.sra; B.ror |]

let alui_ops = [| B.addi; B.addic; B.andi; B.ori; B.xori; B.muli |]
let shifti_ops = [| B.slli; B.srli; B.srai; B.rori |]
let ext_ops = [| B.extbs; B.extbz; B.exths; B.exthz; B.extws; B.extwz |]

let sf3_ops =
  [| B.sfeq; B.sfne; B.sfgtu; B.sfgeu; B.sfltu; B.sfleu; B.sfgts;
     B.sfges; B.sflts; B.sfles |]

let sfi_ops =
  [| B.sfeqi; B.sfnei; B.sfgtui; B.sfgeui; B.sfltui; B.sfleui; B.sfgtsi;
     B.sfgesi; B.sfltsi; B.sflesi |]

let pick rng a = a.(P.int rng (Array.length a))

(* One straight-line compute instruction with destination outside
   [avoid] (loop counters, spin scratch). *)
let compute ?(avoid = []) rng =
  let rd = reg_not rng avoid in
  match P.int rng 4 with
  | 0 -> pick rng alu3_ops rd (reg rng) (reg rng)
  | 1 -> pick rng alui_ops rd (reg rng) (P.int rng 0x10000)
  | 2 -> pick rng shifti_ops rd (reg rng) (P.int rng 32)
  | _ -> pick rng ext_ops rd (reg rng)

(* --- templates ----------------------------------------------------- *)
(* Each template takes the stream and a unique label prefix and returns
   a self-contained item list: any label it defines carries the prefix,
   any loop it emits is bounded, and the runtime registers stay intact. *)

let t_alu rng _prefix =
  List.init (3 + P.int rng 5) (fun _ -> compute rng)

let t_cmp rng prefix =
  let skip = prefix ^ "_skip" in
  let cmp =
    if P.bool rng then pick rng sf3_ops (reg rng) (reg rng)
    else pick rng sfi_ops (reg rng) (P.int rng 0x10000)
  in
  let branch = if P.bool rng then B.bf skip else B.bnf skip in
  [ cmp; branch; compute rng; compute rng; B.label skip ]

let t_mem rng _prefix =
  List.concat
    (List.init
       (2 + P.int rng 4)
       (fun _ ->
          let rs = reg rng and rd = reg rng in
          match P.int rng 3 with
          | 0 ->
            let off = P.int rng 0x100 * 4 in
            [ B.sw off 2 rs; (if P.bool rng then B.lwz else B.lws) rd 2 off ]
          | 1 ->
            let off = P.int rng 0x400 in
            [ B.sb off 2 rs; (if P.bool rng then B.lbz else B.lbs) rd 2 off ]
          | _ ->
            let off = P.int rng 0x200 * 2 in
            [ B.sh off 2 rs; (if P.bool rng then B.lhz else B.lhs) rd 2 off ]))

let t_loop rng prefix =
  let top = prefix ^ "_top" in
  let ctr = reg rng in
  let bound = 2 + P.int rng 8 in
  let body = List.init (1 + P.int rng 3) (fun _ -> compute ~avoid:[ ctr ] rng) in
  [ B.li ctr 0; B.label top ]
  @ body
  @ [ B.addi ctr ctr 1; B.sfltui ctr bound; B.bf top; B.nop ]

let t_call rng prefix =
  let sub = prefix ^ "_sub" and after = prefix ^ "_done" in
  let body = List.init (1 + P.int rng 3) (fun _ -> compute rng) in
  let entry =
    if P.bool rng then [ B.jal sub; B.nop ]
    else
      let rx = reg rng in
      [ B.la rx sub; B.jalr rx; B.nop ]
  in
  entry
  @ [ B.j after; B.nop; B.label sub ]
  @ body
  @ [ B.jr 9; B.nop; B.label after ]

let t_spr rng _prefix =
  let rx = reg rng and ry = reg rng in
  B.li32 rx (P.u32 rng)
  @ [ B.mtspr 0 rx Rt.spr_eear; B.mfspr ry 0 Rt.spr_eear;
      B.mac (reg rng) (reg rng);
      (if P.bool rng then B.maci (reg rng) (P.int rng 0x10000)
       else B.msb (reg rng) (reg rng));
      B.macrc (reg rng);
      B.mtspr 0 rx Rt.spr_maclo; B.mfspr ry 0 Rt.spr_machi ]

(* Handlers skip a faulting load/store, so each of these retires through
   the alignment vector and continues. Varying the mnemonic is the point:
   it widens the (vector x program point) product. *)
let t_align rng _prefix =
  let ra = reg rng and rd = reg rng and rs = reg rng in
  match P.int rng 4 with
  | 0 ->
    let off = (P.int rng 0x200 * 2) + 1 in
    [ B.addi ra 2 off; (if P.bool rng then B.lhz else B.lhs) rd ra 0 ]
  | 1 ->
    let off = (P.int rng 0x100 * 4) + 1 + P.int rng 3 in
    [ B.addi ra 2 off; (if P.bool rng then B.lwz else B.lws) rd ra 0 ]
  | 2 ->
    let off = (P.int rng 0x100 * 4) + 1 + P.int rng 3 in
    [ B.addi ra 2 off; B.sw 0 ra rs ]
  | _ ->
    let off = (P.int rng 0x200 * 2) + 1 in
    [ B.addi ra 2 off; B.sh 0 ra rs ]

let t_illegal rng _prefix =
  let w0 = 0xEC00_0000 lor P.int rng 0x10000 in
  let w = if Isa.Code.decode w0 = None then w0 else 0xEC00_0000 in
  [ B.word w; compute rng ]

(* Enable OVE, overflow once, disable OVE — the vmlinux idiom, but with
   the faulting opcode drawn from {add, addi, sub, div-by-zero}. *)
let t_range rng _prefix =
  let rt = reg rng in
  let ra = reg_not rng [ rt ] in
  let rd = reg rng in
  let trigger =
    match P.int rng 4 with
    | 0 ->
      let rb = reg_not rng [ ra ] in
      B.li32 ra (0x7FFF_FFF0 + P.int rng 16)
      @ [ B.li rb (16 + P.int rng 0x100); B.add rd ra rb ]
    | 1 ->
      B.li32 ra (0x7FFF_FFF0 + P.int rng 16)
      @ [ B.addi rd ra (0x100 + P.int rng 0x100) ]
    | 2 ->
      let rb = reg_not rng [ ra ] in
      B.li32 ra (0x8000_0000 + P.int rng 16)
      @ [ B.li rb (16 + P.int rng 0x100); B.sub rd ra rb ]
    | _ -> B.li32 ra (P.u32 rng) @ [ B.div rd ra 0 ]
  in
  [ B.mfspr rt 0 Rt.spr_sr; B.ori rt rt 0x1000; B.mtspr 0 rt Rt.spr_sr ]
  @ trigger
  @ [ B.mfspr rt 0 Rt.spr_sr; B.andi rt rt 0xEFFF; B.mtspr 0 rt Rt.spr_sr ]

let t_sys rng _prefix =
  if P.bool rng then
    [ B.li 3 (P.int rng 0x100); B.li 4 (P.int rng 0x100);
      B.sys (P.int rng 512) ]
  else [ B.trap (P.int rng 32) ]

(* Loads/stores past the end of physical memory (2 MiB): the bus-error
   handler skips them. *)
let t_bus rng _prefix =
  let ra = reg rng in
  B.li32 ra (0x20_0000 + (P.int rng 0x1000 * 4))
  @ [ (if P.bool rng then B.lwz (reg rng) ra 0 else B.sw 0 ra (reg rng)) ]

(* l.jr to a misaligned target: alignment exception at the jump itself,
   handler skips to the delay slot and execution falls through. *)
let t_jr_misaligned rng prefix =
  let target = prefix ^ "_t" in
  let rx = reg rng in
  [ B.la rx target; B.ori rx rx 2; B.jr rx; B.nop; B.label target;
    compute rng ]

(* Enable the tick timer around a bounded spin so interrupts land mid
   loop; only emitted when the candidate traces with a tick period. *)
let t_tick_spin rng prefix =
  let top = prefix ^ "_top" in
  let rt = reg rng in
  let ctr = reg_not rng [ rt ] in
  let bound = 50 + P.int rng 100 in
  [ B.mfspr rt 0 Rt.spr_sr; B.ori rt rt 0x0002; B.mtspr 0 rt Rt.spr_sr;
    B.li ctr 0; B.label top;
    B.addi ctr ctr 1 ]
  @ [ compute ~avoid:[ ctr; rt ] rng ]
  @ [ B.sfltui ctr bound; B.bf top; B.nop;
      B.mfspr rt 0 Rt.spr_sr; B.andi rt rt 0xFFFD; B.mtspr 0 rt Rt.spr_sr ]

let templates =
  [| (4, t_alu); (4, t_cmp); (3, t_mem); (2, t_loop); (2, t_call);
     (2, t_spr); (2, t_align); (1, t_illegal); (1, t_range); (2, t_sys);
     (1, t_bus); (1, t_jr_misaligned) |]

let total_weight = Array.fold_left (fun a (w, _) -> a + w) 0 templates

let pick_template rng =
  let k = P.int rng total_weight in
  let rec go i k =
    let w, t = templates.(i) in
    if k < w then t else go (i + 1) (k - w)
  in
  go 0 k

(* --- candidates ---------------------------------------------------- *)

let candidate_name ~seed ~index = Printf.sprintf "fuzz-s%d-%03d" seed index

let candidate ~seed ~index =
  let rng = P.create ((seed * 1_000_003) + index) in
  let tick_period = if P.int rng 4 = 0 then 16 + P.int rng 48 else 0 in
  let inits =
    List.concat (List.init 6 (fun _ -> B.li32 (reg rng) (P.u32 rng)))
  in
  let blocks =
    List.concat
      (List.init
         (4 + P.int rng 5)
         (fun i -> (pick_template rng) rng (Printf.sprintf "f%d" i)))
  in
  let spin = if tick_period > 0 then t_tick_spin rng "tick" else [] in
  Rt.build
    ~name:(candidate_name ~seed ~index)
    ~tick_period
    (Rt.prologue @ inits @ blocks @ spin @ Rt.exit_program)
