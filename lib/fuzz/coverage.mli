(** The fuzzer's coverage map: behavioural points folded out of the
    {!Trace.Record.t} stream the miner already consumes.

    A point is one of
    - an opcode form observed ("alu", "load", ...),
    - a program point (mnemonic) observed,
    - a set-flag point with a specific flag outcome,
    - a delay-slot control-flow point with a taken/not-taken edge,
    - an exception vector entered at a specific program point, and
    - an exception vector entered from a branch delay slot (DSX set).

    The (vector x point) product is the axis with real headroom over the
    hand-written corpus: the 17 programs trigger every vector, but only
    from a handful of instructions each, while invariant quality tracks
    exactly this breadth (§3.5 — "increasing test coverage reduces the
    number of false positives"). *)

type point =
  | Form of string            (** opcode form executed ({!Isa.Insn.form}) *)
  | Op of string              (** program point: mnemonic or "illegal" *)
  | Flag of string * bool     (** set-flag point x resulting SR\[F\] *)
  | Edge of string * bool     (** delay-slot control point x taken *)
  | Exn of string * string    (** vector name x offending program point *)
  | Exn_delay of string       (** vector entered with DSX set *)

val compare_point : point -> point -> int

val describe : point -> string
(** One deterministic line, e.g. ["exn alignment @ l.lhz"]. *)

module Pset : Set.S with type elt = point

type t
(** A mutable accumulator, filled record by record. *)

val create : unit -> t

val observe : t -> Trace.Record.t -> unit
(** Fold one record — composable with any other observer. *)

val points : t -> Pset.t

val of_record : Trace.Record.t -> point list
(** The points one record contributes (the pure core of {!observe}). *)

val of_workload :
  ?max_steps:int -> Workloads.Rt.t -> Pset.t * Trace.Runner.outcome
(** Trace a workload and return its coverage set. [max_steps] bounds the
    run (default {!Trace.Runner.default_config}'s budget). *)

val of_workloads : ?max_steps:int -> Workloads.Rt.t list -> Pset.t
(** Union coverage of a corpus (the hand-written-baseline helper). *)

val table : ?baseline:Pset.t -> Pset.t -> string
(** A deterministic per-class summary table; with [baseline], also the
    sorted list of points absent from it. *)
