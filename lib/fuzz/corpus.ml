module Rt = Workloads.Rt

type entry = {
  workload : Rt.t;
  cov : Coverage.Pset.t;
  new_points : int;
}

type t = {
  seed : int;
  budget : int;
  max_steps : int;
  initial : Coverage.Pset.t;
  entries : entry list;
  total : Coverage.Pset.t;
  generated : int;
  timeouts : int;
  rejected : int;
}

let c_gen = Obs.Metrics.counter "fuzz.gen"
let c_accept = Obs.Metrics.counter "fuzz.accept"
let c_reject = Obs.Metrics.counter "fuzz.reject"
let c_timeout = Obs.Metrics.counter "fuzz.timeout"
let c_points = Obs.Metrics.counter "fuzz.coverage.points"
let c_new = Obs.Metrics.counter "fuzz.coverage.new"

(* Generated programs are a few hundred instructions with bounded loops;
   anything needing more steps than this is a runaway. *)
let default_max_steps = 50_000

let eval_candidate ?(max_steps = default_max_steps) w =
  let cov, outcome = Coverage.of_workload ~max_steps w in
  (cov, match outcome with `Max_steps -> `Timeout | `Halted _ -> `Ok)

let run ?(max_steps = default_max_steps) ?(initial = Coverage.Pset.empty)
    ~seed ~budget () =
  let state =
    ref
      { seed; budget; max_steps; initial; entries = []; total = initial;
        generated = 0; timeouts = 0; rejected = 0 }
  in
  for index = 0 to budget - 1 do
    let s = !state in
    let w = Gen.candidate ~seed ~index in
    Obs.Metrics.incr c_gen;
    let cov, status =
      Obs.Span.with_ ~name:"fuzz.candidate"
        ~attrs:[ ("workload", Obs.Sink.S w.Rt.name) ]
        (fun () -> eval_candidate ~max_steps w)
    in
    match status with
    | `Timeout ->
      (* A runaway candidate is never kept, whatever it covered: its
         trace would also blow the miner's budget. *)
      Obs.Metrics.incr c_timeout;
      state := { s with generated = s.generated + 1;
                        timeouts = s.timeouts + 1 }
    | `Ok ->
      let fresh = Coverage.Pset.diff cov s.total in
      if Coverage.Pset.is_empty fresh then begin
        Obs.Metrics.incr c_reject;
        state := { s with generated = s.generated + 1;
                          rejected = s.rejected + 1 }
      end
      else begin
        Obs.Metrics.incr c_accept;
        Obs.Metrics.add c_new (Coverage.Pset.cardinal fresh);
        state :=
          { s with
            generated = s.generated + 1;
            entries =
              s.entries
              @ [ { workload = w; cov;
                    new_points = Coverage.Pset.cardinal fresh } ];
            total = Coverage.Pset.union s.total cov }
      end
  done;
  Obs.Metrics.add c_points (Coverage.Pset.cardinal !state.total);
  !state

(* Drop entries whose coverage the rest of the corpus (plus the
   baseline) already implies. Newest-first order favours the small
   early accepts that bought the big coverage jumps. *)
let minimize t =
  let keep =
    List.fold_left
      (fun keep e ->
         let others =
           List.fold_left
             (fun acc e' ->
                if e' == e then acc else Coverage.Pset.union acc e'.cov)
             t.initial keep
         in
         if Coverage.Pset.subset t.total others then
           List.filter (fun e' -> e' != e) keep
         else keep)
      t.entries (List.rev t.entries)
  in
  { t with entries = keep }

let to_workloads t = List.map (fun e -> e.workload) t.entries
let names t = List.map (fun e -> e.workload.Rt.name) t.entries
let register t = List.iter Workloads.Suite.register (to_workloads t)
let new_points t = Coverage.Pset.diff t.total t.initial

let fingerprint t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
       Buffer.add_string b e.workload.Rt.name;
       Buffer.add_char b '\n';
       List.iter
         (fun (addr, word) -> Buffer.add_string b (Printf.sprintf "%x:%x " addr word))
         e.workload.Rt.image;
       Buffer.add_char b '\n')
    t.entries;
  Buffer.add_string b (Coverage.table ~baseline:t.initial t.total);
  Digest.to_hex (Digest.string (Buffer.contents b))

let report t =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "fuzz corpus: seed %d, budget %d, max_steps %d\n" t.seed t.budget
    t.max_steps;
  bpf "  generated %d  accepted %d  rejected %d  timeouts %d\n" t.generated
    (List.length t.entries) t.rejected t.timeouts;
  Buffer.add_string b (Coverage.table ~baseline:t.initial t.total);
  List.iter
    (fun e ->
       bpf "  %-16s %4d insns  +%d points\n" e.workload.Rt.name
         (List.length e.workload.Rt.image) e.new_points)
    t.entries;
  bpf "fingerprint: %s\n" (fingerprint t);
  Buffer.contents b
