(** The coverage-guided corpus loop.

    [run] draws [budget] candidates from {!Gen}, traces each one under a
    step budget, and keeps a candidate only if it reaches a coverage
    point ({!Coverage.point}) the corpus has not seen — including any
    [initial] baseline, typically the hand-written suite's coverage.
    Candidates that exhaust the step budget are rejected outright and
    counted separately ([fuzz.timeout]): a runaway program is a
    generator bug signal, never silent truncation.

    Telemetry: [fuzz.gen], [fuzz.accept], [fuzz.reject], [fuzz.timeout],
    [fuzz.coverage.points], [fuzz.coverage.new] counters and one
    [fuzz.candidate] span per candidate. *)

type entry = {
  workload : Workloads.Rt.t;
  cov : Coverage.Pset.t;        (** this program's own coverage *)
  new_points : int;             (** points it added when accepted *)
}

type t = {
  seed : int;
  budget : int;
  max_steps : int;
  initial : Coverage.Pset.t;    (** baseline the loop started from *)
  entries : entry list;         (** accepted programs, oldest first *)
  total : Coverage.Pset.t;      (** [initial] plus everything accepted *)
  generated : int;
  timeouts : int;
  rejected : int;
}

val default_max_steps : int
(** Per-candidate step budget (well under the miner's trace budget). *)

val eval_candidate :
  ?max_steps:int -> Workloads.Rt.t -> Coverage.Pset.t * [ `Ok | `Timeout ]
(** Trace one candidate under the step budget. *)

val run :
  ?max_steps:int -> ?initial:Coverage.Pset.t -> seed:int -> budget:int ->
  unit -> t
(** The corpus loop. Deterministic: same arguments, same result. *)

val minimize : t -> t
(** Greedily drop entries (newest first) whose coverage is implied by
    the rest; [total] is preserved exactly. *)

val to_workloads : t -> Workloads.Rt.t list
(** Accepted programs as ordinary suite entries, oldest first. *)

val names : t -> string list

val register : t -> unit
(** [Workloads.Suite.register] each accepted program, making the corpus
    minable by [Pipeline.mine ~groups] / [mine_invariants ~names]. *)

val new_points : t -> Coverage.Pset.t
(** [total - initial]: what generation bought over the baseline. *)

val fingerprint : t -> string
(** Hex digest over accepted names, images, and the coverage table —
    byte-identical runs have equal fingerprints. *)

val report : t -> string
(** Deterministic human-readable summary: loop statistics, the coverage
    table against [initial], and the accepted programs. *)
