(** The seeded OR1200 program generator.

    Programs are emitted from weighted templates — ALU/compare chains,
    load/store walks over a scratch region, branch+delay-slot idioms,
    bounded loops, subroutine calls, SPR and MAC traffic, and deliberate
    exception triggers (alignment, illegal, range, bus error, syscall,
    trap, misaligned register jumps) — over the same {!Isa.Asm.Build}
    combinators and {!Workloads.Rt} scaffolding the hand-written corpus
    uses, so every candidate is a well-formed workload: standard vector
    table, bounded loops only, and the l.nop 1 exit.

    Generation is a pure function of (seed, index): the same pair always
    produces byte-identical images, which is what makes the fuzz corpus
    snapshot-cacheable and every experiment reproducible. *)

val reserved_regs : int list
(** Registers the generator never allocates: r0 (zero), r1 (stack),
    r2 (data base), r9 (link), r11 (syscall result), r26/r27 (handler
    scratch). *)

val candidate_name : seed:int -> index:int -> string
(** ["fuzz-s<seed>-<index>"], the {!Workloads.Suite} registration name. *)

val candidate : seed:int -> index:int -> Workloads.Rt.t
(** The [index]-th candidate of stream [seed], assembled and ready to
    trace. Deterministic. *)
