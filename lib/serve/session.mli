(** One client session: a {!Scifinder_core.Pipeline.Session} plus
    idle-eviction bookkeeping, and the executor mapping protocol
    requests onto it. *)

type t

val create : ?cache_dir:string -> mine_jobs:int -> string -> t
(** [create name] — [mine_jobs]/[cache_dir] follow the
    {!Scifinder_core.Pipeline.Session.create} rules ([mine_jobs = 1]
    with no cache is the byte-identity reference configuration).
    [mine_jobs] also shards lake replays ([Proto.Lake] mines) into
    byte-balanced block spans; the merged engine — and the digest the
    response reports — is byte-identical to a sequential replay. *)

val name : t -> string
val records : t -> int
val sources : t -> int

val touch : t -> unit
val last_active : t -> float
(** Monotonic seconds ({!Obs.Clock.now_s}) of the last {!touch} /
    {!execute} — the idle-eviction clock. *)

val pipeline_session : t -> Scifinder_core.Pipeline.Session.t

val execute : t -> id:int -> Proto.request -> Proto.response
(** Run one job request against the session. Total: failures (unknown
    workloads, parse errors, corrupt segments, I/O) come back as
    [Proto.Failed]. Must only run one-at-a-time per session — the
    {!Scheduler} guarantees that. Control requests ([Status] / [Cancel]
    / [Shutdown]) are not executable here. *)
