(* Blocking client for the serve protocol — the substrate of the
   [scifinder client] subcommands, the serve test suite and the bench
   harness's synthetic clients. *)

exception Protocol_error of string

type t = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable next_id : int;
  mutable stash : Proto.response list;  (* out-of-order responses *)
}

let make fd = { fd; dec = Frame.decoder (); next_id = 1; stash = [] }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with _ -> ()); raise e);
  make fd

let connect_tcp ~host ~port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e -> (try Unix.close fd with _ -> ()); raise e);
  make fd

let connect_sockaddr sa =
  let domain =
    match sa with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e -> (try Unix.close fd with _ -> ()); raise e);
  make fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send t ?session request =
  let id = t.next_id in
  t.next_id <- id + 1;
  write_all t.fd
    (Frame.encode (Proto.encode_request { Proto.id; session; request }));
  id

let buf = Bytes.create 65536

(* One response straight off the socket, bypassing the stash. *)
let rec read_response t =
  match Frame.next t.dec with
  | `Frame payload ->
    (match Proto.decode_response payload with
     | Ok r -> r
     | Error m -> raise (Protocol_error ("bad response: " ^ m)))
  | `Error e -> raise (Protocol_error (Frame.error_message e))
  | `Await ->
    (match Unix.read t.fd buf 0 (Bytes.length buf) with
     | 0 -> raise (Protocol_error "connection closed by server")
     | n ->
       Frame.feed t.dec (Bytes.sub_string buf 0 n);
       read_response t
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_response t)

let recv t =
  match t.stash with
  | r :: rest ->
    t.stash <- rest;
    r
  | [] -> read_response t

let recv_id t id =
  let rec scan acc = function
    | [] -> None
    | r :: rest ->
      if Proto.response_id r = id then begin
        t.stash <- List.rev_append acc rest;
        Some r
      end
      else scan (r :: acc) rest
  in
  match scan [] t.stash with
  | Some r -> r
  | None ->
    let rec wait () =
      let r = read_response t in
      if Proto.response_id r = id then r
      else begin
        t.stash <- t.stash @ [ r ];
        wait ()
      end
    in
    wait ()

let call t ?session request =
  let id = send t ?session request in
  recv_id t id
