(* Fair round-robin job scheduler over a pool of worker domains.

   Each session owns a FIFO of pending jobs and runs at most ONE job at
   a time — session state (an incremental mining engine) is
   single-writer by construction, and responses to one session come back
   in submission order because [on_complete] fires before the session is
   marked idle again. Fairness is a rotating session order: whenever a
   worker takes a job it moves that session to the back, so one client
   pipelining hundreds of requests cannot starve the rest.

   Backpressure is a hard per-session bound on inflight jobs (queued +
   running): [submit] refuses with [`Busy] instead of queueing
   unboundedly, and the server turns that into an explicit wire
   response. *)

let h_wait = Obs.Metrics.histogram ~unit:"ns" "serve.job.wait_ns"
let h_run = Obs.Metrics.histogram ~unit:"ns" "serve.job.run_ns"
let h_total = Obs.Metrics.histogram ~unit:"ns" "serve.job.total_ns"
let c_jobs = Obs.Metrics.counter "serve.jobs"
let c_busy = Obs.Metrics.counter "serve.busy"
let g_depth = Obs.Metrics.gauge "serve.queue_depth"

type 'r job = {
  jsess : string;
  tag : int;
  key : int;
  work : unit -> 'r;
  submitted_ns : int64;
}

type 'r sess = {
  sname : string;
  jq : 'r job Queue.t;
  mutable running : bool;
}

type 'r t = {
  lock : Mutex.t;
  work_cond : Condition.t;
  idle_cond : Condition.t;
  sessions : (string, 'r sess) Hashtbl.t;
  mutable order : string list;  (* round-robin rotation, front = next up *)
  mutable stopping : bool;
  mutable inflight : int;       (* queued + running, across sessions *)
  mutable queued : int;
  mutable completed : int;
  mutable next_jid : int;
  max_inflight : int;
  on_complete : tag:int -> key:int -> 'r -> unit;
  mutable domains : unit Domain.t list;
}

let queue_depth t = float_of_int t.queued

(* First session in rotation order that is idle and has work; rotate it
   to the back so the next pick starts after it. Caller holds the lock. *)
let take t =
  let rec scan acc = function
    | [] -> None
    | name :: rest ->
      let s = Hashtbl.find t.sessions name in
      if (not s.running) && not (Queue.is_empty s.jq) then begin
        t.order <- List.rev_append acc (rest @ [ name ]);
        s.running <- true;
        let job = Queue.pop s.jq in
        t.queued <- t.queued - 1;
        Obs.Metrics.set g_depth (queue_depth t);
        Some job
      end
      else scan (name :: acc) rest
  in
  scan [] t.order

let rec worker t =
  Mutex.lock t.lock;
  let job =
    let rec await () =
      match take t with
      | Some job -> Some job
      | None ->
        if t.stopping && t.queued = 0 then None
        else begin
          Condition.wait t.work_cond t.lock;
          await ()
        end
    in
    await ()
  in
  Mutex.unlock t.lock;
  match job with
  | None -> ()
  | Some job ->
    let wait_ns = Int64.to_int (Obs.Clock.ns_since job.submitted_ns) in
    Obs.Metrics.observe h_wait wait_ns;
    let t0 = Obs.Clock.now_ns () in
    let r = job.work () in
    let run_ns = Int64.to_int (Obs.Clock.ns_since t0) in
    Obs.Metrics.observe h_run run_ns;
    Obs.Metrics.observe h_total (wait_ns + run_ns);
    (* Deliver BEFORE releasing the session: the session's next job
       cannot start — let alone complete — until this response is
       enqueued, so per-session response order is submission order. *)
    t.on_complete ~tag:job.tag ~key:job.key r;
    Mutex.lock t.lock;
    let s = Hashtbl.find t.sessions job.jsess in
    s.running <- false;
    t.inflight <- t.inflight - 1;
    t.completed <- t.completed + 1;
    Condition.broadcast t.work_cond;
    if t.inflight = 0 then Condition.broadcast t.idle_cond;
    Mutex.unlock t.lock;
    worker t

let create ~jobs ~max_inflight ~on_complete () =
  let t =
    { lock = Mutex.create ();
      work_cond = Condition.create ();
      idle_cond = Condition.create ();
      sessions = Hashtbl.create 17;
      order = [];
      stopping = false;
      inflight = 0;
      queued = 0;
      completed = 0;
      next_jid = 0;
      max_inflight = max 1 max_inflight;
      on_complete;
      domains = [] }
  in
  t.domains <- List.init (max 1 jobs) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t ~session ~tag ~key ~work =
  Mutex.protect t.lock (fun () ->
      if t.stopping then `Stopping
      else begin
        let s =
          match Hashtbl.find_opt t.sessions session with
          | Some s -> s
          | None ->
            let s = { sname = session; jq = Queue.create (); running = false } in
            Hashtbl.add t.sessions session s;
            t.order <- t.order @ [ session ];
            s
        in
        let depth = Queue.length s.jq + if s.running then 1 else 0 in
        if depth >= t.max_inflight then begin
          Obs.Metrics.incr c_busy;
          `Busy (depth, t.max_inflight)
        end
        else begin
          let jid = t.next_jid in
          t.next_jid <- jid + 1;
          Queue.add
            { jsess = s.sname; tag; key; work;
              submitted_ns = Obs.Clock.now_ns () }
            s.jq;
          t.inflight <- t.inflight + 1;
          t.queued <- t.queued + 1;
          Obs.Metrics.incr c_jobs;
          Obs.Metrics.set g_depth (queue_depth t);
          Condition.signal t.work_cond;
          `Queued jid
        end
      end)

let cancel t ~session ~key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | None -> []
      | Some s ->
        let keep = Queue.create () and dropped = ref [] in
        Queue.iter
          (fun job ->
             if job.key = key then dropped := (job.tag, job.key) :: !dropped
             else Queue.add job keep)
          s.jq;
        Queue.clear s.jq;
        Queue.transfer keep s.jq;
        let n = List.length !dropped in
        t.inflight <- t.inflight - n;
        t.queued <- t.queued - n;
        Obs.Metrics.set g_depth (queue_depth t);
        if t.inflight = 0 then Condition.broadcast t.idle_cond;
        List.rev !dropped)

let session_idle t session =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | None -> true
      | Some s -> (not s.running) && Queue.is_empty s.jq)

let forget t session =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | None -> true
      | Some s ->
        if s.running || not (Queue.is_empty s.jq) then false
        else begin
          Hashtbl.remove t.sessions session;
          t.order <-
            List.filter (fun n -> not (String.equal n session)) t.order;
          true
        end)

type stats = {
  queued : int;
  running : int;
  completed : int;
  per_session : (string * int * bool) list;  (* name, queued, running *)
}

let stats t =
  Mutex.protect t.lock (fun () ->
      let per_session =
        List.map
          (fun name ->
             let s = Hashtbl.find t.sessions name in
             (name, Queue.length s.jq, s.running))
          t.order
      in
      { queued = t.queued;
        running = t.inflight - t.queued;
        completed = t.completed;
        per_session })

let inflight t = Mutex.protect t.lock (fun () -> t.inflight)

let drain t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_cond;
  while t.inflight > 0 do
    Condition.wait t.idle_cond t.lock
  done;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []
