(* One client session: a [Pipeline.Session] plus idle-eviction
   bookkeeping, and the executor mapping protocol requests onto it.

   [execute] runs on a scheduler worker domain — the scheduler
   guarantees at most one job per session at a time, so the pipeline
   session is single-writer. It is total: every failure mode lands in a
   [Proto.Failed] response. *)

module Pipeline = Scifinder_core.Pipeline

type t = {
  name : string;
  ps : Pipeline.Session.t;
  mutable last_active : float;  (* Obs.Clock.now_s at last request *)
}

let create ?cache_dir ~mine_jobs name =
  { name;
    ps = Pipeline.Session.create ~jobs:mine_jobs ?cache_dir ();
    last_active = Obs.Clock.now_s () }

let name t = t.name
let touch t = t.last_active <- Obs.Clock.now_s ()
let last_active t = t.last_active
let records t = Pipeline.Session.record_count t.ps
let sources t = Pipeline.Session.source_count t.ps
let pipeline_session t = t.ps

let fail id fmt =
  Printf.ksprintf (fun message -> Proto.Failed { id; message }) fmt

let row_of (r : Pipeline.figure3_row) =
  { Proto.r_label = r.group_label;
    r_unmodified = r.unmodified;
    r_fresh = r.fresh;
    r_deleted = r.deleted;
    r_total = r.total }

let clamp lo hi v = max lo (min hi v)

(* Hostile inputs bound every generated corpus: a fuzz mine caps at 512
   candidates per request, a campaign at LASHED-campaign scale. *)
let max_fuzz_count = 512

let resolve_workloads = function
  | Proto.Names names ->
    let missing =
      List.filter (fun n -> Option.is_none (Workloads.Suite.by_name n)) names
    in
    (match (names, missing) with
     | [], _ -> Error "mine: empty workload list"
     | _, [] ->
       Ok
         (List.map
            (fun n -> Option.get (Workloads.Suite.by_name n))
            names)
     | _, missing ->
       Error ("unknown workload(s): " ^ String.concat ", " missing))
  | Proto.Fuzz { seed; count } ->
    if count < 1 then Error "fuzz: count must be positive"
    else if count > max_fuzz_count then
      Error (Printf.sprintf "fuzz: count exceeds limit %d" max_fuzz_count)
    else
      Ok (List.init count (fun index -> Fuzz.Gen.candidate ~seed ~index))
  | Proto.Lake _ -> Error "lake source resolved separately"

let execute_exn t ~id (req : Proto.request) : Proto.response =
  match req with
  | Proto.Mine { source = Proto.Lake dir; label = _; row; digest } ->
    (* With [mine_jobs > 1] this replay shards across the session's
       domain pool and merges back into the session engine — the digest
       reported below is byte-identical to a sequential replay, so
       serve == batch identity gates hold at any worker count. *)
    let m = Pipeline.Session.mine_lake t.ps dir in
    Proto.Mined
      { id;
        records = m.Pipeline.record_count;
        total_records = records t;
        rows = (if row then List.map row_of m.Pipeline.figure3 else []);
        invariants = List.length m.Pipeline.invariants;
        digest =
          (if digest then Some (Pipeline.Session.engine_digest t.ps)
           else None) }
  | Proto.Mine { source; label; row; digest } ->
    (match resolve_workloads source with
     | Error m -> fail id "%s" m
     | Ok ws ->
       let o = Pipeline.Session.mine t.ps ?label ~row ws in
       let invariants =
         (* The last row's total is the current invariant count; without
            a row, extraction was skipped and the count is unknown. *)
         match List.rev o.Pipeline.Session.o_rows with
         | last :: _ -> last.Pipeline.total
         | [] -> -1
       in
       Proto.Mined
         { id;
           records = o.Pipeline.Session.o_records;
           total_records = records t;
           rows = List.map row_of o.Pipeline.Session.o_rows;
           invariants;
           digest =
             (if digest then Some (Pipeline.Session.engine_digest t.ps)
              else None) })
  | Proto.Check { text } ->
    let invs = Invariant.Io.of_string text in
    let results = Pipeline.Session.check t.ps invs in
    let count st =
      List.length (List.filter (fun (_, s) -> s = st) results)
    in
    Proto.Checked
      { id;
        supported = count Pipeline.Session.Supported;
        violated = count Pipeline.Session.Violated;
        vacuous = count Pipeline.Session.Vacuous;
        statuses =
          List.map
            (fun (_, s) -> Pipeline.Session.check_status_name s)
            results }
  | Proto.Campaign { seed; mutants; triggers; tries } ->
    if records t = 0 then
      fail id "campaign: session has no mined corpus (mine first)"
    else begin
      let mutants = clamp 1 1000 mutants
      and triggers = clamp 1 128 triggers
      and tries = clamp 1 10 tries in
      let opt = Pipeline.optimize (Pipeline.Session.invariants t.ps) in
      let ident =
        Pipeline.identify
          ~invariants:opt.Pipeline.result.Invopt.Pipeline.optimized
          Bugs.Table1.all
      in
      let sci = ident.Pipeline.summary.Sci.Identify.unique_sci in
      let c = Pipeline.campaign ~seed ~mutants ~triggers ~tries ~sci () in
      Proto.Campaigned
        { id;
          mutants = c.Pipeline.mutant_total;
          detected = c.Pipeline.detected_total;
          fp_triggers = c.Pipeline.fp_trigger_count;
          fingerprint = c.Pipeline.fingerprint }
    end
  | Proto.Snapshot { path } ->
    Pipeline.Session.save t.ps path;
    let bytes = (Unix.stat path).Unix.st_size in
    Proto.Snapshotted
      { id; path; bytes; digest = Digest.to_hex (Digest.file path) }
  | Proto.Status | Proto.Cancel _ | Proto.Shutdown ->
    (* Control requests are answered inline by the server loop. *)
    fail id "control request cannot be scheduled"

let execute t ~id req =
  touch t;
  match execute_exn t ~id req with
  | r -> r
  | exception Invariant.Io.Parse_error (m, line) ->
    fail id "parse error at line %d: %s" line m
  | exception Trace.Segment.Corrupt_segment m -> fail id "corrupt segment: %s" m
  | exception Invalid_argument m -> fail id "%s" m
  | exception Failure m -> fail id "%s" m
  | exception Sys_error m -> fail id "%s" m
  | exception Unix.Unix_error (e, op, arg) ->
    fail id "%s: %s %s" op (Unix.error_message e) arg
  | exception exn -> fail id "internal error: %s" (Printexc.to_string exn)
