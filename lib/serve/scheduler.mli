(** Fair scheduler: per-session FIFOs served round-robin by a pool of
    worker domains, with a hard per-session inflight bound.

    Invariants the server leans on:
    - at most one job of a session runs at a time (session state is
      single-writer), and [on_complete] fires {e before} the session is
      released, so per-session completion order is submission order;
    - a session with a full inflight window (queued + running =
      [max_inflight]) gets [`Busy] back instead of an unbounded queue;
    - the rotation order advances past a session each time it is served,
      so a flood from one session cannot starve the others. *)

type 'r t

val create :
  jobs:int ->
  max_inflight:int ->
  on_complete:(tag:int -> key:int -> 'r -> unit) ->
  unit -> 'r t
(** Spawn [jobs] worker domains (at least 1). [on_complete] runs on a
    worker domain and must not raise; [tag]/[key] echo the values given
    to {!submit} (the server uses connection id / request id). *)

val submit :
  'r t -> session:string -> tag:int -> key:int -> work:(unit -> 'r) ->
  [ `Queued of int | `Busy of int * int | `Stopping ]
(** Enqueue [work] on [session] (created on first use). [`Busy (depth,
    limit)] when the session's inflight window is full. [work] runs on a
    worker domain and must not raise. *)

val cancel : 'r t -> session:string -> key:int -> (int * int) list
(** Drop every {e queued} job of [session] whose key is [key] (a running
    job is never interrupted). Returns the [(tag, key)] of each dropped
    job so the server can answer them. *)

val session_idle : 'r t -> string -> bool
(** No queued and no running job (an unknown session is idle). *)

val forget : 'r t -> string -> bool
(** Remove an idle session from the rotation; [false] (and no-op) if it
    still has work. Unknown sessions return [true]. *)

type stats = {
  queued : int;
  running : int;
  completed : int;
  per_session : (string * int * bool) list;
      (** (name, queued jobs, running), in current rotation order *)
}

val stats : 'r t -> stats

val inflight : 'r t -> int
(** Queued + running, across all sessions. *)

val drain : 'r t -> unit
(** Stop accepting ({!submit} returns [`Stopping]), run every queued job
    to completion, then join the worker domains. *)
