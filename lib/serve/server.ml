(* The persistent mining service: a single-threaded select loop owning
   every socket, with all job work on the scheduler's worker domains.

   Data flow: bytes in -> Frame.decoder -> Proto.decode_request ->
   either answered inline (control requests) or submitted to the
   scheduler. Workers push completed responses onto a mutex-protected
   queue and write one byte down the self-pipe, which wakes the select
   so the loop can serialise them onto the right connection — sockets
   are only ever touched by the loop thread.

   Shutdown (SIGINT/SIGTERM via [stop], or a Shutdown request) is
   graceful: stop accepting, let every queued job finish, drain every
   connection's output buffer, then join the workers and flush the
   global telemetry sink. *)

type listen = Unix_sock of string | Tcp of string * int

type config = {
  listen : listen;
  jobs : int;           (* scheduler worker domains *)
  max_inflight : int;   (* per-session queued+running bound *)
  idle_timeout : float; (* seconds; 0 disables eviction *)
  cache_dir : string option;
  mine_jobs : int;      (* per-session mining parallelism *)
}

let default_config listen =
  { listen;
    jobs = 2;
    max_inflight = 4;
    idle_timeout = 300.0;
    cache_dir = None;
    mine_jobs = 1 }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  dec : Frame.decoder;
  out : Buffer.t;
  mutable out_off : int;
  mutable closing : bool;  (* close once [out] drains *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  lock : Mutex.t;
  completions : (int * Proto.response) Queue.t;  (* (conn id, response) *)
  mutable sched : Proto.response Scheduler.t option;
  sessions : (string, Session.t) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  stop_flag : bool Atomic.t;
  mutable listen_open : bool;
  started_ns : int64;
  mutable busy_count : int;
  mutable evicted : int;
}

let c_evicted = Obs.Metrics.counter "serve.sessions_evicted"
let c_conns = Obs.Metrics.counter "serve.connections"
let g_sessions = Obs.Metrics.gauge "serve.sessions"

let listen_sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    Unix.ADDR_INET (addr, port)

let create cfg =
  (* A client vanishing mid-reply must surface as EPIPE on the write,
     not kill the whole process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let domain =
    match cfg.listen with
    | Unix_sock _ -> Unix.PF_UNIX
    | Tcp _ -> Unix.PF_INET
  in
  (match cfg.listen with
   | Unix_sock path when Sys.file_exists path -> (try Unix.unlink path with _ -> ())
   | _ -> ());
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.listen with
   | Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
   | Unix_sock _ -> ());
  Unix.bind listen_fd (listen_sockaddr cfg.listen);
  Unix.listen listen_fd 128;
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  (* Nonblocking writes: a full pipe already means a wakeup is pending,
     and a signal handler must never block here. *)
  Unix.set_nonblock wake_w;
  { cfg;
    listen_fd;
    wake_r;
    wake_w;
    lock = Mutex.create ();
    completions = Queue.create ();
    sched = None;
    sessions = Hashtbl.create 17;
    conns = Hashtbl.create 17;
    next_cid = 0;
    stop_flag = Atomic.make false;
    listen_open = true;
    started_ns = Obs.Clock.now_ns ();
    busy_count = 0;
    evicted = 0 }

let sockaddr t = Unix.getsockname t.listen_fd

(* Signal-safe: one atomic store and one pipe write. *)
let stop t =
  Atomic.set t.stop_flag true;
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '.') 0 1) with _ -> ()

let enqueue_response conn resp =
  Buffer.add_string conn.out (Frame.encode (Proto.encode_response resp))

let close_conn t conn =
  Hashtbl.remove t.conns conn.cid;
  try Unix.close conn.fd with _ -> ()

(* ---- Control requests, answered inline on the loop thread ---- *)

let stats_response t ~id =
  let s =
    match t.sched with
    | Some sched -> Scheduler.stats sched
    | None ->
      { Scheduler.queued = 0; running = 0; completed = 0; per_session = [] }
  in
  let sessions =
    Hashtbl.fold
      (fun name sess acc ->
         let queued, running =
           match
             List.find_opt
               (fun (n, _, _) -> String.equal n name)
               s.Scheduler.per_session
           with
           | Some (_, q, r) -> (q, r)
           | None -> (0, false)
         in
         { Proto.st_name = name;
           st_records = Session.records sess;
           st_sources = Session.sources sess;
           st_queued = queued;
           st_running = running }
         :: acc)
      t.sessions []
    |> List.sort (fun a b -> compare a.Proto.st_name b.Proto.st_name)
  in
  let p99_ms =
    float_of_int
      (Obs.Metrics.histogram_percentile
         (Obs.Metrics.histogram ~unit:"ns" "serve.job.total_ns") 0.99)
    /. 1e6
  in
  Proto.Stats
    { id;
      uptime_ms =
        Int64.to_int (Int64.div (Obs.Clock.ns_since t.started_ns) 1_000_000L);
      sessions;
      queued = s.Scheduler.queued;
      running = s.Scheduler.running;
      completed = s.Scheduler.completed;
      busy = t.busy_count;
      evicted = t.evicted;
      p99_job_ms = p99_ms }

let session_of t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> s
  | None ->
    let s =
      Session.create ?cache_dir:t.cfg.cache_dir ~mine_jobs:t.cfg.mine_jobs
        name
    in
    Hashtbl.add t.sessions name s;
    Obs.Metrics.set g_sessions (float_of_int (Hashtbl.length t.sessions));
    s

let handle_request t conn (env : Proto.envelope) =
  let sname = Option.value env.session ~default:"default" in
  match env.request with
  | Proto.Status -> enqueue_response conn (stats_response t ~id:env.id)
  | Proto.Cancel { target } ->
    let dropped =
      match t.sched with
      | None -> []
      | Some sched -> Scheduler.cancel sched ~session:sname ~key:target
    in
    (* Answer each dropped request on the connection that submitted it
       (it may be gone — then the answer is moot). *)
    List.iter
      (fun (tag, key) ->
         match Hashtbl.find_opt t.conns tag with
         | Some c ->
           enqueue_response c
             (Proto.Failed { id = key; message = "cancelled" })
         | None -> ())
      dropped;
    enqueue_response conn
      (Proto.Cancelled
         { id = env.id; target; found = dropped <> [] });
    (match Hashtbl.find_opt t.sessions sname with
     | Some s -> Session.touch s
     | None -> ())
  | Proto.Shutdown ->
    enqueue_response conn (Proto.Bye { id = env.id });
    Atomic.set t.stop_flag true
  | Proto.Mine _ | Proto.Check _ | Proto.Campaign _ | Proto.Snapshot _ ->
    let sess = session_of t sname in
    Session.touch sess;
    let sched =
      match t.sched with Some s -> s | None -> assert false
    in
    let id = env.id and req = env.request in
    (match
       Scheduler.submit sched ~session:sname ~tag:conn.cid ~key:env.id
         ~work:(fun () -> Session.execute sess ~id req)
     with
     | `Queued _ -> ()
     | `Busy (queued, limit) ->
       t.busy_count <- t.busy_count + 1;
       enqueue_response conn (Proto.Busy { id = env.id; queued; limit })
     | `Stopping ->
       enqueue_response conn
         (Proto.Failed { id = env.id; message = "server shutting down" }))

let handle_frame t conn payload =
  match Proto.decode_request payload with
  | Error m ->
    (* The frame was well-formed, so the stream is still in sync: report
       and keep the connection. *)
    enqueue_response conn
      (Proto.Failed { id = 0; message = "bad request: " ^ m })
  | Ok env -> handle_request t conn env

let read_chunk = Bytes.create 65536

let handle_readable t conn =
  let closed =
    match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> true
    | n ->
      Frame.feed conn.dec (Bytes.sub_string read_chunk 0 n);
      false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> false
    | exception Unix.Unix_error _ -> true
  in
  if closed then close_conn t conn
  else begin
    let rec drain () =
      if not conn.closing then
        match Frame.next conn.dec with
        | `Frame payload ->
          handle_frame t conn payload;
          drain ()
        | `Await -> ()
        | `Error e ->
          (* Framing is unrecoverable: answer once, flush, close. *)
          enqueue_response conn
            (Proto.Failed { id = 0; message = Frame.error_message e });
          conn.closing <- true
    in
    drain ()
  end

let handle_writable t conn =
  let data = Buffer.contents conn.out in
  let len = String.length data - conn.out_off in
  if len > 0 then begin
    match
      Unix.write_substring conn.fd data conn.out_off len
    with
    | n ->
      conn.out_off <- conn.out_off + n;
      if conn.out_off = String.length data then begin
        Buffer.clear conn.out;
        conn.out_off <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> close_conn t conn
  end;
  if conn.closing && Buffer.length conn.out = conn.out_off
     && Hashtbl.mem t.conns conn.cid
  then close_conn t conn

let accept_ready t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let cid = t.next_cid in
      t.next_cid <- cid + 1;
      Hashtbl.replace t.conns cid
        { fd; cid; dec = Frame.decoder (); out = Buffer.create 256;
          out_off = 0; closing = false };
      Obs.Metrics.incr c_conns;
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ()

let drain_completions t =
  let pending =
    Mutex.protect t.lock (fun () ->
        let l = List.of_seq (Queue.to_seq t.completions) in
        Queue.clear t.completions;
        l)
  in
  List.iter
    (fun (cid, resp) ->
       match Hashtbl.find_opt t.conns cid with
       | Some conn -> enqueue_response conn resp
       | None -> ())
    pending

let evict_idle t =
  if t.cfg.idle_timeout > 0.0 then begin
    let now = Obs.Clock.now_s () in
    let victims =
      Hashtbl.fold
        (fun name s acc ->
           if now -. Session.last_active s > t.cfg.idle_timeout then
             name :: acc
           else acc)
        t.sessions []
    in
    List.iter
      (fun name ->
         let idle =
           match t.sched with
           | None -> true
           | Some sched ->
             Scheduler.session_idle sched name
             && Scheduler.forget sched name
         in
         if idle then begin
           Hashtbl.remove t.sessions name;
           t.evicted <- t.evicted + 1;
           Obs.Metrics.incr c_evicted;
           Obs.Metrics.set g_sessions
             (float_of_int (Hashtbl.length t.sessions))
         end)
      victims
  end

let drain_wake_pipe t =
  let b = Bytes.create 64 in
  let rec loop () =
    match Unix.read t.wake_r b 0 64 with
    | _ -> loop ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  loop ()

let outstanding_output t =
  Hashtbl.fold
    (fun _ c acc -> acc || Buffer.length c.out > c.out_off)
    t.conns false

let run t =
  let sched =
    Scheduler.create ~jobs:t.cfg.jobs ~max_inflight:t.cfg.max_inflight
      ~on_complete:(fun ~tag ~key:_ resp ->
          Mutex.protect t.lock (fun () ->
              Queue.add (tag, resp) t.completions);
          wake t)
      ()
  in
  t.sched <- Some sched;
  let finished = ref false in
  while not !finished do
    let stopping = Atomic.get t.stop_flag in
    if stopping && t.listen_open then begin
      t.listen_open <- false;
      (try Unix.close t.listen_fd with _ -> ());
      (match t.cfg.listen with
       | Unix_sock path -> (try Unix.unlink path with _ -> ())
       | Tcp _ -> ())
    end;
    drain_completions t;
    if stopping
       && Scheduler.inflight sched = 0
       && not (outstanding_output t)
    then finished := true
    else begin
      let reads =
        t.wake_r
        :: (if t.listen_open then [ t.listen_fd ] else [])
        @ Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns []
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc ->
             if Buffer.length c.out > c.out_off then c.fd :: acc else acc)
          t.conns []
      in
      match Unix.select reads writes [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
        if List.mem t.wake_r readable then drain_wake_pipe t;
        if t.listen_open && List.mem t.listen_fd readable then
          accept_ready t;
        (* Snapshot: handlers mutate t.conns. *)
        let by_fd fd =
          Hashtbl.fold
            (fun _ c acc -> if c.fd = fd then Some c else acc)
            t.conns None
        in
        List.iter
          (fun fd ->
             if fd <> t.wake_r && (not t.listen_open || fd <> t.listen_fd)
             then
               match by_fd fd with
               | Some conn -> handle_readable t conn
               | None -> ())
          readable;
        drain_completions t;
        List.iter
          (fun fd ->
             match by_fd fd with
             | Some conn -> handle_writable t conn
             | None -> ())
          writable;
        (* Freshly queued output gets one immediate write attempt; what
           remains waits for the next writability round. *)
        Hashtbl.iter
          (fun _ conn ->
             if Buffer.length conn.out > conn.out_off
                && not (List.mem conn.fd writable)
             then handle_writable t conn)
          (Hashtbl.copy t.conns);
        evict_idle t
    end
  done;
  Scheduler.drain sched;
  drain_completions t;
  (* Final synchronous flush of any responses completed during drain. *)
  Hashtbl.iter
    (fun _ conn ->
       (try Unix.clear_nonblock conn.fd with _ -> ());
       let data = Buffer.contents conn.out in
       let len = String.length data - conn.out_off in
       if len > 0 then
         try ignore (Unix.write_substring conn.fd data conn.out_off len)
         with _ -> ())
    t.conns;
  Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with _ -> ()) t.conns;
  Hashtbl.reset t.conns;
  if t.listen_open then begin
    t.listen_open <- false;
    (try Unix.close t.listen_fd with _ -> ());
    match t.cfg.listen with
    | Unix_sock path -> (try Unix.unlink path with _ -> ())
    | Tcp _ -> ()
  end;
  (try Unix.close t.wake_r with _ -> ());
  (try Unix.close t.wake_w with _ -> ());
  Obs.Sink.flush (Obs.Sink.global ())
