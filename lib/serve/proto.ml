(* Request/response vocabulary of the mining service, with its JSON wire
   codec. Encoding reuses the telemetry JSON writers ([Obs.Sink]);
   decoding goes through [Obs.Json.parse], so hostile payloads surface
   as [Error _] — never as an escaping exception. *)

type mine_source =
  | Names of string list
  | Fuzz of { seed : int; count : int }
  | Lake of string

type request =
  | Mine of {
      source : mine_source;
      label : string option;
      row : bool;
      digest : bool;
    }
  | Check of { text : string }
  | Campaign of { seed : int; mutants : int; triggers : int; tries : int }
  | Snapshot of { path : string }
  | Status
  | Cancel of { target : int }
  | Shutdown

type envelope = { id : int; session : string option; request : request }

type row = {
  r_label : string;
  r_unmodified : int;
  r_fresh : int;
  r_deleted : int;
  r_total : int;
}

type session_stat = {
  st_name : string;
  st_records : int;
  st_sources : int;
  st_queued : int;
  st_running : bool;
}

type response =
  | Mined of {
      id : int;
      records : int;        (* added by this request *)
      total_records : int;  (* session total afterwards *)
      rows : row list;
      invariants : int;     (* -1 when extraction was skipped *)
      digest : string option;
    }
  | Checked of {
      id : int;
      supported : int;
      violated : int;
      vacuous : int;
      statuses : string list;  (* one per input invariant, in order *)
    }
  | Campaigned of {
      id : int;
      mutants : int;
      detected : int;
      fp_triggers : int;
      fingerprint : string;
    }
  | Snapshotted of { id : int; path : string; bytes : int; digest : string }
  | Stats of {
      id : int;
      uptime_ms : int;
      sessions : session_stat list;
      queued : int;
      running : int;
      completed : int;
      busy : int;     (* requests bounced with Busy since start *)
      evicted : int;  (* idle sessions evicted since start *)
      p99_job_ms : float;
    }
  | Cancelled of { id : int; target : int; found : bool }
  | Busy of { id : int; queued : int; limit : int }
  | Bye of { id : int }
  | Failed of { id : int; message : string }

let response_id = function
  | Mined { id; _ } | Checked { id; _ } | Campaigned { id; _ }
  | Snapshotted { id; _ } | Stats { id; _ } | Cancelled { id; _ }
  | Busy { id; _ } | Bye { id } | Failed { id; _ } ->
    id

(* ---- Encoding ---- *)

let buf_str = Obs.Sink.buf_add_json_string
let buf_float = Obs.Sink.buf_add_json_float

let buf_kv_int b key v =
  buf_str b key;
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int v)

let buf_kv_str b key v =
  buf_str b key;
  Buffer.add_char b ':';
  buf_str b v

let buf_kv_bool b key v =
  buf_str b key;
  Buffer.add_char b ':';
  Buffer.add_string b (if v then "true" else "false")

let encode_request (e : envelope) =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  buf_kv_int b "id" e.id;
  (match e.session with
   | None -> ()
   | Some s ->
     Buffer.add_char b ',';
     buf_kv_str b "session" s);
  Buffer.add_char b ',';
  (match e.request with
   | Mine { source; label; row; digest } ->
     buf_kv_str b "type" "mine";
     Buffer.add_char b ',';
     (match source with
      | Names names ->
        buf_str b "names";
        Buffer.add_string b ":[";
        List.iteri
          (fun i n ->
             if i > 0 then Buffer.add_char b ',';
             buf_str b n)
          names;
        Buffer.add_char b ']'
      | Fuzz { seed; count } ->
        buf_str b "fuzz";
        Buffer.add_string b ":{";
        buf_kv_int b "seed" seed;
        Buffer.add_char b ',';
        buf_kv_int b "count" count;
        Buffer.add_char b '}'
      | Lake dir -> buf_kv_str b "lake" dir);
     (match label with
      | None -> ()
      | Some l ->
        Buffer.add_char b ',';
        buf_kv_str b "label" l);
     Buffer.add_char b ',';
     buf_kv_bool b "row" row;
     Buffer.add_char b ',';
     buf_kv_bool b "digest" digest
   | Check { text } ->
     buf_kv_str b "type" "check";
     Buffer.add_char b ',';
     buf_kv_str b "text" text
   | Campaign { seed; mutants; triggers; tries } ->
     buf_kv_str b "type" "campaign";
     Buffer.add_char b ',';
     buf_kv_int b "seed" seed;
     Buffer.add_char b ',';
     buf_kv_int b "mutants" mutants;
     Buffer.add_char b ',';
     buf_kv_int b "triggers" triggers;
     Buffer.add_char b ',';
     buf_kv_int b "tries" tries
   | Snapshot { path } ->
     buf_kv_str b "type" "snapshot";
     Buffer.add_char b ',';
     buf_kv_str b "path" path
   | Status -> buf_kv_str b "type" "status"
   | Cancel { target } ->
     buf_kv_str b "type" "cancel";
     Buffer.add_char b ',';
     buf_kv_int b "target" target
   | Shutdown -> buf_kv_str b "type" "shutdown");
  Buffer.add_char b '}';
  Buffer.contents b

let encode_response (r : response) =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  (match r with
   | Mined { id; records; total_records; rows; invariants; digest } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "mined";
     Buffer.add_char b ',';
     buf_kv_int b "records" records;
     Buffer.add_char b ',';
     buf_kv_int b "total_records" total_records;
     Buffer.add_char b ',';
     buf_kv_int b "invariants" invariants;
     Buffer.add_char b ',';
     (match digest with
      | None ->
        buf_str b "digest";
        Buffer.add_string b ":null"
      | Some d -> buf_kv_str b "digest" d);
     Buffer.add_char b ',';
     buf_str b "rows";
     Buffer.add_string b ":[";
     List.iteri
       (fun i row ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          buf_kv_str b "label" row.r_label;
          Buffer.add_char b ',';
          buf_kv_int b "unmodified" row.r_unmodified;
          Buffer.add_char b ',';
          buf_kv_int b "fresh" row.r_fresh;
          Buffer.add_char b ',';
          buf_kv_int b "deleted" row.r_deleted;
          Buffer.add_char b ',';
          buf_kv_int b "total" row.r_total;
          Buffer.add_char b '}')
       rows;
     Buffer.add_char b ']'
   | Checked { id; supported; violated; vacuous; statuses } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "checked";
     Buffer.add_char b ',';
     buf_kv_int b "supported" supported;
     Buffer.add_char b ',';
     buf_kv_int b "violated" violated;
     Buffer.add_char b ',';
     buf_kv_int b "vacuous" vacuous;
     Buffer.add_char b ',';
     buf_str b "statuses";
     Buffer.add_string b ":[";
     List.iteri
       (fun i s ->
          if i > 0 then Buffer.add_char b ',';
          buf_str b s)
       statuses;
     Buffer.add_char b ']'
   | Campaigned { id; mutants; detected; fp_triggers; fingerprint } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "campaigned";
     Buffer.add_char b ',';
     buf_kv_int b "mutants" mutants;
     Buffer.add_char b ',';
     buf_kv_int b "detected" detected;
     Buffer.add_char b ',';
     buf_kv_int b "fp_triggers" fp_triggers;
     Buffer.add_char b ',';
     buf_kv_str b "fingerprint" fingerprint
   | Snapshotted { id; path; bytes; digest } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "snapshotted";
     Buffer.add_char b ',';
     buf_kv_str b "path" path;
     Buffer.add_char b ',';
     buf_kv_int b "bytes" bytes;
     Buffer.add_char b ',';
     buf_kv_str b "digest" digest
   | Stats
       { id; uptime_ms; sessions; queued; running; completed; busy;
         evicted; p99_job_ms } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "stats";
     Buffer.add_char b ',';
     buf_kv_int b "uptime_ms" uptime_ms;
     Buffer.add_char b ',';
     buf_kv_int b "queued" queued;
     Buffer.add_char b ',';
     buf_kv_int b "running" running;
     Buffer.add_char b ',';
     buf_kv_int b "completed" completed;
     Buffer.add_char b ',';
     buf_kv_int b "busy" busy;
     Buffer.add_char b ',';
     buf_kv_int b "evicted" evicted;
     Buffer.add_char b ',';
     buf_str b "p99_job_ms";
     Buffer.add_char b ':';
     buf_float b p99_job_ms;
     Buffer.add_char b ',';
     buf_str b "sessions";
     Buffer.add_string b ":[";
     List.iteri
       (fun i s ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          buf_kv_str b "name" s.st_name;
          Buffer.add_char b ',';
          buf_kv_int b "records" s.st_records;
          Buffer.add_char b ',';
          buf_kv_int b "sources" s.st_sources;
          Buffer.add_char b ',';
          buf_kv_int b "queued" s.st_queued;
          Buffer.add_char b ',';
          buf_kv_bool b "running" s.st_running;
          Buffer.add_char b '}')
       sessions;
     Buffer.add_char b ']'
   | Cancelled { id; target; found } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "cancelled";
     Buffer.add_char b ',';
     buf_kv_int b "target" target;
     Buffer.add_char b ',';
     buf_kv_bool b "found" found
   | Busy { id; queued; limit } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "busy";
     Buffer.add_char b ',';
     buf_kv_int b "queued" queued;
     Buffer.add_char b ',';
     buf_kv_int b "limit" limit
   | Bye { id } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "bye"
   | Failed { id; message } ->
     buf_kv_int b "id" id;
     Buffer.add_char b ',';
     buf_kv_str b "type" "error";
     Buffer.add_char b ',';
     buf_kv_str b "message" message);
  Buffer.add_char b '}';
  Buffer.contents b

(* ---- Decoding ---- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let as_int name = function
  | Obs.Json.Num f ->
    if Float.is_integer f && Float.abs f <= 1e15 then int_of_float f
    else fail "field %S is not an integer" name
  | _ -> fail "field %S is not a number" name

let as_str name = function
  | Obs.Json.Str s -> s
  | _ -> fail "field %S is not a string" name

let as_bool name = function
  | Obs.Json.Bool v -> v
  | _ -> fail "field %S is not a boolean" name

let req_field j name =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let int_field j name = as_int name (req_field j name)
let str_field j name = as_str name (req_field j name)

let opt_int_field j name ~default =
  match Obs.Json.member name j with
  | None | Some Obs.Json.Null -> default
  | Some v -> as_int name v

let opt_bool_field j name ~default =
  match Obs.Json.member name j with
  | None | Some Obs.Json.Null -> default
  | Some v -> as_bool name v

let opt_str_field j name =
  match Obs.Json.member name j with
  | None | Some Obs.Json.Null -> None
  | Some v -> Some (as_str name v)

let str_list_field j name =
  match req_field j name with
  | Obs.Json.Arr items ->
    List.mapi
      (fun i v ->
         match v with
         | Obs.Json.Str s -> s
         | _ -> fail "element %d of %S is not a string" i name)
      items
  | _ -> fail "field %S is not an array" name

let guard f s =
  match Obs.Json.parse s with
  | Error m -> Error (Printf.sprintf "invalid JSON: %s" m)
  | Ok j -> (try Ok (f j) with Bad m -> Error m)

let decode_request =
  guard (fun j ->
      let id = int_field j "id" in
      let session = opt_str_field j "session" in
      let request =
        match str_field j "type" with
        | "mine" ->
          let source =
            match
              ( Obs.Json.member "names" j,
                Obs.Json.member "fuzz" j,
                Obs.Json.member "lake" j )
            with
            | Some _, None, None -> Names (str_list_field j "names")
            | None, Some f, None ->
              Fuzz
                { seed = int_field f "seed"; count = int_field f "count" }
            | None, None, Some _ -> Lake (str_field j "lake")
            | _ -> fail "mine needs exactly one of names/fuzz/lake"
          in
          Mine
            { source;
              label = opt_str_field j "label";
              row = opt_bool_field j "row" ~default:true;
              digest = opt_bool_field j "digest" ~default:false }
        | "check" -> Check { text = str_field j "text" }
        | "campaign" ->
          Campaign
            { seed = opt_int_field j "seed" ~default:42;
              mutants = opt_int_field j "mutants" ~default:200;
              triggers = opt_int_field j "triggers" ~default:48;
              tries = opt_int_field j "tries" ~default:3 }
        | "snapshot" -> Snapshot { path = str_field j "path" }
        | "status" -> Status
        | "cancel" -> Cancel { target = int_field j "target" }
        | "shutdown" -> Shutdown
        | t -> fail "unknown request type %S" t
      in
      { id; session; request })

let decode_response =
  guard (fun j ->
      let id = int_field j "id" in
      match str_field j "type" with
      | "mined" ->
        let rows =
          match req_field j "rows" with
          | Obs.Json.Arr items ->
            List.map
              (fun r ->
                 { r_label = str_field r "label";
                   r_unmodified = int_field r "unmodified";
                   r_fresh = int_field r "fresh";
                   r_deleted = int_field r "deleted";
                   r_total = int_field r "total" })
              items
          | _ -> fail "field \"rows\" is not an array"
        in
        Mined
          { id;
            records = int_field j "records";
            total_records = int_field j "total_records";
            rows;
            invariants = int_field j "invariants";
            digest = opt_str_field j "digest" }
      | "checked" ->
        Checked
          { id;
            supported = int_field j "supported";
            violated = int_field j "violated";
            vacuous = int_field j "vacuous";
            statuses = str_list_field j "statuses" }
      | "campaigned" ->
        Campaigned
          { id;
            mutants = int_field j "mutants";
            detected = int_field j "detected";
            fp_triggers = int_field j "fp_triggers";
            fingerprint = str_field j "fingerprint" }
      | "snapshotted" ->
        Snapshotted
          { id;
            path = str_field j "path";
            bytes = int_field j "bytes";
            digest = str_field j "digest" }
      | "stats" ->
        let sessions =
          match req_field j "sessions" with
          | Obs.Json.Arr items ->
            List.map
              (fun s ->
                 { st_name = str_field s "name";
                   st_records = int_field s "records";
                   st_sources = int_field s "sources";
                   st_queued = int_field s "queued";
                   st_running = as_bool "running" (req_field s "running") })
              items
          | _ -> fail "field \"sessions\" is not an array"
        in
        let p99 =
          match req_field j "p99_job_ms" with
          | Obs.Json.Num f -> f
          | Obs.Json.Null -> Float.nan
          | _ -> fail "field \"p99_job_ms\" is not a number"
        in
        Stats
          { id;
            uptime_ms = int_field j "uptime_ms";
            sessions;
            queued = int_field j "queued";
            running = int_field j "running";
            completed = int_field j "completed";
            busy = int_field j "busy";
            evicted = int_field j "evicted";
            p99_job_ms = p99 }
      | "cancelled" ->
        Cancelled
          { id;
            target = int_field j "target";
            found = as_bool "found" (req_field j "found") }
      | "busy" ->
        Busy
          { id; queued = int_field j "queued"; limit = int_field j "limit" }
      | "bye" -> Bye { id }
      | "error" -> Failed { id; message = str_field j "message" }
      | t -> fail "unknown response type %S" t)
