(** The serve wire framing: ["<decimal length>\n<payload>\n"].

    The length prefix bounds every allocation before it happens and the
    trailing newline cross-checks it, so a hostile peer can neither make
    the decoder buffer unbounded garbage nor desynchronise it silently.
    Anything that is not a well-formed frame is a structured
    {!type-error} — decoding never raises. *)

val max_frame : int
(** Hard payload cap (16 MiB). A declared length above this is rejected
    before any payload is read. *)

val encode : string -> string
(** [encode payload] is the full frame, ready to write. *)

type error =
  | Oversized of int      (** declared length above {!max_frame} *)
  | Bad_length of string  (** length line not 1-9 ASCII digits *)
  | Bad_terminator        (** payload not followed by ['\n'] *)

val error_message : error -> string

(** {1 Incremental decoding}

    One decoder per connection. Feed whatever bytes arrive; pull frames
    until [`Await]. After [`Error] the stream cannot be resynchronised —
    report the error and disconnect. *)

type decoder

val decoder : unit -> decoder
val feed : decoder -> string -> unit

val next : decoder -> [ `Frame of string | `Await | `Error of error ]

val pending : decoder -> int
(** Unconsumed bytes buffered so far. *)
