(* Length-framed JSONL: "<decimal length>\n<payload>\n". The explicit
   length makes payload scanning O(1) per frame and lets the decoder
   reject a hostile length line before buffering a single payload byte;
   the trailing newline keeps the stream greppable and catches
   length/payload disagreement positively. *)

let max_frame = 16 * 1024 * 1024

(* Enough digits for [max_frame]; a longer run of digits (or any junk
   before the first newline) is hostile by construction. *)
let max_digits = 9

type error =
  | Oversized of int
  | Bad_length of string
  | Bad_terminator

let clip s = if String.length s <= 32 then s else String.sub s 0 32 ^ "..."

let error_message = function
  | Oversized n ->
    Printf.sprintf "frame length %d exceeds limit %d" n max_frame
  | Bad_length s -> Printf.sprintf "malformed frame length %S" (clip s)
  | Bad_terminator -> "frame payload not terminated by newline"

let encode payload =
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

(* Incremental decoder: bytes accumulate in [acc] and are consumed from
   [off]; the consumed prefix is compacted away once it outgrows 64 KiB,
   so a long-lived connection stays O(largest frame) in memory. *)
type decoder = {
  acc : Buffer.t;
  mutable off : int;
}

let decoder () = { acc = Buffer.create 4096; off = 0 }

let pending d = Buffer.length d.acc - d.off

let feed d s = Buffer.add_string d.acc s

let compact d =
  if d.off > 0 then begin
    let rest = Buffer.sub d.acc d.off (pending d) in
    Buffer.clear d.acc;
    Buffer.add_string d.acc rest;
    d.off <- 0
  end

let parse_length line =
  let n = String.length line in
  if n = 0 || n > max_digits then Error (Bad_length line)
  else begin
    let ok = ref true in
    String.iter (fun c -> if c < '0' || c > '9' then ok := false) line;
    if not !ok then Error (Bad_length line)
    else
      let v = int_of_string line in
      if v > max_frame then Error (Oversized v) else Ok v
  end

(* A decode error is sticky in spirit: the caller cannot resynchronise a
   stream whose framing lied, so it should report and disconnect. *)
let next d =
  let len = Buffer.length d.acc in
  let limit = min len (d.off + max_digits + 1) in
  let rec find_nl i =
    if i >= limit then None
    else if Buffer.nth d.acc i = '\n' then Some i
    else find_nl (i + 1)
  in
  match find_nl d.off with
  | None ->
    if len - d.off > max_digits then
      `Error (Bad_length (Buffer.sub d.acc d.off (min 16 (len - d.off))))
    else `Await
  | Some nl ->
    (match parse_length (Buffer.sub d.acc d.off (nl - d.off)) with
     | Error e -> `Error e
     | Ok n ->
       if len - (nl + 1) < n + 1 then `Await
       else if Buffer.nth d.acc (nl + 1 + n) <> '\n' then `Error Bad_terminator
       else begin
         let payload = Buffer.sub d.acc (nl + 1) n in
         d.off <- nl + 1 + n + 1;
         if d.off > 65536 then compact d;
         `Frame payload
       end)
