(** The serve protocol: request/response vocabulary and its JSON wire
    codec.

    One JSON object per {!Frame}; requests carry a client-chosen [id]
    that every response echoes (responses to one session come back in
    submission order, but a pipelining client should still match on
    [id]). Decoding is total: hostile bytes come back as [Error _],
    never as an exception. *)

type mine_source =
  | Names of string list        (** suite / registered workload names *)
  | Fuzz of { seed : int; count : int }
      (** [count] deterministic fuzz candidates of [seed] *)
  | Lake of string              (** a trace-lake directory on the server *)

type request =
  | Mine of {
      source : mine_source;
      label : string option;  (** Figure 3 row label (default: the names) *)
      row : bool;     (** extract and diff invariants (default true) *)
      digest : bool;  (** return the engine snapshot digest (default false) *)
    }
  | Check of { text : string }
      (** invariants in the {!Invariant.Io} text grammar, validated
          against everything the session has mined *)
  | Campaign of { seed : int; mutants : int; triggers : int; tries : int }
      (** run the mutant campaign against the session's optimised SCIs *)
  | Snapshot of { path : string }
      (** persist the session engine server-side *)
  | Status
  | Cancel of { target : int }
      (** drop the session's queued (not yet running) request [target] *)
  | Shutdown
      (** graceful: drains every queued job, then stops the server *)

type envelope = { id : int; session : string option; request : request }
(** [session] defaults to ["default"] server-side. *)

type row = {
  r_label : string;
  r_unmodified : int;
  r_fresh : int;
  r_deleted : int;
  r_total : int;
}

type session_stat = {
  st_name : string;
  st_records : int;
  st_sources : int;
  st_queued : int;
  st_running : bool;
}

type response =
  | Mined of {
      id : int;
      records : int;        (** added by this request *)
      total_records : int;  (** session total afterwards *)
      rows : row list;
      invariants : int;     (** [-1] when extraction was skipped *)
      digest : string option;
    }
  | Checked of {
      id : int;
      supported : int;
      violated : int;
      vacuous : int;
      statuses : string list;  (** one per input invariant, in order *)
    }
  | Campaigned of {
      id : int;
      mutants : int;
      detected : int;
      fp_triggers : int;
      fingerprint : string;
    }
  | Snapshotted of { id : int; path : string; bytes : int; digest : string }
  | Stats of {
      id : int;
      uptime_ms : int;
      sessions : session_stat list;
      queued : int;
      running : int;
      completed : int;
      busy : int;
      evicted : int;
      p99_job_ms : float;
    }
  | Cancelled of { id : int; target : int; found : bool }
  | Busy of { id : int; queued : int; limit : int }
      (** backpressure: the session's inflight queue is full; nothing
          was enqueued — resubmit after a response frees a slot *)
  | Bye of { id : int }
  | Failed of { id : int; message : string }

val response_id : response -> int

val encode_request : envelope -> string
val encode_response : response -> string

val decode_request : string -> (envelope, string) result
val decode_response : string -> (response, string) result
