(** Blocking client for the serve protocol. Not thread-safe: one client
    per domain. *)

exception Protocol_error of string
(** The server broke framing, sent undecodable JSON, or closed the
    connection mid-conversation. *)

type t

val connect_unix : string -> t
val connect_tcp : host:string -> port:int -> t
val connect_sockaddr : Unix.sockaddr -> t
val close : t -> unit

val send : t -> ?session:string -> Proto.request -> int
(** Fire one request (ids are allocated 1, 2, ... per connection) and
    return its id without waiting — the pipelining primitive. *)

val recv : t -> Proto.response
(** Next response in arrival order (stashed out-of-order responses
    first). Blocks. *)

val recv_id : t -> int -> Proto.response
(** The response to a specific {!send}, stashing any other responses
    that arrive first. *)

val call : t -> ?session:string -> Proto.request -> Proto.response
(** [send] + [recv_id]. *)
