(** The persistent mining service.

    One select loop owns every socket; jobs run on {!Scheduler} worker
    domains and completed responses come back to the loop over a
    self-pipe. Per-client sessions hold incremental engine state
    ({!Scifinder_core.Pipeline.Session}), are served fair round-robin,
    refuse work beyond a bounded inflight window with an explicit
    [Busy], and are evicted after [idle_timeout] of inactivity. *)

type listen = Unix_sock of string | Tcp of string * int

type config = {
  listen : listen;
  jobs : int;            (** scheduler worker domains *)
  max_inflight : int;    (** per-session queued+running bound *)
  idle_timeout : float;  (** seconds; [0.] disables eviction *)
  cache_dir : string option;
      (** shard + lake warm cache for every session *)
  mine_jobs : int;       (** per-session mining parallelism; [1] is the
                             byte-identity reference *)
}

val default_config : listen -> config
(** 2 workers, inflight window 4, 300 s idle timeout, no cache,
    [mine_jobs = 1]. *)

type t

val create : config -> t
(** Bind and listen (unlinking a stale Unix socket path first). Raises
    [Unix.Unix_error] if the address is unavailable. *)

val sockaddr : t -> Unix.sockaddr
(** The bound address — resolves the real port of [Tcp (_, 0)]. *)

val run : t -> unit
(** Serve until {!stop} or a [Shutdown] request, then shut down
    gracefully: stop accepting, run every queued job, drain every
    connection's output, join the workers, flush the global telemetry
    sink, and remove the socket. Blocks; spawn a domain to run
    alongside other work. *)

val stop : t -> unit
(** Request graceful shutdown. Async-signal-safe (one atomic store and
    one nonblocking pipe write) — install it directly as the
    SIGINT/SIGTERM handler. *)
