(** The SPECS-like runtime monitor (§2): assertions stay in the fabricated
    design and watch the named signals at every instruction boundary.
    Here they consume the same records the miner sees — each record
    carries both the sampled and the previous-cycle values, so
    [next(...,1)] templates check directly. *)

type firing = {
  assertion : Ovl.t;
  step : int;                (** index of the offending record *)
  record : Trace.Record.t;
}

val run : Ovl.t list -> Trace.Record.t list -> firing list
(** Every firing, in trace order; firings at the same step come out in
    input (battery) order. *)

val first_firing : Ovl.t list -> Trace.Record.t list -> firing option
(** The first firing in trace order, evaluating no further records once
    it is found. [step] of the result is the detection latency in
    retired instructions. *)

val detects : Ovl.t list -> Trace.Record.t list -> bool
(** The dynamic-verification verdict of Table 3 and §5.6;
    short-circuits via {!first_firing}. *)

val fired_assertions : Ovl.t list -> Trace.Record.t list -> Ovl.t list
(** The distinct assertions that fired at least once. *)
