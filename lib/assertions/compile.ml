(* Compiling assertion batteries to specialized closures.

   [Expr.violated] interprets the invariant AST per evaluation: match on
   the body, match on each term, bounds-checked Record.get, plus a
   String.equal point guard. Here the AST is walked once at compile time
   and each assertion becomes one flat [Trace.Record.t -> bool] that
   returns the VIOLATED polarity directly:

     - constant subterms fold (Imm op Imm bodies become a preboxed bool;
       Mod with k = 0 folds to the constant 0 the interpreter defines);
     - the dominant mined shapes (var-vs-imm and var-vs-var comparisons)
       open-code the comparison against r.values.(i) with no closure
       chain;
     - In-sets are sorted, deduped int arrays probed by binary search
       (semantically List.mem: an empty set is always violated);
     - everything else composes the two compiled term readers through
       the same Expr.eval_cmp the oracle uses.

   Point dispatch copies the mining engine's interning trick: batches
   live in a point-keyed table behind a one-entry last-point cache, and
   because trace points are per-branch mnemonic literals, the
   String.equal in the cache check usually short-circuits on physical
   equality. Straight-line code between taken branches keeps hitting the
   cache without touching the table. *)

module Expr = Invariant.Expr

(* ---- term compilation ---- *)

(* A compiled operand: either a folded constant, a bare variable read
   (kept symbolic so comparisons can open-code it), or a residual
   function. *)
type cterm =
  | Const of int
  | Read of int
  | Fn of (Trace.Record.t -> int)

let cterm = function
  | Expr.Imm k -> Const k
  | Expr.V id -> Read id
  | Expr.Mul (id, k) ->
    Fn (fun r -> Util.U32.mul r.Trace.Record.values.(id) k)
  | Expr.Mod (_, 0) -> Const 0       (* the interpreter's k = 0 convention *)
  | Expr.Mod (id, k) -> Fn (fun r -> r.Trace.Record.values.(id) mod k)
  | Expr.Notv id -> Fn (fun r -> Util.U32.lognot r.Trace.Record.values.(id))
  | Expr.Bin (op, a, b) ->
    (match op with
     | Expr.Band -> Fn (fun r ->
         let v = r.Trace.Record.values in v.(a) land v.(b))
     | Expr.Bor -> Fn (fun r ->
         let v = r.Trace.Record.values in v.(a) lor v.(b))
     | Expr.Plus -> Fn (fun r ->
         let v = r.Trace.Record.values in Util.U32.add v.(a) v.(b))
     | Expr.Minus -> Fn (fun r ->
         let v = r.Trace.Record.values in
         Util.U32.signed (Util.U32.sub v.(a) v.(b))))

let force = function
  | Const k -> fun _ -> k
  | Read i -> fun (r : Trace.Record.t) -> r.Trace.Record.values.(i)
  | Fn f -> f

(* ---- body compilation: closures return VIOLATED ---- *)

let compile_cmp op ta tb =
  match ta, tb with
  | Const a, Const b ->
    let v = not (Expr.eval_cmp op a b) in
    fun _ -> v
  | Read i, Const k ->
    (match op with
     | Expr.Eq -> fun (r : Trace.Record.t) -> r.Trace.Record.values.(i) <> k
     | Expr.Ne -> fun r -> r.Trace.Record.values.(i) = k
     | Expr.Lt -> fun r -> r.Trace.Record.values.(i) >= k
     | Expr.Le -> fun r -> r.Trace.Record.values.(i) > k
     | Expr.Gt -> fun r -> r.Trace.Record.values.(i) <= k
     | Expr.Ge -> fun r -> r.Trace.Record.values.(i) < k)
  | Const k, Read i ->
    (match op with
     | Expr.Eq -> fun (r : Trace.Record.t) -> k <> r.Trace.Record.values.(i)
     | Expr.Ne -> fun r -> k = r.Trace.Record.values.(i)
     | Expr.Lt -> fun r -> k >= r.Trace.Record.values.(i)
     | Expr.Le -> fun r -> k > r.Trace.Record.values.(i)
     | Expr.Gt -> fun r -> k <= r.Trace.Record.values.(i)
     | Expr.Ge -> fun r -> k < r.Trace.Record.values.(i))
  | Read i, Read j ->
    (match op with
     | Expr.Eq -> fun (r : Trace.Record.t) ->
         let v = r.Trace.Record.values in v.(i) <> v.(j)
     | Expr.Ne -> fun r -> let v = r.Trace.Record.values in v.(i) = v.(j)
     | Expr.Lt -> fun r -> let v = r.Trace.Record.values in v.(i) >= v.(j)
     | Expr.Le -> fun r -> let v = r.Trace.Record.values in v.(i) > v.(j)
     | Expr.Gt -> fun r -> let v = r.Trace.Record.values in v.(i) <= v.(j)
     | Expr.Ge -> fun r -> let v = r.Trace.Record.values in v.(i) < v.(j))
  | _ ->
    let fa = force ta and fb = force tb in
    (match op with
     | Expr.Eq -> fun r -> fa r <> fb r
     | Expr.Ne -> fun r -> fa r = fb r
     | Expr.Lt -> fun r -> fa r >= fb r
     | Expr.Le -> fun r -> fa r > fb r
     | Expr.Gt -> fun r -> fa r <= fb r
     | Expr.Ge -> fun r -> fa r < fb r)

let compile_in ta values =
  let set = Array.of_list (List.sort_uniq compare values) in
  let n = Array.length set in
  let member =
    if n = 0 then fun _ -> false
    else if n = 1 then (let k = set.(0) in fun x -> x = k)
    else if n <= 8 then
      fun x ->
        let rec go i = i < n && (set.(i) = x || go (i + 1)) in
        go 0
    else
      fun x ->
        let rec bisect lo hi =
          if lo >= hi then false
          else begin
            let mid = (lo + hi) / 2 in
            let v = set.(mid) in
            if v = x then true
            else if v < x then bisect (mid + 1) hi
            else bisect lo mid
          end
        in
        bisect 0 n
  in
  match ta with
  | Const k -> let v = not (member k) in fun _ -> v
  | Read i -> fun (r : Trace.Record.t) -> not (member r.Trace.Record.values.(i))
  | Fn f -> fun r -> not (member (f r))

let compile_body = function
  | Expr.Cmp (op, lhs, rhs) -> compile_cmp op (cterm lhs) (cterm rhs)
  | Expr.In (term, values) -> compile_in (cterm term) values

(* ---- the compiled battery ---- *)

type slot = {
  s_index : int;                           (* position in the battery *)
  s_assertion : Ovl.t;
  s_violated : Trace.Record.t -> bool;
  s_fired : Obs.Metrics.counter;           (* resolved once, at compile *)
}

type t = {
  battery : Ovl.t array;
  by_point : (string, slot array) Hashtbl.t;
  empty : slot array;
  mutable last_point : string;
  mutable last_batch : slot array;
}

let c_records = Obs.Metrics.counter "monitor.compiled.records"
let c_evals = Obs.Metrics.counter "monitor.compiled.evaluations"
let c_firings = Obs.Metrics.counter "monitor.compiled.firings"
let h_run_ns = Obs.Metrics.histogram ~unit:"ns" "monitor.compiled.run_ns"

let compile assertions =
  let battery = Array.of_list assertions in
  let order = Hashtbl.create 64 in
  Array.iteri
    (fun i (a : Ovl.t) ->
       let slot =
         { s_index = i;
           s_assertion = a;
           s_violated = compile_body a.Ovl.invariant.Expr.body;
           s_fired = Obs.Metrics.counter ("monitor.fired." ^ a.Ovl.name) }
       in
       let point = a.Ovl.invariant.Expr.point in
       Hashtbl.replace order point
         (slot :: Option.value ~default:[] (Hashtbl.find_opt order point)))
    battery;
  let by_point = Hashtbl.create 64 in
  Hashtbl.iter
    (fun point slots ->
       Hashtbl.replace by_point point (Array.of_list (List.rev slots)))
    order;
  { battery; by_point; empty = [||]; last_point = "\000"; last_batch = [||] }

let size t = Array.length t.battery

(* Interned-point dispatch: the cache check is a String.equal that hits
   physical equality for per-branch mnemonic literals, so straight-line
   trace sections never touch the hashtable. *)
let batch_for t point =
  if String.equal point t.last_point then t.last_batch
  else begin
    let batch =
      match Hashtbl.find_opt t.by_point point with
      | Some b -> b
      | None -> t.empty
    in
    t.last_point <- point;
    t.last_batch <- batch;
    batch
  end

let run t records =
  let t0 = Obs.Clock.now_ns () in
  let nrecords = ref 0 and nevals = ref 0 and nfirings = ref 0 in
  let firings = ref [] in
  List.iteri
    (fun step (record : Trace.Record.t) ->
       incr nrecords;
       let batch = batch_for t record.Trace.Record.point in
       let n = Array.length batch in
       for i = 0 to n - 1 do
         incr nevals;
         let slot = Array.unsafe_get batch i in
         if slot.s_violated record then begin
           incr nfirings;
           Obs.Metrics.incr slot.s_fired;
           firings :=
             { Monitor.assertion = slot.s_assertion; step; record }
             :: !firings
         end
       done)
    records;
  Obs.Metrics.add c_records !nrecords;
  Obs.Metrics.add c_evals !nevals;
  Obs.Metrics.add c_firings !nfirings;
  Obs.Metrics.observe h_run_ns (Int64.to_int (Obs.Clock.ns_since t0));
  List.rev !firings

let check_mask t = function
  | None -> None
  | Some mask ->
    if Array.length mask <> size t then
      invalid_arg "Compile.first_firing: mask length <> battery size";
    Some mask

let first_firing ?ignore t records =
  let ignore = check_mask t ignore in
  let t0 = Obs.Clock.now_ns () in
  let nrecords = ref 0 and nevals = ref 0 in
  let live slot =
    match ignore with None -> true | Some m -> not m.(slot.s_index)
  in
  let rec scan step = function
    | [] -> None
    | (record : Trace.Record.t) :: rest ->
      incr nrecords;
      let batch = batch_for t record.Trace.Record.point in
      let n = Array.length batch in
      let rec probe i =
        if i >= n then scan (step + 1) rest
        else begin
          let slot = Array.unsafe_get batch i in
          if live slot then begin
            incr nevals;
            if slot.s_violated record then begin
              Obs.Metrics.incr slot.s_fired;
              Obs.Metrics.add c_firings 1;
              Some { Monitor.assertion = slot.s_assertion; step; record }
            end
            else probe (i + 1)
          end
          else probe (i + 1)
        end
      in
      probe 0
  in
  let result = scan 0 records in
  Obs.Metrics.add c_records !nrecords;
  Obs.Metrics.add c_evals !nevals;
  Obs.Metrics.observe h_run_ns (Int64.to_int (Obs.Clock.ns_since t0));
  result

let detects ?ignore t records = first_firing ?ignore t records <> None

let fired_set t records =
  let fired = Array.make (size t) false in
  List.iter
    (fun (record : Trace.Record.t) ->
       let batch = batch_for t record.Trace.Record.point in
       Array.iter
         (fun slot ->
            if not fired.(slot.s_index) && slot.s_violated record then
              fired.(slot.s_index) <- true)
         batch)
    records;
  fired

let fired_assertions t records =
  let fired = fired_set t records in
  let out = ref [] in
  for i = size t - 1 downto 0 do
    if fired.(i) then out := t.battery.(i) :: !out
  done;
  !out
