(* The SPECS-like runtime monitor: assertions are "kept in the design
   through synthesis" and watch the named signals on every instruction
   boundary (§2). Here the monitor consumes the same instruction-boundary
   records the miner sees — each record carries both the sampled and the
   previous-cycle (orig) values, so next(.., 1) templates check directly.

   This is the interpretive *reference oracle*: the specialized path in
   [Compile] must produce the same firing list, and the equality is pinned
   by tests and the mutbench gate. *)

type firing = {
  assertion : Ovl.t;
  step : int;           (* index of the offending record *)
  record : Trace.Record.t;
}

(* Aggregate monitor telemetry, folded in once per [run] call. The
   per-assertion evaluation timing (the Table 8 per-assertion-cost
   analogue) costs two clock reads per (record, assertion) evaluation, so
   it only runs when a real sink is installed. *)
let c_records = Obs.Metrics.counter "monitor.records"
let c_evals = Obs.Metrics.counter "monitor.evaluations"
let c_firings = Obs.Metrics.counter "monitor.firings"
let h_run_ns = Obs.Metrics.histogram "monitor.run_ns"

(* Everything an assertion needs per evaluation, resolved once at setup:
   the fired counter used to be looked up (string concat + registry probe)
   per firing in a post-run loop, and per-point batches were built by
   consing into Hashtbl.replace, which reversed the input assertion order
   within a step. Batches are arrays in input order now, so firings at the
   same step come out in battery order. *)
type slot = {
  s_assertion : Ovl.t;
  s_fired : Obs.Metrics.counter;
  s_hist : Obs.Metrics.histogram option;
}

let prepare assertions =
  let timing = Obs.Sink.enabled () in
  let order = Hashtbl.create 64 in
  List.iter
    (fun (a : Ovl.t) ->
       let point = a.invariant.Invariant.Expr.point in
       let slot =
         { s_assertion = a;
           s_fired = Obs.Metrics.counter ("monitor.fired." ^ a.Ovl.name);
           s_hist =
             if timing then
               Some (Obs.Metrics.histogram ("monitor.assert_ns." ^ a.Ovl.name))
             else None }
       in
       Hashtbl.replace order point
         (slot :: Option.value ~default:[] (Hashtbl.find_opt order point)))
    assertions;
  let by_point = Hashtbl.create 64 in
  Hashtbl.iter
    (fun point slots ->
       Hashtbl.replace by_point point (Array.of_list (List.rev slots)))
    order;
  by_point

let eval_slot slot record =
  match slot.s_hist with
  | None -> Invariant.Expr.violated slot.s_assertion.Ovl.invariant record
  | Some h ->
    let e0 = Obs.Clock.now_ns () in
    let v = Invariant.Expr.violated slot.s_assertion.Ovl.invariant record in
    Obs.Metrics.observe h (Int64.to_int (Obs.Clock.ns_since e0));
    v

(* Check one assertion battery against a trace; returns every firing (one
   per assertion per offending step). *)
let run assertions records =
  let t0 = Obs.Clock.now_ns () in
  let by_point = prepare assertions in
  let nrecords = ref 0 and nevals = ref 0 and nfirings = ref 0 in
  let firings = ref [] in
  List.iteri
    (fun step (record : Trace.Record.t) ->
       incr nrecords;
       match Hashtbl.find_opt by_point record.Trace.Record.point with
       | None -> ()
       | Some batch ->
         Array.iter
           (fun slot ->
              incr nevals;
              if eval_slot slot record then begin
                incr nfirings;
                Obs.Metrics.incr slot.s_fired;
                firings :=
                  { assertion = slot.s_assertion; step; record } :: !firings
              end)
           batch)
    records;
  Obs.Metrics.add c_records !nrecords;
  Obs.Metrics.add c_evals !nevals;
  Obs.Metrics.add c_firings !nfirings;
  Obs.Metrics.observe h_run_ns (Int64.to_int (Obs.Clock.ns_since t0));
  List.rev !firings

(* The short-circuit path: stop at the first firing instead of
   materializing every firing across the whole trace. The step index of
   the result is the detection latency in retired instructions. *)
let first_firing assertions records =
  let t0 = Obs.Clock.now_ns () in
  let by_point = prepare assertions in
  let nrecords = ref 0 and nevals = ref 0 in
  let rec scan step = function
    | [] -> None
    | (record : Trace.Record.t) :: rest ->
      incr nrecords;
      (match Hashtbl.find_opt by_point record.Trace.Record.point with
       | None -> scan (step + 1) rest
       | Some batch ->
         let n = Array.length batch in
         let rec probe i =
           if i >= n then scan (step + 1) rest
           else begin
             incr nevals;
             let slot = batch.(i) in
             if eval_slot slot record then begin
               Obs.Metrics.incr slot.s_fired;
               Obs.Metrics.add c_firings 1;
               Some { assertion = slot.s_assertion; step; record }
             end
             else probe (i + 1)
           end
         in
         probe 0)
  in
  let result = scan 0 records in
  Obs.Metrics.add c_records !nrecords;
  Obs.Metrics.add c_evals !nevals;
  Obs.Metrics.observe h_run_ns (Int64.to_int (Obs.Clock.ns_since t0));
  result

(* Does any assertion fire on this trace? The dynamic-verification verdict
   used by Table 3's "Detected" column and the §5.6 experiment. *)
let detects assertions records = first_firing assertions records <> None

(* Distinct assertions that fired at least once. *)
let fired_assertions assertions records =
  let firings = run assertions records in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun f ->
       if Hashtbl.mem seen f.assertion.Ovl.name then None
       else begin
         Hashtbl.replace seen f.assertion.Ovl.name ();
         Some f.assertion
       end)
    firings
