(* The SPECS-like runtime monitor: assertions are "kept in the design
   through synthesis" and watch the named signals on every instruction
   boundary (§2). Here the monitor consumes the same instruction-boundary
   records the miner sees — each record carries both the sampled and the
   previous-cycle (orig) values, so next(.., 1) templates check directly. *)

type firing = {
  assertion : Ovl.t;
  step : int;           (* index of the offending record *)
  record : Trace.Record.t;
}

(* Aggregate monitor telemetry, folded in once per [run] call. The
   per-assertion evaluation timing (the Table 8 per-assertion-cost
   analogue) costs two clock reads per (record, assertion) evaluation, so
   it only runs when a real sink is installed. *)
let c_records = Obs.Metrics.counter "monitor.records"
let c_evals = Obs.Metrics.counter "monitor.evaluations"
let c_firings = Obs.Metrics.counter "monitor.firings"
let h_run_ns = Obs.Metrics.histogram "monitor.run_ns"

(* Check one assertion battery against a trace; returns every firing (one
   per assertion per offending step). *)
let run assertions records =
  let t0 = Obs.Clock.now_ns () in
  let timing = Obs.Sink.enabled () in
  let by_point = Hashtbl.create 64 in
  List.iter
    (fun (a : Ovl.t) ->
       let point = a.invariant.Invariant.Expr.point in
       Hashtbl.replace by_point point
         (a :: Option.value ~default:[] (Hashtbl.find_opt by_point point)))
    assertions;
  let assert_hist =
    if not timing then fun _ -> None
    else begin
      let by_name = Hashtbl.create 64 in
      fun (a : Ovl.t) ->
        match Hashtbl.find_opt by_name a.Ovl.name with
        | Some h -> Some h
        | None ->
          let h = Obs.Metrics.histogram ("monitor.assert_ns." ^ a.Ovl.name) in
          Hashtbl.add by_name a.Ovl.name h;
          Some h
    end
  in
  let nrecords = ref 0 and nevals = ref 0 in
  let firings = ref [] in
  List.iteri
    (fun step (record : Trace.Record.t) ->
       incr nrecords;
       match Hashtbl.find_opt by_point record.Trace.Record.point with
       | None -> ()
       | Some batch ->
         List.iter
           (fun (a : Ovl.t) ->
              incr nevals;
              let violated =
                match assert_hist a with
                | None -> Invariant.Expr.violated a.invariant record
                | Some h ->
                  let e0 = Obs.Clock.now_ns () in
                  let v = Invariant.Expr.violated a.invariant record in
                  Obs.Metrics.observe h
                    (Int64.to_int (Obs.Clock.ns_since e0));
                  v
              in
              if violated then
                firings := { assertion = a; step; record } :: !firings)
           batch)
    records;
  let firings = List.rev !firings in
  Obs.Metrics.add c_records !nrecords;
  Obs.Metrics.add c_evals !nevals;
  Obs.Metrics.add c_firings (List.length firings);
  List.iter
    (fun f ->
       Obs.Metrics.incr
         (Obs.Metrics.counter ("monitor.fired." ^ f.assertion.Ovl.name)))
    firings;
  Obs.Metrics.observe h_run_ns (Int64.to_int (Obs.Clock.ns_since t0));
  firings

(* Does any assertion fire on this trace? The dynamic-verification verdict
   used by Table 3's "Detected" column and the §5.6 experiment. *)
let detects assertions records = run assertions records <> []

(* Distinct assertions that fired at least once. *)
let fired_assertions assertions records =
  let firings = run assertions records in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun f ->
       if Hashtbl.mem seen f.assertion.Ovl.name then None
       else begin
         Hashtbl.replace seen f.assertion.Ovl.name ();
         Some f.assertion
       end)
    firings
