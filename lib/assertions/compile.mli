(** The compiled assertion monitor: each mined SCI becomes one flat
    specialized [Trace.Record.t -> bool] closure (constants folded,
    membership sets pre-sorted, common comparison shapes open-coded), and
    records dispatch to their per-point assertion batch through an
    interned point table fronted by a last-point cache — the same
    technique the mining engine uses, exploiting the fact that trace
    points are per-branch mnemonic literals so [String.equal] usually
    hits on physical equality. Monitor cost per retired instruction
    approaches a function call.

    The interpretive {!Monitor} is the reference oracle: for any battery
    and trace, [run] returns exactly the firing list [Monitor.run]
    returns (same assertions, same steps, same order). That equality is
    pinned by a QCheck property and by the mutbench CI gate. *)

type t

val compile : Ovl.t list -> t
(** Compile a battery. Cost is linear in the battery and paid once;
    amortized over every trace the battery is checked against. *)

val size : t -> int
(** Number of assertions in the compiled battery. *)

val run : t -> Trace.Record.t list -> Monitor.firing list
(** Every firing, identical to [Monitor.run] on the source battery. *)

val first_firing : ?ignore:bool array -> t -> Trace.Record.t list ->
  Monitor.firing option
(** The first firing in trace order, evaluating no further records once
    it is found; [step] is the detection latency in retired
    instructions. [ignore.(i)] masks the [i]-th battery assertion
    (clean-run discounting in the mutant campaign: an assertion that
    already fires on the clean processor detects nothing). Raises
    [Invalid_argument] when the mask length is not [size t]. *)

val detects : ?ignore:bool array -> t -> Trace.Record.t list -> bool

val fired_set : t -> Trace.Record.t list -> bool array
(** [fired_set t records].(i) is whether the [i]-th battery assertion
    fires anywhere in the trace — the clean-run mask fed back to
    [first_firing ~ignore]. *)

val fired_assertions : t -> Trace.Record.t list -> Ovl.t list
(** The distinct assertions that fired at least once, in battery order. *)
