(* Textual persistence of invariant sets.

   The paper's Table 8 notes that "a full Invariant Generation step is
   only performed once and all subsequent generation is incremental" —
   which requires saving the mined set. The format is exactly the paper
   notation the pretty-printer emits, one invariant per line:

     risingEdge(l.rfe) -> SR = orig(ESR0)
     risingEdge(l.sys) -> PC = 0xC00
     risingEdge(l.add) -> (PC - orig(PC)) = 4
     risingEdge(l.lwz) -> EA in {0x8000, 0x8004}

   Lines starting with '#' and blank lines are ignored, so saved sets can
   be annotated and hand-curated (the paper's envisioned usage: "experts
   would validate them before putting into a processor"). *)

module Expr = Expr

exception Parse_error of string * int (* message, line number *)

(* ---- writing ---- *)

let to_channel oc invariants =
  output_string oc "# SCIFinder invariant set\n";
  output_string oc (Printf.sprintf "# %d invariants\n" (List.length invariants));
  List.iter
    (fun inv ->
       output_string oc (Expr.to_string inv);
       output_char oc '\n')
    invariants

let save path invariants =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc)
    (fun () -> to_channel oc invariants)

(* ---- variable-name table ---- *)

let id_of_name =
  lazy
    (let table = Hashtbl.create 256 in
     List.iter
       (fun id -> Hashtbl.replace table (Trace.Var.id_name id) id)
       Trace.Var.all_ids;
     table)

let lookup_var line_no name =
  match Hashtbl.find_opt (Lazy.force id_of_name) name with
  | Some id -> id
  | None -> raise (Parse_error ("unknown variable " ^ name, line_no))

(* ---- tokenizer ---- *)

type token =
  | Tword of string          (* variable names, operators, keywords *)
  | Tint of int
  | Tlparen | Trparen
  | Tlbrace | Trbrace
  | Tcomma

(* The printed format has no spaces inside a token except that grouping
   parentheses attach to their first/last word ("(PC", "orig(PC))").
   Tokenise by whitespace after padding braces/commas, then peel
   unbalanced parentheses off the word edges ("orig(PC)" is balanced and
   stays whole). *)
let tokenize line_no s =
  let padded = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '{' -> Buffer.add_string padded " { "
       | '}' -> Buffer.add_string padded " } "
       | ',' -> Buffer.add_string padded " , "
       | c -> Buffer.add_char padded c)
    s;
  let words =
    String.split_on_char ' ' (Buffer.contents padded)
    |> List.filter (fun w -> w <> "")
  in
  let out = ref [] in
  let emit t = out := t :: !out in
  let count c w =
    String.fold_left (fun acc d -> if d = c then acc + 1 else acc) 0 w
  in
  let emit_core w =
    match w with
    | "{" -> emit Tlbrace
    | "}" -> emit Trbrace
    | "," -> emit Tcomma
    | w ->
      (match int_of_string_opt w with
       | Some v -> emit (Tint v)
       | None ->
         if w = "" then raise (Parse_error ("empty token", line_no))
         else emit (Tword w))
  in
  List.iter
    (fun w ->
       (* peel leading grouping parens *)
       let w = ref w in
       while String.length !w > 1 && !w.[0] = '('
             && count '(' !w > count ')' !w do
         emit Tlparen;
         w := String.sub !w 1 (String.length !w - 1)
       done;
       (* peel trailing grouping parens *)
       let trailing = ref 0 in
       while String.length !w > 1 && !w.[String.length !w - 1] = ')'
             && count ')' !w > count '(' !w do
         incr trailing;
         w := String.sub !w 0 (String.length !w - 1)
       done;
       emit_core !w;
       for _ = 1 to !trailing do emit Trparen done)
    words;
  List.rev !out

(* ---- parser ---- *)

let parse_line line_no line =
  let prefix = "risingEdge(" in
  let plen = String.length prefix in
  if String.length line <= plen || String.sub line 0 plen <> prefix then
    raise (Parse_error ("expected risingEdge(...)", line_no));
  let close =
    match String.index_opt line ')' with
    | Some i -> i
    | None -> raise (Parse_error ("unterminated point", line_no))
  in
  let point = String.sub line plen (close - plen) in
  let rest = String.sub line (close + 1) (String.length line - close - 1) in
  let rest = String.trim rest in
  let arrow = "-> " in
  if String.length rest < 3 || String.sub rest 0 2 <> "->" then
    raise (Parse_error ("expected ->", line_no));
  let body_str =
    String.trim (String.sub rest 2 (String.length rest - 2))
  in
  ignore arrow;
  let tokens = ref (tokenize line_no body_str) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () = match !tokens with [] -> () | _ :: r -> tokens := r in
  let expect_word w =
    match peek () with
    | Some (Tword s) when s = w -> advance ()
    | _ -> raise (Parse_error ("expected " ^ w, line_no))
  in
  (* term := '(' VAR op2 VAR ')' | 'not' VAR | VAR ['*' INT | 'mod' INT]
           | INT *)
  let parse_term () =
    match peek () with
    | Some (Tint v) -> advance (); Expr.Imm v
    | Some Tlparen ->
      advance ();
      let a =
        match peek () with
        | Some (Tword w) -> advance (); lookup_var line_no w
        | _ -> raise (Parse_error ("expected variable", line_no))
      in
      let op =
        match peek () with
        | Some (Tword "and") -> advance (); Expr.Band
        | Some (Tword "or") -> advance (); Expr.Bor
        | Some (Tword "+") -> advance (); Expr.Plus
        | Some (Tword "-") -> advance (); Expr.Minus
        | _ -> raise (Parse_error ("expected binary operator", line_no))
      in
      let b =
        match peek () with
        | Some (Tword w) -> advance (); lookup_var line_no w
        | _ -> raise (Parse_error ("expected variable", line_no))
      in
      (match peek () with
       | Some Trparen -> advance ()
       | _ -> raise (Parse_error ("expected )", line_no)));
      Expr.Bin (op, a, b)
    | Some (Tword "not") ->
      advance ();
      (match peek () with
       | Some (Tword w) -> advance (); Expr.Notv (lookup_var line_no w)
       | _ -> raise (Parse_error ("expected variable after not", line_no)))
    | Some (Tword w) ->
      advance ();
      let id = lookup_var line_no w in
      (match peek () with
       | Some (Tword "*") ->
         advance ();
         (match peek () with
          | Some (Tint k) -> advance (); Expr.Mul (id, k)
          | _ -> raise (Parse_error ("expected scale constant", line_no)))
       | Some (Tword "mod") ->
         advance ();
         (match peek () with
          | Some (Tint k) -> advance (); Expr.Mod (id, k)
          | _ -> raise (Parse_error ("expected modulus", line_no)))
       | _ -> Expr.V id)
    | _ -> raise (Parse_error ("expected term", line_no))
  in
  let lhs = parse_term () in
  let body =
    match peek () with
    | Some (Tword "in") ->
      advance ();
      (match peek () with
       | Some Tlbrace -> advance ()
       | _ -> raise (Parse_error ("expected {", line_no)));
      let values = ref [] in
      let rec loop () =
        match peek () with
        | Some (Tint v) ->
          advance ();
          values := v :: !values;
          (match peek () with
           | Some Tcomma -> advance (); loop ()
           | Some Trbrace -> advance ()
           | _ -> raise (Parse_error ("expected , or }", line_no)))
        | Some Trbrace -> advance ()
        | _ -> raise (Parse_error ("expected set member", line_no))
      in
      loop ();
      Expr.In (lhs, List.rev !values)
    | Some (Tword op) ->
      let cmp =
        match op with
        | "=" -> Expr.Eq | "!=" -> Expr.Ne
        | "<" -> Expr.Lt | "<=" -> Expr.Le
        | ">" -> Expr.Gt | ">=" -> Expr.Ge
        | other -> raise (Parse_error ("unknown comparison " ^ other, line_no))
      in
      advance ();
      let rhs = parse_term () in
      Expr.Cmp (cmp, lhs, rhs)
    | _ -> raise (Parse_error ("expected comparison or in", line_no))
  in
  ignore expect_word;
  (match peek () with
   | None -> ()
   | Some _ -> raise (Parse_error ("trailing tokens", line_no)));
  { Expr.point; body }

let of_string s =
  let lines = String.split_on_char '\n' s in
  List.concat
    (List.mapi
       (fun idx line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then []
          else [ parse_line (idx + 1) line ])
       lines)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () ->
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       (* Name the offending file: load-time parse errors surface to CLI
          users, who may be several saved invariant sets deep. *)
       try of_string s with
       | Parse_error (msg, line) ->
         raise (Parse_error (Printf.sprintf "%s: %s" path msg, line)))
