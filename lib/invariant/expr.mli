(** Invariant expressions, following the paper's Figure 2 grammar:

    {v
    EXPR  := OPER OP1 OPER | OPER in {imm, ...}
    OPER  := VAR | orig(VAR) | imm
    OP1   := = | <> | < | <= | > | >=
    VAR   := GPR | SPR | flag | mem_address | VAR x imm
           | not VAR | VAR mod imm | VAR OP2 VAR
    OP2   := and | or | + | -
    v}

    Variables are {!Trace.Var.id}s; the orig()/post distinction is encoded
    in the id space. An invariant is a program point (instruction
    mnemonic) and a body: [risingEdge(point) -> body]. *)

type op2 = Band | Bor | Plus | Minus

type term =
  | V of Trace.Var.id
  | Imm of int
  | Mul of Trace.Var.id * int          (** VAR x imm *)
  | Mod of Trace.Var.id * int          (** VAR mod imm *)
  | Notv of Trace.Var.id               (** bitwise not *)
  | Bin of op2 * Trace.Var.id * Trace.Var.id

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type body =
  | Cmp of cmp * term * term
  | In of term * int list              (** OPER in {imm, ...} *)

type t = { point : string; body : body }

val eval_term : Trace.Record.t -> term -> int
(** [Bin Minus] evaluates as the sign-interpreted 32-bit difference so
    "Y - X = imm" means a consistent machine-level offset. *)

val eval_cmp : cmp -> int -> int -> bool

val holds : t -> Trace.Record.t -> bool
(** True on records of other program points (vacuous implication). *)

val violated : t -> Trace.Record.t -> bool

val body_holds : body -> Trace.Record.t -> bool
(** Body evaluation with no point guard, for callers that have already
    dispatched the record to this invariant's program point. *)

val holds_here : t -> Trace.Record.t -> bool
val violated_here : t -> Trace.Record.t -> bool
(** [violated_here t r = not (body_holds t.body r)]: equal to {!violated}
    whenever [r.point = t.point]. *)

val term_vars : term -> Trace.Var.id list
val body_vars : body -> Trace.Var.id list
val vars : t -> Trace.Var.id list

val var_occurrences : t -> int
(** The unit counted in the paper's Table 2 "Variables" row. *)

val has_immediate : t -> bool

val op2_name : op2 -> string
val cmp_name : cmp -> string

val canon_term : term -> string
(** Sorted-postfix rendering of a side, the unit of the §3.2.2
    canonical form. *)

val canon_body : body -> string

val canonical : t -> string
(** The equivalence-class key: lhs OP rhs with OP in [{>, >=, =, <>}]
    (< and <= are flipped), symmetric operators sorted, prefixed by the
    program point. *)

val pp_term : Format.formatter -> term -> unit
val pp_body : Format.formatter -> body -> unit

val pp : Format.formatter -> t -> unit
(** The paper's notation: ["risingEdge(l.rfe) -> SR = orig(ESR0)"]. *)

val to_string : t -> string

val equal : t -> t -> bool
(** Canonical-form equality. *)

val compare : t -> t -> int
