(** Textual persistence of invariant sets, in the exact paper notation the
    pretty-printer emits (one invariant per line; ['#'] comments and blank
    lines ignored). Supports the paper's Table 8 workflow — generation
    runs once, later phases re-load the saved set — and hand curation by
    experts before deployment. *)

exception Parse_error of string * int
(** Message and 1-based line number. *)

val to_channel : out_channel -> Expr.t list -> unit

val save : string -> Expr.t list -> unit

val of_string : string -> Expr.t list
(** @raise Parse_error on malformed input. *)

val load : string -> Expr.t list
(** @raise Parse_error on malformed input, with the offending file path
    in the message.
    @raise Sys_error when unreadable. *)
