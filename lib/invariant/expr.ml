(* Invariant expressions, following the grammar of Figure 2:

     EXPR  := OPER OP1 OPER | OPER in {imm, ...}
     OPER  := VAR | orig(VAR) | imm
     OP1   := = | <> | < | <= | > | >=
     VAR   := GPR | SPR | flag | mem_address | VAR x imm
            | not VAR | VAR mod imm | VAR OP2 VAR
     OP2   := and | or | + | -

   Variables are [Trace.Var.id]s; the orig()/post distinction is encoded in
   the id space. An invariant is a program point (instruction mnemonic) and
   a body: risingEdge(point) -> body. *)

type op2 = Band | Bor | Plus | Minus

type term =
  | V of Trace.Var.id
  | Imm of int
  | Mul of Trace.Var.id * int          (* VAR x imm *)
  | Mod of Trace.Var.id * int          (* VAR mod imm *)
  | Notv of Trace.Var.id               (* bitwise not VAR *)
  | Bin of op2 * Trace.Var.id * Trace.Var.id

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type body =
  | Cmp of cmp * term * term
  | In of term * int list              (* OPER in {imm, ...} *)

type t = { point : string; body : body }

(* ---- Evaluation against a trace record ----

   u32-kinded variables hold non-negative ints and are compared in unsigned
   order; Diff-kinded derived variables hold exact signed ints and are only
   ever compared with immediates, so a plain int comparison is correct for
   both. Bin(Minus) is evaluated as the sign-interpreted 32-bit difference
   so that "Y - X = imm" means a consistent machine-level offset. *)

let eval_term record term =
  let v id = Trace.Record.get record id in
  match term with
  | V id -> v id
  | Imm k -> k
  | Mul (id, k) -> Util.U32.mul (v id) k
  | Mod (id, k) -> if k = 0 then 0 else v id mod k
  | Notv id -> Util.U32.lognot (v id)
  | Bin (op, a, b) ->
    let va = v a and vb = v b in
    (match op with
     | Band -> va land vb
     | Bor -> va lor vb
     | Plus -> Util.U32.add va vb
     | Minus -> Util.U32.signed (Util.U32.sub va vb))

let eval_cmp op a b =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

(* Body evaluation with no point guard: for callers that have already
   dispatched the record to this invariant's program point (the checker's
   and the monitors' per-point indexes), where the String.equal test is
   dead weight on the hot path. *)
let body_holds body record =
  match body with
  | Cmp (op, lhs, rhs) ->
    eval_cmp op (eval_term record lhs) (eval_term record rhs)
  | In (term, values) ->
    let x = eval_term record term in
    List.mem x values

let holds_here t record = body_holds t.body record
let violated_here t record = not (body_holds t.body record)

(* Does the invariant hold on this record? Records at other program points
   are vacuously satisfied (risingEdge of another instruction). *)
let holds t record =
  if not (String.equal t.point record.Trace.Record.point) then true
  else body_holds t.body record

let violated t record = not (holds t record)

(* ---- Structural helpers ---- *)

let term_vars = function
  | V id -> [ id ]
  | Imm _ -> []
  | Mul (id, _) | Mod (id, _) | Notv id -> [ id ]
  | Bin (_, a, b) -> [ a; b ]

let body_vars = function
  | Cmp (_, lhs, rhs) -> term_vars lhs @ term_vars rhs
  | In (term, _) -> term_vars term

let vars t = body_vars t.body

(* Number of variable occurrences, the unit counted in Table 2. *)
let var_occurrences t = List.length (vars t)

let has_immediate t =
  match t.body with
  | Cmp (_, Imm _, _) | Cmp (_, _, Imm _) -> true
  | Cmp (_, lhs, rhs) ->
    let imm_in = function
      | Mul _ | Mod _ -> true
      | V _ | Imm _ | Notv _ | Bin _ -> false
    in
    imm_in lhs || imm_in rhs
  | In _ -> true

(* ---- Canonical form ----

   §3.2.2: invariants are canonicalised to "lhs OP rhs" with
   OP in {>, >=, =} (< and <= are flipped), each side rendered as a sorted
   postfix string; symmetric operators sort their operands. The canonical
   string is the equivalence-class key for the deducible-removal and
   equivalence-removal passes. *)

let op2_name = function Band -> "and" | Bor -> "or" | Plus -> "+" | Minus -> "-"

let canon_term term =
  match term with
  | V id -> Trace.Var.id_name id
  | Imm k -> string_of_int k
  | Mul (id, k) -> Printf.sprintf "%s %d *" (Trace.Var.id_name id) k
  | Mod (id, k) -> Printf.sprintf "%s %d mod" (Trace.Var.id_name id) k
  | Notv id -> Printf.sprintf "%s not" (Trace.Var.id_name id)
  | Bin (op, a, b) ->
    let na = Trace.Var.id_name a and nb = Trace.Var.id_name b in
    (match op with
     | Band | Bor | Plus ->
       (* commutative: sorted operand order *)
       let x, y = if String.compare na nb <= 0 then (na, nb) else (nb, na) in
       Printf.sprintf "%s %s %s" x y (op2_name op)
     | Minus -> Printf.sprintf "%s %s -" na nb)

(* Normalised (op, lhs, rhs) with op in {Eq, Ne, Gt, Ge, In-marker}. *)
let canon_body body =
  match body with
  | In (term, values) ->
    let values = List.sort_uniq compare values in
    Printf.sprintf "in|%s|{%s}" (canon_term term)
      (String.concat "," (List.map string_of_int values))
  | Cmp (op, lhs, rhs) ->
    let sl = canon_term lhs and sr = canon_term rhs in
    (match op with
     | Eq | Ne ->
       let x, y = if String.compare sl sr <= 0 then (sl, sr) else (sr, sl) in
       Printf.sprintf "%s|%s|%s" (if op = Eq then "=" else "<>") x y
     | Gt -> Printf.sprintf ">|%s|%s" sl sr
     | Ge -> Printf.sprintf ">=|%s|%s" sl sr
     | Lt -> Printf.sprintf ">|%s|%s" sr sl
     | Le -> Printf.sprintf ">=|%s|%s" sr sl)

let canonical t = t.point ^ "|" ^ canon_body t.body

(* ---- Pretty printing, in the paper's notation ---- *)

let cmp_name = function
  | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let pp_term fmt term =
  match term with
  | V id -> Format.pp_print_string fmt (Trace.Var.id_name id)
  | Imm k ->
    if k >= 0 && k land 3 = 0 && k > 255 then Format.fprintf fmt "0x%X" k
    else Format.pp_print_int fmt k
  | Mul (id, k) -> Format.fprintf fmt "%s * %d" (Trace.Var.id_name id) k
  | Mod (id, k) -> Format.fprintf fmt "%s mod %d" (Trace.Var.id_name id) k
  | Notv id -> Format.fprintf fmt "not %s" (Trace.Var.id_name id)
  | Bin (op, a, b) ->
    Format.fprintf fmt "(%s %s %s)" (Trace.Var.id_name a) (op2_name op)
      (Trace.Var.id_name b)

let pp_body fmt = function
  | Cmp (op, lhs, rhs) ->
    Format.fprintf fmt "%a %s %a" pp_term lhs (cmp_name op) pp_term rhs
  | In (term, values) ->
    (* Negative members (signed derived variables) print in decimal:
       "0x%X" would render the 63-bit two's complement and no longer
       parse back to the same value. *)
    let member v =
      if v >= 0 then Printf.sprintf "0x%X" v else string_of_int v
    in
    Format.fprintf fmt "%a in {%s}" pp_term term
      (String.concat ", " (List.map member values))

let pp fmt t =
  Format.fprintf fmt "risingEdge(%s) -> %a" t.point pp_body t.body

let to_string t = Format.asprintf "%a" pp t

let equal a b = String.equal (canonical a) (canonical b)
let compare a b = String.compare (canonical a) (canonical b)
