(* ISA-level model of the OR1200 processor.

   The model retires one instruction per [step] and exposes everything the
   paper's instrumenter tracks (§3.1.3): GPRs, the exception SPRs, the
   supervision register, the memory bus, operand and destination values,
   effective addresses, and the exception machinery (single branch delay
   slot, delay-slot exception bit, supervisor mode). Faults from [Fault]
   perturb the semantics at the hook points. *)

open Isa

module Sr = Spr.Sr_bits
module Vec = Spr.Vector

type halt_reason =
  | Exit           (* l.nop 1, the simulator exit convention *)
  | Stalled        (* pipeline wedged (bug b2) *)
  | Double_fault   (* bus error while fetching the bus-error handler *)

(* Cheap per-machine telemetry, updated with plain field writes at the
   retirement boundary so the step hot loop stays hot; readers sample it
   after a run (Trace.Runner folds it into the global metrics). *)
type telemetry = {
  exn_entered : int array;
  mutable exn_suppressed : int;
  mutable mem_high_water : int;
  mutable truncated : int;
}

(* Pre-decoded instruction cache: direct-mapped, keyed by physical PC,
   validated against the fetched (possibly fault-corrupted) word. A hit
   skips [Code.decode]'s big match; the [on_decode] fault hook is still
   applied per step (hooks may be stateful). Because an entry is only
   used when the word it decoded matches what fetch just returned, a
   stale entry can never supply a wrong instruction — store invalidation
   below keeps the tags honest (and observable) rather than carrying
   correctness. *)
type dcache = {
  tags : int array;            (* fetch PC, -1 = empty *)
  words : int array;           (* the word [insns.(i)] decodes *)
  insns : Insn.t option array; (* None = the word does not decode *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidates : int;
}

let dcache_bits = 12 (* 4096 entries: 16 KiB of code, direct-mapped *)
let dcache_mask = (1 lsl dcache_bits) - 1

type t = {
  mem : Memory.t;
  tel : telemetry;
  gpr : int array;
  mutable pc : int;
  mutable sr : int;
  mutable epcr : int;
  mutable esr : int;
  mutable eear : int;
  mutable machi : int;
  mutable maclo : int;
  (* Pending branch target: when [Some target] the instruction at [pc] is
     executing in the branch delay slot. *)
  mutable delay_target : int option;
  mutable halted : halt_reason option;
  mutable retired : int;
  mutable prev_insn : Insn.t option;
  mutable prev_word : int;
  fault : Fault.t;
  (* A tick-timer interrupt is requested every [tick_period] retired
     instructions while SR[TEE] is set; 0 disables the timer. *)
  tick_period : int;
  mutable tick_counter : int;
  dcache : dcache option;
}

(* Everything the tracer needs to know about one retired instruction. *)
type event = {
  ev_addr : int;                      (* address of the instruction *)
  ev_insn : Insn.t;                   (* the instruction executed *)
  ev_ir : int;                        (* fetched word (possibly corrupted) *)
  ev_mem_at_pc : int;                 (* actual memory word at ev_addr *)
  ev_opa : int;                       (* value of operand A (0 if unused) *)
  ev_opb : int;                       (* value of operand B (0 if unused) *)
  ev_dest : int;                      (* value written back (0 if none) *)
  ev_ea : int;                        (* load/store/branch effective address *)
  ev_membus : int;                    (* data transferred on the memory bus *)
  ev_exn : Vec.kind option;           (* exception entered by this step *)
  ev_exn_suppressed : bool;           (* a requested exception was dropped *)
  ev_in_delay_slot : bool;
  ev_branch_taken : bool;
  ev_next_pc : int;                   (* address of the next instruction *)
  ev_spr_orig : int;                  (* addressed SPR value before (mtspr/mfspr) *)
  ev_spr_post : int;                  (* addressed SPR value after *)
  ev_illegal : bool;                  (* the fetched word did not decode *)
}

type step_result =
  | Retired of event
  | Halt of halt_reason

(* Index into telemetry.exn_entered, in [Vec.all] declaration order. *)
let vec_index = function
  | Vec.Reset -> 0
  | Vec.Bus_error -> 1
  | Vec.Data_page_fault -> 2
  | Vec.Insn_page_fault -> 3
  | Vec.Tick_timer -> 4
  | Vec.Alignment -> 5
  | Vec.Illegal -> 6
  | Vec.External_interrupt -> 7
  | Vec.Range -> 8
  | Vec.Syscall -> 9
  | Vec.Trap -> 10

let exception_counts t =
  List.map
    (fun k -> (Vec.name k, t.tel.exn_entered.(vec_index k)))
    Vec.all

(* Hoisted: [vec_index] covers exactly this many vectors, and machines
   are created per workload (and per fuzz candidate), so don't walk
   [Vec.all] on every creation. *)
let n_vectors = List.length Vec.all

let decode_cache_stats t =
  match t.dcache with
  | Some dc -> (dc.hits, dc.misses, dc.invalidates)
  | None -> (0, 0, 0)

let create ?(fault = Fault.none) ?(tick_period = 0) ?mem_size
    ?(decode_cache = true) () =
  let mem = match mem_size with
    | Some size -> Memory.create ~size ()
    | None -> Memory.create ()
  in
  { mem;
    tel = { exn_entered = Array.make n_vectors 0;
            exn_suppressed = 0;
            mem_high_water = -1;
            truncated = 0 };
    gpr = Array.make 32 0;
    pc = Vec.address Vec.Reset;
    sr = Sr.reset;
    epcr = 0; esr = 0; eear = 0;
    machi = 0; maclo = 0;
    delay_target = None;
    halted = None;
    retired = 0;
    prev_insn = None;
    prev_word = 0;
    fault;
    tick_period;
    tick_counter = 0;
    dcache =
      if decode_cache then
        Some { tags = Array.make (1 lsl dcache_bits) (-1);
               words = Array.make (1 lsl dcache_bits) 0;
               insns = Array.make (1 lsl dcache_bits) None;
               hits = 0; misses = 0; invalidates = 0 }
      else None }

let load_image t image =
  (* New code: drop every cached decode rather than chase which words
     the image touched. *)
  (match t.dcache with
   | Some dc ->
     Array.fill dc.tags 0 (Array.length dc.tags) (-1);
     Array.fill dc.insns 0 (Array.length dc.insns) None
   | None -> ());
  Memory.load_image t.mem image

let set_pc t pc = t.pc <- pc

let spr_read t = function
  | Spr.Vr -> 0x12000001 (* OR1200-ish version word *)
  | Spr.Sr -> t.sr
  | Spr.Epcr0 -> t.epcr
  | Spr.Eear0 -> t.eear
  | Spr.Esr0 -> t.esr
  | Spr.Machi -> t.machi
  | Spr.Maclo -> t.maclo

let spr_write t spr v =
  match spr with
  | Spr.Vr -> ()
  | Spr.Sr -> t.sr <- (v land Sr.writable_mask) lor (1 lsl Sr.fo)
  | Spr.Epcr0 -> t.epcr <- v
  | Spr.Eear0 -> t.eear <- v
  | Spr.Esr0 -> t.esr <- v
  | Spr.Machi -> t.machi <- v
  | Spr.Maclo -> t.maclo <- v

let flag t = Sr.get t.sr Sr.f = 1
let supervisor t = Sr.get t.sr Sr.sm = 1

(* Internal exception request raised while executing an instruction. *)
exception Exn_request of Vec.kind * int (* kind, effective address for EEAR *)

(* 64-bit MAC accumulator helpers. *)
let mac_acc t = Int64.logor (Int64.shift_left (Int64.of_int t.machi) 32)
    (Int64.of_int t.maclo)

let set_mac_acc t v =
  t.machi <- Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFF_FFFF;
  t.maclo <- Int64.to_int (Int64.logand v 0xFFFF_FFFFL)

(* The architectural comparison semantics of the set-flag instructions. *)
let compare_sf op a b =
  let open Util.U32 in
  match op with
  | Insn.Sfeq -> a = b
  | Insn.Sfne -> a <> b
  | Insn.Sfgtu -> ugt a b
  | Insn.Sfgeu -> uge a b
  | Insn.Sfltu -> ult a b
  | Insn.Sfleu -> ule a b
  | Insn.Sfgts -> sgt a b
  | Insn.Sfges -> sge a b
  | Insn.Sflts -> slt a b
  | Insn.Sfles -> sle a b

(* Mutable per-step scratch for building the event record. *)
type scratch = {
  mutable s_opa : int;
  mutable s_opb : int;
  mutable s_dest : int;
  mutable s_ea : int;
  mutable s_membus : int;
  mutable s_branch_taken : bool;
  mutable s_target : int option;
  mutable s_spr_orig : int;
  mutable s_spr_post : int;
}

let step t =
  match t.halted with
  | Some r -> Halt r
  | None ->
    let pc = t.pc in
    let in_delay_slot = t.delay_target <> None in
    let mem_word = Memory.peek32 t.mem pc in
    let fetch_ctx =
      { Fault.fetch_pc = pc; prev_insn = t.prev_insn; prev_word = t.prev_word }
    in
    let raw =
      try Memory.read32 t.mem pc
      with Memory.Bus_error _ -> -1
    in
    if raw = -1 then begin
      (* Instruction fetch off the end of memory: treat as a fatal double
         fault rather than looping through the bus-error vector. *)
      t.halted <- Some Double_fault;
      Halt Double_fault
    end else begin
      let ir = t.fault.on_fetch fetch_ctx raw in
      let s = { s_opa = 0; s_opb = 0; s_dest = 0; s_ea = 0; s_membus = 0;
                s_branch_taken = false; s_target = None;
                s_spr_orig = 0; s_spr_post = 0 } in
      let sr_before = t.sr in
      let exn_suppressed = ref false in
      let branch_pc = pc - 4 in
      (* Writeback honouring the r0-hardwired-to-zero rule and the
         writeback fault hooks. *)
      let wb insn reg value =
        let value = value land 0xFFFF_FFFF in
        let value = t.fault.on_writeback insn ~reg ~pc value in
        s.s_dest <- value;
        if reg <> 0 || t.fault.allow_gpr0_write then t.gpr.(reg) <- value
      in
      let set_flag_bit bit v = t.sr <- Sr.put t.sr bit v in
      let arith_flags ~cy ~ov =
        set_flag_bit Sr.cy (if cy then 1 else 0);
        set_flag_bit Sr.ov (if ov then 1 else 0);
        if ov && Sr.get sr_before Sr.ove = 1 then
          raise (Exn_request (Vec.Range, pc))
      in
      let decoded = match t.dcache with
        | Some dc ->
          let slot = (pc lsr 2) land dcache_mask in
          let raw_decoded =
            if Array.unsafe_get dc.tags slot = pc
            && Array.unsafe_get dc.words slot = ir then begin
              dc.hits <- dc.hits + 1;
              Array.unsafe_get dc.insns slot
            end else begin
              dc.misses <- dc.misses + 1;
              let d = Code.decode ir in
              dc.tags.(slot) <- pc;
              dc.words.(slot) <- ir;
              dc.insns.(slot) <- d;
              d
            end
          in
          (match raw_decoded with
           | Some insn -> Some (t.fault.on_decode insn)
           | None -> None)
        | None ->
          (match Code.decode ir with
           | Some insn -> Some (t.fault.on_decode insn)
           | None -> None)
      in
      (* b2: l.macrc directly after l.mac wedges the pipeline. *)
      (match decoded, t.prev_insn with
       | Some (Insn.Macrc _), Some (Insn.Macc (Insn.Mac, _, _))
         when t.fault.macrc_after_mac_stalls ->
         t.halted <- Some Stalled
       | _ -> ());
      if t.halted = Some Stalled then Halt Stalled
      else begin
        let exn_taken = ref None in
        (* Execute, collecting an optional exception request. *)
        let exec insn =
          let open Insn in
          let g r = t.gpr.(r) in
          match insn with
          | Nop k -> if k = 1 then t.halted <- Some Exit
          | Alu (op, rd, ra, rb) ->
            let a = g ra and b = g rb in
            s.s_opa <- a; s.s_opb <- b;
            let module U = Util.U32 in
            let result, flags = match op with
              | Add ->
                let r = U.add a b in
                (r, Some (U.carry_add a b 0, U.overflow_add a b 0))
              | Addc ->
                let cin = Sr.get sr_before Sr.cy in
                let r = (a + b + cin) land 0xFFFF_FFFF in
                (r, Some (U.carry_add a b cin, U.overflow_add a b cin))
              | Sub -> (U.sub a b, Some (U.ult a b, U.overflow_sub a b))
              | And -> (U.logand a b, None)
              | Or -> (U.logor a b, None)
              | Xor -> (U.logxor a b, None)
              | Mul ->
                let wide = Int64.mul (Int64.of_int (U.signed a)) (Int64.of_int (U.signed b)) in
                let r = Int64.to_int (Int64.logand wide 0xFFFF_FFFFL) in
                let ov = Int64.of_int (U.signed r) <> wide in
                (r, Some (false, ov))
              | Mulu ->
                let wide = Int64.mul (Int64.of_int a) (Int64.of_int b) in
                let r = Int64.to_int (Int64.logand wide 0xFFFF_FFFFL) in
                let cy = Int64.shift_right_logical wide 32 <> 0L in
                (r, Some (cy, false))
              | Div ->
                (match U.div_signed a b with
                 | Some r -> (r, None)
                 | None -> arith_flags ~cy:false ~ov:true; (0, None))
              | Divu ->
                (match U.div_unsigned a b with
                 | Some r -> (r, None)
                 | None -> arith_flags ~cy:true ~ov:false; (0, None))
              | Sll -> (U.shift_left a (b land 31), None)
              | Srl -> (U.shift_right_logical a (b land 31), None)
              | Sra -> (U.shift_right_arith a (b land 31), None)
              | Ror -> (U.rotate_right a (b land 31), None)
            in
            let result = t.fault.on_alu insn result in
            (match flags with
             | Some (cy, ov) -> arith_flags ~cy ~ov
             | None -> ());
            wb insn rd result
          | Alui (op, rd, ra, k) ->
            let a = g ra in
            s.s_opa <- a;
            let module U = Util.U32 in
            let simm = U.sext16 k and uimm = k land 0xFFFF in
            let result, flags = match op with
              | Addi -> (U.add a simm, Some (U.carry_add a simm 0, U.overflow_add a simm 0))
              | Addic ->
                let cin = Sr.get sr_before Sr.cy in
                ((a + simm + cin) land 0xFFFF_FFFF,
                 Some (U.carry_add a simm cin, U.overflow_add a simm cin))
              | Andi -> (U.logand a uimm, None)
              | Ori -> (U.logor a uimm, None)
              | Xori -> (U.logxor a uimm, None)
              | Muli ->
                let wide = Int64.mul (Int64.of_int (U.signed a))
                    (Int64.of_int (U.signed simm)) in
                let r = Int64.to_int (Int64.logand wide 0xFFFF_FFFFL) in
                (r, Some (false, Int64.of_int (U.signed r) <> wide))
            in
            let result = t.fault.on_alu insn result in
            (match flags with Some (cy, ov) -> arith_flags ~cy ~ov | None -> ());
            wb insn rd result
          | Shifti (op, rd, ra, l6) ->
            let a = g ra in
            s.s_opa <- a;
            let n = l6 land 31 in
            let module U = Util.U32 in
            let result = match op with
              | Slli -> U.shift_left a n
              | Srli -> U.shift_right_logical a n
              | Srai -> U.shift_right_arith a n
              | Rori -> U.rotate_right a n
            in
            wb insn rd (t.fault.on_alu insn result)
          | Ext (op, rd, ra) ->
            let a = g ra in
            s.s_opa <- a;
            let module U = Util.U32 in
            let result = match op with
              | Extbs -> U.sext8 a
              | Extbz -> U.zext8 a
              | Exths -> U.sext16 a
              | Exthz -> U.zext16 a
              | Extws | Extwz -> a
            in
            wb insn rd (t.fault.on_alu insn result)
          | Setflag (op, ra, rb) ->
            let a = g ra and b = g rb in
            s.s_opa <- a; s.s_opb <- b;
            let r = compare_sf op a b in
            let r = t.fault.on_compare op ~a ~b r in
            set_flag_bit Sr.f (if r then 1 else 0)
          | Setflagi (op, ra, k) ->
            let a = g ra and b = Util.U32.sext16 k in
            s.s_opa <- a; s.s_opb <- b;
            let r = compare_sf op a b in
            let r = t.fault.on_compare op ~a ~b r in
            set_flag_bit Sr.f (if r then 1 else 0)
          | Load (op, rd, ra, off) ->
            let base = g ra in
            s.s_opa <- base;
            let ea = Util.U32.add base (Util.U32.sext16 off) in
            let ea = t.fault.on_eff_addr insn ea in
            s.s_ea <- ea;
            let module U = Util.U32 in
            let width, aligned = match op with
              | Lwz | Lws -> (4, ea land 3 = 0)
              | Lhz | Lhs -> (2, ea land 1 = 0)
              | Lbz | Lbs -> (1, true)
            in
            if not aligned then raise (Exn_request (Vec.Alignment, ea));
            let raw_data =
              try
                (match width with
                 | 4 -> Memory.read32 t.mem ea
                 | 2 -> Memory.read16 t.mem ea
                 | _ -> Memory.read8 t.mem ea)
              with Memory.Bus_error a -> raise (Exn_request (Vec.Bus_error, a))
            in
            s.s_membus <- raw_data;
            let extended = match op with
              | Lwz | Lws -> raw_data
              | Lbz -> U.zext8 raw_data
              | Lbs -> U.sext8 raw_data
              | Lhz -> U.zext16 raw_data
              | Lhs -> U.sext16 raw_data
            in
            let value = t.fault.on_load insn ~addr:ea ~raw:raw_data extended in
            wb insn rd value
          | Store (op, off, ra, rb) ->
            let base = g ra and value = g rb in
            s.s_opa <- base; s.s_opb <- value;
            let ea = Util.U32.add base (Util.U32.sext16 off) in
            let ea = t.fault.on_eff_addr insn ea in
            s.s_ea <- ea;
            let width, aligned = match op with
              | Sw -> (4, ea land 3 = 0)
              | Sh -> (2, ea land 1 = 0)
              | Sb -> (1, true)
            in
            if not aligned then raise (Exn_request (Vec.Alignment, ea));
            let value = t.fault.on_store insn ~addr:ea ~exec_pc:pc value in
            s.s_membus <- value;
            (try
               (match width with
                | 4 -> Memory.write32 t.mem ea value
                | 2 -> Memory.write16 t.mem ea value
                | _ -> Memory.write8 t.mem ea value)
             with Memory.Bus_error a -> raise (Exn_request (Vec.Bus_error, a)));
            (* Self-modifying code: drop any cached decode of the word
               this store just overwrote (sub-word stores land inside
               one aligned word, so one slot check covers every width). *)
            (match t.dcache with
             | Some dc ->
               let wa = ea land lnot 3 in
               let slot = (wa lsr 2) land dcache_mask in
               if dc.tags.(slot) = wa then begin
                 dc.tags.(slot) <- -1;
                 dc.invalidates <- dc.invalidates + 1
               end
             | None -> ());
            (* b17: a store straight after a load clobbers the load's
               destination register with the store data. *)
            (match t.fault.store_after_load_clobbers ~prev:t.prev_insn insn with
             | Some reg when reg <> 0 -> t.gpr.(reg) <- value
             | Some _ | None -> ())
          | Jump d | Jump_link d ->
            if in_delay_slot then raise (Exn_request (Vec.Illegal, pc));
            let target = Util.U32.add pc
                (Util.U32.of_int (Util.U32.signed (Util.U32.sext ~bits:26 d) * 4)) in
            s.s_ea <- target;
            s.s_branch_taken <- true;
            s.s_target <- Some target;
            (match insn with
             | Jump_link _ -> wb insn 9 (Util.U32.add pc 8)
             | _ -> ())
          | Jump_reg rb | Jump_link_reg rb ->
            if in_delay_slot then raise (Exn_request (Vec.Illegal, pc));
            let target = g rb in
            s.s_opb <- target;
            if target land 3 <> 0 then raise (Exn_request (Vec.Alignment, target));
            s.s_ea <- target;
            s.s_branch_taken <- true;
            s.s_target <- Some target;
            (match insn with
             | Jump_link_reg _ -> wb insn 9 (Util.U32.add pc 8)
             | _ -> ())
          | Branch_flag d | Branch_noflag d ->
            if in_delay_slot then raise (Exn_request (Vec.Illegal, pc));
            let target = Util.U32.add pc
                (Util.U32.of_int (Util.U32.signed (Util.U32.sext ~bits:26 d) * 4)) in
            s.s_ea <- target;
            let taken = match insn with
              | Branch_flag _ -> flag t
              | _ -> not (flag t)
            in
            if taken then begin
              s.s_branch_taken <- true;
              s.s_target <- Some target
            end
          | Movhi (rd, k) -> wb insn rd ((k land 0xFFFF) lsl 16)
          | Mfspr (rd, ra, k) ->
            if not (supervisor t) then raise (Exn_request (Vec.Illegal, pc));
            let spr_addr = g ra lor (k land 0xFFFF) in
            s.s_opa <- g ra;
            let v = match Spr.of_address spr_addr with
              | Some spr -> spr_read t spr
              | None -> 0
            in
            s.s_spr_orig <- v;
            s.s_spr_post <- v;
            wb insn rd v
          | Mtspr (ra, rb, k) ->
            if not (supervisor t) then raise (Exn_request (Vec.Illegal, pc));
            let spr_addr = g ra lor (k land 0xFFFF) in
            let v = g rb in
            s.s_opa <- g ra; s.s_opb <- v;
            (match Spr.of_address spr_addr with
             | Some spr ->
               s.s_spr_orig <- spr_read t spr;
               if not (t.fault.mtspr_is_nop ~spr_addr) then spr_write t spr v;
               s.s_spr_post <- spr_read t spr
             | None -> ())
          | Macc (op, ra, rb) ->
            let a = g ra and b = g rb in
            s.s_opa <- a; s.s_opb <- b;
            let prod = Int64.mul (Int64.of_int (Util.U32.signed a))
                (Int64.of_int (Util.U32.signed b)) in
            let acc = mac_acc t in
            set_mac_acc t
              (match op with Mac -> Int64.add acc prod | Msb -> Int64.sub acc prod)
          | Maci (ra, k) ->
            let a = g ra in
            s.s_opa <- a;
            let prod = Int64.mul (Int64.of_int (Util.U32.signed a))
                (Int64.of_int (Util.U32.signed (Util.U32.sext16 k))) in
            set_mac_acc t (Int64.add (mac_acc t) prod)
          | Macrc rd ->
            let v = t.maclo in
            set_mac_acc t 0L;
            wb insn rd v
          | Sys _ -> raise (Exn_request (Vec.Syscall, pc))
          | Trap _ -> raise (Exn_request (Vec.Trap, pc))
          | Rfe ->
            if not (supervisor t) then raise (Exn_request (Vec.Illegal, pc));
            let new_sr = t.fault.on_rfe_sr t.esr in
            let new_pc = t.fault.on_rfe_pc t.epcr in
            t.sr <- (new_sr land 0xFFFF_FFFF) lor (1 lsl Sr.fo);
            s.s_branch_taken <- true;
            s.s_target <- Some new_pc;
            s.s_ea <- new_pc
        in
        (* Exception entry per the OR1k architecture, with fault hooks. *)
        let enter_exception kind ~eear_value =
          let next_pc = match t.delay_target with
            | Some target -> target
            | None -> Util.U32.add pc 4
          in
          let ctx = { Fault.kind; faulting_pc = pc; next_pc;
                      in_delay_slot; branch_pc } in
          if t.fault.suppress_exception ctx ~prev:t.prev_insn then begin
            exn_suppressed := true;
            (* The instruction completes as a no-op; control continues. *)
            None
          end else if kind = Vec.Syscall && in_delay_slot
                   && t.fault.syscall_in_delay_slot_loops then begin
            (* b1: the PC is not correctly updated; the processor re-runs
               the branch and its delay slot forever. *)
            t.delay_target <- None;
            t.pc <- branch_pc;
            Some (kind, `Looped)
          end else begin
            let epcr = match kind with
              | Vec.Syscall | Vec.Tick_timer | Vec.External_interrupt ->
                if in_delay_slot then branch_pc else next_pc
              | Vec.Reset | Vec.Bus_error | Vec.Data_page_fault
              | Vec.Insn_page_fault | Vec.Alignment | Vec.Illegal
              | Vec.Range | Vec.Trap ->
                if in_delay_slot then branch_pc else pc
            in
            let epcr = t.fault.on_exception_epcr ctx epcr in
            let new_sr =
              let v = t.sr in
              let v = Sr.set v Sr.sm in
              let v = Sr.clear v Sr.iee in
              let v = Sr.clear v Sr.tee in
              Sr.put v Sr.dsx (if in_delay_slot then 1 else 0)
            in
            let new_sr = t.fault.on_exception_sr ctx new_sr in
            let vector = Vec.address kind in
            let vector = t.fault.on_exception_vector ctx vector in
            t.esr <- t.sr;
            t.epcr <- epcr;
            t.eear <- eear_value;
            t.sr <- new_sr lor (1 lsl Sr.fo);
            t.delay_target <- None;
            t.pc <- vector;
            Some (kind, `Vectored)
          end
        in
        (match decoded with
         | None ->
           (match enter_exception Vec.Illegal ~eear_value:pc with
            | Some (k, _) -> exn_taken := Some k
            | None -> t.pc <- Util.U32.add pc 4)
         | Some insn ->
           (try
              exec insn;
              (* Sequencing: delay-slot completion, then branches, then the
                 tick timer. l.rfe and exceptions set the PC themselves. *)
              (match insn with
               | Insn.Rfe ->
                 t.delay_target <- None;
                 t.pc <- (match s.s_target with Some x -> x | None -> Util.U32.add pc 4)
               | _ ->
                 (match t.delay_target with
                  | Some target ->
                    (* This instruction was the delay slot. *)
                    t.delay_target <- None;
                    t.pc <- target
                  | None ->
                    if s.s_branch_taken then begin
                      t.delay_target <- s.s_target;
                      t.pc <- Util.U32.add pc 4
                    end else
                      t.pc <- Util.U32.add pc 4));
              (* Tick timer: raised at the retirement boundary. *)
              if t.tick_period > 0 then begin
                t.tick_counter <- t.tick_counter + 1;
                (* Interrupt shadow: like the OR1200, no interrupt is taken
                   at the boundary of an SR-writing instruction, so l.rfe
                   and l.mtspr retire with architecturally clean state. *)
                let in_shadow = match insn with
                  | Insn.Rfe | Insn.Mtspr _ -> true
                  | _ -> false
                in
                if t.tick_counter >= t.tick_period
                && Sr.get t.sr Sr.tee = 1
                && t.delay_target = None
                && not in_shadow then begin
                  t.tick_counter <- 0;
                  (* EPCR must resume at the instruction we were about to
                     execute; t.pc already points there. *)
                  let resume = t.pc in
                  let ctx = { Fault.kind = Vec.Tick_timer; faulting_pc = pc;
                              next_pc = resume; in_delay_slot = false;
                              branch_pc } in
                  if not (t.fault.suppress_exception ctx ~prev:t.prev_insn) then begin
                    let epcr = t.fault.on_exception_epcr ctx resume in
                    let new_sr =
                      let v = Sr.set t.sr Sr.sm in
                      let v = Sr.clear v Sr.iee in
                      let v = Sr.clear v Sr.tee in
                      Sr.put v Sr.dsx 0
                    in
                    let new_sr = t.fault.on_exception_sr ctx new_sr in
                    let vector = t.fault.on_exception_vector ctx
                        (Vec.address Vec.Tick_timer) in
                    t.esr <- t.sr;
                    t.epcr <- epcr;
                    t.sr <- new_sr lor (1 lsl Sr.fo);
                    t.pc <- vector;
                    exn_taken := Some Vec.Tick_timer
                  end
                end
              end
            with Exn_request (kind, eear_value) ->
              (match enter_exception kind ~eear_value with
               | Some (k, _) -> exn_taken := Some k
               | None ->
                 (* Suppressed: fall through as a no-op. *)
                 (match t.delay_target with
                  | Some target -> t.delay_target <- None; t.pc <- target
                  | None -> t.pc <- Util.U32.add pc 4))));
        t.retired <- t.retired + 1;
        (* Telemetry: a handful of plain field writes per retirement. *)
        (match !exn_taken with
         | Some k ->
           let i = vec_index k in
           t.tel.exn_entered.(i) <- t.tel.exn_entered.(i) + 1
         | None -> ());
        if !exn_suppressed then
          t.tel.exn_suppressed <- t.tel.exn_suppressed + 1;
        (match decoded with
         | Some (Insn.Load _ | Insn.Store _) ->
           if s.s_ea > t.tel.mem_high_water then
             t.tel.mem_high_water <- s.s_ea
         | _ -> ());
        let insn = match decoded with
          | Some i -> i
          | None -> Insn.Nop 0xFFFF (* placeholder for the illegal word *)
        in
        t.prev_insn <- Some insn;
        t.prev_word <- ir;
        Retired {
          ev_addr = pc;
          ev_insn = insn;
          ev_ir = ir;
          ev_mem_at_pc = mem_word;
          ev_opa = s.s_opa;
          ev_opb = s.s_opb;
          ev_dest = s.s_dest;
          ev_ea = s.s_ea;
          ev_membus = s.s_membus;
          ev_exn = !exn_taken;
          ev_exn_suppressed = !exn_suppressed;
          ev_in_delay_slot = in_delay_slot;
          ev_branch_taken = s.s_branch_taken;
          ev_next_pc = t.pc;
          ev_spr_orig = s.s_spr_orig;
          ev_spr_post = s.s_spr_post;
          ev_illegal = (decoded = None);
        }
      end
    end

(* Run until halt or [max_steps], feeding every event to [observer]. *)
let run ?(max_steps = 1_000_000) ~observer t =
  let rec loop n =
    if n >= max_steps then begin
      t.tel.truncated <- t.tel.truncated + 1;
      `Max_steps
    end
    else
      match step t with
      | Halt r -> `Halted r
      | Retired ev -> observer ev; loop (n + 1)
  in
  loop 0
