(** The ISA-level model of the OR1200 processor.

    One instruction retires per {!step}; the model exposes everything the
    paper's instrumenter tracks (§3.1.3): GPRs, the exception SPRs, the
    supervision register, the memory bus, operand and destination values,
    effective addresses, and the exception machinery (single branch delay
    slot, delay-slot exception bit, supervisor mode). {!Fault} hooks
    perturb the semantics. *)

type halt_reason =
  | Exit           (** the l.nop 1 simulator-exit convention *)
  | Stalled        (** pipeline wedged (bug b2) *)
  | Double_fault   (** instruction fetch off the end of memory *)

(** Cheap per-machine telemetry, updated with plain field writes at the
    retirement boundary (the step hot loop takes no locks and reads no
    clocks). Sampled after a run — [Trace.Runner] folds it into the
    global [Obs.Metrics]. *)
type telemetry = {
  exn_entered : int array;
      (** exception entries, indexed in {!Isa.Spr.Vector.all} order *)
  mutable exn_suppressed : int;
      (** requested exceptions dropped by a fault hook *)
  mutable mem_high_water : int;
      (** highest load/store effective address touched; -1 if none *)
  mutable truncated : int;
      (** runs of this machine aborted by a step budget ([`Max_steps]):
          the runaway-program guard for generated workloads. Bumped by
          {!run} and by [Trace.Runner]; distinct from a halt so a fuzzing
          loop can count timeouts instead of silently truncating. *)
}

(** Pre-decoded instruction cache: direct-mapped, keyed by physical PC,
    validated against the fetched (possibly fault-corrupted) word — so a
    stale entry can never supply a wrong instruction even under fetch
    faults. Stores into a cached word drop the entry (self-modifying
    code); the counters surface as [cpu.decode_cache.*] metrics. *)
type dcache = {
  tags : int array;                 (** fetch PC per slot, -1 = empty *)
  words : int array;                (** the word each entry decoded *)
  insns : Isa.Insn.t option array;  (** [None] = word does not decode *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidates : int;
}

type t = {
  mem : Memory.t;
  tel : telemetry;
  gpr : int array;                    (** 32 registers; gpr.(0) stays 0 *)
  mutable pc : int;
  mutable sr : int;
  mutable epcr : int;
  mutable esr : int;
  mutable eear : int;
  mutable machi : int;
  mutable maclo : int;
  mutable delay_target : int option;
      (** pending branch target: when [Some _] the instruction at [pc]
          executes in the branch delay slot *)
  mutable halted : halt_reason option;
  mutable retired : int;
  mutable prev_insn : Isa.Insn.t option;
  mutable prev_word : int;
  fault : Fault.t;
  tick_period : int;
      (** a tick interrupt is requested every [tick_period] retired
          instructions while SR\[TEE\] is set; 0 disables the timer *)
  mutable tick_counter : int;
  dcache : dcache option;
      (** [None] when created with [~decode_cache:false] *)
}

(** Everything the tracer needs to know about one retired instruction. *)
type event = {
  ev_addr : int;                      (** address of the instruction *)
  ev_insn : Isa.Insn.t;               (** the instruction executed *)
  ev_ir : int;                        (** fetched word (possibly corrupted) *)
  ev_mem_at_pc : int;                 (** actual memory word at ev_addr *)
  ev_opa : int;                       (** operand A value (0 if unused) *)
  ev_opb : int;                       (** operand B value (0 if unused) *)
  ev_dest : int;                      (** writeback value (0 if none) *)
  ev_ea : int;                        (** memory/branch effective address *)
  ev_membus : int;                    (** data on the memory bus *)
  ev_exn : Isa.Spr.Vector.kind option; (** exception entered by this step *)
  ev_exn_suppressed : bool;           (** a requested exception was dropped *)
  ev_in_delay_slot : bool;
  ev_branch_taken : bool;
  ev_next_pc : int;                   (** address of the next instruction *)
  ev_spr_orig : int;                  (** addressed SPR before (mtspr/mfspr) *)
  ev_spr_post : int;                  (** addressed SPR after *)
  ev_illegal : bool;                  (** the fetched word did not decode *)
}

type step_result =
  | Retired of event
  | Halt of halt_reason

val create :
  ?fault:Fault.t -> ?tick_period:int -> ?mem_size:int ->
  ?decode_cache:bool -> unit -> t
(** A machine at the reset vector (PC = 0x100, SR = FO|SM).
    [decode_cache] (default true) enables the pre-decoded instruction
    cache; disabling it reproduces the decode-per-step baseline for
    benchmarking. Identical architectural behaviour either way. *)

val decode_cache_stats : t -> int * int * int
(** [(hits, misses, invalidates)]; all zero when the cache is off. *)

val exception_counts : t -> (string * int) list
(** [tel.exn_entered] keyed by vector name, in {!Isa.Spr.Vector.all}
    order. *)

val load_image : t -> (int * int) list -> unit

val set_pc : t -> int -> unit

val spr_read : t -> Isa.Spr.t -> int

val spr_write : t -> Isa.Spr.t -> int -> unit

val flag : t -> bool
(** SR\[F\]. *)

val supervisor : t -> bool
(** SR\[SM\]. *)

val compare_sf : Isa.Insn.sf_op -> int -> int -> bool
(** The architectural comparison semantics of the set-flag
    instructions. *)

val step : t -> step_result
(** Retire one instruction (or report the halt). Exceptions, delay slots
    and the tick timer are resolved inside the step; the returned event
    describes the architectural outcome. *)

val run :
  ?max_steps:int -> observer:(event -> unit) -> t ->
  [ `Halted of halt_reason | `Max_steps ]
(** Step until halt or [max_steps] (default 1,000,000), feeding every
    event to [observer]. *)
