(* The scifinder command line tool.

     scifinder mine              trace the corpus and print mined invariants
     scifinder identify [-b ID]  identify SCI for one or all Table 1 bugs
     scifinder infer             run the full pipeline and print inferred SCI
     scifinder verify -b ID      enforce SCI as assertions against a bug
     scifinder campaign          generated mutants vs the compiled battery
     scifinder verilog -o FILE   emit a synthesizable monitor for the SCI
     scifinder trace WORKLOAD    stream one workload's fused trace records
     scifinder report RUN.jsonl  digest a --metrics stream into a run report
     scifinder bugs              list the bug registry
     scifinder workloads         list the trace corpus

   Every command exits through a documented code (see --help): 0 on
   success, 1 on runtime errors (unreadable or malformed invariant
   files), 2 when a verified bug evades the assertion battery, 3 on an
   unknown bug id. Failures return through Cmdliner rather than
   aborting mid-term, so the at_exit --metrics flush always runs. *)

open Cmdliner

let setup_logs verbose =
  (* Everything — including App-level lines — goes to stderr, so the
     invariant/SCI listings on stdout stay pipeline-clean
     (`scifinder mine | sort` works even under -v). *)
  let err = Format.err_formatter in
  Logs.set_reporter (Logs.format_reporter ~app:err ~dst:err ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Info)

(* Install the telemetry sinks behind --metrics / --trace-out; counters
   and histograms are flushed into the same stream(s) when the command
   exits. The two sinks tee off one event stream, so a single run can
   feed both the JSONL report pipeline and a Perfetto-loadable trace. *)
let setup_metrics metrics trace_out =
  match (metrics, trace_out) with
  | None, None -> ()
  | _ ->
    let jsonl =
      match metrics with None -> Obs.Sink.null | Some p -> Obs.Sink.jsonl p
    in
    let trace =
      match trace_out with
      | None -> Obs.Sink.null
      | Some p -> Obs.Trace_event.sink p
    in
    let sink = Obs.Sink.tee jsonl trace in
    Obs.Sink.set_global sink;
    at_exit (fun () ->
        Obs.Metrics.emit_all sink;
        Obs.Sink.close sink;
        Obs.Sink.set_global Obs.Sink.null);
    (* at_exit only runs on an orderly exit: a SIGINT/SIGTERM would kill
       the process mid-write and truncate the JSONL tail. Route both
       through exit (128+signo, shell convention) so the flush above
       always runs. Commands with their own graceful shutdown — serve —
       install their handlers after this and win. *)
    let flush_on signal code =
      try Sys.set_signal signal (Sys.Signal_handle (fun _ -> exit code))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    flush_on Sys.sigint 130;
    flush_on Sys.sigterm 143

(* ---- exit codes ---- *)

let runtime_error_exit = 1
let evasion_exit = 2
let unknown_bug_exit = 3

let runtime_error_info =
  Cmd.Exit.info runtime_error_exit
    ~doc:"on runtime errors (unreadable or malformed invariant files)."

let unknown_bug_info =
  Cmd.Exit.info unknown_bug_exit ~doc:"on an unknown bug id."

let common_exits = runtime_error_info :: Cmd.Exit.defaults

(* Runtime failures land here instead of escaping as uncaught
   exceptions: the message goes to stderr through the log reporter and
   the process exits through Cmdliner with a documented code — which
   also lets the at_exit telemetry sink flush normally. *)
let run_guarded f =
  try f () with
  | Invariant.Io.Parse_error (msg, line) ->
    Logs.err (fun m -> m "line %d: %s" line msg);
    runtime_error_exit
  | Sys_error msg ->
    Logs.err (fun m -> m "%s" msg);
    runtime_error_exit

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write telemetry (phase/shard spans, counters, histograms) \
               as JSON lines to $(docv). One object per line; see \
               DESIGN.md for the schema.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Render the same telemetry as a Chrome trace-event JSON \
               file at $(docv) — load it in Perfetto or chrome://tracing. \
               Spans become one track per mining domain; counters become \
               counter events. Composes with $(b,--metrics).")

let jobs_arg =
  Arg.(value & opt int (Util.Parallel.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Trace-mining shards run on a pool of $(docv) domains \
               (default: the recommended domain count). The mined set is \
               identical for any N.")

(* --cache DIR persists per-workload engine snapshots (and, for the full
   corpus, the whole mining summary) so warm re-runs skip tracing;
   --no-cache is the escape hatch when the directory is inherited from
   the environment or a wrapper script. *)
let cache_term =
  let cache =
    Arg.(value & opt (some string) None
         & info [ "cache" ] ~docv:"DIR"
           ~doc:"Reuse per-workload engine snapshots under $(docv): cache \
                 hits skip tracing entirely; stale or damaged entries are \
                 rejected and re-mined. Results are bit-identical to an \
                 uncached run. See DESIGN.md for the snapshot format.")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
           ~doc:"Ignore $(b,--cache) and always re-trace the corpus.")
  in
  Term.(const (fun dir off -> if off then None else dir) $ cache $ no_cache)

(* Shared pipeline pieces. *)

let mine_invariants ?(names = None) ?cache_dir ~jobs () =
  Logs.info (fun m ->
      m "mining %s on %d domain%s%s"
        (match names with
         | None -> "the 17-workload corpus"
         | Some l -> String.concat " " l)
        jobs (if jobs = 1 then "" else "s")
        (match cache_dir with
         | None -> ""
         | Some d -> Printf.sprintf " (cache: %s)" d));
  Scifinder_core.Pipeline.mine_invariants ~jobs ?cache_dir ?names ()

let find_bug id =
  match Bugs.Table1.by_id id with
  | Some b -> Ok b
  | None ->
    (match Bugs.Amd_errata.by_id id with
     | Some b -> Ok b
     | None -> Error (Printf.sprintf "unknown bug %S (b1..b17, a1..a14)" id))

(* ---- mine ---- *)

(* Case-insensitive substring match for --explain patterns; "" matches
   everything, which is how you dump the whole flight recorder. *)
let contains_ci hay needle =
  let hay = String.lowercase_ascii hay
  and needle = String.lowercase_ascii needle in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let print_explain ~limit pat (pr : Scifinder_core.Pipeline.provenance_report) =
  let open Daikon.Engine in
  Printf.printf "flight recorder: %d deaths in the ring, %d evicted\n"
    (List.length pr.deaths) pr.deaths_dropped;
  List.iter
    (fun (fam, n, first) ->
       match first with
       | Some d ->
         Printf.printf
           "  %-8s %7d falsified; first: %s at %s, killed by %s \
            (record %d, tick %d)\n"
           fam n d.d_desc d.d_point d.d_workload d.d_record d.d_tick
       | None -> Printf.printf "  %-8s %7d falsified\n" fam n)
    pr.death_families;
  let death_matches d =
    contains_ci d.d_desc pat || contains_ci d.d_point pat
    || contains_ci d.d_family pat || contains_ci d.d_workload pat
  in
  let hits = List.filter death_matches pr.deaths in
  Printf.printf "%d deaths match %S:\n" (List.length hits) pat;
  List.iteri
    (fun i d ->
       if i < limit then
         Printf.printf "  %-8s %s at %s, killed by %s (record %d, tick %d)\n"
           d.d_family d.d_desc d.d_point d.d_workload d.d_record d.d_tick)
    hits;
  if List.length hits > limit then
    Printf.printf "  ... (%d more; raise --limit)\n" (List.length hits - limit);
  let survivors =
    List.filter
      (fun ((i : Invariant.Expr.t), _) ->
         contains_ci (Invariant.Expr.to_string i) pat
         || contains_ci i.point pat)
      pr.witnesses
  in
  Printf.printf "%d surviving SCI match %S (last-narrowed witness):\n"
    (List.length survivors) pat;
  List.iteri
    (fun n ((i : Invariant.Expr.t), (w : witness)) ->
       if n < limit then
         Printf.printf "  %s  <- last narrowed by %s (record %d, tick %d)\n"
           (Invariant.Expr.to_string i) w.w_workload w.w_record w.w_tick)
    survivors;
  if List.length survivors > limit then
    Printf.printf "  ... (%d more; raise --limit)\n"
      (List.length survivors - limit)

let mine_cmd =
  let run verbose metrics trace_out jobs cache_dir limit point workload_names
      output explain from_lake =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    if from_lake <> None && workload_names <> [] then begin
      Logs.err (fun m ->
          m "--from-lake mines every segment of the lake; it cannot be \
             combined with --workload");
      runtime_error_exit
    end
    else begin
    let names = match workload_names with [] -> None | l -> Some l in
    let invariants, prov =
      match from_lake with
      | Some dir ->
        (* Out-of-core: fold the on-disk segments through one engine,
           block by block, instead of re-simulating anything. *)
        let m =
          Scifinder_core.Pipeline.mine_lake
            ~provenance:(explain <> None) ~jobs ?cache_dir dir
        in
        Printf.printf
          "lake: %d records from %d segments (%d bytes on disk)\n"
          m.Scifinder_core.Pipeline.record_count
          (List.length m.Scifinder_core.Pipeline.figure3)
          m.Scifinder_core.Pipeline.trace_bytes;
        (m.invariants, m.prov)
      | None ->
      (match explain with
      | None -> (mine_invariants ~names ?cache_dir ~jobs (), None)
      | Some _ ->
        (* The flight recorder lives in the full mining result; shard
           caches still apply (keyed with the provenance marker). *)
        let m =
          match names with
          | None ->
            Scifinder_core.Pipeline.mine ~provenance:true ~jobs ?cache_dir ()
          | Some l ->
            Scifinder_core.Pipeline.mine ~provenance:true ~jobs ?cache_dir
              ~groups:[ l ] ~labels:[ String.concat "+" l ] ()
        in
        (m.invariants, m.prov))
    in
    (match output with
     | Some path ->
       Invariant.Io.save path invariants;
       Printf.printf "saved %d invariants to %s\n" (List.length invariants) path
     | None -> ());
    let invariants =
      match point with
      | None -> invariants
      | Some p ->
        List.filter (fun (i : Invariant.Expr.t) -> String.equal i.point p)
          invariants
    in
    Printf.printf "%d invariants\n" (List.length invariants);
    List.iteri
      (fun i inv ->
         if i < limit then print_endline (Invariant.Expr.to_string inv))
      invariants;
    if List.length invariants > limit then
      Printf.printf "... (%d more; raise --limit)\n"
        (List.length invariants - limit);
    (match explain, prov with
     | Some pat, Some pr -> print_explain ~limit pat pr
     | _ -> ());
    0
    end
  in
  let limit =
    Arg.(value & opt int 50 & info [ "limit" ] ~doc:"Invariants to print.")
  in
  let point =
    Arg.(value & opt (some string) None
         & info [ "point" ] ~docv:"MNEMONIC"
           ~doc:"Only invariants of this program point (e.g. l.rfe).")
  in
  let workloads =
    Arg.(value & opt_all string []
         & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Trace only this workload (repeatable; default: all 17).")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Save the mined set for later identify/verify runs.")
  in
  let explain =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"PAT"
           ~doc:"Mine with the flight recorder on and print evidence \
                 trails: per-family falsification counts with the first \
                 death of each, every recorded death matching $(docv) \
                 (case-insensitive substring over candidate, point, \
                 family and workload; \"\" matches all), and the \
                 last-narrowed witness of every surviving invariant \
                 matching $(docv). The mined set is identical either \
                 way.")
  in
  let from_lake =
    Arg.(value & opt (some dir) None
         & info [ "from-lake" ] ~docv:"DIR"
           ~doc:"Mine out-of-core from the on-disk trace lake at $(docv) \
                 (recorded with $(b,trace --record-out) or \
                 $(b,fuzz --lake)) instead of simulating workloads. \
                 Segments are replayed in sorted filename order, one \
                 block in memory at a time; with $(b,-j) N the replay \
                 shards into byte-balanced block ranges across N \
                 domains, with block read-ahead overlapping disk and \
                 decode. The mined set — and the engine snapshot, byte \
                 for byte — is identical for any N and bit-identical \
                 to a live sequential run over the same traces.")
  in
  Cmd.v (Cmd.info "mine" ~exits:common_exits
           ~doc:"Mine likely processor invariants from the trace corpus.")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ jobs_arg
          $ cache_term $ limit $ point $ workloads $ output $ explain
          $ from_lake)

(* ---- identify ---- *)

let load_or_mine ~jobs ?cache_dir = function
  | Some path ->
    let invs = Invariant.Io.load path in
    Logs.info (fun m -> m "loaded %d invariants from %s" (List.length invs) path);
    invs
  | None -> mine_invariants ?cache_dir ~jobs ()

let input_arg =
  Arg.(value & opt (some string) None
       & info [ "i"; "invariants" ] ~docv:"FILE"
         ~doc:"Load a saved invariant set instead of re-mining the corpus.")

let identify_cmd =
  let run verbose metrics trace_out jobs cache_dir bug_id input =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    match Option.fold ~none:(Ok Bugs.Table1.all)
            ~some:(fun id -> Result.map (fun b -> [ b ]) (find_bug id))
            bug_id
    with
    | Error e ->
      Logs.err (fun m -> m "%s" e);
      unknown_bug_exit
    | Ok bugs ->
      let invariants = load_or_mine ~jobs ?cache_dir input in
      let optimized = (Invopt.Pipeline.optimize invariants).optimized in
      let summary = Sci.Identify.run_all ~invariants:optimized bugs in
      List.iter
        (fun (r : Sci.Identify.report) ->
           Printf.printf "%s: %d SCI, %d false positives, %s\n"
             r.bug.Bugs.Registry.id
             (List.length r.true_sci)
             (List.length r.false_positives)
             (if r.detected then "detected" else "NOT detected");
           List.iteri
             (fun i inv ->
                if i < 10 then
                  Printf.printf "  %s\n" (Invariant.Expr.to_string inv))
             r.true_sci)
        summary.reports;
      0
  in
  let bug =
    Arg.(value & opt (some string) None
         & info [ "b"; "bug" ] ~docv:"ID" ~doc:"A single bug id (default: all of Table 1).")
  in
  Cmd.v (Cmd.info "identify"
           ~exits:(unknown_bug_info :: common_exits)
           ~doc:"Identify security-critical invariants from known errata.")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ jobs_arg
          $ cache_term $ bug $ input_arg)

(* ---- infer ---- *)

let infer_cmd =
  let run verbose metrics trace_out jobs cache_dir limit =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    let mining = Scifinder_core.Pipeline.mine ~jobs ?cache_dir () in
    let optimized =
      (Scifinder_core.Pipeline.optimize mining.invariants).result.optimized
    in
    let ident = Scifinder_core.Pipeline.identify ~invariants:optimized Bugs.Table1.all in
    let inf = Scifinder_core.Pipeline.infer ~all_invariants:optimized ident.summary in
    Printf.printf
      "model: lambda %.4f, test accuracy %.0f%%, %d features selected\n"
      inf.chosen_lambda (100.0 *. inf.test_accuracy)
      (List.length inf.selected_features);
    Printf.printf "%d recommended, %d false positives, %d surviving (%d property classes)\n"
      (List.length inf.recommended) (List.length inf.inferred_fp)
      (List.length inf.surviving) inf.property_count;
    List.iteri
      (fun i (key, members) ->
         if i < limit then
           Printf.printf "%-40s (%d SCI) e.g. %s\n" key (List.length members)
             (Invariant.Expr.to_string (List.hd members)))
      (Scifinder_core.Shape.group inf.surviving);
    0
  in
  let limit =
    Arg.(value & opt int 40 & info [ "limit" ] ~doc:"Property classes to print.")
  in
  Cmd.v (Cmd.info "infer" ~exits:common_exits
           ~doc:"Run the full pipeline and print inferred security properties.")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ jobs_arg
          $ cache_term $ limit)

(* ---- verify ---- *)

let verify_cmd =
  let run verbose metrics trace_out jobs cache_dir bug_id input =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    match find_bug bug_id with
    | Error e ->
      Logs.err (fun m -> m "%s" e);
      unknown_bug_exit
    | Ok bug ->
      let invariants = load_or_mine ~jobs ?cache_dir input in
      let optimized = (Invopt.Pipeline.optimize invariants).optimized in
      let summary = Sci.Identify.run_all ~invariants:optimized Bugs.Table1.all in
      let battery = Assertions.Ovl.of_invariants summary.unique_sci in
      let buggy = Sci.Identify.capture_trigger ~fault:bug.fault bug.trigger in
      let clean = Sci.Identify.capture_trigger bug.trigger in
      let fired = Assertions.Monitor.fired_assertions battery buggy in
      let fired_clean = Assertions.Monitor.fired_assertions battery clean in
      let clean_names = List.map (fun (a : Assertions.Ovl.t) -> a.name) fired_clean in
      let real =
        List.filter
          (fun (a : Assertions.Ovl.t) -> not (List.mem a.name clean_names))
          fired
      in
      Printf.printf "%d assertions deployed; %d fire on the %s exploit\n"
        (List.length battery) (List.length real) bug.Bugs.Registry.id;
      List.iteri
        (fun i (a : Assertions.Ovl.t) ->
           if i < 10 then Printf.printf "  %s\n" (Assertions.Ovl.to_ovl_string a))
        real;
      if real = [] then begin
        Printf.printf "bug %s evades the assertion battery\n" bug.id;
        evasion_exit
      end
      else 0
  in
  let bug =
    Arg.(required & opt (some string) None
         & info [ "b"; "bug" ] ~docv:"ID" ~doc:"Bug to attack (required).")
  in
  Cmd.v (Cmd.info "verify"
           ~exits:(Cmd.Exit.info evasion_exit
                     ~doc:"when the bug evades the assertion battery."
                   :: unknown_bug_info :: common_exits)
           ~doc:"Dynamic verification: enforce the SCI as assertions against an exploit.")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ jobs_arg
          $ cache_term $ bug $ input_arg)

(* ---- campaign ---- *)

let campaign_cmd =
  let run verbose metrics trace_out jobs cache_dir input seed mutants triggers
      tries evidence =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    let invariants = load_or_mine ~jobs ?cache_dir input in
    let optimized = (Invopt.Pipeline.optimize invariants).optimized in
    let summary = Sci.Identify.run_all ~invariants:optimized Bugs.Table1.all in
    Logs.info (fun m ->
        m "campaign: %d mutants, %d triggers, %d assertions (seed %d)"
          mutants triggers (List.length summary.unique_sci) seed);
    let c =
      Scifinder_core.Pipeline.campaign ~seed ~mutants ~triggers ~tries
        ~sci:summary.unique_sci ()
    in
    Printf.printf
      "%d/%d mutants detected over %d fuzz triggers (%d clean-firing) in %.1fs\n"
      c.detected_total c.mutant_total c.trigger_count c.fp_trigger_count
      c.camp_seconds;
    Printf.printf "%-5s %8s %8s %12s %8s\n"
      "class" "mutants" "detected" "mean-latency" "fp-rate";
    List.iter
      (fun (cl : Scifinder_core.Pipeline.campaign_class) ->
         Printf.printf "%-5s %8d %8d %12s %8.2f\n"
           cl.class_name cl.class_total cl.class_detected
           (if Float.is_nan cl.class_mean_latency then "-"
            else Printf.sprintf "%.1f" cl.class_mean_latency)
           cl.class_fp_rate)
      c.classes;
    Printf.printf "fingerprint %s\n" c.fingerprint;
    if evidence then begin
      Printf.printf "evidence trails (%d detected mutants):\n"
        c.detected_total;
      List.iter
        (fun (o : Scifinder_core.Pipeline.mutant_outcome) ->
           if o.detected then
             Printf.printf
               "  %-5s %-4s caught by %s on trigger %s at record %d\n\
               \        %s\n"
               o.mutant.Bugs.Mutant.id
               (Bugs.Registry.category_name o.mutant.Bugs.Mutant.category)
               (Option.value o.assertion ~default:"?")
               o.trigger o.latency o.mutant.Bugs.Mutant.synopsis)
        c.outcomes
    end;
    0
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
           ~doc:"Campaign seed: mutants, triggers and results are a pure \
                 function of it.")
  in
  let mutants =
    Arg.(value & opt int 200
         & info [ "mutants" ] ~docv:"N" ~doc:"Generated semantic mutants.")
  in
  let triggers =
    Arg.(value & opt int 48
         & info [ "triggers" ] ~docv:"N"
           ~doc:"Fuzz-generated trigger programs in the shared pool.")
  in
  let tries =
    Arg.(value & opt int 3
         & info [ "tries" ] ~docv:"N"
           ~doc:"Triggers each mutant gets before counting as undetected.")
  in
  let evidence =
    Arg.(value & flag
         & info [ "evidence" ]
           ~doc:"After the class table, print one evidence line per \
                 detected mutant: the assertion that fired, the trigger \
                 program that exposed it, and the detection latency \
                 (first-firing record index).")
  in
  Cmd.v (Cmd.info "campaign" ~exits:common_exits
           ~doc:"Mutant-at-scale fault injection: generated semantic \
                 mutants vs the compiled SCI battery, reported per \
                 CF/XR/MA/IE/CR/RU class.")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ jobs_arg
          $ cache_term $ input_arg $ seed $ mutants $ triggers $ tries
          $ evidence)

(* ---- verilog ---- *)

let verilog_cmd =
  let run verbose metrics trace_out jobs cache_dir input output =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    let invariants = load_or_mine ~jobs ?cache_dir input in
    let optimized = (Invopt.Pipeline.optimize invariants).optimized in
    let summary = Sci.Identify.run_all ~invariants:optimized Bugs.Table1.all in
    let reps = Scifinder_core.Shape.representatives summary.unique_sci in
    let battery = Assertions.Ovl.of_invariants reps in
    let cost = Assertions.Cost.battery_overhead battery in
    let text = Assertions.Verilog.emit battery in
    (match output with
     | Some path ->
       let oc = open_out path in
       Fun.protect ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc text);
       Printf.printf "wrote %s: %d assertions, est. %d LUTs (%.2f%% of the SoC)\n"
         path (List.length battery) cost.total_luts cost.lut_pct
     | None -> print_string text);
    0
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the module here (default: stdout).")
  in
  Cmd.v (Cmd.info "verilog" ~exits:common_exits
           ~doc:"Emit a synthesizable monitor module for the identified SCI.")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ jobs_arg
          $ cache_term $ input_arg $ output)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run verbose metrics trace_out jobs cache_dir seed budget max_steps
      no_mine output lake =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    Logs.info (fun m ->
        m "baseline coverage: tracing the %d hand-written workloads"
          (List.length Workloads.Suite.all));
    let baseline = Fuzz.Coverage.of_workloads Workloads.Suite.all in
    let corpus =
      Fuzz.Corpus.run ~max_steps ~initial:baseline ~seed ~budget ()
    in
    let corpus = Fuzz.Corpus.minimize corpus in
    print_string (Fuzz.Corpus.report corpus);
    (match Fuzz.Corpus.to_workloads corpus with
     | [] -> Printf.printf "no accepted programs; nothing to mine\n"
     | workloads ->
       Fuzz.Corpus.register corpus;
       (match lake with
        | None -> ()
        | Some dir ->
          (* Appending each run's traces grows the lake across seeds —
             replication without re-simulation. Each accepted program
             owns its segment file, so recording shards across the
             domain pool. *)
          let s =
            Scifinder_core.Pipeline.record_lake ~workloads
              ~names:(Fuzz.Corpus.names corpus) ~jobs ~dir ()
          in
          Printf.printf
            "lake: appended %d records (%d bytes) across %d segments in %s\n"
            s.Scifinder_core.Pipeline.lake_records
            s.Scifinder_core.Pipeline.lake_bytes
            s.Scifinder_core.Pipeline.lake_segments dir);
       if not no_mine then begin
         let invariants =
           Scifinder_core.Pipeline.mine_invariants ~jobs ?cache_dir
             ~names:(Fuzz.Corpus.names corpus) ()
         in
         let canon =
           List.sort_uniq String.compare
             (List.map Invariant.Expr.to_string invariants)
         in
         Printf.printf "mined %d invariants from the fuzz corpus (set %s)\n"
           (List.length invariants)
           (Digest.to_hex (Digest.string (String.concat "\n" canon)));
         match output with
         | Some path ->
           Invariant.Io.save path invariants;
           Printf.printf "saved %d invariants to %s\n"
             (List.length invariants) path
         | None -> ()
       end);
    0
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
           ~doc:"PRNG seed; everything downstream is a pure function of \
                 ($(docv), --budget).")
  in
  let budget =
    Arg.(value & opt int 200
         & info [ "budget" ] ~docv:"K"
           ~doc:"Candidate programs to generate.")
  in
  let max_steps =
    Arg.(value & opt int Fuzz.Corpus.default_max_steps
         & info [ "max-steps" ] ~docv:"N"
           ~doc:"Per-candidate step budget; candidates that exhaust it \
                 are rejected as runaways (fuzz.timeout).")
  in
  let no_mine =
    Arg.(value & flag
         & info [ "no-mine" ]
           ~doc:"Stop after the corpus loop; skip mining the accepted \
                 programs.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Save the fuzz-mined invariants for identify/verify runs.")
  in
  let lake =
    Arg.(value & opt (some string) None
         & info [ "lake" ] ~docv:"DIR"
           ~doc:"Append the accepted programs' traces to the on-disk \
                 trace lake at $(docv) (created if missing), one segment \
                 per workload, for later $(b,mine --from-lake) runs. \
                 Recording runs $(b,-j) workloads in parallel (each \
                 owns its segment file). Re-running with different \
                 seeds accumulates.")
  in
  Cmd.v (Cmd.info "fuzz" ~exits:common_exits
           ~doc:"Grow a coverage-guided corpus of generated OR1200 \
                 programs and mine it.")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ jobs_arg
          $ cache_term $ seed $ budget $ max_steps $ no_mine $ output $ lake)

(* ---- trace ---- *)

let trace_cmd =
  let run verbose metrics trace_out jobs workload_name limit point_filter
      no_decode_cache record_out =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    (* Accepted for CLI uniformity with [fuzz --lake] and
       [mine --from-lake]: a single workload records on one domain. *)
    if jobs > 1 then
      Logs.info (fun m ->
          m "trace records one workload on one domain; -j %d shards \
             fuzz --lake recording and mine --from-lake replay" jobs);
    match Workloads.Suite.by_name workload_name with
    | None ->
      Logs.err (fun m ->
          m "unknown workload %S (try: scifinder workloads)" workload_name);
      runtime_error_exit
    | Some w ->
      let machine =
        Cpu.Machine.create ~tick_period:w.tick_period
          ~decode_cache:(not no_decode_cache) ()
      in
      Cpu.Machine.load_image machine w.image;
      Cpu.Machine.set_pc machine w.entry;
      let pc_slot = Trace.Var.dual_index Trace.Var.Pc in
      let shown = ref 0 in
      let writer =
        Option.map
          (fun path -> Trace.Segment.create ~workload:w.name path)
          record_out
      in
      (* The whole trace streams through the fold; nothing is
         materialised no matter how long the program runs — records
         headed for the lake leave through the segment writer's
         fixed-size block buffer. *)
      let (total, matched), outcome =
        Fun.protect
          ~finally:(fun () -> Option.iter Trace.Segment.close writer)
          (fun () ->
             Trace.Runner.run_fold ~init:(0, 0)
               ~f:(fun (total, matched) (r : Trace.Record.t) ->
                   Option.iter (fun sw -> Trace.Segment.add sw r) writer;
                   let wanted =
                     match point_filter with
                     | None -> true
                     | Some p -> String.equal r.Trace.Record.point p
                   in
                   if wanted && !shown < limit then begin
                     Printf.printf "%08x  %s\n"
                       r.Trace.Record.values.(pc_slot) r.Trace.Record.point;
                     incr shown
                   end;
                   (total + 1, if wanted then matched + 1 else matched))
               machine)
      in
      (match writer, record_out with
       | Some sw, Some path ->
         Printf.printf "recorded %d records to %s (%d bytes)\n"
           (Trace.Segment.written sw) path
           (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0)
       | _ -> ());
      if matched > !shown then
        Printf.printf "... (%d more; raise --limit)\n" (matched - !shown);
      Printf.printf "%d records (%d matching) from %s, outcome: %s\n"
        total matched w.name
        (match outcome with
         | `Halted Cpu.Machine.Exit -> "exit"
         | `Halted Cpu.Machine.Stalled -> "stalled"
         | `Halted Cpu.Machine.Double_fault -> "double fault"
         | `Max_steps -> "step budget exhausted");
      let hits, misses, invalidates =
        Cpu.Machine.decode_cache_stats machine
      in
      if hits + misses > 0 then
        Printf.printf
          "decode cache: %d hits, %d misses, %d invalidates (%.2f%% hit rate)\n"
          hits misses invalidates
          (100.0 *. float_of_int hits /. float_of_int (hits + misses));
      0
  in
  let workload =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to trace (see $(b,scifinder workloads)).")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Records to print.")
  in
  let point =
    Arg.(value & opt (some string) None
         & info [ "point" ] ~docv:"MNEMONIC"
           ~doc:"Only records of this program point (e.g. l.rfe).")
  in
  let no_decode_cache =
    Arg.(value & flag
         & info [ "no-decode-cache" ]
           ~doc:"Disable the pre-decoded instruction cache (identical \
                 trace, baseline speed).")
  in
  let record_out =
    Arg.(value & opt (some string) None
         & info [ "record-out" ] ~docv:"FILE"
           ~doc:"Append every record (ignoring --point/--limit, which \
                 only shape what is printed) to the segment file $(docv) \
                 — a durable, replayable slice of the trace lake for \
                 $(b,mine --from-lake).")
  in
  Cmd.v (Cmd.info "trace" ~exits:common_exits
           ~doc:"Stream one workload's fused trace records without \
                 materialising the trace.")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ jobs_arg
          $ workload $ limit $ point $ no_decode_cache $ record_out)

(* ---- report ---- *)

let report_cmd =
  let run verbose md top file =
    setup_logs verbose;
    run_guarded @@ fun () ->
    let r = Obs.Report.load_file file in
    print_string
      (Obs.Report.render ~top ~format:(if md then `Md else `Text) r);
    0
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"RUN.jsonl"
           ~doc:"A telemetry stream written by $(b,--metrics).")
  in
  let md =
    Arg.(value & flag
         & info [ "md"; "markdown" ]
           ~doc:"Render GitHub-flavoured markdown tables instead of \
                 aligned text.")
  in
  let top =
    Arg.(value & opt int 5
         & info [ "top" ] ~docv:"N"
           ~doc:"Slowest workload shards to list.")
  in
  Cmd.v (Cmd.info "report" ~exits:common_exits
           ~doc:"Digest a --metrics telemetry stream into a run report: \
                 the span tree with self vs total time, the per-family \
                 candidate funnel, cache hit/stale rates and the slowest \
                 shards. Unparseable lines are skipped and counted, \
                 never fatal.")
    Term.(const run $ verbose_arg $ md $ top $ file)

(* ---- bugs / workloads listings ---- *)

let bugs_cmd =
  let run () =
    Printf.printf "%-5s %-4s %-6s %s\n" "Id" "Cls" "ISA?" "Synopsis";
    List.iter
      (fun (b : Bugs.Registry.t) ->
         Printf.printf "%-5s %-4s %-6s %s  [%s]\n"
           b.id
           (Bugs.Registry.category_name b.category)
           (if b.isa_visible then "yes" else "uarch")
           b.synopsis b.source)
      (Bugs.Table1.all @ Bugs.Amd_errata.all);
    0
  in
  Cmd.v (Cmd.info "bugs" ~doc:"List the security-critical bug registry.")
    Term.(const run $ const ())

let workloads_cmd =
  let run () =
    List.iter
      (fun (w : Workloads.Rt.t) ->
         Printf.printf "%-12s %5d words%s\n" w.name (List.length w.image)
           (if w.tick_period > 0 then
              Printf.sprintf "  (tick timer every %d insns)" w.tick_period
            else ""))
      Workloads.Suite.all;
    0
  in
  Cmd.v (Cmd.info "workloads" ~doc:"List the 17-program trace corpus.")
    Term.(const run $ const ())

(* ---- serve ---- *)

let serve_cmd =
  let run verbose metrics trace_out socket port host jobs queue idle_timeout
      cache_dir mine_jobs =
    setup_logs verbose;
    setup_metrics metrics trace_out;
    run_guarded @@ fun () ->
    match (socket, port) with
    | None, None | Some _, Some _ ->
      Logs.err (fun m ->
          m "serve needs exactly one of --socket PATH or --port N");
      runtime_error_exit
    | _ ->
      let listen =
        match socket with
        | Some path -> Serve.Server.Unix_sock path
        | None -> Serve.Server.Tcp (host, Option.get port)
      in
      let cfg =
        { Serve.Server.listen;
          jobs = max 1 jobs;
          max_inflight = max 1 queue;
          idle_timeout;
          cache_dir;
          mine_jobs = max 1 mine_jobs }
      in
      let srv = Serve.Server.create cfg in
      (* Override the exit-on-signal handlers from setup_metrics: the
         server has a real graceful path (drain queued jobs, flush every
         connection and the telemetry sink) and returns 0 here. *)
      List.iter
        (fun s ->
           Sys.set_signal s
             (Sys.Signal_handle (fun _ -> Serve.Server.stop srv)))
        [ Sys.sigint; Sys.sigterm ];
      (match Serve.Server.sockaddr srv with
       | Unix.ADDR_UNIX path ->
         Logs.app (fun m ->
             m "serving on %s (%d workers, inflight window %d)" path cfg.jobs
               cfg.max_inflight)
       | Unix.ADDR_INET (addr, p) ->
         Logs.app (fun m ->
             m "serving on %s:%d (%d workers, inflight window %d)"
               (Unix.string_of_inet_addr addr) p cfg.jobs cfg.max_inflight));
      Serve.Server.run srv;
      Logs.app (fun m -> m "server stopped");
      0
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on the Unix-domain socket $(docv) (a stale socket \
                 file is replaced).")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"N"
           ~doc:"Listen on TCP port $(docv) ($(b,0) picks a free port; \
                 the bound address is logged).")
  in
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR"
           ~doc:"Bind address for $(b,--port).")
  in
  let jobs =
    Arg.(value & opt int 2
         & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains executing jobs; sessions are scheduled \
                 over them fair round-robin.")
  in
  let queue =
    Arg.(value & opt int 4
         & info [ "queue" ] ~docv:"N"
           ~doc:"Per-session inflight bound (queued + running). Requests \
                 beyond it are refused with an explicit $(i,busy) \
                 response instead of queueing without limit.")
  in
  let idle_timeout =
    Arg.(value & opt float 300.
         & info [ "idle-timeout" ] ~docv:"SECONDS"
           ~doc:"Evict a session (and its engine state) after $(docv) \
                 without requests; $(b,0) keeps sessions forever.")
  in
  let mine_jobs =
    Arg.(value & opt int 1
         & info [ "mine-jobs" ] ~docv:"N"
           ~doc:"Trace-mining shards per job (default 1: the sequential \
                 byte-identity reference; see DESIGN.md).")
  in
  Cmd.v (Cmd.info "serve" ~exits:common_exits
           ~doc:"Run the persistent mining service: per-client sessions \
                 with incremental engine state, fair queueing across \
                 sessions, bounded inflight windows with explicit \
                 backpressure, idle eviction and graceful shutdown on \
                 SIGINT/SIGTERM. Speaks the length-framed JSONL protocol \
                 of $(b,scifinder client) (see DESIGN.md).")
    Term.(const run $ verbose_arg $ metrics_arg $ trace_out_arg $ socket
          $ port $ host $ jobs $ queue $ idle_timeout $ cache_term
          $ mine_jobs)

(* ---- client ---- *)

let busy_exit = 4

let busy_info =
  Cmd.Exit.info busy_exit
    ~doc:"when the server refuses the request (session inflight window \
          full); resubmit after a response frees a slot."

let client_exits = busy_info :: common_exits

let client_socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
         ~doc:"Connect to the Unix-domain socket $(docv).")

let client_port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"N" ~doc:"Connect to TCP port $(docv).")

let client_host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Server address for $(b,--port).")

let client_session_arg =
  Arg.(value & opt (some string) None
       & info [ "session" ] ~docv:"NAME"
         ~doc:"Mining session to address (default: $(i,default)). Each \
               session accumulates engine state across requests \
               server-side.")

(* Connect, run [f], and map connection/protocol failures to exit 1.
   [f] receives the connected client and returns the exit code. *)
let with_client socket port host f =
  match (socket, port) with
  | None, None | Some _, Some _ ->
    Logs.err (fun m ->
        m "client needs exactly one of --socket PATH or --port N");
    runtime_error_exit
  | _ ->
    (match
       match socket with
       | Some path -> Serve.Client.connect_unix path
       | None -> Serve.Client.connect_tcp ~host ~port:(Option.get port)
     with
     | exception Unix.Unix_error (e, _, _) ->
       Logs.err (fun m -> m "cannot connect: %s" (Unix.error_message e));
       runtime_error_exit
     | c ->
       Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
       (try f c with
        | Serve.Client.Protocol_error msg ->
          Logs.err (fun m -> m "%s" msg);
          runtime_error_exit
        | Unix.Unix_error (e, fn, _) ->
          Logs.err (fun m -> m "%s: %s" fn (Unix.error_message e));
          runtime_error_exit))

let print_response = function
  | Serve.Proto.Mined { records; total_records; rows; invariants; digest; _ }
    ->
    List.iter
      (fun (r : Serve.Proto.row) ->
         Printf.printf "%-24s %6d unmodified %6d fresh %6d deleted %6d total\n"
           r.r_label r.r_unmodified r.r_fresh r.r_deleted r.r_total)
      rows;
    Printf.printf "mined %d records (session total %d)\n" records
      total_records;
    if invariants >= 0 then Printf.printf "%d invariants\n" invariants;
    Option.iter (fun d -> Printf.printf "engine digest %s\n" d) digest;
    0
  | Checked { supported; violated; vacuous; statuses; _ } ->
    List.iteri (fun i s -> Printf.printf "%3d %s\n" (i + 1) s) statuses;
    Printf.printf "%d supported, %d violated, %d vacuous\n" supported
      violated vacuous;
    0
  | Campaigned { mutants; detected; fp_triggers; fingerprint; _ } ->
    Printf.printf "%d/%d mutants detected, %d false-positive triggers [%s]\n"
      detected mutants fp_triggers fingerprint;
    0
  | Snapshotted { path; bytes; digest; _ } ->
    Printf.printf "snapshot %s (%d bytes, digest %s)\n" path bytes digest;
    0
  | Stats
      { uptime_ms; sessions; queued; running; completed; busy; evicted;
        p99_job_ms; _ } ->
    Printf.printf
      "uptime %d ms, %d sessions, %d queued, %d running, %d completed, \
       %d busy, %d evicted, p99 job %.1f ms\n"
      uptime_ms (List.length sessions) queued running completed busy evicted
      p99_job_ms;
    List.iter
      (fun (s : Serve.Proto.session_stat) ->
         Printf.printf "  %-16s %8d records %3d sources %3d queued%s\n"
           s.st_name s.st_records s.st_sources s.st_queued
           (if s.st_running then " (running)" else ""))
      sessions;
    0
  | Cancelled { target; found; _ } ->
    Printf.printf "cancel %d: %s\n" target
      (if found then "dropped" else "not queued");
    0
  | Busy { queued; limit; _ } ->
    Logs.err (fun m ->
        m "server busy: %d/%d inflight for this session" queued limit);
    busy_exit
  | Bye _ ->
    Printf.printf "server shutting down\n";
    0
  | Failed { message; _ } ->
    Logs.err (fun m -> m "%s" message);
    runtime_error_exit

let client_call socket port host session request =
  with_client socket port host @@ fun c ->
  print_response (Serve.Client.call c ?session request)

let client_mine_cmd =
  let run verbose socket port host session workloads fuzz seed lake label
      quick digest =
    setup_logs verbose;
    run_guarded @@ fun () ->
    let source =
      match (workloads, fuzz, lake) with
      | [], None, None ->
        Error "one of -w NAME, --fuzz N or --lake DIR is required"
      | ws, None, None -> Ok (Serve.Proto.Names ws)
      | [], Some count, None -> Ok (Serve.Proto.Fuzz { seed; count })
      | [], None, Some dir -> Ok (Serve.Proto.Lake dir)
      | _ -> Error "-w, --fuzz and --lake are mutually exclusive"
    in
    match source with
    | Error e ->
      Logs.err (fun m -> m "%s" e);
      runtime_error_exit
    | Ok source ->
      client_call socket port host session
        (Serve.Proto.Mine { source; label; row = not quick; digest })
  in
  let workloads =
    Arg.(value & opt_all string []
         & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Mine this workload into the session (repeatable).")
  in
  let fuzz =
    Arg.(value & opt (some int) None
         & info [ "fuzz" ] ~docv:"N"
           ~doc:"Mine $(docv) deterministic fuzz candidates instead of \
                 named workloads.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S" ~doc:"Fuzz seed for $(b,--fuzz).")
  in
  let lake =
    Arg.(value & opt (some string) None
         & info [ "lake" ] ~docv:"DIR"
           ~doc:"Mine the trace-lake directory $(docv) ($(i,server-side) \
                 path) instead of simulating workloads.")
  in
  let label =
    Arg.(value & opt (some string) None
         & info [ "label" ] ~docv:"LABEL"
           ~doc:"Figure 3 row label (default: the workload names).")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
           ~doc:"Absorb the traces without extracting invariants — \
                 cheaper when batching many mine requests before one \
                 $(b,check) or final mine.")
  in
  let digest =
    Arg.(value & flag
         & info [ "digest" ]
           ~doc:"Also return the session engine's snapshot digest (for \
                 determinism checks against a batch run).")
  in
  Cmd.v (Cmd.info "mine" ~exits:client_exits
           ~doc:"Mine workloads, fuzz candidates or a lake into a session.")
    Term.(const run $ verbose_arg $ client_socket_arg $ client_port_arg
          $ client_host_arg $ client_session_arg $ workloads $ fuzz $ seed
          $ lake $ label $ quick $ digest)

let client_check_cmd =
  let run verbose socket port host session file =
    setup_logs verbose;
    run_guarded @@ fun () ->
    let text =
      if file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    client_call socket port host session (Serve.Proto.Check { text })
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
           ~doc:"Invariant file in the $(b,mine -o) text grammar \
                 ($(b,-) reads stdin). Each invariant is validated \
                 against everything the session has mined.")
  in
  Cmd.v (Cmd.info "check" ~exits:client_exits
           ~doc:"Check invariants against a session's mined corpus.")
    Term.(const run $ verbose_arg $ client_socket_arg $ client_port_arg
          $ client_host_arg $ client_session_arg $ file)

let client_campaign_cmd =
  let run verbose socket port host session seed mutants triggers tries =
    setup_logs verbose;
    run_guarded @@ fun () ->
    client_call socket port host session
      (Serve.Proto.Campaign { seed; mutants; triggers; tries })
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Mutant seed.")
  in
  let mutants =
    Arg.(value & opt int 200
         & info [ "mutants" ] ~docv:"N" ~doc:"Mutants to generate.")
  in
  let triggers =
    Arg.(value & opt int 48
         & info [ "triggers" ] ~docv:"N"
           ~doc:"Trigger workloads per mutant.")
  in
  let tries =
    Arg.(value & opt int 3
         & info [ "tries" ] ~docv:"N" ~doc:"Generation attempts per slot.")
  in
  Cmd.v (Cmd.info "campaign" ~exits:client_exits
           ~doc:"Run the mutant campaign against the session's optimised \
                 SCIs.")
    Term.(const run $ verbose_arg $ client_socket_arg $ client_port_arg
          $ client_host_arg $ client_session_arg $ seed $ mutants $ triggers
          $ tries)

let client_snapshot_cmd =
  let run verbose socket port host session path =
    setup_logs verbose;
    run_guarded @@ fun () ->
    client_call socket port host session (Serve.Proto.Snapshot { path })
  in
  let path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH"
           ~doc:"Where the $(i,server) writes the engine snapshot.")
  in
  Cmd.v (Cmd.info "snapshot" ~exits:client_exits
           ~doc:"Persist the session's engine state server-side.")
    Term.(const run $ verbose_arg $ client_socket_arg $ client_port_arg
          $ client_host_arg $ client_session_arg $ path)

let client_status_cmd =
  let run verbose socket port host =
    setup_logs verbose;
    run_guarded @@ fun () ->
    client_call socket port host None Serve.Proto.Status
  in
  Cmd.v (Cmd.info "status" ~exits:client_exits
           ~doc:"Print server uptime, queue depths, per-session state and \
                 the p99 job latency.")
    Term.(const run $ verbose_arg $ client_socket_arg $ client_port_arg
          $ client_host_arg)

let client_cancel_cmd =
  let run verbose socket port host session target =
    setup_logs verbose;
    run_guarded @@ fun () ->
    client_call socket port host session (Serve.Proto.Cancel { target })
  in
  let target =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"ID"
           ~doc:"Request id to drop from the session's queue (running \
                 jobs cannot be cancelled).")
  in
  Cmd.v (Cmd.info "cancel" ~exits:client_exits
           ~doc:"Drop a queued request from a session.")
    Term.(const run $ verbose_arg $ client_socket_arg $ client_port_arg
          $ client_host_arg $ client_session_arg $ target)

let client_shutdown_cmd =
  let run verbose socket port host =
    setup_logs verbose;
    run_guarded @@ fun () ->
    client_call socket port host None Serve.Proto.Shutdown
  in
  Cmd.v (Cmd.info "shutdown" ~exits:client_exits
           ~doc:"Ask the server to drain queued jobs and stop.")
    Term.(const run $ verbose_arg $ client_socket_arg $ client_port_arg
          $ client_host_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client" ~exits:client_exits
       ~doc:"Talk to a running $(b,scifinder serve) over its socket: \
             mine into sessions, check invariants, run campaigns, \
             snapshot engines, inspect or control the server.")
    [ client_mine_cmd; client_check_cmd; client_campaign_cmd;
      client_snapshot_cmd; client_status_cmd; client_cancel_cmd;
      client_shutdown_cmd ]

let () =
  let doc = "semi-automatic generation of security-critical processor invariants" in
  let info = Cmd.info "scifinder" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
                     [ mine_cmd; identify_cmd; infer_cmd; verify_cmd;
                       campaign_cmd; verilog_cmd; fuzz_cmd; trace_cmd;
                       serve_cmd; client_cmd; report_cmd; bugs_cmd;
                       workloads_cmd ]))
