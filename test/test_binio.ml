(* Hostile-input suite for the [Util.Binio] reader surface: every torn,
   overlong, overflowing or otherwise attacker-shaped byte string must
   surface as [Truncated] — never [Invalid_argument], never a silently
   wrapped or garbage value. The trace lake feeds on-disk bytes straight
   into these readers, so this is the codec's security boundary. *)

module B = Util.Binio

let qtest ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let expect_truncated what f =
  match f () with
  | (_ : int) -> Alcotest.failf "%s: decoded instead of raising" what
  | exception B.Truncated -> ()
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Truncated" what
      (Printexc.to_string e)

let bytes_of l = String.init (List.length l) (fun i -> Char.chr (List.nth l i))

(* ---- varints ---- *)

let test_uint_roundtrip () =
  List.iter
    (fun v ->
       let w = B.writer () in
       B.write_uint w v;
       let r = B.reader (B.contents w) in
       Alcotest.(check int) (string_of_int v) v (B.read_uint r);
       Alcotest.(check bool) "fully consumed" true (B.eof r))
    [ 0; 1; 0x7F; 0x80; 300; 0xFFFF; 1 lsl 31; (1 lsl 62) - 1; max_int ]

let test_int_roundtrip () =
  List.iter
    (fun v ->
       let w = B.writer () in
       B.write_int w v;
       let r = B.reader (B.contents w) in
       Alcotest.(check int) (string_of_int v) v (B.read_int r))
    [ 0; 1; -1; 2; -2; 0x7FFF_FFFF; -0x8000_0000; max_int / 2; -(max_int / 2) ]

let test_uint_overlong_rejected () =
  (* Ten continuation bytes: shifts past the 63-bit int entirely. The
     old reader wrapped these through the sign bit into garbage. *)
  expect_truncated "10 x 0x80" (fun () ->
      B.read_uint (B.reader (String.make 10 '\x80')));
  expect_truncated "9 continuations + 0x01" (fun () ->
      B.read_uint (B.reader (String.make 9 '\x80' ^ "\x01")));
  (* 0xFF continuations exercise nonzero dropped bits. *)
  expect_truncated "10 x 0xFF + 0x01" (fun () ->
      B.read_uint (B.reader (String.make 10 '\xFF' ^ "\x01")))

let test_uint_sign_bit_rejected () =
  (* Nine bytes whose final byte reaches the sign bit: 8 continuations
     put the last byte at shift 56, where anything above 0x3F lands on
     or past bit 62. The old reader returned a negative int. *)
  expect_truncated "final byte 0x40 at shift 56" (fun () ->
      B.read_uint (B.reader (String.make 8 '\x80' ^ "\x40")));
  expect_truncated "final byte 0x7F at shift 56" (fun () ->
      B.read_uint (B.reader (String.make 8 '\xFF' ^ "\x7F")));
  (* ...while 0x3F there is the top of the canonical range: max_int. *)
  let r = B.reader (String.make 8 '\xFF' ^ "\x3F") in
  Alcotest.(check int) "canonical max_int decodes" max_int (B.read_uint r)

let test_uint_noncanonical_rejected () =
  (* Trailing zero padding gives one value two encodings (0x80 0x00 is
     an overlong 0); canonical readers must reject it. *)
  expect_truncated "0x80 0x00" (fun () ->
      B.read_uint (B.reader (bytes_of [ 0x80; 0x00 ])));
  expect_truncated "0x81 0x80 0x00" (fun () ->
      B.read_uint (B.reader (bytes_of [ 0x81; 0x80; 0x00 ])))

let test_uint_truncated_mid_varint () =
  expect_truncated "empty input" (fun () -> B.read_uint (B.reader ""));
  expect_truncated "lone continuation" (fun () ->
      B.read_uint (B.reader "\x80"));
  expect_truncated "cut after 3 continuations" (fun () ->
      B.read_uint (B.reader "\xFF\xFF\xFF"))

(* ---- length-prefixed strings ---- *)

let test_hostile_length_prefix () =
  (* A length prefix of max_int over a 3-byte body: the old bounds check
     computed [pos + n], wrapped negative, passed, and String.sub raised
     Invalid_argument. *)
  let w = B.writer () in
  B.write_uint w max_int;
  B.write_raw w "abc";
  let data = B.contents w in
  expect_truncated "max_int length prefix" (fun () ->
      String.length (B.read_string (B.reader data)));
  (* Same attack straight through read_string_exact. *)
  let r = B.reader "abc" in
  expect_truncated "read_string_exact max_int" (fun () ->
      String.length (B.read_string_exact r max_int));
  expect_truncated "read_string_exact max_int - 1" (fun () ->
      String.length (B.read_string_exact r (max_int - 1)));
  expect_truncated "negative length" (fun () ->
      String.length (B.read_string_exact r (-1)));
  (* The reader is still usable after the rejected reads. *)
  Alcotest.(check string) "cursor undisturbed" "abc"
    (B.read_string_exact r 3)

(* ---- truncation sweep over a composite payload ---- *)

(* A representative payload using the full writer surface; reading it
   back at every strict prefix must raise Truncated — at no offset may a
   read raise Invalid_argument or return a full parse. *)
let composite () =
  let w = B.writer () in
  B.write_uint w 0;
  B.write_uint w 300;
  B.write_uint w max_int;
  B.write_int w (-12345);
  B.write_bool w true;
  B.write_string w "segment";
  B.write_string w (String.make 40 '\xFF');
  B.write_raw w "RAW!";
  B.contents w

let read_composite data =
  let r = B.reader data in
  let a = B.read_uint r in
  let b = B.read_uint r in
  let c = B.read_uint r in
  let d = B.read_int r in
  let e = B.read_bool r in
  let s1 = B.read_string r in
  let s2 = B.read_string r in
  let raw = B.read_string_exact r 4 in
  (a, b, c, d, e, s1, s2, raw)

let test_truncation_at_every_offset () =
  let data = composite () in
  let full = read_composite data in
  Alcotest.(check bool) "whole payload parses" true
    (full = (0, 300, max_int, -12345, true, "segment", String.make 40 '\xFF', "RAW!"));
  for cut = 0 to String.length data - 1 do
    match read_composite (String.sub data 0 cut) with
    | _ -> Alcotest.failf "prefix of %d bytes parsed fully" cut
    | exception B.Truncated -> ()
    | exception e ->
      Alcotest.failf "prefix of %d bytes raised %s" cut
        (Printexc.to_string e)
  done

(* ---- random hostile bytes ---- *)

let prop_random_bytes_never_invalid_argument =
  qtest "random bytes: read_uint returns >= 0 or raises Truncated"
    QCheck.(string_of_size Gen.(int_bound 24))
    (fun data ->
       match B.read_uint (B.reader data) with
       | v -> v >= 0
       | exception B.Truncated -> true)

let prop_random_bytes_string_reader =
  qtest "random bytes: read_string never raises Invalid_argument"
    QCheck.(string_of_size Gen.(int_bound 64))
    (fun data ->
       match B.read_string (B.reader data) with
       | s -> String.length s <= String.length data
       | exception B.Truncated -> true)

let prop_uint_roundtrip_random =
  qtest "uint roundtrip over random non-negative ints"
    QCheck.(map abs int)
    (fun v ->
       let v = if v < 0 then 0 else v in
       let w = B.writer () in
       B.write_uint w v;
       B.read_uint (B.reader (B.contents w)) = v)

let prop_int_roundtrip_random =
  qtest "int roundtrip over random ints"
    QCheck.(int_range (-0x3FFF_FFFF_FFFF) 0x3FFF_FFFF_FFFF)
    (fun v ->
       let w = B.writer () in
       B.write_int w v;
       B.read_int (B.reader (B.contents w)) = v)

(* ---- atomic_write ---- *)

let test_atomic_write_contents_and_cleanup () =
  let path = Filename.temp_file "scifinder_binio" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       B.atomic_write path "first";
       Alcotest.(check string) "written" "first" (B.read_file path);
       B.atomic_write path "second, longer payload";
       Alcotest.(check string) "overwritten" "second, longer payload"
         (B.read_file path);
       (* No orphaned temp files in the destination directory. *)
       let dir = Filename.dirname path in
       let leftovers =
         Array.to_list (Sys.readdir dir)
         |> List.filter (fun n ->
             String.length n >= 5
             && String.sub n 0 5 = ".snap"
             && Filename.check_suffix n ".tmp")
       in
       Alcotest.(check (list string)) "no temp files left" [] leftovers)

(* ---- Fsname encoding ---- *)

let test_fsname_safe_passthrough () =
  Alcotest.(check string) "plain name unchanged" "basicmath-01_x"
    (Util.Fsname.encode "basicmath-01_x")

let test_fsname_hostile_names () =
  List.iter
    (fun name ->
       let enc = Util.Fsname.encode name in
       Alcotest.(check bool)
         (Printf.sprintf "%S encodes to a single component" name)
         false
         (String.contains enc '/' || String.contains enc '\x00'
          || String.equal enc ".." || String.equal enc ".");
       Alcotest.(check (option string))
         (Printf.sprintf "%S decodes back" name)
         (Some name) (Util.Fsname.decode enc))
    [ "../../etc/passwd"; "a/b"; ".."; "."; "%2F"; "nul\x00byte"; "" ]

let prop_fsname_roundtrip =
  qtest "Fsname encode/decode roundtrip"
    QCheck.(string_of_size Gen.(int_bound 32))
    (fun name ->
       Util.Fsname.decode (Util.Fsname.encode name) = Some name)

let () =
  Alcotest.run "binio"
    [ ("varints",
       [ Alcotest.test_case "uint roundtrip" `Quick test_uint_roundtrip;
         Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
         Alcotest.test_case "overlong rejected" `Quick
           test_uint_overlong_rejected;
         Alcotest.test_case "sign-bit overflow rejected" `Quick
           test_uint_sign_bit_rejected;
         Alcotest.test_case "non-canonical padding rejected" `Quick
           test_uint_noncanonical_rejected;
         Alcotest.test_case "truncated mid-varint" `Quick
           test_uint_truncated_mid_varint;
         prop_uint_roundtrip_random;
         prop_int_roundtrip_random ]);
      ("strings",
       [ Alcotest.test_case "hostile length prefix" `Quick
           test_hostile_length_prefix ]);
      ("torn input",
       [ Alcotest.test_case "truncation at every byte offset" `Quick
           test_truncation_at_every_offset;
         prop_random_bytes_never_invalid_argument;
         prop_random_bytes_string_reader ]);
      ("atomic write",
       [ Alcotest.test_case "contents and cleanup" `Quick
           test_atomic_write_contents_and_cleanup ]);
      ("fsname",
       [ Alcotest.test_case "safe passthrough" `Quick
           test_fsname_safe_passthrough;
         Alcotest.test_case "hostile names" `Quick test_fsname_hostile_names;
         prop_fsname_roundtrip ]) ]
