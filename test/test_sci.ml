(* SCI identification: the checker, the buggy-vs-clean differencing, and
   the false-positive accounting of §3.3. *)

module Expr = Invariant.Expr
module Var = Trace.Var

let g3 = Var.post_id (Var.Gpr 3)
let g0 = Var.post_id (Var.Gpr 0)

let record ?(point = "l.add") assignments =
  let values = Array.make Var.total 0 in
  List.iter (fun (id, v) -> values.(id) <- v) assignments;
  { Trace.Record.point; values; mask = Array.make Var.total true }

let inv ?(point = "l.add") body = { Expr.point; body }

let test_checker_violations () =
  let invs =
    [ inv (Expr.Cmp (Expr.Eq, Expr.V g0, Expr.Imm 0));
      inv (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 7));
      inv ~point:"l.sub" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 9)) ]
  in
  let idx = Sci.Checker.index invs in
  let records =
    [ record [ (g0, 0); (g3, 7) ];          (* all fine *)
      record [ (g0, 5); (g3, 7) ];          (* violates g0 = 0 *)
      record ~point:"l.sub" [ (g3, 7) ] ]   (* violates the l.sub one *)
  in
  let violated = Sci.Checker.violations idx records in
  Alcotest.(check int) "two distinct violations" 2 (List.length violated)

let test_checker_dedups () =
  let invs = [ inv (Expr.Cmp (Expr.Eq, Expr.V g0, Expr.Imm 0)) ] in
  let idx = Sci.Checker.index invs in
  let records = List.init 10 (fun _ -> record [ (g0, 1) ]) in
  Alcotest.(check int) "reported once" 1
    (List.length (Sci.Checker.violations idx records))

let test_checker_respects_points () =
  let invs = [ inv ~point:"l.sub" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 1)) ] in
  let idx = Sci.Checker.index invs in
  let records = [ record ~point:"l.add" [ (g3, 99) ] ] in
  Alcotest.(check int) "other points ignored" 0
    (List.length (Sci.Checker.violations idx records))

let test_first_violation () =
  let i = inv (Expr.Cmp (Expr.Eq, Expr.V g0, Expr.Imm 0)) in
  let records = [ record [ (g0, 0) ]; record [ (g0, 0) ]; record [ (g0, 3) ] ] in
  Alcotest.(check (option int)) "index" (Some 2)
    (Sci.Checker.first_violation i records);
  Alcotest.(check (option int)) "none" None
    (Sci.Checker.first_violation i [ record [ (g0, 0) ] ])

(* ---- end-to-end identification on a real bug ---- *)

(* Mine a quick invariant set from two small workloads, then identify b10
   (GPR0 writable): the canonical GPR0 = 0 invariant must be among the
   SCI, and b2 must yield none. *)
let mined_invariants =
  lazy
    (let engine = Daikon.Engine.create () in
     List.iter
       (fun name ->
          let w = Option.get (Workloads.Suite.by_name name) in
          ignore
            (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
               ~observer:(Daikon.Engine.observe engine) w.image))
       [ "vmlinux"; "instru"; "basicmath" ];
     Daikon.Engine.invariants engine)

let test_identify_b10 () =
  let invariants = Lazy.force mined_invariants in
  let b10 = Option.get (Bugs.Table1.by_id "b10") in
  let index = Sci.Checker.index invariants in
  let report = Sci.Identify.run ~index b10 in
  Alcotest.(check bool) "detected" true report.Sci.Identify.detected;
  Alcotest.(check bool) "GPR0 = 0 is an SCI" true
    (List.exists
       (fun i ->
          match i.Expr.body with
          | Expr.Cmp (Expr.Eq, Expr.V v, Expr.Imm 0)
          | Expr.Cmp (Expr.Eq, Expr.Imm 0, Expr.V v) ->
            Var.id_base_name v = "GPR0"
          | _ -> false)
       report.true_sci)

let test_identify_b2_empty () =
  let invariants = Lazy.force mined_invariants in
  let b2 = Option.get (Bugs.Table1.by_id "b2") in
  let index = Sci.Checker.index invariants in
  let report = Sci.Identify.run ~index b2 in
  Alcotest.(check int) "no ISA-level SCI for the pipeline stall" 0
    (List.length report.Sci.Identify.true_sci);
  Alcotest.(check bool) "undetected" false report.detected

let test_fp_are_clean_run_violations () =
  let invariants = Lazy.force mined_invariants in
  let b13 = Option.get (Bugs.Table1.by_id "b13") in
  let index = Sci.Checker.index invariants in
  let report = Sci.Identify.run ~index b13 in
  (* The far-call trigger exercises displacements the training set never
     produced, so some invariants break even on the clean processor. *)
  Alcotest.(check bool) "clean-run FPs exist" true
    (report.Sci.Identify.false_positives <> []);
  (* No FP may appear among the true SCI. *)
  let fp_keys =
    List.map Expr.canonical report.Sci.Identify.false_positives
  in
  Alcotest.(check bool) "disjoint" true
    (List.for_all
       (fun i -> not (List.mem (Expr.canonical i) fp_keys))
       report.true_sci)

(* Pin the unsigned-compare errata (b6: different-MSB compare, b7:
   sfltu computes a signed compare) against the mined set above. The
   wrapped 32-bit CMPDIFF_U fix in the trace runner shifted these
   counts (pre-fix the derived difference leaked raw OCaml integers
   outside the 32-bit range) while keeping both bugs detected; a change
   here means the set-flag derived variables changed semantics. *)
let test_identify_unsigned_compare_bugs () =
  let invariants = Lazy.force mined_invariants in
  let index = Sci.Checker.index invariants in
  let check_bug id expected_sci expected_fp =
    let bug = Option.get (Bugs.Table1.by_id id) in
    let report = Sci.Identify.run ~index bug in
    Alcotest.(check bool) (id ^ " detected") true report.Sci.Identify.detected;
    Alcotest.(check int) (id ^ " SCI")
      expected_sci (List.length report.Sci.Identify.true_sci);
    Alcotest.(check int) (id ^ " FP")
      expected_fp (List.length report.Sci.Identify.false_positives)
  in
  check_bug "b6" 91 380;
  check_bug "b7" 164 452

let test_run_all_summary () =
  let invariants = Lazy.force mined_invariants in
  let bugs =
    List.filter_map Bugs.Table1.by_id [ "b2"; "b10"; "b12" ]
  in
  let summary = Sci.Identify.run_all ~invariants bugs in
  Alcotest.(check int) "three reports" 3
    (List.length summary.Sci.Identify.reports);
  Alcotest.(check bool) "union nonempty" true (summary.unique_sci <> []);
  (* unique lists carry no duplicates *)
  let keys = List.map Expr.canonical summary.unique_sci in
  Alcotest.(check int) "sci dedup" (List.length keys)
    (List.length (List.sort_uniq String.compare keys));
  (* an invariant identified as SCI never doubles as an FP *)
  let sci = List.sort_uniq String.compare keys in
  let fp = List.sort_uniq String.compare (List.map Expr.canonical summary.unique_fp) in
  Alcotest.(check bool) "sci/fp disjoint" true
    (List.for_all (fun k -> not (List.mem k sci)) fp)

let () =
  Alcotest.run "sci"
    [ ("checker",
       [ Alcotest.test_case "violations" `Quick test_checker_violations;
         Alcotest.test_case "dedup" `Quick test_checker_dedups;
         Alcotest.test_case "points" `Quick test_checker_respects_points;
         Alcotest.test_case "first violation" `Quick test_first_violation ]);
      ("identification",
       [ Alcotest.test_case "b10" `Slow test_identify_b10;
         Alcotest.test_case "b2 yields none" `Slow test_identify_b2_empty;
         Alcotest.test_case "false positives" `Slow test_fp_are_clean_run_violations;
         Alcotest.test_case "b6/b7 unsigned compare" `Slow
           test_identify_unsigned_compare_bugs;
         Alcotest.test_case "run_all" `Slow test_run_all_summary ]) ]
