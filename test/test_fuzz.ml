(* The coverage-guided fuzzer: golden coverage points, same-seed
   determinism, acceptance/minimization invariants, runaway-candidate
   timeouts, and pipeline integration of registered programs. *)

module B = Isa.Asm.Build
module Rt = Workloads.Rt
module Pset = Fuzz.Coverage.Pset

let pset =
  Alcotest.testable
    (fun fmt s ->
       Format.fprintf fmt "{%s}"
         (String.concat "; " (List.map Fuzz.Coverage.describe (Pset.elements s))))
    Pset.equal

let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

(* ---- golden coverage ---- *)

(* A bare image: l.sys traps to the syscall vector, l.rfe returns, l.nop 1
   exits. Exactly those opcodes, exactly one exception — so the coverage
   set is known in full. *)
let test_golden_points () =
  let open Isa in
  let image =
    [ (0x100, Code.encode (Insn.Sys 0));
      (0x104, Code.encode (Insn.Nop 1));
      (Spr.Vector.address Spr.Vector.Syscall, Code.encode Insn.Rfe) ]
  in
  let acc = Fuzz.Coverage.create () in
  let outcome =
    Trace.Runner.stream ~entry:0x100
      ~observer:(Fuzz.Coverage.observe acc) image
  in
  Alcotest.(check bool) "exits" true
    (outcome = `Halted Cpu.Machine.Exit);
  let expected =
    Pset.of_list
      [ Form "system"; Form "rfe"; Form "nop";
        Op "l.sys"; Op "l.rfe"; Op "l.nop";
        Exn ("syscall", "l.sys") ]
  in
  Alcotest.check pset "exact point set" expected (Fuzz.Coverage.points acc)

(* ---- determinism ---- *)

let test_same_seed_identical () =
  let grow () =
    Fuzz.Corpus.minimize (Fuzz.Corpus.run ~seed:42 ~budget:30 ())
  in
  let a = grow () and b = grow () in
  Alcotest.(check string) "fingerprints equal"
    (Fuzz.Corpus.fingerprint a) (Fuzz.Corpus.fingerprint b);
  Alcotest.(check string) "reports byte-identical"
    (Fuzz.Corpus.report a) (Fuzz.Corpus.report b);
  List.iter2
    (fun (wa : Rt.t) (wb : Rt.t) ->
       Alcotest.(check bool) "images identical" true (wa.image = wb.image))
    (Fuzz.Corpus.to_workloads a) (Fuzz.Corpus.to_workloads b)

let test_generator_pure () =
  let w1 = Fuzz.Gen.candidate ~seed:7 ~index:3
  and w2 = Fuzz.Gen.candidate ~seed:7 ~index:3 in
  Alcotest.(check bool) "same image" true (w1.Rt.image = w2.Rt.image);
  Alcotest.(check int) "same tick period" w1.Rt.tick_period w2.Rt.tick_period;
  let w3 = Fuzz.Gen.candidate ~seed:7 ~index:4 in
  Alcotest.(check bool) "different index, different image" true
    (w1.Rt.image <> w3.Rt.image)

(* ---- corpus loop invariants ---- *)

let test_accepts_add_coverage () =
  let c = Fuzz.Corpus.run ~seed:11 ~budget:40 () in
  Alcotest.(check bool) "accepted something" true (c.Fuzz.Corpus.entries <> []);
  Alcotest.(check int) "budget consumed" 40 c.Fuzz.Corpus.generated;
  (* Replaying acceptance: each entry must add points over the running
     union, in order. *)
  let running = ref c.Fuzz.Corpus.initial in
  List.iter
    (fun (e : Fuzz.Corpus.entry) ->
       let fresh = Pset.diff e.cov !running in
       Alcotest.(check bool) "entry adds coverage" true
         (not (Pset.is_empty fresh));
       Alcotest.(check int) "new_points recorded at accept time"
         (Pset.cardinal fresh) e.new_points;
       running := Pset.union !running e.cov)
    c.Fuzz.Corpus.entries;
  Alcotest.check pset "total is the union" c.Fuzz.Corpus.total !running

let test_minimize_preserves_total () =
  let c = Fuzz.Corpus.run ~seed:11 ~budget:40 () in
  let m = Fuzz.Corpus.minimize c in
  Alcotest.(check bool) "no larger" true
    (List.length m.Fuzz.Corpus.entries <= List.length c.Fuzz.Corpus.entries);
  let union =
    List.fold_left
      (fun acc (e : Fuzz.Corpus.entry) -> Pset.union acc e.cov)
      m.Fuzz.Corpus.initial m.Fuzz.Corpus.entries
  in
  Alcotest.check pset "total preserved" c.Fuzz.Corpus.total union;
  (* Every survivor is necessary: dropping it loses a point. *)
  List.iter
    (fun (e : Fuzz.Corpus.entry) ->
       let others =
         List.fold_left
           (fun acc (e' : Fuzz.Corpus.entry) ->
              if e' == e then acc else Pset.union acc e'.cov)
           m.Fuzz.Corpus.initial m.Fuzz.Corpus.entries
       in
       Alcotest.(check bool) "entry is load-bearing" false
         (Pset.subset m.Fuzz.Corpus.total others))
    m.Fuzz.Corpus.entries

(* ---- runaway candidates ---- *)

(* A program that never reaches the exit convention must come back as a
   distinct `Timeout outcome — and bump the machine's truncation
   telemetry — rather than pass as a short trace. *)
let test_timeout_distinct () =
  let spin = Rt.build ~name:"fuzz-test-spin" [ B.label "s"; B.j "s"; B.nop ] in
  let truncated0 = counter "cpu.truncated_runs" in
  let cov, status = Fuzz.Corpus.eval_candidate ~max_steps:500 spin in
  Alcotest.(check bool) "timeout outcome" true (status = `Timeout);
  Alcotest.(check bool) "trace still observed" true (not (Pset.is_empty cov));
  Alcotest.(check bool) "cpu.truncated_runs bumped" true
    (counter "cpu.truncated_runs" > truncated0)

(* With a step budget no generated program can satisfy, every candidate
   must be rejected as a timeout: none accepted, all counted. *)
let test_timeouts_rejected_and_counted () =
  let timeout0 = counter "fuzz.timeout" in
  let c = Fuzz.Corpus.run ~max_steps:5 ~seed:3 ~budget:4 () in
  Alcotest.(check int) "all candidates timed out" 4 c.Fuzz.Corpus.timeouts;
  Alcotest.(check (list string)) "none accepted" [] (Fuzz.Corpus.names c);
  Alcotest.(check int) "fuzz.timeout counted" (timeout0 + 4)
    (counter "fuzz.timeout")

(* ---- pipeline integration ---- *)

let test_registered_corpus_mines () =
  Fun.protect ~finally:Workloads.Suite.reset_registered (fun () ->
      Workloads.Suite.reset_registered ();
      let c = Fuzz.Corpus.run ~seed:42 ~budget:20 () in
      Fuzz.Corpus.register c;
      let names = Fuzz.Corpus.names c in
      Alcotest.(check bool) "accepted something" true (names <> []);
      let invs =
        Scifinder_core.Pipeline.mine_invariants ~jobs:2 ~names ()
      in
      Alcotest.(check bool) "registered workloads mine" true (invs <> []))

let () =
  Alcotest.run "fuzz"
    [ ("coverage",
       [ Alcotest.test_case "golden points" `Quick test_golden_points ]);
      ("determinism",
       [ Alcotest.test_case "same seed identical" `Quick
           test_same_seed_identical;
         Alcotest.test_case "generator pure" `Quick test_generator_pure ]);
      ("corpus",
       [ Alcotest.test_case "accepts add coverage" `Quick
           test_accepts_add_coverage;
         Alcotest.test_case "minimize preserves total" `Quick
           test_minimize_preserves_total ]);
      ("timeout",
       [ Alcotest.test_case "timeout distinct" `Quick test_timeout_distinct;
         Alcotest.test_case "timeouts rejected+counted" `Quick
           test_timeouts_rejected_and_counted ]);
      ("pipeline",
       [ Alcotest.test_case "registered corpus mines" `Quick
           test_registered_corpus_mines ]) ]
