(* The invariant detector: hand-built record streams must produce exactly
   the expected template instances, and more data must falsify them. *)

module Expr = Invariant.Expr
module Var = Trace.Var
module Engine = Daikon.Engine

let g3 = Var.post_id (Var.Gpr 3)
let g4 = Var.post_id (Var.Gpr 4)
let g5 = Var.post_id (Var.Gpr 5)
let pc = Var.post_id Var.Pc
let pc0 = Var.orig_id Var.Pc
let prod_u = Var.insn_id Var.Prod_u

let record ?(point = "l.add") ?(mask = Array.make Var.total true) assignments =
  let values = Array.make Var.total 0 in
  List.iter (fun (id, v) -> values.(id) <- v) assignments;
  { Trace.Record.point; values; mask }

let feed_engine ?(config = Daikon.Config.relaxed) records =
  let engine = Engine.create ~config () in
  List.iter (Engine.observe engine) records;
  engine

let feed ?config records = Engine.invariants (feed_engine ?config records)

let has invs s = List.exists (fun i -> Expr.to_string i = s) invs
let check_has invs s = Alcotest.(check bool) s true (has invs s)
let check_not invs s = Alcotest.(check bool) ("NOT " ^ s) false (has invs s)

(* Mask limited to a few variables keeps the expected set small. *)
let small_mask ids =
  let m = Array.make Var.total false in
  List.iter (fun id -> m.(id) <- true) ids;
  m

let test_constant () =
  let mask = small_mask [ g3; g4 ] in
  let invs = feed [ record ~mask [ (g3, 7); (g4, 1) ];
                    record ~mask [ (g3, 7); (g4, 2) ] ] in
  check_has invs "risingEdge(l.add) -> GPR3 = 7";
  check_not invs "risingEdge(l.add) -> GPR4 = 1"

let test_oneof () =
  let mask = small_mask [ g3 ] in
  let invs = feed [ record ~mask [ (g3, 1) ]; record ~mask [ (g3, 2) ];
                    record ~mask [ (g3, 1) ]; record ~mask [ (g3, 2) ] ] in
  check_has invs "risingEdge(l.add) -> GPR3 in {0x1, 0x2}"

let test_oneof_overflow_killed () =
  let mask = small_mask [ g3 ] in
  let invs = feed (List.init 8 (fun i -> record ~mask [ (g3, i * 13) ])) in
  Alcotest.(check bool) "no In invariant survives 8 distinct values" false
    (List.exists
       (fun i -> match i.Expr.body with Expr.In _ -> true | _ -> false)
       invs)

let test_oneof_boundary_at_max () =
  (* relaxed max_oneof = 3: exactly three distinct values is the largest
     surviving set; a fourth kills it. *)
  let mask = small_mask [ g3 ] in
  let three =
    [ record ~mask [ (g3, 2) ]; record ~mask [ (g3, 1) ];
      record ~mask [ (g3, 3) ]; record ~mask [ (g3, 2) ] ]
  in
  check_has (feed three) "risingEdge(l.add) -> GPR3 in {0x1, 0x2, 0x3}";
  let four = three @ [ record ~mask [ (g3, 4) ] ] in
  Alcotest.(check bool) "a fourth distinct value kills the set" false
    (List.exists
       (fun i -> match i.Expr.body with Expr.In _ -> true | _ -> false)
       (feed four))

let test_pair_equality () =
  let mask = small_mask [ g3; g4 ] in
  let invs = feed [ record ~mask [ (g3, 5); (g4, 5) ];
                    record ~mask [ (g3, 9); (g4, 9) ] ] in
  check_has invs "risingEdge(l.add) -> GPR3 = GPR4"

let test_pair_order () =
  let mask = small_mask [ g3; g4 ] in
  let invs = feed [ record ~mask [ (g3, 1); (g4, 5) ];
                    record ~mask [ (g3, 2); (g4, 9) ];
                    record ~mask [ (g3, 0); (g4, 1) ] ] in
  check_has invs "risingEdge(l.add) -> GPR3 < GPR4"

let test_pair_le_when_sometimes_equal () =
  let mask = small_mask [ g3; g4 ] in
  let invs = feed [ record ~mask [ (g3, 1); (g4, 5) ];
                    record ~mask [ (g3, 5); (g4, 5) ] ] in
  check_has invs "risingEdge(l.add) -> GPR3 <= GPR4"

let test_pair_relation_killed () =
  let mask = small_mask [ g3; g4 ] in
  let invs = feed [ record ~mask [ (g3, 1); (g4, 5) ];
                    record ~mask [ (g3, 9); (g4, 5) ];
                    record ~mask [ (g3, 5); (g4, 5) ] ] in
  Alcotest.(check bool) "no order relation" false
    (has invs "risingEdge(l.add) -> GPR3 <= GPR4"
     || has invs "risingEdge(l.add) -> GPR3 >= GPR4"
     || has invs "risingEdge(l.add) -> GPR3 < GPR4")

let test_ne_needs_confidence () =
  let mask = small_mask [ g3; g4 ] in
  (* relaxed config: ne_min = 4. Non-monotonic values so only <>
     is a candidate relation. *)
  let mixed =
    [ record ~mask [ (g3, 1); (g4, 100) ];
      record ~mask [ (g3, 200); (g4, 100) ];
      record ~mask [ (g3, 2); (g4, 100) ] ]
  in
  let invs = feed mixed in
  check_not invs "risingEdge(l.add) -> GPR3 != GPR4";
  let more = mixed @ [ record ~mask [ (g3, 201); (g4, 100) ];
                       record ~mask [ (g3, 3); (g4, 100) ] ] in
  let invs = feed more in
  check_has invs "risingEdge(l.add) -> GPR3 != GPR4"

let test_diff () =
  let mask = small_mask [ pc0; pc ] in
  let invs = feed [ record ~mask [ (pc0, 0x2000); (pc, 0x2004) ];
                    record ~mask [ (pc0, 0x2004); (pc, 0x2008) ] ] in
  check_has invs "risingEdge(l.add) -> (PC - orig(PC)) = 4"

let test_diff_killed () =
  let mask = small_mask [ pc0; pc ] in
  let invs = feed [ record ~mask [ (pc0, 0x2000); (pc, 0x2004) ];
                    record ~mask [ (pc0, 0x2004); (pc, 0x2010) ] ] in
  Alcotest.(check bool) "no diff invariant" false
    (List.exists
       (fun i -> match i.Expr.body with
          | Expr.Cmp (_, Expr.Bin (Expr.Minus, _, _), _) -> true
          | _ -> false)
       invs)

let test_scale () =
  let mask = small_mask [ g3; g4 ] in
  let invs = feed [ record ~mask [ (g3, 3); (g4, 12) ];
                    record ~mask [ (g3, 5); (g4, 20) ] ] in
  check_has invs "risingEdge(l.add) -> GPR4 = GPR3 * 4"

let test_scale_reverse_direction () =
  let mask = small_mask [ g3; g4 ] in
  let invs = feed [ record ~mask [ (g3, 12); (g4, 3) ];
                    record ~mask [ (g3, 20); (g4, 5) ] ] in
  check_has invs "risingEdge(l.add) -> GPR3 = GPR4 * 4"

let test_mod_alignment () =
  let mask = small_mask [ pc ] in
  let invs = feed [ record ~mask [ (pc, 0x2000) ]; record ~mask [ (pc, 0x2004) ];
                    record ~mask [ (pc, 0x2010) ] ] in
  check_has invs "risingEdge(l.add) -> PC mod 4 = 0"

let test_mod2_fallback () =
  let mask = small_mask [ pc ] in
  let invs = feed [ record ~mask [ (pc, 0x2000) ]; record ~mask [ (pc, 0x2002) ];
                    record ~mask [ (pc, 0x2006) ] ] in
  check_not invs "risingEdge(l.add) -> PC mod 4 = 0";
  check_has invs "risingEdge(l.add) -> PC mod 2 = 0"

let test_diff_bounds () =
  let mask = small_mask [ prod_u ] in
  let invs = feed ~config:Daikon.Config.relaxed
      [ record ~point:"l.sfltu" ~mask [ (prod_u, 5) ];
        record ~point:"l.sfltu" ~mask [ (prod_u, 0) ];
        record ~point:"l.sfltu" ~mask [ (prod_u, 9) ] ] in
  check_has invs "risingEdge(l.sfltu) -> PROD_U >= 0"

let test_min_samples () =
  let mask = small_mask [ g3 ] in
  let config = { Daikon.Config.relaxed with min_samples = 3 } in
  let invs = feed ~config [ record ~mask [ (g3, 7) ]; record ~mask [ (g3, 7) ] ] in
  Alcotest.(check int) "below threshold: nothing" 0 (List.length invs)

let test_points_separate () =
  let mask = small_mask [ g3 ] in
  let invs = feed [ record ~point:"l.add" ~mask [ (g3, 1) ];
                    record ~point:"l.add" ~mask [ (g3, 1) ];
                    record ~point:"l.sub" ~mask [ (g3, 2) ];
                    record ~point:"l.sub" ~mask [ (g3, 2) ] ] in
  check_has invs "risingEdge(l.add) -> GPR3 = 1";
  check_has invs "risingEdge(l.sub) -> GPR3 = 2"

let test_leader_suppression () =
  (* Two constant-equal post variables: only the leader pairs with the
     changing one, so exactly one ordering invariant appears. *)
  let mask = small_mask [ g3; g4; g5 ] in
  let invs = feed [ record ~mask [ (g3, 0); (g4, 0); (g5, 10) ];
                    record ~mask [ (g3, 0); (g4, 0); (g5, 20) ] ] in
  check_has invs "risingEdge(l.add) -> GPR3 < GPR5";
  check_not invs "risingEdge(l.add) -> GPR4 < GPR5"

(* ---- merge: the join the sharded miner relies on ---- *)

let strings invs = List.map Expr.to_string invs

let test_merge_disjoint_points () =
  let mask = small_mask [ g3 ] in
  let e1 = feed_engine [ record ~point:"l.add" ~mask [ (g3, 1) ];
                         record ~point:"l.add" ~mask [ (g3, 1) ] ] in
  let e2 = feed_engine [ record ~point:"l.sub" ~mask [ (g3, 2) ];
                         record ~point:"l.sub" ~mask [ (g3, 2) ] ] in
  Engine.merge_into e1 e2;
  Alcotest.(check int) "records summed" 4 (Engine.record_count e1);
  Alcotest.(check int) "both points" 2 (Engine.point_count e1);
  let invs = Engine.invariants e1 in
  check_has invs "risingEdge(l.add) -> GPR3 = 1";
  check_has invs "risingEdge(l.sub) -> GPR3 = 2"

let test_merge_joins_point_state () =
  let mask = small_mask [ g3; g4 ] in
  (* Each shard alone believes GPR3 is constant and GPR3 <= GPR4 holds in
     one direction; the join must keep exactly what survives both. *)
  let e1 = feed_engine [ record ~mask [ (g3, 1); (g4, 5) ];
                         record ~mask [ (g3, 1); (g4, 7) ] ] in
  let e2 = feed_engine [ record ~mask [ (g3, 2); (g4, 6) ];
                         record ~mask [ (g3, 2); (g4, 9) ] ] in
  let invs = Engine.invariants (Engine.merge e1 e2) in
  check_not invs "risingEdge(l.add) -> GPR3 = 1";
  check_not invs "risingEdge(l.add) -> GPR3 = 2";
  check_has invs "risingEdge(l.add) -> GPR3 in {0x1, 0x2}";
  check_has invs "risingEdge(l.add) -> GPR3 < GPR4"

let test_merge_config_mismatch () =
  let e1 = Engine.create ~config:Daikon.Config.relaxed () in
  let e2 = Engine.create ~config:Daikon.Config.default () in
  Alcotest.check_raises "configs must match"
    (Invalid_argument "Daikon.Engine.merge_into: configurations differ")
    (fun () -> Engine.merge_into e1 e2)

(* The property the tentpole rests on: for any record stream split at any
   index, merging the two half-engines yields the same invariant set as
   observing the whole stream sequentially. *)
let test_merge_matches_sequential =
  let mask = small_mask [ g3; g4; pc0; pc ] in
  let to_record (pt, a, b, c) =
    record ~point:pt ~mask
      [ (g3, a); (g4, b); (pc0, c); (pc, (c + 4) land 0xFFFF_FFFF) ]
  in
  (* Value pool chosen to collide often: exercises constancy, one-of death
     at the cap, orderings, x2/x4 scalings, constant diffs and mod
     alignment of the Addr-kind PC. *)
  let values = [ 0; 1; 2; 3; 4; 8; 12; 16; 0x2000; 0x2004; 0x2006; 0xFFFF_FFFF ] in
  let entry =
    QCheck.Gen.(quad (oneofl [ "l.add"; "l.sub" ]) (oneofl values)
                  (oneofl values) (oneofl [ 0x2000; 0x2004; 0x2006; 0x3000 ]))
  in
  let print (entries, k) =
    Printf.sprintf "split@%d [%s]" k
      (String.concat "; "
         (List.map
            (fun (pt, a, b, c) -> Printf.sprintf "(%s,%d,%d,0x%X)" pt a b c)
            entries))
  in
  let arb =
    QCheck.make ~print
      QCheck.Gen.(pair (list_size (0 -- 24) entry) (0 -- 100))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"merge(prefix, suffix) = whole" arb
       (fun (entries, splitpos) ->
          let records = List.map to_record entries in
          let n = List.length records in
          let k = if n = 0 then 0 else splitpos mod (n + 1) in
          let prefix = List.filteri (fun i _ -> i < k) records in
          let suffix = List.filteri (fun i _ -> i >= k) records in
          let whole = feed records in
          let merged =
            Engine.merge (feed_engine prefix) (feed_engine suffix)
          in
          strings (Engine.invariants merged) = strings whole
          && Engine.record_count merged = n))

let test_record_count () =
  let engine = Engine.create () in
  Alcotest.(check int) "empty" 0 (Engine.record_count engine);
  Engine.observe engine (record [ (g3, 1) ]);
  Alcotest.(check int) "counted" 1 (Engine.record_count engine);
  Alcotest.(check int) "one point" 1 (Engine.point_count engine)

let () =
  Alcotest.run "daikon"
    [ ("templates",
       [ Alcotest.test_case "constant" `Quick test_constant;
         Alcotest.test_case "oneof" `Quick test_oneof;
         Alcotest.test_case "oneof overflow" `Quick test_oneof_overflow_killed;
         Alcotest.test_case "oneof boundary at max_oneof" `Quick
           test_oneof_boundary_at_max;
         Alcotest.test_case "pair equality" `Quick test_pair_equality;
         Alcotest.test_case "pair order" `Quick test_pair_order;
         Alcotest.test_case "pair le" `Quick test_pair_le_when_sometimes_equal;
         Alcotest.test_case "relation killed" `Quick test_pair_relation_killed;
         Alcotest.test_case "ne confidence" `Quick test_ne_needs_confidence;
         Alcotest.test_case "diff" `Quick test_diff;
         Alcotest.test_case "diff killed" `Quick test_diff_killed;
         Alcotest.test_case "scale" `Quick test_scale;
         Alcotest.test_case "scale reversed" `Quick test_scale_reverse_direction;
         Alcotest.test_case "mod 4" `Quick test_mod_alignment;
         Alcotest.test_case "mod 2 fallback" `Quick test_mod2_fallback;
         Alcotest.test_case "diff bounds" `Quick test_diff_bounds ]);
      ("engine",
       [ Alcotest.test_case "min samples" `Quick test_min_samples;
         Alcotest.test_case "points separate" `Quick test_points_separate;
         Alcotest.test_case "leader suppression" `Quick test_leader_suppression;
         Alcotest.test_case "record count" `Quick test_record_count ]);
      ("merge",
       [ Alcotest.test_case "disjoint points" `Quick test_merge_disjoint_points;
         Alcotest.test_case "joined point state" `Quick
           test_merge_joins_point_state;
         Alcotest.test_case "config mismatch" `Quick test_merge_config_mismatch;
         test_merge_matches_sequential ]) ]
