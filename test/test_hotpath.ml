(* The zero-materialization hot path: streaming through [Runner.run_fold]
   must be bit-identical (SCIFSNAP bytes) to materialize-then-replay
   through the engine's reference observe path; the pre-decoded
   instruction cache must be architecturally invisible, including under
   self-modifying code (stores into fetched addresses, in and out of the
   branch delay slot); and the engine's cached sorted point view must
   track insertions. *)

module M = Cpu.Machine
module Var = Trace.Var
module Engine = Daikon.Engine
module B = Isa.Asm.Build

let qtest ?(count = 25) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ---- streaming == materialize-then-replay, over random programs ---- *)

let mine_streaming (w : Workloads.Rt.t) =
  let engine = Engine.create () in
  ignore
    (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
       ~observer:(Engine.observe engine) w.image);
  engine

let mine_replay (w : Workloads.Rt.t) =
  let recs, _ =
    Trace.Runner.capture ~tick_period:w.tick_period ~entry:w.entry w.image
  in
  let engine = Engine.create () in
  List.iter (Engine.observe_baseline engine) recs;
  engine

let prop_stream_replay_identical =
  qtest "stream == capture+observe_baseline (SCIFSNAP bytes), fuzz programs"
    QCheck.(pair (int_bound 1000) (int_bound 40))
    (fun (seed, index) ->
       let w = Fuzz.Gen.candidate ~seed ~index in
       String.equal
         (Engine.encode (mine_streaming w))
         (Engine.encode (mine_replay w)))

let test_stream_replay_workload () =
  (* The same identity on a real corpus program (exception handlers,
     tick timer, delay slots all exercised). *)
  let w = Option.get (Workloads.Suite.by_name "instru") in
  Alcotest.(check bool) "SCIFSNAP bytes equal" true
    (String.equal
       (Engine.encode (mine_streaming w))
       (Engine.encode (mine_replay w)))

let test_run_fold_matches_capture () =
  (* run_fold's accumulator sees exactly the records capture stores. *)
  let w = Option.get (Workloads.Suite.by_name "pi") in
  let machine = M.create ~tick_period:w.tick_period () in
  M.load_image machine w.image;
  M.set_pc machine w.entry;
  let folded, fold_outcome =
    Trace.Runner.run_fold ~init:[]
      ~f:(fun acc (r : Trace.Record.t) -> r :: acc)
      machine
  in
  let captured, cap_outcome =
    Trace.Runner.capture ~tick_period:w.tick_period ~entry:w.entry w.image
  in
  Alcotest.(check bool) "same outcome" true (fold_outcome = cap_outcome);
  Alcotest.(check int) "same record count"
    (List.length captured) (List.length folded);
  List.iter2
    (fun (a : Trace.Record.t) (b : Trace.Record.t) ->
       Alcotest.(check string) "same point" a.point b.point;
       Alcotest.(check bool) "same values" true (a.values = b.values);
       Alcotest.(check bool) "same mask" true (a.mask = b.mask))
    captured (List.rev folded)

(* ---- decode cache vs self-modifying code ---- *)

(* A program that executes the instruction at [x] twice and overwrites it
   with "l.addi r3, r3, 2" between the passes. With a correct decode
   cache the second pass must see the new instruction: r3 ends at 3
   (1 + 2); a stale cache would leave r3 at 2. [patch_in_delay_slot]
   places the store in the delay slot of the back-jump — the fetch of the
   patched word is the very next instruction the machine executes. *)
let smc_program ~patch_in_delay_slot =
  let patched = Isa.Code.encode (Isa.Insn.Alui (Isa.Insn.Addi, 3, 3, 2)) in
  let prologue =
    [ B.la 6 "x";
      B.movhi 5 (patched lsr 16);
      B.ori 5 5 (patched land 0xFFFF);
      B.addi 3 0 0;
      B.addi 7 0 0;
      B.label "x";
      B.addi 3 3 1;
      B.addi 7 7 1 ]
  and epilogue =
    if patch_in_delay_slot then
      [ B.sfeqi 7 2;
        B.bf "done";
        B.nop;
        B.j "x";
        B.sw 0 6 5; (* delay slot: patch the already-cached word at x *)
        B.label "done";
        I (Isa.Insn.Nop 1) ]
    else
      [ B.sw 0 6 5; (* plain store: patch the already-cached word at x *)
        B.sfeqi 7 2;
        B.bf "done";
        B.nop;
        B.j "x";
        B.nop;
        B.label "done";
        I (Isa.Insn.Nop 1) ]
  in
  Isa.Asm.assemble { Isa.Asm.origin = 0x100; items = prologue @ epilogue }

let run_smc ~decode_cache image =
  let machine = M.create ~decode_cache () in
  M.load_image machine image;
  M.set_pc machine 0x100;
  let records, outcome =
    Trace.Runner.run_fold ~init:[]
      ~f:(fun acc (r : Trace.Record.t) -> r :: acc)
      machine
  in
  (machine, List.rev records, outcome)

let check_smc ~patch_in_delay_slot () =
  let image = smc_program ~patch_in_delay_slot in
  let cached, recs_on, out_on = run_smc ~decode_cache:true image in
  let plain, recs_off, out_off = run_smc ~decode_cache:false image in
  Alcotest.(check bool) "halted by l.nop 1" true
    (out_on = `Halted M.Exit && out_off = `Halted M.Exit);
  (* The patched instruction really was re-decoded. *)
  Alcotest.(check int) "r3 = 1 + 2 with the cache" 3 cached.M.gpr.(3);
  Alcotest.(check int) "r3 = 1 + 2 without the cache" 3 plain.M.gpr.(3);
  let _, _, invalidates = M.decode_cache_stats cached in
  Alcotest.(check bool) "the store dropped a cached entry" true
    (invalidates >= 1);
  (* The cache must be architecturally invisible record for record. *)
  Alcotest.(check int) "same record count"
    (List.length recs_off) (List.length recs_on);
  List.iter2
    (fun (a : Trace.Record.t) (b : Trace.Record.t) ->
       Alcotest.(check string) "same point" a.point b.point;
       Alcotest.(check bool) "same values" true (a.values = b.values))
    recs_off recs_on

let test_smc_plain_store () = check_smc ~patch_in_delay_slot:false ()
let test_smc_delay_slot_store () = check_smc ~patch_in_delay_slot:true ()

let test_cache_transparent_on_workload () =
  (* Cache on vs off over a full corpus program: identical record
     streams, and the cache actually fires. *)
  let w = Option.get (Workloads.Suite.by_name "bitcount") in
  let run ~decode_cache =
    let machine = M.create ~tick_period:w.tick_period ~decode_cache () in
    M.load_image machine w.image;
    M.set_pc machine w.entry;
    let records, _ =
      Trace.Runner.run_fold ~init:[]
        ~f:(fun acc (r : Trace.Record.t) -> r :: acc)
        machine
    in
    (machine, List.rev records)
  in
  let m_on, on = run ~decode_cache:true in
  let _, off = run ~decode_cache:false in
  Alcotest.(check bool) "identical record streams" true
    (List.map (fun (r : Trace.Record.t) -> (r.point, r.values)) on
     = List.map (fun (r : Trace.Record.t) -> (r.point, r.values)) off);
  let hits, _, _ = M.decode_cache_stats m_on in
  Alcotest.(check bool) "cache hits observed" true (hits > 0)

(* ---- the cached sorted point view tracks insertions ---- *)

let record point =
  let values = Array.make Var.total 0 in
  let mask = Array.make Var.total false in
  mask.(Var.post_id (Var.Gpr 3)) <- true;
  { Trace.Record.point; values; mask }

let test_points_cache_invalidation () =
  let e = Engine.create () in
  Alcotest.(check (list string)) "empty" [] (Engine.points e);
  Engine.observe e (record "l.sub");
  Alcotest.(check (list string)) "one point" [ "l.sub" ] (Engine.points e);
  Alcotest.(check int) "count 1" 1 (Engine.point_count e);
  (* A new point must show up, sorted, even though the previous call
     cached the view. *)
  Engine.observe e (record "l.add");
  Alcotest.(check (list string)) "sorted after insertion"
    [ "l.add"; "l.sub" ] (Engine.points e);
  Alcotest.(check int) "count 2" 2 (Engine.point_count e);
  (* Re-observing an existing point must not disturb the view. *)
  Engine.observe e (record "l.add");
  Alcotest.(check (list string)) "unchanged on re-observation"
    [ "l.add"; "l.sub" ] (Engine.points e);
  Alcotest.(check int) "records" 3 (Engine.record_count e)

let () =
  Alcotest.run "hotpath"
    [ ("streaming",
       [ Alcotest.test_case "run_fold matches capture" `Quick
           test_run_fold_matches_capture;
         Alcotest.test_case "stream == replay on a corpus program" `Quick
           test_stream_replay_workload;
         prop_stream_replay_identical ]);
      ("decode-cache",
       [ Alcotest.test_case "self-modifying code, plain store" `Quick
           test_smc_plain_store;
         Alcotest.test_case "self-modifying code, delay-slot store" `Quick
           test_smc_delay_slot_store;
         Alcotest.test_case "transparent on a corpus program" `Quick
           test_cache_transparent_on_workload ]);
      ("points",
       [ Alcotest.test_case "sorted view tracks insertions" `Quick
           test_points_cache_invalidation ]) ]
