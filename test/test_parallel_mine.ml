(* The tentpole's acceptance property: sharded parallel mining is
   observationally identical to the sequential run — same invariant set,
   same record accounting, same Figure 3 snapshots — for any job count,
   over the full 17-workload corpus. Plus unit coverage of the domain
   pool itself. *)

module Pipeline = Scifinder_core.Pipeline
module Expr = Invariant.Expr

(* ---- Util.Parallel ---- *)

let test_map_order () =
  let tasks = Array.init 37 (fun i -> i) in
  let out = Util.Parallel.map ~jobs:4 (fun i -> i * i) tasks in
  Alcotest.(check (array int)) "results in task order"
    (Array.map (fun i -> i * i) tasks) out

let test_map_sequential_fallback () =
  Alcotest.(check (array int)) "jobs:1 is Array.map" [| 2; 4; 6 |]
    (Util.Parallel.map ~jobs:1 (fun x -> 2 * x) [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "jobs above task count clamps" [| 1 |]
    (Util.Parallel.map ~jobs:16 (fun x -> x) [| 1 |])

let test_map_exception () =
  Alcotest.check_raises "worker exceptions propagate" Exit (fun () ->
      ignore
        (Util.Parallel.map ~jobs:3
           (fun i -> if i = 5 then raise Exit else i)
           (Array.init 8 (fun i -> i))))

(* ---- full-corpus equality ---- *)

let seq = lazy (Pipeline.mine ~jobs:1 ())

let strings m = List.map Expr.to_string m.Pipeline.invariants

let check_equal jobs =
  let s = Lazy.force seq in
  let p = Pipeline.mine ~jobs () in
  Alcotest.(check int) "record count" s.Pipeline.record_count
    p.Pipeline.record_count;
  Alcotest.(check (list string)) "invariant set" (strings s) (strings p);
  List.iter2
    (fun (a : Pipeline.figure3_row) (b : Pipeline.figure3_row) ->
       Alcotest.(check string) "row label" a.group_label b.group_label;
       Alcotest.(check (list int)) ("figure 3 row " ^ a.group_label)
         [ a.unmodified; a.fresh; a.deleted; a.total ]
         [ b.unmodified; b.fresh; b.deleted; b.total ])
    s.Pipeline.figure3 p.Pipeline.figure3;
  Alcotest.(check (list string)) "mnemonic coverage"
    s.Pipeline.mnemonic_coverage p.Pipeline.mnemonic_coverage

let test_jobs2 () = check_equal 2
let test_jobs4 () = check_equal 4

let test_mine_invariants_subset () =
  let names = [ "pi"; "bitcount"; "helloworld" ] in
  let s = Pipeline.mine_invariants ~jobs:1 ~names () in
  let p = Pipeline.mine_invariants ~jobs:3 ~names () in
  Alcotest.(check (list string)) "subset corpus equal"
    (List.map Expr.to_string s) (List.map Expr.to_string p)

let () =
  Alcotest.run "parallel_mine"
    [ ("parallel",
       [ Alcotest.test_case "map order" `Quick test_map_order;
         Alcotest.test_case "map sequential fallback" `Quick
           test_map_sequential_fallback;
         Alcotest.test_case "map exception" `Quick test_map_exception ]);
      ("corpus",
       [ Alcotest.test_case "subset, 3 shards" `Quick
           test_mine_invariants_subset;
         Alcotest.test_case "full corpus, 2 shards" `Slow test_jobs2;
         Alcotest.test_case "full corpus, 4 shards" `Slow test_jobs4 ]) ]
