(* Statistics helpers. *)

let feq = Alcotest.(check (float 1e-9))

let test_mean () =
  feq "mean" 2.5 (Util.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "empty" 0.0 (Util.Stats.mean [||])

let test_variance () =
  feq "variance" 2.5 (Util.Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  feq "single" 0.0 (Util.Stats.variance [| 42.0 |]);
  feq "stddev" (sqrt 2.5) (Util.Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq "median" 3.0 (Util.Stats.median xs);
  feq "p0" 1.0 (Util.Stats.percentile xs 0.0);
  feq "p100" 5.0 (Util.Stats.percentile xs 100.0);
  feq "p25 interpolates" 2.0 (Util.Stats.percentile xs 25.0);
  feq "even median" 2.5 (Util.Stats.median [| 1.0; 2.0; 3.0; 4.0 |])

let test_percentile_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Util.Stats.percentile [||] 50.0))

let test_percentile_single () =
  feq "p50 of singleton" 7.5 (Util.Stats.percentile [| 7.5 |] 50.0);
  feq "p0 of singleton" 7.5 (Util.Stats.percentile [| 7.5 |] 0.0);
  feq "p100 of singleton" 7.5 (Util.Stats.percentile [| 7.5 |] 100.0);
  feq "median of singleton" 7.5 (Util.Stats.median [| 7.5 |])

let test_percentile_unsorted_negative () =
  (* Float.compare ordering: negatives, zeros and magnitudes must all
     land in numeric order whatever the input permutation. *)
  let xs = [| 3.0; -1.0; 0.0; -2.5; 1.0 |] in
  feq "median" 0.0 (Util.Stats.median xs);
  feq "p0 is min" (-2.5) (Util.Stats.percentile xs 0.0);
  feq "p100 is max" 3.0 (Util.Stats.percentile xs 100.0)

let test_percentile_nan () =
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Stats.percentile: NaN input")
    (fun () -> ignore (Util.Stats.percentile [| 1.0; Float.nan; 2.0 |] 50.0));
  Alcotest.check_raises "median propagates the NaN rejection"
    (Invalid_argument "Stats.percentile: NaN input")
    (fun () -> ignore (Util.Stats.median [| Float.nan |]))

let test_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  feq "self" 1.0 (Util.Stats.correlation xs xs);
  feq "negated" (-1.0)
    (Util.Stats.correlation xs (Array.map (fun x -> -.x) xs));
  feq "constant" 0.0 (Util.Stats.correlation xs [| 1.0; 1.0; 1.0; 1.0 |])

let test_mean_int () =
  feq "ints" 2.0 (Util.Stats.mean_int [| 1; 2; 3 |])

let () =
  Alcotest.run "stats"
    [ ("stats",
       [ Alcotest.test_case "mean" `Quick test_mean;
         Alcotest.test_case "variance" `Quick test_variance;
         Alcotest.test_case "percentile" `Quick test_percentile;
         Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
         Alcotest.test_case "percentile single" `Quick test_percentile_single;
         Alcotest.test_case "percentile order" `Quick
           test_percentile_unsorted_negative;
         Alcotest.test_case "percentile NaN" `Quick test_percentile_nan;
         Alcotest.test_case "correlation" `Quick test_correlation;
         Alcotest.test_case "mean_int" `Quick test_mean_int ]) ]
