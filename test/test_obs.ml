(* The telemetry subsystem's acceptance properties: span nesting and
   emission order, exact counters under domain-parallel increments,
   worker-domain span isolation, a golden (schema-stable) JSONL encoding,
   and — the one that matters most — a JSONL sink changing nothing about
   what the pipeline computes. *)

module Pipeline = Scifinder_core.Pipeline
module Expr = Invariant.Expr

(* Every test leaves the global sink as it found it (null). *)
let with_sink sink f =
  Obs.Sink.set_global sink;
  Fun.protect ~finally:(fun () -> Obs.Sink.set_global Obs.Sink.null) f

let span_events events =
  List.filter_map
    (function
      | Obs.Sink.Span { name; parent; dur_ns; _ } ->
        Some (name, parent, dur_ns)
      | Obs.Sink.Metric _ -> None)
    events

(* ---- spans ---- *)

let test_span_nesting () =
  let sink, read = Obs.Sink.memory () in
  with_sink sink (fun () ->
      let v =
        Obs.Span.with_ ~name:"a" (fun () ->
            Alcotest.(check (option string)) "inside a"
              (Some "a") (Obs.Span.current ());
            let u = Obs.Span.with_ ~name:"b" (fun () -> 41) in
            Alcotest.(check (option string)) "back to a"
              (Some "a") (Obs.Span.current ());
            u + 1)
      in
      Alcotest.(check int) "with_ returns the body's value" 42 v);
  Alcotest.(check (option string)) "no open span left" None
    (Obs.Span.current ());
  match span_events (read ()) with
  | [ ("b", pb, db); ("a", pa, da) ] ->
    Alcotest.(check (option string)) "b's parent is a" (Some "a") pb;
    Alcotest.(check (option string)) "a is a root" None pa;
    Alcotest.(check bool) "durations are non-negative" true
      (Int64.compare db 0L >= 0 && Int64.compare da 0L >= 0);
    Alcotest.(check bool) "a lasted at least as long as b" true
      (Int64.compare da db >= 0)
  | evs ->
    Alcotest.failf "expected [b; a], got %d span events" (List.length evs)

let test_span_exception () =
  let sink, read = Obs.Sink.memory () in
  with_sink sink (fun () ->
      (try Obs.Span.with_ ~name:"boom" (fun () -> raise Exit)
       with Exit -> ());
      Alcotest.(check (option string)) "stack unwound" None
        (Obs.Span.current ()));
  match span_events (read ()) with
  | [ ("boom", None, _) ] -> ()
  | evs ->
    Alcotest.failf "expected the raising span, got %d events"
      (List.length evs)

let test_span_timed () =
  let (v, secs) = Obs.Span.timed ~name:"t" (fun () -> 7) in
  Alcotest.(check int) "timed returns the value" 7 v;
  Alcotest.(check bool) "monotonic duration" true (secs >= 0.0)

let test_span_context () =
  let sink, read = Obs.Sink.memory () in
  with_sink sink (fun () ->
      Obs.Span.with_context (Some "submitter") (fun () ->
          Alcotest.(check (option string)) "context visible via current"
            (Some "submitter") (Obs.Span.current ());
          Obs.Span.with_ ~name:"child" (fun () ->
              Obs.Span.with_ ~name:"grand" (fun () -> ())));
      Alcotest.(check (option string)) "context restored" None
        (Obs.Span.current ()));
  match span_events (read ()) with
  | [ ("grand", pg, _); ("child", pc, _) ] ->
    Alcotest.(check (option string))
      "empty local stack inherits the context" (Some "submitter") pc;
    Alcotest.(check (option string)) "an open local span still wins"
      (Some "child") pg
  | evs ->
    Alcotest.failf "expected [grand; child], got %d span events"
      (List.length evs)

(* ---- counters under Util.Parallel ---- *)

let test_counter_across_domains () =
  let c = Obs.Metrics.counter "test.obs.parallel_counter" in
  let tasks = Array.init 40 (fun i -> i) in
  ignore
    (Util.Parallel.map ~jobs:4
       (fun _ ->
          for _ = 1 to 1000 do Obs.Metrics.incr c done;
          Obs.Metrics.add c 10)
       tasks);
  Alcotest.(check int) "40 tasks x (1000 incr + add 10), exactly"
    (40 * 1010) (Obs.Metrics.counter_value c)

let test_worker_spans_do_not_corrupt_parent () =
  let sink, read = Obs.Sink.memory () in
  with_sink sink (fun () ->
      Obs.Span.with_ ~name:"outer" (fun () ->
          ignore
            (Util.Parallel.map ~jobs:4
               (fun i -> Obs.Span.with_ ~name:"w" (fun () -> i))
               (Array.init 16 (fun i -> i)));
          (* The pool is drained; the calling domain's stack is intact. *)
          Alcotest.(check (option string)) "outer still open"
            (Some "outer") (Obs.Span.current ())));
  let spans = span_events (read ()) in
  let workers = List.filter (fun (n, _, _) -> n = "w") spans in
  Alcotest.(check int) "one span per task" 16 (List.length workers);
  (* The calling domain doubles as a worker, so a worker span's parent is
     either the enclosing span (same domain) or nothing (fresh domain) —
     never a span of some *other* domain. *)
  List.iter
    (fun (_, parent, _) ->
       match parent with
       | None | Some "outer" -> ()
       | Some p -> Alcotest.failf "worker span adopted parent %S" p)
    workers

(* ---- metrics ---- *)

let test_gauge () =
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.set g 3.0;
  Obs.Metrics.set_max g 2.0;
  Alcotest.(check (float 0.0)) "set_max keeps the high water" 3.0
    (Obs.Metrics.gauge_value g);
  Obs.Metrics.set_max g 5.0;
  Alcotest.(check (float 0.0)) "set_max raises it" 5.0
    (Obs.Metrics.gauge_value g)

let test_histogram_snapshot () =
  let h = Obs.Metrics.histogram "test.obs.hist" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 100 ];
  let s =
    List.find
      (fun (s : Obs.Metrics.snapshot) -> s.metric = "test.obs.hist")
      (Obs.Metrics.snapshot ())
  in
  Alcotest.(check string) "kind" "histogram" s.kind;
  Alcotest.(check (float 0.0)) "value is the count" 4.0 s.value;
  let attr k = List.assoc k s.attrs in
  Alcotest.(check bool) "count/sum/min/max" true
    (attr "count" = Obs.Sink.I 4 && attr "sum" = Obs.Sink.I 106
     && attr "min" = Obs.Sink.I 1 && attr "max" = Obs.Sink.I 100);
  Alcotest.(check bool) "mean" true (attr "mean" = Obs.Sink.F 26.5);
  (* Bucketed estimates: upper bound of the rank's power-of-two bucket,
     clamped to the observed max. *)
  Alcotest.(check bool) "p50 estimate" true (attr "p50" = Obs.Sink.I 3);
  Alcotest.(check bool) "p95 estimate" true (attr "p95" = Obs.Sink.I 100);
  Alcotest.(check bool) "p99 estimate" true (attr "p99" = Obs.Sink.I 100);
  Alcotest.(check bool) "no unit attr unless declared" true
    (List.assoc_opt "unit" s.attrs = None)

let test_histogram_unit () =
  let h = Obs.Metrics.histogram ~unit:"ns" "test.obs.hist_ns" in
  Obs.Metrics.observe h 5;
  let s =
    List.find
      (fun (s : Obs.Metrics.snapshot) -> s.metric = "test.obs.hist_ns")
      (Obs.Metrics.snapshot ())
  in
  Alcotest.(check bool) "unit rides in the snapshot attrs" true
    (List.assoc_opt "unit" s.attrs = Some (Obs.Sink.S "ns"));
  let c = Obs.Metrics.counter ~unit:"bytes" "test.obs.counter_bytes" in
  Obs.Metrics.add c 9;
  let sc =
    List.find
      (fun (s : Obs.Metrics.snapshot) -> s.metric = "test.obs.counter_bytes")
      (Obs.Metrics.snapshot ())
  in
  Alcotest.(check bool) "counters carry units too" true
    (List.assoc_opt "unit" sc.attrs = Some (Obs.Sink.S "bytes"))

let test_counter_kind_collision () =
  ignore (Obs.Metrics.counter "test.obs.collision");
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument
       "Obs.Metrics: test.obs.collision already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge "test.obs.collision"))

(* ---- the JSONL schema (golden) ---- *)

let test_json_golden () =
  let span =
    Obs.Sink.Span
      { name = "pipeline.mine"; parent = Some "root"; domain = 0;
        start_ns = 123L; dur_ns = 456L;
        attrs =
          [ ("jobs", Obs.Sink.I 2); ("ratio", Obs.Sink.F 0.5);
            ("workload", Obs.Sink.S "a\"b\n"); ("ok", Obs.Sink.B true) ] }
  in
  Alcotest.(check string) "span object, fixed key order"
    ("{\"type\":\"span\",\"name\":\"pipeline.mine\",\"parent\":\"root\","
     ^ "\"domain\":0,\"start_ns\":123,\"dur_ns\":456,"
     ^ "\"attrs\":{\"jobs\":2,\"ratio\":0.5,\"workload\":\"a\\\"b\\n\","
     ^ "\"ok\":true}}")
    (Obs.Sink.json_of_event span);
  let metric =
    Obs.Sink.Metric
      { name = "mine.records"; kind = "counter"; value = 23931.0; attrs = [] }
  in
  Alcotest.(check string) "metric object; integral floats keep a digit"
    ("{\"type\":\"metric\",\"name\":\"mine.records\",\"kind\":\"counter\","
     ^ "\"value\":23931.0,\"attrs\":{}}")
    (Obs.Sink.json_of_event metric);
  let hist =
    Obs.Sink.Metric
      { name = "daikon.observe_ns"; kind = "histogram"; value = 4.0;
        attrs =
          [ ("p99", Obs.Sink.I 100); ("unit", Obs.Sink.S "ns") ] }
  in
  Alcotest.(check string) "histogram snapshot with p99 and unit"
    ("{\"type\":\"metric\",\"name\":\"daikon.observe_ns\","
     ^ "\"kind\":\"histogram\",\"value\":4.0,"
     ^ "\"attrs\":{\"p99\":100,\"unit\":\"ns\"}}")
    (Obs.Sink.json_of_event hist);
  (* All golden lines re-parse with the bundled reader. *)
  List.iter
    (fun ev ->
       match Obs.Json.parse (Obs.Sink.json_of_event ev) with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "golden line does not re-parse: %s" e)
    [ span; metric; hist ]

let test_json_parser () =
  (match Obs.Json.parse "{\"a\":[1,true,null,\"x\"],\"b\":-2.5e1}" with
   | Ok j ->
     Alcotest.(check bool) "member b" true
       (Obs.Json.member "b" j = Some (Obs.Json.Num (-25.0)))
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Obs.Json.parse "{\"a\":1} trailing" with
   | Ok _ -> Alcotest.fail "trailing garbage accepted"
   | Error _ -> ())

(* ---- the pipeline under a real sink ---- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_pipeline_sink_neutral () =
  let groups = [ [ "pi" ]; [ "bitcount" ] ] in
  let labels = [ "pi"; "bitcount" ] in
  let quiet = Pipeline.mine ~groups ~labels ~jobs:2 () in
  let path = Filename.temp_file "test_obs" ".jsonl" in
  let sink = Obs.Sink.jsonl path in
  let observed =
    Fun.protect ~finally:(fun () -> Obs.Sink.close sink) (fun () ->
        with_sink sink (fun () -> Pipeline.mine ~groups ~labels ~jobs:2 ()))
  in
  Alcotest.(check (list string)) "same invariant set"
    (List.map Expr.to_string quiet.Pipeline.invariants)
    (List.map Expr.to_string observed.Pipeline.invariants);
  Alcotest.(check int) "same record count"
    quiet.Pipeline.record_count observed.Pipeline.record_count;
  List.iter2
    (fun (a : Pipeline.figure3_row) (b : Pipeline.figure3_row) ->
       Alcotest.(check (list int)) ("figure 3 row " ^ a.group_label)
         [ a.unmodified; a.fresh; a.deleted; a.total ]
         [ b.unmodified; b.fresh; b.deleted; b.total ])
    quiet.Pipeline.figure3 observed.Pipeline.figure3;
  (* And the sink actually saw the run: a span per phase invocation and
     one per workload shard, every line schema-valid. *)
  let names =
    List.map
      (fun line ->
         match Obs.Json.parse line with
         | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
         | Ok j ->
           (match Obs.Json.(member "type" j, member "name" j) with
            | Some (Obs.Json.Str t), Some (Obs.Json.Str n) ->
              (t, n, Obs.Json.member "parent" j)
            | _ -> Alcotest.failf "line missing type/name: %s" line))
      (read_lines path)
  in
  Sys.remove path;
  let spans n =
    List.length (List.filter (fun (t, m, _) -> t = "span" && m = n) names)
  in
  Alcotest.(check int) "one pipeline.mine span" 1 (spans "pipeline.mine");
  Alcotest.(check int) "one shard span per workload" 2 (spans "mine.shard");
  (* Cross-domain parenting: shard spans run on pool domains, yet every
     one must still parent to the submitting pipeline.mine span (none
     may float as a root). *)
  List.iter
    (fun (t, n, parent) ->
       if t = "span" && n = "mine.shard" then
         Alcotest.(check bool) "mine.shard parents to pipeline.mine" true
           (parent = Some (Obs.Json.Str "pipeline.mine")))
    names

(* ---- Chrome trace-event rendering ---- *)

let test_trace_event_render () =
  let events =
    [ Obs.Sink.Span
        { name = "child"; parent = Some "root"; domain = 1;
          start_ns = 3_000L; dur_ns = 1_000L;
          attrs = [ ("workload", Obs.Sink.S "pi") ] };
      Obs.Sink.Span
        { name = "root"; parent = None; domain = 0; start_ns = 1_000L;
          dur_ns = 5_000L; attrs = [] };
      Obs.Sink.Metric
        { name = "mine.records"; kind = "counter"; value = 7.0; attrs = [] }
    ]
  in
  let doc =
    match Obs.Json.parse (Obs.Trace_event.render events) with
    | Ok d -> d
    | Error e -> Alcotest.failf "trace does not parse: %s" e
  in
  let evs =
    match Obs.Json.member "traceEvents" doc with
    | Some (Obs.Json.Arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let str k ev =
    match Obs.Json.member k ev with
    | Some (Obs.Json.Str s) -> Some s
    | _ -> None
  in
  let num k ev =
    match Obs.Json.member k ev with
    | Some (Obs.Json.Num f) -> Some f
    | _ -> None
  in
  let phase p = List.filter (fun ev -> str "ph" ev = Some p) evs in
  (* process_name + one thread_name per domain, both spans, one counter. *)
  Alcotest.(check int) "metadata events" 3 (List.length (phase "M"));
  Alcotest.(check int) "complete spans" 2 (List.length (phase "X"));
  Alcotest.(check int) "counter events" 1 (List.length (phase "C"));
  let span name =
    List.find (fun ev -> str "name" ev = Some name) (phase "X")
  in
  (* Timestamps are normalized to the earliest span start, in us. *)
  Alcotest.(check (option (float 1e-9))) "root at t0" (Some 0.0)
    (num "ts" (span "root"));
  Alcotest.(check (option (float 1e-9))) "child offset 2us" (Some 2.0)
    (num "ts" (span "child"));
  Alcotest.(check (option (float 1e-9))) "child duration 1us" (Some 1.0)
    (num "dur" (span "child"));
  Alcotest.(check bool) "child keeps its parent attr" true
    (match Obs.Json.member "args" (span "child") with
     | Some args ->
       Obs.Json.member "parent" args = Some (Obs.Json.Str "root")
       && Obs.Json.member "workload" args = Some (Obs.Json.Str "pi")
     | None -> false);
  List.iter
    (fun ev ->
       Alcotest.(check bool) "non-negative ts" true
         (match num "ts" ev with Some t -> t >= 0.0 | None -> false))
    evs

(* ---- the report reader under hostile input ---- *)

let test_report_hostile () =
  let good_span =
    "{\"type\":\"span\",\"name\":\"pipeline.mine\",\"parent\":null,"
    ^ "\"domain\":0,\"start_ns\":1,\"dur_ns\":5000000,\"attrs\":{}}"
  and good_metric =
    "{\"type\":\"metric\",\"name\":\"mine.cache.hit\",\"kind\":\"counter\","
    ^ "\"value\":2.0,\"attrs\":{}}"
  in
  let hostile =
    [ "{\"type\":\"span\",\"name\":\"trunc";                (* truncated *)
      "{\"type\":\"metric\",\"name\":\"n\",\"kind\":\"counter\","
      ^ "\"value\":NaN,\"attrs\":{}}";                      (* NaN literal *)
      "{\"type\":\"wat\",\"name\":\"x\"}";                  (* unknown type *)
      String.make 8192 '[';                                 (* huge nesting *)
      "[1,2,3]";                                            (* not an object *)
      "{\"type\":\"span\",\"name\":\"no_duration\"}"        (* missing field *)
    ]
  in
  let skip_counter = Obs.Metrics.counter "json.skipped" in
  let before = Obs.Metrics.counter_value skip_counter in
  let run =
    Obs.Report.load_lines
      ((good_span :: hostile) @ [ ""; "  "; good_metric ])
  in
  Alcotest.(check int) "one span survives" 1 (List.length run.spans);
  Alcotest.(check int) "one metric survives" 1 (List.length run.metrics);
  Alcotest.(check int) "every hostile line skip-and-counted" 6 run.skipped;
  Alcotest.(check int) "blank lines are not lines" 8 run.total;
  Alcotest.(check int) "json.skipped counter advanced" 6
    (Obs.Metrics.counter_value skip_counter - before);
  (* And the renderer works over whatever survived — both formats. *)
  List.iter
    (fun format ->
       let text = Obs.Report.render ~format run in
       Alcotest.(check bool) "report mentions the skip count" true
         (String.length text > 0
          && (let found = ref false in
              String.iteri
                (fun i _ ->
                   if i + 7 <= String.length text
                   && String.equal (String.sub text i 7) "skipped" then
                     found := true)
                text;
              !found)))
    [ `Text; `Md ]

let test_report_funnel () =
  let gauge fam field v =
    Printf.sprintf
      "{\"type\":\"metric\",\"name\":\"daikon.candidates.%s.%s\",\
       \"kind\":\"gauge\",\"value\":%.1f,\"attrs\":{}}"
      fam field v
  in
  let run =
    Obs.Report.load_lines
      [ gauge "oneof" "born" 100.0; gauge "oneof" "dead" 40.0;
        gauge "oneof" "live" 60.0 ]
  in
  Alcotest.(check int) "three metrics" 3 (List.length run.metrics);
  let text = Obs.Report.render run in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "funnel row for oneof" true (contains "oneof");
  Alcotest.(check bool) "survival rate computed" true (contains "60.0%")

let () =
  Alcotest.run "obs"
    [ ("span",
       [ Alcotest.test_case "nesting and emission order" `Quick
           test_span_nesting;
         Alcotest.test_case "closes on exception" `Quick test_span_exception;
         Alcotest.test_case "timed" `Quick test_span_timed;
         Alcotest.test_case "inherited context parents orphans" `Quick
           test_span_context ]);
      ("domains",
       [ Alcotest.test_case "counter is exact across domains" `Quick
           test_counter_across_domains;
         Alcotest.test_case "worker spans isolate from parent" `Quick
           test_worker_spans_do_not_corrupt_parent ]);
      ("metrics",
       [ Alcotest.test_case "gauge high water" `Quick test_gauge;
         Alcotest.test_case "histogram snapshot" `Quick
           test_histogram_snapshot;
         Alcotest.test_case "units ride snapshots" `Quick
           test_histogram_unit;
         Alcotest.test_case "kind collision" `Quick
           test_counter_kind_collision ]);
      ("jsonl",
       [ Alcotest.test_case "golden encoding" `Quick test_json_golden;
         Alcotest.test_case "reader" `Quick test_json_parser ]);
      ("trace-event",
       [ Alcotest.test_case "Chrome trace rendering" `Quick
           test_trace_event_render ]);
      ("report",
       [ Alcotest.test_case "hostile input skip-and-count" `Quick
           test_report_hostile;
         Alcotest.test_case "candidate funnel" `Quick test_report_funnel ]);
      ("pipeline",
       [ Alcotest.test_case "JSONL sink is behavior-neutral" `Quick
           test_pipeline_sink_neutral ]) ]
