(* The telemetry subsystem's acceptance properties: span nesting and
   emission order, exact counters under domain-parallel increments,
   worker-domain span isolation, a golden (schema-stable) JSONL encoding,
   and — the one that matters most — a JSONL sink changing nothing about
   what the pipeline computes. *)

module Pipeline = Scifinder_core.Pipeline
module Expr = Invariant.Expr

(* Every test leaves the global sink as it found it (null). *)
let with_sink sink f =
  Obs.Sink.set_global sink;
  Fun.protect ~finally:(fun () -> Obs.Sink.set_global Obs.Sink.null) f

let span_events events =
  List.filter_map
    (function
      | Obs.Sink.Span { name; parent; dur_ns; _ } ->
        Some (name, parent, dur_ns)
      | Obs.Sink.Metric _ -> None)
    events

(* ---- spans ---- *)

let test_span_nesting () =
  let sink, read = Obs.Sink.memory () in
  with_sink sink (fun () ->
      let v =
        Obs.Span.with_ ~name:"a" (fun () ->
            Alcotest.(check (option string)) "inside a"
              (Some "a") (Obs.Span.current ());
            let u = Obs.Span.with_ ~name:"b" (fun () -> 41) in
            Alcotest.(check (option string)) "back to a"
              (Some "a") (Obs.Span.current ());
            u + 1)
      in
      Alcotest.(check int) "with_ returns the body's value" 42 v);
  Alcotest.(check (option string)) "no open span left" None
    (Obs.Span.current ());
  match span_events (read ()) with
  | [ ("b", pb, db); ("a", pa, da) ] ->
    Alcotest.(check (option string)) "b's parent is a" (Some "a") pb;
    Alcotest.(check (option string)) "a is a root" None pa;
    Alcotest.(check bool) "durations are non-negative" true
      (Int64.compare db 0L >= 0 && Int64.compare da 0L >= 0);
    Alcotest.(check bool) "a lasted at least as long as b" true
      (Int64.compare da db >= 0)
  | evs ->
    Alcotest.failf "expected [b; a], got %d span events" (List.length evs)

let test_span_exception () =
  let sink, read = Obs.Sink.memory () in
  with_sink sink (fun () ->
      (try Obs.Span.with_ ~name:"boom" (fun () -> raise Exit)
       with Exit -> ());
      Alcotest.(check (option string)) "stack unwound" None
        (Obs.Span.current ()));
  match span_events (read ()) with
  | [ ("boom", None, _) ] -> ()
  | evs ->
    Alcotest.failf "expected the raising span, got %d events"
      (List.length evs)

let test_span_timed () =
  let (v, secs) = Obs.Span.timed ~name:"t" (fun () -> 7) in
  Alcotest.(check int) "timed returns the value" 7 v;
  Alcotest.(check bool) "monotonic duration" true (secs >= 0.0)

(* ---- counters under Util.Parallel ---- *)

let test_counter_across_domains () =
  let c = Obs.Metrics.counter "test.obs.parallel_counter" in
  let tasks = Array.init 40 (fun i -> i) in
  ignore
    (Util.Parallel.map ~jobs:4
       (fun _ ->
          for _ = 1 to 1000 do Obs.Metrics.incr c done;
          Obs.Metrics.add c 10)
       tasks);
  Alcotest.(check int) "40 tasks x (1000 incr + add 10), exactly"
    (40 * 1010) (Obs.Metrics.counter_value c)

let test_worker_spans_do_not_corrupt_parent () =
  let sink, read = Obs.Sink.memory () in
  with_sink sink (fun () ->
      Obs.Span.with_ ~name:"outer" (fun () ->
          ignore
            (Util.Parallel.map ~jobs:4
               (fun i -> Obs.Span.with_ ~name:"w" (fun () -> i))
               (Array.init 16 (fun i -> i)));
          (* The pool is drained; the calling domain's stack is intact. *)
          Alcotest.(check (option string)) "outer still open"
            (Some "outer") (Obs.Span.current ())));
  let spans = span_events (read ()) in
  let workers = List.filter (fun (n, _, _) -> n = "w") spans in
  Alcotest.(check int) "one span per task" 16 (List.length workers);
  (* The calling domain doubles as a worker, so a worker span's parent is
     either the enclosing span (same domain) or nothing (fresh domain) —
     never a span of some *other* domain. *)
  List.iter
    (fun (_, parent, _) ->
       match parent with
       | None | Some "outer" -> ()
       | Some p -> Alcotest.failf "worker span adopted parent %S" p)
    workers

(* ---- metrics ---- *)

let test_gauge () =
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.set g 3.0;
  Obs.Metrics.set_max g 2.0;
  Alcotest.(check (float 0.0)) "set_max keeps the high water" 3.0
    (Obs.Metrics.gauge_value g);
  Obs.Metrics.set_max g 5.0;
  Alcotest.(check (float 0.0)) "set_max raises it" 5.0
    (Obs.Metrics.gauge_value g)

let test_histogram_snapshot () =
  let h = Obs.Metrics.histogram "test.obs.hist" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 100 ];
  let s =
    List.find
      (fun (s : Obs.Metrics.snapshot) -> s.metric = "test.obs.hist")
      (Obs.Metrics.snapshot ())
  in
  Alcotest.(check string) "kind" "histogram" s.kind;
  Alcotest.(check (float 0.0)) "value is the count" 4.0 s.value;
  let attr k = List.assoc k s.attrs in
  Alcotest.(check bool) "count/sum/min/max" true
    (attr "count" = Obs.Sink.I 4 && attr "sum" = Obs.Sink.I 106
     && attr "min" = Obs.Sink.I 1 && attr "max" = Obs.Sink.I 100);
  Alcotest.(check bool) "mean" true (attr "mean" = Obs.Sink.F 26.5);
  (* Bucketed estimates: upper bound of the rank's power-of-two bucket,
     clamped to the observed max. *)
  Alcotest.(check bool) "p50 estimate" true (attr "p50" = Obs.Sink.I 3);
  Alcotest.(check bool) "p95 estimate" true (attr "p95" = Obs.Sink.I 100)

let test_counter_kind_collision () =
  ignore (Obs.Metrics.counter "test.obs.collision");
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument
       "Obs.Metrics: test.obs.collision already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge "test.obs.collision"))

(* ---- the JSONL schema (golden) ---- *)

let test_json_golden () =
  let span =
    Obs.Sink.Span
      { name = "pipeline.mine"; parent = Some "root"; domain = 0;
        start_ns = 123L; dur_ns = 456L;
        attrs =
          [ ("jobs", Obs.Sink.I 2); ("ratio", Obs.Sink.F 0.5);
            ("workload", Obs.Sink.S "a\"b\n"); ("ok", Obs.Sink.B true) ] }
  in
  Alcotest.(check string) "span object, fixed key order"
    ("{\"type\":\"span\",\"name\":\"pipeline.mine\",\"parent\":\"root\","
     ^ "\"domain\":0,\"start_ns\":123,\"dur_ns\":456,"
     ^ "\"attrs\":{\"jobs\":2,\"ratio\":0.5,\"workload\":\"a\\\"b\\n\","
     ^ "\"ok\":true}}")
    (Obs.Sink.json_of_event span);
  let metric =
    Obs.Sink.Metric
      { name = "mine.records"; kind = "counter"; value = 23931.0; attrs = [] }
  in
  Alcotest.(check string) "metric object; integral floats keep a digit"
    ("{\"type\":\"metric\",\"name\":\"mine.records\",\"kind\":\"counter\","
     ^ "\"value\":23931.0,\"attrs\":{}}")
    (Obs.Sink.json_of_event metric);
  (* Both golden lines re-parse with the bundled reader. *)
  List.iter
    (fun ev ->
       match Obs.Json.parse (Obs.Sink.json_of_event ev) with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "golden line does not re-parse: %s" e)
    [ span; metric ]

let test_json_parser () =
  (match Obs.Json.parse "{\"a\":[1,true,null,\"x\"],\"b\":-2.5e1}" with
   | Ok j ->
     Alcotest.(check bool) "member b" true
       (Obs.Json.member "b" j = Some (Obs.Json.Num (-25.0)))
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Obs.Json.parse "{\"a\":1} trailing" with
   | Ok _ -> Alcotest.fail "trailing garbage accepted"
   | Error _ -> ())

(* ---- the pipeline under a real sink ---- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_pipeline_sink_neutral () =
  let groups = [ [ "pi" ]; [ "bitcount" ] ] in
  let labels = [ "pi"; "bitcount" ] in
  let quiet = Pipeline.mine ~groups ~labels ~jobs:2 () in
  let path = Filename.temp_file "test_obs" ".jsonl" in
  let sink = Obs.Sink.jsonl path in
  let observed =
    Fun.protect ~finally:(fun () -> Obs.Sink.close sink) (fun () ->
        with_sink sink (fun () -> Pipeline.mine ~groups ~labels ~jobs:2 ()))
  in
  Alcotest.(check (list string)) "same invariant set"
    (List.map Expr.to_string quiet.Pipeline.invariants)
    (List.map Expr.to_string observed.Pipeline.invariants);
  Alcotest.(check int) "same record count"
    quiet.Pipeline.record_count observed.Pipeline.record_count;
  List.iter2
    (fun (a : Pipeline.figure3_row) (b : Pipeline.figure3_row) ->
       Alcotest.(check (list int)) ("figure 3 row " ^ a.group_label)
         [ a.unmodified; a.fresh; a.deleted; a.total ]
         [ b.unmodified; b.fresh; b.deleted; b.total ])
    quiet.Pipeline.figure3 observed.Pipeline.figure3;
  (* And the sink actually saw the run: a span per phase invocation and
     one per workload shard, every line schema-valid. *)
  let names =
    List.map
      (fun line ->
         match Obs.Json.parse line with
         | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
         | Ok j ->
           (match Obs.Json.(member "type" j, member "name" j) with
            | Some (Obs.Json.Str t), Some (Obs.Json.Str n) -> (t, n)
            | _ -> Alcotest.failf "line missing type/name: %s" line))
      (read_lines path)
  in
  Sys.remove path;
  let spans n = List.length (List.filter (( = ) ("span", n)) names) in
  Alcotest.(check int) "one pipeline.mine span" 1 (spans "pipeline.mine");
  Alcotest.(check int) "one shard span per workload" 2 (spans "mine.shard")

let () =
  Alcotest.run "obs"
    [ ("span",
       [ Alcotest.test_case "nesting and emission order" `Quick
           test_span_nesting;
         Alcotest.test_case "closes on exception" `Quick test_span_exception;
         Alcotest.test_case "timed" `Quick test_span_timed ]);
      ("domains",
       [ Alcotest.test_case "counter is exact across domains" `Quick
           test_counter_across_domains;
         Alcotest.test_case "worker spans isolate from parent" `Quick
           test_worker_spans_do_not_corrupt_parent ]);
      ("metrics",
       [ Alcotest.test_case "gauge high water" `Quick test_gauge;
         Alcotest.test_case "histogram snapshot" `Quick
           test_histogram_snapshot;
         Alcotest.test_case "kind collision" `Quick
           test_counter_kind_collision ]);
      ("jsonl",
       [ Alcotest.test_case "golden encoding" `Quick test_json_golden;
         Alcotest.test_case "reader" `Quick test_json_parser ]);
      ("pipeline",
       [ Alcotest.test_case "JSONL sink is behavior-neutral" `Quick
           test_pipeline_sink_neutral ]) ]
