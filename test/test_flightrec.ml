(* The flight recorder's acceptance properties: provenance changes
   nothing about what the engine mines, deaths carry a usable evidence
   trail (workload + record + tick), the per-family first-death summary
   survives ring eviction, witnesses attribute surviving invariants,
   provenance round-trips through the v2 codec (and its absence keeps
   the v1 bytes), and shard merging accumulates both sides' records. *)

module Engine = Daikon.Engine
module Expr = Invariant.Expr
module Pipeline = Scifinder_core.Pipeline

let trace_into engine name =
  let w = Option.get (Workloads.Suite.by_name name) in
  Engine.set_workload engine name;
  ignore
    (Trace.Runner.stream ~tick_period:w.Workloads.Rt.tick_period
       ~entry:w.Workloads.Rt.entry
       ~observer:(Engine.observe engine) w.Workloads.Rt.image)

let mined ?(provenance = true) ?prov_capacity names =
  let e = Engine.create ~provenance ?prov_capacity () in
  List.iter (trace_into e) names;
  e

let strings engine = List.map Expr.to_string (Engine.invariants engine)

let total_deaths e =
  List.fold_left (fun acc (_, n, _) -> acc + n) 0 (Engine.death_families e)

(* ---- provenance is observer-only ---- *)

let test_provenance_neutral () =
  let plain = mined ~provenance:false [ "helloworld"; "pi" ] in
  let prov = mined [ "helloworld"; "pi" ] in
  Alcotest.(check bool) "flag reads back" true (Engine.provenance_enabled prov);
  Alcotest.(check bool) "flag off reads back" false
    (Engine.provenance_enabled plain);
  Alcotest.(check (list string)) "identical invariant set"
    (strings plain) (strings prov);
  Alcotest.(check bool) "identical candidate stats" true
    (Engine.candidate_stats plain = Engine.candidate_stats prov);
  Alcotest.(check int) "identical record count"
    (Engine.record_count plain) (Engine.record_count prov);
  (* Without provenance every reader degrades to the empty answer. *)
  Alcotest.(check int) "no deaths without provenance" 0
    (List.length (Engine.deaths plain));
  Alcotest.(check int) "no families without provenance" 0
    (List.length (Engine.death_families plain))

let test_pipeline_provenance_neutral () =
  let names = [ "helloworld"; "pi" ] in
  let plain = Pipeline.mine_invariants ~jobs:2 ~names () in
  let prov = Pipeline.mine_invariants ~jobs:2 ~provenance:true ~names () in
  Alcotest.(check (list string)) "sharded mining unchanged by provenance"
    (List.map Expr.to_string plain) (List.map Expr.to_string prov)

(* ---- the evidence trail ---- *)

let known_families = [ "oneof"; "mod"; "relation"; "diff"; "scale" ]

let test_deaths_have_evidence () =
  let e = mined [ "helloworld" ] in
  let deaths = Engine.deaths e in
  Alcotest.(check bool) "some candidates died" true (deaths <> []);
  List.iter
    (fun (d : Engine.death) ->
       Alcotest.(check bool) ("known family: " ^ d.d_family) true
         (List.mem d.d_family known_families);
       Alcotest.(check string) "killing workload named" "helloworld"
         d.d_workload;
       Alcotest.(check bool) "record ordinal positive" true (d.d_record > 0);
       Alcotest.(check bool) "tick within the workload" true
         (d.d_tick > 0 && d.d_tick <= d.d_record);
       Alcotest.(check bool) "candidate described" true
         (String.length d.d_desc > 0 && String.length d.d_point > 0))
    deaths;
  (* The per-family summary and the ring agree on the total. *)
  Alcotest.(check int) "families sum = ring + evicted"
    (List.length deaths + Engine.deaths_dropped e)
    (total_deaths e)

let test_first_death_survives_eviction () =
  let tiny = mined ~prov_capacity:8 [ "helloworld"; "basicmath" ] in
  let full = mined [ "helloworld"; "basicmath" ] in
  Alcotest.(check bool) "tiny ring actually evicted" true
    (Engine.deaths_dropped tiny > 0);
  Alcotest.(check int) "at most 8 deaths retained" 8
    (max 8 (List.length (Engine.deaths tiny)));
  (* Eviction loses ring entries, never the per-family accounting. *)
  List.iter2
    (fun (fam_t, n_t, first_t) (fam_f, n_f, first_f) ->
       Alcotest.(check string) "same families" fam_f fam_t;
       Alcotest.(check int) ("same death count: " ^ fam_t) n_f n_t;
       match (first_t, first_f) with
       | Some a, Some b ->
         Alcotest.(check string) "same first victim" b.Engine.d_desc
           a.Engine.d_desc;
         Alcotest.(check int) "same killing record" b.Engine.d_record
           a.Engine.d_record
       | None, None -> ()
       | _ -> Alcotest.fail ("first-death mismatch for " ^ fam_t))
    (Engine.death_families tiny) (Engine.death_families full)

let test_witnesses () =
  let e = mined [ "helloworld"; "pi" ] in
  let witnessed =
    List.filter_map (Engine.narrow_witness e) (Engine.invariants e)
  in
  Alcotest.(check bool) "some survivors carry witnesses" true
    (witnessed <> []);
  List.iter
    (fun (w : Engine.witness) ->
       Alcotest.(check bool) "witness names a real workload" true
         (List.mem w.w_workload [ "helloworld"; "pi" ]);
       Alcotest.(check bool) "witness record positive" true (w.w_record > 0))
    witnessed;
  (* Without provenance, no attribution. *)
  let plain = mined ~provenance:false [ "helloworld" ] in
  Alcotest.(check bool) "no witness without provenance" true
    (List.for_all
       (fun i -> Engine.narrow_witness plain i = None)
       (Engine.invariants plain))

(* ---- the codec ---- *)

let version_byte data = Char.code data.[8]

let test_codec_version_bytes () =
  let plain = Engine.encode (mined ~provenance:false [ "pi" ]) in
  let prov = Engine.encode (mined [ "pi" ]) in
  (* No provenance -> the exact pre-flight-recorder format: version 1.
     Enabling it appends the new section under a bumped version. *)
  Alcotest.(check int) "prov-off encodes as v1" 1 (version_byte plain);
  Alcotest.(check int) "prov-on encodes as v2" 2 (version_byte prov);
  Alcotest.(check int) "newest accepted version" 2 Engine.codec_version

let test_codec_roundtrip_provenance () =
  let e = mined [ "helloworld"; "pi" ] in
  let back = Engine.decode (Engine.encode e) in
  Alcotest.(check bool) "provenance survives the codec" true
    (Engine.provenance_enabled back);
  Alcotest.(check (list string)) "same invariants" (strings e) (strings back);
  Alcotest.(check int) "same dropped count" (Engine.deaths_dropped e)
    (Engine.deaths_dropped back);
  Alcotest.(check bool) "same death ring" true
    (Engine.deaths e = Engine.deaths back);
  Alcotest.(check bool) "same family summary" true
    (Engine.death_families e = Engine.death_families back);
  Alcotest.(check bool) "same witnesses" true
    (List.for_all
       (fun i -> Engine.narrow_witness e i = Engine.narrow_witness back i)
       (Engine.invariants e))

let test_codec_v1_still_decodes () =
  (* A v1 snapshot (prov-off bytes) loads into a provenance-less engine
     that behaves exactly like the original. *)
  let e = mined ~provenance:false [ "pi" ] in
  let back = Engine.decode (Engine.encode e) in
  Alcotest.(check bool) "v1 loads without provenance" false
    (Engine.provenance_enabled back);
  Alcotest.(check (list string)) "same invariants" (strings e) (strings back);
  (* And prov-off encoding is deterministic: same trace, same bytes —
     the property that keeps pre-existing shard caches hot. *)
  Alcotest.(check bool) "prov-off bytes canonical" true
    (String.equal (Engine.encode e)
       (Engine.encode (mined ~provenance:false [ "pi" ])))

(* ---- merging shards ---- *)

let test_merge_accumulates_provenance () =
  let a = mined [ "pi" ] in
  let b = mined [ "helloworld" ] in
  let a_total = total_deaths a and b_total = total_deaths b in
  let sequential = mined ~provenance:false [ "pi"; "helloworld" ] in
  Engine.merge_into a b;
  Alcotest.(check (list string)) "merged invariants = sequential"
    (strings sequential) (strings a);
  (* The merge keeps both shards' records and adds its own (the join
     itself falsifies candidates the shards disagreed on). *)
  Alcotest.(check bool) "the join itself killed candidates" true
    (total_deaths a > a_total + b_total);
  let merge_kills =
    List.filter
      (fun (d : Engine.death) ->
         String.length d.d_workload >= 6
         && String.equal (String.sub d.d_workload 0 6) "merge:")
      (Engine.deaths a)
  in
  Alcotest.(check bool) "merge-time kills are labelled" true
    (merge_kills <> []);
  (* The bounded ring plus the eviction count still accounts for every
     accumulated record. *)
  Alcotest.(check int) "ring + evicted = family totals"
    (List.length (Engine.deaths a) + Engine.deaths_dropped a)
    (total_deaths a)

(* ---- the pipeline report ---- *)

let test_pipeline_report () =
  let groups = [ [ "helloworld" ]; [ "basicmath" ] ] in
  let labels = [ "helloworld"; "basicmath" ] in
  let m = Pipeline.mine ~jobs:2 ~provenance:true ~groups ~labels () in
  let pr =
    match m.Pipeline.prov with
    | Some pr -> pr
    | None -> Alcotest.fail "provenance mining returned no report"
  in
  (* The acceptance bar: at least one fully attributed death per family
     that died at all, with the killing workload and record named. *)
  Alcotest.(check bool) "families died" true (pr.death_families <> []);
  List.iter
    (fun (fam, n, first) ->
       Alcotest.(check bool) ("family counted: " ^ fam) true (n > 0);
       match first with
       | Some (d : Engine.death) ->
         Alcotest.(check bool) ("first death attributed: " ^ fam) true
           (String.length d.d_workload > 0 && d.d_record > 0)
       | None -> Alcotest.fail ("family with no first death: " ^ fam))
    pr.death_families;
  Alcotest.(check bool) "witnesses attributed" true (pr.witnesses <> []);
  (* The prov-less run of the same corpus mines the same set. *)
  let plain = Pipeline.mine ~jobs:2 ~groups ~labels () in
  Alcotest.(check bool) "no report without the flag" true
    (plain.Pipeline.prov = None);
  Alcotest.(check (list string)) "identical invariants"
    (List.map Expr.to_string plain.Pipeline.invariants)
    (List.map Expr.to_string m.Pipeline.invariants)

let test_provenance_cache () =
  (* Shard caching composes with provenance: a warm provenance run is
     identical, and the v2 shard snapshots restore the death records. *)
  let dir = Filename.temp_file "scifinder_provcache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
        Array.iter
          (fun n ->
             try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
       let names = [ "helloworld" ] in
       let cold =
         Pipeline.mine_invariants ~jobs:1 ~provenance:true ~cache_dir:dir
           ~names ()
       in
       let warm =
         Pipeline.mine_invariants ~jobs:1 ~provenance:true ~cache_dir:dir
           ~names ()
       in
       let s = List.map Expr.to_string in
       Alcotest.(check (list string)) "warm equals cold" (s cold) (s warm);
       (* The cached shard is a v2 snapshot carrying the flight data. *)
       let snap = Filename.concat dir "helloworld.snap" in
       Alcotest.(check bool) "shard cached" true (Sys.file_exists snap);
       let plain =
         Pipeline.mine_invariants ~jobs:1 ~cache_dir:dir ~names ()
       in
       Alcotest.(check (list string))
         "provenance-off run never adopts a provenance shard (same set \
          re-mined)"
         (s cold) (s plain))

let () =
  Alcotest.run "flightrec"
    [ ("neutrality",
       [ Alcotest.test_case "engine-level" `Quick test_provenance_neutral;
         Alcotest.test_case "pipeline-level" `Quick
           test_pipeline_provenance_neutral ]);
      ("evidence",
       [ Alcotest.test_case "deaths name their killer" `Quick
           test_deaths_have_evidence;
         Alcotest.test_case "first death survives eviction" `Quick
           test_first_death_survives_eviction;
         Alcotest.test_case "witnesses attribute survivors" `Quick
           test_witnesses ]);
      ("codec",
       [ Alcotest.test_case "version bytes" `Quick test_codec_version_bytes;
         Alcotest.test_case "v2 roundtrip" `Quick
           test_codec_roundtrip_provenance;
         Alcotest.test_case "v1 compatibility" `Quick
           test_codec_v1_still_decodes ]);
      ("merge",
       [ Alcotest.test_case "provenance accumulates" `Quick
           test_merge_accumulates_provenance ]);
      ("pipeline",
       [ Alcotest.test_case "provenance report" `Quick test_pipeline_report;
         Alcotest.test_case "cache composes" `Quick test_provenance_cache ])
    ]
