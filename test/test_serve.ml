(* The mining service, bottom-up: the wire framing and the JSON protocol
   under hostile bytes (test_binio discipline: every torn, oversized or
   garbage input is a structured error, never an escaping exception),
   the fair scheduler's ordering/backpressure/drain invariants, and the
   server end-to-end over a real Unix socket — including the acceptance
   bar that a session mined over the socket is byte-identical (SCIFSNAP
   digest and Figure 3 rows) to [Pipeline.mine] run directly. *)

module Pipeline = Scifinder_core.Pipeline

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let with_tmp_dir f =
  let dir = Filename.temp_file "scifinder_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
        Array.iter
          (fun n ->
             try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (try Sys.readdir dir with Sys_error _ -> [||]);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* ---- framing ---- *)

let drain dec =
  let rec go acc =
    match Serve.Frame.next dec with
    | `Frame p -> go (Ok p :: acc)
    | `Await -> List.rev acc
    | `Error e -> List.rev (Error e :: acc)
  in
  go []

let test_frame_roundtrip_bytewise () =
  (* Feeding one byte at a time must yield exactly the encoded frames,
     in order, whatever the payload bytes (including newlines). *)
  let payloads = [ ""; "x"; "{\"a\":1}"; "\n\n\n"; String.make 5000 '\xff' ] in
  let wire = String.concat "" (List.map Serve.Frame.encode payloads) in
  let dec = Serve.Frame.decoder () in
  let out = ref [] in
  String.iter
    (fun c ->
       Serve.Frame.feed dec (String.make 1 c);
       List.iter
         (fun f -> out := f :: !out)
         (drain dec))
    wire;
  let got =
    List.rev_map (function Ok p -> p | Error _ -> "<error>") !out
  in
  Alcotest.(check (list string)) "all frames, in order" payloads got

let expect_frame_error what wire =
  let dec = Serve.Frame.decoder () in
  Serve.Frame.feed dec wire;
  let rec go () =
    match Serve.Frame.next dec with
    | `Frame _ -> go ()
    | `Await -> Alcotest.failf "%s: decoder kept awaiting" what
    | `Error e -> e
  in
  go ()

let test_frame_hostile () =
  (match expect_frame_error "oversized" "99999999\n" with
   | Serve.Frame.Oversized n -> Alcotest.(check int) "length" 99999999 n
   | e -> Alcotest.failf "oversized: got %s" (Serve.Frame.error_message e));
  (match expect_frame_error "ten digits" "1000000000\n" with
   | Serve.Frame.Bad_length _ -> ()
   | e -> Alcotest.failf "ten digits: got %s" (Serve.Frame.error_message e));
  (match expect_frame_error "non-digit" "12a\n{}\n" with
   | Serve.Frame.Bad_length _ -> ()
   | e -> Alcotest.failf "non-digit: got %s" (Serve.Frame.error_message e));
  (match expect_frame_error "empty length" "\n{}\n" with
   | Serve.Frame.Bad_length _ -> ()
   | e -> Alcotest.failf "empty length: got %s" (Serve.Frame.error_message e));
  (match expect_frame_error "negative" "-1\n" with
   | Serve.Frame.Bad_length _ -> ()
   | e -> Alcotest.failf "negative: got %s" (Serve.Frame.error_message e));
  (match expect_frame_error "bad terminator" "2\n{}X" with
   | Serve.Frame.Bad_terminator -> ()
   | e ->
     Alcotest.failf "bad terminator: got %s" (Serve.Frame.error_message e));
  (* A truncated frame is not an error — just [`Await] forever (the
     disconnect is the caller's to detect). *)
  let dec = Serve.Frame.decoder () in
  Serve.Frame.feed dec "100\n{\"half";
  (match Serve.Frame.next dec with
   | `Await -> ()
   | _ -> Alcotest.fail "mid-frame bytes must await, not error");
  Alcotest.(check int) "pending bytes tracked" 10 (Serve.Frame.pending dec)

let frame_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 200))

let test_frame_qcheck =
  qtest "frame: encode |> feed in random chunks |> next = id"
    QCheck.(make
              Gen.(pair (list_size (0 -- 5) frame_gen) (1 -- 7)))
    (fun (payloads, chunk) ->
       let wire = String.concat "" (List.map Serve.Frame.encode payloads) in
       let dec = Serve.Frame.decoder () in
       let out = ref [] in
       let n = String.length wire in
       let rec feed off =
         if off < n then begin
           let len = min chunk (n - off) in
           Serve.Frame.feed dec (String.sub wire off len);
           List.iter
             (function
               | Ok p -> out := p :: !out
               | Error e -> QCheck.Test.fail_report (Serve.Frame.error_message e))
             (drain dec);
           feed (off + len)
         end
       in
       feed 0;
       List.rev !out = payloads)

(* ---- protocol codec ---- *)

(* Strings with quotes, backslashes, control bytes and non-ASCII: the
   JSON escaping must round-trip all of them. *)
let hostile_string =
  QCheck.Gen.oneofl
    [ "pi"; "helloworld"; "a\"b\\c"; "\x00\x01\x1f"; "caf\xc3\xa9";
      "line\nbreak"; "" ]

let request_gen : Serve.Proto.envelope QCheck.Gen.t =
  let open QCheck.Gen in
  let open Serve.Proto in
  let source =
    oneof
      [ map (fun l -> Names l) (list_size (1 -- 3) hostile_string);
        map2 (fun seed count -> Fuzz { seed; count }) (0 -- 1000) (1 -- 64);
        map (fun d -> Lake d) hostile_string ]
  in
  let request =
    oneof
      [ map3
          (fun source label (row, digest) -> Mine { source; label; row; digest })
          source (option hostile_string) (pair bool bool);
        map (fun text -> Check { text }) hostile_string;
        map2
          (fun (seed, mutants) (triggers, tries) ->
             Campaign { seed; mutants; triggers; tries })
          (pair (0 -- 99) (1 -- 500)) (pair (1 -- 64) (1 -- 5));
        map (fun path -> Snapshot { path }) hostile_string;
        return Status;
        map (fun target -> Cancel { target }) (0 -- 1000);
        return Shutdown ]
  in
  map3
    (fun id session request -> { id; session; request })
    (0 -- 10000) (option hostile_string) request

let response_gen : Serve.Proto.response QCheck.Gen.t =
  let open QCheck.Gen in
  let open Serve.Proto in
  let id = 0 -- 10000 in
  let row =
    map3
      (fun r_label (r_unmodified, r_fresh) (r_deleted, r_total) ->
         { r_label; r_unmodified; r_fresh; r_deleted; r_total })
      hostile_string (pair (0 -- 9999) (0 -- 9999)) (pair (0 -- 9999) (0 -- 9999))
  in
  let session_stat =
    map3
      (fun st_name (st_records, st_sources) (st_queued, st_running) ->
         { st_name; st_records; st_sources; st_queued; st_running })
      hostile_string (pair (0 -- 9999) (0 -- 99)) (pair (0 -- 9) bool)
  in
  oneof
    [ map3
        (fun id (records, total_records) (rows, (invariants, digest)) ->
           Mined { id; records; total_records; rows; invariants; digest })
        id (pair (0 -- 9999) (0 -- 9999))
        (pair (list_size (0 -- 3) row) (pair (-1 -- 500) (option hostile_string)));
      map3
        (fun id (supported, violated) (vacuous, statuses) ->
           Checked { id; supported; violated; vacuous; statuses })
        id (pair (0 -- 99) (0 -- 99))
        (pair (0 -- 99) (list_size (0 -- 4) hostile_string));
      map3
        (fun id (mutants, detected) (fp_triggers, fingerprint) ->
           Campaigned { id; mutants; detected; fp_triggers; fingerprint })
        id (pair (0 -- 99) (0 -- 99)) (pair (0 -- 99) hostile_string);
      map3
        (fun id path (bytes, digest) -> Snapshotted { id; path; bytes; digest })
        id hostile_string (pair (0 -- 999999) hostile_string);
      map3
        (fun id (uptime_ms, sessions) ((queued, running), (completed, busy)) ->
           (* p99 as an exact binary fraction so structural equality
              survives the float's JSON round-trip *)
           Stats
             { id; uptime_ms; sessions; queued; running; completed; busy;
               evicted = completed / 2;
               p99_job_ms = float_of_int busy /. 4. })
        id
        (pair (0 -- 999999) (list_size (0 -- 3) session_stat))
        (pair (pair (0 -- 99) (0 -- 99)) (pair (0 -- 99) (0 -- 99)));
      map3 (fun id target found -> Cancelled { id; target; found })
        id (0 -- 1000) bool;
      map3 (fun id queued limit -> Busy { id; queued; limit })
        id (0 -- 99) (1 -- 99);
      map (fun id -> Bye { id }) id;
      map2 (fun id message -> Failed { id; message }) id hostile_string ]

let test_proto_request_roundtrip =
  qtest "proto: request encode |> decode = id" (QCheck.make request_gen)
    (fun env ->
       match Serve.Proto.(decode_request (encode_request env)) with
       | Ok env' -> env' = env
       | Error m -> QCheck.Test.fail_report m)

let test_proto_response_roundtrip =
  qtest "proto: response encode |> decode = id" (QCheck.make response_gen)
    (fun r ->
       match Serve.Proto.(decode_response (encode_response r)) with
       | Ok r' -> r' = r
       | Error m -> QCheck.Test.fail_report m)

let expect_bad_request what payload =
  match Serve.Proto.decode_request payload with
  | Ok _ -> Alcotest.failf "%s: decoded instead of erroring" what
  | Error _ -> ()
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Error" what (Printexc.to_string e)

let test_proto_hostile () =
  expect_bad_request "empty" "";
  expect_bad_request "garbage" "\xff\xfe\x00\x01";
  expect_bad_request "invalid utf8 in json" "{\"type\":\"\xc3(\"}";
  expect_bad_request "not an object" "[1,2,3]";
  expect_bad_request "unknown type" "{\"id\":1,\"type\":\"explode\"}";
  expect_bad_request "missing type" "{\"id\":1}";
  expect_bad_request "mine with no source"
    "{\"id\":1,\"type\":\"mine\"}";
  expect_bad_request "mine with two sources"
    "{\"id\":1,\"type\":\"mine\",\"names\":[\"pi\"],\"lake\":\"/l\"}";
  expect_bad_request "mine with non-string name"
    "{\"id\":1,\"type\":\"mine\",\"names\":[42]}";
  expect_bad_request "fractional id"
    "{\"id\":1.5,\"type\":\"status\"}";
  expect_bad_request "huge id"
    "{\"id\":1e30,\"type\":\"status\"}";
  expect_bad_request "cancel without target"
    "{\"id\":1,\"type\":\"cancel\"}";
  (* And the response side, which clients decode from the network. *)
  (match Serve.Proto.decode_response "{\"id\":1,\"type\":\"warp\"}" with
   | Ok _ -> Alcotest.fail "unknown response type decoded"
   | Error _ -> ())

(* ---- scheduler ---- *)

let mk_gate () =
  let m = Mutex.create () and c = Condition.create () and open_ = ref false in
  let wait () =
    Mutex.protect m (fun () ->
        while not !open_ do Condition.wait c m done)
  and release () =
    Mutex.protect m (fun () ->
        open_ := true;
        Condition.broadcast c)
  in
  (wait, release)

let test_scheduler_fair_and_ordered () =
  let order = ref [] and olock = Mutex.create () in
  let sched =
    Serve.Scheduler.create ~jobs:1 ~max_inflight:8
      ~on_complete:(fun ~tag ~key:_ r ->
          Mutex.protect olock (fun () -> order := (tag, r) :: !order))
      ()
  in
  let wait, release = mk_gate () in
  let submit session tag r work =
    match Serve.Scheduler.submit sched ~session ~tag ~key:tag
            ~work:(fun () -> work (); r)
    with
    | `Queued _ -> ()
    | `Busy _ | `Stopping -> Alcotest.fail "unexpected refusal"
  in
  (* Hold the single worker, then pile up 3 jobs on A and 3 on B while
     it is blocked: the rotation must interleave them A,B,A,B,A,B. *)
  submit "a" 0 "gate" wait;
  (* Wait until the gate job is actually running so the rest queue. *)
  let rec settle n =
    if n = 0 then Alcotest.fail "gate job never started";
    let s = Serve.Scheduler.stats sched in
    if s.Serve.Scheduler.running = 0 then begin
      Unix.sleepf 0.01;
      settle (n - 1)
    end
  in
  settle 500;
  for i = 1 to 3 do submit "a" (10 + i) "a" ignore done;
  for i = 1 to 3 do submit "b" (20 + i) "b" ignore done;
  release ();
  Serve.Scheduler.drain sched;
  let tags = List.rev_map fst !order in
  Alcotest.(check (list int)) "round-robin, FIFO within a session"
    [ 0; 11; 21; 12; 22; 13; 23 ] tags;
  let s = Serve.Scheduler.stats sched in
  Alcotest.(check int) "completed" 7 s.Serve.Scheduler.completed;
  Alcotest.(check int) "nothing inflight" 0 (Serve.Scheduler.inflight sched)

let test_scheduler_backpressure_and_cancel () =
  let done_ = Atomic.make 0 in
  let sched =
    Serve.Scheduler.create ~jobs:1 ~max_inflight:2
      ~on_complete:(fun ~tag:_ ~key:_ () -> Atomic.incr done_)
      ()
  in
  let wait, release = mk_gate () in
  (match Serve.Scheduler.submit sched ~session:"s" ~tag:1 ~key:1
           ~work:(fun () -> wait ())
   with
   | `Queued _ -> ()
   | _ -> Alcotest.fail "first submit refused");
  let rec settle n =
    if n = 0 then Alcotest.fail "gate job never started";
    if (Serve.Scheduler.stats sched).Serve.Scheduler.running = 0 then begin
      Unix.sleepf 0.01;
      settle (n - 1)
    end
  in
  settle 500;
  (match Serve.Scheduler.submit sched ~session:"s" ~tag:2 ~key:2
           ~work:ignore
   with
   | `Queued _ -> ()
   | _ -> Alcotest.fail "second submit refused");
  (* Window is 2 (one running + one queued): the third must bounce, and
     bounce must not consume a slot. *)
  (match Serve.Scheduler.submit sched ~session:"s" ~tag:3 ~key:3
           ~work:ignore
   with
   | `Busy (depth, limit) ->
     Alcotest.(check (pair int int)) "depth/limit" (2, 2) (depth, limit)
   | _ -> Alcotest.fail "third submit not refused");
  (* Another session is unaffected by s's full window. *)
  (match Serve.Scheduler.submit sched ~session:"t" ~tag:4 ~key:4
           ~work:ignore
   with
   | `Queued _ -> ()
   | _ -> Alcotest.fail "other session refused");
  (* Cancel the queued key-2 job while it is still waiting. *)
  Alcotest.(check (list (pair int int))) "cancel returns the dropped job"
    [ (2, 2) ]
    (Serve.Scheduler.cancel sched ~session:"s" ~key:2);
  Alcotest.(check bool) "session not idle while gate runs" false
    (Serve.Scheduler.session_idle sched "s");
  Alcotest.(check bool) "busy session cannot be forgotten" false
    (Serve.Scheduler.forget sched "s");
  release ();
  Serve.Scheduler.drain sched;
  Alcotest.(check int) "gate + t ran; cancelled job did not" 2
    (Atomic.get done_);
  (match Serve.Scheduler.submit sched ~session:"s" ~tag:9 ~key:9
           ~work:ignore
   with
   | `Stopping -> ()
   | _ -> Alcotest.fail "drained scheduler accepted work")

(* ---- the server, end to end over a Unix socket ---- *)

let with_server ?(jobs = 2) ?(max_inflight = 4) ?(idle_timeout = 300.)
    ?cache_dir ?(mine_jobs = 1) f =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "serve.sock" in
      let cfg =
        { Serve.Server.listen = Serve.Server.Unix_sock path; jobs;
          max_inflight; idle_timeout; cache_dir; mine_jobs }
      in
      let srv = Serve.Server.create cfg in
      let d = Domain.spawn (fun () -> Serve.Server.run srv) in
      Fun.protect
        ~finally:(fun () ->
            Serve.Server.stop srv;
            Domain.join d)
        (fun () -> f path))

let call_one path ?session req =
  let c = Serve.Client.connect_unix path in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () -> Serve.Client.call c ?session req)

let mine_names ?label ?(row = true) ?(digest = false) names =
  Serve.Proto.Mine
    { source = Serve.Proto.Names names; label; row; digest }

let test_server_mine_and_check () =
  with_server (fun path ->
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (* One workload mined live for the expected record count. *)
      let m = Pipeline.mine_invariants ~jobs:1 ~names:[ "pi" ] () in
      (match Serve.Client.call c (mine_names ~digest:true [ "pi" ]) with
       | Serve.Proto.Mined { records; total_records; rows; invariants; digest; _ } ->
         Alcotest.(check bool) "some records" true (records > 0);
         Alcotest.(check int) "session total" records total_records;
         Alcotest.(check int) "one row" 1 (List.length rows);
         Alcotest.(check int) "invariants match a direct mine"
           (List.length m) invariants;
         Alcotest.(check bool) "digest returned" true (digest <> None)
       | r -> Alcotest.failf "mine: %s" (Serve.Proto.encode_response r));
      (* Incremental: a second workload lands in the same session. *)
      (match Serve.Client.call c (mine_names [ "helloworld" ]) with
       | Serve.Proto.Mined { records; total_records; _ } ->
         Alcotest.(check bool) "accumulates" true (total_records > records)
       | r -> Alcotest.failf "mine 2: %s" (Serve.Proto.encode_response r));
      (* Check: an invariant of the session's full corpus is supported;
         a pi-only invariant that helloworld's trace falsified is
         violated; nonsense text is a structured failure. *)
      let both =
        Pipeline.mine_invariants ~jobs:1 ~names:[ "pi"; "helloworld" ] ()
      in
      let both_s =
        List.map Invariant.Expr.to_string both
      in
      let falsified =
        List.filter
          (fun i -> not (List.mem (Invariant.Expr.to_string i) both_s))
          m
      in
      Alcotest.(check bool) "helloworld falsified some pi invariant" true
        (falsified <> []);
      let text =
        Invariant.Expr.to_string (List.hd both) ^ "\n"
        ^ Invariant.Expr.to_string (List.hd falsified)
      in
      (match Serve.Client.call c (Serve.Proto.Check { text }) with
       | Serve.Proto.Checked { supported; violated; statuses; _ } ->
         Alcotest.(check int) "supported" 1 supported;
         Alcotest.(check int) "violated" 1 violated;
         Alcotest.(check (list string)) "statuses in input order"
           [ "supported"; "violated" ] statuses
       | r -> Alcotest.failf "check: %s" (Serve.Proto.encode_response r));
      (match Serve.Client.call c (Serve.Proto.Check { text = "not a grammar" })
       with
       | Serve.Proto.Failed _ -> ()
       | r -> Alcotest.failf "bad check: %s" (Serve.Proto.encode_response r));
      (* Status sees the session. *)
      (match Serve.Client.call c Serve.Proto.Status with
       | Serve.Proto.Stats { sessions; completed; _ } ->
         Alcotest.(check bool) "completed some jobs" true (completed >= 2);
         Alcotest.(check bool) "session listed" true
           (List.exists
              (fun (s : Serve.Proto.session_stat) -> s.st_name = "default")
              sessions)
       | r -> Alcotest.failf "status: %s" (Serve.Proto.encode_response r)))

let test_server_hostile_bytes () =
  with_server (fun path ->
      (* Garbage JSON in a valid frame: structured Failed, id 0, and the
         connection stays usable. *)
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let fd_of_path () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      in
      let send_raw fd s =
        ignore (Unix.write_substring fd s 0 (String.length s))
      in
      (* 1. hostile payloads on a dedicated connection *)
      let fd = fd_of_path () in
      send_raw fd (Serve.Frame.encode "\xff\xfe not json");
      send_raw fd (Serve.Frame.encode "{\"id\":7,\"type\":\"explode\"}");
      let dec = Serve.Frame.decoder () in
      let buf = Bytes.create 4096 in
      let rec read_frames want acc =
        if List.length acc >= want then List.rev acc
        else
          match Serve.Frame.next dec with
          | `Frame p -> read_frames want (p :: acc)
          | `Error e -> Alcotest.failf "frame error: %s" (Serve.Frame.error_message e)
          | `Await ->
            (match Unix.read fd buf 0 4096 with
             | 0 -> Alcotest.fail "server closed on decodable garbage"
             | n ->
               Serve.Frame.feed dec (Bytes.sub_string buf 0 n);
               read_frames want acc)
      in
      (* Both are answered with a structured Failed. The envelope never
         decoded, so the server cannot echo an id and uses 0. *)
      (match read_frames 2 [] with
       | [ a; b ] ->
         (match Serve.Proto.decode_response a, Serve.Proto.decode_response b with
          | Ok (Serve.Proto.Failed { id = 0; _ }),
            Ok (Serve.Proto.Failed { id = 0; _ }) -> ()
          | _ -> Alcotest.failf "unexpected replies %s / %s" a b)
       | _ -> Alcotest.fail "expected two replies");
      (* ... and the same connection still serves real requests. *)
      send_raw fd
        (Serve.Frame.encode
           (Serve.Proto.encode_request
              { Serve.Proto.id = 8; session = None; request = Serve.Proto.Status }));
      (match read_frames 1 [] with
       | [ a ] ->
         (match Serve.Proto.decode_response a with
          | Ok (Serve.Proto.Stats { id = 8; _ }) -> ()
          | _ -> Alcotest.failf "after garbage: %s" a)
       | _ -> Alcotest.fail "no reply after garbage");
      Unix.close fd;
      (* 2. an unrecoverable framing error gets one Failed, then the
         server hangs up. *)
      let fd = fd_of_path () in
      send_raw fd "99999999\n";
      let dec = Serve.Frame.decoder () in
      let rec read_all acc =
        match Unix.read fd buf 0 4096 with
        | 0 -> acc
        | n ->
          Serve.Frame.feed dec (Bytes.sub_string buf 0 n);
          read_all acc
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> acc
      in
      ignore (read_all ());
      (match Serve.Frame.next dec with
       | `Frame p ->
         (match Serve.Proto.decode_response p with
          | Ok (Serve.Proto.Failed { id = 0; _ }) -> ()
          | _ -> Alcotest.failf "oversized: %s" p)
       | _ -> Alcotest.fail "no Failed before hangup");
      Unix.close fd;
      (* 3. a mid-frame disconnect must not disturb the server ... *)
      let fd = fd_of_path () in
      send_raw fd "100\n{\"half";
      Unix.close fd;
      (* ... which still answers on the pooled connection. *)
      (match Serve.Client.call c Serve.Proto.Status with
       | Serve.Proto.Stats _ -> ()
       | r -> Alcotest.failf "after disconnects: %s" (Serve.Proto.encode_response r));
      (* 4. unknown workload / bad lake dir are structured failures. *)
      (match Serve.Client.call c (mine_names [ "no-such-workload" ]) with
       | Serve.Proto.Failed _ -> ()
       | r -> Alcotest.failf "bad workload: %s" (Serve.Proto.encode_response r));
      (match Serve.Client.call c
               (Serve.Proto.Mine
                  { source = Serve.Proto.Lake "/nonexistent/lake";
                    label = None; row = true; digest = false })
       with
       | Serve.Proto.Failed _ -> ()
       | r -> Alcotest.failf "bad lake: %s" (Serve.Proto.encode_response r)))

let test_server_busy_and_cancel () =
  with_server ~jobs:1 ~max_inflight:2 (fun path ->
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (* Pipeline 8 mine requests in one burst against a window of 2:
         every response is either Mined or an explicit Busy, they sum to
         8, and at least one bounced. *)
      let ids =
        List.init 8 (fun _ -> Serve.Client.send c (mine_names [ "pi" ]))
      in
      let mined = ref 0 and busy = ref 0 in
      List.iter
        (fun id ->
           match Serve.Client.recv_id c id with
           | Serve.Proto.Mined _ -> incr mined
           | Serve.Proto.Busy { queued; limit; _ } ->
             Alcotest.(check int) "busy reports the window" 2 limit;
             Alcotest.(check bool) "busy depth at the window" true
               (queued >= 1 && queued <= limit);
             incr busy
           | r -> Alcotest.failf "burst: %s" (Serve.Proto.encode_response r))
        ids;
      Alcotest.(check int) "every request answered" 8 (!mined + !busy);
      Alcotest.(check bool) "backpressure engaged" true (!busy >= 1);
      Alcotest.(check bool) "window still admitted work" true (!mined >= 2);
      (* Cancel: queue a long job (the whole corpus — seconds on one
         worker) then a victim behind it; the victim is dropped and
         answered before the long job finishes. Status polls pin down
         the scheduler state between steps (completion responses are
         written slightly before the worker releases the session, so
         back-to-back submits could otherwise see a stale-full window
         and bounce). *)
      let rec wait_running want n =
        if n = 0 then Alcotest.fail "scheduler never settled";
        match Serve.Client.call c Serve.Proto.Status with
        | Serve.Proto.Stats { running; queued; _ }
          when running = want && queued = 0 -> ()
        | Serve.Proto.Stats _ ->
          Unix.sleepf 0.01;
          wait_running want (n - 1)
        | r -> Alcotest.failf "status: %s" (Serve.Proto.encode_response r)
      in
      wait_running 0 500;
      let long =
        Serve.Client.send c
          (mine_names ~row:false Workloads.Suite.names)
      in
      wait_running 1 500;
      let victim = Serve.Client.send c (mine_names [ "helloworld" ]) in
      (match Serve.Client.call c (Serve.Proto.Cancel { target = victim }) with
       | Serve.Proto.Cancelled { target; found; _ } ->
         Alcotest.(check int) "echoes the target" victim target;
         Alcotest.(check bool) "victim was still queued" true found
       | r -> Alcotest.failf "cancel: %s" (Serve.Proto.encode_response r));
      (match Serve.Client.recv_id c victim with
       | Serve.Proto.Failed { message; _ } ->
         Alcotest.(check string) "cancelled reply" "cancelled" message
       | r -> Alcotest.failf "victim: %s" (Serve.Proto.encode_response r));
      (match Serve.Client.recv_id c long with
       | Serve.Proto.Mined _ -> ()
       | r -> Alcotest.failf "long job: %s" (Serve.Proto.encode_response r));
      (* Cancelling something unknown is found=false, not an error. *)
      (match Serve.Client.call c (Serve.Proto.Cancel { target = 99999 }) with
       | Serve.Proto.Cancelled { found = false; _ } -> ()
       | r -> Alcotest.failf "cancel unknown: %s" (Serve.Proto.encode_response r)))

let test_server_sessions_and_eviction () =
  with_server ~idle_timeout:0.1 (fun path ->
      (* Two named sessions do not share engine state. *)
      let r1 = call_one path ~session:"left" (mine_names [ "pi" ]) in
      let r2 = call_one path ~session:"right" (mine_names [ "pi" ]) in
      (match (r1, r2) with
       | Serve.Proto.Mined { total_records = a; _ },
         Serve.Proto.Mined { total_records = b; _ } ->
         Alcotest.(check int) "independent sessions" a b
       | _ -> Alcotest.fail "session mines failed");
      (* After the idle timeout, the sessions are evicted: mining again
         starts from empty state (total == fresh records, not 2x). *)
      Unix.sleepf 0.6;
      (match call_one path ~session:"left" (mine_names [ "pi" ]) with
       | Serve.Proto.Mined { records; total_records; _ } ->
         Alcotest.(check int) "state was evicted, not resumed"
           records total_records
       | r -> Alcotest.failf "post-evict: %s" (Serve.Proto.encode_response r));
      (match call_one path Serve.Proto.Status with
       | Serve.Proto.Stats { evicted; _ } ->
         Alcotest.(check bool) "evictions counted" true (evicted >= 2)
       | r -> Alcotest.failf "status: %s" (Serve.Proto.encode_response r)))

let test_server_snapshot_and_shutdown () =
  with_tmp_dir (fun snapdir ->
      with_server (fun path ->
          let snap = Filename.concat snapdir "session.snap" in
          let c = Serve.Client.connect_unix path in
          Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
          (match Serve.Client.call c (mine_names [ "pi" ]) with
           | Serve.Proto.Mined _ -> ()
           | r -> Alcotest.failf "mine: %s" (Serve.Proto.encode_response r));
          (match Serve.Client.call c (Serve.Proto.Snapshot { path = snap }) with
           | Serve.Proto.Snapshotted { bytes; digest; _ } ->
             Alcotest.(check bool) "snapshot written" true
               (Sys.file_exists snap);
             Alcotest.(check int) "byte count is the file size"
               (Unix.stat snap).Unix.st_size bytes;
             Alcotest.(check string) "digest is of the file"
               (Digest.to_hex (Digest.file snap)) digest;
             (* The snapshot is a loadable SCIFSNAP engine. *)
             ignore (Daikon.Engine.load snap)
           | r -> Alcotest.failf "snapshot: %s" (Serve.Proto.encode_response r));
          (* Graceful shutdown over the wire: Bye arrives, then the
             server loop exits (with_server joins the domain). *)
          (match Serve.Client.call c Serve.Proto.Shutdown with
           | Serve.Proto.Bye _ -> ()
           | r -> Alcotest.failf "shutdown: %s" (Serve.Proto.encode_response r))))

(* ---- serve == batch determinism (the acceptance bar) ---- *)

let test_serve_equals_batch () =
  with_server (fun path ->
      (* Mine the standard Figure 3 corpus group by group through a
         session, exactly as the batch pipeline does. *)
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let groups = Workloads.Suite.figure3_groups
      and labels = Workloads.Suite.figure3_labels in
      let served_rows = ref [] and served_digest = ref None in
      let last = List.length groups - 1 in
      List.iteri
        (fun i (group, label) ->
           match
             Serve.Client.call c
               (mine_names ~label ~digest:(i = last) group)
           with
           | Serve.Proto.Mined { rows; digest; _ } ->
             served_rows := !served_rows @ rows;
             if i = last then served_digest := digest
           | Serve.Proto.Busy _ ->
             Alcotest.fail "sequential calls cannot be busy"
           | r -> Alcotest.failf "mine %s: %s" label
                    (Serve.Proto.encode_response r))
        (List.combine groups labels);
      (* Figure 3 rows: identical to a direct sharded batch mine. *)
      let batch = Pipeline.mine ~jobs:2 () in
      let of_batch =
        List.map
          (fun (r : Pipeline.figure3_row) ->
             { Serve.Proto.r_label = r.group_label;
               r_unmodified = r.unmodified; r_fresh = r.fresh;
               r_deleted = r.deleted; r_total = r.total })
          batch.Pipeline.figure3
      in
      Alcotest.(check bool) "Figure 3 rows identical to Pipeline.mine" true
        (!served_rows = of_batch);
      (* Engine bytes: identical to the sequential reference (the same
         Session API the server runs, jobs=1, no cache). *)
      let s = Pipeline.Session.create () in
      let rt_groups =
        List.map
          (List.map (fun n -> Option.get (Workloads.Suite.by_name n)))
          groups
      in
      ignore (Pipeline.Session.mine_groups s ~labels rt_groups);
      (match !served_digest with
       | Some d ->
         Alcotest.(check string) "SCIFSNAP digest identical to direct run"
           (Pipeline.Session.engine_digest s) d
       | None -> Alcotest.fail "no digest returned"))

let () =
  Alcotest.run "serve"
    [ ("frame",
       [ Alcotest.test_case "byte-by-byte round-trip" `Quick
           test_frame_roundtrip_bytewise;
         Alcotest.test_case "hostile inputs" `Quick test_frame_hostile;
         test_frame_qcheck ]);
      ("proto",
       [ test_proto_request_roundtrip;
         test_proto_response_roundtrip;
         Alcotest.test_case "hostile inputs" `Quick test_proto_hostile ]);
      ("scheduler",
       [ Alcotest.test_case "fair and ordered" `Quick
           test_scheduler_fair_and_ordered;
         Alcotest.test_case "backpressure and cancel" `Quick
           test_scheduler_backpressure_and_cancel ]);
      ("server",
       [ Alcotest.test_case "mine, check, status" `Quick
           test_server_mine_and_check;
         Alcotest.test_case "hostile bytes" `Quick test_server_hostile_bytes;
         Alcotest.test_case "busy and cancel" `Quick
           test_server_busy_and_cancel;
         Alcotest.test_case "sessions and eviction" `Quick
           test_server_sessions_and_eviction;
         Alcotest.test_case "snapshot and shutdown" `Quick
           test_server_snapshot_and_shutdown ]);
      ("determinism",
       [ Alcotest.test_case "serve == batch (rows + SCIFSNAP digest)"
           `Slow test_serve_equals_batch ]) ]
