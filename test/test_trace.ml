(* Trace construction: instruction-boundary records, delay-slot fusion,
   derived variables. *)

open Isa
module Var = Trace.Var
module Rec = Trace.Record

let code_base = 0x2000

let capture ?(fault = Cpu.Fault.none) ?(regs = []) insns =
  let items = List.map (fun i -> Asm.I i) insns @ [ Asm.I (Insn.Nop 1) ] in
  let image = Asm.assemble { Asm.origin = code_base; items } in
  let machine = Cpu.Machine.create ~fault () in
  Cpu.Machine.load_image machine image;
  Cpu.Machine.set_pc machine code_base;
  List.iter (fun (r, v) -> machine.Cpu.Machine.gpr.(r) <- v) regs;
  let records = ref [] in
  ignore
    (Trace.Runner.run ~observer:(fun r -> records := r :: !records) machine);
  List.rev !records

let v record var = Rec.get record (Var.insn_id var)
let post record d = Rec.get record (Var.post_id d)
let orig record d = Rec.get record (Var.orig_id d)

let check = Alcotest.(check int)
let nth = List.nth

let test_linear_pcs () =
  let records = capture [ Insn.Alui (Insn.Addi, 3, 0, 1) ] in
  let r = nth records 0 in
  Alcotest.(check string) "point" "l.addi" r.Rec.point;
  check "orig PC" code_base (orig r Var.Pc);
  check "orig NPC" (code_base + 4) (orig r Var.Npc);
  check "post PC" (code_base + 4) (post r Var.Pc);
  check "post NPC" (code_base + 8) (post r Var.Npc);
  check "post NNPC" (code_base + 12) (post r Var.Nnpc)

let test_operand_variables () =
  let records = capture ~regs:[ (1, 30); (2, 12) ] [ Insn.Alu (Insn.Add, 3, 1, 2) ] in
  let r = nth records 0 in
  check "OPA" 30 (v r Var.Opa);
  check "OPB" 12 (v r Var.Opb);
  check "DEST" 42 (v r Var.Dest);
  check "REGD" 3 (v r Var.Regd);
  check "REGA" 1 (v r Var.Rega);
  check "REGB" 2 (v r Var.Regb);
  check "post GPR3" 42 (post r (Var.Gpr 3));
  check "orig GPR3" 0 (orig r (Var.Gpr 3))

let test_ir_matches_memory () =
  let records = capture [ Insn.Alui (Insn.Addi, 3, 0, 7) ] in
  let r = nth records 0 in
  check "IR = MEM_AT_PC" (v r Var.Mem_at_pc) (v r Var.Ir);
  check "OPCODE" 0x27 (v r Var.Opcode)

let test_fusion () =
  (* jump + delay slot fuse into one record at the jump's point. *)
  let records = capture
      [ Insn.Jump 2;                   (* to code_base + 8 *)
        Insn.Alui (Insn.Addi, 3, 3, 1);(* delay slot *)
        Insn.Alui (Insn.Addi, 4, 4, 1) ]
  in
  let r = nth records 0 in
  Alcotest.(check string) "fused point" "l.j" r.Rec.point;
  check "post PC = target" (code_base + 8) (post r Var.Pc);
  (* the delay slot's register effect is visible in the fused post state *)
  check "delay effect merged" 1 (post r (Var.Gpr 3));
  Alcotest.(check string) "next record" "l.addi" (nth records 1).Rec.point

let test_untaken_branch_fuses_too () =
  let records = capture
      [ Insn.Branch_flag 2;            (* flag clear: not taken *)
        Insn.Alui (Insn.Addi, 3, 3, 1) ]
  in
  let r = nth records 0 in
  Alcotest.(check string) "point" "l.bf" r.Rec.point;
  check "fallthrough PC" (code_base + 8) (post r Var.Pc);
  check "delay effect" 1 (post r (Var.Gpr 3))

let test_exception_vars_syscall () =
  let records = capture [ Insn.Sys 5 ] in
  let r = nth records 0 in
  Alcotest.(check string) "point" "l.sys" r.Rec.point;
  check "EXN" 1 (v r Var.Exn);
  check "VEC" 0xC00 (v r Var.Vec);
  check "post PC at vector" 0xC00 (post r Var.Pc);
  check "EPCR_D" 4 (v r Var.Epcr_d);
  check "DSX_OK" 1 (v r Var.Dsx_ok);
  check "post ESR = orig SR" (orig r Var.Sr_full) (post r Var.Esr)

let test_delay_slot_exception_gets_own_record () =
  let records = capture [ Insn.Jump 2; Insn.Sys 1; Insn.Nop 0 ] in
  (* Fused l.j record plus a dedicated l.sys record. *)
  Alcotest.(check string) "first is the jump" "l.j" (nth records 0).Rec.point;
  Alcotest.(check string) "second is the syscall" "l.sys" (nth records 1).Rec.point;
  let sys = nth records 1 in
  check "DSX in effect" 1 (post sys Var.Dsx);
  check "DSX_OK" 1 (v sys Var.Dsx_ok);
  (* EPCR = branch address; relative to the syscall it is -4. *)
  check "EPCR_D = -4 (mod 2^32)" 0xFFFF_FFFC (v sys Var.Epcr_d)

let test_illegal_point () =
  let items = [ Asm.Word 0xEC00_0000; Asm.I (Insn.Nop 1) ] in
  let image = Asm.assemble { Asm.origin = code_base; items } in
  let machine = Cpu.Machine.create () in
  Cpu.Machine.load_image machine image;
  Cpu.Machine.set_pc machine code_base;
  let records = ref [] in
  let config = { Trace.Runner.default_config with max_steps = 3 } in
  ignore (Trace.Runner.run ~config
            ~observer:(fun r -> records := r :: !records) machine);
  match List.rev !records with
  | r :: _ ->
    Alcotest.(check string) "dedicated point" "illegal" r.Rec.point;
    check "VEC" 0x700 (v r Var.Vec)
  | [] -> Alcotest.fail "no record"

let test_setflag_derived () =
  let records = capture ~regs:[ (1, 10); (2, 3) ] [ Insn.Setflag (Insn.Sfltu, 1, 2) ] in
  let r = nth records 0 in
  check "CMPDIFF_U" 7 (v r Var.Cmpdiff_u);
  check "SF" 0 (post r Var.Sf);
  check "PROD_U = diff * (1-2*0)" 7 (v r Var.Prod_u);
  check "CMPZ" 0 (v r Var.Cmpz);
  let records = capture ~regs:[ (1, 3); (2, 10) ] [ Insn.Setflag (Insn.Sfltu, 1, 2) ] in
  let r = nth records 0 in
  check "negative diff" (-7) (v r Var.Cmpdiff_u);
  check "SF taken" 1 (post r Var.Sf);
  check "PROD_U still >= 0" 7 (v r Var.Prod_u);
  (* Operands straddling the sign bit (b6's trigger shape): the unsigned
     difference must be the wrapped 32-bit value. Raw OCaml subtraction
     here once leaked values outside the 32-bit range entirely
     (5 - 0x8000_0010 = -2147483659 < -2^31). *)
  let big = 0x8000_0010 in
  let records = capture ~regs:[ (1, 5); (2, big) ] [ Insn.Setflag (Insn.Sfltu, 1, 2) ] in
  let r = nth records 0 in
  check "SF across the sign bit" 1 (post r Var.Sf);
  check "CMPDIFF_U wraps to 32 bits" 0x7FFF_FFF5 (v r Var.Cmpdiff_u);
  check "PROD_U boundary" (-0x7FFF_FFF5) (v r Var.Prod_u);
  let records = capture ~regs:[ (1, big); (2, 5) ] [ Insn.Setflag (Insn.Sfltu, 1, 2) ] in
  let r = nth records 0 in
  check "SF big operand first" 0 (post r Var.Sf);
  check "CMPDIFF_U wrapped negative" (-0x7FFF_FFF5) (v r Var.Cmpdiff_u)

let test_signed_compare_derived () =
  let big = 0x8000_0000 in
  let records = capture ~regs:[ (1, big); (2, 1) ] [ Insn.Setflag (Insn.Sflts, 1, 2) ] in
  let r = nth records 0 in
  check "CMPDIFF_S" (Util.U32.signed big - 1) (v r Var.Cmpdiff_s);
  check "SF (negative < 1)" 1 (post r Var.Sf);
  Alcotest.(check bool) "PROD_S positive" true (v r Var.Prod_s > 0)

let test_ext_vars () =
  let records = capture ~regs:[ (1, 0x8000); (2, 0xF5) ]
      [ Insn.Store (Insn.Sb, 1, 1, 2);
        Insn.Load (Insn.Lbs, 3, 1, 1) ] in
  let r = nth records 1 in
  check "EXT_SIGN" 1 (v r Var.Ext_sign);
  check "EXT_HI replicates" 0xFF_FFFF (v r Var.Ext_hi)

let test_ea_ref () =
  let records = capture ~regs:[ (1, 0x8000); (2, 7) ]
      [ Insn.Store (Insn.Sw, 12, 1, 2) ] in
  let r = nth records 0 in
  check "EA" 0x800C (v r Var.Ea);
  check "EA_REF" 0x800C (v r Var.Ea_ref);
  check "MEMBUS" 7 (v r Var.Membus)

let test_spr_vars () =
  let records = capture ~regs:[ (1, 0x1234) ]
      [ Insn.Mtspr (0, 1, Spr.address Spr.Eear0);
        Insn.Mfspr (2, 0, Spr.address Spr.Eear0) ] in
  let wr = nth records 0 and rd = nth records 1 in
  check "orig(SPR) before write" 0 (v wr Var.Spr_orig);
  check "SPR after write" 0x1234 (v wr Var.Spr_post);
  check "read sees value" 0x1234 (v rd Var.Spr_post);
  check "DEST = SPR" (v rd Var.Spr_post) (v rd Var.Dest)

let test_mask_applicability () =
  let records = capture ~regs:[ (1, 3); (2, 4) ] [ Insn.Alu (Insn.Add, 3, 1, 2) ] in
  let r = nth records 0 in
  Alcotest.(check bool) "EA masked off for ALU" false
    r.Rec.mask.(Var.insn_id Var.Ea);
  Alcotest.(check bool) "OPA on" true r.Rec.mask.(Var.insn_id Var.Opa);
  Alcotest.(check bool) "PROD masked off" false
    r.Rec.mask.(Var.insn_id Var.Prod_u)

let test_determinism () =
  let t1 = capture ~regs:[ (1, 5) ] [ Insn.Alui (Insn.Addi, 2, 1, 3) ] in
  let t2 = capture ~regs:[ (1, 5) ] [ Insn.Alui (Insn.Addi, 2, 1, 3) ] in
  Alcotest.(check int) "same length" (List.length t1) (List.length t2);
  List.iter2
    (fun a b ->
       Alcotest.(check bool) "identical record" true
         (a.Rec.point = b.Rec.point && a.Rec.values = b.Rec.values))
    t1 t2

let () =
  Alcotest.run "trace"
    [ ("records",
       [ Alcotest.test_case "linear PCs" `Quick test_linear_pcs;
         Alcotest.test_case "operands" `Quick test_operand_variables;
         Alcotest.test_case "IR/MEM_AT_PC" `Quick test_ir_matches_memory;
         Alcotest.test_case "fusion" `Quick test_fusion;
         Alcotest.test_case "untaken branch fusion" `Quick test_untaken_branch_fuses_too;
         Alcotest.test_case "syscall vars" `Quick test_exception_vars_syscall;
         Alcotest.test_case "delay-slot exception" `Quick test_delay_slot_exception_gets_own_record;
         Alcotest.test_case "illegal point" `Quick test_illegal_point;
         Alcotest.test_case "setflag derived" `Quick test_setflag_derived;
         Alcotest.test_case "signed compare derived" `Quick test_signed_compare_derived;
         Alcotest.test_case "ext vars" `Quick test_ext_vars;
         Alcotest.test_case "ea_ref" `Quick test_ea_ref;
         Alcotest.test_case "spr vars" `Quick test_spr_vars;
         Alcotest.test_case "masks" `Quick test_mask_applicability;
         Alcotest.test_case "determinism" `Quick test_determinism ]) ]
