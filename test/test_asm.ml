(* Assembler: label resolution, displacement arithmetic, pseudo-instruction
   expansion, image layout. *)

open Isa
open Asm.Build

let assemble_words items = Asm.assemble { Asm.origin = 0x2000; items }

let test_sequential_layout () =
  let image = assemble_words [ nop; nop; nop ] in
  Alcotest.(check (list int)) "addresses"
    [ 0x2000; 0x2004; 0x2008 ] (List.map fst image)

let test_label_no_size () =
  let image = assemble_words [ nop; label "x"; nop ] in
  Alcotest.(check int) "labels are zero-sized" 2 (List.length image)

let test_forward_branch () =
  let image = assemble_words [ j "target"; nop; label "target"; nop ] in
  let jump_word = List.assoc 0x2000 image in
  (match Code.decode jump_word with
   | Some (Insn.Jump d) ->
     (* target = 0x2008; pc = 0x2000; disp = 2 words *)
     Alcotest.(check int) "displacement" 2 d
   | _ -> Alcotest.fail "not a jump")

let test_backward_branch () =
  let image = assemble_words [ label "top"; nop; bf "top"; nop ] in
  let word = List.assoc 0x2004 image in
  (match Code.decode word with
   | Some (Insn.Branch_flag d) ->
     Alcotest.(check int) "negative displacement"
       (-1) (Util.U32.signed (Util.U32.sext ~bits:26 d))
   | _ -> Alcotest.fail "not a bf")

let test_la_expansion () =
  let image =
    assemble_words [ la 5 "data"; nop; label "data"; word 0xCAFEBABE ]
  in
  Alcotest.(check int) "la is two words + nop + data" 4 (List.length image);
  (match Code.decode (List.assoc 0x2000 image) with
   | Some (Insn.Movhi (5, hi)) -> Alcotest.(check int) "hi half" 0 hi
   | _ -> Alcotest.fail "expected movhi");
  (match Code.decode (List.assoc 0x2004 image) with
   | Some (Insn.Alui (Insn.Ori, 5, 5, lo)) ->
     Alcotest.(check int) "lo half" 0x200C lo
   | _ -> Alcotest.fail "expected ori")

let test_unknown_label () =
  Alcotest.check_raises "raises" (Asm.Unknown_label "nowhere")
    (fun () -> ignore (assemble_words [ j "nowhere"; nop ]))

let test_label_address () =
  let program = { Asm.origin = 0x100; items = [ nop; nop; label "here"; nop ] } in
  Alcotest.(check int) "address" 0x108 (Asm.label_address program "here")

let test_li32 () =
  let image = assemble_words (li32 7 0xDEADBEEF) in
  (match Code.decode (List.assoc 0x2000 image),
         Code.decode (List.assoc 0x2004 image) with
   | Some (Insn.Movhi (7, 0xDEAD)), Some (Insn.Alui (Insn.Ori, 7, 7, 0xBEEF)) -> ()
   | _ -> Alcotest.fail "li32 shape")

let test_li_bounds () =
  Alcotest.check_raises "too large" (Invalid_argument "Build.li: use li32")
    (fun () -> ignore (li 1 0x8000));
  Alcotest.check_raises "negative" (Invalid_argument "Build.li: use li32")
    (fun () -> ignore (li 1 (-1)))

let test_word_literal () =
  let image = assemble_words [ word 0x12345678 ] in
  Alcotest.(check int) "literal" 0x12345678 (List.assoc 0x2000 image)

let test_data_masked () =
  let image = assemble_words [ word (-1) ] in
  Alcotest.(check int) "masked to 32 bits" 0xFFFF_FFFF (List.assoc 0x2000 image)

(* ---- properties: assemble -> decode -> re-encode, displacement ---- *)

(* Well-formed instructions across every format (registers in range,
   immediates masked to their fields). *)
let insn_gen : Insn.t QCheck.arbitrary =
  let open Insn in
  let open QCheck.Gen in
  let reg = int_bound 31 and imm = int_bound 0xFFFF in
  let alu_op = oneofl [ Add; Addc; Sub; And; Or; Xor; Mul; Mulu; Div; Divu;
                        Sll; Srl; Sra; Ror ] in
  let alui_op = oneofl [ Addi; Addic; Andi; Ori; Xori; Muli ] in
  let shifti_op = oneofl [ Slli; Srli; Srai; Rori ] in
  let ext_op = oneofl [ Extbs; Extbz; Exths; Exthz; Extws; Extwz ] in
  let sf_op = oneofl [ Sfeq; Sfne; Sfgtu; Sfgeu; Sfltu; Sfleu;
                       Sfgts; Sfges; Sflts; Sfles ] in
  let load_op = oneofl [ Lwz; Lws; Lbz; Lbs; Lhz; Lhs ] in
  let store_op = oneofl [ Sw; Sb; Sh ] in
  let gen =
    oneof
      [ map (fun ((op, a), (b, c)) -> Alu (op, a, b, c))
          (pair (pair alu_op reg) (pair reg reg));
        map (fun ((op, a), (b, k)) -> Alui (op, a, b, k))
          (pair (pair alui_op reg) (pair reg imm));
        map (fun ((op, a), (b, k)) -> Shifti (op, a, b, k land 63))
          (pair (pair shifti_op reg) (pair reg imm));
        map (fun (op, (a, b)) -> Ext (op, a, b)) (pair ext_op (pair reg reg));
        map (fun (op, (a, b)) -> Setflag (op, a, b)) (pair sf_op (pair reg reg));
        map (fun (op, (a, k)) -> Setflagi (op, a, k)) (pair sf_op (pair reg imm));
        map (fun ((op, a), (b, k)) -> Load (op, a, b, k))
          (pair (pair load_op reg) (pair reg imm));
        map (fun ((op, k), (a, b)) -> Store (op, k, a, b))
          (pair (pair store_op imm) (pair reg reg));
        map (fun (r, k) -> Movhi (r, k)) (pair reg imm);
        map (fun ((d, a), k) -> Mfspr (d, a, k)) (pair (pair reg reg) imm);
        map (fun ((a, b), k) -> Mtspr (a, b, k)) (pair (pair reg reg) imm);
        map (fun (a, b) -> Macc (Mac, a, b)) (pair reg reg);
        map (fun (a, k) -> Maci (a, k)) (pair reg imm);
        map (fun r -> Macrc r) reg;
        map (fun k -> Sys k) imm;
        map (fun k -> Trap k) imm;
        return Rfe;
        map (fun k -> Nop k) imm ]
  in
  QCheck.make ~print:Insn.to_string gen

let prop name count gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* Assembling a program of concrete instructions and decoding each image
   word must give back exactly the instructions, and re-encoding each
   decoded instruction must reproduce the image word. *)
let asm_roundtrip =
  prop "assemble -> decode -> encode identity" 500
    (QCheck.list_of_size (QCheck.Gen.int_range 1 50) insn_gen)
    (fun insns ->
       let image =
         Asm.assemble
           { Asm.origin = 0x2000;
             items = List.map (fun i -> Asm.I i) insns }
       in
       List.length image = List.length insns
       && List.for_all2
            (fun (_, w) insn ->
               Code.decode w = Some insn && Code.encode insn = w)
            image insns)

(* displacement is the inverse of branch-target resolution: for any
   word-aligned pc and word delta in the signed 26-bit range, resolving
   the encoded displacement lands back on the target (mod 2^32). *)
let resolves ~pc ~target =
  let d = Asm.displacement ~pc ~target in
  (pc + (4 * Util.U32.signed (Util.U32.sext ~bits:26 d))) land 0xFFFF_FFFF
  = target

let displacement_inverse =
  prop "displacement inverse" 2000
    QCheck.(pair (int_bound 0x3FFF_FFFF) (int_bound 0x3FF_FFFF))
    (fun (pc_w, d_raw) ->
       let pc = pc_w * 4 in
       let delta = d_raw - 0x200_0000 in   (* [-2^25, 2^25) words *)
       resolves ~pc ~target:((pc + (4 * delta)) land 0xFFFF_FFFF))

(* Address-space edges: the displacement wraps cleanly at both ends. *)
let test_displacement_boundaries () =
  List.iter
    (fun (pc, target) ->
       Alcotest.(check bool)
         (Printf.sprintf "pc=%#x -> target=%#x" pc target)
         true (resolves ~pc ~target))
    [ (0, 0xFFFF_FFFC);                  (* backward across zero *)
      (0xFFFF_FFFC, 0);                  (* forward across the top *)
      (0, 0);                            (* self *)
      (0x2000, 0x2000 + (4 * 0x1FF_FFFF));  (* max forward *)
      (0x0800_0000, 0x0800_0000 - 0x800_0000);  (* max backward *)
      (0xFFFF_FFFC, 0xFFFF_FFF8) ]

let () =
  Alcotest.run "asm"
    [ ("asm",
       [ Alcotest.test_case "sequential layout" `Quick test_sequential_layout;
         Alcotest.test_case "label size" `Quick test_label_no_size;
         Alcotest.test_case "forward branch" `Quick test_forward_branch;
         Alcotest.test_case "backward branch" `Quick test_backward_branch;
         Alcotest.test_case "la expansion" `Quick test_la_expansion;
         Alcotest.test_case "unknown label" `Quick test_unknown_label;
         Alcotest.test_case "label address" `Quick test_label_address;
         Alcotest.test_case "li32" `Quick test_li32;
         Alcotest.test_case "li bounds" `Quick test_li_bounds;
         Alcotest.test_case "word literal" `Quick test_word_literal;
         Alcotest.test_case "word masked" `Quick test_data_masked;
         asm_roundtrip;
         displacement_inverse;
         Alcotest.test_case "displacement boundaries" `Quick
           test_displacement_boundaries ]) ]
