(* 32-bit word arithmetic: unit cases on the corner values plus
   property-based equivalence against an Int64 reference model. *)

module U = Util.U32

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Int64 reference for any binary 32-bit operation. *)
let ref64 f a b =
  Int64.to_int
    (Int64.logand (f (Int64.of_int a) (Int64.of_int b)) 0xFFFF_FFFFL)

let u32_gen = QCheck.map (fun x -> x land 0xFFFF_FFFF) QCheck.int

let pair_gen = QCheck.pair u32_gen u32_gen

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name gen f)

let unit_tests =
  [ Alcotest.test_case "add wraps" `Quick (fun () ->
        check_int "max+1" 0 (U.add U.max_value 1);
        check_int "simple" 5 (U.add 2 3);
        check_int "wrap" 0xFFFF_FFFE (U.add 0xFFFF_FFFF 0xFFFF_FFFF));
    Alcotest.test_case "sub wraps" `Quick (fun () ->
        check_int "0-1" 0xFFFF_FFFF (U.sub 0 1);
        check_int "5-3" 2 (U.sub 5 3));
    Alcotest.test_case "mul truncates" `Quick (fun () ->
        check_int "big" 1 (U.mul 0xFFFF_FFFF 0xFFFF_FFFF);
        check_int "shift" 0x8000_0000 (U.mul 0x4000_0000 2));
    Alcotest.test_case "mul near 2^32" `Quick (fun () ->
        (* Operands here overflow the 63-bit native product; the result is
           exact anyway because int overflow wraps modulo 2^63 and 2^32
           divides 2^63. A 62-bit-unaware implementation would differ. *)
        check_int "(2^32-1)(2^32-2)" 2 (U.mul 0xFFFF_FFFF 0xFFFF_FFFE);
        check_int "(2^31+1)^2" 1 (U.mul 0x8000_0001 0x8000_0001);
        check_int "(2^32-1)*2^31" 0x8000_0000 (U.mul 0xFFFF_FFFF 0x8000_0000);
        check_int "0xDEADBEEF^2" 0x216D_A321 (U.mul 0xDEAD_BEEF 0xDEAD_BEEF);
        check_int "identity" 0xFFFF_FFFF (U.mul 0xFFFF_FFFF 1));
    Alcotest.test_case "signed interpretation" `Quick (fun () ->
        check_int "minus one" (-1) (U.signed 0xFFFF_FFFF);
        check_int "int_min" (-0x8000_0000) (U.signed 0x8000_0000);
        check_int "positive" 7 (U.signed 7));
    Alcotest.test_case "division semantics" `Quick (fun () ->
        Alcotest.(check (option int)) "7/2" (Some 3) (U.div_signed 7 2);
        Alcotest.(check (option int)) "-7/2"
          (Some (U.of_int (-3))) (U.div_signed (U.of_int (-7)) 2);
        Alcotest.(check (option int)) "by zero" None (U.div_signed 5 0);
        Alcotest.(check (option int)) "unsigned big"
          (Some 0x7FFF_FFFF) (U.div_unsigned 0xFFFF_FFFE 2));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check_int "sll" 0xFFFF_FFFE (U.shift_left 0xFFFF_FFFF 1);
        check_int "srl" 0x7FFF_FFFF (U.shift_right_logical 0xFFFF_FFFF 1);
        check_int "sra keeps sign" 0xFFFF_FFFF (U.shift_right_arith 0xFFFF_FFFF 1);
        check_int "sra positive" 0x3FFF_FFFF (U.shift_right_arith 0x7FFF_FFFF 1);
        check_int "sll 32+" 0 (U.shift_left 1 32));
    Alcotest.test_case "rotate" `Quick (fun () ->
        check_int "by 0" 0x1234_5678 (U.rotate_right 0x1234_5678 0);
        check_int "by 4" 0x8123_4567 (U.rotate_right 0x1234_5678 4);
        check_int "by 32 = id" 0x1234_5678 (U.rotate_right 0x1234_5678 32));
    Alcotest.test_case "extensions" `Quick (fun () ->
        check_int "sext8 neg" 0xFFFF_FF80 (U.sext8 0x80);
        check_int "sext8 pos" 0x7F (U.sext8 0x7F);
        check_int "zext8" 0x80 (U.zext8 0xFF80);
        check_int "sext16 neg" 0xFFFF_8000 (U.sext16 0x8000);
        check_int "zext16" 0x8000 (U.zext16 0xFFFF_8000);
        check_int "sext26" 0xFE00_0000 (U.sext ~bits:26 0x200_0000));
    Alcotest.test_case "carry and overflow" `Quick (fun () ->
        check_bool "carry out" true (U.carry_add 0xFFFF_FFFF 1 0);
        check_bool "no carry" false (U.carry_add 1 2 0);
        check_bool "carry via cin" true (U.carry_add 0xFFFF_FFFF 0 1);
        check_bool "pos overflow" true (U.overflow_add 0x7FFF_FFFF 1 0);
        check_bool "neg overflow" true (U.overflow_add 0x8000_0000 0xFFFF_FFFF 0);
        check_bool "no overflow" false (U.overflow_add 5 7 0);
        check_bool "sub overflow" true (U.overflow_sub 0x8000_0000 1);
        check_bool "sub ok" false (U.overflow_sub 10 3));
    Alcotest.test_case "comparisons" `Quick (fun () ->
        check_bool "ult" true (U.ult 1 0x8000_0000);
        check_bool "slt flips" true (U.slt 0x8000_0000 1);
        check_bool "uge" true (U.uge 0xFFFF_FFFF 0);
        check_bool "sge" false (U.sge 0xFFFF_FFFF 0));
  ]

let property_tests =
  [ prop "add matches Int64" pair_gen
      (fun (a, b) -> U.add a b = ref64 Int64.add a b);
    prop "sub matches Int64" pair_gen
      (fun (a, b) -> U.sub a b = ref64 Int64.sub a b);
    prop "mul matches Int64" pair_gen
      (fun (a, b) -> U.mul a b = ref64 Int64.mul a b);
    prop "mul matches Int64 near 2^32"
      (let near_top = QCheck.map (fun x -> 0xFFFF_FFFF - (x land 0xFFFF)) QCheck.int in
       QCheck.pair near_top near_top)
      (fun (a, b) -> U.mul a b = ref64 Int64.mul a b);
    prop "signed roundtrip" u32_gen
      (fun a -> U.signed a land 0xFFFF_FFFF = a);
    prop "lognot involution" u32_gen
      (fun a -> U.lognot (U.lognot a) = a);
    prop "rotate composition" (QCheck.pair u32_gen (QCheck.int_bound 31))
      (fun (a, n) ->
         U.rotate_right (U.rotate_right a n) ((32 - n) land 31) = a);
    prop "sra = signed div by 2^n (towards -inf bound)" u32_gen
      (fun a -> U.shift_right_arith a 31 = (if U.is_negative a then 0xFFFF_FFFF else 0));
    prop "unsigned order total" pair_gen
      (fun (a, b) ->
         let lt = U.ult a b and gt = U.ugt a b and eq = a = b in
         (lt || gt || eq)
         && not (lt && gt) && not (lt && eq) && not (gt && eq));
    prop "carry iff sum exceeds mask" pair_gen
      (fun (a, b) -> U.carry_add a b 0 = (a + b > 0xFFFF_FFFF));
    prop "overflow consistent with signed sum" pair_gen
      (fun (a, b) ->
         let exact = U.signed a + U.signed b in
         U.overflow_add a b 0 = (exact < -0x8000_0000 || exact > 0x7FFF_FFFF));
  ]

let () =
  Alcotest.run "u32"
    [ ("unit", unit_tests); ("properties", property_tests) ]
