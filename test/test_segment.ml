(* The trace lake's segment codec: replaying a segment must be
   record-for-record bit-identical to the live [Runner.run_fold] stream
   that produced it (pinned via SCIFSNAP engine bytes, like
   streaming == replay in test_hotpath), appending must compose, and
   every torn or damaged byte of a segment file must surface as
   [Corrupt_segment] — never Invalid_argument, never garbage records. *)

module Engine = Daikon.Engine
module Segment = Trace.Segment
module R = Trace.Record
module Pipeline = Scifinder_core.Pipeline

let qtest ?(count = 20) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let with_tmp_dir f =
  let dir = Filename.temp_file "scifinder_lake" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
        Array.iter
          (fun n ->
             try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (try Sys.readdir dir with Sys_error _ -> [||]);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let workload name = Option.get (Workloads.Suite.by_name name)

(* Record one workload into [path] (appending), with a configurable
   block size so multi-block framing is exercised. *)
let record ?records_per_block (w : Workloads.Rt.t) path =
  Segment.with_writer ?records_per_block ~workload:w.name path (fun sw ->
      ignore
        (Trace.Runner.stream_to_segment ~tick_period:w.tick_period
           ~entry:w.entry ~writer:sw w.image))

let mine_live (ws : Workloads.Rt.t list) =
  let engine = Engine.create () in
  List.iter
    (fun (w : Workloads.Rt.t) ->
       ignore
         (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
            ~observer:(Engine.observe engine) w.image))
    ws;
  engine

let mine_segment path =
  let engine = Engine.create () in
  let (), _info =
    Segment.fold ~init:() ~f:(fun () r -> Engine.observe engine r) path
  in
  engine

(* ---- round-trip exactness ---- *)

let test_roundtrip_records_exact () =
  with_tmp_dir (fun dir ->
      let w = workload "bitcount" in
      let path = Filename.concat dir "w.seg" in
      (* Tiny blocks force many framing boundaries. *)
      record ~records_per_block:7 w path;
      let live, _ =
        Trace.Runner.capture ~tick_period:w.tick_period ~entry:w.entry
          w.image
      in
      let replayed, info =
        Segment.fold ~init:[] ~f:(fun acc r -> r :: acc) path
      in
      let replayed = List.rev replayed in
      Alcotest.(check int) "record count"
        (List.length live) (List.length replayed);
      Alcotest.(check int) "info record count"
        (List.length live) info.Segment.records;
      Alcotest.(check bool) "multi-block" true (info.Segment.blocks > 1);
      Alcotest.(check (list string)) "workloads" [ w.name ]
        info.Segment.workloads;
      List.iter2
        (fun (a : R.t) (b : R.t) ->
           Alcotest.(check string) "point" a.point b.point;
           Alcotest.(check bool) "values bit-identical" true
             (a.values = b.values);
           Alcotest.(check bool) "mask identical" true (a.mask = b.mask))
        live replayed)

let test_stream_equals_replay_engine_bytes () =
  with_tmp_dir (fun dir ->
      let w = workload "instru" in
      let path = Filename.concat dir "w.seg" in
      record w path;
      Alcotest.(check bool) "SCIFSNAP bytes equal" true
        (String.equal
           (Engine.encode (mine_live [ w ]))
           (Engine.encode (mine_segment path))))

let prop_fuzz_roundtrip =
  qtest "segment replay == live stream (SCIFSNAP bytes), fuzz programs"
    QCheck.(pair (int_bound 1000) (int_bound 40))
    (fun (seed, index) ->
       let w = Fuzz.Gen.candidate ~seed ~index in
       with_tmp_dir (fun dir ->
           let path = Filename.concat dir "w.seg" in
           record ~records_per_block:64 w path;
           String.equal
             (Engine.encode (mine_live [ w ]))
             (Engine.encode (mine_segment path))))

let test_append_composes () =
  with_tmp_dir (fun dir ->
      let w = workload "pi" in
      let path = Filename.concat dir "w.seg" in
      (* Two writer sessions on the same path: blocks append, deltas
         reset per block, so the segment equals the trace played twice. *)
      record w path;
      record w path;
      Alcotest.(check bool) "append == live twice" true
        (String.equal
           (Engine.encode (mine_live [ w; w ]))
           (Engine.encode (mine_segment path))))

let test_concat_is_replication () =
  with_tmp_dir (fun dir ->
      let w = workload "helloworld" in
      let path = Filename.concat dir "w.seg" in
      record w path;
      let bytes = Util.Binio.read_file path in
      let path3 = Filename.concat dir "w3.seg" in
      let oc = open_out_bin path3 in
      for _ = 1 to 3 do output_string oc bytes done;
      close_out oc;
      Alcotest.(check bool) "3x concat == live 3x" true
        (String.equal
           (Engine.encode (mine_live [ w; w; w ]))
           (Engine.encode (mine_segment path3))))

(* ---- torn and hostile segments ---- *)

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: read instead of raising" what
  | exception Segment.Corrupt_segment _ -> ()
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Corrupt_segment" what
      (Printexc.to_string e)

let drain path =
  let n = ref 0 in
  let info = Segment.iter ~f:(fun _ -> incr n) path in
  (!n, info)

(* Block boundaries of a segment file, from the 4-byte big-endian
   payload length at offset 24 of each 28-byte frame header. *)
let block_boundaries bytes =
  let be32 off =
    (Char.code bytes.[off] lsl 24)
    lor (Char.code bytes.[off + 1] lsl 16)
    lor (Char.code bytes.[off + 2] lsl 8)
    lor Char.code bytes.[off + 3]
  in
  let rec go off acc =
    if off >= String.length bytes then List.rev acc
    else
      let next = off + 28 + be32 (off + 24) in
      go next (next :: acc)
  in
  go 0 []

let test_truncation_at_every_offset () =
  with_tmp_dir (fun dir ->
      (* A small fuzz program keeps the sweep affordable while still
         spanning several blocks. *)
      let w = Fuzz.Gen.candidate ~seed:7 ~index:3 in
      let path = Filename.concat dir "w.seg" in
      record ~records_per_block:16 w path;
      let bytes = Util.Binio.read_file path in
      let boundaries = block_boundaries bytes in
      Alcotest.(check bool) "spans several blocks" true
        (List.length boundaries > 2);
      let full, _ = drain path in
      let cut_path = Filename.concat dir "cut.seg" in
      for cut = 0 to String.length bytes - 1 do
        let oc = open_out_bin cut_path in
        output_string oc (String.sub bytes 0 cut);
        close_out oc;
        if List.mem cut boundaries then begin
          (* A cut on a block boundary is indistinguishable from a
             writer that simply appended fewer blocks: it must parse —
             as strictly fewer records, never garbage. *)
          let n, _ = drain cut_path in
          Alcotest.(check bool)
            (Printf.sprintf "boundary cut %d parses short" cut)
            true (n < full)
        end
        else
          expect_corrupt (Printf.sprintf "prefix of %d bytes" cut) (fun () ->
              drain cut_path)
      done)

let test_bitflip_rejected () =
  with_tmp_dir (fun dir ->
      let w = workload "helloworld" in
      let path = Filename.concat dir "w.seg" in
      record w path;
      let bytes = Bytes.of_string (Util.Binio.read_file path) in
      (* Flip one payload byte mid-file: the digest must catch it. *)
      let off = Bytes.length bytes / 2 in
      Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 1));
      let bad = Filename.concat dir "bad.seg" in
      let oc = open_out_bin bad in
      output_bytes oc bytes;
      close_out oc;
      expect_corrupt "flipped byte" (fun () -> drain bad))

let test_foreign_and_future_rejected () =
  with_tmp_dir (fun dir ->
      let junk = Filename.concat dir "junk.seg" in
      let oc = open_out_bin junk in
      output_string oc "this is not a segment file at all.......";
      close_out oc;
      expect_corrupt "foreign bytes" (fun () -> drain junk);
      (* Bump the version byte of a real segment: readers must refuse
         rather than misparse a future layout. *)
      let w = workload "helloworld" in
      let path = Filename.concat dir "w.seg" in
      record w path;
      let bytes = Bytes.of_string (Util.Binio.read_file path) in
      Bytes.set bytes 7 (Char.chr (Segment.version + 1));
      let future = Filename.concat dir "future.seg" in
      let oc = open_out_bin future in
      output_bytes oc bytes;
      close_out oc;
      expect_corrupt "future version" (fun () -> drain future);
      expect_corrupt "empty file" (fun () ->
          let empty = Filename.concat dir "empty.seg" in
          close_out (open_out_bin empty);
          drain empty))

(* ---- the lake: record + out-of-core mining ---- *)

let test_lake_mine_matches_live () =
  with_tmp_dir (fun dir ->
      let names = [ "bitcount"; "helloworld"; "pi" ] in
      let stats = Pipeline.record_lake ~names ~dir () in
      Alcotest.(check int) "segments" 3 stats.Pipeline.lake_segments;
      Alcotest.(check bool) "bytes on disk" true
        (stats.Pipeline.lake_bytes > 0);
      let m = Pipeline.mine_lake dir in
      Alcotest.(check int) "records mined == records recorded"
        stats.Pipeline.lake_records m.Pipeline.record_count;
      (* Live sequential mining of the same workloads in lake (sorted
         filename) order must agree bit-for-bit. *)
      let sorted = List.sort String.compare names in
      let live = mine_live (List.map workload sorted) in
      Alcotest.(check (list string)) "invariant set identical"
        (List.map Invariant.Expr.to_string (Engine.invariants live))
        (List.map Invariant.Expr.to_string m.Pipeline.invariants);
      Alcotest.(check int) "one figure3 row per segment" 3
        (List.length m.Pipeline.figure3))

let test_lake_append_accumulates () =
  with_tmp_dir (fun dir ->
      let names = [ "helloworld" ] in
      let s1 = Pipeline.record_lake ~names ~dir () in
      let s2 = Pipeline.record_lake ~names ~dir () in
      Alcotest.(check int) "second pass appends the same count"
        s1.Pipeline.lake_records s2.Pipeline.lake_records;
      let m = Pipeline.mine_lake dir in
      Alcotest.(check int) "lake holds both passes"
        (2 * s1.Pipeline.lake_records) m.Pipeline.record_count;
      let w = workload "helloworld" in
      Alcotest.(check bool) "2x lake == live twice" true
        (String.equal
           (Engine.encode (mine_live [ w; w ]))
           (Engine.encode
              (mine_segment (Segment.segment_path ~dir ~workload:w.name)))))

let test_lake_slash_named_workload () =
  with_tmp_dir (fun dir ->
      (* A hostile workload name must stay inside the lake directory and
         still round-trip. *)
      let base = workload "helloworld" in
      let evil = { base with Workloads.Rt.name = "../evil/../w" } in
      let stats =
        Pipeline.record_lake ~workloads:[ evil ] ~names:[ evil.name ] ~dir ()
      in
      Alcotest.(check int) "one segment" 1 stats.Pipeline.lake_segments;
      Alcotest.(check (list string)) "segment is inside the lake dir"
        [ Segment.segment_path ~dir ~workload:evil.name ]
        (Segment.lake_segments dir);
      let m = Pipeline.mine_lake dir in
      Alcotest.(check int) "records survive"
        stats.Pipeline.lake_records m.Pipeline.record_count)

let () =
  Alcotest.run "segment"
    [ ("roundtrip",
       [ Alcotest.test_case "records bit-identical across blocks" `Quick
           test_roundtrip_records_exact;
         Alcotest.test_case "stream == replay (SCIFSNAP bytes)" `Quick
           test_stream_equals_replay_engine_bytes;
         Alcotest.test_case "append composes" `Quick test_append_composes;
         Alcotest.test_case "file concat is corpus replication" `Quick
           test_concat_is_replication;
         prop_fuzz_roundtrip ]);
      ("hostile",
       [ Alcotest.test_case "truncation at every byte offset" `Quick
           test_truncation_at_every_offset;
         Alcotest.test_case "bit flip rejected" `Quick test_bitflip_rejected;
         Alcotest.test_case "foreign/future/empty rejected" `Quick
           test_foreign_and_future_rejected ]);
      ("lake",
       [ Alcotest.test_case "mine_lake == live sequential" `Quick
           test_lake_mine_matches_live;
         Alcotest.test_case "append accumulates" `Quick
           test_lake_append_accumulates;
         Alcotest.test_case "hostile workload name contained" `Quick
           test_lake_slash_named_workload ]) ]
