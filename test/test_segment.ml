(* The trace lake's segment codec: replaying a segment must be
   record-for-record bit-identical to the live [Runner.run_fold] stream
   that produced it (pinned via SCIFSNAP engine bytes, like
   streaming == replay in test_hotpath), appending must compose, and
   every torn or damaged byte of a segment file must surface as
   [Corrupt_segment] — never Invalid_argument, never garbage records. *)

module Engine = Daikon.Engine
module Segment = Trace.Segment
module R = Trace.Record
module Pipeline = Scifinder_core.Pipeline

let qtest ?(count = 20) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let with_tmp_dir f =
  let dir = Filename.temp_file "scifinder_lake" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
        Array.iter
          (fun n ->
             try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (try Sys.readdir dir with Sys_error _ -> [||]);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let workload name = Option.get (Workloads.Suite.by_name name)

(* Record one workload into [path] (appending), with a configurable
   block size so multi-block framing is exercised. *)
let record ?records_per_block (w : Workloads.Rt.t) path =
  Segment.with_writer ?records_per_block ~workload:w.name path (fun sw ->
      ignore
        (Trace.Runner.stream_to_segment ~tick_period:w.tick_period
           ~entry:w.entry ~writer:sw w.image))

let mine_live (ws : Workloads.Rt.t list) =
  let engine = Engine.create () in
  List.iter
    (fun (w : Workloads.Rt.t) ->
       ignore
         (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
            ~observer:(Engine.observe engine) w.image))
    ws;
  engine

let mine_segment path =
  let engine = Engine.create () in
  let (), _info =
    Segment.fold ~init:() ~f:(fun () r -> Engine.observe engine r) path
  in
  engine

(* ---- round-trip exactness ---- *)

let test_roundtrip_records_exact () =
  with_tmp_dir (fun dir ->
      let w = workload "bitcount" in
      let path = Filename.concat dir "w.seg" in
      (* Tiny blocks force many framing boundaries. *)
      record ~records_per_block:7 w path;
      let live, _ =
        Trace.Runner.capture ~tick_period:w.tick_period ~entry:w.entry
          w.image
      in
      let replayed, info =
        Segment.fold ~init:[] ~f:(fun acc r -> r :: acc) path
      in
      let replayed = List.rev replayed in
      Alcotest.(check int) "record count"
        (List.length live) (List.length replayed);
      Alcotest.(check int) "info record count"
        (List.length live) info.Segment.records;
      Alcotest.(check bool) "multi-block" true (info.Segment.blocks > 1);
      Alcotest.(check (list string)) "workloads" [ w.name ]
        info.Segment.workloads;
      List.iter2
        (fun (a : R.t) (b : R.t) ->
           Alcotest.(check string) "point" a.point b.point;
           Alcotest.(check bool) "values bit-identical" true
             (a.values = b.values);
           Alcotest.(check bool) "mask identical" true (a.mask = b.mask))
        live replayed)

let test_stream_equals_replay_engine_bytes () =
  with_tmp_dir (fun dir ->
      let w = workload "instru" in
      let path = Filename.concat dir "w.seg" in
      record w path;
      Alcotest.(check bool) "SCIFSNAP bytes equal" true
        (String.equal
           (Engine.encode (mine_live [ w ]))
           (Engine.encode (mine_segment path))))

let prop_fuzz_roundtrip =
  qtest "segment replay == live stream (SCIFSNAP bytes), fuzz programs"
    QCheck.(pair (int_bound 1000) (int_bound 40))
    (fun (seed, index) ->
       let w = Fuzz.Gen.candidate ~seed ~index in
       with_tmp_dir (fun dir ->
           let path = Filename.concat dir "w.seg" in
           record ~records_per_block:64 w path;
           String.equal
             (Engine.encode (mine_live [ w ]))
             (Engine.encode (mine_segment path))))

let test_append_composes () =
  with_tmp_dir (fun dir ->
      let w = workload "pi" in
      let path = Filename.concat dir "w.seg" in
      (* Two writer sessions on the same path: blocks append, deltas
         reset per block, so the segment equals the trace played twice. *)
      record w path;
      record w path;
      Alcotest.(check bool) "append == live twice" true
        (String.equal
           (Engine.encode (mine_live [ w; w ]))
           (Engine.encode (mine_segment path))))

let test_concat_is_replication () =
  with_tmp_dir (fun dir ->
      let w = workload "helloworld" in
      let path = Filename.concat dir "w.seg" in
      record w path;
      let bytes = Util.Binio.read_file path in
      let path3 = Filename.concat dir "w3.seg" in
      let oc = open_out_bin path3 in
      for _ = 1 to 3 do output_string oc bytes done;
      close_out oc;
      Alcotest.(check bool) "3x concat == live 3x" true
        (String.equal
           (Engine.encode (mine_live [ w; w; w ]))
           (Engine.encode (mine_segment path3))))

(* ---- torn and hostile segments ---- *)

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: read instead of raising" what
  | exception Segment.Corrupt_segment _ -> ()
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Corrupt_segment" what
      (Printexc.to_string e)

let drain path =
  let n = ref 0 in
  let info = Segment.iter ~f:(fun _ -> incr n) path in
  (!n, info)

(* Block boundaries of a segment file, from the 4-byte big-endian
   payload length at offset 24 of each 28-byte frame header. *)
let block_boundaries bytes =
  let be32 off =
    (Char.code bytes.[off] lsl 24)
    lor (Char.code bytes.[off + 1] lsl 16)
    lor (Char.code bytes.[off + 2] lsl 8)
    lor Char.code bytes.[off + 3]
  in
  let rec go off acc =
    if off >= String.length bytes then List.rev acc
    else
      let next = off + 28 + be32 (off + 24) in
      go next (next :: acc)
  in
  go 0 []

let test_truncation_at_every_offset () =
  with_tmp_dir (fun dir ->
      (* A small fuzz program keeps the sweep affordable while still
         spanning several blocks. *)
      let w = Fuzz.Gen.candidate ~seed:7 ~index:3 in
      let path = Filename.concat dir "w.seg" in
      record ~records_per_block:16 w path;
      let bytes = Util.Binio.read_file path in
      let boundaries = block_boundaries bytes in
      Alcotest.(check bool) "spans several blocks" true
        (List.length boundaries > 2);
      let full, _ = drain path in
      let cut_path = Filename.concat dir "cut.seg" in
      for cut = 0 to String.length bytes - 1 do
        let oc = open_out_bin cut_path in
        output_string oc (String.sub bytes 0 cut);
        close_out oc;
        if List.mem cut boundaries then begin
          (* A cut on a block boundary is indistinguishable from a
             writer that simply appended fewer blocks: it must parse —
             as strictly fewer records, never garbage. *)
          let n, _ = drain cut_path in
          Alcotest.(check bool)
            (Printf.sprintf "boundary cut %d parses short" cut)
            true (n < full)
        end
        else
          expect_corrupt (Printf.sprintf "prefix of %d bytes" cut) (fun () ->
              drain cut_path)
      done)

let test_bitflip_rejected () =
  with_tmp_dir (fun dir ->
      let w = workload "helloworld" in
      let path = Filename.concat dir "w.seg" in
      record w path;
      let bytes = Bytes.of_string (Util.Binio.read_file path) in
      (* Flip one payload byte mid-file: the digest must catch it. *)
      let off = Bytes.length bytes / 2 in
      Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 1));
      let bad = Filename.concat dir "bad.seg" in
      let oc = open_out_bin bad in
      output_bytes oc bytes;
      close_out oc;
      expect_corrupt "flipped byte" (fun () -> drain bad))

let test_foreign_and_future_rejected () =
  with_tmp_dir (fun dir ->
      let junk = Filename.concat dir "junk.seg" in
      let oc = open_out_bin junk in
      output_string oc "this is not a segment file at all.......";
      close_out oc;
      expect_corrupt "foreign bytes" (fun () -> drain junk);
      (* Bump the version byte of a real segment: readers must refuse
         rather than misparse a future layout. *)
      let w = workload "helloworld" in
      let path = Filename.concat dir "w.seg" in
      record w path;
      let bytes = Bytes.of_string (Util.Binio.read_file path) in
      Bytes.set bytes 7 (Char.chr (Segment.version + 1));
      let future = Filename.concat dir "future.seg" in
      let oc = open_out_bin future in
      output_bytes oc bytes;
      close_out oc;
      expect_corrupt "future version" (fun () -> drain future);
      expect_corrupt "empty file" (fun () ->
          let empty = Filename.concat dir "empty.seg" in
          close_out (open_out_bin empty);
          drain empty))

(* ---- the lake: record + out-of-core mining ---- *)

let test_lake_mine_matches_live () =
  with_tmp_dir (fun dir ->
      let names = [ "bitcount"; "helloworld"; "pi" ] in
      let stats = Pipeline.record_lake ~names ~dir () in
      Alcotest.(check int) "segments" 3 stats.Pipeline.lake_segments;
      Alcotest.(check bool) "bytes on disk" true
        (stats.Pipeline.lake_bytes > 0);
      let m = Pipeline.mine_lake dir in
      Alcotest.(check int) "records mined == records recorded"
        stats.Pipeline.lake_records m.Pipeline.record_count;
      (* Live sequential mining of the same workloads in lake (sorted
         filename) order must agree bit-for-bit. *)
      let sorted = List.sort String.compare names in
      let live = mine_live (List.map workload sorted) in
      Alcotest.(check (list string)) "invariant set identical"
        (List.map Invariant.Expr.to_string (Engine.invariants live))
        (List.map Invariant.Expr.to_string m.Pipeline.invariants);
      Alcotest.(check int) "one figure3 row per segment" 3
        (List.length m.Pipeline.figure3))

let test_lake_append_accumulates () =
  with_tmp_dir (fun dir ->
      let names = [ "helloworld" ] in
      let s1 = Pipeline.record_lake ~names ~dir () in
      let s2 = Pipeline.record_lake ~names ~dir () in
      Alcotest.(check int) "second pass appends the same count"
        s1.Pipeline.lake_records s2.Pipeline.lake_records;
      let m = Pipeline.mine_lake dir in
      Alcotest.(check int) "lake holds both passes"
        (2 * s1.Pipeline.lake_records) m.Pipeline.record_count;
      let w = workload "helloworld" in
      Alcotest.(check bool) "2x lake == live twice" true
        (String.equal
           (Engine.encode (mine_live [ w; w ]))
           (Engine.encode
              (mine_segment (Segment.segment_path ~dir ~workload:w.name)))))

let test_lake_slash_named_workload () =
  with_tmp_dir (fun dir ->
      (* A hostile workload name must stay inside the lake directory and
         still round-trip. *)
      let base = workload "helloworld" in
      let evil = { base with Workloads.Rt.name = "../evil/../w" } in
      let stats =
        Pipeline.record_lake ~workloads:[ evil ] ~names:[ evil.name ] ~dir ()
      in
      Alcotest.(check int) "one segment" 1 stats.Pipeline.lake_segments;
      Alcotest.(check (list string)) "segment is inside the lake dir"
        [ Segment.segment_path ~dir ~workload:evil.name ]
        (Segment.lake_segments dir);
      let m = Pipeline.mine_lake dir in
      Alcotest.(check int) "records survive"
        stats.Pipeline.lake_records m.Pipeline.record_count)

(* ---- sharded parallel replay ---- *)

let session_digest ?pre ~jobs dir =
  let s = Pipeline.Session.create ~jobs () in
  (match pre with
   | None -> ()
   | Some w -> ignore (Pipeline.Session.mine s [ w ]));
  let m = Pipeline.Session.mine_lake s dir in
  (Pipeline.Session.encode s, m)

let test_fold_range_partition_exact () =
  with_tmp_dir (fun dir ->
      (* records_per_block:7 over a 477-record trace leaves a partial
         final block, so every split point below exercises it. *)
      let w = workload "pi" in
      let path = Filename.concat dir "w.seg" in
      record ~records_per_block:7 w path;
      let full, info = Segment.fold ~init:[] ~f:(fun acc r -> r :: acc) path in
      let nblocks = info.Segment.blocks in
      Alcotest.(check bool) "several blocks" true (nblocks > 2);
      for k = 0 to nblocks do
        let head, hinfo =
          Segment.fold_range ~last_block:k ~init:[]
            ~f:(fun acc r -> r :: acc) path
        in
        let tail, tinfo =
          Segment.fold_range ~first_block:k ~init:[]
            ~f:(fun acc r -> r :: acc) path
        in
        Alcotest.(check int)
          (Printf.sprintf "blocks split at %d" k)
          nblocks
          (hinfo.Segment.blocks + tinfo.Segment.blocks);
        Alcotest.(check int)
          (Printf.sprintf "bytes split at %d" k)
          info.Segment.bytes
          (hinfo.Segment.bytes + tinfo.Segment.bytes);
        Alcotest.(check bool)
          (Printf.sprintf "records split at %d" k)
          true
          (full = tail @ head)
      done;
      (* A range past the end is empty, not an error. *)
      let past, pinfo =
        Segment.fold_range ~first_block:(nblocks + 3) ~init:[]
          ~f:(fun acc r -> r :: acc) path
      in
      Alcotest.(check bool) "past-end range is empty" true
        (past = [] && pinfo.Segment.blocks = 0);
      Alcotest.check_raises "inverted range"
        (Invalid_argument "Segment.fold_range: invalid block range")
        (fun () ->
           ignore (Segment.fold_range ~first_block:3 ~last_block:1 ~init:()
                     ~f:(fun () _ -> ()) path)))

let test_fold_range_empty_and_single_block () =
  with_tmp_dir (fun dir ->
      (* An empty segment: one self-describing empty block. *)
      let empty = Filename.concat dir "empty.seg" in
      Segment.with_writer ~workload:"nothing" empty (fun _ -> ());
      let n, info =
        Segment.fold_range ~init:0 ~f:(fun n _ -> n + 1) empty
      in
      Alcotest.(check int) "empty segment: no records" 0 n;
      Alcotest.(check int) "empty segment: one block" 1 info.Segment.blocks;
      Alcotest.(check (list string)) "empty segment: workload survives"
        [ "nothing" ] info.Segment.workloads;
      (* Single-block segment: the only valid proper split is trivial. *)
      let w = workload "helloworld" in
      let one = Filename.concat dir "one.seg" in
      record ~records_per_block:100000 w one;
      let full, finfo = Segment.fold ~init:0 ~f:(fun n _ -> n + 1) one in
      Alcotest.(check int) "single block" 1 finfo.Segment.blocks;
      let ranged, rinfo =
        Segment.fold_range ~first_block:0 ~last_block:1 ~init:0
          ~f:(fun n _ -> n + 1) one
      in
      Alcotest.(check int) "single block range == fold" full ranged;
      Alcotest.(check int) "single block range bytes" finfo.Segment.bytes
        rinfo.Segment.bytes)

let test_read_ahead_and_scratch_equal () =
  with_tmp_dir (fun dir ->
      let w = workload "bitcount" in
      let path = Filename.concat dir "w.seg" in
      record ~records_per_block:16 w path;
      let digest ?read_ahead ?scratch () =
        let engine = Engine.create () in
        let (), info =
          Segment.fold ?read_ahead ?scratch ~init:()
            ~f:(fun () r -> Engine.observe engine r) path
        in
        (Engine.encode engine, info)
      in
      let base, binfo = digest () in
      let ahead, ainfo = digest ~read_ahead:true () in
      let scr, sinfo = digest ~scratch:(Segment.scratch ()) () in
      let both, _ =
        digest ~read_ahead:true ~scratch:(Segment.scratch ()) ()
      in
      Alcotest.(check bool) "read-ahead identical" true (String.equal base ahead);
      Alcotest.(check bool) "scratch identical" true (String.equal base scr);
      Alcotest.(check bool) "read-ahead + scratch identical" true
        (String.equal base both);
      Alcotest.(check int) "infos agree" binfo.Segment.records
        (min ainfo.Segment.records sinfo.Segment.records);
      (* One scratch reused across segments must not leak state. *)
      let scratch = Segment.scratch () in
      let e2 = Engine.create () in
      let fold_into () =
        ignore
          (Segment.fold ~scratch ~init:()
             ~f:(fun () r -> Engine.observe e2 r) path)
      in
      fold_into ();
      fold_into ();
      Alcotest.(check bool) "scratch reuse == append semantics" true
        (String.equal (Engine.encode (mine_live [ w; w ])) (Engine.encode e2));
      (* The error surface survives the helper domain: a torn tail read
         with read-ahead still raises Corrupt_segment. *)
      let bytes = Util.Binio.read_file path in
      let torn = Filename.concat dir "torn.seg" in
      let oc = open_out_bin torn in
      output_string oc (String.sub bytes 0 (String.length bytes - 3));
      close_out oc;
      expect_corrupt "torn tail under read-ahead" (fun () ->
          Segment.fold ~read_ahead:true ~init:0 ~f:(fun n _ -> n + 1) torn))

let prop_shard_spans_partition =
  qtest ~count:30 "shard_spans partitions every block of every segment"
    QCheck.(pair (int_range 1 12) (int_range 3 40))
    (fun (jobs, records_per_block) ->
       with_tmp_dir (fun dir ->
           let names = [ "helloworld"; "pi" ] in
           List.iter
             (fun n ->
                record ~records_per_block (workload n)
                  (Segment.segment_path ~dir ~workload:n))
             names;
           let segments = Segment.lake_segments dir in
           let spans = Segment.shard_spans ~jobs segments in
           List.for_all
             (fun path ->
                let sizes = Array.of_list (Segment.block_sizes path) in
                let mine =
                  List.filter
                    (fun sp -> String.equal sp.Segment.sp_path path)
                    spans
                in
                (* Contiguous, ordered, covering [0, nblocks), with
                   byte counts matching the headers. *)
                let rec covers next = function
                  | [] -> next = Array.length sizes
                  | sp :: rest ->
                    sp.Segment.sp_first = next
                    && sp.Segment.sp_last > sp.Segment.sp_first
                    && sp.Segment.sp_bytes
                       = (let b = ref 0 in
                          for i = sp.Segment.sp_first
                            to sp.Segment.sp_last - 1 do
                            b := !b + sizes.(i)
                          done;
                          !b)
                    && covers sp.Segment.sp_last rest
                in
                covers 0 mine)
             segments))

let prop_parallel_lake_identical =
  qtest ~count:10 "mine_lake jobs=n == jobs=1 (SCIFSNAP bytes + rows)"
    QCheck.(triple (int_range 2 8) (int_bound 1000) (int_range 3 60))
    (fun (jobs, seed, records_per_block) ->
       with_tmp_dir (fun dir ->
           (* Two fuzz workloads with tiny blocks so the shard planner
              has real split points, plus an appended segment so one
              file holds two workloads' blocks. *)
           let w1 = Fuzz.Gen.candidate ~seed ~index:1 in
           let w2 = Fuzz.Gen.candidate ~seed ~index:2 in
           let p1 = Segment.segment_path ~dir ~workload:"a" in
           record ~records_per_block w1 p1;
           (* Append the second workload to the same file: one segment,
              two workload labels, so a span boundary can land between
              them and the row label must still stitch to "w1+w2". *)
           record ~records_per_block w2 p1;
           record ~records_per_block w2 (Segment.segment_path ~dir ~workload:"b");
           let seq, mseq = session_digest ~jobs:1 dir in
           let par, mpar = session_digest ~jobs dir in
           String.equal seq par
           && mseq.Pipeline.record_count = mpar.Pipeline.record_count
           && mseq.Pipeline.trace_bytes = mpar.Pipeline.trace_bytes
           && List.map (fun r -> r.Pipeline.group_label) mseq.Pipeline.figure3
              = List.map (fun r -> r.Pipeline.group_label) mpar.Pipeline.figure3))

let test_parallel_more_jobs_than_blocks () =
  with_tmp_dir (fun dir ->
      (* One single-block segment and one empty segment, replayed at
         jobs far beyond the block count. *)
      let w = workload "helloworld" in
      record ~records_per_block:100000 w
        (Segment.segment_path ~dir ~workload:w.Workloads.Rt.name);
      Segment.with_writer ~workload:"nothing"
        (Segment.segment_path ~dir ~workload:"nothing") (fun _ -> ());
      let seq, mseq = session_digest ~jobs:1 dir in
      let par, mpar = session_digest ~jobs:16 dir in
      Alcotest.(check bool) "jobs=16 == jobs=1 on a 2-block lake" true
        (String.equal seq par);
      Alcotest.(check int) "row per segment" 2
        (List.length mpar.Pipeline.figure3);
      Alcotest.(check int) "record counts agree" mseq.Pipeline.record_count
        mpar.Pipeline.record_count)

let test_parallel_incremental_session () =
  with_tmp_dir (fun dir ->
      (* A session that already holds live-mined state must absorb a
         parallel lake replay identically to a sequential one. *)
      let names = [ "bitcount"; "pi" ] in
      ignore (Pipeline.record_lake ~names ~dir ());
      let pre = workload "helloworld" in
      let seq, _ = session_digest ~pre ~jobs:1 dir in
      let par, _ = session_digest ~pre ~jobs:4 dir in
      Alcotest.(check bool) "incremental parallel == sequential" true
        (String.equal seq par))

let test_record_lake_parallel_identical () =
  with_tmp_dir (fun seq_dir ->
      with_tmp_dir (fun par_dir ->
          let names = [ "bitcount"; "helloworld"; "pi" ] in
          let s1 = Pipeline.record_lake ~names ~jobs:1 ~dir:seq_dir () in
          let s3 = Pipeline.record_lake ~names ~jobs:3 ~dir:par_dir () in
          Alcotest.(check int) "records agree" s1.Pipeline.lake_records
            s3.Pipeline.lake_records;
          Alcotest.(check int) "bytes agree" s1.Pipeline.lake_bytes
            s3.Pipeline.lake_bytes;
          List.iter
            (fun n ->
               let read dir =
                 Util.Binio.read_file (Segment.segment_path ~dir ~workload:n)
               in
               Alcotest.(check bool)
                 (Printf.sprintf "segment %s byte-identical" n)
                 true
                 (String.equal (read seq_dir) (read par_dir)))
            names))

let test_record_lake_duplicate_names_sequential () =
  with_tmp_dir (fun dir ->
      (* Duplicate names share one segment file: parallel recording must
         fall back to sequential appends rather than interleave. *)
      let stats =
        Pipeline.record_lake ~names:[ "pi"; "pi" ] ~jobs:4 ~dir ()
      in
      Alcotest.(check int) "two recordings" 2 stats.Pipeline.lake_segments;
      let w = workload "pi" in
      Alcotest.(check bool) "lake == live twice" true
        (String.equal
           (Engine.encode (mine_live [ w; w ]))
           (Engine.encode
              (mine_segment
                 (Segment.segment_path ~dir ~workload:w.Workloads.Rt.name)))))

let () =
  Alcotest.run "segment"
    [ ("roundtrip",
       [ Alcotest.test_case "records bit-identical across blocks" `Quick
           test_roundtrip_records_exact;
         Alcotest.test_case "stream == replay (SCIFSNAP bytes)" `Quick
           test_stream_equals_replay_engine_bytes;
         Alcotest.test_case "append composes" `Quick test_append_composes;
         Alcotest.test_case "file concat is corpus replication" `Quick
           test_concat_is_replication;
         prop_fuzz_roundtrip ]);
      ("hostile",
       [ Alcotest.test_case "truncation at every byte offset" `Quick
           test_truncation_at_every_offset;
         Alcotest.test_case "bit flip rejected" `Quick test_bitflip_rejected;
         Alcotest.test_case "foreign/future/empty rejected" `Quick
           test_foreign_and_future_rejected ]);
      ("lake",
       [ Alcotest.test_case "mine_lake == live sequential" `Quick
           test_lake_mine_matches_live;
         Alcotest.test_case "append accumulates" `Quick
           test_lake_append_accumulates;
         Alcotest.test_case "hostile workload name contained" `Quick
           test_lake_slash_named_workload ]);
      ("parallel",
       [ Alcotest.test_case "fold_range partitions exactly at every block"
           `Quick test_fold_range_partition_exact;
         Alcotest.test_case "empty segment and single block" `Quick
           test_fold_range_empty_and_single_block;
         Alcotest.test_case "read-ahead and scratch change nothing" `Quick
           test_read_ahead_and_scratch_equal;
         prop_shard_spans_partition;
         prop_parallel_lake_identical;
         Alcotest.test_case "more jobs than blocks" `Quick
           test_parallel_more_jobs_than_blocks;
         Alcotest.test_case "parallel replay into a non-fresh session" `Quick
           test_parallel_incremental_session;
         Alcotest.test_case "parallel record_lake byte-identical" `Quick
           test_record_lake_parallel_identical;
         Alcotest.test_case "duplicate names record sequentially" `Quick
           test_record_lake_duplicate_names_sequential ]) ]
