(* Assertion synthesis (OVL templates), the runtime monitor, and the
   hardware cost model. *)

module Expr = Invariant.Expr
module Var = Trace.Var
module Ovl = Assertions.Ovl

let inv ?(point = "l.add") body = { Expr.point; body }
let v_post d = Expr.V (Var.post_id d)
let v_orig d = Expr.V (Var.orig_id d)

let record ?(point = "l.add") assignments =
  let values = Array.make Var.total 0 in
  List.iter (fun (id, v) -> values.(id) <- v) assignments;
  { Trace.Record.point; values; mask = Array.make Var.total true }

(* ---- template selection ---- *)

let test_edge_template () =
  let a = Ovl.of_invariant
      (inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0))) in
  Alcotest.(check bool) "edge" true (a.Ovl.template = Ovl.Edge);
  Alcotest.(check int) "no history" 0 (List.length a.Ovl.history_vars)

let test_next_template_for_orig () =
  (* The paper's example: SR = orig(ESR0) becomes next(..., 1). *)
  let a = Ovl.of_invariant
      (inv ~point:"l.rfe" (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr))) in
  Alcotest.(check bool) "next 1" true (a.Ovl.template = Ovl.Next 1);
  Alcotest.(check int) "one holding register" 1 (List.length a.Ovl.history_vars);
  Alcotest.(check string) "ovl rendering"
    "assert_next(INSN = l.rfe, SR = orig(ESR0), 1)" (Ovl.to_ovl_string a)

let test_delta_template_for_bounds () =
  let a = Ovl.of_invariant
      (inv ~point:"l.sfltu"
         (Expr.Cmp (Expr.Ge, Expr.V (Var.insn_id Var.Prod_u), Expr.Imm 0))) in
  (match a.Ovl.template with
   | Ovl.Delta { low; _ } -> Alcotest.(check int) "lower bound" 0 low
   | _ -> Alcotest.fail "expected delta")

let test_battery_names_unique () =
  let invs =
    [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0));
      inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 9), v_orig (Var.Gpr 9))) ]
  in
  let battery = Ovl.of_invariants invs in
  let names = List.map (fun a -> a.Ovl.name) battery in
  Alcotest.(check int) "unique" 2 (List.length (List.sort_uniq compare names))

(* ---- monitor ---- *)

let test_monitor_fires_on_violation () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let trace =
    [ record [ (Var.post_id (Var.Gpr 0), 0) ];
      record [ (Var.post_id (Var.Gpr 0), 42) ];
      record [ (Var.post_id (Var.Gpr 0), 0) ] ]
  in
  let firings = Assertions.Monitor.run battery trace in
  Alcotest.(check int) "one firing" 1 (List.length firings);
  Alcotest.(check int) "at step 1" 1 (List.hd firings).Assertions.Monitor.step;
  Alcotest.(check bool) "detects" true (Assertions.Monitor.detects battery trace)

let test_monitor_silent_on_clean () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let trace = List.init 5 (fun _ -> record []) in
  Alcotest.(check bool) "silent" false (Assertions.Monitor.detects battery trace)

let test_monitor_point_scoping () =
  let battery =
    Ovl.of_invariants
      [ inv ~point:"l.sys" (Expr.Cmp (Expr.Eq, v_post Var.Pc, Expr.Imm 0xC00)) ]
  in
  let trace = [ record ~point:"l.add" [ (Var.post_id Var.Pc, 0x2004) ] ] in
  Alcotest.(check bool) "other points ignored" false
    (Assertions.Monitor.detects battery trace)

let test_fired_assertions_dedup () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let bad = record [ (Var.post_id (Var.Gpr 0), 9) ] in
  let fired = Assertions.Monitor.fired_assertions battery [ bad; bad; bad ] in
  Alcotest.(check int) "distinct assertions" 1 (List.length fired)

(* ---- monitor regressions: firing order and early exit ---- *)

(* Three same-point assertions all violated by one record must fire in
   battery order: the per-point batches used to be built by consing into
   Hashtbl.replace, which reversed them within a step. *)
let test_monitor_firing_order () =
  let invs =
    [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 3), Expr.Imm 0));
      inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 4), Expr.Imm 0));
      inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 5), Expr.Imm 0)) ]
  in
  let battery = Ovl.of_invariants invs in
  let expected = List.map (fun (a : Ovl.t) -> a.Ovl.name) battery in
  let bad =
    record
      [ (Var.post_id (Var.Gpr 3), 1);
        (Var.post_id (Var.Gpr 4), 1);
        (Var.post_id (Var.Gpr 5), 1) ]
  in
  let names firings =
    List.map
      (fun (f : Assertions.Monitor.firing) -> f.assertion.Ovl.name)
      firings
  in
  Alcotest.(check (list string)) "interpretive order" expected
    (names (Assertions.Monitor.run battery [ bad ]));
  let compiled = Assertions.Compile.compile battery in
  Alcotest.(check (list string)) "compiled order" expected
    (names (Assertions.Compile.run compiled [ bad ]))

(* detects/first_firing must stop at the first firing instead of scanning
   the rest of the trace; the evaluation counter pins the early exit. *)
let test_first_firing_short_circuit () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let bad = record [ (Var.post_id (Var.Gpr 0), 7) ] in
  let trace = [ record []; bad; bad; record [] ] in
  let c_evals = Obs.Metrics.counter "monitor.evaluations" in
  let evals0 = Obs.Metrics.counter_value c_evals in
  (match Assertions.Monitor.first_firing battery trace with
   | None -> Alcotest.fail "expected a firing"
   | Some f ->
     Alcotest.(check int) "latency" 1 f.Assertions.Monitor.step);
  Alcotest.(check int) "evaluations stop at the firing" 2
    (Obs.Metrics.counter_value c_evals - evals0);
  (* the full scan still sees both offending records *)
  Alcotest.(check int) "run sees both" 2
    (List.length (Assertions.Monitor.run battery trace))

(* ---- compiled monitor vs the interpretive oracle ---- *)

let firing_keys firings =
  List.map
    (fun (f : Assertions.Monitor.firing) ->
       (f.assertion.Ovl.name, f.Assertions.Monitor.step))
    firings

let check_compiled_matches battery trace label =
  let compiled = Assertions.Compile.compile battery in
  let fi = Assertions.Monitor.run battery trace in
  let fc = Assertions.Compile.run compiled trace in
  Alcotest.(check (list (pair string int)))
    (label ^ ": run") (firing_keys fi) (firing_keys fc);
  let oi =
    Option.map (fun (f : Assertions.Monitor.firing) ->
        (f.assertion.Ovl.name, f.step))
      (Assertions.Monitor.first_firing battery trace)
  and oc =
    Option.map (fun (f : Assertions.Monitor.firing) ->
        (f.assertion.Ovl.name, f.step))
      (Assertions.Compile.first_firing compiled trace)
  in
  Alcotest.(check (option (pair string int))) (label ^ ": first") oi oc

(* Every body shape the Figure 2 grammar admits, including the folded
   corners: Mod with k = 0, constant-vs-constant comparisons, empty and
   large In sets. *)
let test_compile_covers_grammar () =
  let g n = Var.post_id (Var.Gpr n) in
  let invs =
    [ inv (Expr.Cmp (Expr.Eq, Expr.V (g 3), Expr.Imm 5));
      inv (Expr.Cmp (Expr.Ne, Expr.Imm 5, Expr.V (g 3)));
      inv (Expr.Cmp (Expr.Lt, Expr.V (g 3), Expr.V (g 4)));
      inv (Expr.Cmp (Expr.Le, Expr.Imm 3, Expr.Imm 2));
      inv (Expr.Cmp (Expr.Gt, Expr.Mul (g 3, 3), Expr.Imm 10));
      inv (Expr.Cmp (Expr.Ge, Expr.Mod (g 4, 4), Expr.Imm 1));
      inv (Expr.Cmp (Expr.Eq, Expr.Mod (g 4, 0), Expr.Imm 0));
      inv (Expr.Cmp (Expr.Eq, Expr.Notv (g 3), Expr.V (g 4)));
      inv (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Band, g 3, g 4), Expr.Imm 0));
      inv (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Bor, g 3, g 4), Expr.V (g 5)));
      inv (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Plus, g 3, g 4), Expr.V (g 5)));
      inv (Expr.Cmp (Expr.Le, Expr.Bin (Expr.Minus, g 5, g 3), Expr.Imm 8));
      inv (Expr.In (Expr.V (g 3), []));
      inv (Expr.In (Expr.V (g 3), [ 7 ]));
      inv (Expr.In (Expr.V (g 4), [ 0; 4; 8; 12 ]));
      inv (Expr.In (Expr.Mod (g 5, 8), List.init 12 (fun i -> i)));
      inv ~point:"l.sub" (Expr.Cmp (Expr.Eq, Expr.V (g 3), Expr.Imm 0)) ]
  in
  let battery = Ovl.of_invariants invs in
  let mk point a b c =
    record ~point
      [ (Var.post_id (Var.Gpr 3), a);
        (Var.post_id (Var.Gpr 4), b);
        (Var.post_id (Var.Gpr 5), c) ]
  in
  let trace =
    [ mk "l.add" 5 4 9; mk "l.add" 7 0 0; mk "l.sub" 0 1 2;
      mk "l.add" 0xFFFF_FFFF 12 3; mk "l.mul" 3 3 3; mk "l.add" 2 8 10 ]
  in
  check_compiled_matches battery trace "grammar";
  (* the ignore mask drops exactly the masked assertion *)
  let compiled = Assertions.Compile.compile battery in
  let all = Assertions.Compile.fired_set compiled trace in
  Alcotest.(check bool) "something fires" true (Array.exists Fun.id all);
  Alcotest.(check bool) "all-masked is silent" false
    (Assertions.Compile.detects ~ignore:all compiled trace)

(* QCheck: over random batteries and random traces, the compiled monitor
   reproduces the oracle's (assertion, step) firing sequence exactly. *)
let qcheck_compiled_equals_interpretive =
  let open QCheck in
  let gid = Gen.int_range 0 (Var.total - 1) in
  let gpoint = Gen.oneofl [ "l.add"; "l.sub"; "l.and" ] in
  let gterm =
    Gen.frequency
      [ (4, Gen.map (fun id -> Expr.V id) gid);
        (2, Gen.map (fun k -> Expr.Imm k) (Gen.int_bound 64));
        (1, Gen.map2 (fun id k -> Expr.Mul (id, k)) gid (Gen.int_bound 5));
        (1, Gen.map2 (fun id k -> Expr.Mod (id, k)) gid (Gen.int_bound 5));
        (1, Gen.map (fun id -> Expr.Notv id) gid);
        (1,
         Gen.map3 (fun op a b -> Expr.Bin (op, a, b))
           (Gen.oneofl [ Expr.Band; Expr.Bor; Expr.Plus; Expr.Minus ])
           gid gid) ]
  in
  let gcmp = Gen.oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
  let gbody =
    Gen.frequency
      [ (3, Gen.map3 (fun op a b -> Expr.Cmp (op, a, b)) gcmp gterm gterm);
        (1,
         Gen.map2 (fun t vs -> Expr.In (t, vs)) gterm
           (Gen.list_size (Gen.int_bound 10) (Gen.int_bound 64))) ]
  in
  let ginv = Gen.map2 (fun point body -> { Expr.point; body }) gpoint gbody in
  let grecord =
    Gen.map2
      (fun point vals ->
         let values = Array.make Var.total 0 in
         List.iteri (fun i v -> values.(i mod Var.total) <- v) vals;
         { Trace.Record.point; values; mask = Array.make Var.total true })
      gpoint
      (Gen.list_size (Gen.return Var.total)
         (Gen.oneof [ Gen.int_bound 64; Gen.int_bound 0xFFFF_FFFF ]))
  in
  let arb =
    make
      ~print:(fun (invs, records) ->
          Printf.sprintf "%d invariants / %d records: %s"
            (List.length invs) (List.length records)
            (String.concat "; " (List.map Expr.to_string invs)))
      Gen.(pair (list_size (int_range 1 6) ginv)
             (list_size (int_range 0 20) grecord))
  in
  Test.make ~name:"compiled == interpretive (random batteries)" ~count:300 arb
    (fun (invs, records) ->
       let battery = Ovl.of_invariants invs in
       let compiled = Assertions.Compile.compile battery in
       let fi = firing_keys (Assertions.Monitor.run battery records) in
       let fc = firing_keys (Assertions.Compile.run compiled records) in
       fi = fc
       && Assertions.Monitor.detects battery records
          = Assertions.Compile.detects compiled records)

(* ---- cost model ---- *)

let test_cost_positive_and_monotone () =
  let simple =
    Ovl.of_invariant (inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)))
  in
  let complex =
    Ovl.of_invariant
      (inv (Expr.Cmp (Expr.Eq,
                      Expr.Bin (Expr.Minus, Var.post_id (Var.Gpr 9), Var.orig_id Var.Pc),
                      Expr.Imm 8)))
  in
  let cs = Assertions.Cost.assertion_cost simple in
  let cc = Assertions.Cost.assertion_cost complex in
  Alcotest.(check bool) "positive" true (cs.Assertions.Cost.luts > 0);
  Alcotest.(check bool) "adders and history cost more" true
    (cc.Assertions.Cost.luts > cs.Assertions.Cost.luts);
  Alcotest.(check bool) "history flip-flops" true (cc.Assertions.Cost.flipflops >= 32)

let test_battery_shares_history () =
  let i1 = inv (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr)) in
  let i2 = inv ~point:"l.sub" (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr)) in
  let both = Assertions.Cost.battery_overhead (Ovl.of_invariants [ i1; i2 ]) in
  let one = Assertions.Cost.battery_overhead (Ovl.of_invariants [ i1 ]) in
  (* Shared ESR holding register: the second assertion adds comparator
     logic but no second 32-bit register. *)
  Alcotest.(check int) "flip-flops shared" one.Assertions.Cost.total_ffs
    both.Assertions.Cost.total_ffs;
  Alcotest.(check bool) "logic still grows" true
    (both.Assertions.Cost.total_luts > one.Assertions.Cost.total_luts)

let test_overhead_percentages () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let o = Assertions.Cost.battery_overhead battery in
  Alcotest.(check bool) "small battery is a small fraction" true
    (o.Assertions.Cost.lut_pct > 0.0 && o.Assertions.Cost.lut_pct < 2.0);
  Alcotest.(check (float 1e-9)) "no delay" 0.0 o.Assertions.Cost.delay_ns_added

(* ---- Verilog back end ---- *)

let test_verilog_structure () =
  let battery =
    Ovl.of_invariants
      [ inv ~point:"l.sys" (Expr.Cmp (Expr.Eq, v_post Var.Pc, Expr.Imm 0xC00));
        inv ~point:"l.rfe" (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr)) ]
  in
  let v = Assertions.Verilog.emit battery in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let check_has sub = Alcotest.(check bool) sub true (contains v sub) in
  check_has "module scifinder_monitor";
  check_has "input wire valid";
  check_has "output wire any_fire";
  (* the syscall vector comparison and its opcode qualifier *)
  check_has "32'h00000C00";
  check_has "6'h08";
  (* the orig() operand gets a holding register *)
  check_has "ESR0_prev";
  check_has "ESR0_prev <= ESR0";
  check_has "endmodule"

let test_verilog_fire_polarity () =
  (* fire asserts the NEGATION of the invariant expression. *)
  let battery =
    Ovl.of_invariants
      [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let v = Assertions.Verilog.emit battery in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "negated body" true
    (contains v "!(GPR0 == 32'h00000000)")

let test_verilog_signed_diff () =
  let battery =
    Ovl.of_invariants
      [ inv ~point:"l.sfltu"
          (Expr.Cmp (Expr.Ge, Expr.V (Var.insn_id Var.Prod_u), Expr.Imm 0)) ]
  in
  let v = Assertions.Verilog.emit battery in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "signed comparison for Diff vars" true
    (contains v "$signed(PROD_U)")

let test_baseline_constants () =
  Alcotest.(check int) "baseline LUTs (Table 9)" 10073 Assertions.Cost.baseline_luts;
  Alcotest.(check (float 1e-9)) "baseline power" 3.24 Assertions.Cost.baseline_power_w;
  Alcotest.(check (float 1e-9)) "baseline delay" 19.1 Assertions.Cost.baseline_delay_ns

let () =
  Alcotest.run "assertions"
    [ ("templates",
       [ Alcotest.test_case "edge" `Quick test_edge_template;
         Alcotest.test_case "next for orig()" `Quick test_next_template_for_orig;
         Alcotest.test_case "delta bounds" `Quick test_delta_template_for_bounds;
         Alcotest.test_case "unique names" `Quick test_battery_names_unique ]);
      ("monitor",
       [ Alcotest.test_case "fires" `Quick test_monitor_fires_on_violation;
         Alcotest.test_case "silent" `Quick test_monitor_silent_on_clean;
         Alcotest.test_case "point scoping" `Quick test_monitor_point_scoping;
         Alcotest.test_case "dedup" `Quick test_fired_assertions_dedup;
         Alcotest.test_case "firing order" `Quick test_monitor_firing_order;
         Alcotest.test_case "early exit" `Quick
           test_first_firing_short_circuit ]);
      ("compile",
       [ Alcotest.test_case "grammar coverage" `Quick
           test_compile_covers_grammar;
         QCheck_alcotest.to_alcotest qcheck_compiled_equals_interpretive ]);
      ("verilog",
       [ Alcotest.test_case "structure" `Quick test_verilog_structure;
         Alcotest.test_case "fire polarity" `Quick test_verilog_fire_polarity;
         Alcotest.test_case "signed diff" `Quick test_verilog_signed_diff ]);
      ("cost",
       [ Alcotest.test_case "monotone" `Quick test_cost_positive_and_monotone;
         Alcotest.test_case "history sharing" `Quick test_battery_shares_history;
         Alcotest.test_case "percentages" `Quick test_overhead_percentages;
         Alcotest.test_case "baseline" `Quick test_baseline_constants ]) ]
