(* The seeded semantic-mutant generator and the mutant-at-scale campaign:
   determinism, §5.5 classification, fault purity (stateless hooks), and
   the compiled-vs-interpretive equality over fuzz-generated triggers
   with injected mutants. *)

module Mutant = Bugs.Mutant
module Registry = Bugs.Registry
module Pipeline = Scifinder_core.Pipeline

let sig_of (m : Mutant.t) =
  Printf.sprintf "%s|%s|%s|%s" m.id (Mutant.kind_name m.kind)
    (Registry.category_name m.category) m.synopsis

(* ---- generation determinism ---- *)

let test_generate_deterministic () =
  let a = Mutant.generate ~seed:7 ~count:24
  and b = Mutant.generate ~seed:7 ~count:24 in
  Alcotest.(check (list string)) "same stream" (List.map sig_of a)
    (List.map sig_of b);
  let c = Mutant.generate ~seed:8 ~count:24 in
  Alcotest.(check bool) "different seed differs" true
    (List.map sig_of a <> List.map sig_of c)

let test_generate_prefix_stable () =
  let short = Mutant.generate ~seed:7 ~count:8
  and long = Mutant.generate ~seed:7 ~count:16 in
  Alcotest.(check (list string)) "prefix agrees" (List.map sig_of short)
    (List.map sig_of (List.filteri (fun i _ -> i < 8) long))

let test_all_categories_covered () =
  let muts = Mutant.generate ~seed:3 ~count:24 in
  let cats =
    List.sort_uniq compare
      (List.map (fun (m : Mutant.t) -> Registry.category_name m.category)
         muts)
  in
  Alcotest.(check (list string)) "all six classes"
    [ "CF"; "CR"; "IE"; "MA"; "RU"; "XR" ] cats

let test_kind_classification () =
  Alcotest.(check string) "wrong-result is CR" "CR"
    (Registry.category_name (Mutant.category_of_kind Mutant.Wrong_result));
  Alcotest.(check string) "skipped-writeback is IE" "IE"
    (Registry.category_name (Mutant.category_of_kind Mutant.Skipped_writeback));
  Alcotest.(check string) "exception-entry is XR" "XR"
    (Registry.category_name (Mutant.category_of_kind Mutant.Exception_entry));
  Alcotest.(check string) "memory-address is MA" "MA"
    (Registry.category_name (Mutant.category_of_kind Mutant.Memory_address));
  Alcotest.(check string) "privilege is RU" "RU"
    (Registry.category_name (Mutant.category_of_kind Mutant.Privilege))

(* ---- fault purity: hooks are stateless closures ---- *)

let trace_digest records =
  let b = Buffer.create 4096 in
  List.iter
    (fun (r : Trace.Record.t) ->
       Buffer.add_string b r.Trace.Record.point;
       Array.iter (fun v -> Buffer.add_string b (string_of_int v))
         r.Trace.Record.values;
       Array.iter (fun m -> Buffer.add_char b (if m then '1' else '0'))
         r.Trace.Record.mask)
    records;
  Digest.to_hex (Digest.string (Buffer.contents b))

let test_fault_capture_deterministic () =
  let trigger = Fuzz.Gen.candidate ~seed:3 ~index:0 in
  List.iter
    (fun (m : Mutant.t) ->
       let once =
         trace_digest (Sci.Identify.capture_trigger ~fault:m.fault trigger)
       and twice =
         trace_digest (Sci.Identify.capture_trigger ~fault:m.fault trigger)
       in
       Alcotest.(check string) (m.id ^ " capture is pure") once twice)
    (Mutant.generate ~seed:3 ~count:8)

(* A healthy share of mutants must actually perturb ISA-visible behaviour
   on at least one of a couple of fuzz triggers. *)
let test_mutants_perturb_behaviour () =
  let triggers =
    [ Fuzz.Gen.candidate ~seed:3 ~index:0;
      Fuzz.Gen.candidate ~seed:3 ~index:1 ]
  in
  let clean = List.map (fun w -> trace_digest (Sci.Identify.capture_trigger w)) triggers in
  let muts = Mutant.generate ~seed:3 ~count:24 in
  let perturbed =
    List.filter
      (fun (m : Mutant.t) ->
         List.exists2
           (fun w c ->
              trace_digest (Sci.Identify.capture_trigger ~fault:m.fault w)
              <> c)
           triggers clean)
      muts
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d/24 mutants perturb" (List.length perturbed))
    true
    (List.length perturbed >= 6)

(* ---- compiled == interpretive over fuzz triggers + injected mutants ---- *)

(* Mine a small real battery from the first corpus workload, then check
   that the compiled monitor reproduces the interpretive oracle's firing
   sequence on buggy traces of fuzz-generated programs. *)
let mined_battery =
  lazy
    (let w = List.hd Workloads.Suite.all in
     let engine = Daikon.Engine.create () in
     ignore
       (Trace.Runner.stream ~tick_period:w.Workloads.Rt.tick_period
          ~entry:w.Workloads.Rt.entry
          ~observer:(Daikon.Engine.observe engine) w.Workloads.Rt.image);
     let invs = Daikon.Engine.invariants engine in
     Assertions.Ovl.of_invariants
       (List.filteri (fun i _ -> i < 400) invs))

let test_compiled_matches_on_mutant_traces () =
  let battery = Lazy.force mined_battery in
  let compiled = Assertions.Compile.compile battery in
  let muts = Array.of_list (Mutant.generate ~seed:11 ~count:10) in
  let keys firings =
    List.map
      (fun (f : Assertions.Monitor.firing) ->
         (f.assertion.Assertions.Ovl.name, f.Assertions.Monitor.step))
      firings
  in
  for i = 0 to 9 do
    let w = Fuzz.Gen.candidate ~seed:11 ~index:i in
    let m = muts.(i) in
    let buggy = Sci.Identify.capture_trigger ~fault:m.Mutant.fault w in
    let fi = keys (Assertions.Monitor.run battery buggy) in
    let fc = keys (Assertions.Compile.run compiled buggy) in
    Alcotest.(check (list (pair string int)))
      (Printf.sprintf "%s on %s" m.Mutant.id w.Workloads.Rt.name) fi fc
  done

(* ---- campaign smoke: small but end-to-end ---- *)

let test_campaign_deterministic () =
  let battery = Lazy.force mined_battery in
  let sci =
    List.map (fun (a : Assertions.Ovl.t) -> a.Assertions.Ovl.invariant)
      battery
  in
  let run () =
    Pipeline.campaign ~seed:9 ~mutants:16 ~triggers:6 ~tries:2 ~sci ()
  in
  let c1 = run () and c2 = run () in
  Alcotest.(check string) "fingerprint stable" c1.Pipeline.fingerprint
    c2.Pipeline.fingerprint;
  Alcotest.(check int) "all outcomes reported" 16
    (List.length c1.Pipeline.outcomes);
  Alcotest.(check int) "classes partition the mutants" 16
    (List.fold_left
       (fun acc (cl : Pipeline.campaign_class) -> acc + cl.class_total)
       0 c1.Pipeline.classes);
  List.iter
    (fun (o : Pipeline.mutant_outcome) ->
       Alcotest.(check bool) "latency iff detected" o.detected
         (o.latency >= 0))
    c1.Pipeline.outcomes;
  Alcotest.(check int) "detected totals agree" c1.Pipeline.detected_total
    c2.Pipeline.detected_total

let () =
  Alcotest.run "mutant"
    [ ("generate",
       [ Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
         Alcotest.test_case "prefix stable" `Quick test_generate_prefix_stable;
         Alcotest.test_case "all categories" `Quick test_all_categories_covered;
         Alcotest.test_case "classification" `Quick test_kind_classification ]);
      ("faults",
       [ Alcotest.test_case "capture pure" `Quick
           test_fault_capture_deterministic;
         Alcotest.test_case "perturbs behaviour" `Quick
           test_mutants_perturb_behaviour ]);
      ("campaign",
       [ Alcotest.test_case "compiled == interpretive on mutants" `Quick
           test_compiled_matches_on_mutant_traces;
         Alcotest.test_case "deterministic" `Quick
           test_campaign_deterministic ]) ]
