(* The trace corpus: every workload terminates cleanly, the suite covers
   the full instruction set (§3.1.1's coverage requirement), and traces
   are deterministic. *)

let run_workload (w : Workloads.Rt.t) =
  let records = ref 0 in
  let points = Hashtbl.create 97 in
  let outcome =
    Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
      ~observer:(fun r ->
          incr records;
          Hashtbl.replace points r.Trace.Record.point ())
      w.image
  in
  (outcome, !records, points)

let termination_tests =
  List.map
    (fun (w : Workloads.Rt.t) ->
       Alcotest.test_case w.name `Quick (fun () ->
           let outcome, records, _ = run_workload w in
           Alcotest.(check bool) "halts with exit" true
             (outcome = `Halted Cpu.Machine.Exit);
           Alcotest.(check bool) "produces records" true (records > 50)))
    Workloads.Suite.all

let test_suite_covers_isa () =
  let seen = Hashtbl.create 97 in
  List.iter
    (fun (w : Workloads.Rt.t) ->
       let _, _, points = run_workload w in
       Hashtbl.iter (fun p () -> Hashtbl.replace seen p ()) points)
    Workloads.Suite.all;
  let missing =
    List.filter (fun m -> not (Hashtbl.mem seen m)) Isa.Insn.all_mnemonics
  in
  Alcotest.(check (list string)) "all mnemonics exercised" [] missing

let test_exceptions_exercised () =
  (* The vmlinux workload must hit syscalls, traps, illegal instructions,
     alignment, range and tick exceptions. *)
  let w = Option.get (Workloads.Suite.by_name "vmlinux") in
  let vec_seen = Hashtbl.create 16 in
  ignore
    (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
       ~observer:(fun r ->
           let v = Trace.Record.get r (Trace.Var.insn_id Trace.Var.Vec) in
           if v <> 0 then Hashtbl.replace vec_seen v ())
       w.image);
  List.iter
    (fun (name, vector) ->
       Alcotest.(check bool) (name ^ " exercised") true
         (Hashtbl.mem vec_seen vector))
    [ ("syscall", 0xC00); ("trap", 0xE00); ("illegal", 0x700);
      ("alignment", 0x600); ("range", 0xB00); ("tick", 0x500) ]

let test_user_mode_exercised () =
  let w = Option.get (Workloads.Suite.by_name "vmlinux") in
  let user_seen = ref false in
  ignore
    (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
       ~observer:(fun r ->
           if Trace.Record.get r (Trace.Var.orig_id Trace.Var.Sm) = 0 then
             user_seen := true)
       w.image);
  Alcotest.(check bool) "ran in user mode" true !user_seen

let test_names_unique () =
  let names = Workloads.Suite.names in
  Alcotest.(check int) "17 programs, as in §5.1" 17 (List.length names);
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_figure3_groups_cover_suite () =
  let grouped = List.concat Workloads.Suite.figure3_groups in
  Alcotest.(check (list string)) "group contents = suite"
    (List.sort String.compare Workloads.Suite.names)
    (List.sort String.compare grouped);
  Alcotest.(check int) "one label per group"
    (List.length Workloads.Suite.figure3_groups)
    (List.length Workloads.Suite.figure3_labels)

let test_by_name () =
  Alcotest.(check bool) "present" true (Workloads.Suite.by_name "gzip" <> None);
  Alcotest.(check bool) "absent" true (Workloads.Suite.by_name "doom" = None)

let test_trace_determinism () =
  let w = Option.get (Workloads.Suite.by_name "basicmath") in
  let digest () =
    let acc = ref 0 in
    ignore
      (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
         ~observer:(fun r ->
             Array.iter (fun x -> acc := (!acc * 31) + x) r.Trace.Record.values)
         w.image);
    !acc
  in
  Alcotest.(check int) "bit-identical traces" (digest ()) (digest ())

(* Registration: generated workloads join the suite by name; collisions
   with built-ins or earlier registrations must be rejected loudly (a
   silent shadow would poison the snapshot cache key space). *)
let test_registration () =
  let mk name = Workloads.Rt.build ~name Workloads.Rt.exit_program in
  Fun.protect ~finally:Workloads.Suite.reset_registered (fun () ->
      Workloads.Suite.reset_registered ();
      let w = mk "reg-test-a" in
      Workloads.Suite.register w;
      Alcotest.(check bool) "registered resolves" true
        (Workloads.Suite.by_name "reg-test-a" = Some w);
      Alcotest.check_raises "duplicate registration"
        (Workloads.Suite.Duplicate_workload "reg-test-a")
        (fun () -> Workloads.Suite.register (mk "reg-test-a"));
      Alcotest.check_raises "collision with a built-in"
        (Workloads.Suite.Duplicate_workload "pi")
        (fun () -> Workloads.Suite.register (mk "pi"));
      Workloads.Suite.reset_registered ();
      Alcotest.(check bool) "reset drops registrations" true
        (Workloads.Suite.by_name "reg-test-a" = None))

let () =
  Alcotest.run "workloads"
    [ ("termination", termination_tests);
      ("coverage",
       [ Alcotest.test_case "ISA coverage" `Slow test_suite_covers_isa;
         Alcotest.test_case "exceptions" `Quick test_exceptions_exercised;
         Alcotest.test_case "user mode" `Quick test_user_mode_exercised;
         Alcotest.test_case "names" `Quick test_names_unique;
         Alcotest.test_case "figure3 groups" `Quick test_figure3_groups_cover_suite;
         Alcotest.test_case "by_name" `Quick test_by_name;
         Alcotest.test_case "determinism" `Quick test_trace_determinism;
         Alcotest.test_case "registration" `Quick test_registration ]) ]
