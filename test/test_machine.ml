(* ISA-level processor model semantics: every instruction class, the flag
   register, the exception machinery, delay slots, and privilege. *)

open Isa
module M = Cpu.Machine
module Sr = Spr.Sr_bits
module Vec = Spr.Vector

let code_base = 0x2000

(* Assemble [insns] at the code base, preset registers, run to the l.nop 1
   exit (or [max_steps]), and return the machine. *)
let run ?(fault = Cpu.Fault.none) ?(regs = []) ?(sr_bits = []) ?(max_steps = 1000)
    ?(image_extra = []) insns =
  let items = List.map (fun i -> Asm.I i) insns @ [ Asm.I (Insn.Nop 1) ] in
  let image = Asm.assemble { Asm.origin = code_base; items } @ image_extra in
  let machine = M.create ~fault () in
  M.load_image machine image;
  M.set_pc machine code_base;
  List.iter (fun (r, v) -> machine.M.gpr.(r) <- v) regs;
  List.iter (fun bit -> machine.M.sr <- Sr.set machine.M.sr bit) sr_bits;
  ignore (M.run ~max_steps ~observer:(fun _ -> ()) machine);
  machine

let gpr m r = m.M.gpr.(r)
let check = Alcotest.(check int)

(* Build a machine without running it, for stepwise exception tests. *)
let setup ?(fault = Cpu.Fault.none) ?(regs = []) ?(sr_bits = []) insns =
  let items = List.map (fun i -> Asm.I i) insns @ [ Asm.I (Insn.Nop 1) ] in
  let image = Asm.assemble { Asm.origin = code_base; items } in
  let machine = M.create ~fault () in
  M.load_image machine image;
  M.set_pc machine code_base;
  List.iter (fun (r, v) -> machine.M.gpr.(r) <- v) regs;
  List.iter (fun bit -> machine.M.sr <- Sr.set machine.M.sr bit) sr_bits;
  machine

let step_n machine n =
  let last = ref None in
  for _ = 1 to n do
    match M.step machine with
    | M.Retired ev -> last := Some ev
    | M.Halt _ -> ()
  done;
  !last

(* ---- ALU semantics ---- *)

let test_arithmetic () =
  let open Insn in
  let m = run ~regs:[ (1, 7); (2, 5) ]
      [ Alu (Add, 3, 1, 2); Alu (Sub, 4, 1, 2); Alu (Mul, 5, 1, 2);
        Alu (Div, 6, 1, 2); Alu (Divu, 7, 1, 2) ] in
  check "add" 12 (gpr m 3);
  check "sub" 2 (gpr m 4);
  check "mul" 35 (gpr m 5);
  check "div" 1 (gpr m 6);
  check "divu" 1 (gpr m 7)

let test_signed_division () =
  let open Insn in
  let m = run ~regs:[ (1, Util.U32.of_int (-20)); (2, 3) ]
      [ Alu (Div, 3, 1, 2); Alu (Divu, 4, 1, 2) ] in
  check "signed" (Util.U32.of_int (-6)) (gpr m 3);
  check "unsigned treats as big" ((0xFFFF_FFFF - 20 + 1) / 3) (gpr m 4)

let test_division_by_zero_flags () =
  let open Insn in
  let m = run ~regs:[ (1, 9) ] [ Alu (Div, 3, 1, 0) ] in
  check "result zeroed" 0 (gpr m 3);
  check "OV set" 1 (Sr.get m.M.sr Sr.ov);
  let m = run ~regs:[ (1, 9) ] [ Alu (Divu, 3, 1, 0) ] in
  check "CY set" 1 (Sr.get m.M.sr Sr.cy)

let test_logic_and_shift () =
  let open Insn in
  let m = run ~regs:[ (1, 0xF0F0); (2, 0x0FF0) ]
      [ Alu (And, 3, 1, 2); Alu (Or, 4, 1, 2); Alu (Xor, 5, 1, 2);
        Alui (Andi, 6, 1, 0xFF); Alui (Ori, 7, 1, 0xF);
        Alui (Xori, 8, 1, 0xFFFF) ] in
  check "and" 0x00F0 (gpr m 3);
  check "or" 0xFFF0 (gpr m 4);
  check "xor" 0xFF00 (gpr m 5);
  check "andi" 0xF0 (gpr m 6);
  check "ori" 0xF0FF (gpr m 7);
  check "xori zero-extends imm" 0x0F0F (gpr m 8)

let test_shift_forms () =
  let open Insn in
  let m = run ~regs:[ (1, 0x8000_0001); (2, 4) ]
      [ Alu (Sll, 3, 1, 2); Alu (Srl, 4, 1, 2); Alu (Sra, 5, 1, 2);
        Alu (Ror, 6, 1, 2);
        Shifti (Slli, 7, 1, 1); Shifti (Srai, 8, 1, 31);
        Shifti (Rori, 10, 1, 1) ] in
  check "sll" 0x0000_0010 (gpr m 3);
  check "srl" 0x0800_0000 (gpr m 4);
  check "sra" 0xF800_0000 (gpr m 5);
  check "ror" 0x1800_0000 (gpr m 6);
  check "slli" 0x0000_0002 (gpr m 7);
  check "srai31" 0xFFFF_FFFF (gpr m 8);
  check "rori" 0xC000_0000 (gpr m 10)

let test_carry_chain () =
  let open Insn in
  let m = run ~regs:[ (1, 0xFFFF_FFFF); (2, 1); (3, 10); (4, 20) ]
      [ Alu (Add, 5, 1, 2);     (* sets CY *)
        Alu (Addc, 6, 3, 4) ]   (* consumes CY: 10+20+1 *)
  in
  check "wrap" 0 (gpr m 5);
  check "addc" 31 (gpr m 6)

let test_overflow_flag () =
  let open Insn in
  let m = run ~regs:[ (1, 0x7FFF_FFFF); (2, 1) ] [ Alu (Add, 3, 1, 2) ] in
  check "OV" 1 (Sr.get m.M.sr Sr.ov);
  check "CY" 0 (Sr.get m.M.sr Sr.cy)

let test_extensions () =
  let open Insn in
  let m = run ~regs:[ (1, 0x0001_89AB) ]
      [ Ext (Extbs, 3, 1); Ext (Extbz, 4, 1); Ext (Exths, 5, 1);
        Ext (Exthz, 6, 1); Ext (Extws, 7, 1); Ext (Extwz, 8, 1) ] in
  check "extbs" 0xFFFF_FFAB (gpr m 3);
  check "extbz" 0xAB (gpr m 4);
  check "exths" 0xFFFF_89AB (gpr m 5);
  check "exthz" 0x89AB (gpr m 6);
  check "extws" 0x0001_89AB (gpr m 7);
  check "extwz" 0x0001_89AB (gpr m 8)

let test_movhi_mac () =
  let open Insn in
  let m = run ~regs:[ (1, 3); (2, 4) ]
      [ Movhi (3, 0x1234);
        Macc (Mac, 1, 2);        (* acc = 12 *)
        Macc (Mac, 1, 2);        (* acc = 24 *)
        Macc (Msb, 2, 2);        (* acc = 8 *)
        Maci (1, 2);             (* acc = 14 *)
        Macrc 4 ] in
  check "movhi" 0x1234_0000 (gpr m 3);
  check "macrc" 14 (gpr m 4);
  check "acc cleared" 0 m.M.maclo

let test_mac_negative () =
  let open Insn in
  let m = run ~regs:[ (1, Util.U32.of_int (-3)); (2, 5) ]
      [ Macc (Mac, 1, 2); Macrc 3 ] in
  check "signed product low word" (Util.U32.of_int (-15)) (gpr m 3)

(* ---- set-flag and branches ---- *)

let test_setflag_semantics () =
  let open Insn in
  let big = 0x8000_0000 and small = 1 in
  let m = run ~regs:[ (1, big); (2, small) ] [ Setflag (Sfgtu, 1, 2) ] in
  check "unsigned gtu" 1 (Sr.get m.M.sr Sr.f);
  let m = run ~regs:[ (1, big); (2, small) ] [ Setflag (Sfgts, 1, 2) ] in
  check "signed gts flips" 0 (Sr.get m.M.sr Sr.f);
  let m = run ~regs:[ (1, 5) ] [ Setflagi (Sfeq, 1, 5) ] in
  check "sfeqi" 1 (Sr.get m.M.sr Sr.f);
  let m = run ~regs:[ (1, 5) ] [ Setflagi (Sflts, 1, 0xFFFF) ] in
  (* immediate sign-extends to -1; 5 < -1 is false *)
  check "sfltsi sext" 0 (Sr.get m.M.sr Sr.f)

let test_branch_taken_with_delay_slot () =
  let open Insn in
  (* sfeq (true); bf +3; delay slot increments r3; skipped insn sets r4 *)
  let m = run ~regs:[ (1, 2); (2, 2) ]
      [ Setflag (Sfeq, 1, 2);
        Branch_flag 3;
        Alui (Addi, 3, 3, 1);   (* delay slot: executes *)
        Alui (Addi, 4, 4, 1);   (* skipped *)
        Alui (Addi, 5, 5, 1) ]  (* branch target *)
  in
  check "delay slot ran" 1 (gpr m 3);
  check "skipped" 0 (gpr m 4);
  check "target ran" 1 (gpr m 5)

let test_branch_not_taken () =
  let open Insn in
  let m = run ~regs:[ (1, 1); (2, 2) ]
      [ Setflag (Sfeq, 1, 2);
        Branch_flag 3;
        Alui (Addi, 3, 3, 1);
        Alui (Addi, 4, 4, 1);
        Alui (Addi, 5, 5, 1) ]
  in
  check "delay slot ran" 1 (gpr m 3);
  check "fallthrough ran" 1 (gpr m 4);
  check "target also reached" 1 (gpr m 5)

let test_jal_link_value () =
  let open Insn in
  (* jal at 0x2000: r9 = 0x2008 (after the delay slot) *)
  let m = run [ Jump_link 2; Nop 0; Alui (Addi, 3, 3, 1) ] in
  check "link" (code_base + 8) (gpr m 9);
  check "target ran" 1 (gpr m 3)

let test_jr_roundtrip () =
  let open Insn in
  let m = run ~regs:[ (5, code_base + 12) ]
      [ Jump_reg 5; Nop 0; Alui (Addi, 4, 4, 1); Alui (Addi, 3, 3, 1) ] in
  check "landed" 1 (gpr m 3);
  check "skipped" 0 (gpr m 4)

let test_gpr0_hardwired () =
  let open Insn in
  let m = run ~regs:[ (1, 5); (2, 6) ] [ Alu (Add, 0, 1, 2) ] in
  check "r0 still zero" 0 (gpr m 0)

(* ---- memory instructions ---- *)

let test_load_store_roundtrip () =
  let open Insn in
  let m = run ~regs:[ (1, 0x8000); (2, 0xDEADBEEF) ]
      [ Store (Sw, 0, 1, 2);
        Load (Lwz, 3, 1, 0);
        Load (Lhz, 4, 1, 0); Load (Lhs, 5, 1, 0);
        Load (Lbz, 6, 1, 3); Load (Lbs, 7, 1, 3) ] in
  check "lwz" 0xDEADBEEF (gpr m 3);
  check "lhz top half" 0xDEAD (gpr m 4);
  check "lhs sign-extends" 0xFFFF_DEAD (gpr m 5);
  check "lbz last byte" 0xEF (gpr m 6);
  check "lbs sign-extends" 0xFFFF_FFEF (gpr m 7)

let test_store_byte_half () =
  let open Insn in
  let m = run ~regs:[ (1, 0x8000); (2, 0x11223344) ]
      [ Store (Sb, 0, 1, 2); Store (Sh, 2, 1, 2); Load (Lwz, 3, 1, 0) ] in
  check "byte then half" 0x4400_3344 (gpr m 3)

let test_negative_offset () =
  let open Insn in
  let m = run ~regs:[ (1, 0x8004); (2, 77) ]
      [ Store (Sw, 0xFFFC, 1, 2); (* offset -4 *)
        Load (Lwz, 3, 1, 0xFFFC) ] in
  check "negative offset" 77 (gpr m 3)

(* ---- exceptions ---- *)

let test_syscall_entry_state () =
  let open Insn in
  let m = setup [ Sys 7 ] in
  ignore (step_n m 1);
  check "vectored" (Vec.address Vec.Syscall) m.M.pc;
  check "ESR saved" Sr.reset m.M.esr;
  check "EPCR = next insn" (code_base + 4) m.M.epcr;
  check "SM set" 1 (Sr.get m.M.sr Sr.sm);
  check "TEE cleared" 0 (Sr.get m.M.sr Sr.tee);
  check "DSX clear" 0 (Sr.get m.M.sr Sr.dsx)

let test_syscall_in_delay_slot () =
  let open Insn in
  let m = setup [ Jump 2; Sys 1; Nop 0 ] in
  ignore (step_n m 2);
  check "EPCR = branch" code_base m.M.epcr;
  check "DSX set" 1 (Sr.get m.M.sr Sr.dsx)

let test_illegal_instruction () =
  let items = [ Asm.Word 0xEC00_0000; Asm.I (Insn.Nop 1) ] in
  let image = Asm.assemble { Asm.origin = code_base; items } in
  let m = M.create () in
  M.load_image m image;
  M.set_pc m code_base;
  (match M.step m with
   | M.Retired ev ->
     Alcotest.(check bool) "exception" true (ev.M.ev_exn = Some Vec.Illegal)
   | M.Halt _ -> Alcotest.fail "halted early");
  check "vectored" (Vec.address Vec.Illegal) m.M.pc;
  check "EPCR = faulting insn" code_base m.M.epcr

let test_alignment_exception () =
  let open Insn in
  let m = setup ~regs:[ (1, 0x8001) ] [ Load (Lwz, 3, 1, 0) ] in
  ignore (step_n m 1);
  check "at alignment vector" (Vec.address Vec.Alignment) m.M.pc;
  check "EPCR = faulting insn" code_base m.M.epcr;
  check "EEAR holds address" 0x8001 m.M.eear

let test_range_exception () =
  let open Insn in
  let m = setup ~sr_bits:[ Sr.ove ] ~regs:[ (1, 0x7FFF_FFFF); (2, 1) ]
      [ Alu (Add, 3, 1, 2) ] in
  ignore (step_n m 1);
  check "at range vector" (Vec.address Vec.Range) m.M.pc;
  check "EPCR = offending insn" code_base m.M.epcr;
  check "destination not written" 0 (gpr m 3)

let test_rfe_restores () =
  let open Insn in
  let m = setup
      [ Mtspr (0, 1, Spr.address Spr.Epcr0);   (* EPCR <- r1 *)
        Mtspr (0, 2, Spr.address Spr.Esr0);    (* ESR <- r2 *)
        Rfe ]
      ~regs:[ (1, code_base + 16); (2, Sr.reset lor (1 lsl Sr.f)) ]
  in
  ignore (step_n m 3);
  check "pc from EPCR" (code_base + 16) m.M.pc;
  check "flag restored" 1 (Sr.get m.M.sr Sr.f)

let test_user_mode_protection () =
  let open Insn in
  (* Clear SM via rfe to user code, then try mfspr: illegal exception. *)
  let m = setup
      [ Mtspr (0, 1, Spr.address Spr.Epcr0);
        Mtspr (0, 2, Spr.address Spr.Esr0);
        Rfe;
        Mfspr (3, 0, Spr.address Spr.Sr) ]   (* user mode: illegal *)
      ~regs:[ (1, code_base + 12); (2, 1 lsl Sr.fo) (* SM clear *) ]
  in
  ignore (step_n m 4);
  check "vectored to illegal" (Vec.address Vec.Illegal) m.M.pc;
  check "r3 untouched" 0 (gpr m 3)

let test_rfe_in_user_mode_illegal () =
  let open Insn in
  let m = setup
      [ Mtspr (0, 1, Spr.address Spr.Epcr0);
        Mtspr (0, 2, Spr.address Spr.Esr0);
        Rfe;
        Rfe ]   (* second rfe runs in user mode *)
      ~regs:[ (1, code_base + 12); (2, 1 lsl Sr.fo) ]
  in
  ignore (step_n m 4);
  check "illegal vector" (Vec.address Vec.Illegal) m.M.pc

let test_tick_timer () =
  let open Insn in
  let items =
    List.map (fun i -> Asm.I i)
      [ Mfspr (1, 0, Spr.address Spr.Sr);
        Alui (Ori, 1, 1, 1 lsl Sr.tee);
        Mtspr (0, 1, Spr.address Spr.Sr);
        Alui (Addi, 2, 2, 1); Alui (Addi, 2, 2, 1); Alui (Addi, 2, 2, 1);
        Alui (Addi, 2, 2, 1); Alui (Addi, 2, 2, 1); Alui (Addi, 2, 2, 1);
        Nop 1 ]
  in
  let image = Asm.assemble { Asm.origin = code_base; items } in
  let machine = M.create ~tick_period:4 () in
  M.load_image machine image;
  M.set_pc machine code_base;
  let ticked = ref false in
  ignore (M.run ~max_steps:32
            ~observer:(fun ev -> if ev.M.ev_exn = Some Vec.Tick_timer then ticked := true)
            machine);
  Alcotest.(check bool) "tick fired" true !ticked

let test_exit_convention () =
  let open Insn in
  let m = run [ Alui (Addi, 1, 1, 1) ] in
  Alcotest.(check bool) "halted with Exit" true (m.M.halted = Some M.Exit)

let test_spr_moves () =
  let open Insn in
  let m = run ~regs:[ (1, 0xABCD) ]
      [ Mtspr (0, 1, Spr.address Spr.Eear0);
        Mfspr (2, 0, Spr.address Spr.Eear0);
        Mfspr (3, 0, Spr.address Spr.Vr) ] in
  check "eear write/read" 0xABCD (gpr m 2);
  Alcotest.(check bool) "version register nonzero" true (gpr m 3 <> 0)

(* A step-budget abort must be reported (`Max_steps) AND counted in the
   machine's telemetry — never silently folded into a normal halt. *)
let test_step_budget_truncation () =
  let open Insn in
  (* l.j 0 with no exit: spins at the jump forever. *)
  let image = [ (code_base, Code.encode (Jump 0)) ] in
  let machine = M.create () in
  M.load_image machine image;
  M.set_pc machine code_base;
  let outcome = M.run ~max_steps:50 ~observer:(fun _ -> ()) machine in
  Alcotest.(check bool) "distinct outcome" true (outcome = `Max_steps);
  check "telemetry counts the truncation" 1 machine.M.tel.M.truncated;
  Alcotest.(check bool) "not halted" true (machine.M.halted = None);
  let m2 = run [ Alui (Addi, 3, 3, 1) ] in
  check "clean exit is not a truncation" 0 m2.M.tel.M.truncated

let test_sr_write_keeps_fo () =
  let open Insn in
  let m = run ~regs:[ (1, 1) ] [ Mtspr (0, 1, Spr.address Spr.Sr) ] in
  check "FO forced" 1 (Sr.get m.M.sr Sr.fo);
  check "SM from write" 1 (Sr.get m.M.sr Sr.sm)

let () =
  Alcotest.run "machine"
    [ ("alu",
       [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
         Alcotest.test_case "signed division" `Quick test_signed_division;
         Alcotest.test_case "divide by zero" `Quick test_division_by_zero_flags;
         Alcotest.test_case "logic" `Quick test_logic_and_shift;
         Alcotest.test_case "shifts" `Quick test_shift_forms;
         Alcotest.test_case "carry chain" `Quick test_carry_chain;
         Alcotest.test_case "overflow flag" `Quick test_overflow_flag;
         Alcotest.test_case "extensions" `Quick test_extensions;
         Alcotest.test_case "movhi/mac" `Quick test_movhi_mac;
         Alcotest.test_case "mac negative" `Quick test_mac_negative ]);
      ("control",
       [ Alcotest.test_case "setflag" `Quick test_setflag_semantics;
         Alcotest.test_case "branch taken" `Quick test_branch_taken_with_delay_slot;
         Alcotest.test_case "branch not taken" `Quick test_branch_not_taken;
         Alcotest.test_case "jal link" `Quick test_jal_link_value;
         Alcotest.test_case "jr" `Quick test_jr_roundtrip;
         Alcotest.test_case "gpr0" `Quick test_gpr0_hardwired ]);
      ("memory",
       [ Alcotest.test_case "load/store" `Quick test_load_store_roundtrip;
         Alcotest.test_case "store byte/half" `Quick test_store_byte_half;
         Alcotest.test_case "negative offset" `Quick test_negative_offset ]);
      ("exceptions",
       [ Alcotest.test_case "syscall entry" `Quick test_syscall_entry_state;
         Alcotest.test_case "syscall in delay slot" `Quick test_syscall_in_delay_slot;
         Alcotest.test_case "illegal" `Quick test_illegal_instruction;
         Alcotest.test_case "alignment" `Quick test_alignment_exception;
         Alcotest.test_case "range" `Quick test_range_exception;
         Alcotest.test_case "rfe" `Quick test_rfe_restores;
         Alcotest.test_case "user-mode protection" `Quick test_user_mode_protection;
         Alcotest.test_case "rfe in user mode" `Quick test_rfe_in_user_mode_illegal;
         Alcotest.test_case "tick timer" `Quick test_tick_timer;
         Alcotest.test_case "exit convention" `Quick test_exit_convention;
         Alcotest.test_case "step budget truncation" `Quick
           test_step_budget_truncation;
         Alcotest.test_case "spr moves" `Quick test_spr_moves;
         Alcotest.test_case "sr write keeps FO" `Quick test_sr_write_keeps_fo ]) ]
