(* Engine snapshot persistence: save -> load must give an observationally
   identical engine (same invariants, stats, and behaviour under further
   observation or merging), damaged files must be rejected as corrupt,
   and mismatched key/config/version as stale. On top of that sits the
   pipeline's shard cache: warm mining over a cache directory must be
   bit-identical to cold mining. *)

module Engine = Daikon.Engine
module Expr = Invariant.Expr
module Pipeline = Scifinder_core.Pipeline

let trace_into engine name =
  let w = Option.get (Workloads.Suite.by_name name) in
  ignore
    (Trace.Runner.stream ~tick_period:w.Workloads.Rt.tick_period
       ~entry:w.Workloads.Rt.entry
       ~observer:(Engine.observe engine) w.Workloads.Rt.image)

let mined name =
  let engine = Engine.create () in
  trace_into engine name;
  engine

let strings engine = List.map Expr.to_string (Engine.invariants engine)

let check_observationally_equal msg a b =
  Alcotest.(check (list string)) (msg ^ ": invariants") (strings a) (strings b);
  Alcotest.(check int) (msg ^ ": record count")
    (Engine.record_count a) (Engine.record_count b);
  Alcotest.(check (list string)) (msg ^ ": points")
    (Engine.points a) (Engine.points b);
  Alcotest.(check bool) (msg ^ ": candidate stats") true
    (Engine.candidate_stats a = Engine.candidate_stats b)

(* ---- encode/decode ---- *)

let test_roundtrip () =
  let e = mined "pi" in
  let back = Engine.decode (Engine.encode e) in
  check_observationally_equal "decode (encode e)" e back

let test_roundtrip_is_canonical () =
  (* Identical state must encode to identical bytes — the property that
     makes snapshot files diffable and digests meaningful. *)
  let a = Engine.encode (mined "pi") and b = Engine.encode (mined "pi") in
  Alcotest.(check bool) "same bytes" true (String.equal a b)

let test_continued_observation () =
  let live = mined "pi" in
  let restored = Engine.decode (Engine.encode live) in
  trace_into live "helloworld";
  trace_into restored "helloworld";
  check_observationally_equal "observe after load" live restored

let test_merge_after_load () =
  let sequential = Engine.create () in
  trace_into sequential "pi";
  trace_into sequential "helloworld";
  let dst = mined "pi" in
  let src = Engine.decode (Engine.encode (mined "helloworld")) in
  Engine.merge_into dst src;
  Alcotest.(check (list string)) "merge of a loaded shard"
    (strings sequential) (strings dst)

let test_save_load_file () =
  let path = Filename.temp_file "scifinder_snap" ".snap" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let e = mined "helloworld" in
       Engine.save ~key:"k1" e path;
       check_observationally_equal "load (save e)" e
         (Engine.load ~key:"k1" path))

(* ---- rejection ---- *)

let expect_corrupt msg data =
  match Engine.decode data with
  | _ -> Alcotest.fail ("expected Corrupt_snapshot: " ^ msg)
  | exception Engine.Corrupt_snapshot _ -> ()

let expect_stale msg f =
  match f () with
  | _ -> Alcotest.fail ("expected Stale_snapshot: " ^ msg)
  | exception Engine.Stale_snapshot _ -> ()

let test_corrupt () =
  let data = Engine.encode (mined "pi") in
  expect_corrupt "empty" "";
  expect_corrupt "bad magic" ("XXXXXXXX" ^ String.sub data 8 64);
  expect_corrupt "truncated half"
    (String.sub data 0 (String.length data / 2));
  expect_corrupt "truncated by one byte"
    (String.sub data 0 (String.length data - 1));
  (* Flip one payload byte: the digest check must catch it. *)
  let flipped = Bytes.of_string data in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  expect_corrupt "bit flip" (Bytes.to_string flipped)

let test_stale () =
  let e = mined "pi" in
  let data = Engine.encode ~key:"the-key" e in
  expect_stale "wrong key" (fun () -> Engine.decode ~key:"other-key" data);
  expect_stale "missing key" (fun () -> Engine.decode data);
  expect_stale "wrong config" (fun () ->
      Engine.decode ~key:"the-key"
        ~config:{ Daikon.Config.default with min_samples = 7 } data);
  (* Bump the codec version byte (it sits right after the 8-byte magic
     as a one-byte varint while codec_version < 0x80). *)
  let bumped = Bytes.of_string data in
  Bytes.set bumped 8 (Char.chr (Engine.codec_version + 1));
  expect_stale "future codec version" (fun () ->
      Engine.decode ~key:"the-key" (Bytes.to_string bumped))

(* ---- the pipeline shard cache ---- *)

let with_cache_dir f =
  let dir = Filename.temp_file "scifinder_cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let names = [ "pi"; "helloworld" ]

let test_cache_warm_equals_cold () =
  with_cache_dir (fun dir ->
      let uncached = Pipeline.mine_invariants ~jobs:1 ~names () in
      let cold = Pipeline.mine_invariants ~jobs:1 ~cache_dir:dir ~names () in
      let warm = Pipeline.mine_invariants ~jobs:1 ~cache_dir:dir ~names () in
      let s = List.map Expr.to_string in
      Alcotest.(check (list string)) "cold equals uncached" (s uncached) (s cold);
      Alcotest.(check (list string)) "warm equals cold" (s cold) (s warm);
      Alcotest.(check bool) "shards on disk" true
        (Sys.file_exists (Filename.concat dir "pi.snap")))

let test_cache_full_mine () =
  with_cache_dir (fun dir ->
      let groups = [ [ "pi" ]; [ "helloworld" ] ] in
      let labels = [ "pi"; "helloworld" ] in
      let cold = Pipeline.mine ~jobs:1 ~groups ~labels ~cache_dir:dir () in
      let warm = Pipeline.mine ~jobs:1 ~groups ~labels ~cache_dir:dir () in
      Alcotest.(check (list string)) "invariants"
        (List.map Expr.to_string cold.Pipeline.invariants)
        (List.map Expr.to_string warm.Pipeline.invariants);
      Alcotest.(check bool) "figure3 rows" true
        (cold.Pipeline.figure3 = warm.Pipeline.figure3);
      Alcotest.(check int) "records"
        cold.Pipeline.record_count warm.Pipeline.record_count)

let test_cache_rejects_damage () =
  with_cache_dir (fun dir ->
      let cold = Pipeline.mine_invariants ~jobs:1 ~cache_dir:dir ~names () in
      (* Truncate one shard: the next run must silently re-mine it. *)
      let victim = Filename.concat dir "pi.snap" in
      let len = (Unix.stat victim).Unix.st_size in
      let fd = Unix.openfile victim [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (len / 2);
      Unix.close fd;
      let again = Pipeline.mine_invariants ~jobs:1 ~cache_dir:dir ~names () in
      let s = List.map Expr.to_string in
      Alcotest.(check (list string)) "re-mined after truncation"
        (s cold) (s again))

let test_cache_stale_config () =
  with_cache_dir (fun dir ->
      let tight = { Daikon.Config.default with min_samples = 500 } in
      let a = Pipeline.mine_invariants ~jobs:1 ~cache_dir:dir ~names () in
      (* Different fingerprint: must not serve the default-config shards. *)
      let b =
        Pipeline.mine_invariants ~config:tight ~jobs:1 ~cache_dir:dir ~names ()
      in
      let c = Pipeline.mine_invariants ~config:tight ~jobs:1 ~names () in
      let s = List.map Expr.to_string in
      Alcotest.(check (list string)) "tight config re-mined, not served stale"
        (s c) (s b);
      Alcotest.(check bool) "the two configs genuinely differ" true
        (s a <> s b))

let test_cache_slash_named_workload () =
  with_cache_dir (fun dir ->
      (* A registered/fuzz workload is free to carry '/' or '..' in its
         name; its shard must cache INSIDE the cache dir (percent-encoded
         filename) and reload from there, never escape. *)
      let base = Option.get (Workloads.Suite.by_name "helloworld") in
      let evil = { base with Workloads.Rt.name = "../escapee/x" } in
      let groups = [ [ evil.Workloads.Rt.name ] ] and labels = [ "evil" ] in
      let mine () =
        Pipeline.mine ~workloads:[ evil ] ~groups ~labels ~jobs:1
          ~cache_dir:dir ()
      in
      let cold = mine () in
      let shard =
        Filename.concat dir
          (Util.Fsname.encode evil.Workloads.Rt.name ^ ".snap")
      in
      Alcotest.(check bool) "shard cached inside the cache dir" true
        (Sys.file_exists shard);
      Alcotest.(check bool) "nothing escaped the cache dir" false
        (Sys.file_exists
           (Filename.concat (Filename.dirname dir) "escapee"));
      let warm = mine () in
      Alcotest.(check (list string)) "warm reload identical"
        (List.map Expr.to_string cold.Pipeline.invariants)
        (List.map Expr.to_string warm.Pipeline.invariants);
      Alcotest.(check int) "records identical"
        cold.Pipeline.record_count warm.Pipeline.record_count)

(* ---- the lake warm cache ----

   mine_lake over a cache directory keys its snapshot on the segment
   BLOCK digests (Segment.block_digests), so a warm hit is provably
   bound to the lake's bytes: byte-identical engine on a hit, and any
   appended or altered block changes the key and re-mines. *)

let summary_hits () =
  Obs.Metrics.counter_value (Obs.Metrics.counter "mine.cache.summary_hit")

let lake_session_digest ?cache_dir dir =
  let s = Pipeline.Session.create ?cache_dir () in
  ignore (Pipeline.Session.mine_lake s dir);
  Pipeline.Session.engine_digest s

let test_lake_cache_warm_equals_cold () =
  with_cache_dir (fun lake ->
      with_cache_dir (fun cache ->
          ignore (Pipeline.record_lake ~names ~dir:lake ());
          let reference = lake_session_digest lake in
          let cold = Pipeline.mine_lake ~cache_dir:cache lake in
          let hits = summary_hits () in
          let warm = Pipeline.mine_lake ~cache_dir:cache lake in
          Alcotest.(check int) "warm run hit the summary cache"
            (hits + 1) (summary_hits ());
          let s = List.map Expr.to_string in
          Alcotest.(check (list string)) "invariants"
            (s cold.Pipeline.invariants) (s warm.Pipeline.invariants);
          Alcotest.(check bool) "figure3 rows identical" true
            (cold.Pipeline.figure3 = warm.Pipeline.figure3);
          Alcotest.(check int) "records"
            cold.Pipeline.record_count warm.Pipeline.record_count;
          Alcotest.(check int) "trace bytes"
            cold.Pipeline.trace_bytes warm.Pipeline.trace_bytes;
          Alcotest.(check string) "warm engine bytes == uncached sequential"
            reference (lake_session_digest ~cache_dir:cache lake)))

let test_lake_cache_append_invalidates () =
  with_cache_dir (fun lake ->
      with_cache_dir (fun cache ->
          let s1 = Pipeline.record_lake ~names ~dir:lake () in
          let cold = Pipeline.mine_lake ~cache_dir:cache lake in
          (* Appending to the lake changes the block digests: the stale
             snapshot must not be served. *)
          ignore (Pipeline.record_lake ~names ~dir:lake ());
          let grown = Pipeline.mine_lake ~cache_dir:cache lake in
          Alcotest.(check int) "appended records mined, not stale-served"
            (cold.Pipeline.record_count + s1.Pipeline.lake_records)
            grown.Pipeline.record_count;
          Alcotest.(check string) "grown engine == uncached over grown lake"
            (lake_session_digest lake)
            (lake_session_digest ~cache_dir:cache lake)))

let () =
  Alcotest.run "snapshot"
    [ ("engine",
       [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
         Alcotest.test_case "canonical bytes" `Quick test_roundtrip_is_canonical;
         Alcotest.test_case "continued observation" `Quick
           test_continued_observation;
         Alcotest.test_case "merge after load" `Quick test_merge_after_load;
         Alcotest.test_case "save/load file" `Quick test_save_load_file;
         Alcotest.test_case "corrupt rejected" `Quick test_corrupt;
         Alcotest.test_case "stale rejected" `Quick test_stale ]);
      ("pipeline cache",
       [ Alcotest.test_case "warm equals cold" `Quick test_cache_warm_equals_cold;
         Alcotest.test_case "full mine summary" `Quick test_cache_full_mine;
         Alcotest.test_case "damage re-mined" `Quick test_cache_rejects_damage;
         Alcotest.test_case "config fingerprint" `Quick test_cache_stale_config;
         Alcotest.test_case "slash-named workload contained" `Quick
           test_cache_slash_named_workload ]);
      ("lake cache",
       [ Alcotest.test_case "warm equals cold (digest-keyed)" `Quick
           test_lake_cache_warm_equals_cold;
         Alcotest.test_case "append invalidates" `Quick
           test_lake_cache_append_invalidates ]) ]
