(* Invariant-set persistence: print/parse roundtrips over hand-built
   invariants, over a real mined set, and error reporting. *)

module Expr = Invariant.Expr
module Io = Invariant.Io
module Var = Trace.Var

let inv point body = { Expr.point; body }
let v_post d = Expr.V (Var.post_id d)
let v_orig d = Expr.V (Var.orig_id d)

let roundtrip invs =
  let text =
    String.concat "\n" (List.map Expr.to_string invs) ^ "\n"
  in
  Io.of_string text

let check_roundtrip invs =
  let back = roundtrip invs in
  Alcotest.(check int) "count" (List.length invs) (List.length back);
  List.iter2
    (fun a b ->
       Alcotest.(check string) (Expr.to_string a)
         (Expr.canonical a) (Expr.canonical b))
    invs back

let test_simple_forms () =
  check_roundtrip
    [ inv "l.add" (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0));
      inv "l.sys" (Expr.Cmp (Expr.Eq, v_post Var.Pc, Expr.Imm 0xC00));
      inv "l.rfe" (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr));
      inv "l.sub" (Expr.Cmp (Expr.Ne, v_post (Var.Gpr 3), v_post (Var.Gpr 4)));
      inv "l.mul" (Expr.Cmp (Expr.Lt, v_post (Var.Gpr 3), v_post (Var.Gpr 4)));
      inv "l.div" (Expr.Cmp (Expr.Ge, v_post (Var.Gpr 3), Expr.Imm (-4))) ]

let test_compound_terms () =
  check_roundtrip
    [ inv "l.jal"
        (Expr.Cmp (Expr.Eq,
                   Expr.Bin (Expr.Minus, Var.post_id (Var.Gpr 9), Var.orig_id Var.Pc),
                   Expr.Imm 8));
      inv "l.add"
        (Expr.Cmp (Expr.Eq,
                   Expr.Bin (Expr.Plus, Var.post_id (Var.Gpr 3), Var.post_id (Var.Gpr 4)),
                   Expr.Imm 10));
      inv "l.lbs"
        (Expr.Cmp (Expr.Eq, Expr.V (Var.insn_id Var.Ext_hi),
                   Expr.Mul (Var.insn_id Var.Ext_sign, 0xFF_FFFF)));
      inv "l.lwz" (Expr.Cmp (Expr.Eq, Expr.Mod (Var.insn_id Var.Ea, 4), Expr.Imm 0));
      inv "l.xor" (Expr.Cmp (Expr.Eq, Expr.Notv (Var.post_id (Var.Gpr 5)), Expr.Imm 0)) ]

let test_in_sets () =
  check_roundtrip
    [ inv "l.sys" (Expr.In (Expr.V (Var.insn_id Var.Vec), [ 0; 0xC00 ]));
      inv "l.bf" (Expr.In (v_post Var.Sf, [ 0; 1 ])) ]

let test_comments_and_blanks () =
  let text = "# a comment\n\nrisingEdge(l.add) -> GPR0 = 0\n  \n# more\n" in
  Alcotest.(check int) "one invariant" 1 (List.length (Io.of_string text))

let test_parse_errors () =
  let bad msg text =
    match Io.of_string text with
    | exception Io.Parse_error (_, _) -> ()
    | _ -> Alcotest.fail ("expected parse error: " ^ msg)
  in
  bad "no risingEdge" "GPR0 = 0\n";
  bad "unknown variable" "risingEdge(l.add) -> GPRX = 0\n";
  bad "bad operator" "risingEdge(l.add) -> GPR0 ~ 0\n";
  bad "trailing garbage" "risingEdge(l.add) -> GPR0 = 0 extra\n"

let test_file_roundtrip () =
  let path = Filename.temp_file "scifinder" ".invs" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let invs =
         [ inv "l.sys" (Expr.Cmp (Expr.Eq, v_post Var.Pc, Expr.Imm 0xC00));
           inv "l.rfe" (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr)) ]
       in
       Io.save path invs;
       let back = Io.load path in
       Alcotest.(check int) "count" 2 (List.length back);
       List.iter2
         (fun a b -> Alcotest.(check string) "canon" (Expr.canonical a) (Expr.canonical b))
         invs back)

(* ---- property: save -> load is the identity over the whole grammar ----

   Random invariants over every constructor (all six comparisons, In
   sets with negative members, Mul/Mod/Notv/Bin terms, hex-threshold
   immediates) must come back {e structurally} equal, not just
   canonically — the corpus-level mining cache persists its invariant
   set through this codec and promises bit-identical results. *)

let gen_expr =
  let open QCheck.Gen in
  let var = oneofl Var.all_ids in
  let imm =
    (* Straddle the printer's decimal/hex switch (k > 255, k land 3 = 0)
       and include negatives. *)
    oneof [ int_range (-0x8000_0000) 0x7FFF_FFFF; int_range (-16) 16;
            map (fun k -> k * 4) (int_range 64 0x100_0000) ]
  in
  let term =
    oneof
      [ map (fun v -> Expr.V v) var;
        map (fun k -> Expr.Imm k) imm;
        map2 (fun v k -> Expr.Mul (v, k)) var (int_range (-0x100_0000) 0x100_0000);
        map2 (fun v k -> Expr.Mod (v, k)) var (oneofl [ 2; 4 ]);
        map (fun v -> Expr.Notv v) var;
        map3 (fun op a b -> Expr.Bin (op, a, b))
          (oneofl [ Expr.Band; Expr.Bor; Expr.Plus; Expr.Minus ])
          var var ]
  in
  let body =
    oneof
      [ map3 (fun op l r -> Expr.Cmp (op, l, r))
          (oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ])
          term term;
        map2 (fun t vs -> Expr.In (t, vs)) term
          (list_size (int_range 1 8) imm) ]
  in
  map2 (fun point body -> { Expr.point; body })
    (oneofl [ "l.add"; "l.sys"; "l.rfe"; "l.lwz"; "l.mfspr"; "tick" ])
    body

let prop_grammar_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000 ~name:"print -> parse is the identity"
       (QCheck.make ~print:Expr.to_string gen_expr)
       (fun i -> Io.of_string (Expr.to_string i ^ "\n") = [ i ]))

let test_load_error_names_file () =
  let path = Filename.temp_file "scifinder_bad" ".invs" in
  Fun.protect ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let oc = open_out path in
       output_string oc "risingEdge(l.add) -> GPRX = 0\n";
       close_out oc;
       match Io.load path with
       | _ -> Alcotest.fail "expected Parse_error"
       | exception Io.Parse_error (msg, line) ->
         Alcotest.(check int) "line number" 1 line;
         let contains hay needle =
           let nl = String.length needle in
           let rec go i =
             i + nl <= String.length hay
             && (String.sub hay i nl = needle || go (i + 1))
           in
           go 0
         in
         if not (contains msg path) then
           Alcotest.failf "message %S does not name the file %s" msg path)

let test_mined_set_roundtrips () =
  (* The acid test: everything the miner can emit must roundtrip. *)
  let w = Option.get (Workloads.Suite.by_name "instru") in
  let engine = Daikon.Engine.create () in
  ignore
    (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
       ~observer:(Daikon.Engine.observe engine) w.image);
  let invs = Daikon.Engine.invariants engine in
  let back = roundtrip invs in
  Alcotest.(check int) "count" (List.length invs) (List.length back);
  List.iter2
    (fun a b ->
       if Expr.canonical a <> Expr.canonical b then
         Alcotest.failf "mismatch: %s vs %s" (Expr.to_string a) (Expr.to_string b))
    invs back

let () =
  Alcotest.run "io"
    [ ("roundtrip",
       [ Alcotest.test_case "simple forms" `Quick test_simple_forms;
         Alcotest.test_case "compound terms" `Quick test_compound_terms;
         Alcotest.test_case "in sets" `Quick test_in_sets;
         Alcotest.test_case "comments" `Quick test_comments_and_blanks;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "load error names file" `Quick
           test_load_error_names_file;
         prop_grammar_roundtrip;
         Alcotest.test_case "file" `Quick test_file_roundtrip;
         Alcotest.test_case "mined set" `Slow test_mined_set_roundtrips ]) ]
