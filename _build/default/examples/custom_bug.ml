(* Bring your own erratum: the extensibility story. Define a brand-new
   fault with the hook interface, write its exploit with the assembler
   DSL, identify its SCI against a mined invariant set, and emit a
   synthesizable Verilog monitor enforcing them.

     dune exec examples/custom_bug.exe *)

open Isa

(* The erratum: l.addic silently ignores the carry-in when the destination
   register equals the first source (a plausible forwarding bug). *)
let fault =
  { Cpu.Fault.none with
    Cpu.Fault.name = "custom-addic";
    on_alu = (fun insn result ->
        match insn with
        | Insn.Alui (Insn.Addic, rd, ra, _) when rd = ra ->
          Util.U32.sub result 1 (* as if CY had been 0 *)
        | _ -> result) }

(* The exploit: set CY with a wrapping add, then accumulate with l.addic
   into the same register — a multiword-arithmetic idiom. *)
let trigger =
  let open Asm.Build in
  Workloads.Rt.build ~name:"custom-trigger"
    (List.concat
       [ Workloads.Rt.prologue;
         li32 3 0xFFFF_FFFF;
         [ li 4 1;
           add 5 3 4;               (* wraps: CY <- 1 *)
           li 6 10;
           addic 6 6 5;             (* rd = ra: the buggy path (10+5+1) *)
           add 7 6 0;
           add 8 3 4;               (* CY again *)
           li 9 0;
           addic 9 9 0 ];           (* 0 + 0 + CY = 1; buggy: 0 *)
         Workloads.Rt.exit_program ])

let bug =
  { Bugs.Registry.id = "x1";
    synopsis = "l.addic ignores carry-in when rD = rA";
    source = "examples/custom_bug.ml";
    category = Bugs.Registry.Cr;
    fault; trigger; isa_visible = true }

let () =
  Printf.printf "custom erratum: %s\n\n" bug.synopsis;
  (* Invariants from a small corpus with good carry coverage. *)
  let engine = Daikon.Engine.create () in
  List.iter
    (fun name ->
       let w = Option.get (Workloads.Suite.by_name name) in
       ignore
         (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
            ~observer:(Daikon.Engine.observe engine) w.image))
    [ "vmlinux"; "instru"; "basicmath" ];
  let invariants = Daikon.Engine.invariants engine in
  let index = Sci.Checker.index invariants in
  let report = Sci.Identify.run ~index bug in
  Printf.printf "identified %d SCI (%d clean-run false positives removed)\n"
    (List.length report.true_sci) (List.length report.false_positives);
  let strong, _ = Scifinder_core.Oracle.validate report.true_sci in
  List.iteri
    (fun i inv ->
       if i < 8 then Printf.printf "  %s\n" (Invariant.Expr.to_string inv))
    (strong @ report.true_sci);
  (* Deploy: export a synthesizable monitor for the plausible SCI. *)
  let battery =
    Assertions.Ovl.of_invariants
      (Scifinder_core.Shape.representatives
         (if strong <> [] then strong else report.true_sci))
  in
  print_endline "\ngenerated monitor (excerpt):";
  let verilog = Assertions.Verilog.emit ~module_name:"addic_monitor" battery in
  String.split_on_char '\n' verilog
  |> List.filteri (fun i _ -> i < 24)
  |> List.iter print_endline;
  Printf.printf "... (%d lines total)\n"
    (List.length (String.split_on_char '\n' verilog))
