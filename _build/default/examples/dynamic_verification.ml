(* Dynamic verification, the SPECS-style deployment story (§2): translate
   identified SCI into OVL assertions, "synthesize" them into the design,
   and watch them catch an exploit at run time while staying silent on
   correct execution.

     dune exec examples/dynamic_verification.exe *)

let () =
  (* Mine + identify SCI for the compare bug b6 ("comparison wrong for
     unsigned inequality with different MSB"), whose exploit steers a
     branch the attacker's way. *)
  let engine = Daikon.Engine.create () in
  List.iter
    (fun name ->
       let w = Option.get (Workloads.Suite.by_name name) in
       ignore
         (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
            ~observer:(Daikon.Engine.observe engine) w.image))
    [ "vmlinux"; "instru"; "quake" ];
  let invariants = Daikon.Engine.invariants engine in
  let bug = Option.get (Bugs.Table1.by_id "b6") in
  let index = Sci.Checker.index invariants in
  let report = Sci.Identify.run ~index bug in
  Printf.printf "identified %d SCI for %s\n" (List.length report.true_sci) bug.id;
  (* Translate to OVL assertions. The paper's four templates are chosen
     automatically: orig() state needs a next(...,1) holding register. *)
  let battery = Assertions.Ovl.of_invariants report.true_sci in
  print_endline "\nsynthesized assertions (OVL pseudo-Verilog):";
  List.iteri
    (fun i a ->
       if i < 8 then Printf.printf "  %s\n" (Assertions.Ovl.to_ovl_string a))
    battery;
  if List.length battery > 8 then
    Printf.printf "  ... and %d more\n" (List.length battery - 8);
  (* Hardware cost of carrying these assertions in the fabricated chip. *)
  let cost = Assertions.Cost.battery_overhead battery in
  Printf.printf
    "\nestimated overhead: %d LUTs (%.2f%% of the OR1200 SoC), %.1f mW (%.2f%%), no added delay\n"
    cost.total_luts cost.lut_pct (cost.total_power_w *. 1000.0) cost.power_pct;
  (* Deploy: the assertions monitor the buggy processor's execution of the
     exploit — and fire. On the patched processor they stay silent. *)
  let buggy_trace = Sci.Identify.capture_trigger ~fault:bug.fault bug.trigger in
  let clean_trace = Sci.Identify.capture_trigger bug.trigger in
  let firings = Assertions.Monitor.run battery buggy_trace in
  Printf.printf "\nexploit on the buggy processor: %d assertion firings\n"
    (List.length firings);
  (match firings with
   | f :: _ ->
     Printf.printf "  first firing at instruction %d: %s\n"
       f.Assertions.Monitor.step
       (Invariant.Expr.to_string f.assertion.Assertions.Ovl.invariant)
   | [] -> ());
  Printf.printf "same program on the patched processor: %d firings\n"
    (List.length (Assertions.Monitor.run battery clean_trace));
  if Assertions.Monitor.detects battery buggy_trace
  && not (Assertions.Monitor.detects battery clean_trace) then
    print_endline "\ndynamic verification catches the exploit. \\o/"
  else
    print_endline "\nunexpected: detection failed"
