(* Quickstart: write a tiny OR1k program with the assembler DSL, trace it
   on the ISA-level OR1200 model, and mine likely invariants from the
   trace — the first phase of SCIFinder in thirty lines.

     dune exec examples/quickstart.exe *)

open Isa.Asm.Build

(* A little program: sum the numbers 1..10, store the result, read it
   back, and exit. Note the explicit branch delay slots. *)
let program =
  List.concat
    [ Workloads.Rt.prologue;
      [ li 3 0;                   (* accumulator *)
        li 4 1;                   (* counter *)
        label "loop";
        add 3 3 4;
        addi 4 4 1;
        sfleui 4 10;
        bf "loop";
        nop;                      (* delay slot *)
        sw 0 2 3;                 (* data[0] <- 55 *)
        lwz 5 2 0 ];
      Workloads.Rt.exit_program ]

let () =
  let workload = Workloads.Rt.build ~name:"quickstart" program in
  (* Trace it, feeding every instruction-boundary record to the miner. *)
  let engine = Daikon.Engine.create ~config:Daikon.Config.relaxed () in
  let records = ref 0 in
  let outcome =
    Trace.Runner.stream ~entry:workload.entry
      ~observer:(fun r -> incr records; Daikon.Engine.observe engine r)
      workload.image
  in
  Printf.printf "traced %d instruction records (%s)\n" !records
    (match outcome with
     | `Halted Cpu.Machine.Exit -> "clean exit"
     | `Halted _ -> "abnormal halt"
     | `Max_steps -> "step budget");
  let invariants = Daikon.Engine.invariants engine in
  Printf.printf "mined %d likely invariants over %d program points\n\n"
    (List.length invariants) (Daikon.Engine.point_count engine);
  (* Show the control-flow and zero-register invariants the paper talks
     about, mined from this very trace. *)
  let interesting inv =
    let s = Invariant.Expr.to_string inv in
    s = "risingEdge(l.add) -> GPR0 = 0"
    || s = "risingEdge(l.add) -> (PC - orig(PC)) = 4"
    || s = "risingEdge(l.sw) -> MEMBUS = OPB"
    || s = "risingEdge(l.lwz) -> DEST = MEMBUS"
    || s = "risingEdge(l.bf) -> PC mod 4 = 0"
  in
  print_endline "a few of the mined invariants:";
  List.iter
    (fun inv ->
       if interesting inv then
         Printf.printf "  %s\n" (Invariant.Expr.to_string inv))
    invariants
