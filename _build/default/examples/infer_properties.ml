(* SCI inference (§3.4): train the elastic-net logistic regression on the
   SCI/non-SCI labels produced by identification, inspect the selected
   features, and use the model to classify invariants that no known bug
   ever violated — the paper's route to properties like p9 ("privilege
   deescalates correctly") that no erratum pointed at.

     dune exec examples/infer_properties.exe *)

module Pipeline = Scifinder_core.Pipeline

let () =
  print_endline "running phases 1-3 on a reduced corpus ...";
  let mining =
    Pipeline.mine
      ~groups:[ [ "vmlinux" ]; [ "instru" ]; [ "basicmath" ]; [ "gzip" ] ]
      ~labels:[ "vmlinux"; "instru"; "basicmath"; "gzip" ] ()
  in
  let optimized =
    (Pipeline.optimize mining.invariants).result.Invopt.Pipeline.optimized
  in
  let ident = Pipeline.identify ~invariants:optimized Bugs.Table1.all in
  Printf.printf "  %d invariants, %d labeled SCI, %d labeled non-SCI\n"
    (List.length optimized)
    (List.length ident.summary.unique_sci)
    (List.length ident.summary.unique_fp);
  print_endline "\ntraining the elastic-net model (alpha = 0.5, 3-fold CV) ...";
  let inf = Pipeline.infer ~all_invariants:optimized ident.summary in
  Printf.printf "  lambda = %.4f, held-out accuracy = %.0f%%\n"
    inf.chosen_lambda (100.0 *. inf.test_accuracy);
  let neg, pos = List.partition (fun (_, b) -> b < 0.0) inf.selected_features in
  Printf.printf "  %d features selected; SCI-associated: %s\n"
    (List.length inf.selected_features)
    (String.concat " " (List.map fst (List.filteri (fun i _ -> i < 12) neg)));
  Printf.printf "  non-SCI-associated: %s\n"
    (String.concat " " (List.map fst (List.filteri (fun i _ -> i < 12) pos)));
  (* What did inference find that identification could not? *)
  Printf.printf
    "\nmodel recommends %d invariants as security critical; expert \
     validation keeps %d\n"
    (List.length inf.recommended) (List.length inf.surviving);
  let rfe_example =
    List.find_opt
      (fun (i : Invariant.Expr.t) -> i.point = "l.rfe")
      inf.surviving
  in
  (match rfe_example with
   | Some i ->
     Printf.printf
       "an inferred SCI no bug ever pointed at (the paper's p9/p14 class):\n  %s\n"
       (Invariant.Expr.to_string i)
   | None -> ());
  (* Classify fresh invariants programmatically: an exception-machinery
     property versus a live-register coincidence. *)
  let classify probe =
    let p =
      Ml.Logreg.predict_proba inf.model (Invariant.Feature.vector inf.space probe)
    in
    Printf.printf "P(non-SC | \"%s\") = %.2f -> %s\n"
      (Invariant.Expr.to_string probe) p
      (if p < 0.5 then "SECURITY CRITICAL" else "functional")
  in
  print_newline ();
  classify
    { Invariant.Expr.point = "l.sys";
      body = Invariant.Expr.Cmp
          (Invariant.Expr.Eq,
           Invariant.Expr.V (Trace.Var.insn_id Trace.Var.Vec),
           Invariant.Expr.Imm 0xC00) };
  classify
    { Invariant.Expr.point = "l.xor";
      body = Invariant.Expr.Cmp
          (Invariant.Expr.Le,
           Invariant.Expr.V (Trace.Var.post_id (Trace.Var.Gpr 14)),
           Invariant.Expr.V (Trace.Var.post_id (Trace.Var.Gpr 15))) }
