(* Bug hunt: reproduce the paper's §3.3 identification loop for one
   erratum. We mine invariants from a few workloads, inject bug b10
   ("GPR0 can be assigned", OR1200 mail #00007), run its exploit on the
   buggy and the clean processor, and diff the violated invariants to
   obtain the security-critical invariants of the bug.

     dune exec examples/bug_hunt.exe [bug-id] *)

let () =
  let bug_id = if Array.length Sys.argv > 1 then Sys.argv.(1) else "b10" in
  let bug =
    match Bugs.Table1.by_id bug_id with
    | Some b -> b
    | None ->
      (match Bugs.Amd_errata.by_id bug_id with
       | Some b -> b
       | None ->
         prerr_endline ("unknown bug " ^ bug_id ^ "; try b1..b17 or a1..a14");
         exit 1)
  in
  Printf.printf "bug %s: %s\n  source: %s, class %s\n\n"
    bug.id bug.synopsis bug.source
    (Bugs.Registry.category_name bug.category);
  (* Phase 1: invariants from a small training corpus. *)
  print_endline "mining invariants from vmlinux + instru + basicmath ...";
  let engine = Daikon.Engine.create () in
  List.iter
    (fun name ->
       let w = Option.get (Workloads.Suite.by_name name) in
       ignore
         (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
            ~observer:(Daikon.Engine.observe engine) w.image))
    [ "vmlinux"; "instru"; "basicmath" ];
  let invariants = Daikon.Engine.invariants engine in
  Printf.printf "  %d invariants\n\n" (List.length invariants);
  (* Phase 3: run the exploit on buggy and clean processors; the SCI are
     the invariants violated only by the buggy one. *)
  let index = Sci.Checker.index invariants in
  let report = Sci.Identify.run ~index bug in
  Printf.printf "exploit trace: %d records\n" report.buggy_records;
  Printf.printf "identified %d true SCI (%d clean-run false positives removed)\n\n"
    (List.length report.true_sci)
    (List.length report.false_positives);
  if report.true_sci = [] then
    print_endline
      "no ISA-level invariant is violated: this erratum needs \
       microarchitectural state (the paper's b2 case)."
  else begin
    print_endline "security-critical invariants of this bug:";
    (* Show the expert-plausible ones first, the corpus artifacts last. *)
    let strong, weak = Scifinder_core.Oracle.validate report.true_sci in
    let ordered = strong @ weak in
    List.iteri
      (fun i inv ->
         if i < 15 then
           Printf.printf "  %s\n" (Invariant.Expr.to_string inv))
      ordered;
    if List.length ordered > 15 then
      Printf.printf "  ... and %d more\n" (List.length ordered - 15)
  end
