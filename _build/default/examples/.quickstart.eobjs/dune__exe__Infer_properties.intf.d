examples/infer_properties.mli:
