examples/infer_properties.ml: Bugs Invariant Invopt List Ml Printf Scifinder_core String Trace
