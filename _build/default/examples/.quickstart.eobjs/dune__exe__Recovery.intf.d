examples/recovery.mli:
