examples/dynamic_verification.mli:
