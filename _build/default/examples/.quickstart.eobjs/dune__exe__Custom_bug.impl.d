examples/custom_bug.ml: Asm Assertions Bugs Cpu Daikon Insn Invariant Isa List Option Printf Sci Scifinder_core String Trace Util Workloads
