examples/dynamic_verification.ml: Assertions Bugs Daikon Invariant List Option Printf Sci Trace Workloads
