examples/custom_bug.mli:
