examples/recovery.ml: Array Asm Assertions Bugs Cpu Invariant Isa List Option Printf Trace Workloads
