examples/bug_hunt.ml: Array Bugs Daikon Invariant List Option Printf Sci Scifinder_core Sys Trace Workloads
