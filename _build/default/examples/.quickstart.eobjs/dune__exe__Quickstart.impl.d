examples/quickstart.ml: Cpu Daikon Invariant Isa List Printf Trace Workloads
