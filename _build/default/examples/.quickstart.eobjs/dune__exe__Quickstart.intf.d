examples/quickstart.mli:
