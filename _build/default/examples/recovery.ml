(* Recovery from a fired assertion: the §2 design space, live.

   We deploy the GPR0 = 0 assertion on the b10-buggy processor ("GPR0 can
   be assigned") and run a program whose computation is poisoned through
   r0. Under the Halt policy the machine simply stops at the exploit.
   Under the Exception policy the assertion throws to a software handler
   that repairs the zero register and returns — and the program runs to
   completion with the correct result, the Hicks et al. forward-progress
   story.

     dune exec examples/recovery.exe *)

open Isa
module M = Cpu.Machine

let recovery_vector = 0x800 (* the unused external-interrupt slot *)

(* The victim program: r0 gets poisoned, later arithmetic depends on the
   architectural zero. Result lands in memory at data+0. *)
let victim =
  let open Asm.Build in
  { Asm.origin = Workloads.Rt.code_base;
    items =
      List.concat
        [ Workloads.Rt.prologue;
          [ li 3 41; li 4 1;
            add 0 3 4;                (* the exploit: r0 <- 42 *)
            addi 5 0 100;             (* should be 100; poisoned: 142 *)
            sw 0 2 5 ];
          Workloads.Rt.exit_program ] }

(* The recovery handler: repair r0 (the write path is open on the buggy
   core, so sub r0,r0,r0 lands) and resume. *)
let handler =
  let open Asm.Build in
  { Asm.origin = recovery_vector;
    items = [ sub 0 0 0; rfe ] }

let battery =
  Assertions.Ovl.of_invariants
    [ { Invariant.Expr.point = "l.add";
        body = Invariant.Expr.Cmp
            (Invariant.Expr.Eq,
             Invariant.Expr.V (Trace.Var.post_id (Trace.Var.Gpr 0)),
             Invariant.Expr.Imm 0) };
      { Invariant.Expr.point = "l.addi";
        body = Invariant.Expr.Cmp
            (Invariant.Expr.Eq,
             Invariant.Expr.V (Trace.Var.post_id (Trace.Var.Gpr 0)),
             Invariant.Expr.Imm 0) } ]

let fresh_machine () =
  let b10 = Option.get (Bugs.Table1.by_id "b10") in
  let m = M.create ~fault:b10.fault () in
  M.load_image m (Asm.assemble victim);
  M.load_image m (Asm.assemble handler);
  M.set_pc m Workloads.Rt.code_base;
  m

let describe (o : Assertions.Recovery.outcome) m =
  Printf.printf "  %d firing(s), %d recover(ies), halted: %s\n"
    (List.length o.firings) o.recoveries
    (match o.halted with
     | `Assertion_halt -> "by the assertion"
     | `Machine M.Exit -> "clean exit"
     | `Machine _ -> "abnormal"
     | `Max_steps -> "step budget");
  Printf.printf "  result word: %d, r0 = %d\n"
    (Cpu.Memory.read32 m.M.mem Workloads.Rt.data_base)
    m.M.gpr.(0)

let () =
  print_endline "policy: Halt (the simple design choice)";
  let m = fresh_machine () in
  let o = Assertions.Recovery.run ~policy:Assertions.Recovery.Halt battery m in
  describe o m;
  print_endline "\npolicy: Exception to software (SPECS-style recovery)";
  let m = fresh_machine () in
  let o =
    Assertions.Recovery.run
      ~policy:(Assertions.Recovery.Exception recovery_vector) battery m
  in
  describe o m;
  (match o.halted, Cpu.Memory.read32 m.M.mem Workloads.Rt.data_base with
   | `Machine M.Exit, 100 ->
     print_endline "\nrecovered past the buggy state with the correct result. \\o/"
   | _ -> print_endline "\nunexpected outcome")
