(* Fourteen held-out bugs for the unknown-bug experiment (§5.6).

   The paper reused the 14 AMD errata that the SPECS artifact had
   reproduced on the OR1200. Those particular errata documents are not
   available here, so we model fourteen faults spanning the same SPECS
   erratum classes (invalid register update, execute incorrect
   instruction, memory access, incorrect results, exception related);
   two of them are timing/microarchitectural-only, mirroring the errata
   that need microarchitectural state and defeat any ISA-level assertion
   (the paper's 12-of-14 detection ceiling). None of these faults is used
   during identification or inference. *)

open Isa
module F = Cpu.Fault
module B = Asm.Build

let none = F.none

let trig name ?tick_period items =
  Workloads.Rt.build ~name ?tick_period
    (List.concat [ Workloads.Rt.prologue; items; Workloads.Rt.exit_program ])

(* a1 (XR): exception entry fails to mask TEE/IEE. *)
let a1_fault =
  { none with
    F.name = "a1";
    on_exception_sr = (fun _ sr ->
        sr lor (1 lsl Spr.Sr_bits.tee) lor (1 lsl Spr.Sr_bits.iee)) }

let a1_trigger =
  trig "a1-trigger"
    B.[ mfspr 12 0 Workloads.Rt.spr_sr;
        ori 12 12 0x0002;               (* enable TEE *)
        mtspr 0 12 Workloads.Rt.spr_sr;
        li 3 1; li 4 2;
        sys 21;                         (* entry should clear TEE *)
        add 5 11 0;
        sys 22;
        add 6 11 0 ]

(* a2 (XR): EPCR saved on a tick interrupt is off by four. *)
let a2_fault =
  { none with
    F.name = "a2";
    on_exception_epcr = (fun ctx epcr ->
        match ctx.F.kind with
        | Spr.Vector.Tick_timer -> Util.U32.add epcr 4
        | _ -> epcr) }

let a2_trigger =
  trig "a2-trigger" ~tick_period:37
    B.[ mfspr 12 0 Workloads.Rt.spr_sr;
        ori 12 12 0x0002;
        mtspr 0 12 Workloads.Rt.spr_sr;
        li 21 0;
        label "a2_loop";
        addi 21 21 1;
        xori 22 21 0x55;
        add 23 22 21;
        sfltui 21 300;
        bf "a2_loop";
        nop ]

(* a3 (XR): l.rfe forces supervisor mode regardless of the saved ESR. *)
let a3_fault =
  { none with F.name = "a3"; on_rfe_sr = (fun sr -> sr lor 1) }

let a3_trigger =
  trig "a3-trigger"
    (List.concat
       B.[ [ la 24 "a3_user";
             mtspr 0 24 Workloads.Rt.spr_epcr;
             mfspr 25 0 Workloads.Rt.spr_sr;
             andi 25 25 0xFFFE;
             mtspr 0 25 Workloads.Rt.spr_esr;
             rfe;                       (* should drop privilege; bug keeps SM *)
             label "a3_user";
             li 3 1; li 4 2;
             add 5 3 4;
             sys 23;
             add 6 11 0 ] ])

(* a4 (MA): word stores drop the low half-word. *)
let a4_fault =
  { none with
    F.name = "a4";
    on_store = (fun insn ~addr:_ ~exec_pc:_ v ->
        match insn with
        | Insn.Store (Insn.Sw, _, _, _) -> v land 0xFFFF_0000
        | _ -> v) }

let a4_trigger =
  trig "a4-trigger"
    (List.concat
       B.[ li32 3 0x1234_5678;
           [ sw 700 2 3;
             lwz 4 2 700;
             sw 704 2 4;
             lwz 5 2 704;
             add 6 4 5 ] ])

(* a5 (CR): l.movhi places the immediate in the low half-word. *)
let a5_fault =
  { none with
    F.name = "a5";
    on_writeback = (fun insn ~reg:_ ~pc:_ v ->
        match insn with Insn.Movhi _ -> v lsr 16 | _ -> v) }

let a5_trigger =
  trig "a5-trigger"
    B.[ movhi 3 0x1234;
        ori 3 3 0x5678;
        movhi 4 0x00FF;
        add 5 3 4;
        movhi 6 0x8000;
        or_ 7 5 6 ]

(* a6 (CR): l.sfeq inverted when both operands have the sign bit set. *)
let a6_fault =
  { none with
    F.name = "a6";
    on_compare = (fun op ~a ~b r ->
        match op with
        | Insn.Sfeq when Util.U32.is_negative a && Util.U32.is_negative b -> not r
        | _ -> r) }

let a6_trigger =
  trig "a6-trigger"
    (List.concat
       B.[ li32 3 0x8000_1234;
           li32 4 0x8000_1234;
           [ sfeq 3 4;                  (* equal negatives: flag flipped *)
             bf "a6_eq";
             nop;
             addi 5 5 1;
             label "a6_eq";
             sfeq 3 3;
             sfne 3 4 ] ])

(* a7 (CR/RU): l.mfspr returns a stale zero for EEAR0. *)
let a7_fault =
  { none with
    F.name = "a7";
    on_writeback = (fun insn ~reg:_ ~pc:_ v ->
        match insn with
        | Insn.Mfspr (_, _, k) when k land 0xFFFF = Spr.address Spr.Eear0 -> 0
        | _ -> v) }

let a7_trigger =
  trig "a7-trigger"
    (List.concat
       B.[ li32 3 0xCAFE;
           [ mtspr 0 3 Workloads.Rt.spr_eear;
             mfspr 4 0 Workloads.Rt.spr_eear;   (* returns 0 *)
             add 5 4 3;
             mfspr 6 0 Workloads.Rt.spr_eear;
             add 7 6 5 ] ])

(* a8 (MA): loads from addresses with bit 15 set return the address. *)
let a8_fault =
  { none with
    F.name = "a8";
    on_load = (fun insn ~addr ~raw:_ v ->
        match insn with
        | Insn.Load (Insn.Lwz, _, _, _) when addr land 0x8000 <> 0 -> addr
        | _ -> v) }

let a8_trigger =
  trig "a8-trigger"
    (List.concat
       B.[ li32 3 0x5151;
           li32 8 0x0001_8000;          (* address with bit 15 set *)
           [ sw 0 8 3;
             lwz 4 8 0;                 (* returns 0x18000, not 0x5151 *)
             lwz 5 2 0;                 (* clean load *)
             add 6 4 5 ] ])

(* a9 (XR): the syscall vector is computed one slot too high. *)
let a9_fault =
  { none with
    F.name = "a9";
    on_exception_vector = (fun ctx v ->
        match ctx.F.kind with
        | Spr.Vector.Syscall -> v + 0x100
        | _ -> v) }

let a9_trigger =
  trig "a9-trigger"
    B.[ li 3 4; li 4 5;
        sys 31;                         (* vectors to 0xD00 instead of 0xC00 *)
        add 5 11 0 ]

(* a10 (IE): the decoder executes l.xori as l.ori. *)
let a10_fault =
  { none with
    F.name = "a10";
    on_decode = (fun insn ->
        match insn with
        | Insn.Alui (Insn.Xori, rd, ra, k) -> Insn.Alui (Insn.Ori, rd, ra, k)
        | _ -> insn) }

let a10_trigger =
  trig "a10-trigger"
    (List.concat
       B.[ li32 3 0x0F0F_1111;
           [ xori 4 3 0x5555;
             xori 5 4 0x0F0F;
             add 6 4 5;
             ori 7 3 0x0033 ] ])

(* a11 (XR): EPCR for a syscall points at the l.sys itself. *)
let a11_fault =
  { none with
    F.name = "a11";
    on_exception_epcr = (fun ctx epcr ->
        match ctx.F.kind with
        | Spr.Vector.Syscall when not ctx.F.in_delay_slot -> ctx.F.faulting_pc
        | _ -> epcr) }

let a11_trigger =
  trig "a11-trigger"
    B.[ li 3 2; li 4 3;
        sys 41;                         (* re-executes forever: capped *)
        add 5 11 0 ]

(* a12 (CF): l.jalr records the delay-slot address as the return address. *)
let a12_fault =
  { none with
    F.name = "a12";
    on_writeback = (fun insn ~reg ~pc:_ v ->
        match insn with
        | Insn.Jump_link_reg _ when reg = 9 -> Util.U32.sub v 4
        | _ -> v) }

let a12_trigger =
  trig "a12-trigger"
    B.[ la 20 "a12_fn";
        jalr 20;                        (* r9 off by 4: returns into the pad *)
        nop;
        nop;
        addi 5 5 1;
        j "a12_out";
        nop;
        label "a12_fn";
        addi 21 21 1;
        jr 9;
        nop;
        label "a12_out";
        addi 5 5 2 ]

(* a13 (microarchitectural): write buffer not drained on cache maintenance;
   a timing-only defect with no ISA-visible state change. *)
let a13_fault = { none with F.name = "a13" }

let a13_trigger =
  trig "a13-trigger"
    B.[ li 3 9;
        sw 900 2 3;
        lwz 4 2 900;
        add 5 4 3 ]

(* a14 (microarchitectural): branch predictor state survives a privilege
   switch; observable only as timing, never as architectural state. *)
let a14_fault = { none with F.name = "a14" }

let a14_trigger =
  trig "a14-trigger"
    B.[ li 3 0;
        label "a14_loop";
        addi 3 3 1;
        sfltui 3 6;
        bf "a14_loop";
        nop ]

let all : Registry.t list =
  let open Registry in
  [ { id = "a1"; synopsis = "Exception entry fails to mask TEE/IEE";
      source = "AMD-class errata (SPECS set), XR"; category = Xr;
      fault = a1_fault; trigger = a1_trigger; isa_visible = true };
    { id = "a2"; synopsis = "EPCR on tick interrupt is off by four";
      source = "AMD-class errata (SPECS set), XR"; category = Xr;
      fault = a2_fault; trigger = a2_trigger; isa_visible = true };
    { id = "a3"; synopsis = "l.rfe forces supervisor mode";
      source = "AMD-class errata (SPECS set), XR"; category = Xr;
      fault = a3_fault; trigger = a3_trigger; isa_visible = true };
    { id = "a4"; synopsis = "Word store drops the low half-word";
      source = "AMD-class errata (SPECS set), MA"; category = Ma;
      fault = a4_fault; trigger = a4_trigger; isa_visible = true };
    { id = "a5"; synopsis = "l.movhi writes the immediate to the low half";
      source = "AMD-class errata (SPECS set), CR"; category = Cr;
      fault = a5_fault; trigger = a5_trigger; isa_visible = true };
    { id = "a6"; synopsis = "l.sfeq inverted for negative operands";
      source = "AMD-class errata (SPECS set), CR"; category = Cf;
      fault = a6_fault; trigger = a6_trigger; isa_visible = true };
    { id = "a7"; synopsis = "l.mfspr returns stale zero for EEAR0";
      source = "AMD-class errata (SPECS set), RU"; category = Ru;
      fault = a7_fault; trigger = a7_trigger; isa_visible = true };
    { id = "a8"; synopsis = "Load from bit-15 addresses returns the address";
      source = "AMD-class errata (SPECS set), MA"; category = Ma;
      fault = a8_fault; trigger = a8_trigger; isa_visible = true };
    { id = "a9"; synopsis = "Syscall vector computed one slot too high";
      source = "AMD-class errata (SPECS set), XR"; category = Xr;
      fault = a9_fault; trigger = a9_trigger; isa_visible = true };
    { id = "a10"; synopsis = "Decoder executes l.xori as l.ori";
      source = "AMD-class errata (SPECS set), IE"; category = Ie;
      fault = a10_fault; trigger = a10_trigger; isa_visible = true };
    { id = "a11"; synopsis = "EPCR for syscall points at the l.sys itself";
      source = "AMD-class errata (SPECS set), XR"; category = Xr;
      fault = a11_fault; trigger = a11_trigger; isa_visible = true };
    { id = "a12"; synopsis = "l.jalr records a wrong return address";
      source = "AMD-class errata (SPECS set), CF"; category = Cf;
      fault = a12_fault; trigger = a12_trigger; isa_visible = true };
    { id = "a13"; synopsis = "Write buffer not drained (timing only)";
      source = "AMD-class errata (SPECS set), microarchitectural"; category = Ma;
      fault = a13_fault; trigger = a13_trigger; isa_visible = false };
    { id = "a14"; synopsis = "Branch predictor leak across privilege switch (timing only)";
      source = "AMD-class errata (SPECS set), microarchitectural"; category = Cf;
      fault = a14_fault; trigger = a14_trigger; isa_visible = false };
  ]

let by_id id = List.find_opt (fun b -> String.equal b.Registry.id id) all
