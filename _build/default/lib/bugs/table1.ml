(* The 17 security-critical bugs of Table 1, reproduced as semantic faults
   with one trigger program each (§3.3: "we first implement the defect ...
   we then write a program that triggers the vulnerability"). Each fault
   perturbs exactly the ISA-visible behaviour the published erratum
   describes. *)

open Isa
module F = Cpu.Fault
module B = Asm.Build

let none = F.none

(* Common trigger prologue/epilogue. *)
let trig name ?extra items =
  Workloads.Rt.build ~name ?extra
    (List.concat [ Workloads.Rt.prologue; items; Workloads.Rt.exit_program ])

(* ---- b1: l.sys in delay slot will run into infinite loop ---- *)

let b1_fault = { none with F.name = "b1"; syscall_in_delay_slot_loops = true }

let b1_trigger =
  trig "b1-trigger"
    B.[ li 3 1; li 4 2;
        j "b1_after";
        sys 1;                          (* delay slot: loops forever *)
        label "b1_after";
        add 5 11 0 ]

(* ---- b2: l.macrc immediately after l.mac stalls the pipeline ---- *)

let b2_fault = { none with F.name = "b2"; macrc_after_mac_stalls = true }

let b2_trigger =
  trig "b2-trigger"
    B.[ li 3 7; li 4 9;
        mac 3 4;
        macrc 5;                        (* wedges the pipeline *)
        add 6 5 3 ]

(* ---- b3: l.extw instructions behave incorrectly ---- *)

let b3_fault =
  { none with
    F.name = "b3";
    on_alu = (fun insn r ->
        match insn with
        | Insn.Ext ((Insn.Extws | Insn.Extwz), _, _) -> Util.U32.sext16 r
        | _ -> r) }

let b3_trigger =
  trig "b3-trigger"
    (List.concat
       B.[ li32 3 0x0001_4678;
           [ extws 4 3;                 (* should copy r3 *)
             lwz 5 4 0;                 (* address computed from extw result *)
             extwz 6 3;
             lwz 7 6 4;
             extws 8 3;
             add 9 8 3 ] ])

(* ---- b4: Delay Slot Exception bit is not implemented in SR ---- *)

let b4_fault =
  { none with
    F.name = "b4";
    on_exception_sr = (fun _ sr -> sr land lnot (1 lsl Spr.Sr_bits.dsx)) }

let b4_trigger =
  trig "b4-trigger"
    B.[ li 3 5; li 4 6;
        j "b4_after";
        sys 2;                          (* DSX should be set; bug drops it *)
        label "b4_after";
        add 5 11 0 ]

(* ---- b5: EPCR on range exception is incorrect ---- *)

let b5_fault =
  { none with
    F.name = "b5";
    on_exception_epcr = (fun ctx epcr ->
        match ctx.F.kind with
        | Spr.Vector.Range -> Util.U32.add epcr 4
        | _ -> epcr) }

let b5_trigger =
  trig "b5-trigger"
    (List.concat
       (List.map
          (fun k ->
             List.concat
               B.[ [ mfspr 12 0 Workloads.Rt.spr_sr;
                     ori 12 12 0x1000;
                     mtspr 0 12 Workloads.Rt.spr_sr ];
                   li32 13 0x7FFF_FFF0;
                   [ li 14 (21 + k);
                     add 15 13 14;      (* overflow -> range exception *)
                     nop; nop;          (* landing room for the skewed EPCR *)
                     mfspr 12 0 Workloads.Rt.spr_sr;
                     andi 12 12 0xEFFF;
                     mtspr 0 12 Workloads.Rt.spr_sr ] ])
          [ 0; 1; 2; 3; 4 ]))

(* ---- b6: comparison wrong for unsigned inequality with different MSB ---- *)

let b6_fault =
  { none with
    F.name = "b6";
    on_compare = (fun op ~a ~b r ->
        let different_msb = Util.U32.is_negative a <> Util.U32.is_negative b in
        match op with
        | Insn.Sfgtu | Insn.Sfgeu | Insn.Sfltu | Insn.Sfleu
          when different_msb -> not r
        | _ -> r) }

let b6_trigger =
  trig "b6-trigger"
    (List.concat
       B.[ li32 3 0x8000_0010;
           [ li 4 5;
             sfltu 3 4;                 (* 0x80000010 <u 5 : false; bug flips *)
             bf "b6_wrong";
             nop;
             addi 5 5 1;
             label "b6_wrong";
             sfgtu 3 4;
             sfleu 4 3;
             sfgeu 3 4;
             sfltu 4 3 ] ])

(* ---- b7: incorrect unsigned integer less-than compare ---- *)

let b7_fault =
  { none with
    F.name = "b7";
    on_compare = (fun op ~a ~b r ->
        match op with
        | Insn.Sfltu -> Util.U32.slt a b  (* computes the signed compare *)
        | _ -> r) }

let b7_trigger =
  trig "b7-trigger"
    (List.concat
       B.[ li32 3 0xFFFF_FF00;
           [ li 4 16;
             sfltu 3 4;                 (* big unsigned <u 16 : false *)
             bf "b7_taken";
             nop;
             addi 5 5 1;
             label "b7_taken";
             sfltu 4 3;
             sfltui 3 100 ] ])

(* ---- b8: logical error in l.rori: a pending exception is dropped ---- *)

let b8_fault =
  { none with
    F.name = "b8";
    suppress_exception = (fun ctx ~prev ->
        match ctx.F.kind, prev with
        | Spr.Vector.Syscall, Some (Insn.Shifti (Insn.Rori, _, _, _)) -> true
        | _ -> false) }

let b8_trigger =
  trig "b8-trigger"
    (List.concat
       B.[ li32 3 0x1234_5678;
           [ li 4 1;
             rori 5 3 7;
             sys 3;                     (* silently ignored by the bug *)
             add 6 11 0;
             rori 7 3 13;
             sys 4;
             add 8 11 0 ] ])

(* ---- b9: EPCR on illegal instruction exception is incorrect ---- *)

let b9_fault =
  { none with
    F.name = "b9";
    on_exception_epcr = (fun ctx epcr ->
        match ctx.F.kind with
        | Spr.Vector.Illegal -> ctx.F.next_pc
        | _ -> epcr) }

let b9_trigger =
  trig "b9-trigger"
    B.[ li 3 1;
        word 0xEC00_0000;               (* undecodable word *)
        addi 3 3 1;
        word 0xEC00_0001;
        addi 3 3 2;
        word 0xEC00_0002;
        addi 3 3 3 ]

(* ---- b10: GPR0 can be assigned ---- *)

let b10_fault = { none with F.name = "b10"; allow_gpr0_write = true }

let b10_trigger =
  trig "b10-trigger"
    B.[ li 3 41; li 4 1;
        add 0 3 4;                      (* writes 42 into r0 *)
        add 5 0 0;                      (* propagates the poison *)
        addi 6 0 10;
        sw 64 2 0;
        lwz 7 2 64;
        nop; nop ]

(* ---- b11: incorrect instruction fetched after an LSU stall ---- *)

let b11_fault =
  { none with
    F.name = "b11";
    on_fetch = (fun ctx word ->
        match ctx.F.prev_insn with
        | Some (Insn.Load (Insn.Lws, _, _, _)) -> word lor ctx.F.prev_word
        | _ -> word) }

let b11_trigger =
  trig "b11-trigger"
    B.[ li 3 12;
        sw 96 2 3;
        lws 4 2 96;                     (* LSU stall *)
        add 5 4 3;                      (* this fetch is contaminated *)
        lws 6 2 96;
        xor 7 6 3;
        nop ]

(* ---- b12: l.mtspr to some SPRs in supervisor mode treated as l.nop ---- *)

let b12_fault =
  { none with
    F.name = "b12";
    mtspr_is_nop = (fun ~spr_addr ->
        spr_addr = Spr.address Spr.Esr0 || spr_addr = Spr.address Spr.Eear0) }

let b12_trigger =
  trig "b12-trigger"
    (List.concat
       B.[ li32 3 0xBEE0;
           [ mtspr 0 3 Workloads.Rt.spr_eear;   (* silently dropped *)
             mfspr 4 0 Workloads.Rt.spr_eear;
             mtspr 0 3 Workloads.Rt.spr_esr;
             mfspr 5 0 Workloads.Rt.spr_esr;
             mtspr 0 3 Workloads.Rt.spr_maclo;  (* unaffected SPR *)
             mfspr 6 0 Workloads.Rt.spr_maclo ] ])

(* ---- b13: call return address failure with large displacement ---- *)

let b13_fault =
  { none with
    F.name = "b13";
    on_writeback = (fun insn ~reg ~pc:_ v ->
        match insn with
        | Insn.Jump_link d
          when reg = 9
            && abs (Util.U32.signed (Util.U32.sext ~bits:26 d)) >= 0x8000 ->
          Util.U32.sub v 4
        | _ -> v) }

let b13_far = 0x42000

let b13_trigger =
  (* The prologue is 4 words, so the first far call sits at 0x2010. *)
  let jal_at addr = Asm.I (Insn.Jump_link (((b13_far - addr) / 4) land 0x3FF_FFFF)) in
  trig "b13-trigger"
    ~extra:[ { Asm.origin = b13_far;
               items = B.[ addi 20 20 1; jr 9; nop ] } ]
    B.[ jal_at 0x2010; nop;
        jal_at 0x2018; nop;
        jal_at 0x2020; nop;
        jal_at 0x2028; nop ]

(* ---- b14: byte/half-word write failure when executing from SDRAM ---- *)

let b14_fault =
  { none with
    F.name = "b14";
    on_store = (fun insn ~addr:_ ~exec_pc v ->
        match insn with
        | Insn.Store ((Insn.Sb | Insn.Sh), _, _, _)
          when exec_pc >= Cpu.Memory.sdram_base -> v lxor 0xFF
        | _ -> v) }

let b14_trigger =
  trig "b14-trigger"
    ~extra:[ { Asm.origin = Workloads.Rt.sdram_code_base;
               items =
                 B.[ li 3 0x21;
                     sb 512 2 3;        (* corrupted: issued from SDRAM *)
                     li 3 0x43;
                     sh 514 2 3;
                     li 3 0x65;
                     sb 516 2 3;
                     jr 9;
                     nop ] } ]
    (List.concat
       B.[ [ li 3 0x11; sb 520 2 3 ];   (* clean: issued from SRAM *)
           li32 20 Workloads.Rt.sdram_code_base;
           [ jalr 20;
             nop;
             lbz 4 2 512;
             lhz 5 2 514 ] ])

(* ---- b15: wrong PC stored during FPU exception trap ----
   The LEON2 erratum concerns the FPU trap; our basic instruction set has
   no FPU, so the substitution uses the software trap, the same XR class:
   the saved EPCR is skewed when the trap vectors. *)

let b15_fault =
  { none with
    F.name = "b15";
    on_exception_epcr = (fun ctx epcr ->
        match ctx.F.kind with
        | Spr.Vector.Trap -> Util.U32.add epcr 8
        | _ -> epcr) }

let b15_trigger =
  trig "b15-trigger"
    B.[ li 3 1;
        trap 1;
        addi 3 3 1;
        nop; nop;
        trap 2;
        addi 3 3 2;
        nop; nop;
        trap 3;
        addi 3 3 3;
        nop; nop ]

(* ---- b16: sign/unsign extend of data alignment in LSU ---- *)

let b16_fault =
  { none with
    F.name = "b16";
    on_load = (fun insn ~addr ~raw v ->
        match insn with
        | Insn.Load (Insn.Lbs, _, _, _) when addr land 1 = 1 -> raw land 0xFF
        | Insn.Load (Insn.Lhs, _, _, _) when addr land 3 = 2 -> raw land 0xFFFF
        | _ -> v) }

let b16_trigger =
  trig "b16-trigger"
    (List.concat
       B.[ li32 3 0xF5;
           [ sb 601 2 3 ];              (* negative byte at odd address *)
           li32 3 0x9ABC;
           [ sh 602 2 3;                (* negative half at addr % 4 = 2 *)
             lbs 4 2 601;               (* should sign-extend; bug zero-extends *)
             lhs 5 2 602;
             lbs 6 2 601;
             add 7 4 5 ] ])

(* ---- b17: overwrite of load data with subsequent store data ---- *)

let b17_fault =
  { none with
    F.name = "b17";
    store_after_load_clobbers = (fun ~prev insn ->
        match prev, insn with
        | Some (Insn.Load (_, rd, _, _)), Insn.Store (_, _, _, _) -> Some rd
        | _ -> None) }

let b17_trigger =
  trig "b17-trigger"
    B.[ li 3 77;
        sw 640 2 3;
        li 6 55;
        lwz 5 2 640;                    (* r5 <- 77 *)
        sw 644 2 6;                     (* bug: r5 <- 55 as well *)
        add 7 5 6;
        lwz 8 2 640;
        sw 648 2 8;
        add 9 8 7 ]

(* ---- The Table 1 registry ---- *)

let all : Registry.t list =
  let open Registry in
  [ { id = "b1"; synopsis = "l.sys in delay slot will run into infinite loop";
      source = "OR1200, Bugzilla #33"; category = Xr;
      fault = b1_fault; trigger = b1_trigger; isa_visible = true };
    { id = "b2"; synopsis = "l.macrc immediately after l.mac stalls the pipeline";
      source = "OR1200, Bugtracker #1930"; category = Ie;
      fault = b2_fault; trigger = b2_trigger; isa_visible = false };
    { id = "b3"; synopsis = "l.extw instructions behave incorrectly";
      source = "OR1200, Bugzilla #88"; category = Ma;
      fault = b3_fault; trigger = b3_trigger; isa_visible = true };
    { id = "b4"; synopsis = "Delay Slot Exception bit is not implemented in SR";
      source = "OR1200, Bugzilla #85"; category = Xr;
      fault = b4_fault; trigger = b4_trigger; isa_visible = true };
    { id = "b5"; synopsis = "EPCR on range exception is incorrect";
      source = "OR1200, Bugzilla #90"; category = Xr;
      fault = b5_fault; trigger = b5_trigger; isa_visible = true };
    { id = "b6"; synopsis = "Comparison wrong for unsigned inequality with different MSB";
      source = "OR1200, Bugzilla #51"; category = Cf;
      fault = b6_fault; trigger = b6_trigger; isa_visible = true };
    { id = "b7"; synopsis = "Incorrect unsigned integer less-than compare";
      source = "OR1200, Bugzilla #76"; category = Cf;
      fault = b7_fault; trigger = b7_trigger; isa_visible = true };
    { id = "b8"; synopsis = "Logical error in l.rori instruction";
      source = "OR1200, Bugzilla #97"; category = Xr;
      fault = b8_fault; trigger = b8_trigger; isa_visible = true };
    { id = "b9"; synopsis = "EPCR on illegal instruction exception is incorrect";
      source = "OR1200, Mail #01767"; category = Xr;
      fault = b9_fault; trigger = b9_trigger; isa_visible = true };
    { id = "b10"; synopsis = "GPR0 can be assigned";
      source = "OR1200, Mail #00007"; category = Ma;
      fault = b10_fault; trigger = b10_trigger; isa_visible = true };
    { id = "b11"; synopsis = "Incorrect instruction fetched after an LSU stall";
      source = "OR1200, Bugzilla #101"; category = Ie;
      fault = b11_fault; trigger = b11_trigger; isa_visible = true };
    { id = "b12"; synopsis = "l.mtspr to some SPRs in supervisor mode treated as l.nop";
      source = "OR1200, Bugzilla #95"; category = Ru;
      fault = b12_fault; trigger = b12_trigger; isa_visible = true };
    { id = "b13"; synopsis = "Call return address failure with large displacement";
      source = "LEON2, Atmel-errata #2"; category = Cf;
      fault = b13_fault; trigger = b13_trigger; isa_visible = true };
    { id = "b14"; synopsis = "Byte and half-word write to SRAM failure when executing from SDRAM";
      source = "LEON2, Atmel-errata #3"; category = Ma;
      fault = b14_fault; trigger = b14_trigger; isa_visible = true };
    { id = "b15"; synopsis = "Wrong PC stored during FPU exception trap";
      source = "LEON2, Atmel-errata #4"; category = Xr;
      fault = b15_fault; trigger = b15_trigger; isa_visible = true };
    { id = "b16"; synopsis = "Sign/unsign extend of data alignment in LSU";
      source = "OpenSPARC T1"; category = Ma;
      fault = b16_fault; trigger = b16_trigger; isa_visible = true };
    { id = "b17"; synopsis = "Overwrite of ldxa-data with subsequent st-data";
      source = "OpenSPARC T1"; category = Ma;
      fault = b17_fault; trigger = b17_trigger; isa_visible = true };
  ]

let by_id id = List.find_opt (fun b -> String.equal b.Registry.id id) all
