(** The 17 security-critical bugs of the paper's Table 1, reproduced as
    semantic faults with one trigger program each (§3.3): 12 OR1200
    errata, 3 LEON2, 2 OpenSPARC T1. b2 (a pipeline stall) is the
    microarchitectural one no ISA-level invariant catches. *)

val all : Registry.t list
(** b1 .. b17, in Table 1 order. *)

val by_id : string -> Registry.t option
