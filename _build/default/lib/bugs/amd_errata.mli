(** Fourteen held-out bugs for the unknown-bug experiment (§5.6),
    modelled on the SPECS erratum classes (the original AMD errata
    documents are not available; DESIGN.md records the substitution).
    None are used during identification or inference; two are timing-only
    microarchitectural faults, mirroring the paper's detection ceiling. *)

val all : Registry.t list
(** a1 .. a14. *)

val by_id : string -> Registry.t option
