(** The bug registry: the output of the paper's phase 2 (§4.1), where
    human experts classified 185 collected errata and deemed 25
    security-critical, reproducing 17. Each entry carries the erratum's
    synopsis and source, its security class, the injected fault, and an
    exploit (trigger) program. *)

(** The six security-property classes of §5.5. *)
type category =
  | Cf (** control flow *)
  | Xr (** exception related *)
  | Ma (** memory access *)
  | Ie (** executes the specified instruction *)
  | Cr (** correct result update *)
  | Ru (** register update / privilege *)

val category_name : category -> string

type t = {
  id : string;                  (** "b1".."b17" (Table 1), "a1".."a14" (§5.6) *)
  synopsis : string;
  source : string;
  category : category;
  fault : Cpu.Fault.t;
  trigger : Workloads.Rt.t;
  isa_visible : bool;
      (** false for the microarchitectural/timing-only errata that no
          ISA-level invariant can see (the paper's b2 / p18 / p24
          limitation) *)
}

(** §4.1 funnel statistics, kept as data for the harness. *)

val collected_bug_count : int
val security_critical_count : int
val reproduced_count : int
val not_reproducible_count : int
