lib/bugs/table1.ml: Asm Cpu Insn Isa List Registry Spr String Util Workloads
