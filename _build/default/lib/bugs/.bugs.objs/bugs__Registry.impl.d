lib/bugs/registry.ml: Cpu Workloads
