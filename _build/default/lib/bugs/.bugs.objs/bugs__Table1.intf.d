lib/bugs/table1.mli: Registry
