lib/bugs/registry.mli: Cpu Workloads
