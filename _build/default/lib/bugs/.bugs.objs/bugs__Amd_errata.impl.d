lib/bugs/amd_errata.ml: Asm Cpu Insn Isa List Registry Spr String Util Workloads
