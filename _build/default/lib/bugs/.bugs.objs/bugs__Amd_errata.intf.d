lib/bugs/amd_errata.mli: Registry
