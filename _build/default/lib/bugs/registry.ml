(* The bug registry: the paper's phase 2 output (§4.1).

   The paper collected 185 bugs from the OR1200, LEON2, LEON3,
   OpenSPARC-T1 and OpenMSP430 trackers, classified 25 as security
   critical by hand, and reproduced 17 of them (Table 1). Phase 2 is
   inherently human judgement; this module encodes its *result* as data:
   each entry carries the erratum synopsis, its source, the security
   class, the injected fault, and a trigger program. *)

(* The six security-property classes of §5.5. *)
type category =
  | Cf (* control flow *)
  | Xr (* exception related *)
  | Ma (* memory access *)
  | Ie (* executes the specified instruction *)
  | Cr (* correct result update *)
  | Ru (* register update / privilege *)

let category_name = function
  | Cf -> "CF" | Xr -> "XR" | Ma -> "MA" | Ie -> "IE" | Cr -> "CR" | Ru -> "RU"

type t = {
  id : string;                  (* "b1" .. "b17", "a1" .. "a14" *)
  synopsis : string;
  source : string;
  category : category;
  fault : Cpu.Fault.t;
  trigger : Workloads.Rt.t;
  (* ISA-visible? b2 and the two timing-only AMD errata perturb only
     microarchitectural state, so no ISA-level invariant can see them
     (the paper's b2 / p18 / p24 limitation). *)
  isa_visible : bool;
}

(* Funnel statistics reported in §4.1, kept as data for the harness. *)
let collected_bug_count = 185
let security_critical_count = 25
let reproduced_count = 17
let not_reproducible_count = 8
