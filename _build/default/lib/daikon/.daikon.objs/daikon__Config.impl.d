lib/daikon/config.ml:
