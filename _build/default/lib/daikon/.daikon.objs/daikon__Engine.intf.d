lib/daikon/engine.mli: Config Invariant Trace
