lib/daikon/config.mli:
