lib/daikon/engine.ml: Array Config Hashtbl Invariant List Trace Util
