(* One observation: the software-visible machine state sampled at an
   instruction boundary (§3.1.3), after delay-slot fusion (§3.1.5). *)

type t = {
  point : string;          (* program point: the instruction mnemonic *)
  values : int array;      (* indexed by Var.id; length Var.total *)
  mask : bool array;       (* per-point applicability, shared across records *)
}

let get t id = t.values.(id)

(* Per-point applicability of instruction variables. Dual variables are
   always applicable; instruction variables depend on the instruction
   format, which is a function of the mnemonic, so the mask is stable for
   a given point. *)
type mask = bool array (* length Var.total *)

type mask_config = {
  (* Expose the branch-target effective address as a derived variable at
     jump/branch points. The paper's configuration lacked it (property p10
     was reported as not generated, §5.4); enabling it is the documented
     fix. Off by default for paper fidelity. *)
  jump_ea : bool;
}

let default_config = { jump_ea = false }

let mask_of_insn config insn : mask =
  let open Isa.Insn in
  let m = Array.make Var.total true in
  let set v b = m.(Var.insn_id v) <- b in
  let ra, rb = src_regs insn in
  set Var.Im (immediate insn <> None);
  set Var.Regd (dest_reg insn <> None);
  set Var.Dest (dest_reg insn <> None);
  set Var.Rega (ra <> None);
  set Var.Opa (ra <> None);
  set Var.Regb (rb <> None);
  set Var.Opb (rb <> None);
  let is_mem = match insn with Load _ | Store _ -> true | _ -> false in
  let is_ctl = match insn with
    | Jump _ | Jump_link _ | Jump_reg _ | Jump_link_reg _
    | Branch_flag _ | Branch_noflag _ -> true
    | _ -> false
  in
  set Var.Ea (is_mem || (config.jump_ea && is_ctl));
  set Var.Ea_ref is_mem;
  set Var.Membus is_mem;
  let is_setflag = match insn with Setflag _ | Setflagi _ -> true | _ -> false in
  set Var.Cmpdiff_u is_setflag;
  set Var.Cmpdiff_s is_setflag;
  set Var.Prod_u is_setflag;
  set Var.Prod_s is_setflag;
  let is_spr = match insn with Mfspr _ | Mtspr _ -> true | _ -> false in
  set Var.Spr_orig is_spr;
  set Var.Spr_post is_spr;
  set Var.Cmpz is_setflag;
  let is_sign_load = match insn with
    | Load ((Lbs | Lhs), _, _, _) -> true
    | _ -> false
  in
  set Var.Ext_sign is_sign_load;
  set Var.Ext_hi is_sign_load;
  m

(* Registry of point -> mask, filled lazily from the first instruction
   observed at each point. *)
type mask_table = (string, mask) Hashtbl.t

let create_mask_table () : mask_table = Hashtbl.create 64

let mask_for table config point insn =
  match Hashtbl.find_opt table point with
  | Some m -> m
  | None ->
    let m = mask_of_insn config insn in
    Hashtbl.add table point m;
    m

let pp fmt t =
  Format.fprintf fmt "@[<v 2>%s:" t.point;
  List.iter
    (fun id ->
       let v = t.values.(id) in
       if v <> 0 then Format.fprintf fmt "@ %s = 0x%X" (Var.id_name id) v)
    Var.all_ids;
  Format.fprintf fmt "@]"
