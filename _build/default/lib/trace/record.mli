(** One observation: the software-visible machine state sampled at an
    instruction boundary (§3.1.3), after delay-slot fusion (§3.1.5). *)

type t = {
  point : string;      (** program point: the instruction mnemonic *)
  values : int array;  (** indexed by {!Var.id}; length {!Var.total} *)
  mask : bool array;   (** per-point applicability, shared across records *)
}

val get : t -> Var.id -> int

type mask = bool array

type mask_config = {
  jump_ea : bool;
      (** expose the branch-target effective address at jump points. The
          paper's configuration lacked it (property p10 was "not
          generated", §5.4); off by default for fidelity, on for the
          ablation. *)
}

val default_config : mask_config

val mask_of_insn : mask_config -> Isa.Insn.t -> mask
(** Which instruction variables apply to this instruction format. Dual
    variables always apply. *)

type mask_table

val create_mask_table : unit -> mask_table

val mask_for : mask_table -> mask_config -> string -> Isa.Insn.t -> mask
(** The cached mask of a program point, built from its first observed
    instruction. *)

val pp : Format.formatter -> t -> unit
