(* The universe of tracked variables.

   Following §3.1.3 we track every software-visible variable: all GPRs, the
   special purpose registers, flags, the data and address of the memory
   subsystem, target registers and immediate values. "Dual" variables have
   a value before (orig) and after the instruction; "insn" variables are
   properties of the instruction execution itself.

   Derived variables (§3.1.4) extend the raw state: the SR bit-flags, the
   effective address, the exception vector/EPCR-delta/DSX-consistency
   observations, and the compare-direction products that let the miner
   express the paper's p28 invariant
     risingEdge(l.sfleu) -> (OPA - OPB) * (1 - 2*CF) >= 0. *)

(* Comparability kind: only variables of compatible kinds are compared
   pairwise, as in Daikon's comparability analysis. *)
type kind =
  | Addr      (* program counters, effective addresses, exception PCs *)
  | Data      (* register and bus contents *)
  | Srword    (* whole status registers *)
  | Flag      (* single bits *)
  | Regidx    (* register indices from the instruction word *)
  | Imm       (* immediate fields *)
  | Diff      (* signed derived differences and products *)

(* ---- Dual variables (have orig() and post values) ---- *)

let n_gpr = 32

type dual =
  | Pc | Npc | Nnpc
  | Gpr of int
  | Sr_full | Sf | Sm | Cy | Ov | Dsx | Tee | Iee
  | Epcr | Esr | Eear
  | Machi | Maclo

let dual_count = 3 + n_gpr + 8 + 3 + 2

let dual_index = function
  | Pc -> 0 | Npc -> 1 | Nnpc -> 2
  | Gpr i -> 3 + i
  | Sr_full -> 35 | Sf -> 36 | Sm -> 37 | Cy -> 38 | Ov -> 39
  | Dsx -> 40 | Tee -> 41 | Iee -> 42
  | Epcr -> 43 | Esr -> 44 | Eear -> 45
  | Machi -> 46 | Maclo -> 47

let dual_of_index i =
  if i = 0 then Pc else if i = 1 then Npc else if i = 2 then Nnpc
  else if i < 35 then Gpr (i - 3)
  else match i with
    | 35 -> Sr_full | 36 -> Sf | 37 -> Sm | 38 -> Cy | 39 -> Ov
    | 40 -> Dsx | 41 -> Tee | 42 -> Iee
    | 43 -> Epcr | 44 -> Esr | 45 -> Eear
    | 46 -> Machi | 47 -> Maclo
    | _ -> invalid_arg "Var.dual_of_index"

let dual_name = function
  | Pc -> "PC" | Npc -> "NPC" | Nnpc -> "NNPC"
  | Gpr i -> Printf.sprintf "GPR%d" i
  | Sr_full -> "SR" | Sf -> "SF" | Sm -> "SM" | Cy -> "CY" | Ov -> "OV"
  | Dsx -> "DSX" | Tee -> "TEE" | Iee -> "IEE"
  | Epcr -> "EPCR0" | Esr -> "ESR0" | Eear -> "EEAR0"
  | Machi -> "MACHI" | Maclo -> "MACLO"

let dual_kind = function
  | Pc | Npc | Nnpc | Epcr | Eear -> Addr
  | Gpr _ | Machi | Maclo -> Data
  | Sr_full | Esr -> Srword
  | Sf | Sm | Cy | Ov | Dsx | Tee | Iee -> Flag

(* ---- Instruction variables (one value per record) ---- *)

type ivar =
  | Ir          (* the fetched instruction word *)
  | Mem_at_pc   (* the memory word at PC: IR = MEM_AT_PC is the p12-style
                   "processor executes the specified instruction" property *)
  | Im          (* immediate field *)
  | Regd | Rega | Regb
  | Opa | Opb   (* operand values *)
  | Dest        (* writeback value *)
  | Ea          (* effective address (memory or branch target) *)
  | Membus      (* data transferred on the memory bus *)
  | Vec         (* exception vector control transferred to, 0 if none *)
  | Exn         (* 1 if an exception was entered *)
  | Epcr_d      (* EPCR - instruction address when an exception was entered *)
  | Dsx_ok      (* 1 unless an exception mis-recorded the delay-slot bit *)
  | Cmpdiff_u   (* set-flag: exact unsigned operand difference *)
  | Cmpdiff_s   (* set-flag: exact signed operand difference *)
  | Prod_u      (* CMPDIFF_U * (1 - 2*SF) *)
  | Prod_s      (* CMPDIFF_S * (1 - 2*SF) *)
  | Spr_orig    (* addressed SPR value before an mtspr/mfspr *)
  | Spr_post    (* addressed SPR value after an mtspr/mfspr *)
  | Opcode      (* IR >> 26: the primary opcode of the executed word *)
  | Cmpz        (* set-flag: 1 when the operands are exactly equal *)
  | Ext_sign    (* sign-extending load: the sign bit of the raw datum *)
  | Ext_hi      (* sign-extending load: the extension bits of DEST *)
  | Ea_ref      (* load/store: base operand + offset, recomputed by the
                   instrumenter; EA = EA_REF is property p7 *)

let ivar_count = 26

let ivar_index = function
  | Ir -> 0 | Mem_at_pc -> 1 | Im -> 2
  | Regd -> 3 | Rega -> 4 | Regb -> 5
  | Opa -> 6 | Opb -> 7 | Dest -> 8 | Ea -> 9 | Membus -> 10
  | Vec -> 11 | Exn -> 12 | Epcr_d -> 13 | Dsx_ok -> 14
  | Cmpdiff_u -> 15 | Cmpdiff_s -> 16 | Prod_u -> 17 | Prod_s -> 18
  | Spr_orig -> 19 | Spr_post -> 20
  | Opcode -> 21 | Cmpz -> 22 | Ext_sign -> 23 | Ext_hi -> 24 | Ea_ref -> 25

let ivar_of_index = function
  | 0 -> Ir | 1 -> Mem_at_pc | 2 -> Im
  | 3 -> Regd | 4 -> Rega | 5 -> Regb
  | 6 -> Opa | 7 -> Opb | 8 -> Dest | 9 -> Ea | 10 -> Membus
  | 11 -> Vec | 12 -> Exn | 13 -> Epcr_d | 14 -> Dsx_ok
  | 15 -> Cmpdiff_u | 16 -> Cmpdiff_s | 17 -> Prod_u | 18 -> Prod_s
  | 19 -> Spr_orig | 20 -> Spr_post
  | 21 -> Opcode | 22 -> Cmpz | 23 -> Ext_sign | 24 -> Ext_hi | 25 -> Ea_ref
  | _ -> invalid_arg "Var.ivar_of_index"

let ivar_name = function
  | Ir -> "IR" | Mem_at_pc -> "MEM_AT_PC" | Im -> "IMM"
  | Regd -> "REGD" | Rega -> "REGA" | Regb -> "REGB"
  | Opa -> "OPA" | Opb -> "OPB" | Dest -> "DEST" | Ea -> "EA"
  | Membus -> "MEMBUS"
  | Vec -> "VEC" | Exn -> "EXN" | Epcr_d -> "EPCR_D" | Dsx_ok -> "DSX_OK"
  | Cmpdiff_u -> "CMPDIFF_U" | Cmpdiff_s -> "CMPDIFF_S"
  | Prod_u -> "PROD_U" | Prod_s -> "PROD_S"
  | Spr_orig -> "orig(SPR)" | Spr_post -> "SPR"
  | Opcode -> "OPCODE" | Cmpz -> "CMPZ"
  | Ext_sign -> "EXT_SIGN" | Ext_hi -> "EXT_HI" | Ea_ref -> "EA_REF"

let ivar_kind = function
  | Ir | Mem_at_pc | Opa | Opb | Dest | Membus | Spr_orig | Spr_post
  | Ext_sign | Ext_hi -> Data
  | Im | Opcode -> Imm
  | Regd | Rega | Regb -> Regidx
  | Ea | Vec | Ea_ref -> Addr
  | Exn | Dsx_ok | Cmpz -> Flag
  | Epcr_d | Cmpdiff_u | Cmpdiff_s | Prod_u | Prod_s -> Diff

(* ---- A flat id space over all variables, as the miner sees them ----
   ids [0, dual_count)                : orig(dual)
   ids [dual_count, 2*dual_count)     : post(dual)
   ids [2*dual_count, ... )           : insn vars *)

type id = int

let total = (2 * dual_count) + ivar_count

let orig_id d = dual_index d
let post_id d = dual_count + dual_index d
let insn_id v = (2 * dual_count) + ivar_index v

let is_orig id = id < dual_count

let id_name id =
  if id < dual_count then "orig(" ^ dual_name (dual_of_index id) ^ ")"
  else if id < 2 * dual_count then dual_name (dual_of_index (id - dual_count))
  else ivar_name (ivar_of_index (id - (2 * dual_count)))

(* The bare variable name without the orig() wrapper, for ML features. *)
let id_base_name id =
  if id < dual_count then dual_name (dual_of_index id)
  else if id < 2 * dual_count then dual_name (dual_of_index (id - dual_count))
  else ivar_name (ivar_of_index (id - (2 * dual_count)))

let id_kind id =
  if id < dual_count then dual_kind (dual_of_index id)
  else if id < 2 * dual_count then dual_kind (dual_of_index (id - dual_count))
  else ivar_kind (ivar_of_index (id - (2 * dual_count)))

let all_ids = List.init total (fun i -> i)
