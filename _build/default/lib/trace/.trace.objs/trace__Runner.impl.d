lib/trace/runner.ml: Array Cpu Isa List Record Util Var
