lib/trace/record.ml: Array Format Hashtbl Isa List Var
