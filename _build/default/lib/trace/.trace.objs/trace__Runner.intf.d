lib/trace/runner.mli: Cpu Record
