lib/trace/record.mli: Format Isa Var
