lib/trace/var.mli:
