lib/trace/var.ml: List Printf
