(** The universe of tracked variables.

    Following §3.1.3 every software-visible variable is tracked: all GPRs,
    the special purpose registers, flags, the data and address of the
    memory subsystem, target registers and immediate values. "Dual"
    variables have a value before ([orig()]) and after the instruction;
    "instruction" variables are properties of the execution itself,
    including the §3.1.4 derived variables. *)

(** Comparability kind: only variables of compatible kinds are compared
    pairwise, as in Daikon's comparability analysis. *)
type kind =
  | Addr      (** program counters, effective addresses, exception PCs *)
  | Data      (** register and bus contents *)
  | Srword    (** whole status registers *)
  | Flag      (** single bits *)
  | Regidx    (** register indices from the instruction word *)
  | Imm       (** immediate fields and opcodes *)
  | Diff      (** signed derived differences and products *)

val n_gpr : int

(** Variables with an orig()/post pair. *)
type dual =
  | Pc | Npc | Nnpc
  | Gpr of int
  | Sr_full | Sf | Sm | Cy | Ov | Dsx | Tee | Iee
  | Epcr | Esr | Eear
  | Machi | Maclo

val dual_count : int
val dual_index : dual -> int
val dual_of_index : int -> dual
val dual_name : dual -> string
val dual_kind : dual -> kind

(** Per-record instruction variables. The derived ones carry the paper's
    §3.1.4 configurable-instrumenter extensions: [Vec]/[Exn]/[Epcr_d]/
    [Dsx_ok] observe exception entries; [Cmpdiff_*]/[Prod_*]/[Cmpz]
    witness set-flag correctness (the p28 construction); [Ext_sign]/
    [Ext_hi] witness load sign-extension; [Ea_ref] recomputes the
    effective address; [Opcode] is IR >> 26. *)
type ivar =
  | Ir
  | Mem_at_pc
  | Im
  | Regd | Rega | Regb
  | Opa | Opb
  | Dest
  | Ea
  | Membus
  | Vec
  | Exn
  | Epcr_d
  | Dsx_ok
  | Cmpdiff_u
  | Cmpdiff_s
  | Prod_u
  | Prod_s
  | Spr_orig
  | Spr_post
  | Opcode
  | Cmpz
  | Ext_sign
  | Ext_hi
  | Ea_ref

val ivar_count : int
val ivar_index : ivar -> int
val ivar_of_index : int -> ivar
val ivar_name : ivar -> string
val ivar_kind : ivar -> kind

type id = int
(** A flat id space over all variables as the miner sees them:
    [\[0, dual_count)] are orig duals, [\[dual_count, 2*dual_count)] post
    duals, the rest instruction variables. *)

val total : int

val orig_id : dual -> id
val post_id : dual -> id
val insn_id : ivar -> id

val is_orig : id -> bool

val id_name : id -> string
(** Display name, with the [orig(...)] wrapper where applicable. *)

val id_base_name : id -> string
(** The bare name without the orig() wrapper, as used by ML features. *)

val id_kind : id -> kind

val all_ids : id list
