(* Hardware overhead model for Table 9.

   The paper synthesised the OR1200 System-on-Chip for a Xilinx
   xupv5-lx110t and reports: baseline 10073 LUTs / 3.24 W / 19.1 ns; the
   14 identification assertions cost 1.6 % logic and 0.13 % power; the
   full 33 assertions 4.4 % and 0.31 %; neither adds delay (the monitors
   sit off the critical path).

   Without a synthesis tool we estimate marginal LUT cost from the
   assertion expression structure, with the constants calibrated against
   OVL monitor synthesis folklore: a shared instruction decoder and
   control, per-assertion comparators, and 32-bit previous-cycle holding
   registers (flip-flops, which also consume slice LUT resources for their
   enables). Dynamic power is modelled as proportional to the added logic,
   using the paper's own watts-per-LUT operating point. *)

module Expr = Invariant.Expr

type cost = {
  luts : int;
  flipflops : int;
  power_w : float;
}

(* Baseline platform numbers (Table 9). *)
let baseline_luts = 10073
let baseline_power_w = 3.24
let baseline_delay_ns = 19.1

(* Calibration constants (marginal LUTs). *)
let shared_monitor_luts = 24    (* one-off: decode tree, valid/fire logic *)
let decode_luts = 2             (* per assertion: opcode match against IR *)
let eq32_luts = 6               (* 32-bit equality comparator *)
let ord32_luts = 9              (* 32-bit magnitude comparator *)
let addsub32_luts = 10          (* carry-chain assisted add/sub *)
let mul_const_luts = 4          (* constant multiply = shift/add network *)
let mod_pow2_luts = 1
let not_luts = 1
let history_enable_luts = 4     (* per 32-bit holding register *)
let history_ffs = 32

let watts_per_lut = baseline_power_w *. 0.0013 /. (0.016 *. float_of_int baseline_luts)
(* = power fraction per logic fraction at the paper's operating point *)

let term_luts = function
  | Expr.V _ -> 0
  | Expr.Imm _ -> 0
  | Expr.Mul (_, _) -> mul_const_luts
  | Expr.Mod (_, _) -> mod_pow2_luts
  | Expr.Notv _ -> not_luts
  | Expr.Bin ((Expr.Plus | Expr.Minus), _, _) -> addsub32_luts
  | Expr.Bin ((Expr.Band | Expr.Bor), _, _) -> 2

let body_luts = function
  | Expr.Cmp (op, lhs, rhs) ->
    let cmp = match op with
      | Expr.Eq | Expr.Ne -> eq32_luts
      | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> ord32_luts
    in
    cmp + term_luts lhs + term_luts rhs
  | Expr.In (term, values) ->
    (eq32_luts * List.length values) + 1 + term_luts term

let assertion_cost (a : Ovl.t) =
  let history = List.length a.Ovl.history_vars in
  let luts =
    decode_luts + body_luts a.Ovl.invariant.Expr.body
    + (history * history_enable_luts)
  in
  let flipflops = history * history_ffs in
  { luts; flipflops; power_w = float_of_int luts *. watts_per_lut }

type overhead = {
  total_luts : int;
  total_ffs : int;
  lut_pct : float;
  total_power_w : float;
  power_pct : float;
  delay_ns_added : float;
}

(* Aggregate overhead of an assertion battery. History registers for the
   same variable are shared between assertions, as a synthesis tool
   would. *)
let battery_overhead assertions =
  let history = Hashtbl.create 16 in
  let luts = ref shared_monitor_luts and ffs = ref 0 in
  List.iter
    (fun (a : Ovl.t) ->
       luts := !luts + decode_luts + body_luts a.Ovl.invariant.Expr.body;
       List.iter
         (fun v ->
            if not (Hashtbl.mem history v) then begin
              Hashtbl.replace history v ();
              luts := !luts + history_enable_luts;
              ffs := !ffs + history_ffs
            end)
         a.Ovl.history_vars)
    assertions;
  let power = float_of_int !luts *. watts_per_lut in
  { total_luts = !luts;
    total_ffs = !ffs;
    lut_pct = 100.0 *. float_of_int !luts /. float_of_int baseline_luts;
    total_power_w = power;
    power_pct = 100.0 *. power /. baseline_power_w;
    delay_ns_added = 0.0 (* monitors are off the critical path *) }
