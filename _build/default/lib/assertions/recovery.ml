(* Assertion-triggered recovery.

   §2 of the paper: "What action is taken once the assertion fires depends
   on the system design. A simple design choice is to halt execution;
   another option is to throw an exception to software. Hicks et al. found
   that software can often recover and move the processor past the buggy
   state to continue making forward progress." The paper leaves this out
   of scope; this module implements both designs on top of the monitor:

   - [Halt]: stop the machine at the first firing;
   - [Exception of vector]: SPECS-style recovery — enter an
     assertion-violation exception (ESR <- SR, EPCR <- resume point,
     supervisor mode, control to the recovery vector) and let a software
     handler repair state and l.rfe back. *)

module M = Cpu.Machine
module Sr = Isa.Spr.Sr_bits

type policy =
  | Halt
  | Exception of int  (* recovery vector address *)

type outcome = {
  firings : Monitor.firing list;   (* in occurrence order *)
  recoveries : int;                (* exception entries performed *)
  steps : int;                     (* records observed *)
  halted : [ `Assertion_halt | `Machine of M.halt_reason | `Max_steps ];
}

(* Enter the assertion-violation exception, as the synthesized monitor
   wired to the exception unit would. *)
let enter_recovery machine ~vector =
  machine.M.esr <- machine.M.sr;
  machine.M.epcr <- machine.M.pc;  (* resume where the pipeline stopped *)
  machine.M.eear <- machine.M.pc;
  let sr = machine.M.sr in
  let sr = Sr.set sr Sr.sm in
  let sr = Sr.clear sr Sr.iee in
  let sr = Sr.clear sr Sr.tee in
  machine.M.sr <- sr lor (1 lsl Sr.fo);
  machine.M.delay_target <- None;
  machine.M.pc <- vector

(* Run [machine] under the battery's watch. [cooldown] records execute
   after a recovery before assertions re-arm, so the handler itself (and
   the instruction stream it repairs) cannot re-trigger a livelock. *)
let run ?(max_steps = 100_000) ?(max_recoveries = 32) ?(cooldown = 16)
    ~policy battery machine =
  let by_point = Hashtbl.create 64 in
  List.iter
    (fun (a : Ovl.t) ->
       let point = a.Ovl.invariant.Invariant.Expr.point in
       Hashtbl.replace by_point point
         (a :: Option.value ~default:[] (Hashtbl.find_opt by_point point)))
    battery;
  let firings = ref [] in
  let recoveries = ref 0 in
  let steps = ref 0 in
  let armed_at = ref 0 in
  let assertion_halt = ref false in
  (* The observer runs between fused records, where the runner holds no
     pending delay-slot state, so redirecting the machine here is safe:
     the next fetch starts from the recovery vector. *)
  let observer (record : Trace.Record.t) =
    let i = !steps in
    incr steps;
    if not !assertion_halt && i >= !armed_at then
      match Hashtbl.find_opt by_point record.Trace.Record.point with
      | None -> ()
      | Some batch ->
        List.iter
          (fun (a : Ovl.t) ->
             if not !assertion_halt
             && Invariant.Expr.violated a.Ovl.invariant record then begin
               firings := { Monitor.assertion = a; step = i; record } :: !firings;
               match policy with
               | Halt ->
                 assertion_halt := true;
                 machine.M.halted <- Some M.Exit
               | Exception vector ->
                 if !recoveries >= max_recoveries then begin
                   assertion_halt := true;
                   machine.M.halted <- Some M.Exit
                 end else begin
                   incr recoveries;
                   armed_at := i + cooldown;
                   enter_recovery machine ~vector
                 end
             end)
          batch
  in
  let config = { Trace.Runner.default_config with max_steps } in
  let outcome = Trace.Runner.run ~config ~observer machine in
  let halted =
    if !assertion_halt then `Assertion_halt
    else
      match outcome with
      | `Halted reason -> `Machine reason
      | `Max_steps -> `Max_steps
  in
  { firings = List.rev !firings;
    recoveries = !recoveries;
    steps = !steps;
    halted }
