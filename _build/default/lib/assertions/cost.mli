(** Hardware overhead model for Table 9, calibrated against the paper's
    platform (OR1200 SoC on a Xilinx xupv5-lx110t: 10073 LUTs, 3.24 W,
    19.1 ns; 14 assertions cost 1.6 % logic / 0.13 % power, 33 cost
    4.4 % / 0.31 %, no delay). Marginal LUTs are estimated from the
    assertion expression structure; history registers are shared across a
    battery as a synthesis tool would. *)

type cost = {
  luts : int;
  flipflops : int;
  power_w : float;
}

val baseline_luts : int
val baseline_power_w : float
val baseline_delay_ns : float

val assertion_cost : Ovl.t -> cost
(** Stand-alone marginal cost of one assertion. *)

type overhead = {
  total_luts : int;
  total_ffs : int;
  lut_pct : float;           (** relative to {!baseline_luts} *)
  total_power_w : float;
  power_pct : float;
  delay_ns_added : float;    (** always 0: monitors are off the critical path *)
}

val battery_overhead : Ovl.t list -> overhead
