(* The SPECS-like runtime monitor: assertions are "kept in the design
   through synthesis" and watch the named signals on every instruction
   boundary (§2). Here the monitor consumes the same instruction-boundary
   records the miner sees — each record carries both the sampled and the
   previous-cycle (orig) values, so next(.., 1) templates check directly. *)

type firing = {
  assertion : Ovl.t;
  step : int;           (* index of the offending record *)
  record : Trace.Record.t;
}

(* Check one assertion battery against a trace; returns every firing (one
   per assertion per offending step). *)
let run assertions records =
  let by_point = Hashtbl.create 64 in
  List.iter
    (fun (a : Ovl.t) ->
       let point = a.invariant.Invariant.Expr.point in
       Hashtbl.replace by_point point
         (a :: Option.value ~default:[] (Hashtbl.find_opt by_point point)))
    assertions;
  let firings = ref [] in
  List.iteri
    (fun step (record : Trace.Record.t) ->
       match Hashtbl.find_opt by_point record.Trace.Record.point with
       | None -> ()
       | Some batch ->
         List.iter
           (fun (a : Ovl.t) ->
              if Invariant.Expr.violated a.invariant record then
                firings := { assertion = a; step; record } :: !firings)
           batch)
    records;
  List.rev !firings

(* Does any assertion fire on this trace? The dynamic-verification verdict
   used by Table 3's "Detected" column and the §5.6 experiment. *)
let detects assertions records = run assertions records <> []

(* Distinct assertions that fired at least once. *)
let fired_assertions assertions records =
  let firings = run assertions records in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun f ->
       if Hashtbl.mem seen f.assertion.Ovl.name then None
       else begin
         Hashtbl.replace seen f.assertion.Ovl.name ();
         Some f.assertion
       end)
    firings
