(** Synthesizable Verilog generation for an assertion battery — the
    SCI -> RTL translation the paper performs by hand (§4.2). The emitted
    module is a SPECS-style bolt-on monitor: it samples the architectural
    signals at the retirement strobe, holds previous-cycle copies of the
    orig() operands, and raises one [fire] wire per assertion plus
    [any_fire]. *)

val sanitize : string -> string
(** Identifier-safe signal name. *)

val signal_of_id : Trace.Var.id -> string
(** The Verilog signal of a variable; orig() variables map to their
    [_prev] holding register. *)

val width_of_id : Trace.Var.id -> int

val emit : ?module_name:string -> Ovl.t list -> string
(** The complete Verilog module source. *)
