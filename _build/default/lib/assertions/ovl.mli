(** Translation from SCI to synthesizable assertions (§4.2). Every SCI
    maps to one of the four OVL templates the paper uses; invariants
    referencing orig() state need a previous-cycle holding register and
    become [next(..., 1)] — the paper's worked example:

    {v
    I = risingEdge(l.rfe) -> SR = orig(ESR0)
    A = next(INSN = l.rfe, SR = ESR0_PREV, 1)
    v} *)

type template =
  | Always
  | Edge                               (** true when the insn is sampled *)
  | Next of int                        (** true N cycles later *)
  | Delta of { low : int; high : int } (** a monitored value stays bounded *)

type t = {
  name : string;
  invariant : Invariant.Expr.t;
  template : template;
  history_vars : Trace.Var.id list;
      (** orig() variables needing a holding register *)
}

val template_name : template -> string

val history_vars_of : Invariant.Expr.t -> Trace.Var.id list

val of_invariant : ?name:string -> Invariant.Expr.t -> t

val of_invariants : Invariant.Expr.t list -> t list
(** A battery with unique generated names. *)

val to_ovl_string : t -> string
(** OVL-flavoured pseudo-Verilog, documenting the translation. *)
