(* Synthesizable Verilog generation for an assertion battery.

   The paper keeps the SCI -> RTL translation manual (§4.2: "our tool does
   not yet provide the automatic translation from SCI to hardware
   assertions ... in our experience the process is straightforward"); this
   module provides it. The emitted module is a SPECS-style bolt-on monitor
   for the OR1200: it watches the architectural signals at instruction
   retirement (the `valid` strobe), holds previous-cycle copies of the
   orig() operands, and raises one `fire` wire per assertion plus an OR of
   all of them.

   Inputs follow the trace variable universe: each dual variable is a
   32-bit port (flags are 1-bit), and the instruction-derived variables
   arrive from the retirement stage. *)

module Expr = Invariant.Expr
module Var = Trace.Var

let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
       | _ -> '_')
    name

(* Verilog signal name of a post/insn variable. *)
let signal_of_id id =
  if Var.is_orig id then
    Printf.sprintf "%s_prev" (sanitize (Var.id_base_name id))
  else sanitize (Var.id_base_name id)

let width_of_id id =
  match Var.id_kind id with
  | Var.Flag -> 1
  | Var.Regidx -> 5
  | Var.Addr | Var.Data | Var.Srword | Var.Imm | Var.Diff -> 32

let hex32 v = Printf.sprintf "32'h%08X" (v land 0xFFFF_FFFF)

let term_to_verilog = function
  | Expr.V id -> signal_of_id id
  | Expr.Imm k -> hex32 k
  | Expr.Mul (id, k) -> Printf.sprintf "(%s * %s)" (signal_of_id id) (hex32 k)
  | Expr.Mod (id, k) ->
    (* power-of-two moduli only, as mined *)
    Printf.sprintf "(%s & %s)" (signal_of_id id) (hex32 (k - 1))
  | Expr.Notv id -> Printf.sprintf "(~%s)" (signal_of_id id)
  | Expr.Bin (op, a, b) ->
    let o = match op with
      | Expr.Band -> "&" | Expr.Bor -> "|" | Expr.Plus -> "+" | Expr.Minus -> "-"
    in
    Printf.sprintf "(%s %s %s)" (signal_of_id a) o (signal_of_id b)

(* Diff-kind comparisons are signed; everything else unsigned. *)
let body_to_verilog body =
  let signedness t =
    match t with
    | Expr.V id | Expr.Mul (id, _) | Expr.Mod (id, _) | Expr.Notv id ->
      Var.id_kind id = Var.Diff
    | Expr.Imm k -> k < 0
    | Expr.Bin (Expr.Minus, _, _) -> true
    | Expr.Bin (_, _, _) -> false
  in
  match body with
  | Expr.Cmp (op, lhs, rhs) ->
    let s = if signedness lhs || signedness rhs then "$signed" else "" in
    let wrap t = if s = "" then term_to_verilog t
      else Printf.sprintf "$signed(%s)" (term_to_verilog t) in
    let o = match op with
      | Expr.Eq -> "==" | Expr.Ne -> "!=" | Expr.Lt -> "<"
      | Expr.Le -> "<=" | Expr.Gt -> ">" | Expr.Ge -> ">="
    in
    Printf.sprintf "(%s %s %s)" (wrap lhs) o (wrap rhs)
  | Expr.In (term, values) ->
    let t = term_to_verilog term in
    values
    |> List.map (fun v -> Printf.sprintf "(%s == %s)" t (hex32 v))
    |> String.concat " || "
    |> Printf.sprintf "(%s)"

(* The retirement-point qualifier: primary opcode match on the IR. *)
let point_qualifier point =
  (* Decode the point back to its primary opcode via a representative
     encoding; the "illegal" pseudo-point fires on the decoder's
     illegal-instruction strobe instead. *)
  if String.equal point "illegal" then "illegal_insn"
  else
    let opcode_of = function
      | "l.j" -> 0x00 | "l.jal" -> 0x01 | "l.bnf" -> 0x03 | "l.bf" -> 0x04
      | "l.nop" -> 0x05 | "l.movhi" -> 0x06 | "l.macrc" -> 0x06
      | "l.sys" -> 0x08 | "l.trap" -> 0x08 | "l.rfe" -> 0x09
      | "l.jr" -> 0x11 | "l.jalr" -> 0x12 | "l.maci" -> 0x13
      | "l.lwz" -> 0x21 | "l.lws" -> 0x22 | "l.lbz" -> 0x23 | "l.lbs" -> 0x24
      | "l.lhz" -> 0x25 | "l.lhs" -> 0x26
      | "l.addi" -> 0x27 | "l.addic" -> 0x28 | "l.andi" -> 0x29
      | "l.ori" -> 0x2A | "l.xori" -> 0x2B | "l.muli" -> 0x2C
      | "l.mfspr" -> 0x2D | "l.mtspr" -> 0x30
      | "l.mac" -> 0x31 | "l.msb" -> 0x31
      | "l.sw" -> 0x35 | "l.sb" -> 0x36 | "l.sh" -> 0x37
      | p when String.length p > 4 && String.sub p 0 4 = "l.sf" ->
        if String.length p > 2 && p.[String.length p - 1] = 'i' then 0x2F
        else 0x39
      | p when String.length p > 4 && String.sub p 0 5 = "l.sll"
               || String.length p > 4 && String.sub p 0 5 = "l.srl"
               || String.length p > 4 && String.sub p 0 5 = "l.sra"
               || String.length p > 4 && String.sub p 0 5 = "l.ror" ->
        if String.length p > 2 && p.[String.length p - 1] = 'i' then 0x2E
        else 0x38
      | _ -> 0x38 (* register ALU / extend forms *)
    in
    Printf.sprintf "(IR[31:26] == 6'h%02X) /* %s */" (opcode_of point) point

(* Every variable a battery references, post and orig separated. *)
let referenced_vars battery =
  let post = Hashtbl.create 32 and orig = Hashtbl.create 8 in
  List.iter
    (fun (a : Ovl.t) ->
       List.iter
         (fun id ->
            if Var.is_orig id then Hashtbl.replace orig id ()
            else Hashtbl.replace post id ())
         (Expr.vars a.Ovl.invariant))
    battery;
  let sorted tbl = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  (sorted post, sorted orig)

(* Emit the monitor module. *)
let emit ?(module_name = "scifinder_monitor") battery =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let posts, origs = referenced_vars battery in
  out "// Generated by SCIFinder: %d security-critical assertions.\n"
    (List.length battery);
  out "// Bolt-on monitor in the SPECS style: sample at retirement (valid).\n";
  out "module %s (\n" module_name;
  out "  input wire clk,\n";
  out "  input wire rst,\n";
  out "  input wire valid,          // instruction retirement strobe\n";
  out "  input wire illegal_insn,   // decoder illegal strobe\n";
  out "  input wire [31:0] IR,\n";
  let port id =
    let w = width_of_id id in
    if w = 1 then out "  input wire %s,\n" (sanitize (Var.id_base_name id))
    else out "  input wire [%d:0] %s,\n" (w - 1) (sanitize (Var.id_base_name id))
  in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun id ->
       let base = Var.id_base_name id in
       if not (Hashtbl.mem seen base) && base <> "IR" then begin
         Hashtbl.replace seen base ();
         port id
       end)
    (posts @ origs);
  out "  output wire [%d:0] fire,\n" (max 0 (List.length battery - 1));
  out "  output wire any_fire\n";
  out ");\n\n";
  (* Previous-cycle holding registers for the orig() operands. *)
  if origs <> [] then out "  // next(...,1) holding registers\n";
  List.iter
    (fun id ->
       let w = width_of_id id in
       let base = sanitize (Var.id_base_name id) in
       if w = 1 then out "  reg %s_prev;\n" base
       else out "  reg [%d:0] %s_prev;\n" (w - 1) base)
    origs;
  if origs <> [] then begin
    out "  always @(posedge clk) begin\n";
    out "    if (valid) begin\n";
    List.iter
      (fun id ->
         let base = sanitize (Var.id_base_name id) in
         out "      %s_prev <= %s;\n" base base)
      origs;
    out "    end\n  end\n\n"
  end;
  List.iteri
    (fun i (a : Ovl.t) ->
       out "  // %s\n" (Expr.to_string a.Ovl.invariant);
       out "  assign fire[%d] = valid && %s && !rst && !%s;\n"
         i
         (point_qualifier a.Ovl.invariant.Expr.point)
         (body_to_verilog a.Ovl.invariant.Expr.body))
    battery;
  out "\n  assign any_fire = |fire;\n";
  out "endmodule\n";
  Buffer.contents buf
