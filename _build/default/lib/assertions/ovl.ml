(* Translation from SCI to synthesizable assertions (§4.2).

   All SCI translate to one of the four OVL templates the paper uses:

   - always : the expression holds on every cycle;
   - edge   : the expression holds at the cycle the instruction is sampled;
   - next   : the expression holds N cycles after the instruction is
              sampled (used whenever the invariant references orig() state,
              which needs a previous-cycle holding register);
   - delta  : a monitored value stays within a bounded range.

   The paper's worked example:
     I = risingEdge(l.rfe) -> SR = orig(ESR0)
     A = next(INSN = l.rfe, SR = ESR0_PREV, 1). *)

module Expr = Invariant.Expr

type template =
  | Always
  | Edge
  | Next of int
  | Delta of { low : int; high : int }

type t = {
  name : string;
  invariant : Expr.t;
  template : template;
  (* orig() variables that need a previous-cycle holding register. *)
  history_vars : Trace.Var.id list;
}

let template_name = function
  | Always -> "always"
  | Edge -> "edge"
  | Next n -> Printf.sprintf "next(%d)" n
  | Delta { low; high } -> Printf.sprintf "delta(%d,%d)" low high

let history_vars_of invariant =
  List.sort_uniq compare
    (List.filter Trace.Var.is_orig (Expr.vars invariant))

let of_invariant ?(name = "") invariant =
  let history_vars = history_vars_of invariant in
  let template =
    match invariant.Expr.body with
    | Expr.Cmp ((Expr.Ge | Expr.Le), Expr.V v, Expr.Imm bound)
      when Trace.Var.id_kind v = Trace.Var.Diff ->
      (match invariant.Expr.body with
       | Expr.Cmp (Expr.Ge, _, _) -> Delta { low = bound; high = max_int }
       | _ -> Delta { low = min_int; high = bound })
    | Expr.Cmp (_, _, _) | Expr.In (_, _) ->
      if history_vars <> [] then Next 1 else Edge
  in
  let name =
    if String.equal name "" then
      Printf.sprintf "assert_%s_%s" invariant.Expr.point
        (template_name template)
    else name
  in
  { name; invariant; template; history_vars }

let of_invariants invariants =
  List.mapi
    (fun i inv ->
       of_invariant ~name:(Printf.sprintf "a%03d_%s" i inv.Expr.point) inv)
    invariants

(* Render the assertion in OVL-flavoured pseudo-Verilog, as documentation
   of the translation (the paper keeps this step manual as well). *)
let to_ovl_string t =
  let insn = t.invariant.Expr.point in
  let expr = Format.asprintf "%a" Expr.pp_body t.invariant.Expr.body in
  match t.template with
  | Always -> Printf.sprintf "assert_always(%s)" expr
  | Edge -> Printf.sprintf "assert_edge(INSN = %s, %s)" insn expr
  | Next n -> Printf.sprintf "assert_next(INSN = %s, %s, %d)" insn expr n
  | Delta { low; high } ->
    Printf.sprintf "assert_delta(INSN = %s, %s, [%s, %s])" insn expr
      (if low = min_int then "-inf" else string_of_int low)
      (if high = max_int then "+inf" else string_of_int high)
