(** Assertion-triggered recovery — the §2 system-design question the
    paper leaves out of scope: what happens when an assertion fires.
    Both published designs are provided: halt execution, or throw an
    exception to software so it can repair state and continue making
    forward progress (the SPECS result of Hicks et al.). *)

type policy =
  | Halt                (** stop the machine at the first firing *)
  | Exception of int    (** enter a recovery handler at this vector *)

type outcome = {
  firings : Monitor.firing list;  (** in occurrence order *)
  recoveries : int;               (** exception entries performed *)
  steps : int;                    (** records observed *)
  halted : [ `Assertion_halt | `Machine of Cpu.Machine.halt_reason | `Max_steps ];
}

val enter_recovery : Cpu.Machine.t -> vector:int -> unit
(** The assertion-violation exception entry: ESR <- SR, EPCR <- the
    resume point, supervisor mode, control to [vector]. *)

val run :
  ?max_steps:int -> ?max_recoveries:int -> ?cooldown:int ->
  policy:policy -> Ovl.t list -> Cpu.Machine.t -> outcome
(** Drive the machine under the battery's watch. After a recovery,
    assertions re-arm only after [cooldown] further records so the
    handler cannot livelock the monitor. *)
