lib/assertions/recovery.mli: Cpu Monitor Ovl
