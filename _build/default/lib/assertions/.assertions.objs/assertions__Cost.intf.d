lib/assertions/cost.mli: Ovl
