lib/assertions/monitor.mli: Ovl Trace
