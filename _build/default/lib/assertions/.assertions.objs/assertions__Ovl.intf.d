lib/assertions/ovl.mli: Invariant Trace
