lib/assertions/recovery.ml: Cpu Hashtbl Invariant Isa List Monitor Option Ovl Trace
