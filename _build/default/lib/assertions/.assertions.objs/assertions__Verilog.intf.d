lib/assertions/verilog.mli: Ovl Trace
