lib/assertions/monitor.ml: Hashtbl Invariant List Option Ovl Trace
