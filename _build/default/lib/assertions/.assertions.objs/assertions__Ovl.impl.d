lib/assertions/ovl.ml: Format Invariant List Printf String Trace
