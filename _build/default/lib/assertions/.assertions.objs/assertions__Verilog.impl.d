lib/assertions/verilog.ml: Buffer Hashtbl Invariant List Ovl Printf String Trace
