lib/assertions/cost.ml: Hashtbl Invariant List Ovl
