(** Elastic-net penalised logistic regression (§3.4): the glmnet
    algorithm implemented from scratch — an IRLS outer loop builds a
    weighted quadratic approximation of the log-likelihood; an inner
    cyclic coordinate-descent loop solves the penalised weighted least
    squares with soft-thresholding updates (Friedman, Hastie &
    Tibshirani, J. Stat. Software 2010). *)

type model = {
  beta : float array;   (** coefficients in standardised feature space *)
  intercept : float;
  lambda : float;
  alpha : float;        (** 1 = lasso, 0 = ridge; the paper uses 0.5 *)
  stats : float array * float array;
      (** feature means/stds captured at fit time *)
}

val sigmoid : float -> float

val soft_threshold : float -> float -> float

val fit :
  ?alpha:float -> ?max_iter:int -> lambda:float ->
  Matrix.t -> float array -> model
(** Fit on raw features (standardisation handled internally); [y] holds
    0/1 labels. *)

val predict_proba : model -> float array -> float
(** Probability of class 1 for one raw-feature observation. *)

val predict : model -> float array -> int

val nonzero_features : model -> (int * float) list
(** The (feature index, coefficient) pairs surviving the l1 penalty:
    the paper's Table 4. *)

val lambda_max : Matrix.t -> float array -> alpha:float -> float
(** The smallest lambda that zeroes every coefficient. *)

val lambda_path :
  Matrix.t -> float array -> alpha:float -> count:int -> float list
(** Log-spaced, strictly decreasing from {!lambda_max}. *)

val accuracy : model -> Matrix.t -> float array -> float

val cross_validate :
  ?alpha:float -> ?folds:int -> ?path:int -> seed:int ->
  Matrix.t -> float array -> float * float * (float * float) list
(** k-fold CV over a lambda path; returns the best (lambda, accuracy)
    and the full CV table for 1-SE-style rules. *)
