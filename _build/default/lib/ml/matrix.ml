(* Minimal dense float matrices for the inference models. Rows are
   observations, columns features. *)

type t = {
  rows : int;
  cols : int;
  data : float array; (* row major *)
}

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let of_rows rows_list =
  match rows_list with
  | [] -> invalid_arg "Matrix.of_rows: empty"
  | first :: _ ->
    let cols = Array.length first in
    let rows = List.length rows_list in
    let m = create rows cols in
    List.iteri
      (fun i row ->
         if Array.length row <> cols then invalid_arg "Matrix.of_rows: ragged";
         Array.blit row 0 m.data (i * cols) cols)
      rows_list;
    m

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let row m i = Array.sub m.data (i * m.cols) m.cols

let column m j = Array.init m.rows (fun i -> get m i j)

let transpose m =
  let t = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set t j i (get m i j)
    done
  done;
  t

(* C = A * B *)
let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

(* Column means and (population) standard deviations, for standardising. *)
let column_stats m =
  let means = Array.make m.cols 0.0 and stds = Array.make m.cols 0.0 in
  let n = float_of_int m.rows in
  for j = 0 to m.cols - 1 do
    let s = ref 0.0 in
    for i = 0 to m.rows - 1 do s := !s +. get m i j done;
    means.(j) <- !s /. n
  done;
  for j = 0 to m.cols - 1 do
    let s = ref 0.0 in
    for i = 0 to m.rows - 1 do
      let d = get m i j -. means.(j) in
      s := !s +. (d *. d)
    done;
    stds.(j) <- sqrt (!s /. n)
  done;
  (means, stds)

(* Standardise columns in a copy; zero-variance columns stay zero. *)
let standardize ?stats m =
  let means, stds = match stats with Some s -> s | None -> column_stats m in
  let out = create m.rows m.cols in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      let sd = stds.(j) in
      set out i j (if sd > 1e-12 then (get m i j -. means.(j)) /. sd else 0.0)
    done
  done;
  (out, (means, stds))

(* Sample covariance matrix of the columns. *)
let covariance m =
  let means, _ = column_stats m in
  let c = create m.cols m.cols in
  let n = float_of_int (max 1 (m.rows - 1)) in
  for j = 0 to m.cols - 1 do
    for k = j to m.cols - 1 do
      let s = ref 0.0 in
      for i = 0 to m.rows - 1 do
        s := !s +. ((get m i j -. means.(j)) *. (get m i k -. means.(k)))
      done;
      let v = !s /. n in
      set c j k v;
      set c k j v
    done
  done;
  c
