(** Minimal dense float matrices for the inference models. Rows are
    observations, columns features. *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row major *)
}

val create : int -> int -> t
(** Zero matrix. *)

val of_rows : float array list -> t
(** @raise Invalid_argument on an empty or ragged row list. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val row : t -> int -> float array
val column : t -> int -> float array

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product. @raise Invalid_argument on dimension mismatch. *)

val column_stats : t -> float array * float array
(** Per-column means and population standard deviations. *)

val standardize :
  ?stats:float array * float array -> t -> t * (float array * float array)
(** Column-standardised copy; zero-variance columns map to zero. *)

val covariance : t -> t
(** Sample covariance of the columns. *)
