lib/ml/matrix.mli:
