lib/ml/logreg.mli: Matrix
