lib/ml/pca.mli: Matrix
