lib/ml/logreg.ml: Array Float List Matrix Util
