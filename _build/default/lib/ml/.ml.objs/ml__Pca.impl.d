lib/ml/pca.ml: Array Float List Matrix
