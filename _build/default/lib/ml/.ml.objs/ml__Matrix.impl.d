lib/ml/matrix.ml: Array List
