(* Principal component analysis via a cyclic Jacobi eigensolver on the
   covariance matrix, used to reproduce Figure 4: the projection of the
   labeled invariants onto the first two principal components of the
   selected (non-zero-coefficient) features. *)

type t = {
  components : float array array; (* [k][p], rows are eigenvectors *)
  eigenvalues : float array;
  means : float array;
  stds : float array;
}

(* Jacobi eigendecomposition of a symmetric matrix. Returns eigenvalues
   and the orthogonal matrix of eigenvectors (as columns). *)
let jacobi (a : Matrix.t) ~max_sweeps =
  let n = a.Matrix.rows in
  let m = Matrix.create n n in
  Array.blit a.Matrix.data 0 m.Matrix.data 0 (n * n);
  let v = Matrix.create n n in
  for i = 0 to n - 1 do Matrix.set v i i 1.0 done;
  let off_diag () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (Matrix.get m i j ** 2.0)
      done
    done;
    !s
  in
  let sweep = ref 0 in
  while off_diag () > 1e-18 && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Matrix.get m p q in
        if Float.abs apq > 1e-15 then begin
          let app = Matrix.get m p p and aqq = Matrix.get m q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Rotate rows/columns p and q. *)
          for k = 0 to n - 1 do
            let mkp = Matrix.get m k p and mkq = Matrix.get m k q in
            Matrix.set m k p ((c *. mkp) -. (s *. mkq));
            Matrix.set m k q ((s *. mkp) +. (c *. mkq))
          done;
          for k = 0 to n - 1 do
            let mpk = Matrix.get m p k and mqk = Matrix.get m q k in
            Matrix.set m p k ((c *. mpk) -. (s *. mqk));
            Matrix.set m q k ((s *. mpk) +. (c *. mqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Matrix.get v k p and vkq = Matrix.get v k q in
            Matrix.set v k p ((c *. vkp) -. (s *. vkq));
            Matrix.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let eigenvalues = Array.init n (fun i -> Matrix.get m i i) in
  (eigenvalues, v)

(* Fit a PCA keeping the top [k] components of the standardised data. *)
let fit ?(k = 2) (x : Matrix.t) =
  let xs, (means, stds) = Matrix.standardize x in
  let cov = Matrix.covariance xs in
  let eigenvalues, vectors = jacobi cov ~max_sweeps:100 in
  let p = x.Matrix.cols in
  let order = Array.init p (fun i -> i) in
  Array.sort (fun a b -> compare eigenvalues.(b) eigenvalues.(a)) order;
  let k = min k p in
  let components =
    Array.init k
      (fun rank ->
         let col = order.(rank) in
         Array.init p (fun row -> Matrix.get vectors row col))
  in
  { components;
    eigenvalues = Array.init k (fun rank -> eigenvalues.(order.(rank)));
    means; stds }

(* Project one observation onto the principal components. *)
let project t row =
  Array.map
    (fun component ->
       let s = ref 0.0 in
       Array.iteri
         (fun j cj ->
            if t.stds.(j) > 1e-12 then
              s := !s +. (cj *. ((row.(j) -. t.means.(j)) /. t.stds.(j))))
         component;
       !s)
    t.components

let explained_variance t =
  let total = Array.fold_left ( +. ) 0.0 t.eigenvalues in
  if total <= 0.0 then Array.map (fun _ -> 0.0) t.eigenvalues
  else Array.map (fun e -> e /. total) t.eigenvalues

(* Between/within-class separation of a labeled 2-D projection: the ratio
   of the distance between class centroids to the mean intra-class spread.
   Used to quantify Figure 4's "invariants cluster adequately". *)
let separation points labels =
  let centroid sel =
    let xs = List.filteri (fun i _ -> sel i) points in
    let n = float_of_int (max 1 (List.length xs)) in
    let sx = List.fold_left (fun a p -> a +. p.(0)) 0.0 xs /. n in
    let sy = List.fold_left (fun a p -> a +. p.(1)) 0.0 xs /. n in
    (sx, sy, xs)
  in
  let labels = Array.of_list labels in
  let cx0, cy0, pts0 = centroid (fun i -> labels.(i) = 0) in
  let cx1, cy1, pts1 = centroid (fun i -> labels.(i) = 1) in
  let dist = sqrt (((cx1 -. cx0) ** 2.0) +. ((cy1 -. cy0) ** 2.0)) in
  let spread cx cy pts =
    let n = float_of_int (max 1 (List.length pts)) in
    List.fold_left
      (fun a p -> a +. sqrt (((p.(0) -. cx) ** 2.0) +. ((p.(1) -. cy) ** 2.0)))
      0.0 pts
    /. n
  in
  let within = 0.5 *. (spread cx0 cy0 pts0 +. spread cx1 cy1 pts1) in
  if within <= 1e-12 then infinity else dist /. within
