(** Principal component analysis with a cyclic Jacobi eigensolver, used to
    reproduce Figure 4: the projection of the labeled invariants onto the
    first two principal components of the selected features. *)

type t = {
  components : float array array;  (** rows are eigenvectors *)
  eigenvalues : float array;
  means : float array;
  stds : float array;
}

val jacobi : Matrix.t -> max_sweeps:int -> float array * Matrix.t
(** Eigendecomposition of a symmetric matrix: eigenvalues and the
    orthogonal eigenvector matrix (columns). *)

val fit : ?k:int -> Matrix.t -> t
(** The top [k] (default 2) components of the standardised data. *)

val project : t -> float array -> float array
(** One raw-feature observation onto the retained components. *)

val explained_variance : t -> float array

val separation : float array list -> int list -> float
(** Between/within-class separation of a labeled 2-D projection: the
    centroid distance over the mean intra-class spread. Quantifies
    Figure 4's "invariants cluster adequately". *)
