(* Elastic-net penalised logistic regression (§3.4), the glmnet algorithm
   implemented from scratch: an IRLS outer loop builds a weighted
   quadratic approximation of the log-likelihood; an inner cyclic
   coordinate-descent loop solves the penalised weighted least squares
   with the soft-thresholding update

       beta_j <- S(sum_i w_i x_ij r_ij, lambda*alpha)
                 / (sum_i w_i x_ij^2 / N + lambda*(1-alpha))

   Friedman, Hastie & Tibshirani, "Regularization paths for generalized
   linear models via coordinate descent", J. Stat. Software 2010. *)

type model = {
  beta : float array;     (* coefficients in standardised feature space *)
  intercept : float;
  lambda : float;
  alpha : float;
  stats : float array * float array; (* feature means/stds for prediction *)
}

let sigmoid z =
  if z > 30.0 then 1.0 else if z < -30.0 then 0.0 else 1.0 /. (1.0 +. exp (-.z))

let soft_threshold z gamma =
  if z > gamma then z -. gamma
  else if z < -.gamma then z +. gamma
  else 0.0

(* One elastic-net fit at a fixed lambda on standardised X. [y] is 0/1. *)
let fit_standardized x y ~alpha ~lambda ~max_iter =
  let n = x.Matrix.rows and p = x.Matrix.cols in
  let nf = float_of_int n in
  let beta = Array.make p 0.0 in
  let intercept = ref 0.0 in
  let eta = Array.make n 0.0 in  (* linear predictor *)
  let converged = ref false in
  let outer = ref 0 in
  while not !converged && !outer < max_iter do
    incr outer;
    (* IRLS weights and working response around the current estimate. *)
    let w = Array.make n 0.0 and z = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let pi = sigmoid eta.(i) in
      let wi = Float.max (pi *. (1.0 -. pi)) 1e-5 in
      w.(i) <- wi;
      z.(i) <- eta.(i) +. ((y.(i) -. pi) /. wi)
    done;
    (* Residual of the working response w.r.t. the current fit. *)
    let r = Array.init n (fun i -> z.(i) -. eta.(i)) in
    let max_delta = ref 0.0 in
    (* Coordinate descent sweeps. *)
    for _sweep = 0 to 19 do
      (* Intercept (unpenalised). *)
      let num = ref 0.0 and den = ref 0.0 in
      for i = 0 to n - 1 do
        num := !num +. (w.(i) *. r.(i));
        den := !den +. w.(i)
      done;
      let d0 = !num /. !den in
      intercept := !intercept +. d0;
      for i = 0 to n - 1 do r.(i) <- r.(i) -. d0 done;
      for j = 0 to p - 1 do
        let num = ref 0.0 and den = ref 0.0 in
        for i = 0 to n - 1 do
          let xij = Matrix.get x i j in
          num := !num +. (w.(i) *. xij *. (r.(i) +. (xij *. beta.(j))));
          den := !den +. (w.(i) *. xij *. xij)
        done;
        let new_bj =
          soft_threshold (!num /. nf) (lambda *. alpha)
          /. ((!den /. nf) +. (lambda *. (1.0 -. alpha)))
        in
        let delta = new_bj -. beta.(j) in
        if Float.abs delta > 1e-12 then begin
          for i = 0 to n - 1 do
            r.(i) <- r.(i) -. (Matrix.get x i j *. delta)
          done;
          beta.(j) <- new_bj;
          if Float.abs delta > !max_delta then max_delta := Float.abs delta
        end
      done
    done;
    (* Refresh the linear predictor from scratch (numerical hygiene). *)
    for i = 0 to n - 1 do
      let s = ref !intercept in
      for j = 0 to p - 1 do
        if beta.(j) <> 0.0 then s := !s +. (Matrix.get x i j *. beta.(j))
      done;
      eta.(i) <- !s
    done;
    if !max_delta < 1e-6 then converged := true
  done;
  (beta, !intercept)

let fit ?(alpha = 0.5) ?(max_iter = 50) ~lambda x y =
  let xs, stats = Matrix.standardize x in
  let beta, intercept = fit_standardized xs y ~alpha ~lambda ~max_iter in
  { beta; intercept; lambda; alpha; stats }

(* Probability that observation [row] is in class 1. *)
let predict_proba model row =
  let means, stds = model.stats in
  let s = ref model.intercept in
  Array.iteri
    (fun j b ->
       if b <> 0.0 && stds.(j) > 1e-12 then
         s := !s +. (b *. ((row.(j) -. means.(j)) /. stds.(j))))
    model.beta;
  sigmoid !s

let predict model row = if predict_proba model row >= 0.5 then 1 else 0

let nonzero_features model =
  let out = ref [] in
  Array.iteri (fun j b -> if b <> 0.0 then out := (j, b) :: !out) model.beta;
  List.rev !out

(* The smallest lambda that zeroes every coefficient, glmnet's path top. *)
let lambda_max x y ~alpha =
  let xs, _ = Matrix.standardize x in
  let n = xs.Matrix.rows and p = xs.Matrix.cols in
  let ybar = Array.fold_left ( +. ) 0.0 y /. float_of_int n in
  let best = ref 0.0 in
  for j = 0 to p - 1 do
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. (Matrix.get xs i j *. (y.(i) -. ybar))
    done;
    let v = Float.abs !s /. float_of_int n in
    if v > !best then best := v
  done;
  !best /. Float.max alpha 0.001

(* Log-spaced lambda path. *)
let lambda_path x y ~alpha ~count =
  let top = Float.max (lambda_max x y ~alpha) 1e-4 in
  let bottom = top *. 0.001 in
  let ratio = (bottom /. top) ** (1.0 /. float_of_int (count - 1)) in
  List.init count (fun k -> top *. (ratio ** float_of_int k))

let accuracy model x y =
  let n = x.Matrix.rows in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    if predict model (Matrix.row x i) = int_of_float y.(i) then incr correct
  done;
  float_of_int !correct /. float_of_int (max 1 n)

(* k-fold cross validation over a lambda path; returns the lambda with the
   best mean held-out accuracy and the CV table. *)
let cross_validate ?(alpha = 0.5) ?(folds = 3) ?(path = 30) ~seed x y =
  let n = x.Matrix.rows in
  let perm = Array.init n (fun i -> i) in
  let rng = Util.Prng.create seed in
  Util.Prng.shuffle rng perm;
  let fold_of = Array.make n 0 in
  Array.iteri (fun rank i -> fold_of.(i) <- rank mod folds) perm;
  let lambdas = lambda_path x y ~alpha ~count:path in
  let score lambda =
    let accs =
      List.init folds
        (fun f ->
           let train_idx =
             List.filter (fun i -> fold_of.(i) <> f) (List.init n (fun i -> i))
           and test_idx =
             List.filter (fun i -> fold_of.(i) = f) (List.init n (fun i -> i))
           in
           let sub idx =
             Matrix.of_rows (List.map (fun i -> Matrix.row x i) idx)
           in
           let suby idx = Array.of_list (List.map (fun i -> y.(i)) idx) in
           let m = fit ~alpha ~lambda (sub train_idx) (suby train_idx) in
           accuracy m (sub test_idx) (suby test_idx))
    in
    List.fold_left ( +. ) 0.0 accs /. float_of_int folds
  in
  let table = List.map (fun l -> (l, score l)) lambdas in
  let best =
    List.fold_left
      (fun (bl, ba) (l, a) -> if a > ba then (l, a) else (bl, ba))
      (List.hd lambdas, -1.0) table
  in
  (fst best, snd best, table)
