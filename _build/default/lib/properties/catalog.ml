(* The security-property catalog of §5.4/§5.5: the 24 processor-core
   properties from SPECS [22] and Security-Checker [11] (p1..p24), the
   three out-of-core ones (p25..p27, not targets), and the three new
   properties this tool chain contributes (p28..p30, Table 7).

   Each in-scope property carries a structural matcher deciding whether a
   given invariant *represents* it, which is how Table 6/7 coverage is
   evaluated against the identified and inferred SCI sets. *)

module Expr = Invariant.Expr
module Var = Trace.Var

type origin = Specs | Security_checker | New_property

type expectation =
  | Reachable            (* expressible over our ISA-level variables *)
  | Needs_microarch      (* the paper's starred rows: p18, p24 *)
  | Not_generated        (* the paper's N rows: p10, p22 *)
  | Outside_core         (* the paper's peripheral rows: p25..p27 *)

type t = {
  id : string;
  description : string;
  category : Bugs.Registry.category;
  origin : origin;
  expectation : expectation;
  matcher : Expr.t -> bool;
}

(* ---- matcher building blocks ---- *)

let never _ = false

let mentions name inv =
  List.exists (fun id -> String.equal (Var.id_name id) name) (Expr.vars inv)

let mentions_base name inv =
  List.exists (fun id -> String.equal (Var.id_base_name id) name) (Expr.vars inv)

let point_is names (inv : Expr.t) = List.mem inv.Expr.point names

let point_pred p (inv : Expr.t) = p inv.Expr.point

let is_load_point = point_is [ "l.lwz"; "l.lws"; "l.lbz"; "l.lbs"; "l.lhz"; "l.lhs" ]
let is_store_point = point_is [ "l.sw"; "l.sb"; "l.sh" ]
let is_jump_point = point_is [ "l.j"; "l.jal"; "l.jr"; "l.jalr"; "l.bf"; "l.bnf" ]
let is_setflag_point =
  point_pred (fun p ->
      String.length p > 3 && String.sub p 0 4 = "l.sf")

(* Points at which an exception can be observed in our corpus. *)
let is_exception_point inv =
  point_is [ "l.sys"; "l.trap"; "illegal" ] inv
  || mentions "VEC" inv || mentions "EXN" inv || mentions "EPCR_D" inv

let eq_between a b (inv : Expr.t) =
  match inv.Expr.body with
  | Expr.Cmp (Expr.Eq, Expr.V x, Expr.V y) ->
    let nx = Var.id_name x and ny = Var.id_name y in
    (String.equal nx a && String.equal ny b)
    || (String.equal nx b && String.equal ny a)
  | _ -> false

let eq_const name value (inv : Expr.t) =
  match inv.Expr.body with
  | Expr.Cmp (Expr.Eq, Expr.V x, Expr.Imm c)
  | Expr.Cmp (Expr.Eq, Expr.Imm c, Expr.V x) ->
    String.equal (Var.id_name x) name && c = value
  | _ -> false

(* "Y - X = c" or "X = Y + c"-shaped link between two named variables. *)
let diff_between a b (inv : Expr.t) =
  match inv.Expr.body with
  | Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Minus, x, y), Expr.Imm _) ->
    let nx = Var.id_name x and ny = Var.id_name y in
    (String.equal nx a && String.equal ny b)
    || (String.equal nx b && String.equal ny a)
  | _ -> false

(* A self-framing invariant GPRn = orig(GPRn). *)
let same_reg_frame (inv : Expr.t) =
  match inv.Expr.body with
  | Expr.Cmp (Expr.Eq, Expr.V x, Expr.V y) ->
    let bx = Var.id_base_name x and by = Var.id_base_name y in
    String.equal bx by
    && Var.is_orig x <> Var.is_orig y
    && String.length bx > 3 && String.sub bx 0 3 = "GPR"
  | _ -> false

let vector_const (inv : Expr.t) =
  match inv.Expr.body with
  | Expr.Cmp (Expr.Eq, Expr.V x, Expr.Imm c)
  | Expr.Cmp (Expr.Eq, Expr.Imm c, Expr.V x) ->
    (String.equal (Var.id_name x) "PC"
     || String.equal (Var.id_name x) "VEC"
     || String.equal (Var.id_name x) "NPC")
    && c land 0xFF = 0 && c > 0 && c <= 0xF04
  | _ -> false

(* ---- the catalog ---- *)

let catalog : t list =
  let open Bugs.Registry in
  [ (* SPECS properties *)
    { id = "p1"; description = "Execution privilege matches page privilege";
      category = Xr; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          (is_load_point inv || is_store_point inv) && mentions_base "SM" inv) };
    { id = "p2"; description = "SPR equals GPR in register move instructions";
      category = Ru; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          point_is [ "l.mtspr"; "l.mfspr" ] inv
          && (eq_between "SPR" "OPB" inv || eq_between "SPR" "DEST" inv
              || eq_between "orig(SPR)" "DEST" inv)) };
    { id = "p3"; description = "Updates to exception registers make sense";
      category = Xr; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          mentions "EPCR_D" inv
          || eq_between "ESR0" "orig(SR)" inv
          || eq_between "EEAR0" "orig(PC)" inv
          || (is_exception_point inv && diff_between "EEAR0" "orig(NPC)" inv)) };
    { id = "p4"; description = "Destination matches the target";
      category = Cr; origin = Specs; expectation = Reachable;
      matcher = (fun inv -> mentions "REGD" inv && mentions "DEST" inv) };
    { id = "p5"; description = "Memory value in equals register value out";
      category = Ma; origin = Specs; expectation = Reachable;
      matcher = (fun inv -> is_store_point inv && eq_between "MEMBUS" "OPB" inv) };
    { id = "p6"; description = "Register value in equals memory value out";
      category = Ma; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          is_load_point inv
          && (eq_between "DEST" "MEMBUS" inv
              || mentions "EXT_HI" inv || mentions "EXT_SIGN" inv)) };
    { id = "p7"; description = "Memory address equals effective address";
      category = Ma; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          (is_load_point inv || is_store_point inv)
          && (eq_between "EA" "EA_REF" inv || diff_between "EA" "EA_REF" inv)) };
    { id = "p8"; description = "Privilege escalates correctly";
      category = Xr; origin = Specs; expectation = Reachable;
      matcher = (fun inv -> is_exception_point inv && eq_const "SM" 1 inv) };
    { id = "p9"; description = "Privilege deescalates correctly";
      category = Xr; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          point_is [ "l.rfe" ] inv
          && (eq_between "SR" "orig(ESR0)" inv || mentions_base "SM" inv)) };
    { id = "p10"; description = "Jumps update the PC correctly";
      category = Cf; origin = Specs; expectation = Not_generated;
      matcher = (fun inv ->
          is_jump_point inv
          && (eq_between "PC" "EA" inv || diff_between "PC" "EA" inv)) };
    { id = "p11"; description = "Jumps update the LR correctly";
      category = Cf; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          point_is [ "l.jal"; "l.jalr" ] inv
          && (diff_between "GPR9" "orig(PC)" inv
              || diff_between "GPR9" "orig(NPC)" inv
              || diff_between "DEST" "orig(PC)" inv
              || diff_between "DEST" "orig(NPC)" inv)) };
    { id = "p12"; description = "Instruction is in a valid format";
      category = Ie; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          eq_between "IR" "MEM_AT_PC" inv || mentions "OPCODE" inv) };
    { id = "p13"; description = "Continuous control flow";
      category = Cf; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          (not (is_jump_point inv))
          && (diff_between "PC" "orig(PC)" inv
              || diff_between "NPC" "PC" inv
              || diff_between "NPC" "orig(NPC)" inv
              || vector_const inv)) };
    { id = "p14"; description = "Exception return updates state correctly";
      category = Xr; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          point_is [ "l.rfe" ] inv
          && (mentions_base "EPCR0" inv || mentions_base "SR" inv
              || mentions_base "ESR0" inv)) };
    { id = "p15"; description = "Reg change implies that it is the instruction target";
      category = Cr; origin = Specs; expectation = Reachable;
      matcher = same_reg_frame };
    { id = "p16"; description = "SR is not written to a GPR in user mode";
      category = Ru; origin = Specs; expectation = Reachable;
      matcher = (fun inv ->
          match inv.Expr.body with
          | Expr.Cmp (Expr.Ne, Expr.V x, Expr.V y) ->
            let names = [ Var.id_name x; Var.id_name y ] in
            List.mem "SR" names && (List.mem "DEST" names)
          | _ -> false) };
    { id = "p17"; description = "Interrupt implies handled";
      category = Xr; origin = Specs; expectation = Reachable;
      matcher = (fun inv -> is_exception_point inv && vector_const inv) };
    { id = "p18"; description = "Instr unchanged in pipeline";
      category = Ie; origin = Specs; expectation = Needs_microarch;
      matcher = never };
    (* Security-Checker properties *)
    { id = "p19"; description = "SPR modified only in supervisor mode";
      category = Ru; origin = Security_checker; expectation = Reachable;
      matcher = (fun inv ->
          point_is [ "l.mtspr"; "l.mfspr" ] inv && eq_const "SM" 1 inv) };
    { id = "p20"; description = "Enter supervisor mode is on reset or exception";
      category = Xr; origin = Security_checker; expectation = Reachable;
      matcher = (fun inv ->
          is_exception_point inv && mentions_base "SM" inv
          && (mentions "VEC" inv || mentions "EXN" inv || eq_const "SM" 1 inv)) };
    { id = "p21"; description = "Exception handling implies exception mechanism activated";
      category = Xr; origin = Security_checker; expectation = Reachable;
      matcher = (fun inv ->
          is_exception_point inv
          && (eq_const "EXN" 1 inv || eq_between "ESR0" "orig(SR)" inv)) };
    { id = "p22"; description = "Unspecified custom instructions are not allowed";
      category = Ie; origin = Security_checker; expectation = Not_generated;
      matcher = never };
    { id = "p23"; description = "Exception handler accessed only during exception, in supvr mode, or on reset";
      category = Xr; origin = Security_checker; expectation = Reachable;
      matcher = (fun inv ->
          vector_const inv
          || (is_exception_point inv && mentions "VEC" inv)) };
    { id = "p24"; description = "Page fault generated if MMU detects an access control violation";
      category = Ma; origin = Security_checker; expectation = Needs_microarch;
      matcher = never };
    (* Outside the processor core *)
    { id = "p25"; description = "UART output changes on a write command from CPU";
      category = Ma; origin = Security_checker; expectation = Outside_core;
      matcher = never };
    { id = "p26"; description = "Only transmit cmd or initialization change Ethernet data output";
      category = Ma; origin = Security_checker; expectation = Outside_core;
      matcher = never };
    { id = "p27"; description = "Debug Unit's value and ctrl regs only accessible from supvr mode";
      category = Ru; origin = Security_checker; expectation = Outside_core;
      matcher = never };
    (* New properties (Table 7) *)
    { id = "p28"; description = "Flags that influence control flow should be set correctly";
      category = Cf; origin = New_property; expectation = Reachable;
      matcher = (fun inv ->
          is_setflag_point inv
          && (mentions "PROD_U" inv || mentions "PROD_S" inv
              || mentions "CMPZ" inv)) };
    { id = "p29"; description = "Calculation of memory address or memory data is correct";
      category = Ma; origin = New_property; expectation = Reachable;
      matcher = (fun inv ->
          eq_const "GPR0" 0 inv || eq_const "orig(GPR0)" 0 inv
          || (point_pred (fun p -> String.length p > 5 && String.sub p 0 6 = "l.extw") inv
              && eq_between "DEST" "OPA" inv)
          || mentions "EA_REF" inv) };
    { id = "p30"; description = "Link address is not modified during function call execution";
      category = Cf; origin = New_property; expectation = Reachable;
      matcher = (fun inv ->
          (not (point_is [ "l.jal"; "l.jalr" ] inv))
          && (eq_between "GPR9" "orig(GPR9)" inv)) };
  ]

let by_id id = List.find_opt (fun p -> String.equal p.id id) catalog

let in_scope p =
  match p.expectation with
  | Reachable | Not_generated -> true
  | Needs_microarch | Outside_core -> false

(* ---- coverage evaluation (the Table 6/7 harness) ---- *)

type coverage = {
  property : t;
  from_identification : bool;
  found_by_bugs : string list; (* bug ids whose SCI matched *)
  from_inference : bool;
}

let evaluate ~(identified : (string * Expr.t list) list) ~(inferred : Expr.t list) =
  List.map
    (fun property ->
       let found_by_bugs =
         List.filter_map
           (fun (bug_id, sci) ->
              if List.exists property.matcher sci then Some bug_id else None)
           identified
       in
       { property;
         from_identification = found_by_bugs <> [];
         found_by_bugs;
         from_inference = List.exists property.matcher inferred })
    catalog
