(** The security-property catalog of §5.4/§5.5: the 24 processor-core
    properties from SPECS and Security-Checker (p1..p24), the three
    out-of-core ones (p25..p27), and the three new properties this tool
    chain contributes (p28..p30, Table 7). Each in-scope property carries
    a structural matcher deciding whether an invariant represents it —
    the Table 6/7 coverage evaluation. *)

type origin = Specs | Security_checker | New_property

type expectation =
  | Reachable        (** expressible over our ISA-level variables *)
  | Needs_microarch  (** the paper's starred rows: p18, p24 *)
  | Not_generated    (** the paper's N rows: p10, p22 *)
  | Outside_core     (** peripherals: p25..p27 *)

type t = {
  id : string;
  description : string;
  category : Bugs.Registry.category;
  origin : origin;
  expectation : expectation;
  matcher : Invariant.Expr.t -> bool;
}

val catalog : t list
(** All 30 properties, in paper order. *)

val by_id : string -> t option

val in_scope : t -> bool
(** The 22 prior-work properties the paper evaluates against, plus the
    three new ones. *)

type coverage = {
  property : t;
  from_identification : bool;
  found_by_bugs : string list;  (** bug ids whose SCI matched *)
  from_inference : bool;
}

val evaluate :
  identified:(string * Invariant.Expr.t list) list ->
  inferred:Invariant.Expr.t list ->
  coverage list
(** [identified] maps bug ids to their SCI; [inferred] is the surviving
    inference output. *)
