lib/properties/catalog.ml: Bugs Invariant List String Trace
