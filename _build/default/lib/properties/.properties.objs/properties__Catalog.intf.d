lib/properties/catalog.mli: Bugs Invariant
