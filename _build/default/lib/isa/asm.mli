(** A small assembler: programs are item lists with symbolic labels;
    {!assemble} resolves labels into branch displacements and produces the
    memory image. Workloads and bug triggers are written against
    {!Build}. *)

type jump_kind = Jmp | Jal | Bf | Bnf

type item =
  | Label of string
  | I of Insn.t                 (** a concrete instruction (4 bytes) *)
  | J of jump_kind * string     (** control flow to a label (4 bytes) *)
  | La of Insn.reg * string     (** load label address: movhi + ori (8 bytes) *)
  | Word of int                 (** literal data word *)

type program = { origin : int; items : item list }

exception Unknown_label of string

val size_of_item : item -> int

val assemble : program -> (int * int) list
(** The [(address, word)] memory image.
    @raise Unknown_label on an unresolved label. *)

val label_address : program -> string -> int
(** The resolved address of a label.
    @raise Unknown_label when absent. *)

val displacement : pc:int -> target:int -> int
(** The encoded 26-bit word displacement from [pc] to [target]. *)

(** Combinators that read like OR1k assembly listings. Branches
    ([j]/[jal]/[bf]/[bnf]/[jr]/[jalr]) have an architectural delay slot:
    always follow them with one more instruction. *)
module Build : sig
  val label : string -> item
  val word : int -> item

  val add : int -> int -> int -> item
  val addc : int -> int -> int -> item
  val sub : int -> int -> int -> item
  val and_ : int -> int -> int -> item
  val or_ : int -> int -> int -> item
  val xor : int -> int -> int -> item
  val mul : int -> int -> int -> item
  val mulu : int -> int -> int -> item
  val div : int -> int -> int -> item
  val divu : int -> int -> int -> item
  val sll : int -> int -> int -> item
  val srl : int -> int -> int -> item
  val sra : int -> int -> int -> item
  val ror : int -> int -> int -> item

  val addi : int -> int -> int -> item
  val addic : int -> int -> int -> item
  val andi : int -> int -> int -> item
  val ori : int -> int -> int -> item
  val xori : int -> int -> int -> item
  val muli : int -> int -> int -> item

  val slli : int -> int -> int -> item
  val srli : int -> int -> int -> item
  val srai : int -> int -> int -> item
  val rori : int -> int -> int -> item

  val extbs : int -> int -> item
  val extbz : int -> int -> item
  val exths : int -> int -> item
  val exthz : int -> int -> item
  val extws : int -> int -> item
  val extwz : int -> int -> item

  val sfeq : int -> int -> item
  val sfne : int -> int -> item
  val sfgtu : int -> int -> item
  val sfgeu : int -> int -> item
  val sfltu : int -> int -> item
  val sfleu : int -> int -> item
  val sfgts : int -> int -> item
  val sfges : int -> int -> item
  val sflts : int -> int -> item
  val sfles : int -> int -> item

  val sfeqi : int -> int -> item
  val sfnei : int -> int -> item
  val sfgtui : int -> int -> item
  val sfgeui : int -> int -> item
  val sfltui : int -> int -> item
  val sfleui : int -> int -> item
  val sfgtsi : int -> int -> item
  val sfgesi : int -> int -> item
  val sfltsi : int -> int -> item
  val sflesi : int -> int -> item

  val lwz : int -> int -> int -> item
  (** [lwz rd ra off]: rd <- mem\[ra + off\]. *)

  val lws : int -> int -> int -> item
  val lbz : int -> int -> int -> item
  val lbs : int -> int -> int -> item
  val lhz : int -> int -> int -> item
  val lhs : int -> int -> int -> item

  val sw : int -> int -> int -> item
  (** [sw off ra rb]: mem\[ra + off\] <- rb. *)

  val sb : int -> int -> int -> item
  val sh : int -> int -> int -> item

  val j : string -> item
  val jal : string -> item
  val bf : string -> item
  val bnf : string -> item
  val jr : int -> item
  val jalr : int -> item

  val movhi : int -> int -> item
  val mfspr : int -> int -> int -> item
  val mtspr : int -> int -> int -> item
  val mac : int -> int -> item
  val msb : int -> int -> item
  val maci : int -> int -> item
  val macrc : int -> item
  val sys : int -> item
  val trap : int -> item
  val rfe : item
  val nop : item

  val la : int -> string -> item
  (** Load a label's address (two words). *)

  val li32 : int -> int -> item list
  (** Load a full 32-bit constant (movhi + ori). *)

  val li : int -> int -> item
  (** Load a small constant in [\[0, 0x8000)].
      @raise Invalid_argument outside that range (use {!li32}). *)
end
