(** Binary encoding and decoding of ORBIS32 instructions, following the
    OpenRISC 1000 architecture manual opcode map. *)

val encode : Insn.t -> int
(** The 32-bit instruction word.
    @raise Invalid_argument on an out-of-range register index. *)

val decode : int -> Insn.t option
(** Total: words that do not correspond to an implemented instruction
    return [None] and the processor raises an illegal-instruction
    exception on them. [decode (encode i) = Some i] for every well-formed
    [i]. *)
