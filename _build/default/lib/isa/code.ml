(* Binary encoding and decoding of ORBIS32 instructions, following the
   OpenRISC 1000 architecture manual opcode map. [decode] is total: words
   that do not correspond to an implemented instruction return [None] and
   the processor raises an illegal-instruction exception on them. *)

open Insn

let reg_ok r = r >= 0 && r <= 31

let check_reg r = if not (reg_ok r) then invalid_arg "Code.encode: bad register"

let imm16 i = i land 0xFFFF
let disp26 d = d land 0x3FF_FFFF

(* Split a 16-bit immediate across bits [25:21] and [10:0] as l.mtspr and
   the store instructions do. *)
let split_imm16 i =
  let i = imm16 i in
  ((i lsr 11) lsl 21) lor (i land 0x7FF)

let join_imm16 word = (((word lsr 21) land 0x1F) lsl 11) lor (word land 0x7FF)

let sf_code = function
  | Sfeq -> 0x0 | Sfne -> 0x1
  | Sfgtu -> 0x2 | Sfgeu -> 0x3 | Sfltu -> 0x4 | Sfleu -> 0x5
  | Sfgts -> 0xA | Sfges -> 0xB | Sflts -> 0xC | Sfles -> 0xD

let sf_of_code = function
  | 0x0 -> Some Sfeq | 0x1 -> Some Sfne
  | 0x2 -> Some Sfgtu | 0x3 -> Some Sfgeu | 0x4 -> Some Sfltu | 0x5 -> Some Sfleu
  | 0xA -> Some Sfgts | 0xB -> Some Sfges | 0xC -> Some Sflts | 0xD -> Some Sfles
  | _ -> None

let load_opc = function
  | Lwz -> 0x21 | Lws -> 0x22 | Lbz -> 0x23 | Lbs -> 0x24 | Lhz -> 0x25 | Lhs -> 0x26

let store_opc = function Sw -> 0x35 | Sb -> 0x36 | Sh -> 0x37

let alui_opc = function
  | Addi -> 0x27 | Addic -> 0x28 | Andi -> 0x29
  | Ori -> 0x2A | Xori -> 0x2B | Muli -> 0x2C

let shifti_code = function Slli -> 0 | Srli -> 1 | Srai -> 2 | Rori -> 3

(* (secondary bits 9:8 or 9:6, low nibble) for opcode 0x38 ALU forms. *)
let alu_code = function
  | Add -> (0x0, 0x0) | Addc -> (0x0, 0x1) | Sub -> (0x0, 0x2)
  | And -> (0x0, 0x3) | Or -> (0x0, 0x4) | Xor -> (0x0, 0x5)
  | Mul -> (0x3, 0x6) | Div -> (0x3, 0x9) | Divu -> (0x3, 0xA) | Mulu -> (0x3, 0xB)
  | Sll -> (0x0, 0x8) | Srl -> (0x1, 0x8) | Sra -> (0x2, 0x8) | Ror -> (0x3, 0x8)

let ext_code = function
  | Exths -> (0x0, 0xC) | Extbs -> (0x1, 0xC) | Exthz -> (0x2, 0xC)
  | Extbz -> (0x3, 0xC) | Extws -> (0x0, 0xD) | Extwz -> (0x1, 0xD)

let encode t =
  let opc o = o lsl 26 in
  match t with
  | Jump d -> opc 0x00 lor disp26 d
  | Jump_link d -> opc 0x01 lor disp26 d
  | Branch_noflag d -> opc 0x03 lor disp26 d
  | Branch_flag d -> opc 0x04 lor disp26 d
  | Nop k -> opc 0x05 lor (1 lsl 24) lor imm16 k
  | Movhi (rd, k) -> check_reg rd; opc 0x06 lor (rd lsl 21) lor imm16 k
  | Macrc rd -> check_reg rd; opc 0x06 lor (rd lsl 21) lor (1 lsl 16)
  | Sys k -> opc 0x08 lor imm16 k
  | Trap k -> opc 0x08 lor (0x8 lsl 21) lor imm16 k
  | Rfe -> opc 0x09
  | Jump_reg rb -> check_reg rb; opc 0x11 lor (rb lsl 11)
  | Jump_link_reg rb -> check_reg rb; opc 0x12 lor (rb lsl 11)
  | Maci (ra, k) -> check_reg ra; opc 0x13 lor (ra lsl 16) lor imm16 k
  | Load (op, rd, ra, off) ->
    check_reg rd; check_reg ra;
    opc (load_opc op) lor (rd lsl 21) lor (ra lsl 16) lor imm16 off
  | Alui (op, rd, ra, k) ->
    check_reg rd; check_reg ra;
    opc (alui_opc op) lor (rd lsl 21) lor (ra lsl 16) lor imm16 k
  | Mfspr (rd, ra, k) ->
    check_reg rd; check_reg ra;
    opc 0x2D lor (rd lsl 21) lor (ra lsl 16) lor imm16 k
  | Shifti (op, rd, ra, l6) ->
    check_reg rd; check_reg ra;
    opc 0x2E lor (rd lsl 21) lor (ra lsl 16) lor (shifti_code op lsl 6) lor (l6 land 0x3F)
  | Setflagi (op, ra, k) ->
    check_reg ra;
    opc 0x2F lor (sf_code op lsl 21) lor (ra lsl 16) lor imm16 k
  | Mtspr (ra, rb, k) ->
    check_reg ra; check_reg rb;
    opc 0x30 lor (ra lsl 16) lor (rb lsl 11) lor split_imm16 k
  | Macc (op, ra, rb) ->
    check_reg ra; check_reg rb;
    let nibble = match op with Mac -> 0x1 | Msb -> 0x2 in
    opc 0x31 lor (ra lsl 16) lor (rb lsl 11) lor nibble
  | Store (op, off, ra, rb) ->
    check_reg ra; check_reg rb;
    opc (store_opc op) lor (ra lsl 16) lor (rb lsl 11) lor split_imm16 off
  | Alu (op, rd, ra, rb) ->
    check_reg rd; check_reg ra; check_reg rb;
    let hi, lo = alu_code op in
    let shift_bits = match op with
      | Sll | Srl | Sra | Ror -> hi lsl 6
      | Add | Addc | Sub | And | Or | Xor | Mul | Mulu | Div | Divu -> hi lsl 8
    in
    opc 0x38 lor (rd lsl 21) lor (ra lsl 16) lor (rb lsl 11) lor shift_bits lor lo
  | Ext (op, rd, ra) ->
    check_reg rd; check_reg ra;
    let hi, lo = ext_code op in
    opc 0x38 lor (rd lsl 21) lor (ra lsl 16) lor (hi lsl 6) lor lo
  | Setflag (op, ra, rb) ->
    check_reg ra; check_reg rb;
    opc 0x39 lor (sf_code op lsl 21) lor (ra lsl 16) lor (rb lsl 11)

let decode word =
  let word = word land 0xFFFF_FFFF in
  let opcode = word lsr 26 in
  let rd = (word lsr 21) land 0x1F in
  let ra = (word lsr 16) land 0x1F in
  let rb = (word lsr 11) land 0x1F in
  let k = word land 0xFFFF in
  let d26 = word land 0x3FF_FFFF in
  match opcode with
  | 0x00 -> Some (Jump d26)
  | 0x01 -> Some (Jump_link d26)
  | 0x03 -> Some (Branch_noflag d26)
  | 0x04 -> Some (Branch_flag d26)
  | 0x05 -> if (word lsr 24) land 1 = 1 then Some (Nop k) else None
  | 0x06 ->
    if (word lsr 16) land 1 = 1 then Some (Macrc rd) else Some (Movhi (rd, k))
  | 0x08 ->
    (match (word lsr 21) land 0x1F with
     | 0x0 -> Some (Sys k)
     | 0x8 -> Some (Trap k)
     | _ -> None)
  | 0x09 -> Some Rfe
  | 0x11 -> Some (Jump_reg rb)
  | 0x12 -> Some (Jump_link_reg rb)
  | 0x13 -> Some (Maci (ra, k))
  | 0x21 -> Some (Load (Lwz, rd, ra, k))
  | 0x22 -> Some (Load (Lws, rd, ra, k))
  | 0x23 -> Some (Load (Lbz, rd, ra, k))
  | 0x24 -> Some (Load (Lbs, rd, ra, k))
  | 0x25 -> Some (Load (Lhz, rd, ra, k))
  | 0x26 -> Some (Load (Lhs, rd, ra, k))
  | 0x27 -> Some (Alui (Addi, rd, ra, k))
  | 0x28 -> Some (Alui (Addic, rd, ra, k))
  | 0x29 -> Some (Alui (Andi, rd, ra, k))
  | 0x2A -> Some (Alui (Ori, rd, ra, k))
  | 0x2B -> Some (Alui (Xori, rd, ra, k))
  | 0x2C -> Some (Alui (Muli, rd, ra, k))
  | 0x2D -> Some (Mfspr (rd, ra, k))
  | 0x2E ->
    let op = match (word lsr 6) land 0x3 with
      | 0 -> Slli | 1 -> Srli | 2 -> Srai | _ -> Rori
    in
    Some (Shifti (op, rd, ra, word land 0x3F))
  | 0x2F ->
    (match sf_of_code ((word lsr 21) land 0x1F) with
     | Some op -> Some (Setflagi (op, ra, k))
     | None -> None)
  | 0x30 -> Some (Mtspr (ra, rb, join_imm16 word))
  | 0x31 ->
    (match word land 0xF with
     | 0x1 -> Some (Macc (Mac, ra, rb))
     | 0x2 -> Some (Macc (Msb, ra, rb))
     | _ -> None)
  | 0x35 -> Some (Store (Sw, join_imm16 word, ra, rb))
  | 0x36 -> Some (Store (Sb, join_imm16 word, ra, rb))
  | 0x37 -> Some (Store (Sh, join_imm16 word, ra, rb))
  | 0x38 ->
    let lo = word land 0xF in
    (match lo with
     | 0x8 ->
       let op = match (word lsr 6) land 0x3 with
         | 0 -> Sll | 1 -> Srl | 2 -> Sra | _ -> Ror
       in
       Some (Alu (op, rd, ra, rb))
     | 0xC ->
       (match (word lsr 6) land 0xF with
        | 0x0 -> Some (Ext (Exths, rd, ra))
        | 0x1 -> Some (Ext (Extbs, rd, ra))
        | 0x2 -> Some (Ext (Exthz, rd, ra))
        | 0x3 -> Some (Ext (Extbz, rd, ra))
        | _ -> None)
     | 0xD ->
       (match (word lsr 6) land 0xF with
        | 0x0 -> Some (Ext (Extws, rd, ra))
        | 0x1 -> Some (Ext (Extwz, rd, ra))
        | _ -> None)
     | _ ->
       let hi = (word lsr 8) land 0x3 in
       (match hi, lo with
        | 0x0, 0x0 -> Some (Alu (Add, rd, ra, rb))
        | 0x0, 0x1 -> Some (Alu (Addc, rd, ra, rb))
        | 0x0, 0x2 -> Some (Alu (Sub, rd, ra, rb))
        | 0x0, 0x3 -> Some (Alu (And, rd, ra, rb))
        | 0x0, 0x4 -> Some (Alu (Or, rd, ra, rb))
        | 0x0, 0x5 -> Some (Alu (Xor, rd, ra, rb))
        | 0x3, 0x6 -> Some (Alu (Mul, rd, ra, rb))
        | 0x3, 0x9 -> Some (Alu (Div, rd, ra, rb))
        | 0x3, 0xA -> Some (Alu (Divu, rd, ra, rb))
        | 0x3, 0xB -> Some (Alu (Mulu, rd, ra, rb))
        | _ -> None))
  | 0x39 ->
    (match sf_of_code ((word lsr 21) land 0x1F) with
     | Some op -> Some (Setflag (op, ra, rb))
     | None -> None)
  | _ -> None
