(* Special-purpose registers and the supervision register bit layout of the
   OR1200 (OpenRISC 1000 group 0), restricted to the registers the paper
   tracks: SR, EPCR0, ESR0, EEAR0 plus the MAC unit registers. *)

type t =
  | Vr      (* version, read-only *)
  | Sr      (* supervision register *)
  | Epcr0   (* exception PC *)
  | Eear0   (* exception effective address *)
  | Esr0    (* exception SR *)
  | Machi
  | Maclo

(* OR1k SPR addresses: group in bits 15:11, index in bits 10:0. *)
let address = function
  | Vr -> 0x0000
  | Sr -> 0x0011
  | Epcr0 -> 0x0020
  | Eear0 -> 0x0030
  | Esr0 -> 0x0040
  | Machi -> 0x2801 (* group 5 *)
  | Maclo -> 0x2802

let of_address = function
  | 0x0000 -> Some Vr
  | 0x0011 -> Some Sr
  | 0x0020 -> Some Epcr0
  | 0x0030 -> Some Eear0
  | 0x0040 -> Some Esr0
  | 0x2801 -> Some Machi
  | 0x2802 -> Some Maclo
  | _ -> None

let name = function
  | Vr -> "VR" | Sr -> "SR" | Epcr0 -> "EPCR0" | Eear0 -> "EEAR0"
  | Esr0 -> "ESR0" | Machi -> "MACHI" | Maclo -> "MACLO"

let all = [ Vr; Sr; Epcr0; Eear0; Esr0; Machi; Maclo ]

(* Supervision register bits (OR1k architecture manual, §16.2.2). *)
module Sr_bits = struct
  let sm = 0       (* supervisor mode *)
  let tee = 1      (* tick timer exception enable *)
  let iee = 2      (* interrupt exception enable *)
  let dce = 3      (* data cache enable *)
  let ice = 4      (* instruction cache enable *)
  let dme = 5      (* data MMU enable *)
  let ime = 6      (* instruction MMU enable *)
  let f = 9        (* conditional branch flag *)
  let cy = 10      (* carry *)
  let ov = 11      (* overflow *)
  let ove = 12     (* overflow exception enable *)
  let dsx = 13     (* delay slot exception *)
  let eph = 14     (* exception prefix high *)
  let fo = 15      (* fixed one *)

  let get sr bit = (sr lsr bit) land 1
  let set sr bit = sr lor (1 lsl bit)
  let clear sr bit = sr land lnot (1 lsl bit)
  let put sr bit v = if v = 0 then clear sr bit else set sr bit

  (* Reset value: fixed-one + supervisor mode. *)
  let reset = (1 lsl fo) lor (1 lsl sm)

  (* Writable mask for l.mtspr to SR: FO stays 1, reserved bits stay 0. *)
  let writable_mask = 0xFFFF
end

(* Exception vectors (physical addresses with EPH = 0). *)
module Vector = struct
  type kind =
    | Reset
    | Bus_error
    | Data_page_fault
    | Insn_page_fault
    | Tick_timer
    | Alignment
    | Illegal
    | External_interrupt
    | Range
    | Syscall
    | Trap

  let address = function
    | Reset -> 0x100
    | Bus_error -> 0x200
    | Data_page_fault -> 0x300
    | Insn_page_fault -> 0x400
    | Tick_timer -> 0x500
    | Alignment -> 0x600
    | Illegal -> 0x700
    | External_interrupt -> 0x800
    | Range -> 0xB00
    | Syscall -> 0xC00
    | Trap -> 0xE00

  let name = function
    | Reset -> "reset"
    | Bus_error -> "bus-error"
    | Data_page_fault -> "data-page-fault"
    | Insn_page_fault -> "insn-page-fault"
    | Tick_timer -> "tick-timer"
    | Alignment -> "alignment"
    | Illegal -> "illegal-instruction"
    | External_interrupt -> "external-interrupt"
    | Range -> "range"
    | Syscall -> "syscall"
    | Trap -> "trap"

  let all =
    [ Reset; Bus_error; Data_page_fault; Insn_page_fault; Tick_timer;
      Alignment; Illegal; External_interrupt; Range; Syscall; Trap ]
end
