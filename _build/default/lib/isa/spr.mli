(** Special-purpose registers and the supervision-register bit layout of
    the OR1200 (the subset the paper tracks: SR, EPCR0, ESR0, EEAR0 and
    the MAC unit registers). *)

type t =
  | Vr      (** version register, read-only *)
  | Sr      (** supervision register *)
  | Epcr0   (** exception PC *)
  | Eear0   (** exception effective address *)
  | Esr0    (** exception SR *)
  | Machi
  | Maclo

val address : t -> int
(** The OR1k SPR address (group in bits 15:11, index in 10:0). *)

val of_address : int -> t option

val name : t -> string

val all : t list

(** Supervision register bit positions (OR1k architecture manual
    §16.2.2): [sm] supervisor mode, [tee]/[iee] tick/interrupt enables,
    [f] the conditional branch flag, [cy]/[ov] carry and overflow, [ove]
    the overflow-exception enable, [dsx] the delay-slot exception bit,
    [fo] the fixed-one bit. *)
module Sr_bits : sig
  val sm : int
  val tee : int
  val iee : int
  val dce : int
  val ice : int
  val dme : int
  val ime : int
  val f : int
  val cy : int
  val ov : int
  val ove : int
  val dsx : int
  val eph : int
  val fo : int

  val get : int -> int -> int
  (** [get sr bit] is 0 or 1. *)

  val set : int -> int -> int

  val clear : int -> int -> int

  val put : int -> int -> int -> int
  (** [put sr bit v] writes bit [bit] with [v <> 0]. *)

  val reset : int
  (** Power-on SR: FO | SM. *)

  val writable_mask : int
  (** Bits an l.mtspr to SR may change. *)
end

(** Exception vectors (physical addresses, EPH = 0). *)
module Vector : sig
  type kind =
    | Reset
    | Bus_error
    | Data_page_fault
    | Insn_page_fault
    | Tick_timer
    | Alignment
    | Illegal
    | External_interrupt
    | Range
    | Syscall
    | Trap

  val address : kind -> int
  (** 0x100 for reset, 0xC00 for syscall, ... *)

  val name : kind -> string

  val all : kind list
end
