lib/isa/code.mli: Insn
