lib/isa/asm.ml: Code Hashtbl Insn List
