lib/isa/insn.mli: Format
