lib/isa/code.ml: Insn
