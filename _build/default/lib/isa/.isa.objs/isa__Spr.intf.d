lib/isa/spr.mli:
