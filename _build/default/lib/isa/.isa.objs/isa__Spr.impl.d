lib/isa/spr.ml:
