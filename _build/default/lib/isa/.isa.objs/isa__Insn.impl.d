lib/isa/insn.ml: Format List Util
