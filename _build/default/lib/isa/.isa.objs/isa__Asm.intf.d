lib/isa/asm.mli: Insn
