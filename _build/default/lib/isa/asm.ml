(* A small assembler: programs are lists of items with symbolic labels;
   [assemble] resolves labels into branch displacements and absolute
   addresses and produces the memory image. Workload programs and bug
   trigger programs are written against the [Build] combinators. *)

type jump_kind = Jmp | Jal | Bf | Bnf

type item =
  | Label of string
  | I of Insn.t                 (* a concrete instruction *)
  | J of jump_kind * string     (* control flow to a label *)
  | La of Insn.reg * string     (* load label address: movhi + ori, 2 words *)
  | Word of int                 (* literal data word *)

type program = { origin : int; items : item list }

let size_of_item = function
  | Label _ -> 0
  | I _ | J _ | Word _ -> 4
  | La _ -> 8

exception Unknown_label of string

let resolve_labels { origin; items } =
  let table = Hashtbl.create 16 in
  let addr = ref origin in
  List.iter
    (fun item ->
       (match item with
        | Label name -> Hashtbl.replace table name !addr
        | I _ | J _ | La _ | Word _ -> ());
       addr := !addr + size_of_item item)
    items;
  table

let lookup table name =
  match Hashtbl.find_opt table name with
  | Some a -> a
  | None -> raise (Unknown_label name)

(* Branch displacement in instruction words, encoded on 26 bits. *)
let displacement ~pc ~target = ((target - pc) asr 2) land 0x3FF_FFFF

(* Produce the list of (address, word) pairs of the assembled image. *)
let assemble program =
  let table = resolve_labels program in
  let addr = ref program.origin in
  let out = ref [] in
  let emit word = out := (!addr, word land 0xFFFF_FFFF) :: !out; addr := !addr + 4 in
  List.iter
    (fun item ->
       match item with
       | Label _ -> ()
       | Word w -> emit w
       | I insn -> emit (Code.encode insn)
       | J (kind, name) ->
         let target = lookup table name in
         let d = displacement ~pc:!addr ~target in
         let insn = match kind with
           | Jmp -> Insn.Jump d
           | Jal -> Insn.Jump_link d
           | Bf -> Insn.Branch_flag d
           | Bnf -> Insn.Branch_noflag d
         in
         emit (Code.encode insn)
       | La (rd, name) ->
         let target = lookup table name in
         emit (Code.encode (Insn.Movhi (rd, (target lsr 16) land 0xFFFF)));
         emit (Code.encode (Insn.Alui (Insn.Ori, rd, rd, target land 0xFFFF))))
    program.items;
  List.rev !out

let label_address program name = lookup (resolve_labels program) name

(* Combinators: workloads read much like OR1k assembly listings. *)
module Build = struct
  open Insn

  let label s = Label s
  let word w = Word w

  let add rd ra rb = I (Alu (Add, rd, ra, rb))
  let addc rd ra rb = I (Alu (Addc, rd, ra, rb))
  let sub rd ra rb = I (Alu (Sub, rd, ra, rb))
  let and_ rd ra rb = I (Alu (And, rd, ra, rb))
  let or_ rd ra rb = I (Alu (Or, rd, ra, rb))
  let xor rd ra rb = I (Alu (Xor, rd, ra, rb))
  let mul rd ra rb = I (Alu (Mul, rd, ra, rb))
  let mulu rd ra rb = I (Alu (Mulu, rd, ra, rb))
  let div rd ra rb = I (Alu (Div, rd, ra, rb))
  let divu rd ra rb = I (Alu (Divu, rd, ra, rb))
  let sll rd ra rb = I (Alu (Sll, rd, ra, rb))
  let srl rd ra rb = I (Alu (Srl, rd, ra, rb))
  let sra rd ra rb = I (Alu (Sra, rd, ra, rb))
  let ror rd ra rb = I (Alu (Ror, rd, ra, rb))

  let addi rd ra k = I (Alui (Addi, rd, ra, k))
  let addic rd ra k = I (Alui (Addic, rd, ra, k))
  let andi rd ra k = I (Alui (Andi, rd, ra, k))
  let ori rd ra k = I (Alui (Ori, rd, ra, k))
  let xori rd ra k = I (Alui (Xori, rd, ra, k))
  let muli rd ra k = I (Alui (Muli, rd, ra, k))

  let slli rd ra k = I (Shifti (Slli, rd, ra, k))
  let srli rd ra k = I (Shifti (Srli, rd, ra, k))
  let srai rd ra k = I (Shifti (Srai, rd, ra, k))
  let rori rd ra k = I (Shifti (Rori, rd, ra, k))

  let extbs rd ra = I (Ext (Extbs, rd, ra))
  let extbz rd ra = I (Ext (Extbz, rd, ra))
  let exths rd ra = I (Ext (Exths, rd, ra))
  let exthz rd ra = I (Ext (Exthz, rd, ra))
  let extws rd ra = I (Ext (Extws, rd, ra))
  let extwz rd ra = I (Ext (Extwz, rd, ra))

  let sfeq ra rb = I (Setflag (Sfeq, ra, rb))
  let sfne ra rb = I (Setflag (Sfne, ra, rb))
  let sfgtu ra rb = I (Setflag (Sfgtu, ra, rb))
  let sfgeu ra rb = I (Setflag (Sfgeu, ra, rb))
  let sfltu ra rb = I (Setflag (Sfltu, ra, rb))
  let sfleu ra rb = I (Setflag (Sfleu, ra, rb))
  let sfgts ra rb = I (Setflag (Sfgts, ra, rb))
  let sfges ra rb = I (Setflag (Sfges, ra, rb))
  let sflts ra rb = I (Setflag (Sflts, ra, rb))
  let sfles ra rb = I (Setflag (Sfles, ra, rb))

  let sfeqi ra k = I (Setflagi (Sfeq, ra, k))
  let sfnei ra k = I (Setflagi (Sfne, ra, k))
  let sfgtui ra k = I (Setflagi (Sfgtu, ra, k))
  let sfgeui ra k = I (Setflagi (Sfgeu, ra, k))
  let sfltui ra k = I (Setflagi (Sfltu, ra, k))
  let sfleui ra k = I (Setflagi (Sfleu, ra, k))
  let sfgtsi ra k = I (Setflagi (Sfgts, ra, k))
  let sfgesi ra k = I (Setflagi (Sfges, ra, k))
  let sfltsi ra k = I (Setflagi (Sflts, ra, k))
  let sflesi ra k = I (Setflagi (Sfles, ra, k))

  let lwz rd ra off = I (Load (Lwz, rd, ra, off))
  let lws rd ra off = I (Load (Lws, rd, ra, off))
  let lbz rd ra off = I (Load (Lbz, rd, ra, off))
  let lbs rd ra off = I (Load (Lbs, rd, ra, off))
  let lhz rd ra off = I (Load (Lhz, rd, ra, off))
  let lhs rd ra off = I (Load (Lhs, rd, ra, off))

  let sw off ra rb = I (Store (Sw, off, ra, rb))
  let sb off ra rb = I (Store (Sb, off, ra, rb))
  let sh off ra rb = I (Store (Sh, off, ra, rb))

  let j name = J (Jmp, name)
  let jal name = J (Jal, name)
  let bf name = J (Bf, name)
  let bnf name = J (Bnf, name)
  let jr rb = I (Jump_reg rb)
  let jalr rb = I (Jump_link_reg rb)

  let movhi rd k = I (Movhi (rd, k))
  let mfspr rd ra k = I (Mfspr (rd, ra, k))
  let mtspr ra rb k = I (Mtspr (ra, rb, k))
  let mac ra rb = I (Macc (Mac, ra, rb))
  let msb ra rb = I (Macc (Msb, ra, rb))
  let maci ra k = I (Maci (ra, k))
  let macrc rd = I (Macrc rd)
  let sys k = I (Sys k)
  let trap k = I (Trap k)
  let rfe = I Rfe
  let nop = I (Nop 0)

  let la rd name = La (rd, name)

  (* Load a full 32-bit constant into [rd] with movhi + ori. *)
  let li32 rd value =
    [ movhi rd ((value lsr 16) land 0xFFFF); ori rd rd (value land 0xFFFF) ]

  (* Load a small non-negative constant (< 0x8000) into [rd]. *)
  let li rd value =
    if value < 0 || value >= 0x8000 then invalid_arg "Build.li: use li32";
    addi rd 0 value
end
