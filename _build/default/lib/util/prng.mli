(** SplitMix64 pseudo-random generator.

    Deterministic and seedable so every experiment in the repository is
    reproducible bit-for-bit across OCaml releases (unlike
    [Stdlib.Random], whose sequence is unspecified). *)

type t

val create : int -> t
(** A generator from an integer seed. *)

val next_int64 : t -> int64
(** The raw 64-bit stream. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val u32 : t -> int
(** A uniform 32-bit word. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** Fisher-Yates shuffle, in place. *)

val sample : t -> n:int -> k:int -> int array
(** [k] distinct indices drawn from [\[0, n)].
    @raise Invalid_argument if [k > n]. *)
