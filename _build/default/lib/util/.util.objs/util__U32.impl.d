lib/util/u32.ml: Format Int64 Printf
