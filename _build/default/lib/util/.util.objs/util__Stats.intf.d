lib/util/stats.mli:
