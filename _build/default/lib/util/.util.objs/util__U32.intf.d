lib/util/u32.mli: Format
