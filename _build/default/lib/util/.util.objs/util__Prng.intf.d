lib/util/prng.mli:
