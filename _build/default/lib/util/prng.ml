(* SplitMix64 pseudo-random generator.

   Deterministic and seedable so that every experiment in the repository is
   reproducible bit-for-bit. We do not use [Stdlib.Random] because its
   sequence is not stable across OCaml releases. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let u32 t = Int64.to_int (Int64.logand (next_int64 t) 0xFFFF_FFFFL)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

(* Fisher-Yates shuffle, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Choose [k] distinct indices out of [n]. *)
let sample t ~n ~k =
  if k > n then invalid_arg "Prng.sample: k > n";
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  Array.sub idx 0 k
