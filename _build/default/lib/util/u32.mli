(** 32-bit word arithmetic on native ints.

    Values of type {!t} are ints in [\[0, 2^32)]. All operations wrap
    modulo [2^32] as the OR1200 datapath does. *)

type t = int

val mask : int
(** [0xFFFF_FFFF]. *)

val of_int : int -> t
(** Truncate a native int to its low 32 bits. *)

val to_int : t -> int

val zero : t
val one : t
val max_value : t

val signed : t -> int
(** Two's-complement interpretation: [signed 0xFFFF_FFFF = -1]. *)

val is_negative : t -> bool
(** Bit 31. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Low 32 bits of the full product. *)

val div_signed : t -> t -> t option
(** Truncating signed division, as [l.div]; [None] on division by zero. *)

val div_unsigned : t -> t -> t option
val rem_unsigned : t -> t -> t option

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** Shifts of 32 or more produce 0. *)

val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t
(** Replicates bit 31. *)

val rotate_right : t -> int -> t
(** Rotate amount is taken modulo 32. *)

val sext8 : int -> t
(** Sign-extend the low byte to 32 bits. *)

val zext8 : int -> t
val sext16 : int -> t
val zext16 : int -> t

val sext : bits:int -> int -> t
(** Sign-extend an arbitrary low-bit field (e.g. 26-bit displacements). *)

val ult : t -> t -> bool
(** Unsigned order; [ule]/[ugt]/[uge] likewise. *)

val ule : t -> t -> bool
val ugt : t -> t -> bool
val uge : t -> t -> bool

val slt : t -> t -> bool
(** Signed order; [sle]/[sgt]/[sge] likewise. *)

val sle : t -> t -> bool
val sgt : t -> t -> bool
val sge : t -> t -> bool

val carry_add : t -> t -> int -> bool
(** Carry out of [a + b + cin]. *)

val overflow_add : t -> t -> int -> bool
(** Signed overflow of [a + b + cin]. *)

val overflow_sub : t -> t -> bool
(** Signed overflow of [a - b]. *)

val to_hex : t -> string
val pp : Format.formatter -> t -> unit
