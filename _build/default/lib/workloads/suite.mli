(** The 17-program trace corpus of §5.1, in the cumulative order of the
    Figure 3 x-axis: vmlinux, basicmath, parser, mesa, ammp, mcf, instru,
    gzip, crafty, bzip, quake, twolf, vpr, then the "misc" bundle (pi,
    bitcount, fft, helloworld). Together the programs cover every
    instruction of the basic set plus the exception machinery. *)

val all : Rt.t list

val by_name : string -> Rt.t option

val names : string list

val figure3_groups : string list list
(** The x-axis aggregation: the last four programs group as "misc". *)

val figure3_labels : string list
