(* Bitboard manipulation in the style of a chess engine: masks, rotates,
   population counts and lowest-set-bit extraction over 32-bit boards. *)

open Isa.Asm.Build

let boards =
  [ 0xFFFF_0000; 0x0F0F_0F0F; 0x8000_0001; 0x0000_0000;
    0xAAAA_5555; 0x0101_0101; 0xFFFE_7FFF; 0x1248_1248 ]

(* Popcount r3 -> r6 by shift-and-mask loop. *)
let popcount b tag =
  List.concat
    [ li32 3 b;
      [ li 5 0;                   (* bit index *)
        li 6 0;                   (* count *)
        label ("pop_" ^ tag);
        srl 7 3 5;
        andi 7 7 1;
        add 6 6 7;
        addi 5 5 1;
        sfltui 5 32;
        bf ("pop_" ^ tag);
        nop ] ]

(* Lowest set bit: r8 = r3 & (-r3); clear it and loop counting. *)
let lsb_scan b tag =
  List.concat
    [ li32 3 b;
      [ li 9 0;
        label ("lsb_" ^ tag);
        sfeqi 3 0;
        bf ("lsb_done_" ^ tag);
        nop;
        sub 8 0 3;               (* -r3 *)
        and_ 8 3 8;
        xor 3 3 8;               (* clear lowest bit *)
        addi 9 9 1;
        j ("lsb_" ^ tag);
        nop;
        label ("lsb_done_" ^ tag);
        nop ] ]

(* Rotation battery: attack-table style spreading. *)
let rotate_mix b tag =
  List.concat
    [ li32 3 b;
      [ rori 10 3 1; rori 11 3 8; rori 12 3 16; rori 13 3 31;
        or_ 14 10 11;
        or_ 14 14 12;
        or_ 14 14 13;
        li 15 9;
        ror 16 3 15;
        xor 17 14 16;
        sw (16 + (String.length tag * 4)) 2 17 ] ]

let code =
  List.concat
    [ Rt.prologue;
      List.concat (List.mapi (fun i b -> popcount b (string_of_int i)) boards);
      List.concat (List.mapi (fun i b -> lsb_scan b ("s" ^ string_of_int i)) boards);
      List.concat (List.mapi (fun i b -> rotate_mix b (String.make (i + 1) 'r')) boards);
      Rt.exit_program ]

let workload = Rt.build ~name:"crafty" code
