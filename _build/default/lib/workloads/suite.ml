(* The 17-program trace corpus of §5.1, in the cumulative order of the
   Figure 3 x-axis: vmlinux, basicmath, parser, mesa, ammp, mcf, instru,
   gzip, crafty, bzip, quake, twolf, vpr, then the "misc" bundle
   (pi, bitcount, fft, helloworld). *)

let all : Rt.t list =
  [ W_vmlinux.workload;
    W_basicmath.workload;
    W_parser.workload;
    W_mesa.workload;
    W_ammp.workload;
    W_mcf.workload;
    W_instru.workload;
    W_gzip.workload;
    W_crafty.workload;
    W_bzip.workload;
    W_quake.workload;
    W_twolf.workload;
    W_vpr.workload;
    W_pi.workload;
    W_bitcount.workload;
    W_fft.workload;
    W_hello.workload;
  ]

let by_name name = List.find_opt (fun w -> String.equal w.Rt.name name) all

let names = List.map (fun w -> w.Rt.name) all

(* The aggregation used on the Figure 3 x-axis: the last four programs are
   grouped as "misc". *)
let figure3_groups =
  [ [ "vmlinux" ]; [ "basicmath" ]; [ "parser" ]; [ "mesa" ]; [ "ammp" ];
    [ "mcf" ]; [ "instru" ]; [ "gzip" ]; [ "crafty" ]; [ "bzip" ];
    [ "quake" ]; [ "twolf" ]; [ "vpr" ];
    [ "pi"; "bitcount"; "fft"; "helloworld" ] ]

let figure3_labels =
  [ "vmlinux"; "basicmath"; "parser"; "mesa"; "ammp"; "mcf"; "instru";
    "gzip"; "crafty"; "bzip"; "quake"; "twolf"; "vpr"; "misc" ]
