(* Fixed-point physics kernel: Newton-Raphson reciprocal, velocity clamps
   with signed compares, dot products — the signed-arithmetic face of the
   corpus. *)

open Isa.Asm.Build

(* Reciprocal of r3 in Q16: x <- x * (2 - d*x) >> 16 iterations. *)
let recip d tag =
  List.concat
    [ li32 3 d;
      li32 4 0x0000_4000;        (* initial guess *)
      li32 14 0x0002_0000;       (* 2.0 in Q16 *)
      [ li 5 0;
        label ("rc_" ^ tag);
        mul 6 3 4;
        srai 6 6 16;
        sub 7 14 6;
        mul 4 4 7;
        srai 4 4 16;
        addi 5 5 1;
        sfltui 5 8;
        bf ("rc_" ^ tag);
        nop ] ]

(* Clamp a stream of signed velocities into [-2048, 2047]. *)
let clamp =
  List.concat
    [ li32 16 0xFFFF_F800;       (* -2048 *)
      [ li 15 0;
        label "cl_loop";
        muli 6 15 0x339;
        xori 6 6 0x7A5;
        slli 6 6 3;
        srai 7 6 1;
        sflts 7 16;
        bnf "cl_lo_ok";
        nop;
        add 7 16 0;
        label "cl_lo_ok";
        sfgtsi 7 2047;
        bnf "cl_hi_ok";
        nop;
        li 7 2047;
        label "cl_hi_ok";
        slli 8 15 2;
        add 8 8 2;
        sw 128 8 7;
        addi 15 15 1;
        sfltui 15 20;
        bf "cl_loop";
        nop ] ]

(* Signed dot product of the clamped stream against itself, shifted. *)
let dot =
  [ li 15 0;
    label "dot_loop";
    slli 8 15 2;
    add 8 8 2;
    lws 9 8 128;
    lws 10 8 132;
    mac 9 10;
    addi 15 15 2;
    sfltui 15 18;
    bf "dot_loop";
    nop;
    macrc 11;
    srai 11 11 4;
    sw 1040 2 11 ]

let code =
  List.concat
    [ Rt.prologue;
      recip 0x0003_0000 "a";
      recip 0x0000_8000 "b";
      recip 0x0010_0000 "c";
      clamp; dot;
      Rt.exit_program ]

let workload = Rt.build ~name:"quake" code
