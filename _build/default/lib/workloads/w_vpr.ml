(* Routing-cost kernel: nested sweeps over a small grid accumulating
   weighted Manhattan distances with the MAC unit and multiply-immediate. *)

open Isa.Asm.Build

let grid = 6

let init =
  List.concat
    (List.init (grid * grid)
       (fun i ->
          List.concat [ li32 3 (((i * 59) + 3) land 0xFFF);
                        [ sw (1280 + (i * 4)) 2 3 ] ]))

let sweep =
  [ li 4 0;                      (* x *)
    label "vx_loop";
    li 5 0;                      (* y *)
    label "vy_loop";
    (* load congestion at (x, y) *)
    muli 6 4 grid;
    add 6 6 5;
    slli 6 6 2;
    add 6 6 2;
    lwz 7 6 1280;
    (* weight = (x + 2y + 1) *)
    slli 8 5 1;
    add 8 8 4;
    addi 8 8 1;
    mac 7 8;
    maci 7 2;
    addi 5 5 1;
    sfltui 5 grid;
    bf "vy_loop";
    nop;
    addi 4 4 1;
    sfltui 4 grid;
    bf "vx_loop";
    nop;
    macrc 9;
    sw 1048 2 9 ]

(* Second pass with msb: subtract the border contribution. *)
let border =
  [ li 4 0;
    label "vb_loop";
    slli 6 4 2;
    add 6 6 2;
    lwz 7 6 1280;
    li 8 3;
    msb 7 8;
    addi 4 4 1;
    sfltui 4 grid;
    bf "vb_loop";
    nop;
    macrc 10;
    sw 1052 2 10 ]

let code = List.concat [ Rt.prologue; init; sweep; border; Rt.exit_program ]

let workload = Rt.build ~name:"vpr" code
