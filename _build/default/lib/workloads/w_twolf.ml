(* Simulated-annealing placement kernel: an LCG proposes cell swaps; a
   cost function decides acceptance — array indexing, compares, swaps. *)

open Isa.Asm.Build

let cells = 24

let init =
  List.concat
    (List.init cells
       (fun i ->
          List.concat [ li32 3 (((i * 193) + 17) land 0xFFFF);
                        [ sw (i * 4) 2 3 ] ]))

(* r20 = LCG state. Propose swaps of cells (r21, r22); accept when it
   lowers the |a - b| "wirelength". *)
let anneal =
  List.concat
    [ li32 20 0x2468_ACE1;
      li32 19 1103515245;
      [ li 18 0;                  (* iteration *)
        label "an_loop";
        mul 20 20 19;
        addi 20 20 12345;
        srli 21 20 18;
        mul 20 20 19;
        addi 20 20 12345;
        srli 22 20 18;
        (* indices mod cells via repeated subtraction-free masking *)
        andi 21 21 15;
        andi 22 22 15;
        (* load both cells *)
        slli 23 21 2;
        add 23 23 2;
        lwz 3 23 0;
        slli 24 22 2;
        add 24 24 2;
        lwz 4 24 0;
        (* cost: keep larger value at lower index *)
        sfgtu 4 3;
        bnf "an_next";
        nop;
        sw 0 23 4;
        sw 0 24 3;
        label "an_next";
        addi 18 18 1;
        sfltui 18 40;
        bf "an_loop";
        nop ] ]

(* Final wirelength: sum of adjacent differences (signed). *)
let cost =
  [ li 18 0;
    li 10 0;
    label "cost_loop";
    slli 23 18 2;
    add 23 23 2;
    lwz 3 23 0;
    lwz 4 23 4;
    sub 5 3 4;
    sflts 5 0;
    bnf "cost_pos";
    nop;
    sub 5 0 5;
    label "cost_pos";
    add 10 10 5;
    addi 18 18 1;
    sfltui 18 (cells - 1);
    bf "cost_loop";
    nop;
    sw 1044 2 10 ]

let code = List.concat [ Rt.prologue; init; anneal; cost; Rt.exit_program ]

let workload = Rt.build ~name:"twolf" code
