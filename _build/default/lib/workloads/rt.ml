(* Runtime scaffolding shared by every workload and trigger program: the
   exception vector table, generic handlers, and the memory layout.

   Register convention: r26 and r27 are reserved for exception handlers
   (they may be clobbered at any instruction boundary once interrupts are
   enabled); r1 is the stack pointer; r2 points at the data region; r9 is
   the link register; r11 carries syscall results. *)

open Isa

let spr_sr = 0x11
let spr_epcr = 0x20
let spr_eear = 0x30
let spr_esr = 0x40
let spr_machi = 0x2801
let spr_maclo = 0x2802

(* Memory layout. *)
let code_base = 0x2000
let data_base = 0x10000
let stack_base = 0x50000
let counter_base = 0x60000 (* per-vector exception counters *)
let sdram_code_base = Cpu.Memory.sdram_base

let counter_addr kind =
  counter_base + (4 * (Spr.Vector.address kind lsr 8))

(* What a handler does with the saved EPCR before returning. [Skip]
   advances past the faulting instruction (re-execution exceptions);
   [Resume] returns to the saved address (completion exceptions). With the
   delay-slot exception bit set, both skip the whole branch/delay pair so
   trigger loops terminate deterministically. *)
type handler_kind = Skip | Resume | Service

let handler ~prefix ~counter kind =
  let open Asm.Build in
  let l s = prefix ^ "_" ^ s in
  List.concat
    [ li32 26 counter;
      [ lwz 27 26 0;
        addi 27 27 1;
        sw 0 26 27;
        (* r11 <- r3 + r4: the syscall "service", OR1k Linux style. *)
      ];
      (match kind with
       | Service -> [ add 11 3 4 ]
       | Skip | Resume -> []);
      [ mfspr 26 0 spr_sr;
        andi 26 26 0x2000;           (* SR[DSX] *)
        sfnei 26 0;
        mfspr 27 0 spr_epcr;
        bf (l "dsx");
        nop;
      ];
      (match kind with
       | Skip -> [ addi 27 27 4 ]
       | Resume | Service -> []);
      [ j (l "done");
        nop;
        label (l "dsx");
        addi 27 27 8;                (* skip the branch and its delay slot *)
        label (l "done");
        mtspr 0 27 spr_epcr;
        rfe;
      ];
    ]

(* The reset stub at 0x100 jumps to the program entry. *)
let reset_stub =
  let open Asm.Build in
  [ Asm.I (Insn.Jump (((code_base - 0x100) / 4) land 0x3FF_FFFF));
    nop ]

let vector_programs () : Asm.program list =
  let open Spr.Vector in
  let h kind handler_kind =
    { Asm.origin = address kind;
      items = handler ~prefix:(name kind) ~counter:(counter_addr kind) handler_kind }
  in
  [ { Asm.origin = 0x100; items = reset_stub };
    h Bus_error Skip;
    h Tick_timer Resume;
    h Alignment Skip;
    h Illegal Skip;
    h Range Skip;
    h Syscall Service;
    h Trap Skip;
  ]

type t = {
  name : string;
  image : (int * int) list;
  entry : int;
  (* Tick-timer period used when tracing this workload (0 = disabled). *)
  tick_period : int;
}

(* Assemble a workload: main code at [code_base], standard vectors, any
   extra sections (e.g. code placed in SDRAM). *)
let build ~name ?(tick_period = 0) ?(extra = []) main_items =
  let programs =
    vector_programs ()
    @ [ { Asm.origin = code_base; items = main_items } ]
    @ extra
  in
  let image = List.concat_map Asm.assemble programs in
  { name; image; entry = 0x100; tick_period }

(* Standard prologue: stack and data-base registers. *)
let prologue =
  let open Asm.Build in
  li32 1 stack_base @ li32 2 data_base

(* Terminate simulation (the l.nop 1 exit convention). *)
let exit_program = [ Asm.I (Insn.Nop 1) ]
