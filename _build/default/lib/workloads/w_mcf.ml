(* Pointer-chasing kernel in the spirit of mcf: build a linked list of
   nodes [value; next] in memory, traverse it several times accumulating,
   and unlink every other node. *)

open Isa.Asm.Build

let n_nodes = 16

(* Node i lives at r2 + 64 + i*8; next pointers are absolute addresses. *)
let build_list =
  List.concat
    (List.init n_nodes
       (fun i ->
          let value = ((i * 73) + 9) land 0x3FFF in
          let next =
            if i = n_nodes - 1 then 0
            else Rt.data_base + 64 + ((i + 1) * 8)
          in
          List.concat
            [ li32 3 value; [ sw (64 + (i * 8)) 2 3 ];
              li32 3 next; [ sw (64 + (i * 8) + 4) 2 3 ] ]))

let traverse tag =
  [ addi 4 2 64;                 (* cursor *)
    li 5 0;                      (* sum *)
    label ("walk_" ^ tag);
    sfeqi 4 0;
    bf ("walk_done_" ^ tag);
    nop;
    lwz 6 4 0;
    add 5 5 6;
    lwz 4 4 4;                   (* cursor = cursor->next *)
    j ("walk_" ^ tag);
    nop;
    label ("walk_done_" ^ tag);
    sw 1028 2 5 ]

(* Unlink every other node: node.next = node.next->next when possible. *)
let unlink =
  [ addi 4 2 64;
    label "unlink_loop";
    sfeqi 4 0;
    bf "unlink_done";
    nop;
    lwz 6 4 4;                   (* next *)
    sfeqi 6 0;
    bf "unlink_done";
    nop;
    lwz 7 6 4;                   (* next->next *)
    sw 4 4 7;
    add 4 7 0;
    j "unlink_loop";
    nop;
    label "unlink_done";
    nop ]

let code =
  List.concat
    [ Rt.prologue; build_list;
      traverse "a"; traverse "b";
      unlink;
      traverse "c";
      Rt.exit_program ]

let workload = Rt.build ~name:"mcf" code
