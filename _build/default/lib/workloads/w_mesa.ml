(* Fixed-point 3D transform kernel (Q16): a 4x4 matrix times a stream of
   vectors, using the MAC unit for the dot products. *)

open Isa.Asm.Build

(* Store 16 matrix words at r2, then 8 vectors of 4 words at r2+256. *)
let init =
  let matrix = List.init 16 (fun i -> ((i * 0x1234) + 0x800) land 0xFFFF) in
  let vectors = List.init 32 (fun i -> ((i * 0x2717) + 3) land 0x7FFF) in
  List.concat
    [ List.concat
        (List.mapi (fun i v -> li32 3 (v lsl 8) @ [ sw (i * 4) 2 3 ]) matrix);
      List.concat
        (List.mapi (fun i v -> li32 3 (v lsl 4) @ [ sw (256 + (i * 4)) 2 3 ]) vectors) ]

(* For each vector v, compute row . v with l.mac / l.macrc, shift back to
   Q16 with srai, and store the result. *)
let transform =
  [ li 4 0;                       (* vector index *)
    label "vec_loop";
    li 5 0;                       (* row index *)
    label "row_loop";
    (* r6 = &matrix[row*4], r7 = &vector[vec*4] *)
    slli 6 5 4;
    add 6 6 2;
    slli 7 4 4;
    add 7 7 2;
    addi 7 7 256;
    (* accumulate 4 products *)
    lwz 8 6 0; lwz 9 7 0; mac 8 9;
    lwz 8 6 4; lwz 9 7 4; mac 8 9;
    lwz 8 6 8; lwz 9 7 8; mac 8 9;
    lwz 8 6 12; lwz 9 7 12; mac 8 9;
    macrc 10;
    srai 10 10 8;
    (* store at r2 + 512 + (vec*4 + row)*4 *)
    slli 11 4 4;
    slli 12 5 2;
    add 11 11 12;
    add 11 11 2;
    sw 512 11 10;
    addi 5 5 1;
    sfltui 5 4;
    bf "row_loop";
    nop;
    addi 4 4 1;
    sfltui 4 8;
    bf "vec_loop";
    nop ]

(* A subtractive pass with l.msb and l.maci for variety. *)
let shade =
  [ li 4 0;
    label "shade_loop";
    slli 5 4 2;
    add 5 5 2;
    lwz 6 5 512;
    lwz 7 5 516;
    mac 6 7;
    msb 7 6;
    maci 6 3;
    macrc 8;
    sw 768 5 8;
    addi 4 4 2;
    sfltui 4 24;
    bf "shade_loop";
    nop ]

let code = List.concat [ Rt.prologue; init; transform; shade; Rt.exit_program ]

let workload = Rt.build ~name:"mesa" code
