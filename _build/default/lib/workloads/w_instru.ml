(* Instruction-coverage diagnostic: systematically executes every
   implemented instruction form against a battery of operand seeds, so
   every program point receives enough samples for the 0.99 confidence
   limit no matter what the other workloads do (§3.1.1 demands the traces
   cover all instructions of the basic set). *)

open Isa.Asm.Build

(* Operand seed pairs chosen to cross sign/magnitude boundaries. *)
let seeds =
  [ (0x0000_0003, 0x0000_0005);
    (0x7FFF_FFFF, 0x0000_0001);
    (0x8000_0000, 0x7FFF_FFFF);
    (0xFFFF_FFFF, 0x0000_0010);
    (0x0000_1234, 0xFFFF_FF00);
    (0x0F0F_0F0F, 0x00FF_00FF);
    (0x8000_0001, 0x8000_0002);
    (0x0000_0000, 0x0000_0007);
    (0xDEAD_BEEF, 0x0BAD_F00D) ]

let alu_battery (a, b) =
  List.concat
    [ li32 3 a; li32 4 b;
      [ add 5 3 4; addc 6 3 4; sub 7 3 4;
        and_ 8 3 4; or_ 9 3 4; xor 10 3 4;
        mul 11 3 4; mulu 12 3 4;
        div 13 3 4; divu 14 3 4;
        andi 15 4 31;
        sll 16 3 15; srl 17 3 15; sra 18 3 15; ror 19 3 15;
        addi 5 3 0x77; addic 6 3 0x11;
        andi 7 3 0xF0F0; ori 8 3 0x0A0A; xori 9 3 0x5555;
        muli 10 3 0x13;
        slli 11 3 7; srli 12 3 9; srai 13 3 3; rori 14 3 13;
        extbs 15 4; extbz 16 4; exths 17 4; exthz 18 4;
        extws 19 4; extwz 20 4;
        movhi 21 ((a lsr 16) land 0xFFFF) ] ]

let setflag_battery (a, b) =
  List.concat
    [ li32 3 a; li32 4 b;
      [ sfeq 3 4; sfne 3 4;
        sfgtu 3 4; sfgeu 3 4; sfltu 3 4; sfleu 3 4;
        sfgts 3 4; sfges 3 4; sflts 3 4; sfles 3 4;
        sfeqi 3 0x42; sfnei 3 0x42;
        sfgtui 3 0x42; sfgeui 3 0x42; sfltui 3 0x42; sfleui 3 0x42;
        sfgtsi 3 0x42; sfgesi 3 0x42; sfltsi 3 0x42; sflesi 3 0x42 ] ]

let mem_battery i (a, _) =
  let base = i * 32 in
  List.concat
    [ li32 3 a;
      [ sw base 2 3;
        sh (base + 4) 2 3;
        sb (base + 6) 2 3;
        lwz 5 2 base; lws 6 2 base;
        lhz 7 2 (base + 4); lhs 8 2 (base + 4);
        lbz 9 2 (base + 6); lbs 10 2 (base + 6) ] ]

let mac_battery (a, b) =
  List.concat
    [ li32 3 a; li32 4 b;
      [ mac 3 4; msb 4 3; maci 3 0x21; macrc 5;
        mfspr 6 0 Rt.spr_machi;
        mfspr 7 0 Rt.spr_maclo ] ]

let control_battery i =
  let t = string_of_int i in
  [ jal ("ctl_sub_" ^ t);
    nop;
    (* Conditional forward and backward hops. *)
    li 12 0;
    label ("ctl_back_" ^ t);
    addi 12 12 1;
    sfltui 12 3;
    bf ("ctl_back_" ^ t);
    nop;
    sfeqi 12 3;
    bnf ("ctl_skip_" ^ t);
    nop;
    addi 13 13 1;
    label ("ctl_skip_" ^ t);
    la 14 ("ctl_ret_" ^ t);
    jr 14;
    nop;
    label ("ctl_ret_" ^ t);
    la 15 ("ctl_sub2_" ^ t);
    jalr 15;
    nop;
    j ("ctl_end_" ^ t);
    nop;
    label ("ctl_sub_" ^ t);
    addi 16 16 1;
    jr 9;
    nop;
    label ("ctl_sub2_" ^ t);
    addi 17 17 1;
    jr 9;
    nop;
    label ("ctl_end_" ^ t);
    nop ]

let code =
  List.concat
    [ Rt.prologue;
      List.concat_map alu_battery seeds;
      List.concat_map setflag_battery seeds;
      List.concat (List.mapi mem_battery seeds);
      List.concat_map mac_battery seeds;
      List.concat (List.init 6 control_battery);
      (* A few syscalls and traps so those points appear here too. *)
      List.concat_map (fun k -> [ li 3 k; li 4 1; sys k ]) [ 11; 12; 13; 14; 15 ];
      List.concat_map (fun k -> [ trap k ]) [ 11; 12; 13; 14; 15 ];
      Rt.exit_program ]

let workload = Rt.build ~name:"instru" code
