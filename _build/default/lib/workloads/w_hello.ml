(* Hello world: format a greeting into an output buffer byte by byte and
   "print" it through a syscall per character — the smallest workload. *)

open Isa.Asm.Build

let message = "Hello, world!\n"

let code =
  List.concat
    [ Rt.prologue;
      List.concat
        (List.mapi
           (fun i c -> [ li 3 (Char.code c); sb (2048 + i) 2 3 ])
           (List.init (String.length message) (String.get message)));
      (* putchar loop via syscall 4 *)
      [ li 4 0;
        label "hw_put";
        add 5 2 4;
        lbz 3 5 2048;
        li 6 4;
        sys 4;
        addi 4 4 1;
        sfltui 4 (String.length message);
        bf "hw_put";
        nop ];
      Rt.exit_program ]

let workload = Rt.build ~name:"helloworld" code
