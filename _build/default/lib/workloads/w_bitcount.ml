(* Bit counting by three different algorithms over a PRNG stream, as in
   the MiBench bitcount benchmark. *)

open Isa.Asm.Build

(* Nibble lookup table: popcounts of 0..15 at r2+1536. *)
let table_init =
  List.concat
    (List.mapi (fun i c -> [ li 3 c; sb (1536 + i) 2 3 ])
       [ 0; 1; 1; 2; 1; 2; 2; 3; 1; 2; 2; 3; 2; 3; 3; 4 ])

let code =
  List.concat
    [ Rt.prologue;
      table_init;
      li32 20 0x1357_9BDF;
      li32 19 0x41C6_4E6D;
      [ li 18 0;
        li 15 0;                 (* total (shift method) *)
        li 16 0;                 (* total (kernighan) *)
        li 17 0;                 (* total (table) *)
        label "bc_loop";
        mul 20 20 19;
        addi 20 20 0x3039;
        add 3 20 0;
        (* method 1: shift and add *)
        li 4 0;
        label "bc_shift";
        andi 5 3 1;
        add 15 15 5;
        srli 3 3 1;
        addi 4 4 1;
        sfltui 4 32;
        bf "bc_shift";
        nop;
        (* method 2: Kernighan x &= x-1 *)
        add 3 20 0;
        label "bc_kern";
        sfeqi 3 0;
        bf "bc_kern_done";
        nop;
        addi 6 3 (-1);
        and_ 3 3 6;
        addi 16 16 1;
        j "bc_kern";
        nop;
        label "bc_kern_done";
        (* method 3: nibble table on low 16 bits *)
        andi 7 20 0xF;
        add 8 2 7;
        lbz 9 8 1536;
        add 17 17 9;
        srli 7 20 4;
        andi 7 7 0xF;
        add 8 2 7;
        lbz 9 8 1536;
        add 17 17 9;
        srli 7 20 8;
        andi 7 7 0xF;
        add 8 2 7;
        lbz 9 8 1536;
        add 17 17 9;
        srli 7 20 12;
        andi 7 7 0xF;
        add 8 2 7;
        lbz 9 8 1536;
        add 17 17 9;
        addi 18 18 1;
        sfltui 18 10;
        bf "bc_loop";
        nop;
        sw 1064 2 15;
        sw 1068 2 16;
        sw 1072 2 17 ];
      Rt.exit_program ]

let workload = Rt.build ~name:"bitcount" code
