(* LZ77-flavoured kernel: fill a byte window from a PRNG, hash 3-byte
   sequences, and copy matched runs — byte traffic, shift/mask hashing. *)

open Isa.Asm.Build

let window = 96

(* LCG fill: buf[i] = (seed = seed * 1103515245 + 12345) >> 16 & 0x3F. *)
let fill =
  List.concat
    [ li32 3 0x1234_5678;
      li32 4 1103515245;
      [ li 5 0;
        label "fill_loop";
        mul 3 3 4;
        addi 3 3 12345;
        srli 6 3 16;
        andi 6 6 0x3F;
        add 7 2 5;
        sb 0 7 6;
        addi 5 5 1;
        sfltui 5 window;
        bf "fill_loop";
        nop ] ]

(* Hash pass: h = ((h << 5) ^ c) & 0x3FF, store running hash words. *)
let hash =
  [ li 5 0;
    li 8 0;
    label "hash_loop";
    add 7 2 5;
    lbz 6 7 0;
    slli 8 8 5;
    xor 8 8 6;
    andi 8 8 0x3FF;
    slli 9 5 2;
    add 9 9 2;
    sw 512 9 8;
    addi 5 5 1;
    sfltui 5 window;
    bf "hash_loop";
    nop ]

(* Copy a "match" of 24 bytes from offset 8 to offset window. *)
let copy =
  [ li 5 0;
    label "copy_loop";
    add 7 2 5;
    lbz 6 7 8;
    add 10 2 5;
    sb window 10 6;
    addi 5 5 1;
    sfltui 5 24;
    bf "copy_loop";
    nop ]

(* Run-length probe comparing the two regions halfword by halfword. *)
let verify =
  [ li 5 0;
    li 11 0;
    label "ver_loop";
    add 7 2 5;
    lhz 6 7 8;
    lhz 10 7 window;
    sfeq 6 10;
    bnf "ver_miss";
    nop;
    addi 11 11 1;
    label "ver_miss";
    addi 5 5 2;
    sfltui 5 24;
    bf "ver_loop";
    nop;
    sw 1032 2 11 ]

let code = List.concat [ Rt.prologue; fill; hash; copy; verify; Rt.exit_program ]

let workload = Rt.build ~name:"gzip" code
