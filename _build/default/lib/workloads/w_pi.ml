(* Pi by the Leibniz series in Q24 fixed point: alternating divisions,
   exercising divu/div and sign handling over many iterations. *)

open Isa.Asm.Build

let code =
  List.concat
    [ Rt.prologue;
      li32 3 0x0400_0000;        (* 4.0 in Q24 *)
      [ li 4 1;                  (* odd denominator *)
        li 5 0;                  (* accumulator *)
        li 6 0;                  (* term index *)
        label "pi_loop";
        divu 7 3 4;              (* 4/k *)
        andi 8 6 1;
        sfnei 8 0;
        bf "pi_sub";
        nop;
        add 5 5 7;
        j "pi_next";
        nop;
        label "pi_sub";
        sub 5 5 7;
        label "pi_next";
        addi 4 4 2;
        addi 6 6 1;
        sfltui 6 48;
        bf "pi_loop";
        nop;
        sw 1056 2 5 ];
      (* Machin-style correction with signed division for variety. *)
      li32 10 0x0100_0000;
      [ li 11 5;
        div 12 10 11;
        li 11 239;
        div 13 10 11;
        slli 12 12 2;
        sub 14 12 13;
        sw 1060 2 14 ];
      Rt.exit_program ]

let workload = Rt.build ~name:"pi" code
