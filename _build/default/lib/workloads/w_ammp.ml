(* Molecular-dynamics flavoured kernel: pairwise squared distances over a
   particle array with an accumulated potential, heavy on loads, subtracts
   and multiplies. *)

open Isa.Asm.Build

let n_particles = 12

let init =
  List.concat
    (List.init n_particles
       (fun i ->
          let x = ((i * 37) + 5) land 0xFFF and y = ((i * 91) + 11) land 0xFFF in
          List.concat
            [ li32 3 x; [ sw (i * 8) 2 3 ];
              li32 3 y; [ sw ((i * 8) + 4) 2 3 ] ]))

let pairwise =
  [ li 4 0;                      (* i *)
    li 14 0;                     (* potential accumulator *)
    label "pi_loop";
    addi 5 4 1;                  (* j = i + 1 *)
    label "pj_loop";
    slli 6 4 3;
    add 6 6 2;
    slli 7 5 3;
    add 7 7 2;
    lwz 8 6 0;                   (* x_i *)
    lwz 9 7 0;                   (* x_j *)
    sub 10 8 9;
    mul 10 10 10;
    lwz 8 6 4;                   (* y_i *)
    lwz 9 7 4;                   (* y_j *)
    sub 11 8 9;
    mul 11 11 11;
    add 12 10 11;                (* squared distance *)
    srli 13 12 4;
    add 14 14 13;
    addi 5 5 1;
    sfltui 5 n_particles;
    bf "pj_loop";
    nop;
    addi 4 4 1;
    sfltui 4 (n_particles - 1);
    bf "pi_loop";
    nop;
    sw 1024 2 14 ]

(* Velocity update pass: signed arithmetic with shifts. *)
let integrate =
  [ li 4 0;
    label "vel_loop";
    slli 6 4 3;
    add 6 6 2;
    lwz 8 6 0;
    lwz 9 6 4;
    sub 10 9 8;
    srai 10 10 2;
    add 8 8 10;
    sw 0 6 8;
    addi 4 4 1;
    sfltui 4 n_particles;
    bf "vel_loop";
    nop ]

let code = List.concat [ Rt.prologue; init; pairwise; integrate; Rt.exit_program ]

let workload = Rt.build ~name:"ammp" code
