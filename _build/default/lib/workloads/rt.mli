(** Runtime scaffolding shared by every workload and trigger program: the
    exception vector table, generic handlers, and the memory layout.

    Register convention: r26/r27 are reserved for exception handlers (they
    may be clobbered at any instruction boundary once interrupts are
    enabled); r1 is the stack pointer, r2 the data-region base, r9 the
    link register, r11 the syscall result. *)

val spr_sr : int
val spr_epcr : int
val spr_eear : int
val spr_esr : int
val spr_machi : int
val spr_maclo : int

val code_base : int
val data_base : int
val stack_base : int
val counter_base : int
val sdram_code_base : int

val counter_addr : Isa.Spr.Vector.kind -> int
(** The per-vector exception counter's memory slot. *)

(** What a handler does with the saved EPCR: [Skip] advances past the
    faulting instruction (re-execution exceptions), [Resume] returns to
    the saved address (completion exceptions), [Service] is [Resume] plus
    the syscall convention r11 <- r3 + r4. With DSX set, all three skip
    the whole branch/delay pair so trigger loops terminate. *)
type handler_kind = Skip | Resume | Service

val handler : prefix:string -> counter:int -> handler_kind -> Isa.Asm.item list

val reset_stub : Isa.Asm.item list

val vector_programs : unit -> Isa.Asm.program list

type t = {
  name : string;
  image : (int * int) list;
  entry : int;
  tick_period : int;
      (** tick-timer period used when tracing this workload (0 = off) *)
}

val build :
  name:string -> ?tick_period:int -> ?extra:Isa.Asm.program list ->
  Isa.Asm.item list -> t
(** Assemble main code at {!code_base} together with the standard vectors
    and any extra sections (e.g. code placed in SDRAM). Entry is the
    reset vector. *)

val prologue : Isa.Asm.item list
(** Stack and data-base register setup. *)

val exit_program : Isa.Asm.item list
(** The l.nop 1 exit convention. *)
