lib/workloads/w_crafty.ml: Isa List Rt String
