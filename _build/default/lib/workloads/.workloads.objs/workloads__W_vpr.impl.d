lib/workloads/w_vpr.ml: Isa List Rt
