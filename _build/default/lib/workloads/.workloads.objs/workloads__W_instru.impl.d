lib/workloads/w_instru.ml: Isa List Rt
