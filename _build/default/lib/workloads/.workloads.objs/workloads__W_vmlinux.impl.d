lib/workloads/w_vmlinux.ml: Isa List Rt
