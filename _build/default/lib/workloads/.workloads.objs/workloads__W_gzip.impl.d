lib/workloads/w_gzip.ml: Isa List Rt
