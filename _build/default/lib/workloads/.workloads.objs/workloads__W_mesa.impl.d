lib/workloads/w_mesa.ml: Isa List Rt
