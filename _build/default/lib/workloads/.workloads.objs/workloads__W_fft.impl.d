lib/workloads/w_fft.ml: Isa List Rt
