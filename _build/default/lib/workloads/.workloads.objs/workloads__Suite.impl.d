lib/workloads/suite.ml: List Rt String W_ammp W_basicmath W_bitcount W_bzip W_crafty W_fft W_gzip W_hello W_instru W_mcf W_mesa W_parser W_pi W_quake W_twolf W_vmlinux W_vpr
