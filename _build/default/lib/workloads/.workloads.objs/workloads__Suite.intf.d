lib/workloads/suite.mli: Rt
