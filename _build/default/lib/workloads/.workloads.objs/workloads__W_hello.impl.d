lib/workloads/w_hello.ml: Char Isa List Rt String
