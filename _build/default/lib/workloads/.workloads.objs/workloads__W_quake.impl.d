lib/workloads/w_quake.ml: Isa List Rt
