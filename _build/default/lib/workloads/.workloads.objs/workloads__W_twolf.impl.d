lib/workloads/w_twolf.ml: Isa List Rt
