lib/workloads/w_bitcount.ml: Isa List Rt
