lib/workloads/w_pi.ml: Isa List Rt
