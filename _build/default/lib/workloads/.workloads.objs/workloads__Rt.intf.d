lib/workloads/rt.mli: Isa
