lib/workloads/w_ammp.ml: Isa List Rt
