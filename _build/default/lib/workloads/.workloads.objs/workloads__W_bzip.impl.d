lib/workloads/w_bzip.ml: Isa List Rt
