lib/workloads/w_mcf.ml: Isa List Rt
