lib/workloads/w_basicmath.ml: Isa List Rt
