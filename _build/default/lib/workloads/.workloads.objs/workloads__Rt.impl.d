lib/workloads/rt.ml: Asm Cpu Insn Isa List Spr
