lib/workloads/w_parser.ml: Char Isa List Rt String
