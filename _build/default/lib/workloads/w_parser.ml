(* Text tokenizer: writes a byte string into the data region, then scans
   it counting words, digits and separators — byte loads and stores,
   immediate compares, dense branching. *)

open Isa.Asm.Build

let text = "the quick brown fox jumps over 13 lazy dogs; 42 times each day."

(* Store the text byte by byte at r2. *)
let store_text =
  List.concat
    (List.mapi
       (fun i c -> [ li 3 (Char.code c); sb i 2 3 ])
       (List.init (String.length text) (String.get text)))

let scan =
  List.concat
    [ [ li 4 0;                 (* index *)
        li 5 0;                 (* word count *)
        li 6 0;                 (* digit count *)
        li 7 0;                 (* separator count *)
        li 8 0;                 (* previous-was-space *)
        label "scan_loop";
        add 9 2 4;
        lbz 10 9 0;
        sfeqi 10 32;            (* space *)
        bf "is_sep";
        nop;
        sfeqi 10 59;            (* ';' *)
        bf "is_sep";
        nop;
        sfeqi 10 46;            (* '.' *)
        bf "is_sep";
        nop;
        (* not a separator: start of word? *)
        sfnei 8 0;
        bf "in_word";
        nop;
        addi 5 5 1;
        label "in_word";
        li 8 1;
        (* digit? *)
        sfgeui 10 48;
        bnf "next";
        nop;
        sfleui 10 57;
        bnf "next";
        nop;
        addi 6 6 1;
        j "next";
        nop;
        label "is_sep";
        addi 7 7 1;
        li 8 0;
        label "next";
        addi 4 4 1;
        sfltui 4 (String.length text);
        bf "scan_loop";
        nop ];
      (* Copy the text to a second buffer as half-words, with extension. *)
      [ li 4 0;
        label "copy_loop";
        add 9 2 4;
        lbs 10 9 0;
        exths 11 10;
        add 12 2 4;
        sh 256 12 11;
        addi 4 4 2;
        sfltui 4 (String.length text - 1);
        bf "copy_loop";
        nop ] ]

let code = List.concat [ Rt.prologue; store_text; scan; Rt.exit_program ]

let workload = Rt.build ~name:"parser" code
