(* 8-point decimation-in-time FFT skeleton in Q14 fixed point, with
   halfword sample storage (lhs/sh) and MAC-based complex butterflies. *)

open Isa.Asm.Build

(* Q14 twiddle factors for N = 8: cos, -sin pairs for k = 0..3. *)
let twiddles = [ (16384, 0); (11585, -11585); (0, -16384); (-11585, -11585) ]

let init =
  List.concat
    [ (* real samples: a ramp with alternating sign, imag = 0 *)
      List.concat
        (List.init 8
           (fun i ->
              let v = (if i land 1 = 0 then 1 else -1) * ((i * 700) + 100) in
              li32 3 (v land 0xFFFF)
              @ [ sh (1792 + (i * 4)) 2 3; li 4 0; sh (1794 + (i * 4)) 2 4 ]));
      (* twiddle table at r2+1856 *)
      List.concat
        (List.mapi
           (fun k (c, s) ->
              li32 3 (c land 0xFFFF)
              @ [ sh (1856 + (k * 4)) 2 3 ]
              @ li32 4 (s land 0xFFFF)
              @ [ sh (1858 + (k * 4)) 2 4 ])
           twiddles) ]

(* One radix-2 butterfly between samples i and j with twiddle k:
   t = w * x_j; x_j = x_i - t; x_i = x_i + t (complex, Q14). *)
let butterfly tag i j k =
  [ label ("bf_" ^ tag);
    (* load x_j *)
    lhs 3 2 (1792 + (j * 4));     (* re *)
    lhs 4 2 (1794 + (j * 4));     (* im *)
    (* load twiddle *)
    lhs 5 2 (1856 + (k * 4));     (* c *)
    lhs 6 2 (1858 + (k * 4));     (* -s *)
    (* t_re = (re*c - im*(-s)) >> 14 via mac/msb *)
    mac 3 5;
    msb 4 6;
    macrc 7;
    srai 7 7 14;
    (* t_im = (re*(-s) + im*c) >> 14 *)
    mac 3 6;
    mac 4 5;
    macrc 8;
    srai 8 8 14;
    (* load x_i *)
    lhs 10 2 (1792 + (i * 4));
    lhs 11 2 (1794 + (i * 4));
    (* x_j = x_i - t *)
    sub 12 10 7;
    sub 13 11 8;
    sh (1792 + (j * 4)) 2 12;
    sh (1794 + (j * 4)) 2 13;
    (* x_i = x_i + t *)
    add 12 10 7;
    add 13 11 8;
    sh (1792 + (i * 4)) 2 12;
    sh (1794 + (i * 4)) 2 13 ]

let stages =
  (* DIT schedule for N = 8 (bit-reversal omitted: spectral correctness is
     not the point, instruction behaviour is). *)
  List.concat
    [ butterfly "s1a" 0 1 0; butterfly "s1b" 2 3 0;
      butterfly "s1c" 4 5 0; butterfly "s1d" 6 7 0;
      butterfly "s2a" 0 2 0; butterfly "s2b" 1 3 2;
      butterfly "s2c" 4 6 0; butterfly "s2d" 5 7 2;
      butterfly "s3a" 0 4 0; butterfly "s3b" 1 5 1;
      butterfly "s3c" 2 6 2; butterfly "s3d" 3 7 3 ]

(* Magnitude-squared readback with word stores. *)
let spectrum =
  [ li 15 0;
    label "sp_loop";
    slli 16 15 2;
    add 16 16 2;
    lhs 3 16 1792;
    lhs 4 16 1794;
    mul 5 3 3;
    mul 6 4 4;
    add 7 5 6;
    sw 1920 16 7;
    addi 15 15 1;
    sfltui 15 8;
    bf "sp_loop";
    nop ]

let code = List.concat [ Rt.prologue; init; stages; spectrum; Rt.exit_program ]

let workload = Rt.build ~name:"fft" code
