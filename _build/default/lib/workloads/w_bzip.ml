(* Run-length + move-to-front encoder over a byte buffer, the heart of
   bzip-style compression: byte scans, run detection, table reshuffling. *)

open Isa.Asm.Build

let n = 64

(* Deterministic skewed data: runs of repeated bytes. *)
let fill =
  [ li 3 0;                       (* i *)
    li 4 7;                       (* current byte *)
    label "bz_fill";
    add 5 2 3;
    sb 0 5 4;
    andi 6 3 7;
    sfnei 6 7;
    bf "bz_keep";
    nop;
    addi 4 4 3;
    andi 4 4 0x1F;
    label "bz_keep";
    addi 3 3 1;
    sfltui 3 n;
    bf "bz_fill";
    nop ]

(* RLE: emit (byte, run_length) pairs at r2+256. *)
let rle =
  [ li 3 0;                       (* read index *)
    li 7 0;                       (* write index *)
    label "rle_loop";
    add 5 2 3;
    lbz 4 5 0;                    (* run byte *)
    li 6 1;                       (* run length *)
    label "rle_run";
    addi 3 3 1;
    sfgeui 3 n;
    bf "rle_emit";
    nop;
    add 5 2 3;
    lbz 8 5 0;
    sfeq 8 4;
    bnf "rle_emit";
    nop;
    addi 6 6 1;
    j "rle_run";
    nop;
    label "rle_emit";
    add 9 2 7;
    sb 256 9 4;
    add 9 2 7;
    sb 257 9 6;
    addi 7 7 2;
    sfltui 3 n;
    bf "rle_loop";
    nop;
    sw 1036 2 7 ]

(* Move-to-front over a 16-entry table at r2+512. *)
let mtf =
  List.concat
    [ List.concat (List.init 16 (fun i -> [ li 3 i; sb (512 + i) 2 3 ]));
      [ li 10 0;
        label "mtf_loop";
        add 5 2 10;
        lbz 4 5 0;
        andi 4 4 15;              (* symbol to look up *)
        (* linear search in the table *)
        li 6 0;
        label "mtf_find";
        add 7 2 6;
        lbz 8 7 512;
        sfeq 8 4;
        bf "mtf_found";
        nop;
        addi 6 6 1;
        sfltui 6 16;
        bf "mtf_find";
        nop;
        label "mtf_found";
        (* shift entries [0, r6) up by one and put symbol at front *)
        label "mtf_shift";
        sfeqi 6 0;
        bf "mtf_front";
        nop;
        addi 11 6 (-1);
        add 7 2 11;
        lbz 8 7 512;
        add 7 2 6;
        sb 512 7 8;
        add 6 11 0;
        j "mtf_shift";
        nop;
        label "mtf_front";
        add 7 2 0;
        sb 512 7 4;
        addi 10 10 1;
        sfltui 10 n;
        bf "mtf_loop";
        nop ] ]

let code = List.concat [ Rt.prologue; fill; rle; mtf; Rt.exit_program ]

let workload = Rt.build ~name:"bzip" code
