(* "Linux boot" style workload: the coverage backbone for the exception
   machinery. It exercises syscalls (including in branch delay slots),
   traps, illegal instructions, misaligned accesses, range exceptions,
   tick-timer interrupts, SPR moves, and a user-mode phase entered via
   l.rfe — the behaviours behind properties p1/p3/p8/p9/p13/p14/p17/p19/
   p20/p21/p23 of Table 6. *)

open Isa.Asm.Build

let syscall_block k =
  [ li 3 (k * 3); li 4 (k + 7);
    sys k;                      (* r11 <- r3 + r4 in the handler *)
    add 5 11 0 ]

(* A syscall sitting in the delay slot of a jump: the handler sees DSX set
   and EPCR pointing at the branch. *)
let delay_slot_syscall k =
  [ li 3 k; li 4 9;
    j ("dss_done" ^ string_of_int k);
    sys k;
    label ("dss_done" ^ string_of_int k);
    add 6 11 3 ]

let trap_block k = [ li 3 k; trap k; addi 7 7 1 ]

let illegal_block = [ word 0xEC00_0000; addi 8 8 1 ]

let misaligned_block k =
  (* Odd effective address: alignment exception, handler skips. *)
  [ addi 3 2 (1 + (k * 2)); lwz 10 3 0; addi 8 8 1 ]

let range_block k =
  List.concat
    [ [ mfspr 12 0 Rt.spr_sr; ori 12 12 0x1000; mtspr 0 12 Rt.spr_sr ];
      li32 13 0x7FFF_FFF0;
      [ li 14 (17 + k);
        add 15 13 14;             (* signed overflow -> range exception *)
        mfspr 12 0 Rt.spr_sr;
        andi 12 12 0xEFFF;        (* clear OVE again *)
        mtspr 0 12 Rt.spr_sr ] ]

let spr_moves k =
  List.concat
    [ li32 16 (0x4000 + (k * 0x24));
      [ mtspr 0 16 Rt.spr_eear;
        mfspr 17 0 Rt.spr_eear;
        mtspr 0 16 Rt.spr_maclo;
        mfspr 18 0 Rt.spr_maclo;
        mtspr 0 18 Rt.spr_epcr;   (* scratch use; overwritten at next exn *)
        mfspr 19 0 Rt.spr_epcr;
        mfspr 20 0 Rt.spr_sr;
        mtspr 0 20 Rt.spr_sr ] ]

(* Spin with the tick timer enabled so asynchronous interrupts land on a
   variety of program points. *)
let tick_phase =
  List.concat
    [ [ mfspr 12 0 Rt.spr_sr; ori 12 12 0x0002; mtspr 0 12 Rt.spr_sr ];
      [ li 21 0;
        label "tick_loop";
        addi 21 21 1;
        xori 22 21 0x55;
        add 23 22 21;
        sfltui 21 220;
        bf "tick_loop";
        nop ];
      [ mfspr 12 0 Rt.spr_sr; andi 12 12 0xFFFD; mtspr 0 12 Rt.spr_sr ] ]

(* Drop to user mode via rfe; the user phase runs arithmetic, syscalls and
   a privilege probe (mtspr in user mode raises illegal), then exits. *)
let user_phase =
  List.concat
    [ [ la 24 "user_code";
        mtspr 0 24 Rt.spr_epcr;
        mfspr 25 0 Rt.spr_sr;
        andi 25 25 0xFFFE;        (* clear SM *)
        mtspr 0 25 Rt.spr_esr;
        rfe;
        label "user_code" ];
      [ li 3 40; li 4 2;
        add 5 3 4;
        sys 90;                   (* escalate and come back *)
        add 6 11 0;
        mfspr 10 0 Rt.spr_sr;     (* illegal in user mode: skipped *)
        addi 6 6 1;
        trap 91;
        addi 6 6 2 ];
      Rt.exit_program ]

let code =
  List.concat
    [ Rt.prologue;
      List.concat_map syscall_block [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
      List.concat_map delay_slot_syscall [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      List.concat_map trap_block [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      List.concat (List.init 8 (fun _ -> illegal_block));
      List.concat_map misaligned_block [ 0; 1; 2; 3; 4; 5; 6; 7 ];
      List.concat_map range_block [ 0; 1; 2; 3; 4; 5; 6; 7 ];
      List.concat_map spr_moves [ 0; 1; 2; 3; 4; 5; 6; 7 ];
      tick_phase;
      user_phase ]

let workload = Rt.build ~name:"vmlinux" ~tick_period:37 code
