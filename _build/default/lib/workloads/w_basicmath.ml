(* Integer math kernels: gcd, integer square root (Newton), signed and
   unsigned division chains, carry-chain addition. *)

open Isa.Asm.Build

(* gcd(r3, r4) by repeated subtraction into r5. *)
let gcd_block a b tag =
  List.concat
    [ li32 3 a; li32 4 b;
      [ label ("gcd_" ^ tag);
        sfeq 3 4;
        bf ("gcd_done_" ^ tag);
        nop;
        sfgtu 3 4;
        bf ("gcd_sub_a_" ^ tag);
        nop;
        sub 4 4 3;
        j ("gcd_" ^ tag);
        nop;
        label ("gcd_sub_a_" ^ tag);
        sub 3 3 4;
        j ("gcd_" ^ tag);
        nop;
        label ("gcd_done_" ^ tag);
        add 5 3 0 ] ]

(* Integer sqrt of r3 by Newton iteration: x <- (x + n/x) / 2. *)
let isqrt_block n tag =
  List.concat
    [ li32 3 n;
      [ srli 6 3 1;
        ori 6 6 1;                 (* initial guess, nonzero *)
        li 7 0;
        label ("isq_" ^ tag);
        divu 8 3 6;
        add 8 8 6;
        srli 8 8 1;
        add 6 8 0;
        addi 7 7 1;
        sfltui 7 12;
        bf ("isq_" ^ tag);
        nop;
        add 9 6 0 ] ]

(* Signed division and remainder-style chains, exercising div and mul. *)
let sdiv_block a b tag =
  List.concat
    [ li32 3 a; li32 4 b;
      [ div 5 3 4;
        mul 6 5 4;
        sub 7 3 6;               (* remainder *)
        sflts 7 0;
        addi 8 8 1;
        label ("sdiv_end_" ^ tag) ] ]

(* Wide addition with carry: (r3:r4) + (r5:r6). *)
let carry_block a b tag =
  List.concat
    [ li32 3 a; li32 4 b; li32 5 0x9234_5678; li32 6 0xF0F0_F0F7;
      [ add 7 4 6;               (* low words, sets CY *)
        addc 8 3 5;              (* high words + carry *)
        addic 9 8 13;
        label ("carry_end_" ^ tag) ] ]

let code =
  List.concat
    [ Rt.prologue;
      gcd_block 462 1071 "a";
      gcd_block 120 84 "b";
      gcd_block 97 31 "c";
      gcd_block 4096 640 "d";
      isqrt_block 144 "a";
      isqrt_block 99980001 "b";
      isqrt_block 2 "c";
      isqrt_block 123456789 "d";
      sdiv_block 1000 7 "a";
      sdiv_block 0xFFFF_FF38 7 "b";      (* -200 / 7 *)
      sdiv_block 1000 0xFFFF_FFFD "c";   (* 1000 / -3 *)
      sdiv_block 0x8000_0010 3 "d";
      sdiv_block 77 11 "e";
      carry_block 0x0000_0001 0xFFFF_FFFF "a";
      carry_block 0x7FFF_0000 0x8000_1234 "b";
      carry_block 0x12345678 0x9ABCDEF0 "c";
      carry_block 0 1 "d";
      carry_block 0xFFFF_FFFE 0xFFFF_FFFE "e";
      Rt.exit_program ]

let workload = Rt.build ~name:"basicmath" code
