(* Security-critical invariant identification (§3.3).

   For each security bug: run its trigger program on the buggy processor
   and record which invariants are violated (candidate SCI); then run the
   same trigger on the clean processor — anything violated there is not a
   true processor invariant (a false positive of the generation phase) and
   is removed. The survivors are the identified SCI of that bug. *)

module Expr = Invariant.Expr

(* Triggers that loop forever (b1, b4, a11) are cut off here; by then the
   violations have long been recorded. *)
let trigger_max_steps = 4000

type report = {
  bug : Bugs.Registry.t;
  true_sci : Expr.t list;
  false_positives : Expr.t list;  (* violated by the clean processor too *)
  buggy_records : int;
  detected : bool;                (* some SCI is violated by the buggy run *)
}

let capture_trigger ?(fault = Cpu.Fault.none) (trigger : Workloads.Rt.t) =
  let config =
    { Trace.Runner.default_config with max_steps = trigger_max_steps }
  in
  let records, _outcome =
    Trace.Runner.capture ~config ~fault ~tick_period:trigger.tick_period
      ~entry:trigger.entry trigger.image
  in
  records

let run ~(index : Checker.index) (bug : Bugs.Registry.t) =
  let buggy = capture_trigger ~fault:bug.fault bug.trigger in
  let clean = capture_trigger bug.trigger in
  let violated_buggy = Checker.violations index buggy in
  let violated_clean = Checker.violations index clean in
  let clean_keys = Hashtbl.create 64 in
  List.iter
    (fun inv -> Hashtbl.replace clean_keys (Expr.canonical inv) ())
    violated_clean;
  let true_sci =
    List.filter
      (fun inv -> not (Hashtbl.mem clean_keys (Expr.canonical inv)))
      violated_buggy
  in
  { bug;
    true_sci;
    false_positives = violated_clean;
    buggy_records = List.length buggy;
    detected = true_sci <> [] }

(* Run identification over a list of bugs, returning per-bug reports and
   the union of identified SCI / false positives (the labeled data that
   seeds the inference model, §5.3). *)
type summary = {
  reports : report list;
  unique_sci : Expr.t list;
  unique_fp : Expr.t list;
}

let run_all ~invariants bugs =
  let index = Checker.index invariants in
  let reports = List.map (run ~index) bugs in
  let dedup invs =
    let seen = Hashtbl.create 256 in
    List.filter
      (fun inv ->
         let k = Expr.canonical inv in
         if Hashtbl.mem seen k then false
         else begin Hashtbl.replace seen k (); true end)
      invs
  in
  let unique_sci = dedup (List.concat_map (fun r -> r.true_sci) reports) in
  (* A "false positive" that some bug identifies as a true SCI is kept as
     SCI: the clean-run violation evidence is bug-local. *)
  let sci_keys = Hashtbl.create 256 in
  List.iter (fun i -> Hashtbl.replace sci_keys (Expr.canonical i) ()) unique_sci;
  let unique_fp =
    dedup (List.concat_map (fun r -> r.false_positives) reports)
    |> List.filter (fun i -> not (Hashtbl.mem sci_keys (Expr.canonical i)))
  in
  { reports; unique_sci; unique_fp }
