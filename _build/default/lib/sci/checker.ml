(* Invariant checking over traces: the core of SCI identification. The
   invariant set is indexed by program point so each record is only
   evaluated against the invariants of its own instruction. *)

module Expr = Invariant.Expr

type index = {
  by_point : (string, Expr.t array) Hashtbl.t;
  total : int;
}

let index invariants =
  let tmp = Hashtbl.create 97 in
  List.iter
    (fun (inv : Expr.t) ->
       let existing = Option.value ~default:[] (Hashtbl.find_opt tmp inv.Expr.point) in
       Hashtbl.replace tmp inv.Expr.point (inv :: existing))
    invariants;
  let by_point = Hashtbl.create 97 in
  Hashtbl.iter
    (fun point invs -> Hashtbl.replace by_point point (Array.of_list invs))
    tmp;
  { by_point; total = List.length invariants }

(* All distinct invariants violated anywhere in [records]. *)
let violations idx records =
  let violated = Hashtbl.create 64 in
  List.iter
    (fun (record : Trace.Record.t) ->
       match Hashtbl.find_opt idx.by_point record.Trace.Record.point with
       | None -> ()
       | Some invs ->
         Array.iter
           (fun inv ->
              let key = Expr.canonical inv in
              if not (Hashtbl.mem violated key) && Expr.violated inv record then
                Hashtbl.replace violated key inv)
           invs)
    records;
  Hashtbl.fold (fun _ inv acc -> inv :: acc) violated []
  |> List.sort Expr.compare

(* First record index at which [inv] is violated, for diagnostics. *)
let first_violation inv records =
  let rec go i = function
    | [] -> None
    | r :: rest -> if Expr.violated inv r then Some i else go (i + 1) rest
  in
  go 0 records
