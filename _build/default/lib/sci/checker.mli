(** Invariant checking over traces: the core of SCI identification. The
    invariant set is indexed by program point so each record only
    evaluates the invariants of its own instruction. *)

type index

val index : Invariant.Expr.t list -> index

val violations : index -> Trace.Record.t list -> Invariant.Expr.t list
(** All distinct invariants violated anywhere in the trace, in canonical
    order. *)

val first_violation : Invariant.Expr.t -> Trace.Record.t list -> int option
(** The first offending record index, for diagnostics. *)
