(** Security-critical invariant identification (§3.3).

    For each security bug: run its trigger on the buggy processor and
    record the violated invariants (candidate SCI); run the same trigger
    on the clean processor — anything violated there is not a true
    processor invariant (a generation false positive) and is removed.
    The survivors are the identified SCI of that bug. *)

val trigger_max_steps : int
(** Looping triggers (b1, b4, a11) are cut off here; violations have long
    been recorded by then. *)

type report = {
  bug : Bugs.Registry.t;
  true_sci : Invariant.Expr.t list;
  false_positives : Invariant.Expr.t list;
      (** violated by the clean processor too *)
  buggy_records : int;
  detected : bool;  (** some SCI is violated by the buggy run *)
}

val capture_trigger :
  ?fault:Cpu.Fault.t -> Workloads.Rt.t -> Trace.Record.t list
(** The (step-capped) trace of a trigger program. *)

val run : index:Checker.index -> Bugs.Registry.t -> report

type summary = {
  reports : report list;
  unique_sci : Invariant.Expr.t list;
      (** union of all identified SCI; seeds the inference labels *)
  unique_fp : Invariant.Expr.t list;
      (** union of clean-run violations, minus anything that any bug
          identifies as a true SCI *)
}

val run_all :
  invariants:Invariant.Expr.t list -> Bugs.Registry.t list -> summary
