lib/sci/identify.mli: Bugs Checker Cpu Invariant Trace Workloads
