lib/sci/identify.ml: Bugs Checker Cpu Hashtbl Invariant List Trace Workloads
