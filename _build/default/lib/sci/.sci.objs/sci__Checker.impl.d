lib/sci/checker.ml: Array Hashtbl Invariant List Option Trace
