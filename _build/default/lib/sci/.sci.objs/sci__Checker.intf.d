lib/sci/checker.mli: Invariant Trace
