(* Feature extraction for the SCI inference model (§3.4).

   "The features are all the ISA-level variables such as general purpose
   registers, flags, and memory addresses, and also operators such as
   >, <, <>." — we emit one boolean feature per variable mentioned (with
   orig() variants kept distinct, as in Table 4's orig(OPA), orig(SPR)),
   one per comparison/arithmetic operator used, a CONST feature for
   immediate operands, and one feature for the instruction mnemonic
   (Table 4's ROR and DIV features). *)

let mnemonic_feature point =
  (* "l.ror" -> "ROR" *)
  let base =
    if String.length point > 2 && String.sub point 0 2 = "l."
    then String.sub point 2 (String.length point - 2)
    else point
  in
  String.uppercase_ascii base

let term_features term =
  let var_feats ids = List.map Trace.Var.id_name ids in
  match term with
  | Expr.V id -> var_feats [ id ]
  | Expr.Imm _ -> [ "CONST" ]
  | Expr.Mul (id, _) -> "*" :: var_feats [ id ]
  | Expr.Mod (id, _) -> "mod" :: var_feats [ id ]
  | Expr.Notv id -> "not" :: var_feats [ id ]
  | Expr.Bin (op, a, b) -> Expr.op2_name op :: var_feats [ a; b ]

let cmp_feature = function
  | Expr.Eq -> "==" | Expr.Ne -> "!=" | Expr.Lt -> "<"
  | Expr.Le -> "<=" | Expr.Gt -> ">" | Expr.Ge -> ">="

(* The feature names of one invariant (with duplicates removed). *)
let of_invariant (t : Expr.t) =
  let body_feats = match t.Expr.body with
    | Expr.Cmp (op, lhs, rhs) ->
      (cmp_feature op :: term_features lhs) @ term_features rhs
    | Expr.In (term, _) -> "in" :: term_features term
  in
  List.sort_uniq String.compare (mnemonic_feature t.Expr.point :: body_feats)

(* A feature space maps names to dense indices, built from a corpus. *)
type space = {
  names : string array;
  index : (string, int) Hashtbl.t;
}

let build_space invariants =
  let index = Hashtbl.create 256 in
  let names = ref [] in
  List.iter
    (fun inv ->
       List.iter
         (fun f ->
            if not (Hashtbl.mem index f) then begin
              Hashtbl.add index f (Hashtbl.length index);
              names := f :: !names
            end)
         (of_invariant inv))
    invariants;
  { names = Array.of_list (List.rev !names); index }

let dimension space = Array.length space.names

let feature_name space i = space.names.(i)

(* Dense 0/1 feature vector of an invariant in the given space. *)
let vector space inv =
  let v = Array.make (dimension space) 0.0 in
  List.iter
    (fun f ->
       match Hashtbl.find_opt space.index f with
       | Some i -> v.(i) <- 1.0
       | None -> ())
    (of_invariant inv);
  v
