lib/invariant/io.ml: Buffer Expr Fun Hashtbl Lazy List Printf String Trace
