lib/invariant/feature.mli: Expr Hashtbl
