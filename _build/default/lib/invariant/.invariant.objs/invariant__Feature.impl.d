lib/invariant/feature.ml: Array Expr Hashtbl List String Trace
