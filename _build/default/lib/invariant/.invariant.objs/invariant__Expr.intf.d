lib/invariant/expr.mli: Format Trace
