lib/invariant/io.mli: Expr
