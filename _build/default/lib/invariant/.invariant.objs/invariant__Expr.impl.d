lib/invariant/expr.ml: Format List Printf String Trace Util
