(** Feature extraction for the SCI inference model (§3.4): one boolean
    feature per variable mentioned (orig() variants distinct, as in the
    paper's Table 4), one per operator, a CONST feature for immediates,
    and one for the instruction mnemonic (Table 4's ROR/DIV features). *)

val mnemonic_feature : string -> string
(** ["l.ror"] -> ["ROR"]. *)

val of_invariant : Expr.t -> string list
(** The (deduplicated, sorted) feature names of one invariant. *)

(** A feature space maps names to dense indices, built from a corpus. *)
type space = {
  names : string array;
  index : (string, int) Hashtbl.t;
}

val build_space : Expr.t list -> space

val dimension : space -> int

val feature_name : space -> int -> string

val vector : space -> Expr.t -> float array
(** The dense 0/1 feature vector; features outside the space are
    ignored. *)
