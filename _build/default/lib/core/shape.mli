(** Shape normalisation: SCI that differ only in the specific general
    purpose register (other than GPR0 and the link register), the member
    of the PC/NPC/NNPC family, the orig()/post side, an incidental
    constant, or the instruction within a family express the same
    *security property*. The paper relies on the same collapse: 3,146
    inferred SCI "can be concisely described as 33 security properties"
    (Table 5). *)

val norm_var : Trace.Var.id -> string

val norm_const : int -> string
(** Exception vectors and 0/1 are meaningful; other constants are [K]. *)

val point_family : string -> string
(** load / store / jump / exception / sprmove / extend / setflag /
    l.rfe / compute. *)

val body_key : Invariant.Expr.body -> string

val key : Invariant.Expr.t -> string
(** The property-class key of an invariant. *)

val group : Invariant.Expr.t list -> (string * Invariant.Expr.t list) list
(** Invariants by class, both in first-seen order. *)

val class_count : Invariant.Expr.t list -> int
(** The "security properties" count of Table 5. *)

val representatives : Invariant.Expr.t list -> Invariant.Expr.t list
(** One invariant per class: the assertion battery of Table 9. *)
