(* The expert-validation oracle.

   §5.7: a graduate student spent five hours classifying the 3,146
   model-recommended SCI, marking the "clearly non-invariant (as
   determined by the ISA)" ones as false positives — mostly invariants
   that pin registers or operands to incidental corpus values. This module
   is the deterministic stand-in for that manual pass: an invariant is
   ruled a false positive when it cannot be an ISA-level truth because it
   mentions incidental data (a specific non-zero GPR's value, a data
   constant, an inter-register coincidence), and plausible when it only
   constrains structural state (control flow, exception machinery,
   privilege, instruction identity, operand/bus relations, the zero
   register, compare-direction witnesses). *)

module Expr = Invariant.Expr
module Var = Trace.Var

(* Variables whose relations are structural rather than data accidents. *)
let structural_base name =
  match name with
  | "PC" | "NPC" | "NNPC" | "SR" | "SF" | "SM" | "CY" | "OV" | "DSX"
  | "TEE" | "IEE" | "EPCR0" | "ESR0" | "EEAR0"
  | "VEC" | "EXN" | "EPCR_D" | "DSX_OK"
  | "IR" | "MEM_AT_PC" | "OPCODE" | "IMM"
  | "OPA" | "OPB" | "DEST" | "EA" | "EA_REF" | "MEMBUS"
  | "SPR" | "orig(SPR)"
  | "PROD_U" | "PROD_S" | "CMPDIFF_U" | "CMPDIFF_S" | "CMPZ"
  | "EXT_SIGN" | "EXT_HI"
  | "GPR0" | "GPR9" (* the architectural zero and link registers *)
  | "REGD" | "REGA" | "REGB" -> true
  | _ -> false

let var_plausible id = structural_base (Var.id_base_name id)

(* A var framed against its own orig() is structural for any register:
   "this instruction does not touch GPRn". *)
let self_frame (inv : Expr.t) =
  match inv.Expr.body with
  | Expr.Cmp (Expr.Eq, Expr.V x, Expr.V y) ->
    String.equal (Var.id_base_name x) (Var.id_base_name y)
    && Var.is_orig x <> Var.is_orig y
  | _ -> false

(* Constants that are architecturally meaningful rather than incidental:
   exception vectors, word-step offsets, flags, alignment residues. *)
let const_plausible c =
  (c >= 0 && c <= 63) (* small structure: offsets, shifts, opcodes *)
  || (c >= -16 && c < 0)
  || (c >= 0x100 && c <= 0xF04 && c land 0x3 = 0)
  || c = 0xFFFF || c = 0xFF_FFFF || c = 0x10000

let term_plausible = function
  | Expr.V id -> var_plausible id
  | Expr.Imm c -> const_plausible c
  | Expr.Mul (id, k) -> var_plausible id && const_plausible k
  | Expr.Mod (id, _) -> var_plausible id
  | Expr.Notv id -> var_plausible id
  | Expr.Bin (_, a, b) -> var_plausible a && var_plausible b

(* The verdict: [true] means the invariant survives expert validation. *)
let plausible (inv : Expr.t) =
  self_frame inv
  ||
  match inv.Expr.body with
  | Expr.Cmp (op, lhs, rhs) ->
    let structural = term_plausible lhs && term_plausible rhs in
    let term_kind = function
      | Expr.V v | Expr.Mul (v, _) | Expr.Mod (v, _) | Expr.Notv v ->
        Some (Var.id_kind v)
      | Expr.Imm _ | Expr.Bin _ -> None
    in
    (match op with
     (* Disequalities between live values are coincidences of the corpus,
        the classic manual-validation reject (and the paper's explanation
        for missing p16: the <> operator carries strong non-SCI weight). *)
     | Expr.Ne ->
       structural
       && (match lhs, rhs with
           | Expr.V a, Expr.V b ->
             Var.id_kind a = Var.Flag && Var.id_kind b = Var.Flag
           | _ -> false)
     (* An ordering between two live data values is equally incidental;
        orderings carry ISA meaning only as bounds on the derived
        difference variables or between addresses. *)
     | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge ->
       structural
       && (match term_kind lhs, term_kind rhs with
           | Some Var.Diff, _ | _, Some Var.Diff -> true
           | Some Var.Addr, Some Var.Addr -> true
           | Some Var.Addr, None | None, Some Var.Addr -> true
           | _ -> false)
     | Expr.Eq -> structural)
  | Expr.In (term, values) ->
    (* Value-set invariants are ISA truths only over structural ranges:
       flags, register indices, immediates/opcodes, vectors, status
       words. A value set over a live datum is a corpus accident (the
       paper's "an SPR must equal 0" example of an easy reject). *)
    term_plausible term
    && List.for_all const_plausible values
    && (match term with
        | Expr.V v | Expr.Mul (v, _) | Expr.Mod (v, _) | Expr.Notv v ->
          (match Var.id_kind v with
           | Var.Flag | Var.Imm | Var.Regidx | Var.Srword -> true
           | Var.Addr ->
             let n = Var.id_base_name v in
             String.equal n "VEC" || String.equal n "PC" || String.equal n "NPC"
           | Var.Data | Var.Diff -> false)
        | Expr.Imm _ | Expr.Bin _ -> false)

let validate invariants =
  List.partition plausible invariants
