(* Shape normalisation: SCI that differ only in the specific general
   purpose register (other than GPR0), the specific program point of the
   same instruction family, or an incidental constant, express the same
   security property. The paper relies on the same idea: "a single SCI can
   concisely represent multiple manually written security properties"
   (§5.4) and the 3,146 inferred SCI "can be concisely described as 33
   security properties" (Table 5). *)

module Expr = Invariant.Expr
module Var = Trace.Var

(* Normalise a variable name: GPRn (n > 0) collapses to GPR*, in both
   orig and post forms. GPR0 is kept: the zero register is architectural. *)
(* The orig()/post distinction and the PC/NPC/NNPC pipeline of counters do
   not differentiate *properties*: "NPC = orig(NNPC)" and "PC = orig(NPC)"
   both say control flow is continuous. *)
let norm_var id =
  let base = Var.id_base_name id in
  if String.length base > 3
  && String.sub base 0 3 = "GPR"
  && not (String.equal base "GPR0")
  && not (String.equal base "GPR9") (* the link register is special *)
  then "GPR*"
  else
    match base with
    | "SF" | "CY" | "OV" -> "FLAG*"        (* condition/arithmetic flags *)
    | "TEE" | "IEE" -> "XEE*"              (* exception-enable bits *)
    | "MACHI" | "MACLO" -> "MAC*"
    | "PC" | "NPC" | "NNPC" -> "PC*"
    | other -> other

(* Normalise a constant: exception vectors and a few structural constants
   are meaningful; everything else collapses to K. *)
let norm_const c =
  if c >= 0x100 && c <= 0xF04 && c land 0xFF <= 0x04 then Printf.sprintf "0x%X" c
  else if c = 0 || c = 1 then string_of_int c
  else "K"

let norm_term = function
  | Expr.V id -> norm_var id
  | Expr.Imm c -> norm_const c
  | Expr.Mul (id, k) -> Printf.sprintf "%s*%s" (norm_var id) (norm_const k)
  | Expr.Mod (id, k) -> Printf.sprintf "%s mod %d" (norm_var id) k
  | Expr.Notv id -> Printf.sprintf "not %s" (norm_var id)
  | Expr.Bin (op, a, b) ->
    let na = norm_var a and nb = norm_var b in
    (match op with
     | Expr.Band | Expr.Bor | Expr.Plus ->
       let x, y = if String.compare na nb <= 0 then (na, nb) else (nb, na) in
       Printf.sprintf "(%s %s %s)" x (Expr.op2_name op) y
     | Expr.Minus -> Printf.sprintf "(%s - %s)" na nb)

(* Instruction family: points whose invariants express the same property
   are grouped (all loads, all stores, all set-flag compares, ...). *)
let point_family point =
  match point with
  | "l.lwz" | "l.lws" | "l.lbz" | "l.lbs" | "l.lhz" | "l.lhs" -> "load"
  | "l.sw" | "l.sb" | "l.sh" -> "store"
  | "l.j" | "l.jal" | "l.jr" | "l.jalr" | "l.bf" | "l.bnf" -> "jump"
  | "l.sys" | "l.trap" | "illegal" -> "exception"
  | "l.mtspr" | "l.mfspr" -> "sprmove"
  | "l.extbs" | "l.extbz" | "l.exths" | "l.exthz" | "l.extws" | "l.extwz" -> "extend"
  | "l.rfe" -> "l.rfe"
  | p when String.length p > 3 && String.sub p 0 4 = "l.sf" -> "setflag"
  | _ -> "compute" (* the plain ALU/move/mac instructions *)

let body_key = function
  | Expr.Cmp (op, lhs, rhs) ->
    let sl = norm_term lhs and sr = norm_term rhs in
    (match op with
     | Expr.Eq | Expr.Ne ->
       let x, y = if String.compare sl sr <= 0 then (sl, sr) else (sr, sl) in
       Printf.sprintf "%s %s %s" x (Expr.cmp_name op) y
     | Expr.Lt | Expr.Le -> Printf.sprintf "%s %s %s" sl (Expr.cmp_name op) sr
     | Expr.Gt -> Printf.sprintf "%s < %s" sr sl
     | Expr.Ge -> Printf.sprintf "%s <= %s" sr sl)
  | Expr.In (term, _) -> Printf.sprintf "%s in {...}" (norm_term term)

(* The class key is the normalised body alone. The instruction family is
   already reflected where it matters (family-specific variables such as
   MEMBUS or PROD_U only occur at their own points); keying on it would
   multiply every universal property (register framing, control-flow
   continuity, GPR0 = 0, ...) by the number of families. *)
let key (inv : Expr.t) = body_key inv.Expr.body

(* Group invariants into shape classes; each class keeps its members in
   input order. *)
let group invariants =
  let table = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun inv ->
       let k = key inv in
       match Hashtbl.find_opt table k with
       | None ->
         order := k :: !order;
         Hashtbl.add table k [ inv ]
       | Some members -> Hashtbl.replace table k (inv :: members))
    invariants;
  List.map (fun k -> (k, List.rev (Hashtbl.find table k))) (List.rev !order)

let class_count invariants = List.length (group invariants)

(* One representative per shape class (the first member). *)
let representatives invariants =
  List.filter_map (fun (_, members) -> match members with
      | [] -> None
      | first :: _ -> Some first)
    (group invariants)
