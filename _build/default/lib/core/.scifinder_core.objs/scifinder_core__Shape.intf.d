lib/core/shape.mli: Invariant Trace
