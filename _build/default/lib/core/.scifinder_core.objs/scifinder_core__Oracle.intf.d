lib/core/oracle.mli: Invariant Trace
