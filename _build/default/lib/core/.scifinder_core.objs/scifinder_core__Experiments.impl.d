lib/core/experiments.ml: Array Assertions Bugs Invariant List Pipeline Properties Sci Shape Util
