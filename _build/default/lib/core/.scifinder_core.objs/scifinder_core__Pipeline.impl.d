lib/core/pipeline.ml: Array Daikon Float Hashtbl Invariant Invopt Isa List Ml Oracle Sci Shape Trace Unix Util Workloads
