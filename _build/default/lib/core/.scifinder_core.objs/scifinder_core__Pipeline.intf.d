lib/core/pipeline.mli: Bugs Daikon Invariant Invopt Ml Sci Workloads
