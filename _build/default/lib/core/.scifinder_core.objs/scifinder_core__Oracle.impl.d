lib/core/oracle.ml: Invariant List String Trace
