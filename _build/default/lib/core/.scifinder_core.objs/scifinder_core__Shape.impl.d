lib/core/shape.ml: Hashtbl Invariant List Printf String Trace
