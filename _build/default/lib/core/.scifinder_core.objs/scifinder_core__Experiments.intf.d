lib/core/experiments.mli: Assertions Bugs Invariant Pipeline Properties Sci
